/**
 * @file
 * Checkpoint/restore cost: what a snapshot weighs, what taking and
 * loading one costs in host time, how hard the divergence finder
 * shrinks a failing chaos campaign, and — the regression gate — how
 * much periodically checkpointing a running interpreter slows it
 * down. The gate mirrors bench_simspeed's BM_InterpreterLoop workload
 * and fails the bench (nonzero exit) when periodic checkpoints cost
 * more than 5% wall time, unless the baseline is too short to time
 * reliably (<30 ms), in which case the gate is reported as skipped.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "core/chaos.h"
#include "os/kernel.h"
#include "sim/machine.h"
#include "sim/snapshot.h"

using namespace uexc;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Nonzero physical pages, for the raw-vs-elided comparison. */
unsigned
nonzeroPages(sim::Machine &m)
{
    std::vector<Word> page(os::kPageBytes / 4);
    unsigned nonzero = 0;
    for (Addr pa = 0; pa < m.mem().size(); pa += os::kPageBytes) {
        m.mem().readBlock(pa, page.data(), os::kPageBytes);
        for (Word w : page) {
            if (w != 0) {
                nonzero++;
                break;
            }
        }
    }
    return nonzero;
}

} // namespace

int
main()
{
    banner("Checkpoint/restore: snapshot weight, host cost, shrink "
           "factor, overhead gate");
    bench::JsonResults json("snapshot");
    setLoggingEnabled(false);

    unsigned rounds = 50;
    if (const char *iters = std::getenv("UEXC_BENCH_ITERS"))
        rounds = static_cast<unsigned>(std::atoi(iters));
    json.config("rounds", static_cast<double>(rounds));

    section("snapshot size: raw vs zero-elided");
    {
        rt::chaos::Rig rig;
        rig.runTo(rt::chaos::kChaosOps);
        sim::Machine &m = rig.machine();
        std::vector<Byte> image = rig.checkpoint();
        unsigned pages = nonzeroPages(m);
        unsigned total_pages =
            static_cast<unsigned>(m.mem().size() / os::kPageBytes);
        double raw = static_cast<double>(image.size()) +
                     static_cast<double>(total_pages - pages) *
                         os::kPageBytes;
        std::printf("  memory footprint: %8.0f KiB (%u pages, %u "
                    "nonzero)\n",
                    m.mem().size() / 1024.0, total_pages, pages);
        std::printf("  raw image:        %8.0f KiB\n", raw / 1024.0);
        std::printf("  elided image:     %8.0f KiB (x%.1f smaller)\n",
                    image.size() / 1024.0, raw / image.size());
        json.metric("image_raw", raw, "bytes");
        json.metric("image_elided", static_cast<double>(image.size()),
                    "bytes");
    }

    section("checkpoint/restore host cost (booted chaos rig)");
    {
        // a checkpoint is tens of host-ms; cap the timing loop so the
        // CI smoke sweep's large UEXC_BENCH_ITERS stays a smoke test
        rounds = std::min(rounds, 100u);
        rt::chaos::Rig rig;
        rig.runTo(rt::chaos::kChaosOps);
        std::vector<Byte> image = rig.checkpoint();

        auto t0 = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < rounds; i++)
            image = rig.checkpoint();
        double ckpt_ms = msSince(t0) / rounds;

        rt::chaos::Rig twin;
        t0 = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < rounds; i++)
            twin.restore(image);
        double restore_ms = msSince(t0) / rounds;

        std::printf("  checkpoint: %8.3f ms\n", ckpt_ms);
        std::printf("  restore:    %8.3f ms\n", restore_ms);
        json.metric("checkpoint_host", ckpt_ms, "ms");
        json.metric("restore_host", restore_ms, "ms");
    }

    section("divergence finder: shrink factor");
    {
        rt::chaos::Reference ref = rt::chaos::makeReference();
        unsigned found = 0;
        double window_sum = 0;
        double repro_bytes = 0;
        for (std::uint64_t seed = 0x7001;
             seed <= 0x7190 && found < 3; seed++) {
            rt::chaos::CampaignOutcome out =
                rt::chaos::runCampaign(seed, ref.window, ref.words);
            if (!out.diagnosed)
                continue;
            rt::chaos::ReproWindow repro =
                rt::chaos::shrinkCampaign(seed, ref.window, ref.words);
            if (!repro.found)
                continue;
            found++;
            window_sum += repro.endOp - repro.startOp;
            repro_bytes += static_cast<double>(repro.snapshot.size());
            std::printf("  seed 0x%llx: ops [%u, %u) of %u (x%.1f "
                        "shorter)\n",
                        static_cast<unsigned long long>(seed),
                        repro.startOp, repro.endOp,
                        rt::chaos::kTotalOps,
                        static_cast<double>(rt::chaos::kTotalOps) /
                            (repro.endOp - repro.startOp));
        }
        if (found > 0) {
            double avg_window = window_sum / found;
            json.metric("shrink_avg_window_ops", avg_window, "ops");
            json.metric("shrink_factor",
                        rt::chaos::kTotalOps / avg_window, "x");
            json.metric("repro_snapshot_avg", repro_bytes / found,
                        "bytes");
        } else {
            noteLine("no diagnosing seed in the scanned range");
        }
    }

    section("periodic-checkpoint overhead gate (BM_InterpreterLoop)");
    int gate_rc = 0;
    {
        // The bench_simspeed interpreter loop, run for a fixed
        // instruction budget with and without a checkpoint every
        // kInterval instructions.
        constexpr InstCount kTotal = 20'000'000;
        constexpr InstCount kInterval = 2'000'000;

        auto timeRun = [&](bool checkpoints) {
            sim::MachineConfig cfg;
            cfg.memBytes = 1 << 20;
            cfg.cpu.fastInterpreter = true;
            sim::Machine m(cfg);
            sim::Assembler a(0x80010000);
            a.label("loop");
            a.addiu(sim::T0, sim::T0, 1);
            a.addiu(sim::T1, sim::T1, -1);
            a.bne(sim::T1, sim::Zero, "loop");
            a.nop();
            a.hcall(0);
            m.load(a.finalize());
            m.cpu().setReg(sim::T1, 0x7fffffff);
            m.cpu().setPc(0x80010000);
            std::vector<Byte> image;
            auto t0 = std::chrono::steady_clock::now();
            for (InstCount done = 0; done < kTotal; done += kInterval) {
                m.run(kInterval);
                if (checkpoints)
                    image = m.checkpoint();
            }
            return msSince(t0);
        };

        // best of three per configuration: a single run of either
        // leg jitters by several ms on a shared host, which is the
        // same order as the ten checkpoints being measured
        (void)timeRun(false); // warm up
        double base_ms = timeRun(false);
        double ckpt_ms = timeRun(true);
        for (int trial = 0; trial < 2; trial++) {
            base_ms = std::min(base_ms, timeRun(false));
            ckpt_ms = std::min(ckpt_ms, timeRun(true));
        }
        double overhead = (ckpt_ms - base_ms) / base_ms * 100.0;
        std::printf("  plain run:          %8.1f ms\n", base_ms);
        std::printf("  with checkpoints:   %8.1f ms (%u checkpoints)\n",
                    ckpt_ms,
                    static_cast<unsigned>(kTotal / kInterval));
        std::printf("  overhead:           %8.2f %%\n", overhead);
        json.metric("interp_loop_baseline", base_ms, "ms");
        json.metric("interp_loop_checkpointed", ckpt_ms, "ms");
        json.metric("checkpoint_overhead", overhead, "percent");
        if (base_ms < 30.0) {
            noteLine("gate skipped: baseline under 30 ms is too noisy "
                     "to judge");
        } else if (overhead > 5.0) {
            noteLine("GATE FAILED: periodic checkpoints cost more "
                     "than 5% wall time");
            gate_rc = 1;
        } else {
            noteLine("gate passed: overhead within the 5% budget");
        }
    }

    json.write();
    return gate_rc;
}
