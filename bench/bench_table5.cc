/**
 * @file
 * Table 5: break-even exception cost for page-protection write
 * barriers vs. inline software checks, following Hosking & Moss's
 * methodology:  protection wins when  y < c*x / (f*t).
 *
 * x = 5 cycles per check, f = 25 MHz (as in the paper). The per-app
 * check/trap counts (c, t) are reconstructed profiles (the source
 * text's table is not machine readable; see breakeven.h). The
 * measured write-protection fault cost with eager amplification —
 * the paper's 18 us reference — comes from the simulator.
 */

#include <cstdio>

#include "apps/analysis/breakeven.h"
#include "bench_util.h"
#include "core/microbench.h"

using namespace uexc;
using namespace uexc::apps;
using namespace uexc::rt::micro;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Table 5: break-even points, page-protection barrier vs "
           "software checks");

    bench::JsonResults json("table5");
    const double x = 5.0;   // cycles per software check
    const double f = 25.0;  // MHz
    json.config("cyclesPerCheck", x);
    json.config("clockMHz", f);

    // the measured cost of one write-protection exception with eager
    // amplification (fault + return; no handler mprotect needed)
    Timing wp = measure(Scenario::FastWriteProt,
                        paperMachineConfig());
    double measured_y = wp.roundTripUs;

    std::printf("  %-14s %14s %12s %18s\n", "application",
                "checks (c)", "traps (t)", "break-even y (us)");
    for (const auto &app : hoskingMossProfiles()) {
        double y = barrierBreakEvenUs(app, x, f);
        std::printf("  %-14s %14llu %12llu %18.1f\n",
                    app.name.c_str(),
                    static_cast<unsigned long long>(app.softwareChecks),
                    static_cast<unsigned long long>(app.exceptions), y);
        json.metric(app.name + " break-even", y, "us");
    }
    json.metric("measured write-prot round trip", measured_y, "us");

    section("comparison with the measured exception cost");
    std::printf("  measured write-prot fault + eager re-enable: "
                "%.1f us (paper: 18 us)\n", measured_y);
    for (const auto &app : hoskingMossProfiles()) {
        double y = barrierBreakEvenUs(app, x, f);
        std::printf("  %-14s page protection %s (%.1f us %s %.1f us)\n",
                    app.name.c_str(),
                    measured_y < y ? "WINS over software checks"
                                   : "loses to software checks",
                    measured_y, measured_y < y ? "<" : ">", y);
    }

    section("notes");
    noteLine("the paper's conclusion: the 18 us software-emulation "
             "cost makes protection exceptions a competitive "
             "alternative to 5-cycle inline checks for these "
             "applications");
    noteLine("c and t are reconstructed app profiles in the Hosking "
             "& Moss regime (the original table cells are not "
             "machine-readable); the formula and methodology are the "
             "paper's");
    return 0;
}
