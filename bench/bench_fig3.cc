/**
 * @file
 * Figure 3: exceptions vs. software checks for pointer swizzling.
 * The break-even curve is u* = f*y/c — for check cost c (cycles) and
 * uses-per-pointer u, exception-based swizzling wins above the curve.
 *
 * Both curves are generated: the traditional one with the measured
 * Ultrix exception cost and the fast one with the measured
 * specialized-handler cost (the paper's 6 us, section 4.2.2). An
 * end-to-end traversal validates the analytical crossover.
 */

#include <cstdio>

#include "apps/analysis/breakeven.h"
#include "apps/swizzle/swizzler.h"
#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;
using namespace uexc::rt::micro;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Figure 3: exceptions vs software checking for swizzling");

    bench::JsonResults json("fig3");
    sim::MachineConfig cfg = paperMachineConfig();
    Timing special = measure(Scenario::FastSpecialized, cfg);
    Timing ultrix = measure(Scenario::UltrixSimple, cfg);
    double y_fast = special.roundTripUs;     // paper: 6 us
    double y_ultrix = ultrix.roundTripUs;    // paper: ~80 us
    double f = 25.0;

    std::printf("  specialized-handler unaligned fault round trip: "
                "%.1f us (paper: 6 us)\n", y_fast);
    std::printf("  Ultrix unaligned fault round trip: %.1f us\n\n",
                y_ultrix);

    section("break-even uses per pointer u*(c)  [above the curve, "
            "exceptions win]");
    std::printf("  %-22s %14s %14s\n", "c (cycles/check)",
                "Ultrix curve", "fast curve");
    for (double c = 1; c <= 10; c += 1) {
        std::printf("  %-22.0f %14.1f %14.1f\n", c,
                    swizzleBreakEvenUses(c, y_ultrix, f),
                    swizzleBreakEvenUses(c, y_fast, f));
        std::string suffix = "(c=" + std::to_string(int(c)) + ")";
        json.metric("ustar_ultrix " + suffix,
                    swizzleBreakEvenUses(c, y_ultrix, f), "uses");
        json.metric("ustar_fast " + suffix,
                    swizzleBreakEvenUses(c, y_fast, f), "uses");
    }
    json.metric("specialized round trip", y_fast, "us");
    json.metric("ultrix round trip", y_ultrix, "us");
    noteLine("the paper: with fast exceptions the balance point "
             "shifts by an order of magnitude, making exception-based "
             "swizzling superior for far fewer uses per pointer");

    section("end-to-end validation (traversal, c = 5 cycles)");
    double ustar_fast = swizzleBreakEvenUses(5, y_fast, f);
    double ustar_ultrix = swizzleBreakEvenUses(5, y_ultrix, f);
    std::printf("  analytical break-even: fast u* = %.0f, "
                "Ultrix u* = %.0f\n", ustar_fast, ustar_ultrix);

    auto traverse = [&](SwizzleMode mode, rt::DeliveryMode delivery,
                        unsigned uses) {
        sim::Machine machine(cfg);
        os::Kernel kernel(machine);
        kernel.boot();
        rt::UserEnv env(kernel, delivery);
        env.install(0xffff);
        TraversalParams params;
        params.numObjects = 120;
        params.pointersPerObject = 6;
        params.useFraction = 0.5;
        params.usesPerPointer = uses;
        params.store.checkCycles = 5;
        return runTraversal(env, mode, params).cycles;
    };

    for (unsigned uses : {8u, 2 * static_cast<unsigned>(ustar_fast)}) {
        Cycles exc = traverse(SwizzleMode::LazyExceptions,
                              rt::DeliveryMode::FastSoftware, uses);
        Cycles chk = traverse(SwizzleMode::LazyChecks,
                              rt::DeliveryMode::FastSoftware, uses);
        std::printf("  u = %-4u fast exceptions %10llu cyc, checks "
                    "%10llu cyc -> %s\n", uses,
                    static_cast<unsigned long long>(exc),
                    static_cast<unsigned long long>(chk),
                    exc < chk ? "exceptions win" : "checks win");
    }
    return 0;
}
