/**
 * @file
 * Host-side performance of the simulator itself (google-benchmark):
 * instruction interpretation rate, exception dispatch rate, and the
 * VM facade's access rate. Not a paper artifact — this guards the
 * usability of the reproduction (the GC workloads execute millions
 * of simulated operations).
 */

#include <benchmark/benchmark.h>

#include "core/env.h"
#include "core/microbench.h"
#include "os/kernel.h"
#include "sim/machine.h"

using namespace uexc;

namespace {

/**
 * Raw interpretation rate of a tight ALU/branch loop. Parameterised
 * over the interpreter implementation (0 = reference per-instruction
 * path, 1 = predecoded fast path); items/sec is simulated
 * instructions per second, taken from the retired-instruction
 * counter rather than a hardcoded estimate.
 */
void
BM_InterpreterLoop(benchmark::State &state)
{
    sim::MachineConfig config;
    config.cpu.fastInterpreter = state.range(0) != 0;
    sim::Machine machine(config);
    sim::Assembler a(0x80010000);
    a.label("loop");
    a.addiu(sim::T0, sim::T0, 1);
    a.addiu(sim::T1, sim::T1, -1);
    a.bne(sim::T1, sim::Zero, "loop");
    a.nop();
    a.hcall(0);
    machine.load(a.finalize());
    std::uint64_t start_insts = machine.cpu().stats().instructions;
    for (auto _ : state) {
        machine.cpu().clearHalt();
        machine.cpu().setReg(sim::T1, 10000);
        machine.cpu().setPc(0x80010000);
        machine.cpu().run(100000);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(machine.cpu().stats().instructions -
                                  start_insts));
}
BENCHMARK(BM_InterpreterLoop)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("fast");

void
BM_FastExceptionDispatch(benchmark::State &state)
{
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);
    env.allocate(0x10000000, os::kPageBytes);
    env.setHandler([](rt::Fault &f) { f.resumeAt(f.pc() + 4); });
    env.protect(0x10000000, os::kPageBytes, os::kProtRead);
    for (auto _ : state)
        env.store(0x10000000, 1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastExceptionDispatch);

void
BM_VmFacadeStore(benchmark::State &state)
{
    sim::Machine machine;
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);
    env.allocate(0x10000000, 16 * os::kPageBytes);
    Addr addr = 0x10000000;
    for (auto _ : state) {
        env.store(addr, 42);
        addr = 0x10000000 + ((addr + 4) & 0xffff);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmFacadeStore);

} // namespace

BENCHMARK_MAIN();
