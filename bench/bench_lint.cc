/**
 * @file
 * Static-analyzer throughput: how long one uexc-lint pass takes over
 * every image the build gates on, and what the analyses conclude.
 *
 * The debug builds run these passes at boot (kernel image), shim
 * install, and multihart image construction, so their cost is paid on
 * every debug test binary startup; this bench pins it down on release
 * builds and tracks it release-to-release. Three analysis tiers are
 * timed separately because they scale differently:
 *
 *   - `lint`: the per-region CFG + dataflow checks (linear in code
 *     size);
 *   - `wcet`: VSA fixpoint + longest path over handler regions;
 *   - `conflict`: per-hart VSA passes + pairwise page-set
 *     intersection (linear in harts for the passes, quadratic in
 *     harts for the intersection — both tiny in practice).
 *
 * Also records the kernel fast path's static worst-case bound, the
 * number it must hold below os::ksym-declared budget for the boot
 * gate to pass; EXPERIMENTS.md quotes this metric.
 *
 * Exits nonzero if any gated image produces an Error finding — a
 * bench run is also a full lint of everything we ship.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/vsa.h"
#include "analysis/wcet.h"
#include "bench_util.h"
#include "core/env.h"
#include "core/lintspec.h"
#include "core/multihart.h"
#include "os/kernelimage.h"

using namespace uexc;
using namespace uexc::analysis;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

constexpr unsigned kIters = 50;
constexpr unsigned kHarts = 8;

/** Wall-clock milliseconds per call of @p fn over kIters calls. */
template <typename Fn>
double
msPerPass(Fn fn)
{
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < kIters; i++)
        fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           kIters;
}

bool g_failed = false;

/** Time one lint target, print and record it, and gate on errors. */
void
report(bench::JsonResults &json, const char *name,
       const sim::Program &prog, const LintConfig &config)
{
    std::vector<Finding> findings = lint(prog, config);
    double ms = msPerPass([&] { (void)lint(prog, config); });

    unsigned errors = 0, warnings = 0, notes = 0;
    for (const Finding &f : findings) {
        switch (f.severity) {
          case Severity::Error:   errors++; break;
          case Severity::Warning: warnings++; break;
          case Severity::Note:    notes++; break;
        }
    }
    std::printf("  %-22s %4zu insts  %8.3f ms/pass  "
                "%u errors %u warnings %u notes\n",
                name, prog.words.size(), ms, errors, warnings, notes);
    json.metric(std::string(name) + "_ms_per_pass", ms, "ms");
    json.metric(std::string(name) + "_findings",
                double(findings.size()), "findings");
    if (errors) {
        std::printf("%s\n", formatFindings(findings).c_str());
        g_failed = true;
    }
}

} // namespace

int
main()
{
    banner("uexc-lint static analysis throughput");
    bench::JsonResults json("lint");
    json.config("iters", double(kIters));
    json.config("harts", double(kHarts));

    section("per-region checks (boot/install gates)");

    sim::Program kernel = os::buildKernelImage();
    LintConfig kernel_cfg = os::kernelLintConfig(kernel);
    report(json, "kernel", kernel, kernel_cfg);

    sim::Program shim = rt::UserEnv::buildShimProgram(
        rt::SavePolicy::UltrixEquivalent, false);
    LintConfig shim_cfg = rt::userProgramLintConfig(shim);
    rt::applyHandlerWcetBudget(shim_cfg, 1'000'000);
    report(json, "shim", shim, shim_cfg);

    sim::Program mh_kernel = rt::multihart::buildKernelImage(kHarts);
    report(json, "multihart_kernel", mh_kernel,
           rt::multihart::kernelLintConfig(mh_kernel, kHarts));

    sim::Program worker = rt::multihart::buildWorkerProgram(kHarts);
    report(json, "multihart_worker", worker,
           rt::multihart::workerLintConfig(worker, kHarts));

    section("analysis tiers on the kernel fast path");

    CodeRegion fast;
    fast.begin = kernel.symbol(os::ksym::FastDecode);
    fast.end = kernel.symbol(os::ksym::FastEnd);
    fast.entries = {fast.begin};

    double vsa_ms =
        msPerPass([&] { (void)Vsa::run(kernel, fast); });
    Vsa vsa = Vsa::run(kernel, fast);
    WcetConfig wc;
    double wcet_ms =
        msPerPass([&] { (void)computeWcet(vsa, wc); });
    WcetResult w = computeWcet(vsa, wc);
    std::printf("  vsa fixpoint            %8.3f ms/pass\n", vsa_ms);
    std::printf("  wcet longest path       %8.3f ms/pass\n", wcet_ms);
    std::printf("  fast-path bound         %8llu cycles (budget %llu)\n",
                (unsigned long long)w.worstCycles,
                (unsigned long long)os::kFastPathWcetBudget);
    json.metric("fastpath_vsa_ms", vsa_ms, "ms");
    json.metric("fastpath_wcet_ms", wcet_ms, "ms");
    json.metric("fastpath_wcet_cycles", double(w.worstCycles),
                "cycles");
    json.metric("fastpath_wcet_budget",
                double(os::kFastPathWcetBudget), "cycles");
    if (!w.bounded || w.worstCycles > os::kFastPathWcetBudget) {
        std::printf("  FAIL: fast-path bound does not fit budget\n");
        g_failed = true;
    }

    section("conflict analysis on the multihart worker");

    LintConfig worker_cfg =
        rt::multihart::workerLintConfig(worker, kHarts);
    const RegionSpec &text = worker_cfg.regions.front();
    CodeRegion wr;
    wr.begin = text.begin;
    wr.end = text.end;
    wr.entries = text.entries;
    for (const AddrRange &r : text.dataRanges)
        wr.dataRanges.push_back(r);
    double conflict_ms = msPerPass([&] {
        (void)analyzeSharedPageConflicts(
            worker, wr, worker_cfg.perHartEntries, {});
    });
    ConflictResult cr = analyzeSharedPageConflicts(
        worker, wr, worker_cfg.perHartEntries, {});
    std::printf("  %u-hart conflict pass   %8.3f ms/pass  "
                "%zu conflict pages\n",
                kHarts, conflict_ms, cr.conflictPages.size());
    json.metric("worker_conflict_ms", conflict_ms, "ms");
    json.metric("worker_conflict_pages",
                double(cr.conflictPages.size()), "pages");

    if (g_failed) {
        noteLine("FAILED: a shipped image produced lint errors");
        return 1;
    }
    return 0;
}
