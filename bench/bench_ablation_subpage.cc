/**
 * @file
 * Ablation A3: the indirect cost of subpage protection (section
 * 3.2.4). The direct cost — delivering a protected-subpage fault —
 * is close to an ordinary protection fault (Table 2); the indirect
 * cost is the kernel emulation of every access that lands on an
 * *unprotected* logical subpage of a protected hardware page. This
 * bench sweeps the fraction of traffic touching unrelated subpages,
 * reproducing the paper's "could be expensive if there is a lot of
 * activity on unrelated logical sub-pages".
 */

#include <cstdio>

#include "bench_util.h"
#include "core/env.h"
#include "core/microbench.h"

using namespace uexc;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Ablation A3: subpage protection, direct and indirect "
           "cost");

    bench::JsonResults json("ablation_subpage");
    constexpr Addr kPage = 0x10000000;
    constexpr unsigned kStores = 600;

    auto run_mix = [&](unsigned percent_unrelated, bool subpage_mode) {
        sim::Machine machine(rt::micro::paperMachineConfig());
        os::Kernel kernel(machine);
        kernel.boot();
        rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
        env.install(0xffff);
        env.allocate(kPage, os::kPageBytes);
        env.setHandler([&](rt::Fault &) {
            // protected-subpage touch: the kernel amplified; nothing
            // to do (re-protection happens per iteration below)
        });

        Cycles start = env.cycles();
        unsigned faults = 0;
        for (unsigned i = 0; i < kStores; i++) {
            if (subpage_mode)
                env.subpageProtect(kPage + 0xc00, os::kSubpageBytes,
                                   os::kProtRead);
            bool unrelated = (i % 100) < percent_unrelated;
            // unrelated traffic goes to subpage 0; related traffic
            // writes the protected subpage 3
            Addr target = unrelated ? kPage + 0x10 + 4 * (i % 64)
                                    : kPage + 0xc04;
            std::uint64_t before = env.stats().faultsDelivered;
            env.store(target, i);
            faults += env.stats().faultsDelivered - before;
        }
        struct R { Cycles cycles; unsigned faults;
                   std::uint64_t emulations; };
        return R{env.cycles() - start, faults,
                 kernel.subpageEmulations()};
    };

    section("sweep: fraction of stores hitting unrelated subpages "
            "of a protected page");
    std::printf("  %-22s %12s %10s %12s\n", "unrelated traffic",
                "cycles", "faults", "emulations");
    for (unsigned pct : {0u, 25u, 50u, 75u, 100u}) {
        auto r = run_mix(pct, true);
        std::printf("  %19u%%  %12llu %10u %12llu\n", pct,
                    static_cast<unsigned long long>(r.cycles),
                    r.faults,
                    static_cast<unsigned long long>(r.emulations));
        std::string suffix =
            " (" + std::to_string(pct) + "% unrelated)";
        json.metric("cycles" + suffix,
                    static_cast<double>(r.cycles), "cycles");
        json.metric("emulations" + suffix,
                    static_cast<double>(r.emulations), "count");
    }

    section("reference: page-granularity protection (no subpages)");
    {
        // without subpage support, protecting 1 KB means protecting
        // the whole 4 KB page: unrelated traffic faults at full cost
        sim::Machine machine(rt::micro::paperMachineConfig());
        os::Kernel kernel(machine);
        kernel.boot();
        rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
        env.install(0xffff);
        env.allocate(kPage, os::kPageBytes);
        env.setEagerAmplify(true);
        env.setHandler([&](rt::Fault &) {});
        Cycles start = env.cycles();
        for (unsigned i = 0; i < kStores; i++) {
            env.protect(kPage, os::kPageBytes, os::kProtRead);
            env.store(kPage + 0x10 + 4 * (i % 64), i);  // "unrelated"
        }
        std::printf("  100%% unrelated, page granularity: %llu "
                    "cycles (every store is a full user-level "
                    "fault)\n",
                    static_cast<unsigned long long>(env.cycles() -
                                                    start));
    }

    section("notes");
    noteLine("emulated unrelated accesses cost a kernel round trip "
             "but never disturb the application: the paper's "
             "'enable application writers to use it selectively'");
    return 0;
}
