/**
 * @file
 * Ablation A4: end-to-end persistent-store traversals (not just the
 * Figure 3/4 analytical curves): eager vs. lazy-exceptions vs.
 * lazy-checks over sparse and dense traversals, under both delivery
 * mechanisms.
 */

#include <cstdio>

#include "apps/swizzle/swizzler.h"
#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

TraversalResult
run(SwizzleMode mode, rt::DeliveryMode delivery, double use_fraction,
    unsigned uses)
{
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, delivery);
    env.install(0xffff);
    TraversalParams params;
    params.numObjects = 200;
    params.pointersPerObject = 10;
    params.useFraction = use_fraction;
    params.usesPerPointer = uses;
    return runTraversal(env, mode, params);
}

const char *
modeName(SwizzleMode m)
{
    switch (m) {
      case SwizzleMode::LazyExceptions: return "lazy/exceptions";
      case SwizzleMode::LazyChecks: return "lazy/checks";
      default: return "eager";
    }
}

} // namespace

int
main()
{
    banner("Ablation A4: persistent store traversals end-to-end");

    bench::JsonResults json("swizzle_e2e");
    struct Case
    {
        const char *name;
        double use_fraction;
        unsigned uses;
    };
    const Case cases[] = {
        {"sparse traversal (10% of pointers, 1 use)", 0.1, 1},
        {"dense traversal (90% of pointers, 1 use)", 0.9, 1},
        {"hot pointers (50% of pointers, 40 uses)", 0.5, 40},
    };

    for (const Case &c : cases) {
        section(c.name);
        std::printf("  %-20s %16s %16s\n", "strategy",
                    "fast exc (ms)", "Ultrix (ms)");
        for (SwizzleMode mode : {SwizzleMode::LazyExceptions,
                                 SwizzleMode::LazyChecks,
                                 SwizzleMode::Eager}) {
            TraversalResult fast =
                run(mode, rt::DeliveryMode::FastSoftware,
                    c.use_fraction, c.uses);
            TraversalResult ultrix =
                run(mode, rt::DeliveryMode::UltrixSignal,
                    c.use_fraction, c.uses);
            std::printf("  %-20s %16.2f %16.2f\n", modeName(mode),
                        fast.millis, ultrix.millis);
            std::string key =
                std::string(c.name) + " " + modeName(mode);
            json.metric(key + " fast", fast.millis, "ms");
            json.metric(key + " ultrix", ultrix.millis, "ms");
        }
    }

    section("notes");
    noteLine("sparse favors lazy (eager swizzles pointers never "
             "used); dense favors eager under expensive exceptions; "
             "cheap exceptions keep lazy competitive even when dense "
             "- Figure 4's story, measured");
    return 0;
}
