/**
 * @file
 * Iterative pre-copy vs. stop-and-copy migration on a dirty-heavy
 * guest: the downtime/bytes trade the self-healing fleet rides on.
 *
 * The guest is a chaos rig mid-campaign — the protection-fault churn
 * rewrites its working region continuously, so pages keep dirtying
 * while pre-copy rounds ship them. For pre-copy rounds 0 (classic
 * stop-and-copy), 1, 2, and 4 the bench migrates the same guest
 * under the same seeded transport weather and reports, per mode:
 *
 *   - stop-and-copy downtime (simulated cycles the guest is paused),
 *   - total bytes moved (pre-copy rounds + residual + control image),
 *   - convergence rate (dirty set under the threshold before the
 *     round budget ran out).
 *
 * Gate (nonzero exit on failure): every pre-copy mode must show
 * strictly lower mean downtime than single-shot stop-and-copy —
 * pre-copy that does not shrink the pause is a regression, since the
 * residual set is bounded by the convergence threshold while the
 * full image is not.
 *
 * Results are emitted into BENCH_fleet.json next to the fleet soak's
 * downtime percentiles (run the two in different directories when
 * both artifacts are wanted).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "core/chaos.h"
#include "core/migrate.h"
#include "sim/faultinject.h"

using namespace uexc;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

struct ModeResult
{
    unsigned rounds = 0;
    double meanDowntime = 0;
    double meanBytes = 0;
    double convergenceRate = 0; ///< 1.0 for stop-and-copy
    unsigned migrations = 0;
};

ModeResult
runMode(unsigned rounds, unsigned iters, std::uint64_t seed_base)
{
    ModeResult mode;
    mode.rounds = rounds;

    double downtime_sum = 0, bytes_sum = 0;
    unsigned converged = 0;

    for (unsigned i = 0; i < iters; i++) {
        // Fresh source each iteration, run to mid-campaign so the
        // churn is hot; same weather seed per iteration across modes.
        rt::chaos::Rig src;
        src.runTo(rt::chaos::kChaosOps / 2);
        rt::chaos::Rig dst;

        rt::migrate::MigrationConfig mc;
        std::uint64_t chain = seed_base + i;
        mc.transport.seed = sim::FaultInjector::splitmix64(chain);
        mc.transport.lossPercent = 4;
        mc.transport.corruptPercent = 2;
        mc.transport.delayPercent = 8;

        rt::migrate::MigrationResult result;
        if (rounds == 0) {
            result = rt::migrate::migrateRig(src, dst, mc);
            if (result.succeeded)
                converged++; // stop-and-copy trivially "converges"
        } else {
            rt::migrate::PreCopyConfig pc;
            pc.maxRounds = rounds;
            pc.convergePages = 8;
            result =
                rt::migrate::migrateRigPreCopy(src, dst, mc, pc, 4);
            if (result.succeeded && result.precopy.converged)
                converged++;
        }
        if (!result.succeeded) {
            std::fprintf(stderr,
                         "bench_migrate: migration failed (%s)\n",
                         result.error.c_str());
            continue;
        }
        mode.migrations++;
        downtime_sum += double(result.downtimeCycles);
        bytes_sum += double(result.bytesMoved);
    }

    if (mode.migrations != 0) {
        mode.meanDowntime = downtime_sum / mode.migrations;
        mode.meanBytes = bytes_sum / mode.migrations;
        mode.convergenceRate = double(converged) / mode.migrations;
    }
    return mode;
}

} // namespace

int
main()
{
    banner("Live migration: iterative pre-copy vs. stop-and-copy on "
           "a dirty-heavy guest");
    bench::JsonResults json("fleet");
    setLoggingEnabled(false);

    unsigned iters = 6;
    if (const char *env = std::getenv("UEXC_BENCH_ITERS"))
        iters = static_cast<unsigned>(std::atoi(env));
    if (iters == 0)
        iters = 1;
    json.config("iterations", double(iters));
    json.config("converge_pages", 8.0);
    json.config("ops_per_slice", 4.0);

    const unsigned kModes[] = {0, 1, 2, 4};
    std::vector<ModeResult> results;

    section("downtime / bytes moved / convergence by pre-copy rounds");
    std::printf("  %-18s %14s %14s %12s\n", "mode",
                "downtime (cyc)", "bytes moved", "converged");
    for (unsigned rounds : kModes) {
        ModeResult mode = runMode(rounds, iters, 0xB16B00 + rounds);
        results.push_back(mode);
        std::string label =
            rounds == 0 ? std::string("stop-and-copy")
                        : "pre-copy x" + std::to_string(rounds);
        std::printf("  %-18s %14.0f %14.0f %11.0f%%\n", label.c_str(),
                    mode.meanDowntime, mode.meanBytes,
                    mode.convergenceRate * 100);
        json.metric("downtime (" + label + ")", mode.meanDowntime,
                    "cycles");
        json.metric("bytes moved (" + label + ")", mode.meanBytes,
                    "bytes");
        json.metric("convergence (" + label + ")",
                    mode.convergenceRate * 100, "%");
    }

    noteLine("pre-copy trades total bytes (every round re-ships the "
             "dirty set) for a residual-only pause");

    // Gate: every pre-copy mode must pause the guest strictly less
    // than single-shot stop-and-copy does.
    const ModeResult &stopcopy = results[0];
    bool ok = stopcopy.migrations != 0;
    for (size_t i = 1; i < results.size(); i++) {
        const ModeResult &m = results[i];
        if (m.migrations == 0 ||
            m.meanDowntime >= stopcopy.meanDowntime) {
            std::fprintf(stderr,
                         "bench_migrate: GATE FAILED: pre-copy x%u "
                         "downtime %.0f !< stop-and-copy %.0f\n",
                         m.rounds, m.meanDowntime,
                         stopcopy.meanDowntime);
            ok = false;
        }
    }
    json.metric("downtime gate", ok ? 1 : 0, "pass");
    if (!ok)
        return 1;
    std::printf("\n  gate: every pre-copy mode beats stop-and-copy "
                "downtime\n");
    return 0;
}
