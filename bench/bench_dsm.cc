/**
 * @file
 * Ablation A7: distributed shared memory (Li & Hudak, cited by the
 * paper as a primary consumer of memory-protection exceptions). A
 * two-node write ping-pong over one shared page, sweeping the
 * network latency: the faster the interconnect, the larger the
 * fraction of a page miss spent in exception dispatch — and the more
 * the fast mechanism buys.
 */

#include <cstdio>

#include "apps/dsm/dsm.h"
#include "bench_util.h"

using namespace uexc;
using namespace uexc::apps;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

constexpr Addr kBase = 0x40000000;

Cycles
pingpong(rt::DeliveryMode mode, Cycles latency, unsigned rounds)
{
    DsmCluster::Config cfg;
    cfg.mode = mode;
    cfg.bytes = 4 * os::kPageBytes;
    cfg.networkLatencyCycles = latency;
    DsmCluster dsm(cfg);
    dsm.write(0, kBase, 0);
    Cycles before = dsm.totalCycles();
    for (Word i = 0; i < rounds; i++)
        dsm.write(i % 2, kBase, i);
    return dsm.totalCycles() - before;
}

} // namespace

int
main()
{
    banner("Ablation A7: DSM page ping-pong vs network latency");
    bench::JsonResults json("dsm");
    constexpr unsigned kRounds = 20;
    sim::CostModel cost;

    std::printf("  %-26s %14s %14s %10s\n",
                "one-way latency", "Ultrix (us/miss)",
                "fast (us/miss)", "speedup");
    for (Cycles latency : {Cycles{250}, Cycles{1000}, Cycles{5000},
                           Cycles{25000}, Cycles{100000}}) {
        Cycles u = pingpong(rt::DeliveryMode::UltrixSignal, latency,
                            kRounds);
        Cycles f = pingpong(rt::DeliveryMode::FastSoftware, latency,
                            kRounds);
        std::printf("  %8llu cycles (%6.0f us) %14.1f %14.1f %9.2fx\n",
                    static_cast<unsigned long long>(latency),
                    cost.toMicros(latency),
                    cost.toMicros(u) / kRounds,
                    cost.toMicros(f) / kRounds,
                    static_cast<double>(u) / f);
        std::string suffix =
            " (latency=" +
            std::to_string(static_cast<unsigned long long>(latency)) +
            ")";
        json.metric("ultrix miss" + suffix,
                    cost.toMicros(u) / kRounds, "us");
        json.metric("fast miss" + suffix, cost.toMicros(f) / kRounds,
                    "us");
    }

    section("placement: machine-per-node vs harts of one machine");
    {
        auto run_placed = [&](bool shared) {
            DsmCluster::Config cfg;
            cfg.mode = rt::DeliveryMode::FastSoftware;
            cfg.bytes = 4 * os::kPageBytes;
            cfg.networkLatencyCycles = 1000;
            cfg.sharedMachine = shared;
            DsmCluster dsm(cfg);
            dsm.write(0, kBase, 0);
            Cycles before = dsm.totalCycles();
            for (Word i = 0; i < kRounds; i++)
                dsm.write(i % 2, kBase, i);
            return dsm.totalCycles() - before;
        };
        Cycles separate = run_placed(false);
        Cycles shared = run_placed(true);
        std::printf("  separate machines %10llu cyc, shared machine "
                    "(2 harts) %10llu cyc\n",
                    static_cast<unsigned long long>(separate),
                    static_cast<unsigned long long>(shared));
        json.metric("pingpong separate machines",
                    static_cast<double>(separate), "cycles");
        json.metric("pingpong shared machine",
                    static_cast<double>(shared), "cycles");
    }

    section("notes");
    noteLine("at 1994 Ethernet latencies (~1 ms) the dispatch path is "
             "a few percent of a miss; on fast fabrics the exception "
             "mechanism dominates and the fast scheme's advantage "
             "approaches its microbenchmark ratio");
    noteLine("this is the situation the paper anticipates: 'as "
             "operating system structures evolve ... the situation "
             "will even worsen'");
    return 0;
}
