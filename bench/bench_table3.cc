/**
 * @file
 * Table 3: the kernel fast-exception handler's instruction count by
 * phase. Two views are reported:
 *  - static: instructions between the phase boundary symbols of the
 *    generated kernel image (the paper's 6/11/31/6/8/3 = 65);
 *  - dynamic: instructions actually retired per phase during a
 *    measured simple-exception delivery (the FP-save jump is untaken
 *    for a process without floating point state, so the FP phase
 *    retires 4 of its 6 instructions).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernelimage.h"

using namespace uexc;
using namespace uexc::rt::micro;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Table 3: kernel fast-handler instruction counts");

    bench::JsonResults json("table3");

    struct Row
    {
        const char *name;
        const char *begin;
        const char *end;
        unsigned paper;
    };
    const Row rows[] = {
        {"Decode Exception", os::ksym::FastDecode, os::ksym::FastCompat,
         6},
        {"Compatibility Check", os::ksym::FastCompat, os::ksym::FastSave,
         11},
        {"Save Partial State", os::ksym::FastSave, os::ksym::FastFp, 31},
        {"Floating Point Check", os::ksym::FastFp, os::ksym::FastTlbCheck,
         6},
        {"Check for TLB Fault", os::ksym::FastTlbCheck,
         os::ksym::FastVector, 8},
        {"Vector to User", os::ksym::FastVector, os::ksym::FastEnd, 3},
    };

    sim::Program image = os::buildKernelImage();
    auto dynamic_phases = profileFastPath(paperMachineConfig());

    std::printf("  %-24s %8s %8s %9s\n", "operation", "paper",
                "static", "dynamic");
    unsigned total_paper = 0, total_static = 0;
    std::uint64_t total_dyn = 0;
    for (unsigned i = 0; i < 6; i++) {
        unsigned stat = (image.symbol(rows[i].end) -
                         image.symbol(rows[i].begin)) / 4;
        std::printf("  %-24s %8u %8u %9llu\n", rows[i].name,
                    rows[i].paper, stat,
                    static_cast<unsigned long long>(
                        dynamic_phases[i].instructions));
        total_paper += rows[i].paper;
        total_static += stat;
        total_dyn += dynamic_phases[i].instructions;
        json.metric(std::string(rows[i].name) + " (static)", stat,
                    "insts");
        json.metric(std::string(rows[i].name) + " (dynamic)",
                    static_cast<double>(
                        dynamic_phases[i].instructions),
                    "insts");
    }
    std::printf("  %-24s %8u %8u %9llu\n", "total", total_paper,
                total_static, static_cast<unsigned long long>(total_dyn));
    json.metric("total (static)", total_static, "insts");
    json.metric("total (dynamic)", static_cast<double>(total_dyn),
                "insts");

    section("notes");
    noteLine("static counts are positions of the generated code's "
             "phase symbols: the handler is built to the paper's "
             "exact structure and verified by test_kernelimage");
    noteLine("dynamic counts skip the two untaken FP-save-path "
             "instructions when the process has no FP state");
    return 0;
}
