/**
 * @file
 * Ablation A9: transaction support via write detection (Chang &
 * Mergen, from the paper's motivating list). Measures the
 * begin/store/commit cycle across delivery mechanisms and shows the
 * dispatch fraction shrinking as the per-fault work (the 4 KB
 * before-image copy) grows relative to the GC barrier's record-only
 * handler.
 */

#include <cstdio>

#include "apps/txn/txn.h"
#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

constexpr Addr kBase = 0x10000000;
constexpr Word kBytes = 8 * os::kPageBytes;

struct Rig
{
    explicit Rig(rt::DeliveryMode mode)
        : machine(rt::micro::paperMachineConfig()), kernel(machine)
    {
        kernel.boot();
        env = std::make_unique<rt::UserEnv>(kernel, mode);
        env->install(0xffff);
        region = std::make_unique<TxnRegion>(*env, kBase, kBytes);
    }

    sim::Machine machine;
    os::Kernel kernel;
    std::unique_ptr<rt::UserEnv> env;
    std::unique_ptr<TxnRegion> region;
};

const char *
name(rt::DeliveryMode m)
{
    switch (m) {
      case rt::DeliveryMode::UltrixSignal: return "Ultrix signals";
      case rt::DeliveryMode::FastSoftware: return "fast software";
      default: return "hardware vector";
    }
}

} // namespace

int
main()
{
    banner("Ablation A9: page-logging transactions");
    bench::JsonResults json("txn");
    sim::CostModel cost;

    section("cost of one transaction touching N pages");
    std::printf("  %-18s %12s %12s %12s\n", "mechanism", "1 page",
                "4 pages", "8 pages");
    for (auto mode : {rt::DeliveryMode::UltrixSignal,
                      rt::DeliveryMode::FastSoftware,
                      rt::DeliveryMode::FastHardwareVector}) {
        double us[3];
        int col = 0;
        for (unsigned pages : {1u, 4u, 8u}) {
            Rig rig(mode);
            // warm
            rig.region->begin();
            rig.region->store(kBase, 0);
            rig.region->commit();
            Cycles before = rig.env->cycles();
            rig.region->begin();
            for (unsigned p = 0; p < pages; p++)
                rig.region->store(kBase + p * os::kPageBytes, p);
            rig.region->commit();
            us[col++] = cost.toMicros(rig.env->cycles() - before);
        }
        std::printf("  %-18s %9.0f us %9.0f us %9.0f us\n",
                    name(mode), us[0], us[1], us[2]);
        json.metric(std::string("txn 1 page ") + name(mode), us[0],
                    "us");
        json.metric(std::string("txn 8 pages ") + name(mode), us[2],
                    "us");
    }

    section("abort: restoring before-images");
    {
        Rig rig(rt::DeliveryMode::FastSoftware);
        rig.region->begin();
        for (unsigned p = 0; p < 4; p++)
            for (unsigned w = 0; w < 16; w++)
                rig.region->store(kBase + p * os::kPageBytes + 4 * w,
                                  w);
        Cycles before = rig.env->cycles();
        rig.region->abort();
        std::printf("  4-page abort: %.0f us (restores full "
                    "before-images through the simulated memory "
                    "system)\n",
                    cost.toMicros(rig.env->cycles() - before));
    }

    section("notes");
    noteLine("per dirtied page the handler copies 4 KB: dispatch is "
             "a minority of the fault cost, so the mechanism ratio "
             "here is ~2x rather than the 10x of record-only "
             "handlers — the cost structure the paper's tradeoff "
             "formulas capture");
    return 0;
}
