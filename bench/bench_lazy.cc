/**
 * @file
 * Ablation A5: unaligned-pointer runtime techniques (section 4.2.1):
 * per-operation cost of unbounded-list extension, future resolution,
 * and full/empty synchronization under each delivery mechanism.
 */

#include <cstdio>

#include "apps/lazy/lazy.h"
#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

constexpr Addr kArena = 0x30000000;

struct Env
{
    explicit Env(rt::DeliveryMode mode)
        : machine(rt::micro::paperMachineConfig()), kernel(machine)
    {
        kernel.boot();
        env = std::make_unique<rt::UserEnv>(kernel, mode);
        env->install(0xffff);
        arena = std::make_unique<LazyArena>(*env, kArena, 1 << 22);
    }

    sim::Machine machine;
    os::Kernel kernel;
    std::unique_ptr<rt::UserEnv> env;
    std::unique_ptr<LazyArena> arena;
};

double
usPerOp(Cycles cycles, unsigned ops)
{
    sim::CostModel cost;
    return cost.toMicros(cycles) / ops;
}

const char *
name(rt::DeliveryMode m)
{
    switch (m) {
      case rt::DeliveryMode::UltrixSignal: return "Ultrix signals";
      case rt::DeliveryMode::FastSoftware: return "fast software";
      default: return "hardware vector";
    }
}

} // namespace

int
main()
{
    banner("Ablation A5: unaligned-pointer runtime techniques");

    bench::JsonResults json("lazy");
    constexpr unsigned kOps = 300;

    section("unbounded list: cost per on-demand element");
    for (auto mode : {rt::DeliveryMode::UltrixSignal,
                      rt::DeliveryMode::FastSoftware,
                      rt::DeliveryMode::FastHardwareVector}) {
        Env e(mode);
        UnboundedList list(*e.arena, [](unsigned i) { return i; });
        Cycles before = e.env->cycles();
        Addr cell = list.head();
        for (unsigned i = 0; i < kOps; i++)
            cell = list.next(cell);
        double us = usPerOp(e.env->cycles() - before, kOps);
        std::printf("  %-18s %8.2f us/element (%llu faults)\n",
                    name(mode), us,
                    static_cast<unsigned long long>(list.faults()));
        json.metric(std::string("list element ") + name(mode), us,
                    "us");
    }

    section("future: cost of a fault-forced resolution");
    for (auto mode : {rt::DeliveryMode::UltrixSignal,
                      rt::DeliveryMode::FastSoftware,
                      rt::DeliveryMode::FastHardwareVector}) {
        Env e(mode);
        Cycles total = 0;
        for (unsigned i = 0; i < 50; i++) {
            FutureCell fut(*e.arena, [i]() { return Word{i}; });
            Cycles before = e.env->cycles();
            fut.value();
            total += e.env->cycles() - before;
        }
        std::printf("  %-18s %8.2f us/force\n", name(mode),
                    usPerOp(total, 50));
        json.metric(std::string("future force ") + name(mode),
                    usPerOp(total, 50), "us");
    }

    section("full/empty cell: synchronizing read on empty");
    for (auto mode : {rt::DeliveryMode::UltrixSignal,
                      rt::DeliveryMode::FastSoftware,
                      rt::DeliveryMode::FastHardwareVector}) {
        Env e(mode);
        FullEmptyCell cell(*e.arena, []() { return Word{1}; });
        Cycles total = 0;
        for (unsigned i = 0; i < 50; i++) {
            Cycles before = e.env->cycles();
            cell.read();
            total += e.env->cycles() - before;
            cell.take();   // empty it again
        }
        std::printf("  %-18s %8.2f us/read\n", name(mode),
                    usPerOp(total, 50));
        json.metric(std::string("full/empty read ") + name(mode),
                    usPerOp(total, 50), "us");
    }

    section("notes");
    noteLine("the paper: fast user-level delivery makes these "
             "formerly special-purpose-hardware techniques (Tera "
             "full/empty bits, Alewife futures) practical on "
             "conventional processors");
    return 0;
}
