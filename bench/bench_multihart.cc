/**
 * @file
 * Multi-hart exception-delivery scaling: the paper's Tera argument
 * (section 2) in miniature. N harts each run a tight user-mode loop
 * taking one breakpoint exception per iteration, under two delivery
 * mechanisms on identical hardware:
 *
 *   - kernel-mediated: every exception funnels through the shared
 *     general vector. The handler's own state is per-hart (indexed by
 *     PrId), but entry serializes on the shared kernel-stack lock —
 *     modeled by os::KernelStackLock, charged from an instruction
 *     observer at each general-vector delivery — so aggregate
 *     throughput flattens as harts are added;
 *
 *   - user-vectored (COP3): each exception vectors directly to the
 *     faulting hart's user handler and touches only per-hart state,
 *     so aggregate throughput scales linearly.
 *
 * The schedule is deterministic (round-robin, fixed quantum): two
 * identical invocations produce identical cycle counts, which this
 * bench verifies by running one configuration twice. Exits nonzero
 * if determinism or the scaling criteria fail.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/multihart.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "sim/machine.h"

using namespace uexc;
using namespace uexc::sim;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

/** Physical frame backing the (read-only, shared) worker text page. */
constexpr Addr kWorkerPhys = 0x00210000;
constexpr unsigned kAsid = 1;

/** Scheduler quantum: small enough that harts genuinely interleave
 *  within a run, large enough to amortize nothing — cycle counts do
 *  not depend on it, only the interleaving order does. */
constexpr InstCount kQuantum = 500;

struct StudyResult
{
    unsigned harts = 0;
    std::uint64_t exceptions = 0;
    Cycles maxHartCycles = 0;
    Cycles lockSpin = 0;
    std::uint64_t lockContended = 0;
    /** Aggregate delivered exceptions per 1000 cycles. */
    double throughput = 0;
    /** Per-hart cycle counts, for the determinism fingerprint. */
    std::vector<Cycles> hartCycles;
};

/** Charges the kernel-stack lock on every general-vector delivery. */
class LockChargeObserver : public InstObserver
{
  public:
    explicit LockChargeObserver(Machine &m) : machine_(m) {}

    void onInst(Addr, const DecodedInst &, Cycles) override {}

    void onException(ExcCode, Addr, Addr vector) override
    {
        // Like os::Kernel, a uniprocessor build compiles the lock
        // out — only multi-hart machines pay for it.
        if (vector != Cpu::GeneralVector || machine_.numHarts() < 2)
            return;
        Cpu &cpu = machine_.cpu();
        cpu.charge(lock_.acquire(cpu.cycles(),
                                 os::charge::KernelStackHold));
    }

    const os::KernelStackLock &lock() const { return lock_; }

  private:
    Machine &machine_;
    os::KernelStackLock lock_;
};

StudyResult
runStudy(unsigned n, bool user_vectored, InstCount insts_per_hart)
{
    MachineConfig cfg;
    cfg.harts = n;
    cfg.quantum = kQuantum;
    cfg.cpu.userVectorHw = true;    // same hardware in both modes
    Machine m(cfg);

    m.load(rt::multihart::buildKernelImage(n));
    Program worker = rt::multihart::buildWorkerProgram(n);
    m.mem().writeBlock(kWorkerPhys, worker.words.data(),
                       4 * worker.words.size());

    for (unsigned i = 0; i < n; i++) {
        Hart &h = m.hart(i);
        // Wired identity mapping of the worker text page.
        h.tlb().setEntry(0,
                         (os::kUserTextBase & entryhi::VpnMask) |
                             (kAsid << entryhi::AsidShift),
                         (kWorkerPhys & entrylo::PfnMask) |
                             entrylo::V);
        Word st = h.cp0().statusReg() | status::KUc;
        if (user_vectored) {
            st |= status::UV;
            h.cp0().setUxReg(UxReg::Target,
                             worker.symbol("mh_uv_handler"));
        }
        h.cp0().setStatusReg(st);
        h.cp0().write(cp0reg::EntryHi, kAsid << entryhi::AsidShift);
        h.setPc(worker.symbol("mh_hart" + std::to_string(i) +
                              "_entry"));
    }

    LockChargeObserver observer(m);
    m.cpu().setObserver(&observer);
    m.run(static_cast<InstCount>(n) * insts_per_hart);

    StudyResult r;
    r.harts = n;
    for (unsigned i = 0; i < n; i++) {
        const Hart &h = m.hart(i);
        r.exceptions += user_vectored
                            ? h.stats().userVectoredExceptions
                            : h.stats().exceptionsTaken;
        r.maxHartCycles = std::max(r.maxHartCycles, h.cycles());
        r.hartCycles.push_back(h.cycles());
    }
    r.lockSpin = observer.lock().spinCycles();
    r.lockContended = observer.lock().contendedAcquires();
    r.throughput = r.maxHartCycles
                       ? 1000.0 * static_cast<double>(r.exceptions) /
                             static_cast<double>(r.maxHartCycles)
                       : 0;

    // Cross-check against the guest's own counters: the kernel
    // handler counts in the hart's mh_save slot, the worker counts
    // completed iterations in s0.
    for (unsigned i = 0; i < n; i++) {
        Word guest =
            user_vectored
                ? m.hart(i).reg(S0)
                : m.debugReadWord(m.symbol("mh_save") +
                                  i * os::hartsave::Bytes);
        Word delivered = user_vectored
                             ? m.hart(i).stats().userVectoredExceptions
                             : m.hart(i).stats().exceptionsTaken;
        // s0 / the save slot trail delivery by at most the partial
        // iteration in flight when the budget ran out.
        if (guest + 1 < delivered) {
            std::fprintf(stderr,
                         "hart %u: guest counted %u of %u delivered "
                         "exceptions\n", i, guest, delivered);
            std::exit(1);
        }
    }
    return r;
}

} // namespace

int
main()
{
    banner("Multi-hart scaling: kernel-mediated vs user-vectored "
           "delivery");

    InstCount insts_per_hart = 40000;
    if (const char *iters = std::getenv("UEXC_BENCH_ITERS"))
        insts_per_hart = std::strtoull(iters, nullptr, 10);

    bench::JsonResults json("multihart");
    json.config("instsPerHart",
                static_cast<double>(insts_per_hart));
    json.config("quantum", static_cast<double>(kQuantum));
    json.config("kernelStackHoldCycles",
                static_cast<double>(os::charge::KernelStackHold));
    json.config("maxHarts",
                static_cast<double>(rt::multihart::kMaxHarts));

    std::printf("  %5s %20s %20s %16s\n", "harts",
                "kernel (exc/kcyc)", "user-vec (exc/kcyc)",
                "lock spin (cyc)");

    std::vector<StudyResult> kernel, uv;
    for (unsigned n = 1; n <= rt::multihart::kMaxHarts; n++) {
        kernel.push_back(runStudy(n, false, insts_per_hart));
        uv.push_back(runStudy(n, true, insts_per_hart));
        const StudyResult &k = kernel.back(), &u = uv.back();
        std::printf("  %5u %20.1f %20.1f %16llu\n", n, k.throughput,
                    u.throughput,
                    static_cast<unsigned long long>(k.lockSpin));

        std::string suffix = "_h" + std::to_string(n);
        json.metric("kernel_throughput" + suffix, k.throughput,
                    "exc/kcycle");
        json.metric("uv_throughput" + suffix, u.throughput,
                    "exc/kcycle");
        json.metric("kernel_lock_spin" + suffix,
                    static_cast<double>(k.lockSpin), "cycles");
        json.metric("kernel_lock_contended" + suffix,
                    static_cast<double>(k.lockContended), "acquires");
    }

    double kernel_scale =
        kernel.back().throughput / kernel.front().throughput;
    double uv_scale = uv.back().throughput / uv.front().throughput;
    json.metric("kernel_scaling_1_to_8", kernel_scale, "x");
    json.metric("uv_scaling_1_to_8", uv_scale, "x");

    section("scaling 1 -> 8 harts");
    std::printf("  kernel-mediated: %.2fx (flattens on the kernel-"
                "stack lock)\n", kernel_scale);
    std::printf("  user-vectored:   %.2fx (per-hart state only)\n",
                uv_scale);
    noteLine("the Tera design point: with many streams sharing one "
             "kernel, delivery that bypasses the kernel is what "
             "keeps exception throughput scaling");

    // Determinism: the scheduler contract says two identical
    // invocations produce identical cycle counts.
    StudyResult a = runStudy(4, false, insts_per_hart);
    StudyResult b = runStudy(4, false, insts_per_hart);
    bool deterministic = a.hartCycles == b.hartCycles &&
                         a.exceptions == b.exceptions;
    json.metric("deterministic", deterministic ? 1 : 0, "bool");

    bool ok = true;
    if (!deterministic) {
        std::fprintf(stderr, "FAIL: repeated run diverged\n");
        ok = false;
    }
    if (uv_scale < 3.0) {
        std::fprintf(stderr,
                     "FAIL: user-vectored scaling %.2fx < 3x\n",
                     uv_scale);
        ok = false;
    }
    if (kernel_scale >= uv_scale) {
        std::fprintf(stderr,
                     "FAIL: kernel-mediated scaled as well as "
                     "user-vectored (%.2fx >= %.2fx)\n",
                     kernel_scale, uv_scale);
        ok = false;
    }
    return ok ? 0 : 1;
}
