/**
 * @file
 * Multi-hart exception-delivery scaling: the paper's Tera argument
 * (section 2) in miniature. N harts each run a tight user-mode loop
 * taking one breakpoint exception per iteration, under two delivery
 * mechanisms on identical hardware:
 *
 *   - kernel-mediated: every exception funnels through the shared
 *     general vector. The handler's own state is per-hart (indexed by
 *     PrId), but entry serializes on the shared kernel-stack lock —
 *     modeled by os::KernelStackLock, charged from an instruction
 *     observer at each general-vector delivery — so aggregate
 *     throughput flattens as harts are added;
 *
 *   - user-vectored (COP3): each exception vectors directly to the
 *     faulting hart's user handler and touches only per-hart state,
 *     so aggregate throughput scales linearly.
 *
 * Two kinds of numbers come out, and the JSON schema keeps them
 * apart:
 *
 *   - `analytic_*`: throughput in *simulated* cycles under the serial
 *     reference scheduler. The famous 8.00x at 8 harts is analytic —
 *     it says the modeled cost of user-vectored delivery has no
 *     shared term, not that any host ran faster. (Earlier revisions
 *     published these without the qualifier; the label is the fix.)
 *
 *   - `measured_*`: host wall-clock for the same user-vectored
 *     workload under the Serial, Barrier, and Relaxed schedulers
 *     (sim::SchedulerMode) — real threads, real speedup, bounded by
 *     the host's core count (`host_threads` in the config block).
 *
 * The schedule of the analytic runs is deterministic (round-robin,
 * fixed quantum): two identical invocations produce identical cycle
 * counts, which this bench verifies by running one configuration
 * twice. Exits nonzero if determinism or the scaling criteria fail;
 * the wall-clock criteria only gate on hosts with enough cores to
 * mean anything.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/multihart.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "sim/machine.h"

using namespace uexc;
using namespace uexc::sim;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

/** Physical frame backing the (read-only, shared) worker text page. */
constexpr Addr kWorkerPhys = 0x00210000;
constexpr unsigned kAsid = 1;

/** Scheduler quantum for the analytic runs: small enough that harts
 *  genuinely interleave within a run, large enough to amortize
 *  nothing — cycle counts do not depend on it, only the interleaving
 *  order does. */
constexpr InstCount kQuantum = 500;

/** Quantum for the wall-clock runs: large enough that one barrier
 *  rendezvous amortizes over a real slice of work. */
constexpr InstCount kMeasuredQuantum = 4000;

struct StudyResult
{
    unsigned harts = 0;
    std::uint64_t exceptions = 0;
    Cycles maxHartCycles = 0;
    Cycles lockSpin = 0;
    std::uint64_t lockContended = 0;
    /** Aggregate delivered exceptions per 1000 *simulated* cycles. */
    double throughput = 0;
    /** Per-hart cycle counts, for the determinism fingerprint. */
    std::vector<Cycles> hartCycles;
};

/** Charges the kernel-stack lock on every general-vector delivery. */
class LockChargeObserver : public InstObserver
{
  public:
    explicit LockChargeObserver(Machine &m) : machine_(m) {}

    void onInst(Addr, const DecodedInst &, Cycles) override {}

    void onException(ExcCode, Addr, Addr vector) override
    {
        // Like os::Kernel, a uniprocessor build compiles the lock
        // out — only multi-hart machines pay for it.
        if (vector != Cpu::GeneralVector || machine_.numHarts() < 2)
            return;
        Cpu &cpu = machine_.cpu();
        cpu.charge(lock_.acquire(cpu.cycles(),
                                 os::charge::KernelStackHold));
    }

    const os::KernelStackLock &lock() const { return lock_; }

  private:
    Machine &machine_;
    os::KernelStackLock lock_;
};

/** Boot the study workload: N harts in the break/count loop, either
 *  user-vectored or kernel-mediated. */
void
setupStudy(Machine &m, unsigned n, bool user_vectored)
{
    m.load(rt::multihart::buildKernelImage(n));
    Program worker = rt::multihart::buildWorkerProgram(n);
    m.mem().writeBlock(kWorkerPhys, worker.words.data(),
                       4 * worker.words.size());

    for (unsigned i = 0; i < n; i++) {
        Hart &h = m.hart(i);
        // Wired identity mapping of the worker text page.
        h.tlb().setEntry(0,
                         (os::kUserTextBase & entryhi::VpnMask) |
                             (kAsid << entryhi::AsidShift),
                         (kWorkerPhys & entrylo::PfnMask) |
                             entrylo::V);
        Word st = h.cp0().statusReg() | status::KUc;
        if (user_vectored) {
            st |= status::UV;
            h.cp0().setUxReg(UxReg::Target,
                             worker.symbol("mh_uv_handler"));
        }
        h.cp0().setStatusReg(st);
        h.cp0().write(cp0reg::EntryHi, kAsid << entryhi::AsidShift);
        h.setPc(worker.symbol("mh_hart" + std::to_string(i) +
                              "_entry"));
    }
}

/** The analytic study: simulated-cycle throughput on the serial
 *  reference scheduler, kernel-stack lock charged via the observer. */
StudyResult
runAnalyticStudy(unsigned n, bool user_vectored,
                 InstCount insts_per_hart)
{
    MachineConfig cfg;
    cfg.harts = n;
    cfg.quantum = kQuantum;
    cfg.cpu.userVectorHw = true;    // same hardware in both modes
    cfg.scheduler = SchedulerMode::Serial;
    Machine m(cfg);
    setupStudy(m, n, user_vectored);

    LockChargeObserver observer(m);
    m.cpu().setObserver(&observer);
    m.run(static_cast<InstCount>(n) * insts_per_hart);

    StudyResult r;
    r.harts = n;
    for (unsigned i = 0; i < n; i++) {
        const Hart &h = m.hart(i);
        r.exceptions += user_vectored
                            ? h.stats().userVectoredExceptions
                            : h.stats().exceptionsTaken;
        r.maxHartCycles = std::max(r.maxHartCycles, h.cycles());
        r.hartCycles.push_back(h.cycles());
    }
    r.lockSpin = observer.lock().spinCycles();
    r.lockContended = observer.lock().contendedAcquires();
    r.throughput = r.maxHartCycles
                       ? 1000.0 * static_cast<double>(r.exceptions) /
                             static_cast<double>(r.maxHartCycles)
                       : 0;

    // Cross-check against the guest's own counters: the kernel
    // handler counts in the hart's mh_save slot, the worker counts
    // completed iterations in s0.
    for (unsigned i = 0; i < n; i++) {
        Word guest =
            user_vectored
                ? m.hart(i).reg(S0)
                : m.debugReadWord(m.symbol("mh_save") +
                                  i * os::hartsave::Bytes);
        Word delivered = user_vectored
                             ? m.hart(i).stats().userVectoredExceptions
                             : m.hart(i).stats().exceptionsTaken;
        // s0 / the save slot trail delivery by at most the partial
        // iteration in flight when the budget ran out.
        if (guest + 1 < delivered) {
            std::fprintf(stderr,
                         "hart %u: guest counted %u of %u delivered "
                         "exceptions\n", i, guest, delivered);
            std::exit(1);
        }
    }
    return r;
}

/** One wall-clock measurement: the user-vectored workload (the one
 *  with no shared guest state, so the Barrier scheduler commits every
 *  round) on the fast interpreter under the given scheduler. Returns
 *  seconds. No observer — the barrier scheduler correctly falls back
 *  to serial quanta under one, which would measure nothing. */
double
runMeasured(unsigned n, SchedulerMode sched, InstCount insts_per_hart)
{
    MachineConfig cfg;
    cfg.harts = n;
    cfg.quantum = kMeasuredQuantum;
    cfg.cpu.userVectorHw = true;
    cfg.cpu.fastInterpreter = true;
    cfg.scheduler = sched;
    Machine m(cfg);
    setupStudy(m, n, true);

    auto t0 = std::chrono::steady_clock::now();
    m.run(static_cast<InstCount>(n) * insts_per_hart);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    banner("Multi-hart scaling: kernel-mediated vs user-vectored "
           "delivery");

    InstCount insts_per_hart = 40000;
    if (const char *iters = std::getenv("UEXC_BENCH_ITERS"))
        insts_per_hart = std::strtoull(iters, nullptr, 10);
    // Wall-clock runs need enough work per hart that thread startup
    // and round rendezvous amortize.
    InstCount measured_per_hart = insts_per_hart * 25;

    const unsigned host_threads = std::max(
        1u, std::thread::hardware_concurrency());

    bench::JsonResults json("multihart");
    json.config("instsPerHart",
                static_cast<double>(insts_per_hart));
    json.config("measuredInstsPerHart",
                static_cast<double>(measured_per_hart));
    json.config("quantum", static_cast<double>(kQuantum));
    json.config("measuredQuantum",
                static_cast<double>(kMeasuredQuantum));
    json.config("kernelStackHoldCycles",
                static_cast<double>(os::charge::KernelStackHold));
    json.config("maxHarts",
                static_cast<double>(rt::multihart::kMaxHarts));
    json.config("hostThreads", static_cast<double>(host_threads));

    section("analytic: simulated-cycle throughput (serial reference "
            "scheduler)");
    std::printf("  %5s %20s %20s %16s\n", "harts",
                "kernel (exc/kcyc)", "user-vec (exc/kcyc)",
                "lock spin (cyc)");

    std::vector<StudyResult> kernel, uv;
    for (unsigned n = 1; n <= rt::multihart::kMaxHarts; n++) {
        kernel.push_back(runAnalyticStudy(n, false, insts_per_hart));
        uv.push_back(runAnalyticStudy(n, true, insts_per_hart));
        const StudyResult &k = kernel.back(), &u = uv.back();
        std::printf("  %5u %20.1f %20.1f %16llu\n", n, k.throughput,
                    u.throughput,
                    static_cast<unsigned long long>(k.lockSpin));

        std::string suffix = "_h" + std::to_string(n);
        json.metric("analytic_kernel_throughput" + suffix,
                    k.throughput, "exc/kcycle");
        json.metric("analytic_uv_throughput" + suffix, u.throughput,
                    "exc/kcycle");
        json.metric("analytic_kernel_lock_spin" + suffix,
                    static_cast<double>(k.lockSpin), "cycles");
        json.metric("analytic_kernel_lock_contended" + suffix,
                    static_cast<double>(k.lockContended), "acquires");
    }

    double kernel_scale =
        kernel.back().throughput / kernel.front().throughput;
    double uv_scale = uv.back().throughput / uv.front().throughput;
    json.metric("analytic_kernel_scaling_1_to_8", kernel_scale, "x");
    json.metric("analytic_uv_scaling_1_to_8", uv_scale, "x");

    section("analytic scaling 1 -> 8 harts (simulated cycles, not "
            "wall clock)");
    std::printf("  kernel-mediated: %.2fx (flattens on the kernel-"
                "stack lock)\n", kernel_scale);
    std::printf("  user-vectored:   %.2fx (per-hart state only)\n",
                uv_scale);
    noteLine("the Tera design point: with many streams sharing one "
             "kernel, delivery that bypasses the kernel is what "
             "keeps exception throughput scaling");

    // -- measured wall clock: real host threads -------------------------

    section("measured: host wall-clock, user-vectored workload "
            "(serial vs barrier vs relaxed)");
    std::printf("  host threads: %u\n", host_threads);
    std::printf("  %5s %12s %12s %12s %10s %10s\n", "harts",
                "serial (ms)", "barrier (ms)", "relaxed (ms)",
                "bar spd", "rel spd");

    double barrier_speedup_8 = 0, relaxed_speedup_8 = 0;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        double serial_s =
            runMeasured(n, SchedulerMode::Serial, measured_per_hart);
        double barrier_s =
            runMeasured(n, SchedulerMode::Barrier, measured_per_hart);
        double relaxed_s =
            runMeasured(n, SchedulerMode::Relaxed, measured_per_hart);
        double bar_spd = barrier_s > 0 ? serial_s / barrier_s : 0;
        double rel_spd = relaxed_s > 0 ? serial_s / relaxed_s : 0;
        std::printf("  %5u %12.1f %12.1f %12.1f %9.2fx %9.2fx\n", n,
                    1e3 * serial_s, 1e3 * barrier_s, 1e3 * relaxed_s,
                    bar_spd, rel_spd);

        std::string suffix = "_h" + std::to_string(n);
        json.metric("measured_serial_wall" + suffix, 1e3 * serial_s,
                    "ms");
        json.metric("measured_barrier_wall" + suffix,
                    1e3 * barrier_s, "ms");
        json.metric("measured_relaxed_wall" + suffix,
                    1e3 * relaxed_s, "ms");
        json.metric("measured_barrier_speedup" + suffix, bar_spd,
                    "x");
        json.metric("measured_relaxed_speedup" + suffix, rel_spd,
                    "x");
        if (n == 8) {
            barrier_speedup_8 = bar_spd;
            relaxed_speedup_8 = rel_spd;
        }
    }
    noteLine("analytic 8.00x is a cost-model statement; these rows "
             "are what the host actually did, bounded by its core "
             "count");

    // Determinism: the scheduler contract says two identical
    // invocations produce identical cycle counts.
    StudyResult a = runAnalyticStudy(4, false, insts_per_hart);
    StudyResult b = runAnalyticStudy(4, false, insts_per_hart);
    bool deterministic = a.hartCycles == b.hartCycles &&
                         a.exceptions == b.exceptions;
    json.metric("deterministic", deterministic ? 1 : 0, "bool");

    bool ok = true;
    if (!deterministic) {
        std::fprintf(stderr, "FAIL: repeated run diverged\n");
        ok = false;
    }
    if (uv_scale < 3.0) {
        std::fprintf(stderr,
                     "FAIL: analytic user-vectored scaling %.2fx "
                     "< 3x\n", uv_scale);
        ok = false;
    }
    if (kernel_scale >= uv_scale) {
        std::fprintf(stderr,
                     "FAIL: kernel-mediated scaled as well as "
                     "user-vectored (%.2fx >= %.2fx)\n",
                     kernel_scale, uv_scale);
        ok = false;
    }
    // Wall-clock gates only bind where the host can physically
    // deliver parallelism; a 1-core container legitimately measures
    // speedups below 1.
    if (host_threads >= 4) {
        if (relaxed_speedup_8 < 3.0) {
            std::fprintf(stderr,
                         "FAIL: measured relaxed speedup %.2fx < 3x "
                         "at 8 harts on a %u-thread host\n",
                         relaxed_speedup_8, host_threads);
            ok = false;
        }
        if (relaxed_speedup_8 < 0.9 * barrier_speedup_8) {
            std::fprintf(stderr,
                         "FAIL: relaxed (%.2fx) slower than barrier "
                         "(%.2fx)\n",
                         relaxed_speedup_8, barrier_speedup_8);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
