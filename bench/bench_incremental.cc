/**
 * @file
 * Ablation A8: incremental collection (the paper's collector is
 * "generational and incremental"). Two measurements:
 *
 *  1. pause control: max marking-slice pause versus the slice budget
 *     (the reason to be incremental at all);
 *  2. the consistency barrier's price: a mutation-heavy phase during
 *     marking, where every store into scanned territory is a
 *     protection fault — across all three delivery mechanisms.
 */

#include <cstdio>

#include "apps/gc/incremental.h"
#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

struct Rig
{
    explicit Rig(rt::DeliveryMode mode, unsigned slice)
        : machine(rt::micro::paperMachineConfig()), kernel(machine)
    {
        kernel.boot();
        env = std::make_unique<rt::UserEnv>(kernel, mode);
        env->install(0xffff);
        IncrementalCollector::Config cfg;
        cfg.sliceBudget = slice;
        gc = std::make_unique<IncrementalCollector>(*env, cfg);
    }

    sim::Machine machine;
    os::Kernel kernel;
    std::unique_ptr<rt::UserEnv> env;
    std::unique_ptr<IncrementalCollector> gc;
};

/** Build a linked structure of @p n cells; returns the head. */
Addr
buildChain(IncrementalCollector &gc, unsigned n)
{
    Addr prev = 0;
    for (unsigned i = 0; i < n; i++) {
        Addr cell = gc.alloc(3);
        gc.writeWord(cell, 2, prev);
        prev = cell;
    }
    return prev;
}

const char *
name(rt::DeliveryMode m)
{
    switch (m) {
      case rt::DeliveryMode::UltrixSignal: return "Ultrix signals";
      case rt::DeliveryMode::FastSoftware: return "fast software";
      default: return "hardware vector";
    }
}

} // namespace

int
main()
{
    banner("Ablation A8: incremental collection pauses and the "
           "retrace barrier");
    bench::JsonResults json("incremental");
    sim::CostModel cost;

    section("pause control: max slice pause vs slice budget "
            "(fast software delivery)");
    std::printf("  %-14s %16s %16s\n", "slice budget",
                "max pause (us)", "total mark (us)");
    for (unsigned slice : {8u, 32u, 128u, 512u, 4096u}) {
        Rig rig(rt::DeliveryMode::FastSoftware, slice);
        Addr head = buildChain(*rig.gc, 1500);
        rig.gc->setRoot(0, head);
        rig.gc->startCycle();
        rig.gc->finishCycle();
        std::printf("  %-14u %16.1f %16.1f\n", slice,
                    cost.toMicros(rig.gc->stats().maxPauseCycles),
                    cost.toMicros(rig.gc->stats().totalPauseCycles));
        json.metric("max pause (slice=" + std::to_string(slice) + ")",
                    cost.toMicros(rig.gc->stats().maxPauseCycles),
                    "us");
    }
    noteLine("the slice budget bounds the pause; the barrier is what "
             "keeps bounded pauses *correct*");

    section("barrier price: mutation during marking, by mechanism");
    std::printf("  %-18s %14s %14s\n", "mechanism",
                "cycles", "retrace faults");
    for (auto mode : {rt::DeliveryMode::UltrixSignal,
                      rt::DeliveryMode::FastSoftware,
                      rt::DeliveryMode::FastHardwareVector}) {
        Rig rig(mode, 16);
        Addr head = buildChain(*rig.gc, 600);
        rig.gc->setRoot(0, head);
        rig.gc->startCycle();
        // interleave marking with stores into already-scanned cells
        Cycles before = rig.env->cycles();
        Addr fresh = rig.gc->alloc(2);
        for (unsigned i = 0; i < 150 && rig.gc->collecting(); i++) {
            rig.gc->writeWord(head, 0, fresh);   // scanned territory
            rig.gc->step();
        }
        rig.gc->finishCycle();
        std::printf("  %-18s %14llu %14llu\n", name(mode),
                    static_cast<unsigned long long>(rig.env->cycles() -
                                                    before),
                    static_cast<unsigned long long>(
                        rig.gc->stats().retraceFaults));
        json.metric(std::string("barrier cycles ") + name(mode),
                    static_cast<double>(rig.env->cycles() - before),
                    "cycles");
    }

    section("notes");
    noteLine("every retrace fault is a full delivery of the "
             "configured mechanism; cheap exceptions are what make "
             "VM-synchronized incremental collection competitive "
             "(Appel-Ellis-Li style, which the paper's fast scheme "
             "targets)");
    return 0;
}
