/**
 * @file
 * Ablation A6: conditional watchpoints (the Wahbe '92 use case from
 * the paper's introduction). Measures the per-write overhead of an
 * armed watchpoint under each delivery mechanism, and the subpage
 * granularity's effect on false-fault overhead when unrelated
 * traffic shares the watched page.
 */

#include <cstdio>

#include "apps/watch/watch.h"
#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

constexpr Addr kRegion = 0x10000000;

struct Rig
{
    Rig(rt::DeliveryMode mode, bool subpages)
        : machine(rt::micro::paperMachineConfig()), kernel(machine)
    {
        kernel.boot();
        env = std::make_unique<rt::UserEnv>(kernel, mode);
        env->install(0xffff);
        env->allocate(kRegion, os::kPageBytes);
        WatchpointEngine::Config cfg;
        cfg.useSubpages = subpages;
        engine = std::make_unique<WatchpointEngine>(*env, cfg);
    }

    sim::Machine machine;
    os::Kernel kernel;
    std::unique_ptr<rt::UserEnv> env;
    std::unique_ptr<WatchpointEngine> engine;
};

const char *
name(rt::DeliveryMode m)
{
    switch (m) {
      case rt::DeliveryMode::UltrixSignal: return "Ultrix signals";
      case rt::DeliveryMode::FastSoftware: return "fast software";
      default: return "hardware vector";
    }
}

} // namespace

int
main()
{
    banner("Ablation A6: conditional watchpoints via protection "
           "faults");
    bench::JsonResults json("watch");
    sim::CostModel cost;
    constexpr unsigned kWrites = 50;

    section("cost per write to a *watched* word");
    for (auto mode : {rt::DeliveryMode::UltrixSignal,
                      rt::DeliveryMode::FastSoftware,
                      rt::DeliveryMode::FastHardwareVector}) {
        Rig rig(mode, false);
        rig.engine->watch(kRegion, [](Addr, Word, Word) {});
        rig.engine->store(kRegion, 0);   // warm
        Cycles before = rig.env->cycles();
        for (unsigned i = 0; i < kWrites; i++)
            rig.engine->store(kRegion, i);
        double us = cost.toMicros(rig.env->cycles() - before) / kWrites;
        std::printf("  %-18s %8.2f us/write\n", name(mode), us);
        json.metric(std::string("watched write ") + name(mode), us,
                    "us");
    }

    section("unrelated traffic on the watched page "
            "(the false-fault problem)");
    for (bool subpages : {false, true}) {
        Rig rig(rt::DeliveryMode::FastSoftware, subpages);
        rig.engine->watch(kRegion, [](Addr, Word, Word) {});
        rig.engine->store(kRegion + 0x900, 0);   // warm
        Cycles before = rig.env->cycles();
        for (unsigned i = 0; i < kWrites; i++)
            rig.engine->store(kRegion + 0x900 + 4 * (i % 32), i);
        double us = cost.toMicros(rig.env->cycles() - before) / kWrites;
        json.metric(subpages ? "unrelated write (subpage)"
                             : "unrelated write (page)", us, "us");
        std::printf("  %-34s %8.2f us/unrelated write "
                    "(%llu user faults, %llu kernel emulations)\n",
                    subpages ? "1 KB subpage granularity (3.2.4)"
                             : "4 KB page granularity",
                    us,
                    static_cast<unsigned long long>(
                        rig.engine->stats().falseFaults),
                    static_cast<unsigned long long>(
                        rig.kernel.subpageEmulations()));
    }

    section("notes");
    noteLine("cheap exceptions are what make always-on data "
             "watchpoints usable; subpage protection additionally "
             "keeps unrelated same-page traffic out of the user "
             "handler entirely");
    return 0;
}
