/**
 * @file
 * Table 4: comparative performance of generational garbage
 * collection with the page-protection write barrier under stock
 * Ultrix signals vs. the fast exception mechanism (with eager
 * amplification). The paper reports:
 *
 *     Lisp Operations:  24 s -> 23 s   (~4% improvement)
 *     Array Test:        2 s -> 1.8 s  (~10% improvement)
 *
 * The workloads here are scaled down in absolute time (DESIGN.md);
 * the regime — on the order of 80 collections and 2000+ protection
 * faults per run — and the relative improvement are the reproduced
 * quantities. A software-check barrier column is included for the
 * Table 5 discussion.
 */

#include <cstdio>

#include "apps/gc/workloads.h"
#include "bench_util.h"
#include "core/microbench.h"

using namespace uexc;
using namespace uexc::apps;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Table 4: generational garbage collection, "
           "Ultrix signals vs fast exceptions");

    bench::JsonResults json("table4");
    GcWorkloadParams params;  // defaults: the paper's fault regime

    auto run_one = [&](rt::DeliveryMode mode, BarrierKind barrier,
                       bool lisp) {
        sim::Machine machine(rt::micro::paperMachineConfig());
        os::Kernel kernel(machine);
        kernel.boot();
        rt::UserEnv env(kernel, mode);
        env.install(0xffff);
        return lisp ? runLispOps(env, barrier, params)
                    : runArrayTest(env, barrier, params);
    };

    struct App
    {
        const char *name;
        bool lisp;
        double paper_ultrix_s;
        double paper_fast_s;
    };
    const App apps[] = {
        {"Lisp Operations", true, 24.0, 23.0},
        {"Array Test", false, 2.0, 1.8},
    };

    for (const App &app : apps) {
        section(app.name);
        GcRunResult ultrix = run_one(rt::DeliveryMode::UltrixSignal,
                                     BarrierKind::PageProtection,
                                     app.lisp);
        GcRunResult fast = run_one(rt::DeliveryMode::FastSoftware,
                                   BarrierKind::PageProtection,
                                   app.lisp);
        GcRunResult checks = run_one(rt::DeliveryMode::FastSoftware,
                                     BarrierKind::SoftwareCheck,
                                     app.lisp);

        std::printf("  %-28s %12s %12s %12s\n", "",
                    "Ultrix sig.", "fast exc.", "sw checks");
        std::printf("  %-28s %9.3f s  %9.3f s  %9.3f s\n",
                    "CPU time (simulated)", ultrix.cpuSeconds,
                    fast.cpuSeconds, checks.cpuSeconds);
        std::printf("  %-28s %12llu %12llu %12llu\n",
                    "collections",
                    static_cast<unsigned long long>(
                        ultrix.gc.collections),
                    static_cast<unsigned long long>(
                        fast.gc.collections),
                    static_cast<unsigned long long>(
                        checks.gc.collections));
        std::printf("  %-28s %12llu %12llu %12llu\n",
                    "protection faults",
                    static_cast<unsigned long long>(
                        ultrix.gc.barrierFaults),
                    static_cast<unsigned long long>(
                        fast.gc.barrierFaults),
                    static_cast<unsigned long long>(
                        checks.gc.barrierFaults));
        std::printf("  %-28s %12s %12s %12llu\n", "barrier checks",
                    "-", "-",
                    static_cast<unsigned long long>(
                        checks.gc.barrierChecks));

        double paper_impr = 100.0 * (1.0 - app.paper_fast_s /
                                               app.paper_ultrix_s);
        double measured_impr =
            100.0 * (1.0 - fast.cpuSeconds / ultrix.cpuSeconds);
        std::printf("  improvement from fast exceptions: paper %.0f%%, "
                    "measured %.1f%%\n", paper_impr, measured_impr);

        std::string prefix = app.name;
        json.metric(prefix + " ultrix", ultrix.cpuSeconds, "s");
        json.metric(prefix + " fast", fast.cpuSeconds, "s");
        json.metric(prefix + " sw-checks", checks.cpuSeconds, "s");
        json.metric(prefix + " improvement", measured_impr, "%");
        json.metric(prefix + " improvement (paper)", paper_impr, "%");
    }

    section("notes");
    noteLine("absolute seconds are scaled down from the paper's runs; "
             "the relative improvement is the reproduced quantity");
    noteLine("the paper: improvement is highly dependent on how often "
             "the application creates older-to-younger pointers");
    return 0;
}
