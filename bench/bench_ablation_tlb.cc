/**
 * @file
 * Ablation A2: user-level TLB protection modification (section
 * 3.2.3): the proposed TLBMP hardware (gated by the per-entry U bit)
 * vs. the kernel's software emulation of the unused opcode vs. a
 * full mprotect() system call.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/env.h"
#include "core/microbench.h"

using namespace uexc;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

Cycles
measureOp(bool tlbmp_hw, bool use_mprotect)
{
    sim::MachineConfig cfg = rt::micro::paperMachineConfig();
    cfg.cpu.tlbmpHw = tlbmp_hw;
    sim::Machine machine(cfg);
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);
    constexpr Addr kPage = 0x10000000;
    env.allocate(kPage, os::kPageBytes);
    env.protect(kPage, os::kPageBytes, os::kProtRead);  // grants U
    env.load(kPage);  // pull the mapping into the TLB

    // warm one operation, measure the second
    auto op = [&](bool writable) {
        if (use_mprotect) {
            env.protect(kPage, os::kPageBytes,
                        os::kProtRead |
                            (writable ? os::kProtWrite : 0u));
        } else {
            env.userTlbModify(kPage, writable, true);
        }
    };
    op(true);
    op(false);
    env.load(kPage);
    Cycles before = env.cycles();
    op(true);
    return env.cycles() - before;
}

} // namespace

int
main()
{
    banner("Ablation A2: protection change mechanisms "
           "(section 3.2.3)");

    bench::JsonResults json("ablation_tlb");
    Cycles hw = measureOp(true, false);
    Cycles emul = measureOp(false, false);
    Cycles mprotect_cost = measureOp(true, true);

    sim::CostModel cost;
    json.metric("tlbmp hardware", static_cast<double>(hw), "cycles");
    json.metric("kernel emulation", static_cast<double>(emul),
                "cycles");
    json.metric("mprotect syscall",
                static_cast<double>(mprotect_cost), "cycles");
    std::printf("  %-52s %8.2f us (%llu cycles)\n",
                "TLBMP hardware (U bit set, entry resident)",
                cost.toMicros(hw), static_cast<unsigned long long>(hw));
    std::printf("  %-52s %8.2f us (%llu cycles)\n",
                "kernel emulation of the unused opcode (RI trap)",
                cost.toMicros(emul),
                static_cast<unsigned long long>(emul));
    std::printf("  %-52s %8.2f us (%llu cycles)\n",
                "mprotect() system call",
                cost.toMicros(mprotect_cost),
                static_cast<unsigned long long>(mprotect_cost));

    section("notes");
    noteLine("with the hardware, a handler can amplify or restrict "
             "page access in a few cycles, completing the paper's "
             "goal of processing access-detection exceptions "
             "entirely at user level");
    noteLine("the software emulation is a full RI trap through the "
             "stock path (the paper: 'a software approach may not "
             "provide acceptable performance in this case')");
    return 0;
}
