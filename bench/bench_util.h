/**
 * @file
 * Shared output helpers for the table/figure benchmarks: aligned
 * columns and paper-vs-measured rows, so every bench prints the same
 * way EXPERIMENTS.md records them — plus a tiny JSON results writer
 * so sweeps can be consumed by scripts without scraping the tables.
 */

#ifndef UEXC_BENCH_BENCH_UTIL_H
#define UEXC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace uexc::bench {

inline void
banner(const char *title)
{
    std::printf("\n%s\n", title);
    for (const char *p = title; *p; p++)
        std::putchar('=');
    std::printf("\n\n");
}

inline void
section(const char *title)
{
    std::printf("\n-- %s --\n", title);
}

class JsonResults;

/** The JsonResults currently collecting (see JsonResults ctor);
 *  paperRow records measured values into it automatically. */
inline JsonResults *g_activeJson = nullptr;

void paperRow(const char *label, double paper, double measured,
              const char *unit);

inline void
noteLine(const char *text)
{
    std::printf("  note: %s\n", text);
}

/**
 * Machine-readable companion to the stdout report. Collect config
 * keys and metric rows while the bench runs; the destructor writes
 * `BENCH_<name>.json` in the working directory:
 *
 *   { "bench": "<name>",
 *     "config": { "<key>": <value>, ... },
 *     "metrics": [ { "name": ..., "value": ..., "unit": ... }, ... ] }
 */
class JsonResults
{
  public:
    explicit JsonResults(std::string name) : name_(std::move(name))
    {
        g_activeJson = this;
    }
    ~JsonResults()
    {
        write();
        if (g_activeJson == this)
            g_activeJson = nullptr;
    }
    JsonResults(const JsonResults &) = delete;
    JsonResults &operator=(const JsonResults &) = delete;

    void config(const std::string &key, const std::string &value)
    {
        config_.emplace_back(key, quote(value));
    }
    void config(const std::string &key, double value)
    {
        config_.emplace_back(key, number(value));
    }

    void metric(const std::string &name, double value,
                const std::string &unit)
    {
        metrics_.push_back({name, value, unit});
    }

    /** Write BENCH_<name>.json now (the destructor calls this too). */
    void write()
    {
        if (written_)
            return;
        written_ = true;
        std::string path = "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": %s,\n  \"config\": {",
                     quote(name_).c_str());
        for (size_t i = 0; i < config_.size(); i++) {
            std::fprintf(f, "%s\n    %s: %s", i ? "," : "",
                         quote(config_[i].first).c_str(),
                         config_[i].second.c_str());
        }
        std::fprintf(f, "%s},\n  \"metrics\": [",
                     config_.empty() ? "" : "\n  ");
        for (size_t i = 0; i < metrics_.size(); i++) {
            const Metric &m = metrics_[i];
            std::fprintf(f,
                         "%s\n    { \"name\": %s, \"value\": %s, "
                         "\"unit\": %s }",
                         i ? "," : "", quote(m.name).c_str(),
                         number(m.value).c_str(),
                         quote(m.unit).c_str());
        }
        std::fprintf(f, "%s]\n}\n", metrics_.empty() ? "" : "\n  ");
        std::fclose(f);
        std::printf("\nresults: %s (%zu metrics)\n", path.c_str(),
                    metrics_.size());
    }

  private:
    struct Metric
    {
        std::string name;
        double value;
        std::string unit;
    };

    static std::string quote(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
                continue;
            }
            out += c;
        }
        return out + "\"";
    }

    static std::string number(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.10g", v);
        return buf;
    }

    std::string name_;
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<Metric> metrics_;
    bool written_ = false;
};

inline void
paperRow(const char *label, double paper, double measured,
         const char *unit)
{
    std::printf("  %-46s paper %8.1f %-4s  measured %8.1f %-4s"
                "  (x%.2f)\n",
                label, paper, unit, measured, unit,
                paper > 0 ? measured / paper : 0.0);
    if (g_activeJson) {
        g_activeJson->metric(label, measured, unit);
        g_activeJson->metric(std::string(label) + " (paper)", paper,
                             unit);
    }
}

} // namespace uexc::bench

#endif // UEXC_BENCH_BENCH_UTIL_H
