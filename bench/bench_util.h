/**
 * @file
 * Shared output helpers for the table/figure benchmarks: aligned
 * columns and paper-vs-measured rows, so every bench prints the same
 * way EXPERIMENTS.md records them.
 */

#ifndef UEXC_BENCH_BENCH_UTIL_H
#define UEXC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace uexc::bench {

inline void
banner(const char *title)
{
    std::printf("\n%s\n", title);
    for (const char *p = title; *p; p++)
        std::putchar('=');
    std::printf("\n\n");
}

inline void
section(const char *title)
{
    std::printf("\n-- %s --\n", title);
}

/** A "paper vs measured" row with a ratio column. */
inline void
paperRow(const char *label, double paper, double measured,
         const char *unit)
{
    std::printf("  %-46s paper %8.1f %-4s  measured %8.1f %-4s"
                "  (x%.2f)\n",
                label, paper, unit, measured, unit,
                paper > 0 ? measured / paper : 0.0);
}

inline void
noteLine(const char *text)
{
    std::printf("  note: %s\n", text);
}

} // namespace uexc::bench

#endif // UEXC_BENCH_BENCH_UTIL_H
