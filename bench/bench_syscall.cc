/**
 * @file
 * Per-syscall cycle costs of the Ultrix-flavored syscall layer, as a
 * user process measures them: each case is a small assembled guest
 * program that brackets a syscall loop between two one-shot labels;
 * breakpoints on the labels read the cycle counter before and after,
 * so the reported number is the full user-observed round trip (trap,
 * guest-kernel dispatch, hcall service + charge, restore path).
 *
 * The sbrk case also touches every page it grows, so its number
 * includes the TLB-refill pressure fresh heap pages generate — the
 * cost a growing process actually pays, not just the service time.
 *
 * Emits BENCH_syscall.json alongside the stdout table.
 */

#include <cstdio>
#include <functional>
#include <string>

#include "bench_util.h"
#include "common/logging.h"
#include "os/elf.h"
#include "os/guestimage.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "os/syscalls.h"
#include "sim/machine.h"
#include "sim/pseudo.h"

using namespace uexc;
using namespace uexc::sim;
using namespace uexc::os;

namespace {

constexpr unsigned kIters = 64;     ///< loop count, cheap syscalls
constexpr unsigned kForkIters = 8;  ///< loop count, fork+wait
constexpr Word kIoBytes = 64;       ///< read/write transfer size

/** The common program tail: exit(0), a park loop, and the path
 *  string the file cases open. */
void
emitTail(Assembler &a)
{
    a.label("exit0");
    a.li(A0, 0);
    pseudo::emitSyscall(a, sys::Exit);
    a.label("park");
    a.j("park");
    a.nop();
    a.align(4);
    a.label("path");
    a.word(0x636e6562); // "benc"
    a.word(0x00000068); // "h\0\0\0"
}

/** Count down S0 from @p iters around the body @p emit_op emits,
 *  with one-shot bench_begin/bench_end labels outside the loop. */
void
emitBenchLoop(Assembler &a, unsigned iters,
              const std::function<void(Assembler &)> &emit_op)
{
    a.li(S0, iters);
    a.label("bench_begin");
    a.nop();
    a.label("loop");
    emit_op(a);
    a.addiu(S0, S0, -1);
    a.bne(S0, Zero, "loop");
    a.nop();
    a.label("bench_end");
    a.nop();
    a.j("exit0");
    a.nop();
}

GuestImage
buildCase(const std::string &name,
          const std::function<void(Assembler &)> &emit_setup,
          unsigned iters,
          const std::function<void(Assembler &)> &emit_op)
{
    Assembler a(kUserTextBase);
    a.label("_start");
    emit_setup(a);
    emitBenchLoop(a, iters, emit_op);
    emitTail(a);
    GuestImage img =
        GuestImage::fromProgram(a.finalize(), "bench-" + name);
    img.entry = img.symbol("_start");
    img.validate();
    return img;
}

/** Run @p img to the bench_begin/bench_end breakpoints and return
 *  the cycles one loop iteration costs. */
Cycles
measure(const GuestImage &img, unsigned iters)
{
    Machine machine{MachineConfig{}};
    Kernel kernel(machine);
    kernel.boot();
    Process &p = kernel.createProcess();
    kernel.execve(p, img, {img.name});
    machine.cpu().addBreakpoint(img.symbol("bench_begin"));
    machine.cpu().addBreakpoint(img.symbol("bench_end"));

    MachineRunResult r = machine.run(50'000'000);
    if (r.reason != StopReason::Breakpoint)
        UEXC_FATAL("%s: never reached bench_begin", img.name.c_str());
    Cycles c0 = machine.cpu().cycles();
    r = machine.run(50'000'000);
    if (r.reason != StopReason::Breakpoint)
        UEXC_FATAL("%s: never reached bench_end", img.name.c_str());
    Cycles c1 = machine.cpu().cycles();
    return (c1 - c0) / iters;
}

void
row(const char *label, Cycles per_op)
{
    std::printf("  %-28s %6llu cycles/op\n", label,
                static_cast<unsigned long long>(per_op));
    if (bench::g_activeJson)
        bench::g_activeJson->metric(label, double(per_op), "cycles");
}

void
emitOpenRdwr(Assembler &a)
{
    pseudo::loadAddress(a, A0, "path");
    a.li(A1, kOpenRdwr);
    pseudo::emitSyscall(a, sys::Open);
}

void
emitClose(Assembler &a)
{
    a.move(A0, V0);
    pseudo::emitSyscall(a, sys::Close);
}

} // namespace

int
main()
{
    bench::JsonResults json("syscall");
    json.config("iters", double(kIters));
    json.config("fork_iters", double(kForkIters));
    json.config("io_bytes", double(kIoBytes));

    bench::banner("Syscall round-trip costs (user-observed)");

    // getpid: the guest table's fastest row, no hcall bridge
    row("getpid", measure(buildCase(
        "getpid", [](Assembler &) {},
        kIters, [](Assembler &a) {
            pseudo::emitSyscall(a, sys::Getpid);
        }), kIters));

    // open+close of an existing VFS file, per pair
    row("open+close", measure(buildCase(
        "openclose",
        [](Assembler &a) {
            // create the file once, close it
            pseudo::loadAddress(a, A0, "path");
            a.li32(A1, kOpenCreate | kOpenWrite);
            pseudo::emitSyscall(a, sys::Open);
            emitClose(a);
        },
        kIters, [](Assembler &a) {
            emitOpenRdwr(a);
            emitClose(a);
        }), kIters));

    // write of kIoBytes to a VFS file (text page as source buffer)
    row("write 64B", measure(buildCase(
        "write",
        [](Assembler &a) {
            pseudo::loadAddress(a, A0, "path");
            a.li32(A1, kOpenCreate | kOpenWrite);
            pseudo::emitSyscall(a, sys::Open);
            a.move(S1, V0);
        },
        kIters, [](Assembler &a) {
            a.move(A0, S1);
            a.li32(A1, kUserTextBase);
            a.li(A2, kIoBytes);
            pseudo::emitSyscall(a, sys::Write);
        }), kIters));

    // read of kIoBytes back (setup writes kIters * kIoBytes first)
    row("read 64B", measure(buildCase(
        "read",
        [](Assembler &a) {
            pseudo::loadAddress(a, A0, "path");
            a.li32(A1, kOpenCreate | kOpenWrite);
            pseudo::emitSyscall(a, sys::Open);
            a.move(S1, V0);
            a.li(S2, kIters);
            a.label("fill");
            a.move(A0, S1);
            a.li32(A1, kUserTextBase);
            a.li(A2, kIoBytes);
            pseudo::emitSyscall(a, sys::Write);
            a.addiu(S2, S2, -1);
            a.bne(S2, Zero, "fill");
            a.nop();
            a.move(A0, S1);
            pseudo::emitSyscall(a, sys::Close);
            pseudo::loadAddress(a, A0, "path");
            a.li(A1, kOpenRead);
            pseudo::emitSyscall(a, sys::Open);
            a.move(S1, V0);
        },
        kIters, [](Assembler &a) {
            a.move(A0, S1);
            // read into the bottom stack page (mapped, far below sp)
            a.li32(A1, kUserStackTop - 8 * kPageBytes);
            a.li(A2, kIoBytes);
            pseudo::emitSyscall(a, sys::Read);
        }), kIters));

    // sbrk one page, then store to it: service cost plus the TLB
    // refill(s) a fresh heap page costs the process
    row("sbrk page+touch", measure(buildCase(
        "sbrk", [](Assembler &) {},
        kIters, [](Assembler &a) {
            a.li32(A0, kPageBytes);
            pseudo::emitSyscall(a, sys::Sbrk);
            a.sw(Zero, 0, V0);
        }), kIters));

    // fork + immediate child exit + wait, per cycle of all three
    row("fork+exit+wait", measure(buildCase(
        "fork", [](Assembler &) {},
        kForkIters, [](Assembler &a) {
            pseudo::emitSyscall(a, sys::Fork);
            a.beq(V0, Zero, "exit0"); // child: exit(0) immediately
            a.nop();
            a.li(A0, 0);              // parent: wait, discard status
            pseudo::emitSyscall(a, sys::Wait);
        }), kForkIters));

    bench::noteLine("write source is the mapped text page, read "
                    "target the bottom stack page; transfer charges "
                    "dominate placement");
    return 0;
}
