/**
 * @file
 * Ablation A1: direct hardware user vectoring (the section 2
 * architectural proposal) vs. the software scheme. The paper
 * estimates "perhaps another two- or three-fold performance
 * improvement can be achieved with the hardware approach"; with the
 * Tera-style exchange there is no kernel code on the path at all, so
 * the simulated gain is larger — the estimate was conservative.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/microbench.h"

using namespace uexc;
using namespace uexc::rt::micro;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Ablation A1: hardware user vectoring vs software scheme");

    bench::JsonResults json("ablation_hw");
    sim::MachineConfig cfg = paperMachineConfig();
    Timing sw = measure(Scenario::FastSimple, cfg);
    Timing hw = measure(Scenario::HwVectorSimple, cfg);
    Timing hwt = measure(Scenario::HwVectorTableSimple, cfg);
    Timing ultrix = measure(Scenario::UltrixSimple, cfg);

    std::printf("  %-42s %10s %10s\n", "scheme", "deliver", "round "
                "trip");
    std::printf("  %-42s %7.1f us %7.1f us\n",
                "stock Ultrix signals", ultrix.deliverUs,
                ultrix.roundTripUs);
    std::printf("  %-42s %7.1f us %7.1f us\n",
                "fast software scheme (65-inst kernel path)",
                sw.deliverUs, sw.roundTripUs);
    std::printf("  %-42s %7.1f us %7.1f us\n",
                "hardware user vectoring (Tera-style)", hw.deliverUs,
                hw.roundTripUs);
    std::printf("  %-42s %7.1f us %7.1f us\n",
                "hardware vectoring via vector table (2.2)",
                hwt.deliverUs, hwt.roundTripUs);

    json.metric("ultrix round trip", ultrix.roundTripUs, "us");
    json.metric("software round trip", sw.roundTripUs, "us");
    json.metric("hardware round trip", hw.roundTripUs, "us");
    json.metric("hardware-table round trip", hwt.roundTripUs, "us");
    json.metric("hardware vs software",
                sw.roundTripUs / hw.roundTripUs, "x");

    section("speedups");
    std::printf("  software vs Ultrix:  %.1fx\n",
                ultrix.roundTripUs / sw.roundTripUs);
    std::printf("  hardware vs software: %.1fx (paper's estimate: "
                "2-3x, conservative)\n",
                sw.roundTripUs / hw.roundTripUs);
    std::printf("  hardware vs Ultrix:  %.0fx\n",
                ultrix.roundTripUs / hw.roundTripUs);
    noteLine("the hardware path executes zero kernel instructions: "
             "vector exchange + the user stub's scratch-register "
             "saves only");
    std::printf("  vector-table dispatch adds %.2f us over the "
                "single target register (the paper: 'seems to "
                "increase complexity with little likely performance "
                "gain')\n",
                hwt.roundTripUs - hw.roundTripUs);
    return 0;
}
