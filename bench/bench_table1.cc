/**
 * @file
 * Table 1: the cost of exception delivery on five 1994 OS/hardware
 * systems. The Ultrix column is measured on this repository's
 * simulator; the other systems are phase models anchored to the
 * figures the paper's text states (SunOS 69 us best case, Mach/UX
 * ~2 ms, raw Mach 256 us) — rebuilding four more operating systems is
 * out of scope, and the point of the table is the *structure*:
 * micro-kernel double hops >> monolithic signal paths >> the raw
 * hardware cost. See DESIGN.md and EXPERIMENTS.md.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/microbench.h"
#include "os/pathmodel.h"

using namespace uexc;
using namespace uexc::rt::micro;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Table 1: exception delivery cost across systems");

    bench::JsonResults json("table1");
    sim::MachineConfig cfg = paperMachineConfig();
    Timing ultrix = measure(Scenario::UltrixSimple, cfg);
    Timing ultrix_wp = measure(Scenario::UltrixWriteProt, cfg);

    auto models = os::table1Models(ultrix.deliverUs, ultrix.returnUs,
                                   ultrix_wp.deliverUs);

    std::printf("  %-24s %-36s %10s %12s %10s\n", "system", "hardware",
                "round trip", "write prot", "source");
    std::printf("  %-24s %-36s %10s %12s %10s\n", "", "", "(us)",
                "deliver (us)", "");
    for (const auto &m : models) {
        std::printf("  %-24s %-36s %10.0f %12.0f %10s\n",
                    m.system.c_str(), m.hardware.c_str(),
                    m.roundTripUs(), m.writeProtUs,
                    m.measured ? "measured" : "modeled");
        json.metric(m.system + " round trip", m.roundTripUs(), "us");
        json.metric(m.system + " write-prot deliver", m.writeProtUs,
                    "us");
    }

    section("phase decomposition");
    for (const auto &m : models) {
        std::printf("  %s:\n", m.system.c_str());
        for (const auto &p : m.phases)
            std::printf("      %-52s %8.1f us\n", p.name.c_str(), p.us);
    }

    section("the paper's stated anchors");
    noteLine("SunOS 4.1.3 is the best measured case at 69 us");
    noteLine("Mach/UX is ~2 ms: the exception visits the Unix server");
    noteLine("raw Mach (kernel-handled, no UX server) is 256 us");
    noteLine("Ultrix round trip is ~80 us; this simulator measures "
             "the column above");
    return 0;
}
