/**
 * @file
 * Recovery-cost benchmark: what the robustness machinery costs when
 * it is idle, and what each recovery path costs when it engages.
 *
 *  - baseline vs idle-injector delivery cost (must be identical:
 *    the zero-overhead gate keeps the fast interpreter path),
 *  - fast-mode delivery vs demoted (kernel-mediated) delivery: the
 *    price a process pays after the watchdog or canary trips,
 *  - the cost of recovering from one injected spurious TLB refill,
 *  - DSM miss cost under increasing message-loss rates (timeouts,
 *    backoff, and retransmissions, all in simulated cycles),
 *  - a seeded chaos campaign sweep whose first diagnosing seed is
 *    shrunk to a minimal repro window and saved as a repro file, so
 *    the printed `uexc-snap replay` line reproduces the failure
 *    without rerunning the campaign from boot.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/dsm/dsm.h"
#include "bench_util.h"
#include "common/logging.h"
#include "core/chaos.h"
#include "core/env.h"
#include "os/kernel.h"
#include "sim/faultinject.h"
#include "sim/machine.h"

using namespace uexc;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

namespace {

constexpr Addr kHeap = 0x10000000;

struct Env
{
    explicit Env(rt::DeliveryMode mode,
                 sim::FaultInjector *injector = nullptr)
    {
        sim::MachineConfig cfg;
        cfg.cpu.userVectorHw = true;
        cfg.cpu.tlbmpHw = true;
        cfg.cpu.faultInjector = injector;
        machine = std::make_unique<sim::Machine>(cfg);
        kernel = std::make_unique<os::Kernel>(*machine);
        kernel->boot();
        env = std::make_unique<rt::UserEnv>(*kernel, mode);
        env->install(0xffff);
        env->allocate(kHeap, os::kPageBytes);
        env->setHandler([this](rt::Fault &) {
            env->protect(kHeap, os::kPageBytes,
                         os::kProtRead | os::kProtWrite);
        });
    }

    /** Average delivery cost of one write-protection fault. */
    double faultCost(unsigned rounds)
    {
        Cycles total = 0;
        for (unsigned i = 0; i < rounds; i++) {
            env->protect(kHeap, os::kPageBytes, os::kProtRead);
            Cycles before = env->cycles();
            env->store(kHeap + 0x40, i);
            total += env->cycles() - before;
        }
        return static_cast<double>(total) / rounds;
    }

    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<os::Kernel> kernel;
    std::unique_ptr<rt::UserEnv> env;
};

double
dsmMissCost(unsigned loss, unsigned rounds)
{
    apps::DsmCluster::Config cfg;
    cfg.bytes = 4 * os::kPageBytes;
    cfg.networkLatencyCycles = 1000;
    cfg.unreliableNetwork = loss > 0;
    cfg.networkSeed = 99;
    cfg.lossPercent = loss;
    apps::DsmCluster dsm(cfg);
    constexpr Addr kBase = 0x40000000;
    dsm.write(0, kBase, 0);
    Cycles before = dsm.totalCycles();
    for (Word i = 0; i < rounds; i++)
        dsm.write(i % 2, kBase, i);
    return static_cast<double>(dsm.totalCycles() - before) / rounds;
}

} // namespace

int
main()
{
    banner("Recovery cost: fault injection and hardening overhead");
    bench::JsonResults json("faultinject");

    unsigned rounds = 50;
    if (const char *iters = std::getenv("UEXC_BENCH_ITERS"))
        rounds = static_cast<unsigned>(std::atoi(iters));
    json.config("rounds", static_cast<double>(rounds));

    section("idle injector: zero-overhead gate");
    {
        Env plain(rt::DeliveryMode::FastSoftware);
        sim::FaultInjector idle;
        Env hooked(rt::DeliveryMode::FastSoftware, &idle);
        double base = plain.faultCost(rounds);
        double gated = hooked.faultCost(rounds);
        std::printf("  no injector:   %8.1f cycles/fault\n", base);
        std::printf("  idle injector: %8.1f cycles/fault\n", gated);
        noteLine(base == gated
                     ? "bit-identical: the gate holds"
                     : "MISMATCH: idle injector perturbs execution");
        json.metric("delivery_baseline", base, "cycles/fault");
        json.metric("delivery_idle_injector", gated, "cycles/fault");
    }

    section("demotion: fast-mode vs kernel-mediated delivery");
    {
        Env fast(rt::DeliveryMode::FastSoftware);
        double clean = fast.faultCost(rounds);

        // Trip the watchdog once, then measure the demoted cost.
        sim::FaultInjector inj;
        Env victim(rt::DeliveryMode::FastSoftware, &inj);
        Addr stub = victim.env->stubAddr();
        Addr stub_pa =
            victim.env->process().as().physOf(stub &
                                              ~(os::kPageBytes - 1)) +
            (stub & (os::kPageBytes - 1));
        victim.env->setHandlerBudget(20000);
        inj.addEvent({sim::FaultKind::HandlerRunaway, 0, 0, stub_pa,
                      0, 0});
        victim.env->protect(kHeap, os::kPageBytes, os::kProtRead);
        victim.env->store(kHeap, 1);   // runaway -> demoted
        double demoted = victim.faultCost(rounds);

        std::printf("  fast delivery:    %8.1f cycles/fault\n", clean);
        std::printf("  demoted delivery: %8.1f cycles/fault "
                    "(x%.2f)\n", demoted, demoted / clean);
        json.metric("delivery_fast", clean, "cycles/fault");
        json.metric("delivery_demoted", demoted, "cycles/fault");
    }

    section("spurious TLB refill: recovery cost");
    {
        // Measure around a null guest syscall, the shortest guest run
        // with user-mode instructions the injector can interrupt.
        Env quiet(rt::DeliveryMode::FastSoftware);
        quiet.env->store(kHeap, 1);
        Cycles before = quiet.env->cycles();
        (void)quiet.env->guestSyscall(os::sys::Getpid);
        Cycles clean = quiet.env->cycles() - before;

        sim::FaultInjector inj;
        Env noisy(rt::DeliveryMode::FastSoftware, &inj);
        noisy.env->store(kHeap, 1);
        inj.addEvent({sim::FaultKind::SpuriousException, 0,
                      noisy.env->cpu().instret(), kHeap, 0, 0});
        before = noisy.env->cycles();
        (void)noisy.env->guestSyscall(os::sys::Getpid);
        Cycles repaired = noisy.env->cycles() - before;

        std::printf("  null syscall:                 %6llu cycles\n",
                    static_cast<unsigned long long>(clean));
        std::printf("  null syscall + injected miss: %6llu cycles\n",
                    static_cast<unsigned long long>(repaired));
        json.metric("spurious_refill_recovery",
                    static_cast<double>(repaired - clean), "cycles");
    }

    section("DSM page miss vs message-loss rate");
    std::printf("  %-10s %16s\n", "loss", "cycles/miss");
    for (unsigned loss : {0u, 5u, 10u, 20u}) {
        double cost = dsmMissCost(loss, rounds);
        std::printf("  %6u%%   %16.0f\n", loss, cost);
        char name[48];
        std::snprintf(name, sizeof name, "dsm_miss_loss_%u", loss);
        json.metric(name, cost, "cycles/miss");
    }
    noteLine("loss costs timeouts (50k cycles, doubling per retry) "
             "plus retransmissions");

    section("chaos campaign: minimal repro emission");
    {
        setLoggingEnabled(false);
        rt::chaos::Reference ref = rt::chaos::makeReference();
        unsigned scanned = 0, diagnosed = 0;
        bool emitted = false;
        for (std::uint64_t seed = 0x7001; seed <= 0x7190; seed++) {
            scanned++;
            rt::chaos::CampaignOutcome out =
                rt::chaos::runCampaign(seed, ref.window, ref.words);
            if (!out.diagnosed || emitted)
                continue;
            diagnosed++;
            rt::chaos::ReproWindow repro =
                rt::chaos::shrinkCampaign(seed, ref.window, ref.words);
            if (!repro.found)
                continue;
            std::string dir = ".";
            if (const char *d = std::getenv("UEXC_REPRO_DIR"))
                dir = d;
            std::string path = dir + "/bench_chaos_repro.uxsn";
            rt::chaos::writeReproFile(repro, path);
            std::printf("  seed 0x%llx diagnosed at op %u; shrunk to "
                        "ops [%u, %u) of %u\n",
                        static_cast<unsigned long long>(seed),
                        out.failOp, repro.startOp, repro.endOp,
                        rt::chaos::kTotalOps);
            std::printf("  %s\n",
                        rt::chaos::reproCommandLine(path).c_str());
            json.metric("repro_window_ops",
                        static_cast<double>(repro.endOp -
                                            repro.startOp),
                        "ops");
            json.metric("repro_file_bytes",
                        static_cast<double>(repro.snapshot.size()),
                        "bytes");
            emitted = true;
        }
        if (!emitted)
            noteLine("no diagnosing seed in the scanned range");
        std::printf("  scanned %u seeds\n", scanned);
        setLoggingEnabled(true);
    }

    return 0;
}
