/**
 * @file
 * Figure 4: eager vs. lazy swizzling. Eager wins when
 * t + pn*s < pu*(t + s): with pn = 50 pointers per page, the
 * break-even used-pointer fraction (pu over pn) falls as the
 * per-exception cost t falls — cheap exceptions make *lazy* swizzling attractive
 * over a broader parameter range (the paper's rightmost curve).
 *
 * Curves are printed for the measured Ultrix and fast exception
 * costs over a sweep of per-pointer swizzle costs s, and validated
 * end-to-end with sparse and dense traversals.
 */

#include <cstdio>

#include "apps/analysis/breakeven.h"
#include "apps/swizzle/swizzler.h"
#include "bench_util.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;
using namespace uexc::rt::micro;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::section;

int
main()
{
    banner("Figure 4: eager vs lazy swizzling using exceptions");

    bench::JsonResults json("fig4");
    sim::MachineConfig cfg = paperMachineConfig();
    double t_fast = measure(Scenario::FastSpecialized, cfg).roundTripUs;
    double t_ultrix = measure(Scenario::UltrixSimple, cfg).roundTripUs;
    const double pn = 50;   // pointers per page (the paper's figure)

    std::printf("  per-exception cost t: fast %.1f us, Ultrix %.1f "
                "us; pn = %.0f pointers/page\n\n", t_fast, t_ultrix,
                pn);

    section("break-even fraction of pointers used pu*/pn  [above: "
            "eager wins, below: lazy wins]");
    std::printf("  %-24s %16s %16s\n", "s (us/swizzle)",
                "Ultrix curve (%)", "fast curve (%)");
    for (double s = 0.2; s <= 3.01; s += 0.4) {
        double pu_u = eagerLazyBreakEvenUsed(t_ultrix, s, pn);
        double pu_f = eagerLazyBreakEvenUsed(t_fast, s, pn);
        std::printf("  %-24.1f %16.1f %16.1f\n", s,
                    100.0 * pu_u / pn, 100.0 * pu_f / pn);
        char suffix[32];
        std::snprintf(suffix, sizeof suffix, "(s=%.1f)", s);
        json.metric(std::string("pu_ultrix ") + suffix,
                    100.0 * pu_u / pn, "%");
        json.metric(std::string("pu_fast ") + suffix,
                    100.0 * pu_f / pn, "%");
    }
    json.metric("t_fast", t_fast, "us");
    json.metric("t_ultrix", t_ultrix, "us");
    noteLine("the fast curve sits to the right of the Ultrix curve: "
             "reduced exception cost makes lazy swizzling "
             "advantageous for a broader range of parameter values "
             "(the paper's conclusion for Figure 4)");

    section("end-to-end validation (fast exceptions)");
    auto traverse = [&](SwizzleMode mode, double use_fraction) {
        sim::Machine machine(cfg);
        os::Kernel kernel(machine);
        kernel.boot();
        rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
        env.install(0xffff);
        TraversalParams params;
        params.numObjects = 150;
        params.pointersPerObject = 10;
        params.useFraction = use_fraction;
        params.usesPerPointer = 1;
        params.store.swizzleCycles = 20;
        return runTraversal(env, mode, params).cycles;
    };

    for (double frac : {0.1, 0.9}) {
        Cycles lazy = traverse(SwizzleMode::LazyExceptions, frac);
        Cycles eager = traverse(SwizzleMode::Eager, frac);
        std::printf("  %3.0f%% of pointers used: lazy %10llu cyc, "
                    "eager %10llu cyc -> %s\n", 100 * frac,
                    static_cast<unsigned long long>(lazy),
                    static_cast<unsigned long long>(eager),
                    lazy < eager ? "lazy wins" : "eager wins");
    }
    return 0;
}
