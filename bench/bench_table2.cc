/**
 * @file
 * Table 2: performance of the exception functions. Measures, on the
 * simulated 25 MHz DECstation with caches modeled:
 *   - delivery of a simple exception to a null user handler
 *   - delivery of a write-protection exception (eager amplification)
 *   - delivery of a subpage-protection exception
 *   - return from the null handler
 *   - the round trip
 * against both the paper's fast mechanism and stock Ultrix signals,
 * and prints the paper's numbers beside the measurements. Also
 * reports the null-syscall reference (the paper: 12 us; the fast
 * round trip is faster than entering the kernel at all).
 */

#include <cstdio>

#include "bench_util.h"
#include "core/microbench.h"

using namespace uexc;
using namespace uexc::rt::micro;
using uexc::bench::banner;
using uexc::bench::noteLine;
using uexc::bench::paperRow;
using uexc::bench::section;

int
main()
{
    banner("Table 2: performance of exception functions "
           "(25 MHz R3000-like machine, warm caches)");

    bench::JsonResults json("table2");
    sim::MachineConfig cfg = paperMachineConfig();

    Timing fast_simple = measure(Scenario::FastSimple, cfg);
    Timing fast_wp = measure(Scenario::FastWriteProt, cfg);
    Timing fast_sub = measure(Scenario::FastSubpage, cfg);
    Timing ultrix = measure(Scenario::UltrixSimple, cfg);
    Timing ultrix_wp = measure(Scenario::UltrixWriteProt, cfg);
    Timing syscall = measure(Scenario::NullSyscall, cfg);
    Timing special = measure(Scenario::FastSpecialized, cfg);

    section("fast exceptions (paper's software scheme)");
    paperRow("deliver simple exception to null handler", 5,
             fast_simple.deliverUs, "us");
    paperRow("deliver write-prot exception to null handler", 15,
             fast_wp.deliverUs, "us");
    paperRow("deliver subpage exception to null handler", 19,
             fast_sub.deliverUs, "us");
    paperRow("return from null handler", 3, fast_simple.returnUs,
             "us");
    paperRow("simple exception round trip", 8,
             fast_simple.roundTripUs, "us");

    section("stock Ultrix signals (same hardware)");
    paperRow("deliver write-prot exception (Table 1)", 60,
             ultrix_wp.deliverUs, "us");
    paperRow("round-trip delivery and return (Table 1)", 80,
             ultrix.roundTripUs, "us");

    section("reference points");
    paperRow("null system call (getpid)", 12, syscall.roundTripUs,
             "us");
    paperRow("specialized handler round trip (section 4.2.2)", 6,
             special.roundTripUs, "us");
    paperRow("write-prot fault + eager re-enable (section 4.1)", 18,
             fast_wp.roundTripUs, "us");

    section("headline ratios");
    std::printf("  round trip, Ultrix / fast: paper 10.0x, "
                "measured %.1fx\n",
                ultrix.roundTripUs / fast_simple.roundTripUs);
    std::printf("  write-prot delivery, Ultrix / fast: paper 4.0x, "
                "measured %.1fx\n",
                ultrix_wp.deliverUs / fast_wp.deliverUs);
    std::printf("  fast round trip vs null syscall: paper 33%% "
                "faster, measured %.0f%% faster\n",
                100.0 * (1.0 - fast_simple.roundTripUs /
                                   syscall.roundTripUs));
    noteLine("dynamic kernel instructions on the fast simple path: "
             "65 static, skipping the untaken FP-save jump");
    std::printf("  kernel instructions (fast simple delivery): "
                "%llu\n",
                static_cast<unsigned long long>(
                    fast_simple.kernelInsts));
    json.metric("round trip Ultrix/fast",
                ultrix.roundTripUs / fast_simple.roundTripUs, "x");
    json.metric("write-prot delivery Ultrix/fast",
                ultrix_wp.deliverUs / fast_wp.deliverUs, "x");
    json.metric("kernel insts (fast simple delivery)",
                static_cast<double>(fast_simple.kernelInsts),
                "insts");
    return 0;
}
