/**
 * @file
 * Distributed shared memory across two complete simulated machines
 * (Li & Hudak-style write-invalidate coherence, driven entirely by
 * memory-protection faults — the paper's "distributed virtual
 * memory" use case).
 *
 *   $ ./examples/dsm_demo
 */

#include <cstdio>

#include "apps/dsm/dsm.h"

using namespace uexc;
using namespace uexc::apps;

int
main()
{
    constexpr Addr kBase = 0x40000000;

    DsmCluster::Config cfg;
    cfg.nodes = 2;
    cfg.bytes = 4 * os::kPageBytes;
    cfg.mode = rt::DeliveryMode::FastSoftware;
    cfg.networkLatencyCycles = 2500;   // a 100 us fabric at 25 MHz
    DsmCluster dsm(cfg);

    std::printf("two nodes, one coherent region; every state "
                "transition below is a protection fault\n\n");

    std::printf("node 0 writes 1000 at 0x%08x (initial owner: no "
                "fault)\n", kBase);
    dsm.write(0, kBase, 1000);

    std::printf("node 1 reads  -> %u  (read miss: page fetched, both "
                "nodes now read-shared)\n", dsm.read(1, kBase));

    std::printf("node 1 writes 2000      (write miss: node 0's copy "
                "invalidated, ownership moves)\n");
    dsm.write(1, kBase, 2000);
    std::printf("  owner is now node %u; node 0 state %s\n",
                dsm.ownerOf(kBase),
                dsm.state(0, kBase) == DsmPageState::Invalid
                    ? "Invalid" : "?");

    std::printf("node 0 reads  -> %u  (misses, refetches from node "
                "1)\n\n", dsm.read(0, kBase));

    // a short ping-pong
    for (Word i = 0; i < 6; i++)
        dsm.write(i % 2, kBase + 8, i);

    const DsmStats &s = dsm.stats();
    std::printf("statistics: %llu read faults, %llu write faults, "
                "%llu page transfers, %llu invalidations, %llu "
                "messages\n",
                static_cast<unsigned long long>(s.readFaults),
                static_cast<unsigned long long>(s.writeFaults),
                static_cast<unsigned long long>(s.pageTransfers),
                static_cast<unsigned long long>(s.invalidations),
                static_cast<unsigned long long>(s.messages));
    std::printf("\nrun bench_dsm for the network-latency sweep "
                "(where exception dispatch cost starts to matter)\n");
    return 0;
}
