/**
 * @file
 * Unbounded data structures via unaligned pointers (section 4.2.1):
 * an infinite stream of primes whose cells materialize on demand —
 * the consumer just walks the list; extension happens inside the
 * unaligned-access fault handler, with no explicit "force" calls.
 *
 *   $ ./examples/unbounded_stream
 */

#include <cstdio>

#include "apps/lazy/lazy.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;

namespace {

Word
nthPrime(unsigned n)
{
    unsigned count = 0;
    for (Word candidate = 2;; candidate++) {
        bool prime = true;
        for (Word d = 2; d * d <= candidate; d++) {
            if (candidate % d == 0) {
                prime = false;
                break;
            }
        }
        if (prime && count++ == n)
            return candidate;
    }
}

} // namespace

int
main()
{
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);

    LazyArena arena(env, 0x30000000, 1 << 20);
    UnboundedList primes(arena, nthPrime);

    std::printf("an unbounded stream of primes (cells materialize "
                "through unaligned-access faults):\n\n  ");
    Addr cell = primes.head();
    for (int i = 0; i < 25; i++) {
        std::printf("%u ", primes.datum(cell));
        cell = primes.next(cell);
    }
    std::printf("...\n\n");
    std::printf("cells materialized: %u, faults taken: %llu\n",
                primes.materialized(),
                static_cast<unsigned long long>(primes.faults()));

    // re-walk the materialized prefix: zero faults
    std::uint64_t before = primes.faults();
    cell = primes.head();
    for (int i = 0; i < 25; i++)
        cell = primes.next(cell);
    std::printf("re-walk of the prefix took %llu additional faults\n",
                static_cast<unsigned long long>(primes.faults() -
                                                before));
    return 0;
}
