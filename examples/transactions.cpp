/**
 * @file
 * Recoverable storage via write-detected transactions (the Chang &
 * Mergen use case from the paper's introduction): an account table
 * whose updates are atomic — an abort restores every touched page's
 * before-image, captured lazily by the first-touch protection fault.
 *
 *   $ ./examples/transactions
 */

#include <cstdio>

#include "apps/txn/txn.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;

int
main()
{
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);

    constexpr Addr kTable = 0x10000000;
    TxnRegion txn(env, kTable, 4 * os::kPageBytes);

    auto account = [&](unsigned i) { return kTable + 4 * i; };

    // initial balances
    txn.store(account(0), 500);
    txn.store(account(1), 300);

    std::printf("balances: a0=%u a1=%u\n", txn.load(account(0)),
                txn.load(account(1)));

    std::printf("\ntransfer 200 from a0 to a1, committed:\n");
    txn.begin();
    txn.store(account(0), txn.load(account(0)) - 200);
    txn.store(account(1), txn.load(account(1)) + 200);
    txn.commit();
    std::printf("  balances: a0=%u a1=%u (%llu page fault logged "
                "the undo image)\n",
                txn.load(account(0)), txn.load(account(1)),
                static_cast<unsigned long long>(
                    txn.stats().pagesLogged));

    std::printf("\ntransfer 9999 from a0 to a1, then ABORT "
                "(insufficient funds):\n");
    txn.begin();
    txn.store(account(0), txn.load(account(0)) - 9999);
    txn.store(account(1), txn.load(account(1)) + 9999);
    std::printf("  mid-transaction: a0=%d a1=%u\n",
                static_cast<SWord>(txn.load(account(0))),
                txn.load(account(1)));
    txn.abort();
    std::printf("  after abort:     a0=%u a1=%u (before-images "
                "restored)\n",
                txn.load(account(0)), txn.load(account(1)));

    const TxnStats &s = txn.stats();
    std::printf("\nstats: %llu begun, %llu committed, %llu aborted, "
                "%llu logging faults, %llu pages restored\n",
                static_cast<unsigned long long>(s.begun),
                static_cast<unsigned long long>(s.committed),
                static_cast<unsigned long long>(s.aborted),
                static_cast<unsigned long long>(s.pageFaults),
                static_cast<unsigned long long>(s.pagesRestored));
    return 0;
}
