/**
 * @file
 * Futures and full/empty-bit synchronization via unaligned pointers
 * (section 4.2.1): the APRIL/Alewife future representation and
 * Tera-style full/empty cells on a conventional processor, with the
 * touch cost measured under each delivery mechanism.
 *
 *   $ ./examples/futures_demo
 */

#include <cstdio>

#include "apps/lazy/lazy.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;

int
main()
{
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);
    LazyArena arena(env, 0x30000000, 1 << 20);

    std::printf("futures via unaligned pointers\n\n");
    {
        FutureCell answer(arena, []() {
            std::printf("  [producer runs inside the fault "
                        "handler]\n");
            return Word{42};
        });
        std::printf("  future created (unresolved: the cell holds an "
                    "unaligned pointer)\n");
        Cycles before = env.cycles();
        Word v = answer.value();   // touch: fault, produce, resume
        Cycles cost = env.cycles() - before;
        std::printf("  first touch -> %u (forced resolution: %llu "
                    "cycles)\n", v,
                    static_cast<unsigned long long>(cost));
        before = env.cycles();
        v = answer.value();
        std::printf("  second touch -> %u (%llu cycles: just a "
                    "load)\n", v,
                    static_cast<unsigned long long>(env.cycles() -
                                                    before));
    }

    std::printf("\nfull/empty cell (Tera-style synchronization)\n\n");
    {
        int refills = 0;
        FullEmptyCell cell(arena, [&]() {
            refills++;
            return Word(7 * refills);
        });
        std::printf("  read on empty -> %u (filler ran via the "
                    "fault)\n", cell.read());
        cell.write(99);
        std::printf("  after write(99): read -> %u (no fault)\n",
                    cell.read());
        std::printf("  take() -> %u; cell is empty again\n",
                    cell.take());
        std::printf("  read on empty -> %u\n", cell.read());
        std::printf("  total faults: %llu\n",
                    static_cast<unsigned long long>(cell.faults()));
    }
    return 0;
}
