/**
 * @file
 * Generational garbage collection with a page-protection write
 * barrier (section 4.1): builds cons structures, mutates old cells,
 * and shows the barrier faults arriving through the fast exception
 * path with eager amplification.
 *
 *   $ ./examples/gc_demo
 */

#include <cstdio>

#include "apps/gc/gc.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;

int
main()
{
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);

    Collector::Config cfg;
    cfg.barrier = BarrierKind::PageProtection;
    cfg.youngBudgetBytes = 64 * 1024;
    Collector gc(env, cfg);

    std::printf("building a long-lived list and mutating it with "
                "fresh cells...\n");

    // a long-lived list (it will be tenured)
    Addr persistent = 0;
    for (int i = 0; i < 200; i++) {
        Addr cell = gc.alloc(2);
        gc.writeWord(cell, 0, i);
        gc.writeWord(cell, 1, persistent);
        persistent = cell;
        gc.setRoot(0, persistent);
    }
    gc.collect();   // tenure it
    std::printf("  after tenuring: %zu live objects, old? %s\n",
                gc.liveObjects(),
                gc.isOld(persistent) ? "yes" : "no");

    // mutate old cells with young pointers: each first store to a
    // protected old page is a write-barrier fault
    for (int round = 0; round < 5; round++) {
        for (int i = 0; i < 50; i++) {
            Addr fresh = gc.alloc(2);
            gc.writeWord(fresh, 0, 1000 + i);
            gc.writeWord(persistent, 0, fresh);  // old <- young
        }
        // plenty of garbage
        for (int i = 0; i < 2000; i++)
            gc.alloc(2);
        gc.collect();
    }

    const GcStats &s = gc.stats();
    std::printf("\ncollector statistics:\n");
    std::printf("  allocations:        %llu (%llu bytes)\n",
                static_cast<unsigned long long>(s.allocations),
                static_cast<unsigned long long>(s.allocatedBytes));
    std::printf("  collections:        %llu (%llu full)\n",
                static_cast<unsigned long long>(s.collections),
                static_cast<unsigned long long>(s.fullCollections));
    std::printf("  objects swept:      %llu\n",
                static_cast<unsigned long long>(s.objectsSwept));
    std::printf("  blocks promoted:    %llu\n",
                static_cast<unsigned long long>(s.blocksPromoted));
    std::printf("  barrier faults:     %llu (each one a simulated "
                "fast-path exception)\n",
                static_cast<unsigned long long>(s.barrierFaults));
    std::printf("  pages re-protected: %llu\n",
                static_cast<unsigned long long>(s.pagesReprotected));
    std::printf("  handler made %llu in-handler service calls "
                "(eager amplification made re-protection from the "
                "handler unnecessary)\n",
                static_cast<unsigned long long>(
                    env.stats().inHandlerServiceCalls));

    // the data survived it all
    unsigned count = 0;
    for (Addr p = persistent; p != 0; p = gc.readWord(p, 1))
        count++;
    std::printf("\nlist intact: %u cells reachable\n", count);
    return 0;
}
