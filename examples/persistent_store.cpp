/**
 * @file
 * Pointer swizzling for a persistent object store (section 4.2.2):
 * builds a small object graph "on disk", then traverses it three
 * ways — lazy swizzling via unaligned-access exceptions, lazy
 * swizzling via inline software checks, and eager swizzling with
 * access-protected reservations — and compares their cost profiles.
 *
 *   $ ./examples/persistent_store
 */

#include <cstdio>
#include <vector>

#include "apps/swizzle/ostore.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;

namespace {

/** A little database: a chain of "employee" records. */
std::vector<Oid>
populate(ObjectStore &store, unsigned n)
{
    std::vector<Oid> oids;
    Oid prev_oid = 0;
    bool have_prev = false;
    for (unsigned i = 0; i < n; i++) {
        std::vector<PField> fields;
        fields.push_back({false, 1000 + i});           // employee id
        fields.push_back({false, 40 + i % 20});        // hours
        fields.push_back({true, have_prev ? prev_oid : kNullOid});
        prev_oid = store.createObject(fields);
        have_prev = true;
        oids.push_back(prev_oid);
    }
    return oids;
}

void
traverse(ObjectStore &store, Oid head, const char *label,
         rt::UserEnv &env)
{
    Cycles before = env.cycles();
    Addr obj = store.pin(head);
    Word total_hours = 0;
    unsigned count = 0;
    while (obj != 0) {
        total_hours += store.readData(obj, 1);
        count++;
        obj = store.deref(obj, 2);
    }
    Cycles cost = env.cycles() - before;
    const StoreStats &s = store.stats();
    std::printf("  %-16s %6u records, %6llu hours | %8llu cycles | "
                "%llu faults, %llu checks, %llu swizzles\n",
                label, count,
                static_cast<unsigned long long>(total_hours),
                static_cast<unsigned long long>(cost),
                static_cast<unsigned long long>(s.swizzleFaults +
                                                s.residencyFaults),
                static_cast<unsigned long long>(s.residencyChecks),
                static_cast<unsigned long long>(s.pointersSwizzled));
}

} // namespace

int
main()
{
    std::printf("persistent object store: the same traversal under "
                "three swizzling strategies\n\n");

    struct Mode
    {
        SwizzleMode mode;
        const char *label;
    };
    const Mode modes[] = {
        {SwizzleMode::LazyExceptions, "lazy/exceptions"},
        {SwizzleMode::LazyChecks, "lazy/checks"},
        {SwizzleMode::Eager, "eager"},
    };

    for (const Mode &m : modes) {
        sim::Machine machine(rt::micro::paperMachineConfig());
        os::Kernel kernel(machine);
        kernel.boot();
        rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
        env.install(0xffff);

        ObjectStore::Config cfg;
        cfg.mode = m.mode;
        ObjectStore store(env, cfg);
        auto oids = populate(store, 400);
        traverse(store, oids.back(), m.label, env);
    }

    std::printf("\nwith fast exceptions the lazy/exception scheme "
                "pays one cheap fault per first use and nothing "
                "after; checks pay on every dereference (Figure 3)\n");
    return 0;
}
