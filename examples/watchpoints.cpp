/**
 * @file
 * Conditional data watchpoints via protection faults — the debugging
 * technique the paper's introduction cites (Wahbe '92) — over the
 * fast user-level exception path.
 *
 *   $ ./examples/watchpoints
 */

#include <cstdio>

#include "apps/watch/watch.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;
using namespace uexc::apps;

int
main()
{
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();
    rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
    env.install(0xffff);

    constexpr Addr kCounter = 0x10000040;
    constexpr Addr kBalance = 0x10000080;
    env.allocate(0x10000000, os::kPageBytes);

    WatchpointEngine watch(env);

    // an unconditional watch on a counter
    watch.watch(kCounter, [](Addr a, Word oldv, Word newv) {
        std::printf("  [watch] counter @0x%08x: %u -> %u\n", a, oldv,
                    newv);
    });

    // a conditional watch: fire only when the balance goes "negative"
    watch.watch(
        kBalance,
        [](Addr, Word oldv, Word newv) {
            std::printf("  [watch] BALANCE WENT NEGATIVE: %d -> %d\n",
                        static_cast<SWord>(oldv),
                        static_cast<SWord>(newv));
        },
        [](Word v) { return static_cast<SWord>(v) < 0; });

    std::printf("program runs; the debugger sleeps until the data "
                "changes...\n\n");

    watch.store(kBalance, 100);
    for (int i = 1; i <= 3; i++)
        watch.store(kCounter, i);
    watch.store(kBalance, 40);           // predicate false: silent
    watch.store(kBalance, static_cast<Word>(-20));  // fires

    // unrelated data on the same page costs a fault per write at
    // page granularity; the engine counts them
    for (int i = 0; i < 4; i++)
        watch.store(0x10000800 + 4 * i, i);

    const WatchStats &s = watch.stats();
    std::printf("\nstatistics: %llu faults, %llu hits, %llu triggers, "
                "%llu false faults (unwatched words on watched "
                "pages)\n",
                static_cast<unsigned long long>(s.faults),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.triggers),
                static_cast<unsigned long long>(s.falseFaults));
    std::printf("run bench_watch for the cross-mechanism costs and "
                "the subpage-granularity variant\n");
    return 0;
}
