/**
 * @file
 * Quickstart: boot the simulated machine and kernel, enable the
 * paper's fast user-level exceptions, take a protection fault into a
 * host-side handler, and compare the cost against stock Unix
 * signals.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "core/env.h"
#include "core/microbench.h"
#include "os/kernel.h"

using namespace uexc;

namespace {

/** Measure one write-protection fault round trip in a mode. */
Cycles
faultCost(rt::DeliveryMode mode)
{
    // a machine with the paper's hardware extensions available
    sim::Machine machine(rt::micro::paperMachineConfig());
    os::Kernel kernel(machine);
    kernel.boot();

    // a "process" whose logic runs host-side but whose memory and
    // exceptions are fully simulated
    rt::UserEnv env(kernel, mode);
    env.install(0xffff);   // enable every eligible exception type

    constexpr Addr kPage = 0x10000000;
    env.allocate(kPage, os::kPageBytes);

    env.setHandler([&](rt::Fault &fault) {
        std::printf("    handler: %s at pc=0x%08x, badvaddr=0x%08x\n",
                    sim::excName(fault.code()), fault.pc(),
                    fault.badVaddr());
        // re-enable access so the faulting store can complete
        env.protect(kPage, os::kPageBytes,
                    os::kProtRead | os::kProtWrite);
    });

    env.protect(kPage, os::kPageBytes, os::kProtRead);
    Cycles before = env.cycles();
    env.store(kPage + 0x40, 1234);          // faults, resumes
    Cycles cost = env.cycles() - before;

    std::printf("    store completed; memory holds %u\n",
                env.load(kPage + 0x40));
    return cost;
}

} // namespace

int
main()
{
    std::printf("uexc quickstart: one write-protection fault, three "
                "delivery mechanisms\n\n");
    sim::CostModel cost;

    std::printf("  stock Ultrix-style signals:\n");
    Cycles ultrix = faultCost(rt::DeliveryMode::UltrixSignal);
    std::printf("    cost: %llu cycles (%.1f us at 25 MHz)\n\n",
                static_cast<unsigned long long>(ultrix),
                cost.toMicros(ultrix));

    std::printf("  fast user-level exceptions (the paper's scheme):\n");
    Cycles fast = faultCost(rt::DeliveryMode::FastSoftware);
    std::printf("    cost: %llu cycles (%.1f us)\n\n",
                static_cast<unsigned long long>(fast),
                cost.toMicros(fast));

    std::printf("  direct hardware user vectoring (section 2):\n");
    Cycles hw = faultCost(rt::DeliveryMode::FastHardwareVector);
    std::printf("    cost: %llu cycles (%.1f us)\n\n",
                static_cast<unsigned long long>(hw),
                cost.toMicros(hw));

    std::printf("speedup over signals: software %.1fx, hardware "
                "%.1fx\n",
                double(ultrix) / fast, double(ultrix) / hw);
    return 0;
}
