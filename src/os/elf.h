/**
 * @file
 * Static MIPS-I ELF32 support: parse a little-endian ET_EXEC binary
 * into a GuestImage (program headers become sections, the symbol
 * table becomes the image symbol map), and serialize a GuestImage
 * back out as a deterministic ELF executable.
 *
 * The parser accepts exactly what the simulated machine can run:
 * 32-bit, little-endian (guest memory shares the host's byte order,
 * and the simulator targets LSB hosts), EM_MIPS, statically linked
 * ET_EXEC with word-aligned load addresses. Anything else raises
 * ElfError — loading untrusted bytes must never UEXC_FATAL the
 * process, so every malformed-input path throws instead.
 *
 * The writer is the fixture toolchain's backend: same image in, same
 * bytes out, so checked-in fixtures can be diffed against rebuilt
 * ones. File offsets are page-congruent with vaddrs (p_align 4096),
 * matching what a real static linker emits.
 */

#ifndef UEXC_OS_ELF_H
#define UEXC_OS_ELF_H

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "os/guestimage.h"

namespace uexc::os {

/** Malformed or unsupported ELF input. */
class ElfError : public std::runtime_error
{
  public:
    explicit ElfError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/**
 * Parse a static MIPS-I ELF32 executable into a GuestImage.
 * @p image_name labels the image for diagnostics. Throws ElfError.
 */
GuestImage loadElf(const std::vector<Byte> &bytes,
                   const std::string &image_name = "elf");

/** Read @p path and parse it. Throws ElfError (including on I/O). */
GuestImage loadElfFile(const std::string &path);

/** Serialize @p img as a deterministic ELF32 executable. */
std::vector<Byte> writeElf(const GuestImage &img);

/** Serialize @p img to @p path; fatal on I/O failure. */
void writeElfFile(const std::string &path, const GuestImage &img);

} // namespace uexc::os

#endif // UEXC_OS_ELF_H
