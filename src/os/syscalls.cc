#include "os/syscalls.h"

#include <algorithm>

namespace uexc::os {

const std::vector<SyscallDef> &
syscallTable()
{
    // Base charges: zero for the pre-existing VM/uexc rows (their
    // handlers delegate to svc* services that charge internally, and
    // the refactor must stay bit-identical for them) and for exit
    // (the legacy path halted without cost; the reap path charges
    // inside the handler). The file/process rows charge their fixed
    // part here, variable parts (pages, words) in the handler.
    static const std::vector<SyscallDef> table = {
        {sys::Mprotect,       "mprotect",        0,
         &Kernel::sysMprotect},
        {sys::UexcEnable,     "uexc_enable",     0,
         &Kernel::sysUexcEnable},
        {sys::UexcProtect,    "uexc_protect",    0,
         &Kernel::sysUexcProtect},
        {sys::SubpageProtect, "subpage_protect", 0,
         &Kernel::sysSubpageProtect},
        {sys::Exit,           "exit",            0,
         &Kernel::sysExit},
        {sys::UexcSetFlags,   "uexc_setflags",   0,
         &Kernel::sysUexcSetFlags},
        {sys::Open,           "open",            charge::OpenBase,
         &Kernel::sysOpen},
        {sys::Close,          "close",           charge::CloseBase,
         &Kernel::sysClose},
        {sys::Read,           "read",            charge::RdWrBase,
         &Kernel::sysRead},
        {sys::Write,          "write",           charge::RdWrBase,
         &Kernel::sysWrite},
        {sys::Sbrk,           "sbrk",            charge::SbrkBase,
         &Kernel::sysSbrk},
        {sys::Fork,           "fork",            charge::ForkBase,
         &Kernel::sysFork},
        {sys::Wait,           "wait",            charge::WaitBase,
         &Kernel::sysWait},
    };
    return table;
}

const SyscallDef *
syscallByNum(Word num)
{
    for (const SyscallDef &def : syscallTable()) {
        if (def.num == num)
            return &def;
    }
    return nullptr;
}

} // namespace uexc::os
