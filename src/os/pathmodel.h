/**
 * @file
 * Dispatch-path models for Table 1 of the paper: the cost of
 * delivering a simple exception to a null user-level handler on five
 * contemporary (1994) OS/hardware combinations.
 *
 * The Ultrix/DECstation column is *measured* on this repository's
 * simulator (the whole point of the reproduction); the other systems
 * are not simulated — rebuilding Mach, SunOS, Windows NT and OSF/1
 * is out of scope — and are instead modeled as phase sequences whose
 * totals anchor to the figures the paper's text states (SunOS 69 us
 * best case, Mach/UX ~2 ms, raw Mach 256 us) and to era-typical
 * values where the source text's table is unreadable (NT, OSF/1;
 * flagged `modeled`). The decomposition captures the *structural*
 * story of Table 1: micro-kernel double-hops dwarf monolithic paths,
 * which dwarf the raw hardware cost. See EXPERIMENTS.md.
 */

#ifndef UEXC_OS_PATHMODEL_H
#define UEXC_OS_PATHMODEL_H

#include <string>
#include <vector>

#include "common/types.h"

namespace uexc::os {

/** One phase of an exception delivery path. */
struct DispatchPhase
{
    std::string name;
    double us;
};

/** One OS/hardware column of Table 1. */
struct DispatchPathModel
{
    std::string system;
    std::string hardware;
    double clockMhz = 0;
    /** Phases of the simple-exception round trip. */
    std::vector<DispatchPhase> phases;
    /** Write-protection exception delivery time (us). */
    double writeProtUs = 0;
    /** True when the numbers come from simulation, not modeling. */
    bool measured = false;

    /** Simple-exception round-trip total (us). */
    double roundTripUs() const;
};

/**
 * Build the Table 1 column set.
 *
 * @param ultrix_round_trip_us   measured Ultrix round trip
 * @param ultrix_deliver_us      measured Ultrix delivery
 * @param ultrix_return_us       measured Ultrix handler return
 * @param ultrix_write_prot_us   measured Ultrix write-prot delivery
 */
std::vector<DispatchPathModel>
table1Models(double ultrix_deliver_us, double ultrix_return_us,
             double ultrix_write_prot_us);

} // namespace uexc::os

#endif // UEXC_OS_PATHMODEL_H
