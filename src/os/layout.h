/**
 * @file
 * Memory layout, kernel data structure offsets, syscall and host-call
 * numbers shared between the host-side kernel (src/os/kernel.*), the
 * guest kernel image (src/os/kernelimage.*), and the user-level
 * runtime (src/core).
 *
 * Everything here is part of the simulated system's ABI: guest
 * assembly indexes these structures with constant offsets, so the
 * layout is fixed and versioned by hand.
 */

#ifndef UEXC_OS_LAYOUT_H
#define UEXC_OS_LAYOUT_H

#include "common/types.h"

namespace uexc::os {

// -- physical / kernel virtual layout ------------------------------------

/** Kernel text+data live in kseg0 from the vectors up to this limit. */
constexpr Addr kKernelTextBase = 0x80000000u;
constexpr Addr kKernelTextLimit = 0x80100000u;  // 1 MB

/** Kernel dynamic data region (proc structs, kernel stacks). */
constexpr Addr kKernelDataBase = 0x80100000u;

/**
 * Page table arena: one 2 MB-aligned linear page table per process
 * (the R3000 single-lw refill requires 2 MB alignment of PTEBase).
 */
constexpr Addr kPageTableArena = 0x80200000u;   // kseg0 virtual
constexpr Addr kPageTableBytes = 0x00200000u;   // 2 MB each

/** First physical byte handed out for user frames. */
constexpr Addr kUserFrameBase = 0x00a00000u;    // physical

/** Page geometry. */
constexpr unsigned kPageShift = 12;
constexpr Addr kPageBytes = 1u << kPageShift;
/** Logical subpage geometry (paper section 3.2.4). */
constexpr unsigned kSubpageShift = 10;
constexpr Addr kSubpageBytes = 1u << kSubpageShift;
constexpr unsigned kSubpagesPerPage = kPageBytes / kSubpageBytes;

// -- user address space layout -----------------------------------------------

constexpr Addr kUserTextBase = 0x00400000u;
constexpr Addr kUserDataBase = 0x10000000u;
constexpr Addr kUserStackTop = 0x7ffff000u;   // stack grows down
/** The pinned exception frame page (paper section 3.2). */
constexpr Addr kUexcFramePage = 0x00380000u;
/**
 * First byte of the frame page past the 16 per-ExcCode frames
 * (16 * 128 = 2048). The upper half of the pinned page is dead space;
 * UserEnv fills it with a canary pattern and validates it around
 * every fast-mode delivery (corruption demotes the process to
 * kernel-mediated delivery).
 */
constexpr Word kUexcCanaryOffset = 2048;

// -- page table entry soft bits --------------------------------------------
//
// PTEs are EntryLo-format words; hardware ignores bits [6:0], which
// the kernel uses as software state. The TLB refill handler loads
// PTEs unmasked (the classic single-lw refill), so these bits travel
// into TLB entries harmlessly.

/** Software: subpage protection is active on this page. */
constexpr Word kPteSubpage = 1u << 0;
/** Software: a physical frame is allocated (page exists). */
constexpr Word kPtePresent = 1u << 1;

// -- proc structure ------------------------------------------------------------
//
// One per process, in kernel data space. Guest code addresses fields
// by these byte offsets from the proc base.

namespace proc {
constexpr Word Asid        = 0x00;  ///< address space id
constexpr Word PtBase      = 0x04;  ///< page table base (kseg0 va)
constexpr Word KstackTop   = 0x08;  ///< kernel stack top (kseg0 va)
constexpr Word Pid         = 0x0c;
constexpr Word Flags       = 0x10;  ///< kPfXxx bits below
/** Fast user-level exceptions (paper section 3.2). */
constexpr Word UexcMask    = 0x14;  ///< enabled ExcCode bitmask
constexpr Word UexcHandler = 0x18;  ///< user handler entry
constexpr Word UexcFrameK  = 0x1c;  ///< frame page, kseg0 alias
constexpr Word UexcFrameU  = 0x20;  ///< frame page, user va
/** Unix signal state. */
constexpr Word SigPending  = 0x24;  ///< pending signal bitmask
constexpr Word SigMask     = 0x28;  ///< blocked signal bitmask
constexpr Word SigHandlers = 0x2c;  ///< 32 words of handler pointers
constexpr Word TrampolineU = 0xac;  ///< user trampoline address
constexpr Word FpUsed      = 0xb0;  ///< process has FP state
constexpr Word UArea       = 0xb4;  ///< u-area pointer (kseg0 va)
constexpr Word Brk         = 0xb8;  ///< heap break (host bookkeeping)
constexpr Word StructBytes = 0xc0;
} // namespace proc

/** proc::Flags bits. */
constexpr Word kPfEagerAmplify = 1u << 0;  ///< amplify before upcall

// -- per-hart kernel save area -------------------------------------------------
//
// On a multi-hart machine every hart needs somewhere to spill K0/K1
// and the exception registers before it can touch shared kernel
// state; a single static save area (what the single-hart image uses)
// would be corrupted by two harts trapping concurrently. The kernel
// allocates numHarts() of these at boot, contiguous, 64-byte-aligned;
// a hart finds its own with PrId[31:24] << SizeShift.

namespace hartsave {
constexpr Word K0      = 0x00;
constexpr Word K1      = 0x04;
constexpr Word Epc     = 0x08;
constexpr Word Status  = 0x0c;
constexpr Word Cause   = 0x10;
constexpr Word Sp      = 0x14;
constexpr Word Scratch = 0x18;  ///< handler temporary
constexpr Word Bytes   = 0x40;  ///< one cache-line-aligned slot
constexpr unsigned SizeShift = 6;  ///< log2(Bytes), for guest indexing
} // namespace hartsave

// -- u-area -------------------------------------------------------------------
//
// Models the Ultrix per-process "struct user": a page of scattered
// bookkeeping the stock signal path must touch. Offsets are spread
// over distinct cache lines on purpose; the stock path's cost comes
// in part from this traffic (see DESIGN.md, honest cost model).

namespace uarea {
constexpr Word TrapFrame   = 0x000;  ///< saved register area (trapframe)
constexpr Word FpFrame     = 0x200;  ///< saved FP register area
constexpr Word SigAltStack = 0x400;
constexpr Word RusageBase  = 0x440;  ///< resource accounting counters
constexpr Word AstFlags    = 0x4c0;
constexpr Word ProcPtr     = 0x500;
constexpr Word Bytes       = 0x600;
} // namespace uarea

// -- trapframe layout (word indices) ---------------------------------------------
//
// The stock Ultrix-style path saves the full register file plus
// machine state here (and the sigcontext mirrors it).

namespace tf {
constexpr unsigned Regs   = 0;    ///< r1..r31 stored at [reg-1]
constexpr unsigned NumRegSlots = 31;
constexpr unsigned Mdlo   = 31;
constexpr unsigned Mdhi   = 32;
constexpr unsigned Epc    = 33;
constexpr unsigned Cause  = 34;
constexpr unsigned BadVA  = 35;
constexpr unsigned Status = 36;
constexpr unsigned Words  = 37;
} // namespace tf

// -- sigcontext layout (word indices, built on the user stack) ---------------------

namespace sigctx {
constexpr unsigned Pc      = 0;
constexpr unsigned Regs    = 1;    ///< r1..r31 at [1 + reg-1]
constexpr unsigned Mdlo    = 32;
constexpr unsigned Mdhi    = 33;
constexpr unsigned Cause   = 34;
constexpr unsigned BadVA   = 35;
constexpr unsigned Status  = 36;
constexpr unsigned Mask    = 37;
constexpr unsigned FpRegs  = 38;   ///< 32 words of FP state
constexpr unsigned FpCsr   = 70;
constexpr unsigned Words   = 71;
constexpr unsigned Bytes   = Words * 4;
} // namespace sigctx

// -- fast exception frame (per exception type, in the frame page) --------------------
//
// The frame page holds one frame per ExcCode value, 64 bytes each
// (paper section 3.2: "a communication area for each exception type
// enabled"). The kernel fills Epc/Cause/BadVA and the scratch-reg
// slots; the user-level stub may spill more registers into Spill.

namespace uframe {
constexpr unsigned FrameShift = 7;             ///< 128 bytes per frame
constexpr Word FrameBytes = 1u << FrameShift;
constexpr Word Epc    = 0x00;
constexpr Word Cause  = 0x04;
constexpr Word BadVA  = 0x08;
constexpr Word Status = 0x0c;
constexpr Word Mdlo   = 0x10;
constexpr Word Mdhi   = 0x14;
constexpr Word At     = 0x18;   ///< kernel-saved scratch registers
constexpr Word T0     = 0x1c;
constexpr Word T1     = 0x20;
constexpr Word T2     = 0x24;
constexpr Word T3     = 0x28;
constexpr Word T4     = 0x2c;
constexpr Word T5     = 0x30;
constexpr Word Spill  = 0x34;   ///< 19 words for the user-level stub
} // namespace uframe

// -- Unix signal numbers (the subset the simulated kernel knows) -----------------------

constexpr unsigned kSigill  = 4;
constexpr unsigned kSigtrap = 5;
constexpr unsigned kSigfpe  = 8;
constexpr unsigned kSigbus  = 10;
constexpr unsigned kSigsegv = 11;
constexpr unsigned kSigsys  = 12;
constexpr unsigned kNumSignals = 32;

// -- syscall numbers ---------------------------------------------------------------------

namespace sys {
constexpr Word Getpid         = 1;
constexpr Word Sigaction      = 2;  ///< a0 = signum, a1 = handler
constexpr Word Sigreturn      = 3;  ///< a0 = &sigcontext
constexpr Word Mprotect       = 4;  ///< a0 = addr, a1 = len, a2 = prot
constexpr Word UexcEnable     = 5;  ///< a0 = mask, a1 = handler, a2 = frame va
constexpr Word UexcProtect    = 6;  ///< a0 = addr, a1 = len, a2 = prot
constexpr Word SubpageProtect = 7;  ///< a0 = addr, a1 = len, a2 = prot
constexpr Word Exit           = 8;
constexpr Word UexcSetFlags   = 9;  ///< a0 = kPfXxx bits (eager amplify)
constexpr Word SetTrampoline  = 10; ///< a0 = trampoline address
/** Ultrix-flavored file/process syscalls (all host-bridged). */
constexpr Word Open           = 11; ///< a0 = path (user va), a1 = flags
constexpr Word Close          = 12; ///< a0 = fd
constexpr Word Read           = 13; ///< a0 = fd, a1 = buf, a2 = len
constexpr Word Write          = 14; ///< a0 = fd, a1 = buf, a2 = len
constexpr Word Sbrk           = 15; ///< a0 = signed increment; returns old break
constexpr Word Fork           = 16; ///< returns child pid (parent) / 0 (child)
constexpr Word Wait           = 17; ///< a0 = &status or 0; returns child pid
/** Size of the guest kernel's dispatch table (bound of the sltiu
 *  range check); numbers >= this take bad_syscall directly. */
constexpr Word NumSyscalls    = 32;
}  // namespace sys

// -- file syscall ABI -----------------------------------------------------------------

/** open() flags: access mode in the low two bits, BSD-style bits above. */
constexpr Word kOpenRead   = 0;
constexpr Word kOpenWrite  = 1;
constexpr Word kOpenRdwr   = 2;
constexpr Word kOpenAppend = 0x008;
constexpr Word kOpenCreate = 0x200;
constexpr Word kOpenTrunc  = 0x400;

/** Per-process open-file table size (fds 0/1/2 are pre-opened). */
constexpr unsigned kMaxFds = 16;

/** Longest path accepted by open() (copyin bound). */
constexpr Word kMaxPathBytes = 128;

/** mprotect() protection bits. */
constexpr Word kProtRead  = 1;
constexpr Word kProtWrite = 2;

// -- host call (hcall) service numbers ------------------------------------------------------

namespace svc {
/** 0 is reserved: architectural halt. */
constexpr Word SyscallComplex = 1;  ///< complex syscalls -> host kernel
constexpr Word SubpageEmulate = 2;  ///< emulate access to unprotected subpage
constexpr Word RiEmulate      = 3;  ///< TLBMP software emulation on RI
constexpr Word Upcall         = 4;  ///< bridge to a host-side app handler
constexpr Word PanicBadTrap   = 5;  ///< unhandled trap: die loudly
}  // namespace svc

} // namespace uexc::os

#endif // UEXC_OS_LAYOUT_H
