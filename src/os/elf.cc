#include "os/elf.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace uexc::os {

namespace {

// ELF constants, limited to what the loader and writer use.
constexpr Byte kMag0 = 0x7f;
constexpr Byte kMag1 = 'E';
constexpr Byte kMag2 = 'L';
constexpr Byte kMag3 = 'F';
constexpr Byte kClass32 = 1;
constexpr Byte kData2Lsb = 1;
constexpr Byte kEvCurrent = 1;
constexpr Half kTypeExec = 2;
constexpr Half kMachineMips = 8;
constexpr Word kPtLoad = 1;
constexpr Word kShtProgbits = 1;
constexpr Word kShtSymtab = 2;
constexpr Word kShtStrtab = 3;
constexpr Word kShtNobits = 8;
constexpr Word kShfWrite = 0x1;
constexpr Word kShfAlloc = 0x2;
constexpr Word kShfExecinstr = 0x4;
constexpr Word kPfX = 0x1;
constexpr Word kPfW = 0x2;
constexpr Word kPfR = 0x4;
constexpr Half kShnAbs = 0xfff1;
constexpr Byte kStbGlobal = 1;
constexpr Byte kSttObject = 1;
constexpr Byte kSttFunc = 2;
constexpr Byte kSttSection = 3;
constexpr Byte kSttFile = 4;

constexpr size_t kEhdrBytes = 52;
constexpr size_t kPhentBytes = 32;
constexpr size_t kShentBytes = 40;
constexpr size_t kSymBytes = 16;
constexpr size_t kFileAlign = 4096;

// Paranoia caps: a valid fixture is tens of kilobytes; anything that
// claims more structure than this is garbage, not a guest program.
constexpr size_t kMaxFileBytes = 16u << 20;
constexpr Word kMaxPhnum = 64;
constexpr Word kMaxShnum = 256;
constexpr Word kMaxSyms = 65536;

/** Bounds-checked little-endian field reads over the raw bytes. */
struct Reader
{
    const std::vector<Byte> &b;

    void need(size_t off, size_t len) const
    {
        if (off > b.size() || len > b.size() - off)
            throw ElfError("ELF structure extends past end of file");
    }
    Byte u8(size_t off) const
    {
        need(off, 1);
        return b[off];
    }
    Half u16(size_t off) const
    {
        need(off, 2);
        return static_cast<Half>(b[off] | (b[off + 1] << 8));
    }
    Word u32(size_t off) const
    {
        need(off, 4);
        return static_cast<Word>(b[off]) |
               (static_cast<Word>(b[off + 1]) << 8) |
               (static_cast<Word>(b[off + 2]) << 16) |
               (static_cast<Word>(b[off + 3]) << 24);
    }
    std::string cstr(size_t off, size_t limit) const
    {
        std::string s;
        while (off < limit) {
            Byte c = u8(off++);
            if (c == 0)
                return s;
            s.push_back(static_cast<char>(c));
        }
        throw ElfError("unterminated string in ELF string table");
    }
};

struct Shdr
{
    Word nameOff, type, flags, addr, offset, size, link, info, entsize;
};

Shdr
readShdr(const Reader &r, size_t off)
{
    Shdr s;
    s.nameOff = r.u32(off + 0);
    s.type = r.u32(off + 4);
    s.flags = r.u32(off + 8);
    s.addr = r.u32(off + 12);
    s.offset = r.u32(off + 16);
    s.size = r.u32(off + 20);
    s.link = r.u32(off + 24);
    s.info = r.u32(off + 28);
    s.entsize = r.u32(off + 36);
    return s;
}

/** Little-endian field appends for the writer. */
struct Emitter
{
    std::vector<Byte> b;

    void u8(Byte v) { b.push_back(v); }
    void u16(Half v)
    {
        b.push_back(static_cast<Byte>(v));
        b.push_back(static_cast<Byte>(v >> 8));
    }
    void u32(Word v)
    {
        b.push_back(static_cast<Byte>(v));
        b.push_back(static_cast<Byte>(v >> 8));
        b.push_back(static_cast<Byte>(v >> 16));
        b.push_back(static_cast<Byte>(v >> 24));
    }
    void padTo(size_t off)
    {
        if (b.size() > off)
            UEXC_PANIC("ELF writer layout went backwards");
        b.resize(off, 0);
    }
};

/** Deduplicating string-table builder (offset 0 is the empty name). */
struct StrTab
{
    std::vector<Byte> bytes{0};

    Word add(const std::string &s)
    {
        Word off = static_cast<Word>(bytes.size());
        bytes.insert(bytes.end(), s.begin(), s.end());
        bytes.push_back(0);
        return off;
    }
};

} // namespace

GuestImage
loadElf(const std::vector<Byte> &bytes, const std::string &image_name)
{
    if (bytes.size() > kMaxFileBytes)
        throw ElfError("ELF file implausibly large");
    Reader r{bytes};

    // Identification: 32-bit little-endian MIPS executable, current
    // version. The byte-order check is load-bearing: guest memory
    // shares host byte order, and the simulator runs on LSB hosts.
    if (r.u8(0) != kMag0 || r.u8(1) != kMag1 || r.u8(2) != kMag2 ||
        r.u8(3) != kMag3)
        throw ElfError("not an ELF file (bad magic)");
    if (r.u8(4) != kClass32)
        throw ElfError("not a 32-bit ELF (EI_CLASS)");
    if (r.u8(5) != kData2Lsb)
        throw ElfError("not little-endian (EI_DATA); the simulated "
                       "machine is LSB");
    if (r.u8(6) != kEvCurrent)
        throw ElfError("unknown ELF version (EI_VERSION)");
    if (r.u16(16) != kTypeExec)
        throw ElfError("not a static executable (e_type != ET_EXEC)");
    if (r.u16(18) != kMachineMips)
        throw ElfError("not a MIPS binary (e_machine != EM_MIPS)");
    if (r.u32(20) != kEvCurrent)
        throw ElfError("unknown ELF version (e_version)");

    const Word entry = r.u32(24);
    const Word phoff = r.u32(28);
    const Word shoff = r.u32(32);
    const Half phentsize = r.u16(42);
    const Half phnum = r.u16(44);
    const Half shentsize = r.u16(46);
    const Half shnum = r.u16(48);
    const Half shstrndx = r.u16(50);

    if (phnum == 0)
        throw ElfError("no program headers (nothing to load)");
    if (phnum > kMaxPhnum || shnum > kMaxShnum)
        throw ElfError("implausible program/section header count");
    if (phentsize != kPhentBytes)
        throw ElfError("unexpected program header entry size");
    if (shnum != 0 && shentsize != kShentBytes)
        throw ElfError("unexpected section header entry size");
    if (entry == 0 || entry % 4 != 0)
        throw ElfError("entry point missing or not word-aligned");

    GuestImage img;
    img.name = image_name;
    img.entry = entry;

    // Program headers -> sections. Only PT_LOAD matters; the rest
    // (MIPS ABI flags, notes) are ignored.
    for (Word i = 0; i < phnum; ++i) {
        size_t ph = phoff + static_cast<size_t>(i) * kPhentBytes;
        Word type = r.u32(ph + 0);
        if (type != kPtLoad)
            continue;
        Word offset = r.u32(ph + 4);
        Word vaddr = r.u32(ph + 8);
        Word filesz = r.u32(ph + 16);
        Word memsz = r.u32(ph + 20);
        Word flags = r.u32(ph + 24);

        if (memsz == 0)
            continue;
        if (filesz > memsz)
            throw ElfError("segment file size exceeds memory size");
        if (vaddr % 4 != 0)
            throw ElfError("segment load address not word-aligned");
        if (vaddr + memsz < vaddr)
            throw ElfError("segment wraps the address space");
        r.need(offset, filesz);

        GuestSection sec;
        sec.name = "load" + std::to_string(img.sections.size());
        sec.vaddr = vaddr;
        sec.writable = (flags & kPfW) != 0;
        sec.executable = (flags & kPfX) != 0;
        // Guest words are little-endian; a trailing partial word (a
        // linker can end .data on any byte) is zero-padded, which is
        // exactly the BSS fill it runs into.
        sec.words.resize((filesz + 3) / 4, 0);
        if (filesz > 0)
            std::memcpy(sec.words.data(), bytes.data() + offset, filesz);
        sec.memBytes = std::max<Word>(memsz, sec.fileBytes());
        img.sections.push_back(std::move(sec));
    }
    if (img.sections.empty())
        throw ElfError("no loadable segments");

    // Section headers are optional icing: real names for the load
    // sections, and the symbol table.
    if (shnum != 0) {
        std::vector<Shdr> shdrs;
        shdrs.reserve(shnum);
        for (Word i = 0; i < shnum; ++i)
            shdrs.push_back(
                readShdr(r, shoff + static_cast<size_t>(i) * kShentBytes));

        // Rename each load section after the first allocatable section
        // that starts where it does (.text, .data, ...).
        if (shstrndx != 0 && shstrndx < shnum) {
            const Shdr &names = shdrs[shstrndx];
            size_t limit = static_cast<size_t>(names.offset) + names.size;
            r.need(names.offset, names.size);
            for (GuestSection &sec : img.sections) {
                for (const Shdr &s : shdrs) {
                    if ((s.type == kShtProgbits || s.type == kShtNobits) &&
                        (s.flags & kShfAlloc) != 0 && s.addr == sec.vaddr) {
                        sec.name = r.cstr(names.offset + s.nameOff, limit);
                        break;
                    }
                }
            }
        }

        for (Word i = 0; i < shnum; ++i) {
            const Shdr &symtab = shdrs[i];
            if (symtab.type != kShtSymtab)
                continue;
            if (symtab.entsize != kSymBytes)
                throw ElfError("unexpected symbol entry size");
            if (symtab.link == 0 || symtab.link >= shnum)
                throw ElfError("symbol table has no string table");
            const Shdr &strtab = shdrs[symtab.link];
            size_t str_limit =
                static_cast<size_t>(strtab.offset) + strtab.size;
            r.need(strtab.offset, strtab.size);

            Word nsyms = symtab.size / kSymBytes;
            if (nsyms > kMaxSyms)
                throw ElfError("implausible symbol count");
            for (Word s = 0; s < nsyms; ++s) {
                size_t sym =
                    symtab.offset + static_cast<size_t>(s) * kSymBytes;
                Word name_off = r.u32(sym + 0);
                Word value = r.u32(sym + 4);
                Byte info = r.u8(sym + 12);
                Half shndx = r.u16(sym + 14);
                Byte type = info & 0xf;
                if (name_off == 0 || shndx == 0)
                    continue; // unnamed or undefined
                if (type == kSttSection || type == kSttFile)
                    continue;
                std::string sym_name =
                    r.cstr(strtab.offset + name_off, str_limit);
                if (sym_name.empty())
                    continue;
                img.symbols[sym_name] = value;
            }
            break;
        }
    }

    try {
        img.validate();
    } catch (const FatalError &e) {
        // validate() speaks fatal (producer bugs); parsing untrusted
        // bytes must stay an exception the caller can catch.
        throw ElfError(e.what());
    }
    return img;
}

GuestImage
loadElfFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw ElfError("cannot open '" + path + "'");
    std::vector<Byte> bytes;
    Byte buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        bytes.insert(bytes.end(), buf, buf + n);
        if (bytes.size() > kMaxFileBytes) {
            std::fclose(f);
            throw ElfError("'" + path + "' implausibly large");
        }
    }
    bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err)
        throw ElfError("error reading '" + path + "'");

    // Name the image after the file, sans directories.
    size_t slash = path.find_last_of('/');
    std::string image_name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return loadElf(bytes, image_name);
}

std::vector<Byte>
writeElf(const GuestImage &img)
{
    img.validate();
    const size_t nsec = img.sections.size();

    // File layout, in order: ehdr, phdrs, per-section contents (page
    // congruent with vaddr), symtab, strtab, shstrtab, shdrs. Compute
    // section file offsets first; everything downstream follows.
    std::vector<size_t> sec_off(nsec);
    size_t cursor = kEhdrBytes + nsec * kPhentBytes;
    for (size_t i = 0; i < nsec; ++i) {
        const GuestSection &s = img.sections[i];
        size_t want = s.vaddr % kFileAlign;
        size_t base = (cursor + kFileAlign - 1) / kFileAlign * kFileAlign;
        sec_off[i] = base + want;
        if (sec_off[i] < cursor)
            sec_off[i] += kFileAlign;
        cursor = sec_off[i] + s.fileBytes();
    }

    // Section header string table: null, load sections, fixed names.
    StrTab shstr;
    std::vector<Word> sec_name_off(nsec);
    for (size_t i = 0; i < nsec; ++i)
        sec_name_off[i] = shstr.add(img.sections[i].name);
    Word symtab_name = shstr.add(".symtab");
    Word strtab_name = shstr.add(".strtab");
    Word shstrtab_name = shstr.add(".shstrtab");

    // Symbol table: null entry, then every image symbol. The symbol
    // map is ordered, so the emitted table is deterministic.
    StrTab str;
    Emitter syms;
    syms.padTo(kSymBytes); // null symbol
    for (const auto &[sym_name, value] : img.symbols) {
        Half shndx = kShnAbs;
        Byte type = 0; // STT_NOTYPE
        for (size_t i = 0; i < nsec; ++i) {
            if (img.sections[i].contains(value)) {
                shndx = static_cast<Half>(1 + i);
                type = img.sections[i].executable ? kSttFunc : kSttObject;
                break;
            }
        }
        syms.u32(str.add(sym_name));
        syms.u32(value);
        syms.u32(0); // st_size unknown
        syms.u8(static_cast<Byte>((kStbGlobal << 4) | type));
        syms.u8(0);
        syms.u16(shndx);
    }

    size_t symtab_off = cursor;
    size_t strtab_off = symtab_off + syms.b.size();
    size_t shstrtab_off = strtab_off + str.bytes.size();
    size_t shoff = (shstrtab_off + shstr.bytes.size() + 3) / 4 * 4;
    // Section header order: null, loads, symtab, strtab, shstrtab.
    const Word shnum = static_cast<Word>(nsec + 4);
    const Word symtab_ndx = static_cast<Word>(nsec + 1);
    const Word strtab_ndx = static_cast<Word>(nsec + 2);
    const Word shstr_ndx = static_cast<Word>(nsec + 3);

    Emitter e;
    // e_ident
    e.u8(kMag0);
    e.u8(kMag1);
    e.u8(kMag2);
    e.u8(kMag3);
    e.u8(kClass32);
    e.u8(kData2Lsb);
    e.u8(kEvCurrent);
    e.padTo(16);
    e.u16(kTypeExec);
    e.u16(kMachineMips);
    e.u32(kEvCurrent);
    e.u32(img.entry);
    e.u32(kEhdrBytes); // e_phoff
    e.u32(static_cast<Word>(shoff));
    e.u32(0); // e_flags: MIPS-I
    e.u16(kEhdrBytes);
    e.u16(kPhentBytes);
    e.u16(static_cast<Half>(nsec));
    e.u16(kShentBytes);
    e.u16(static_cast<Half>(shnum));
    e.u16(static_cast<Half>(shstr_ndx));

    for (size_t i = 0; i < nsec; ++i) {
        const GuestSection &s = img.sections[i];
        Word flags = kPfR;
        if (s.writable)
            flags |= kPfW;
        if (s.executable)
            flags |= kPfX;
        e.u32(kPtLoad);
        e.u32(static_cast<Word>(sec_off[i]));
        e.u32(s.vaddr);
        e.u32(s.vaddr); // p_paddr mirrors p_vaddr
        e.u32(s.fileBytes());
        e.u32(s.memBytes);
        e.u32(flags);
        e.u32(kFileAlign);
    }

    for (size_t i = 0; i < nsec; ++i) {
        const GuestSection &s = img.sections[i];
        e.padTo(sec_off[i]);
        for (Word w : s.words)
            e.u32(w);
    }

    e.padTo(symtab_off);
    e.b.insert(e.b.end(), syms.b.begin(), syms.b.end());
    e.b.insert(e.b.end(), str.bytes.begin(), str.bytes.end());
    e.b.insert(e.b.end(), shstr.bytes.begin(), shstr.bytes.end());
    e.padTo(shoff);

    auto shdr = [&e](Word name_off, Word type, Word flags, Word addr,
                     Word offset, Word size, Word link, Word info,
                     Word addralign, Word entsize) {
        e.u32(name_off);
        e.u32(type);
        e.u32(flags);
        e.u32(addr);
        e.u32(offset);
        e.u32(size);
        e.u32(link);
        e.u32(info);
        e.u32(addralign);
        e.u32(entsize);
    };
    shdr(0, 0, 0, 0, 0, 0, 0, 0, 0, 0); // null
    for (size_t i = 0; i < nsec; ++i) {
        const GuestSection &s = img.sections[i];
        Word flags = kShfAlloc;
        if (s.writable)
            flags |= kShfWrite;
        if (s.executable)
            flags |= kShfExecinstr;
        shdr(sec_name_off[i], kShtProgbits, flags, s.vaddr,
             static_cast<Word>(sec_off[i]), s.fileBytes(), 0, 0, 4, 0);
    }
    // sh_info: index of the first non-local symbol (only the null
    // symbol is local here).
    shdr(symtab_name, kShtSymtab, 0, 0, static_cast<Word>(symtab_off),
         static_cast<Word>(syms.b.size()), strtab_ndx, 1, 4,
         kSymBytes);
    shdr(strtab_name, kShtStrtab, 0, 0, static_cast<Word>(strtab_off),
         static_cast<Word>(str.bytes.size()), 0, 0, 1, 0);
    shdr(shstrtab_name, kShtStrtab, 0, 0,
         static_cast<Word>(shstrtab_off),
         static_cast<Word>(shstr.bytes.size()), 0, 0, 1, 0);

    (void)symtab_ndx;
    return std::move(e.b);
}

void
writeElfFile(const std::string &path, const GuestImage &img)
{
    std::vector<Byte> bytes = writeElf(img);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        UEXC_FATAL("cannot write '%s'", path.c_str());
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (std::fclose(f) != 0 || n != bytes.size())
        UEXC_FATAL("short write to '%s'", path.c_str());
}

} // namespace uexc::os
