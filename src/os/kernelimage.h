/**
 * @file
 * Builder for the simulated kernel's guest-code image.
 *
 * The image contains, as real machine code executed by the simulator:
 *
 *  - the TLB refill handler at 0x80000000 (classic R3000 single-lw
 *    linear page table refill);
 *  - the general exception vector at 0x80000080, which begins with
 *    the paper's *fast user-level exception dispatch* structured into
 *    the exact phases of Table 3 (decode / compatibility check / save
 *    partial state / FP check / TLB-fault check / vector to user);
 *  - the TLB-fault sub-path: protection fault validation against the
 *    page tables, eager amplification (section 3.2.3), and subpage
 *    dispatch (section 3.2.4);
 *  - the stock Ultrix-style path: full register save into the u-area
 *    trapframe, trap() signal translation and posting, Ultrix
 *    bookkeeping traffic, sendsig sigcontext construction on the user
 *    stack, trampoline hand-off, and the sigreturn syscall;
 *  - the syscall path with a dispatch table (getpid, sigaction,
 *    sigreturn, set-trampoline in pure guest code; VM and uexc
 *    control syscalls bridged to host kernel services via hcall).
 *
 * Phase boundaries are exported as symbols (fast_decode, fast_compat,
 * ...) so the PhaseProfiler can regenerate Table 3 from execution.
 */

#ifndef UEXC_OS_KERNELIMAGE_H
#define UEXC_OS_KERNELIMAGE_H

#include <vector>

#include "analysis/lint.h"
#include "os/guestimage.h"
#include "sim/assembler.h"

namespace uexc::os {

/** Symbol names exported by the kernel image. */
namespace ksym {
constexpr const char *Curproc = "curproc";
constexpr const char *SigXlate = "sig_xlate";
constexpr const char *FastDecode = "fast_decode";
constexpr const char *FastCompat = "fast_compat";
constexpr const char *FastSave = "fast_save";
constexpr const char *FastFp = "fast_fp";
constexpr const char *FastTlbCheck = "fast_tlbcheck";
constexpr const char *FastVector = "fast_vector";
constexpr const char *FastEnd = "fast_end";
constexpr const char *TlbFault = "fast_tlb_fault";
constexpr const char *TlbFaultEnd = "fast_tlb_fault_end";
constexpr const char *SubpagePath = "subpage_path";
constexpr const char *SubpageEnd = "subpage_path_end";
constexpr const char *StockPath = "stock_path";
constexpr const char *StockEnd = "stock_end";
constexpr const char *RefillHandler = "tlb_refill";
constexpr const char *RefillEnd = "tlb_refill_end";
} // namespace ksym

/**
 * Static worst-case cycle budget for the Table-3 fast path (cache
 * model off). The bound is a straight 65-instruction path plus a
 * write-buffer stall on every store; the budget leaves a little
 * headroom so an extra save slot is an edit, not a gate failure.
 */
constexpr Cycles kFastPathWcetBudget = 128;

/**
 * Build the kernel image (vectors + handlers + kernel data labels).
 * Load the result into a Machine before creating processes. Debug
 * builds run uexc-lint over the image and panic on any Error finding.
 */
sim::Program buildKernelImage();

/**
 * The kernel image as a GuestImage: the assembled program wrapped as
 * one kseg0 section with its lint configuration attached. Entry is 0
 * — the kernel is entered through the hardware vectors, never jumped
 * into. Kernel::boot() and uexc-lint both consume this form.
 */
GuestImage buildKernelGuestImage();

/**
 * The analyzer configuration for a kernel image: one privileged code
 * region from the refill vector up to the kernel data labels, rooted
 * at both exception vectors, with sys_table declared as data (its
 * targets are mined as entry points).
 */
analysis::LintConfig kernelLintConfig(const sim::Program &prog);

/**
 * The structural spec of the fast path: the paper's Table 3 phase
 * word counts (6/11/31/6/8/3 = 65) and the pinned-save-area base
 * register whitelists.
 */
analysis::FastPathSpec kernelFastPathSpec(const sim::Program &prog);

/** lint() + verifyFastPath() over a built kernel image. */
std::vector<analysis::Finding> lintKernelImage(const sim::Program &prog);

} // namespace uexc::os

#endif // UEXC_OS_KERNELIMAGE_H
