#include "os/kernelimage.h"

#include "common/logging.h"
#include "os/addrspace.h"
#include "os/layout.h"
#include "sim/cp0.h"
#include "sim/cpu.h"
#include "sim/pseudo.h"

namespace uexc::os {

using namespace sim;

namespace {

/** Trapframe slot (byte offset) of general register @p r (1..31). */
constexpr SWord
tfReg(unsigned r)
{
    return static_cast<SWord>((r - 1) * 4);
}

constexpr SWord kTfMdlo = tf::Mdlo * 4;
constexpr SWord kTfMdhi = tf::Mdhi * 4;
constexpr SWord kTfEpc = tf::Epc * 4;
constexpr SWord kTfCause = tf::Cause * 4;
constexpr SWord kTfBadVA = tf::BadVA * 4;
constexpr SWord kTfStatus = tf::Status * 4;

/** Signal context slot (byte offset) of general register @p r. */
constexpr SWord
scReg(unsigned r)
{
    return static_cast<SWord>((sigctx::Regs + r - 1) * 4);
}

/**
 * Emit the TLB refill handler: the classic R3000 single-lw linear
 * page table refill. Context holds PTEBase | (BadVPN << 2); EntryHi
 * was loaded by hardware. PTEs whose V bit is clear are written
 * anyway; the retried access then faults to the general vector where
 * protection processing happens (two-step fault, as on real R3000).
 */
void
emitRefillHandler(Assembler &a)
{
    a.label(ksym::RefillHandler);
    a.mfc0(K1, cp0reg::Context);
    a.lw(K0, 0, K1);
    a.mtc0(K0, cp0reg::EntryLo);
    a.nop();                       // mtc0 hazard slot
    a.tlbwr();
    a.mfc0(K0, cp0reg::Epc);
    a.jr(K0);
    a.rfe();
    a.label(ksym::RefillEnd);
}

/**
 * Emit the fast user-level exception dispatch (paper section 3.2,
 * Table 3). The six phases are delimited by exported symbols and hold
 * the paper's exact instruction counts: 6 / 11 / 31 / 6 / 8 / 3 = 65.
 *
 * Register state on the vector-to-user handoff:
 *   t3       = frame address (user virtual) for this exception type
 *   at,t0-t5 = saved in the frame; the user stub restores them
 *   k0,k1    = dead (kernel-reserved)
 * All frame stores go through the frame page's kseg0 alias, so the
 * handler itself can take no TLB miss (the paper's pinning argument).
 */
void
emitFastPath(Assembler &a)
{
    // ---- phase 1: decode (6 instructions) --------------------------
    // Is this a synchronous exception from user mode at all?
    a.label(ksym::FastDecode);
    a.mfc0(K0, cp0reg::Cause);
    a.mfc0(K1, cp0reg::Status);
    a.andi(K0, K0, 0x7c);             // ExcCode << 2
    a.andi(K1, K1, status::KUp);      // faulted from user mode?
    a.beq(K1, Zero, "kernel_fault");
    a.srl(K0, K0, 2);                 // delay slot: k0 = ExcCode

    // ---- phase 2: Ultrix compatibility check (11 instructions) -----
    // Has this process enabled fast delivery of this exception type?
    a.label(ksym::FastCompat);
    pseudo::loadGlobal(a, K1, ksym::Curproc, K1);
    a.nop();                          // load delay (R3000)
    a.beq(K1, Zero, "stock_path");    // no process context
    a.nop();                          // delay slot
    a.lw(K1, proc::UexcMask, K1);
    a.nop();                          // load delay
    a.srlv(K1, K1, K0);
    a.andi(K1, K1, 1);
    a.beq(K1, Zero, "stock_path");
    a.nop();                          // delay slot

    // ---- phase 3: save partial state (31 instructions) --------------
    a.label(ksym::FastSave);
    pseudo::loadGlobal(a, K1, ksym::Curproc, K1);
    a.nop();
    a.lw(K1, proc::UexcFrameK, K1);   // frame page, kseg0 alias
    a.sll(K0, K0, uframe::FrameShift);
    a.addu(K1, K1, K0);               // k1 = frame (kseg0)
    a.sw(AT, uframe::At, K1);
    a.sw(T0, uframe::T0, K1);
    a.sw(T1, uframe::T1, K1);
    a.sw(T2, uframe::T2, K1);
    a.sw(T3, uframe::T3, K1);
    a.sw(T4, uframe::T4, K1);
    a.sw(T5, uframe::T5, K1);
    a.mfc0(T0, cp0reg::Epc);
    a.mfc0(T1, cp0reg::Cause);
    a.mfc0(T2, cp0reg::BadVAddr);
    a.mfc0(T3, cp0reg::Status);
    a.sw(T0, uframe::Epc, K1);
    a.sw(T1, uframe::Cause, K1);
    a.sw(T2, uframe::BadVA, K1);
    a.sw(T3, uframe::Status, K1);
    a.mfhi(T1);
    a.mflo(T2);
    a.sw(T1, uframe::Mdhi, K1);
    a.sw(T2, uframe::Mdlo, K1);
    pseudo::loadGlobal(a, T0, ksym::Curproc, T0);  // t0 = proc
    a.nop();
    a.lw(T3, proc::UexcFrameU, T0);
    a.nop();
    a.addu(T3, T3, K0);               // t3 = frame (user va)

    // ---- phase 4: floating point check (6 instructions) --------------
    a.label(ksym::FastFp);
    a.lw(T1, proc::FpUsed, T0);
    a.nop();
    a.beq(T1, Zero, "fast_fp_done");
    a.nop();
    a.j("fp_save_path");
    a.nop();
    a.label("fast_fp_done");

    // ---- phase 5: check for TLB fault (8 instructions) ----------------
    a.label(ksym::FastTlbCheck);
    a.lw(T1, uframe::Cause, K1);
    a.nop();
    a.srl(T1, T1, 2);
    a.andi(T1, T1, 0x1f);
    a.sltiu(T2, T1, 4);               // Mod/TLBL/TLBS are codes 1..3
    a.bne(T2, Zero, ksym::TlbFault);
    a.nop();
    a.nop();

    // ---- phase 6: vector to user (3 instructions) ----------------------
    a.label(ksym::FastVector);
    a.lw(K0, proc::UexcHandler, T0);
    a.jr(K0);
    a.rfe();
    a.label(ksym::FastEnd);
}

/**
 * Emit the fast path's TLB-fault sub-handler: validate the fault
 * against the page table (this is the paper's "additional call into a
 * C language routine" that makes protection delivery slower), apply
 * eager amplification when the process asked for it, and dispatch
 * subpage faults.
 *
 * Entry state: t0 = proc, k1 = frame (kseg0), t3 = frame (user va),
 * at/t0-t5 saved in the frame.
 */
void
emitTlbFaultPath(Assembler &a)
{
    a.label(ksym::TlbFault);
    a.lw(T1, proc::PtBase, T0);
    a.lw(T2, uframe::BadVA, K1);
    a.srl(T4, T2, kPageShift);
    a.sll(T4, T4, 2);
    a.addu(T4, T1, T4);               // t4 = &pte
    a.lw(T5, 0, T4);                  // t5 = pte
    a.nop();
    a.andi(T1, T5, kPtePresent);
    a.beq(T1, Zero, "stock_from_fast");  // true page fault -> Unix
    a.nop();

    // The paper: "the presence of Unix shared memory implies that the
    // handler must perform additional checks before an exception can
    // be correctly dismissed. Consequently, our emulation requires an
    // additional call into a C language routine, which in turn
    // necessitates more state to be saved" (section 3.2.2). The C
    // routine needs more registers, so spill t6-t8 to kernel scratch,
    // scan the per-process share-map list, and validate the pmap view
    // against the PTE. This block is why write-protection delivery is
    // three times the simple-exception cost (Table 2 rows 1 vs 2).
    a.la(T1, "ktemp");
    a.sw(T6, 0, T1);
    a.sw(T7, 4, T1);
    a.sw(T8, 8, T1);
    a.la(T6, "share_map_data");
    a.lw(T7, 0, T6);                  // entry count
    a.nop();
    a.label("fast_share_scan");
    a.lw(T8, 4, T6);                  // entry: region base
    a.lw(T1, 8, T6);                  // entry: region end
    a.sltu(T8, T2, T8);
    a.bne(T8, Zero, "fast_share_next");
    a.sltu(T1, T2, T1);
    a.beq(T1, Zero, "fast_share_next");
    a.nop();
    a.lw(T8, 12, T6);                 // shared-region ref count
    a.nop();
    a.label("fast_share_next");
    a.addiu(T6, T6, 16);
    a.addiu(T7, T7, -1);
    a.bgtz(T7, "fast_share_scan");
    a.nop();
    // pmap consistency: the cached TLB view must agree with the PTE
    a.mtc0(T5, cp0reg::EntryLo);
    a.tlbp();
    a.nop();
    a.mfc0(T1, cp0reg::Index);
    a.nop();
    a.bltz(T1, "fast_pmap_ok");
    a.nop();
    a.tlbr();
    a.mfc0(T1, cp0reg::EntryLo);
    a.nop();
    a.xor_(T1, T1, T5);
    a.andi(T1, T1, 0xf00);            // N/D/V/G disagreement is fatal
    a.bne(T1, Zero, "bad_trap");
    a.nop();
    a.label("fast_pmap_ok");
    // pmap_page_protect()-style reverse-map check: scan the frame's
    // pv-list head and validate the mapping count
    a.la(T1, "pv_head_data");
    a.srl(T6, T5, 12);
    a.andi(T6, T6, 0x1f);
    a.sll(T6, T6, 3);
    a.addu(T1, T1, T6);
    a.lw(T6, 0, T1);                  // pv entry: mapping count
    a.lw(T7, 4, T1);                  // pv entry: flags
    a.addiu(T6, T6, 0);
    a.or_(T7, T7, T6);
    a.sw(T7, 4, T1);
    // second pass: each pv mapping's attribute word is folded into
    // the page's modify/reference summary (Ultrix pmap keeps these
    // per-frame attributes coherent on every protection event)
    a.lw(T6, 0, T1);
    a.li(T7, 3);
    a.label("fast_pv_walk");
    a.lw(T8, 4, T1);
    a.andi(T8, T8, 0xff);
    a.addiu(T7, T7, -1);
    a.bgtz(T7, "fast_pv_walk");
    a.nop();
    a.lw(T8, 4, T1);
    a.ori(T8, T8, 0x100);
    a.sw(T8, 4, T1);
    // EntryHi is architecturally preserved across tlbp/tlbr here
    // (same VPN/ASID); reload EntryLo working value and the spills
    a.la(T1, "ktemp");
    a.lw(T6, 0, T1);
    a.lw(T7, 4, T1);
    a.lw(T8, 8, T1);
    a.lw(T1, 0, T4);                  // re-fetch pte after checks
    a.move(T5, T1);

    a.andi(T1, T5, kPteSubpage);
    a.bne(T1, Zero, ksym::SubpagePath);
    a.nop();
    a.lw(T1, proc::Flags, T0);
    a.nop();
    a.andi(T1, T1, kPfEagerAmplify);
    a.beq(T1, Zero, "fast_vector_2");
    a.nop();

    // eager amplification (section 3.2.3): grant access in the PTE
    // and patch any live TLB entry so the retry cannot re-fault.
    a.label("amplify_and_vector");
    a.ori(T5, T5, entrylo::V | entrylo::D);
    a.sw(T5, 0, T4);
    a.mtc0(T5, cp0reg::EntryLo);      // EntryHi = faulting VPN|ASID
    a.nop();
    a.tlbp();
    a.nop();
    a.mfc0(T1, cp0reg::Index);
    a.nop();
    a.bltz(T1, "fast_vector_2");      // not resident in the TLB
    a.nop();
    a.tlbwi();

    a.label("fast_vector_2");
    a.lw(K0, proc::UexcHandler, T0);
    a.jr(K0);
    a.rfe();
    a.label(ksym::TlbFaultEnd);

    // restore the fast-path's scratch saves, then take the stock path
    // so Unix sees unmodified user state
    a.label("stock_from_fast");
    a.lw(AT, uframe::At, K1);
    a.lw(T0, uframe::T0, K1);
    a.lw(T1, uframe::T1, K1);
    a.lw(T2, uframe::T2, K1);
    a.lw(T3, uframe::T3, K1);
    a.lw(T4, uframe::T4, K1);
    a.lw(T5, uframe::T5, K1);
    a.j("stock_path");
    a.nop();
}

/**
 * Emit the subpage dispatch of section 3.2.4. Entry state as for the
 * TLB fault path, plus t2 = faulting va, t4 = &pte, t5 = pte.
 */
void
emitSubpagePath(Assembler &a)
{
    a.label(ksym::SubpagePath);
    // recompute the logical page bounds and cross-check the stored
    // mask against the hardware protection state before trusting it
    // (the kernel's defensive checks; part of why subpage delivery
    // costs more than a plain protection fault, Table 2 row 3)
    a.srl(T1, T2, kPageShift);
    a.sll(T1, T1, kPageShift);        // hardware page base
    a.subu(T1, T2, T1);               // page offset
    a.srl(T1, T1, kSubpageShift);     // logical subpage index
    a.andi(T1, T1, kSubpagesPerPage - 1);
    a.andi(AT, T5, entrylo::D);
    a.bne(AT, Zero, "bad_trap");      // writable page cannot subfault
    a.nop();
    a.andi(AT, T5, kPteSubMaskBits);
    a.beq(AT, Zero, "bad_trap");      // mode bit without mask: bug
    a.nop();
    // recompute the page's aggregate protection from all four
    // subpage bits (the conjunction the MMU can express), updating
    // the kernel's subpage accounting table
    a.la(AT, "subpage_acct");
    a.andi(T7, T5, kPteSubMaskBits);
    a.srl(T7, T7, kPteSubMaskShift);
    a.li(T6, kSubpagesPerPage);
    a.label("subpage_recompute");
    a.andi(T8, T7, 1);
    a.lw(T9, 0, AT);
    a.addu(T9, T9, T8);
    a.sw(T9, 0, AT);
    a.srl(T7, T7, 1);
    a.addiu(T6, T6, -1);
    a.bgtz(T6, "subpage_recompute");
    a.nop();
    // update the logical-page table: Ultrix-style per-subpage
    // attribute words (reference, modify, protection) for all four
    // logical pages of this hardware page
    a.la(AT, "subpage_acct");
    a.li(T6, kSubpagesPerPage);
    a.label("subpage_lpt_update");
    a.lw(T7, 4, AT);
    a.srl(T8, T2, kSubpageShift);
    a.xor_(T7, T7, T8);
    a.andi(T7, T7, 0xfff);
    a.sw(T7, 4, AT);
    a.lw(T7, 8, AT);
    a.addiu(T7, T7, 1);
    a.sw(T7, 8, AT);
    a.addiu(T6, T6, -1);
    a.bgtz(T6, "subpage_lpt_update");
    a.nop();

    a.la(AT, "ktemp");
    a.lw(T6, 0, AT);
    a.lw(T7, 4, AT);
    a.lw(T8, 8, AT);

    a.addiu(T1, T1, kPteSubMaskShift);
    a.srlv(T1, T5, T1);
    a.andi(T1, T1, 1);
    a.bne(T1, Zero, "subpage_protected");
    a.nop();

    // Access in an unprotected logical subpage: the kernel emulates
    // the load/store (and the branch, if the access sat in a delay
    // slot) and the user program never notices. The emulation itself
    // is a kernel C routine: host service, cycle-charged.
    a.hcall(svc::SubpageEmulate);
    a.lw(AT, uframe::At, K1);
    a.lw(T0, uframe::T0, K1);
    a.lw(T1, uframe::T1, K1);
    a.lw(T2, uframe::T2, K1);
    a.lw(T3, uframe::T3, K1);
    a.lw(T4, uframe::T4, K1);
    a.lw(T5, uframe::T5, K1);
    a.mfc0(K0, cp0reg::Epc);
    a.jr(K0);
    a.rfe();

    // Protected subpage: amplify the page and vector to the user
    // handler (the user re-protects later via subpage_protect).
    a.label("subpage_protected");
    a.j("amplify_and_vector");
    a.nop();
    a.label(ksym::SubpageEnd);
}

/**
 * Emit the FP-state save loop taken by the fast path when the
 * process has live floating point state (32 words into the pcb).
 */
void
emitFpSavePath(Assembler &a)
{
    a.label("fp_save_path");
    a.lw(T1, proc::UArea, T0);
    a.li(T2, 32);
    a.addiu(T1, T1, static_cast<SWord>(uarea::FpFrame));
    a.label("fp_save_loop");
    a.lw(T4, 0, T1);
    a.sw(T4, 0x80, T1);
    a.addiu(T1, T1, 4);
    a.addiu(T2, T2, -1);
    a.bne(T2, Zero, "fp_save_loop");
    a.nop();
    a.j("fast_fp_done");
    a.nop();
}

/**
 * Emit the stock Ultrix-style path: full state save into the u-area
 * trapframe, then dispatch to the syscall handler or the signal
 * machinery.
 */
void
emitStockEntry(Assembler &a)
{
    a.label(ksym::StockPath);
    pseudo::loadGlobal(a, K1, ksym::Curproc, K1);
    a.nop();
    a.beq(K1, Zero, "bad_trap");
    a.nop();
    a.lw(K1, proc::UArea, K1);        // k1 = u-area = trapframe base
    a.nop();

    // save every general register except k0/k1 (29 stores), exactly
    // the "saves all user registers" behaviour the paper describes
    for (unsigned r = 1; r < 32; r++) {
        if (r == K0 || r == K1)
            continue;
        a.sw(r, tfReg(r), K1);
    }
    a.mfhi(T0);
    a.sw(T0, kTfMdhi, K1);
    a.mflo(T0);
    a.sw(T0, kTfMdlo, K1);
    a.mfc0(T0, cp0reg::Epc);
    a.sw(T0, kTfEpc, K1);
    a.mfc0(T0, cp0reg::Cause);
    a.sw(T0, kTfCause, K1);
    a.mfc0(T0, cp0reg::BadVAddr);
    a.sw(T0, kTfBadVA, K1);
    a.mfc0(T0, cp0reg::Status);
    a.sw(T0, kTfStatus, K1);

    // dispatch: syscalls to the syscall path, all else to trap()
    a.mfc0(T0, cp0reg::Cause);
    a.srl(T0, T0, 2);
    a.andi(T0, T0, 0x1f);
    a.li(T1, static_cast<Word>(ExcCode::Sys));
    a.beq(T0, T1, "syscall_path");
    a.nop();
    a.j("trap_path");
    a.nop();
}

/**
 * Emit trap(): exception-to-signal translation, posting, the u-area
 * bookkeeping Ultrix performs on every trap, signal recognition
 * (ffs over pending&~blocked), and sendsig()'s sigcontext
 * construction on the user stack.
 */
void
emitTrapPath(Assembler &a)
{
    a.label("trap_path");
    // Ultrix attempts to fix up unaligned accesses before signalling
    // (the paper notes this explicitly and ignores the fixup itself;
    // the *check* — fetching and partially decoding the faulting
    // instruction — still runs on every AdEL/AdES)
    a.li(T1, static_cast<Word>(ExcCode::AdEL));
    a.beq(T0, T1, "unaligned_check");
    a.li(T1, static_cast<Word>(ExcCode::AdES));
    a.beq(T0, T1, "unaligned_check");
    a.nop();
    a.j("after_unaligned_check");
    a.nop();
    a.label("unaligned_check");
    a.lw(T2, kTfEpc, K1);
    a.lw(T3, kTfCause, K1);
    a.bltz(T3, "after_unaligned_check");  // BD: fixup not attempted
    a.andi(T4, T2, 3);
    a.bne(T4, Zero, "after_unaligned_check");  // unaligned fetch EPC
    a.nop();
    // fetch the user instruction; the text page is necessarily still
    // in the TLB (it was just fetched from, and this handler runs
    // unmapped), so k1 stays safe across the user-space load
    a.lw(T2, 0, T2);
    a.nop();
    a.srl(T3, T2, 26);                // opcode
    a.andi(T4, T2, 0xffff);           // displacement
    a.srl(T5, T2, 21);
    a.andi(T5, T5, 0x1f);             // base register index
    a.sltiu(T3, T3, 0x20);            // is it even a memory opcode?
    a.lw(T4, static_cast<SWord>(uarea::AstFlags) + 8, K1);
    a.nop();
    a.andi(T4, T4, 1);                // fixup globally enabled?
    // (fixup disabled, as in the paper's measurements: fall through)
    a.label("after_unaligned_check");

    // vm_fault(): protection faults and page faults go through the
    // VM system before they can become signals — map entry lookup,
    // object chain walk, and pmap update. This is the bulk of the
    // Ultrix write-protection delivery cost (Table 1 row 2).
    a.sltiu(T1, T0, 4);
    a.beq(T1, Zero, "after_vm_fault");  // codes 1..3 only
    a.nop();
    a.la(T2, "vm_map_data");
    a.lw(T3, 0, T2);                  // map entry count
    a.lw(T4, kTfBadVA, K1);
    a.label("vm_map_scan");
    a.lw(T5, 4, T2);                  // entry start
    a.lw(T6, 8, T2);                  // entry end
    a.sltu(T5, T4, T5);
    a.bne(T5, Zero, "vm_map_next");
    a.sltu(T6, T4, T6);
    a.beq(T6, Zero, "vm_map_next");
    a.nop();
    // found the map entry: walk the shadow object chain
    a.lw(T5, 12, T2);                 // object chain depth
    a.nop();
    a.label("vm_obj_walk");
    a.lw(T6, 16, T2);                 // object "lock" word
    a.addiu(T6, T6, 1);
    a.sw(T6, 16, T2);
    a.lw(T6, 20, T2);                 // resident page lookup hash
    a.srl(T7, T4, kPageShift);
    a.xor_(T6, T6, T7);
    a.andi(T6, T6, 0x3ff);
    a.lw(T7, 16, T2);                 // page busy/wanted flags
    a.nop();
    a.andi(T7, T7, 0x3);
    a.lw(T7, 8, T2);                  // object size check
    a.nop();
    a.sltu(T7, T4, T7);
    a.lw(T7, 16, T2);                 // unlock
    a.addiu(T7, T7, -1);
    a.sw(T7, 16, T2);
    a.addiu(T5, T5, -1);
    a.bgtz(T5, "vm_obj_walk");
    a.nop();
    a.j("vm_fault_done");
    a.nop();
    a.label("vm_map_next");
    a.addiu(T2, T2, 24);
    a.addiu(T3, T3, -1);
    a.bgtz(T3, "vm_map_scan");
    a.nop();
    a.label("vm_fault_done");
    // pmap_enter(): walk the frame's pv list to keep the per-frame
    // attribute summary coherent before updating the hardware view
    a.la(T2, "pv_head_data");
    a.li(T5, 12);
    a.label("vm_pv_scan");
    a.lw(T6, 0, T2);
    a.lw(T7, 4, T2);
    a.or_(T6, T6, T7);
    a.sw(T6, 4, T2);
    a.addiu(T2, T2, 8);
    a.addiu(T5, T5, -1);
    a.bgtz(T5, "vm_pv_scan");
    a.nop();
    // pmap_enter(): revalidate the hardware view. EntryHi carries the
    // live ASID and must be restored after the probe.
    a.mfc0(T3, cp0reg::EntryHi);
    a.lw(T2, kTfBadVA, K1);
    a.srl(T2, T2, kPageShift);
    a.sll(T2, T2, kPageShift);
    a.andi(T5, T3, entryhi::AsidMask);
    a.or_(T2, T2, T5);
    a.mtc0(T2, cp0reg::EntryHi);
    a.tlbp();
    a.nop();
    a.mfc0(T2, cp0reg::Index);
    a.mtc0(T3, cp0reg::EntryHi);
    a.nop();
    a.label("after_vm_fault");

    // RI may be a TLBMP instruction to emulate (section 3.2.3's
    // "emulation of unused opcodes in the kernel")
    a.li(T1, static_cast<Word>(ExcCode::Ri));
    a.bne(T0, T1, "no_ri_emulation");
    a.nop();
    a.hcall(svc::RiEmulate);          // host sets k1=1 when handled
    a.bne(K1, Zero, "restore_all");
    a.nop();
    // reload trapframe base clobbered by the branch above
    pseudo::loadGlobal(a, K1, ksym::Curproc, K1);
    a.nop();
    a.lw(K1, proc::UArea, K1);
    a.nop();
    a.label("no_ri_emulation");

    // "saves all user registers, some of them twice" (the paper on
    // Ultrix): trap()'s C prologue re-saves the caller-saved set
    // from the locore trapframe into its own frame area
    for (unsigned r : {AT, V0, V1, A0, A1, A2, A3,
                       T0, T1, T2, T3, T4, T5, T6, T7, RA}) {
        a.lw(T8, tfReg(r), K1);
        a.sw(T8, static_cast<SWord>(0x100 + 4 * r), K1);
    }

    // translate ExcCode -> signal number
    a.la(T1, ksym::SigXlate);
    a.sll(T2, T0, 2);
    a.addu(T1, T1, T2);
    a.lw(T3, 0, T1);
    a.nop();
    a.beq(T3, Zero, "bad_trap");
    a.nop();

    // s0 = proc, s1 = u-area, s2 = trapframe, s4 = signal
    pseudo::loadGlobal(a, S0, ksym::Curproc, S0);
    a.nop();
    a.lw(S1, proc::UArea, S0);
    a.nop();
    a.move(S2, S1);
    a.move(S4, T3);

    // no handler installed? the process would be killed; in the
    // simulation that is a fatal condition surfaced to the host
    a.sll(T1, S4, 2);
    a.addu(T1, S0, T1);
    a.lw(T4, proc::SigHandlers, T1);
    a.nop();
    a.beq(T4, Zero, "bad_trap");
    a.nop();

    // psignal(): post the signal bit
    a.lw(T1, proc::SigPending, S0);
    a.li(T2, 1);
    a.sllv(T2, T2, S4);
    a.or_(T1, T1, T2);
    a.sw(T1, proc::SigPending, S0);

    // Ultrix per-trap bookkeeping: resource accounting, AST flags,
    // and alternate-stack checks touch scattered u-area lines
    a.lw(T1, static_cast<SWord>(uarea::RusageBase), S1);
    a.addiu(T1, T1, 1);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase), S1);
    a.lw(T1, static_cast<SWord>(uarea::RusageBase) + 0x20, S1);
    a.addiu(T1, T1, 1);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase) + 0x20, S1);
    a.lw(T1, static_cast<SWord>(uarea::RusageBase) + 0x40, S1);
    a.addiu(T1, T1, 1);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase) + 0x40, S1);
    a.lw(T1, static_cast<SWord>(uarea::AstFlags), S1);
    a.ori(T1, T1, 1);
    a.sw(T1, static_cast<SWord>(uarea::AstFlags), S1);
    a.lw(T1, static_cast<SWord>(uarea::SigAltStack), S1);
    a.nop();

    // psig() preliminaries: sigaction flags, job-control state, core
    // dump eligibility, and the sigmask recomputation loop over the
    // 32-signal mask word (the generality the paper calls "overkill
    // for simple synchronous exceptions")
    a.lw(T1, static_cast<SWord>(uarea::SigAltStack) + 8, S1);
    a.lw(T2, proc::Flags, S0);
    a.andi(T2, T2, 0xff);
    a.lw(T4, static_cast<SWord>(uarea::SigAltStack) + 16, S1);
    a.nop();
    a.or_(T1, T1, T4);
    a.sw(T1, static_cast<SWord>(uarea::SigAltStack) + 24, S1);
    a.lw(T1, proc::SigMask, S0);
    a.li(T2, 8);                       // recompute held-signal summary
    a.li(T4, 0);
    a.label("sigmask_recompute");
    a.andi(T5, T1, 0xf);
    a.addu(T4, T4, T5);
    a.srl(T1, T1, 4);
    a.addiu(T2, T2, -1);
    a.bgtz(T2, "sigmask_recompute");
    a.nop();
    a.sw(T4, static_cast<SWord>(uarea::SigAltStack) + 32, S1);

    // issig()/psig(): find the lowest pending unblocked signal
    a.lw(T1, proc::SigPending, S0);
    a.lw(T2, proc::SigMask, S0);
    a.nor(T2, T2, Zero);
    a.and_(T1, T1, T2);
    a.beq(T1, Zero, "restore_all");
    a.li(T5, 0);
    a.label("ffs_loop");
    a.andi(T6, T1, 1);
    a.bne(T6, Zero, "ffs_done");
    a.nop();
    a.srl(T1, T1, 1);
    a.j("ffs_loop");
    a.addiu(T5, T5, 1);
    a.label("ffs_done");
    a.move(S4, T5);

    // clear the pending bit
    a.lw(T1, proc::SigPending, S0);
    a.li(T2, 1);
    a.sllv(T2, T2, S4);
    a.nor(T2, T2, Zero);
    a.and_(T1, T1, T2);
    a.sw(T1, proc::SigPending, S0);

    // ---- sendsig(): build the sigcontext on the user stack ---------
    // s3 = sigcontext base = (user sp - size - 32) & ~7
    a.lw(T1, tfReg(SP), S2);
    a.addiu(T1, T1, -static_cast<SWord>(sigctx::Bytes + 32));
    a.li(T2, ~Word(7));
    a.and_(S3, T1, T2);

    // sc_pc
    a.lw(T1, kTfEpc, S2);
    a.sw(T1, sigctx::Pc * 4, S3);
    // 31 general registers (user-stack stores may TLB-miss; k0/k1
    // are not live here, so the refill handler is safe)
    a.li(T0, 0);
    a.label("sendsig_copy");
    a.sll(T1, T0, 2);
    a.addu(T2, S2, T1);
    a.lw(T4, 0, T2);                  // trapframe[reg]
    a.addu(T2, S3, T1);
    a.sw(T4, sigctx::Regs * 4, T2);   // sigcontext[reg]
    a.addiu(T0, T0, 1);
    a.li(T1, tf::NumRegSlots);
    a.bne(T0, T1, "sendsig_copy");
    a.nop();
    // machine state words
    a.lw(T1, kTfMdlo, S2);
    a.sw(T1, sigctx::Mdlo * 4, S3);
    a.lw(T1, kTfMdhi, S2);
    a.sw(T1, sigctx::Mdhi * 4, S3);
    a.lw(T1, kTfCause, S2);
    a.sw(T1, sigctx::Cause * 4, S3);
    a.lw(T1, kTfBadVA, S2);
    a.sw(T1, sigctx::BadVA * 4, S3);
    a.lw(T1, kTfStatus, S2);
    a.sw(T1, sigctx::Status * 4, S3);
    a.lw(T1, proc::SigMask, S0);
    a.sw(T1, sigctx::Mask * 4, S3);

    // FP state: Ultrix builds the full sigcontext including the 32
    // floating point registers ("saves all user registers, some of
    // them twice")
    a.li(T0, 0);
    a.addiu(T1, S1, static_cast<SWord>(uarea::FpFrame));
    a.addiu(T2, S3, sigctx::FpRegs * 4);
    a.label("sendsig_fp_copy");
    a.lw(T4, 0, T1);
    a.sw(T4, 0, T2);
    a.addiu(T1, T1, 4);
    a.addiu(T2, T2, 4);
    a.addiu(T0, T0, 1);
    a.li(T5, 32);
    a.bne(T0, T5, "sendsig_fp_copy");
    a.nop();
    a.sw(Zero, sigctx::FpCsr * 4, S3);

    // block the signal while its handler runs (Unix semantics)
    a.lw(T1, proc::SigMask, S0);
    a.li(T2, 1);
    a.sllv(T2, T2, S4);
    a.or_(T1, T1, T2);
    a.sw(T1, proc::SigMask, S0);

    // rewrite the trapframe so the exception return lands in the
    // user trampoline with the signal-handler arguments in place
    a.lw(T1, proc::TrampolineU, S0);
    a.sw(T1, kTfEpc, S2);
    a.sw(S4, tfReg(A0), S2);          // a0 = signal
    a.lw(T1, kTfCause, S2);
    a.sw(T1, tfReg(A1), S2);          // a1 = code
    a.sw(S3, tfReg(A2), S2);          // a2 = &sigcontext
    a.addiu(T1, S3, -32);
    a.sw(T1, tfReg(SP), S2);          // sp below the context
    a.sll(T1, S4, 2);
    a.addu(T1, S0, T1);
    a.lw(T1, proc::SigHandlers, T1);
    a.nop();
    a.sw(T1, tfReg(T9), S2);          // t9 = handler for the trampoline
    a.j("restore_all");
    a.nop();
}

/**
 * Emit the syscall path: EPC advance, dispatch table, the pure-guest
 * syscalls (getpid, sigaction, sigreturn, set-trampoline), and the
 * host-service bridge for VM / uexc control calls.
 */
void
emitSyscallPath(Assembler &a)
{
    a.label("syscall_path");
    // a syscall in a branch delay slot is not supported (Cause.BD)
    a.lw(T0, kTfCause, K1);
    a.nop();
    a.bltz(T0, "bad_trap");
    a.nop();
    // resume past the syscall instruction
    a.lw(T0, kTfEpc, K1);
    a.addiu(T0, T0, 4);
    a.sw(T0, kTfEpc, K1);

    // Unix syscall preliminaries: u_error reset, argument copyin into
    // the u-area argument block (Ultrix fetches the maximum argument
    // count for the generic dispatcher), and accounting
    a.sw(Zero, static_cast<SWord>(uarea::AstFlags) + 16, K1);
    a.addiu(T2, K1, static_cast<SWord>(uarea::AstFlags) + 32);
    a.li(T1, 10);
    a.label("syscall_copyin");
    a.lw(T4, tfReg(A0), K1);          // args live in the trapframe
    a.sw(T4, 0, T2);
    a.addiu(T2, T2, 4);
    a.addiu(T1, T1, -1);
    a.bgtz(T1, "syscall_copyin");
    a.nop();
    a.lw(T1, static_cast<SWord>(uarea::RusageBase) + 0x60, K1);
    a.addiu(T1, T1, 1);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase) + 0x60, K1);
    // process priority recomputation at kernel entry (sched_cpu)
    a.lw(T1, static_cast<SWord>(uarea::RusageBase) + 0x70, K1);
    a.lw(T2, static_cast<SWord>(uarea::RusageBase) + 0x74, K1);
    a.addu(T1, T1, T2);
    a.sra(T1, T1, 2);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase) + 0x78, K1);
    a.lw(T1, static_cast<SWord>(uarea::AstFlags) + 4, K1);
    a.nop();
    a.andi(T1, T1, 0x7);
    a.sw(T1, static_cast<SWord>(uarea::AstFlags) + 12, K1);
    // signal-pending check at kernel entry (issig() is consulted on
    // every syscall, not only on traps)
    pseudo::loadGlobal(a, T1, ksym::Curproc, T1);
    a.nop();
    a.lw(T2, proc::SigPending, T1);
    a.lw(T4, proc::SigMask, T1);
    a.nor(T4, T4, Zero);
    a.and_(T2, T2, T4);
    a.sw(T2, static_cast<SWord>(uarea::AstFlags) + 20, K1);
    // resource-limit and profiling-tick bookkeeping
    a.lw(T1, static_cast<SWord>(uarea::RusageBase) + 0x80, K1);
    a.addiu(T1, T1, 1);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase) + 0x80, K1);
    a.lw(T1, static_cast<SWord>(uarea::RusageBase) + 0x90, K1);
    a.nop();
    a.sltiu(T1, T1, 0x7fff);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase) + 0x94, K1);
    a.lw(T1, static_cast<SWord>(uarea::RusageBase) + 0x98, K1);
    a.addiu(T1, T1, 1);
    a.sw(T1, static_cast<SWord>(uarea::RusageBase) + 0x98, K1);

    // dispatch on v0
    a.lw(T0, tfReg(V0), K1);
    a.nop();
    a.sltiu(T1, T0, sys::NumSyscalls);
    a.beq(T1, Zero, "bad_syscall");
    a.nop();
    a.sll(T1, T0, 2);
    a.la(T2, "sys_table");
    a.addu(T2, T2, T1);
    a.lw(T2, 0, T2);
    a.nop();
    a.jr(T2);
    a.nop();

    a.label("sys_getpid");
    pseudo::loadGlobal(a, T0, ksym::Curproc, T0);
    a.nop();
    a.lw(T1, proc::Pid, T0);
    a.nop();
    a.sw(T1, tfReg(V0), K1);
    a.j("restore_all");
    a.nop();

    a.label("sys_sigaction");
    pseudo::loadGlobal(a, T0, ksym::Curproc, T0);
    a.lw(T1, tfReg(A0), K1);          // signum
    a.lw(T2, tfReg(A1), K1);          // handler
    a.sltiu(T3, T1, kNumSignals);
    a.beq(T3, Zero, "bad_syscall");
    a.nop();
    a.sll(T1, T1, 2);
    a.addu(T0, T0, T1);
    a.sw(T2, proc::SigHandlers, T0);
    a.sw(Zero, tfReg(V0), K1);
    a.j("restore_all");
    a.nop();

    a.label("sys_settramp");
    pseudo::loadGlobal(a, T0, ksym::Curproc, T0);
    a.lw(T1, tfReg(A0), K1);
    a.nop();
    a.sw(T1, proc::TrampolineU, T0);
    a.sw(Zero, tfReg(V0), K1);
    a.j("restore_all");
    a.nop();

    // sigreturn(a0 = &sigcontext): copy the (possibly modified)
    // context back into the trapframe, restore the signal mask, and
    // return through the common restore path
    a.label("sys_sigreturn");
    a.lw(S3, tfReg(A0), K1);          // sc base (user va)
    a.move(S2, K1);                   // trapframe
    pseudo::loadGlobal(a, S0, ksym::Curproc, S0);
    a.nop();
    // pc
    a.lw(T1, sigctx::Pc * 4, S3);
    a.sw(T1, kTfEpc, S2);
    // general registers
    a.li(T0, 0);
    a.label("sigret_copy");
    a.sll(T1, T0, 2);
    a.addu(T2, S3, T1);
    a.lw(T4, sigctx::Regs * 4, T2);
    a.addu(T2, S2, T1);
    a.sw(T4, 0, T2);
    a.addiu(T0, T0, 1);
    a.li(T1, tf::NumRegSlots);
    a.bne(T0, T1, "sigret_copy");
    a.nop();
    // machine state
    a.lw(T1, sigctx::Mdlo * 4, S3);
    a.sw(T1, kTfMdlo, S2);
    a.lw(T1, sigctx::Mdhi * 4, S3);
    a.sw(T1, kTfMdhi, S2);
    // signal mask (unblocks the delivered signal again)
    a.lw(T1, sigctx::Mask * 4, S3);
    a.sw(T1, proc::SigMask, S0);
    // FP state back into the pcb
    a.lw(S1, proc::UArea, S0);
    a.li(T0, 0);
    a.addiu(T2, S3, sigctx::FpRegs * 4);
    a.nop();
    a.addiu(T1, S1, static_cast<SWord>(uarea::FpFrame));
    a.label("sigret_fp_copy");
    a.lw(T4, 0, T2);
    a.sw(T4, 0, T1);
    a.addiu(T1, T1, 4);
    a.addiu(T2, T2, 4);
    a.addiu(T0, T0, 1);
    a.li(T5, 32);
    a.bne(T0, T5, "sigret_fp_copy");
    a.nop();
    a.j("restore_all");
    a.nop();

    a.label("sys_complex");
    a.hcall(svc::SyscallComplex);
    a.j("restore_all");
    a.nop();

    a.label("bad_syscall");
    a.li(T0, static_cast<Word>(-1));
    a.sw(T0, tfReg(V0), K1);
    a.j("restore_all");
    a.nop();

    a.align(8);
    a.label("sys_table");
    a.wordAddr("bad_syscall");        // 0
    a.wordAddr("sys_getpid");         // 1
    a.wordAddr("sys_sigaction");      // 2
    a.wordAddr("sys_sigreturn");      // 3
    a.wordAddr("sys_complex");        // 4 mprotect
    a.wordAddr("sys_complex");        // 5 uexc_enable
    a.wordAddr("sys_complex");        // 6 uexc_protect
    a.wordAddr("sys_complex");        // 7 subpage_protect
    a.wordAddr("sys_complex");        // 8 exit
    a.wordAddr("sys_complex");        // 9 uexc_setflags
    a.wordAddr("sys_settramp");       // 10
    a.wordAddr("sys_complex");        // 11 open
    a.wordAddr("sys_complex");        // 12 close
    a.wordAddr("sys_complex");        // 13 read
    a.wordAddr("sys_complex");        // 14 write
    a.wordAddr("sys_complex");        // 15 sbrk
    a.wordAddr("sys_complex");        // 16 fork
    a.wordAddr("sys_complex");        // 17 wait
    for (Word n = 18; n < sys::NumSyscalls; n++)
        a.wordAddr("bad_syscall");    // 18..31 unassigned
}

/**
 * Emit the common exception-return path: reload every register from
 * the trapframe and return to the saved EPC.
 */
void
emitRestorePath(Assembler &a)
{
    a.label("restore_all");
    pseudo::loadGlobal(a, K1, ksym::Curproc, K1);
    a.nop();
    a.lw(K1, proc::UArea, K1);
    a.nop();
    a.lw(K0, kTfMdhi, K1);
    a.mthi(K0);
    a.lw(K0, kTfMdlo, K1);
    a.mtlo(K0);
    for (unsigned r = 1; r < 32; r++) {
        if (r == K0 || r == K1)
            continue;
        a.lw(r, tfReg(r), K1);
    }
    a.lw(K0, kTfEpc, K1);
    a.jr(K0);
    a.rfe();
    a.label(ksym::StockEnd);

    a.label("kernel_fault");
    a.label("bad_trap");
    a.hcall(svc::PanicBadTrap);
    a.j("bad_trap");
    a.nop();
}

/** Emit kernel data: curproc cell and the signal translation table. */
void
emitKernelData(Assembler &a)
{
    a.align(64);
    a.label(ksym::Curproc);
    a.word(0);
    // kernel scratch used by handler spills
    a.align(64);
    a.label("ktemp");
    a.space(16);

    // the process share-map list scanned by the fast TLB-fault path:
    // count, then (base, end, refcount, pad) per region
    a.align(64);
    a.label("share_map_data");
    a.word(8);
    const Word share_regions[8][3] = {
        {0x00400000u, 0x00480000u, 1},   // text
        {0x00380000u, 0x00381000u, 1},   // exception frame page
        {0x00600000u, 0x00700000u, 1},   // shared text segments
        {0x08000000u, 0x0c000000u, 1},   // shared libraries
        {0x0c000000u, 0x0e000000u, 2},   // System V shared memory
        {0x0e000000u, 0x10000000u, 1},   // mmap region
        {0x7ff00000u, 0x80000000u, 1},   // stack
        {0x10000000u, 0x60000000u, 1},   // heap (matches app faults)
    };
    for (const auto &r : share_regions) {
        a.word(r[0]);
        a.word(r[1]);
        a.word(r[2]);
        a.word(0);
    }

    // the vm_map entry list walked by the stock path's vm_fault():
    // count, then (start, end, shadow-depth, lock, hash, pad)
    a.align(64);
    a.label("pv_head_data");
    a.space(32 * 8);

    a.align(64);
    a.label("subpage_acct");
    a.space(16);

    a.align(64);
    a.label("vm_map_data");
    a.word(6);
    const Word vm_entries[6][3] = {
        {0x00400000u, 0x00480000u, 1},
        {0x00380000u, 0x00381000u, 1},
        {0x7ff00000u, 0x80000000u, 2},
        {0x08000000u, 0x0c000000u, 1},   // shared libraries region
        {0x0c000000u, 0x10000000u, 1},   // mmap region
        {0x10000000u, 0x60000000u, 14},  // heap: deepest shadow chain
    };
    for (const auto &e : vm_entries) {
        a.word(e[0]);
        a.word(e[1]);
        a.word(e[2]);
        a.word(0);
        a.word(0);
        a.word(0);
    }

    a.align(64);
    a.align(64);
    a.label(ksym::SigXlate);
    const Word xlate[16] = {
        0,         // Int: never a signal here
        kSigsegv,  // Mod
        kSigsegv,  // TLBL
        kSigsegv,  // TLBS
        kSigbus,   // AdEL
        kSigbus,   // AdES
        kSigbus,   // IBE
        kSigbus,   // DBE
        0,         // Sys: handled by the syscall path
        kSigtrap,  // Bp
        kSigill,   // RI
        kSigill,   // CpU
        kSigfpe,   // Ov
        0, 0, 0,
    };
    for (Word w : xlate)
        a.word(w);
}

} // namespace

Program
buildKernelImage()
{
    Assembler a(Cpu::RefillVector);
    emitRefillHandler(a);
    a.align(0x80);
    if (a.here() != Cpu::GeneralVector)
        UEXC_PANIC("refill handler overflowed the vector slot");
    emitFastPath(a);
    emitTlbFaultPath(a);
    emitSubpagePath(a);
    emitFpSavePath(a);
    emitStockEntry(a);
    emitTrapPath(a);
    emitSyscallPath(a);
    emitRestorePath(a);
    emitKernelData(a);
    Program prog = a.finalize();
#ifndef NDEBUG
    // Refuse to boot a malformed image: debug builds run the full
    // static analyzer over the freshly assembled kernel.
    std::vector<analysis::Finding> findings = lintKernelImage(prog);
    if (analysis::hasErrors(findings)) {
        UEXC_PANIC("kernel image fails uexc-lint:\n%s",
                   analysis::formatFindings(findings).c_str());
    }
#endif
    return prog;
}

GuestImage
buildKernelGuestImage()
{
    Program prog = buildKernelImage();
    GuestImage img = GuestImage::fromProgram(prog, "kernel");
    img.setLintConfig(kernelLintConfig(prog));
    img.validate();
    return img;
}

analysis::LintConfig
kernelLintConfig(const Program &prog)
{
    analysis::LintConfig config;
    analysis::RegionSpec spec;
    spec.name = "kernel";
    spec.begin = prog.origin;
    // Everything from curproc on is kernel data, not code.
    spec.end = prog.symbol(ksym::Curproc);
    spec.userMode = false;
    spec.entries = {prog.symbol(ksym::RefillHandler),
                    prog.symbol(ksym::FastDecode)};
    Addr sys_table = prog.symbol("sys_table");
    spec.dataRanges = {{sys_table, sys_table + sys::NumSyscalls * 4}};
    config.regions.push_back(std::move(spec));

    // The Table-3 fast path as a handler region of its own: register
    // discipline (k0/k1 free, everything else frame-saved before
    // use) plus the worst-case latency bound. Branches out to the
    // slow paths leave the region and end their paths, so the bound
    // covers exactly the user-handler dispatch latency the paper's
    // Table 3 measures.
    analysis::RegionSpec fast;
    fast.name = "fast-path";
    fast.begin = prog.symbol(ksym::FastDecode);
    fast.end = prog.symbol(ksym::FastEnd);
    fast.handler = true;
    fast.scratchMask = (Word{1} << K0) | (Word{1} << K1);
    fast.wcetBudget = kFastPathWcetBudget;
    fast.entries = {fast.begin};
    config.regions.push_back(std::move(fast));

    // Bound the fast path with the default cost table (cache model
    // off: miss penalties are workload, not code, properties).
    config.analyzeWcet = true;
    return config;
}

analysis::FastPathSpec
kernelFastPathSpec(const Program &prog)
{
    analysis::FastPathSpec spec;
    auto phase = [&](const char *name, const char *b, const char *e,
                     unsigned words) {
        spec.phases.push_back(
            {name, prog.symbol(b), prog.symbol(e), words});
    };
    // The paper's Table 3: 6 / 11 / 31 / 6 / 8 / 3 = 65.
    phase("decode", ksym::FastDecode, ksym::FastCompat, 6);
    phase("compat", ksym::FastCompat, ksym::FastSave, 11);
    phase("save", ksym::FastSave, ksym::FastFp, 31);
    phase("fp", ksym::FastFp, ksym::FastTlbCheck, 6);
    phase("tlbcheck", ksym::FastTlbCheck, ksym::FastVector, 8);
    phase("vector", ksym::FastVector, ksym::FastEnd, 3);
    // Stores must hit the pinned frame's kseg0 alias (base k1);
    // loads may also read the proc structure via t0.
    spec.storeBaseMask = Word{1} << K1;
    spec.loadBaseMask = (Word{1} << K1) | (Word{1} << T0);
    return spec;
}

std::vector<analysis::Finding>
lintKernelImage(const Program &prog)
{
    std::vector<analysis::Finding> findings =
        analysis::lint(prog, kernelLintConfig(prog));
    std::vector<analysis::Finding> structural =
        analysis::verifyFastPath(prog, kernelFastPathSpec(prog));
    findings.insert(findings.end(), structural.begin(),
                    structural.end());
    return findings;
}

} // namespace uexc::os
