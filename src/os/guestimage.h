/**
 * @file
 * GuestImage: the one description of "a program the simulated system
 * can run" that every producer feeds and every consumer loads.
 *
 * Producers:
 *  - the Assembler path (core/stubs, core/microbench, core/multihart,
 *    os/kernelimage) wraps its finalized Program via fromProgram();
 *  - the static MIPS-I ELF loader (os/elf.h) parses a compiled
 *    binary's program headers into sections.
 *
 * Consumers:
 *  - Kernel::loadImage / Kernel::execve map sections into an
 *    AddressSpace (BSS zero-fill, read-only text re-protection,
 *    initial program break, argv stack block);
 *  - Machine::load takes textProgram() for kernel-resident images;
 *  - the static analyzer (uexc-lint) runs the same lint/VSA/WCET
 *    passes over textProgram(), using the producer-attached lint
 *    configuration when one exists.
 *
 * An image is sections + entry point + symbol table + (optionally) a
 * lint spec. Sections carry a memory extent that may exceed their
 * initialized words — that difference is BSS, zero-filled at load.
 */

#ifndef UEXC_OS_GUESTIMAGE_H
#define UEXC_OS_GUESTIMAGE_H

#include <map>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "common/types.h"
#include "sim/assembler.h"

namespace uexc::os {

/** One loadable region of a guest image. */
struct GuestSection
{
    std::string name;         ///< ".text", ".data", "load0", ...
    Addr vaddr = 0;           ///< load address (word aligned)
    std::vector<Word> words;  ///< initialized contents
    /** Total extent in bytes; anything past the words is BSS
     *  (zero-filled). Always >= fileBytes(). */
    Word memBytes = 0;
    bool writable = true;
    bool executable = false;

    Word fileBytes() const
    {
        return static_cast<Word>(4 * words.size());
    }
    Addr end() const { return vaddr + memBytes; }
    bool contains(Addr va) const
    {
        return va >= vaddr && va < end();
    }
};

/**
 * A complete guest program image. See file comment.
 */
class GuestImage
{
  public:
    std::string name;                     ///< provenance label
    std::vector<GuestSection> sections;
    Addr entry = 0;
    std::map<std::string, Addr> symbols;

    /** Address of a symbol; fatal if absent. */
    Addr symbol(const std::string &sym) const;
    bool hasSymbol(const std::string &sym) const;

    /** The section containing @p va, or nullptr. */
    const GuestSection *sectionAt(Addr va) const;
    /** The section named @p section_name, or nullptr. */
    const GuestSection *findSection(const std::string &section_name) const;

    /** Highest section end address (the initial program break seed). */
    Addr loadEnd() const;

    /** Sanity-check invariants (alignment, extents, overlap, entry
     *  inside an executable section when nonzero); fatal on failure.
     *  Producers call this once before handing the image out. */
    void validate() const;

    // -- lint spec ---------------------------------------------------------

    /** Attach the analyzer configuration the producer knows is right
     *  for this code (region roots, handler pairs, scratch masks). */
    void setLintConfig(analysis::LintConfig config);
    bool hasLintConfig() const { return hasLint_; }
    /** The attached config; fatal if none was attached. */
    const analysis::LintConfig &lintConfig() const;

    // -- bridges to the Program world -------------------------------------

    /**
     * Wrap a finalized assembler Program as a one-section image
     * (section ".text", writable and executable — exactly how
     * Kernel::loadProgram has always mapped assembled guests). The
     * entry is left 0 for the caller to set.
     */
    static GuestImage fromProgram(const sim::Program &prog,
                                  std::string image_name);

    /**
     * The image's executable text as a Program (first executable
     * section, with the full symbol table) — what Machine::load and
     * the analysis passes consume. Fatal if no section is executable.
     */
    sim::Program textProgram() const;

  private:
    analysis::LintConfig lint_;
    bool hasLint_ = false;
};

} // namespace uexc::os

#endif // UEXC_OS_GUESTIMAGE_H
