/**
 * @file
 * The host side of the simulated operating system.
 *
 * The guest image (kernelimage.cc) contains every dispatch path as
 * real machine code; this class provides what a kernel's C layer
 * provides — process and address-space management, the VM syscalls,
 * and the few complex services the guest code reaches through the
 * HCALL bridge (complex syscalls, subpage instruction emulation,
 * TLBMP software emulation). Each bridged service charges simulated
 * cycles for the work the guest code does not itself execute; the
 * charge constants are documented where they are defined.
 */

#ifndef UEXC_OS_KERNEL_H
#define UEXC_OS_KERNEL_H

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include <array>
#include <optional>

#include "os/addrspace.h"
#include "os/guestimage.h"
#include "os/kernelimage.h"
#include "os/layout.h"
#include "os/vfs.h"
#include "sim/machine.h"

namespace uexc::os {

class Kernel;

/** Process lifecycle for fork/wait. */
enum class ProcState : Byte
{
    Running,  ///< schedulable (or blocked in wait)
    Zombie,   ///< exited, exit status awaiting a wait()
    Reaped,   ///< exit status collected; never scheduled again
};

/** One open-file slot in a process's descriptor table. */
struct FileDesc
{
    bool used = false;
    bool console = false;  ///< console fd (0/1/2): no VFS backing
    Word fileIndex = 0;    ///< VFS file index (disk fds only)
    Word offset = 0;       ///< read/write position
    Word flags = 0;        ///< open() flags
};

/**
 * One simulated process: an address space plus the guest-resident
 * proc structure and u-area the kernel code operates on.
 */
class Process
{
  public:
    unsigned pid() const { return pid_; }
    unsigned asid() const { return asid_; }
    AddressSpace &as() { return *as_; }
    const AddressSpace &as() const { return *as_; }

    /** Guest (kseg0) address of the proc structure. */
    Addr procKva() const { return procKva_; }
    /** Guest (kseg0) address of the u-area / trapframe. */
    Addr uareaKva() const { return uareaKva_; }

    /** Read/write a proc-structure field by byte offset. */
    Word field(Word offset) const;
    void setField(Word offset, Word value);

    /** Read/write a trapframe slot (word index, see os::tf). */
    Word tfWord(unsigned word_index) const;
    void setTfWord(unsigned word_index, Word value);

    // -- fork/wait lineage ------------------------------------------------

    /** Pid of the parent, or 0 for a root process. */
    unsigned parentPid() const { return parentPid_; }
    ProcState state() const { return state_; }
    /** Exit status (meaningful once state() != Running). */
    Word exitStatus() const { return exitStatus_; }
    /** Blocked in wait() until a child exits. */
    bool waiting() const { return waiting_; }

    // -- open files -------------------------------------------------------

    /** Descriptor table slot @p fd; fatal if out of range. */
    const FileDesc &fd(unsigned fd_num) const;

  private:
    friend class Kernel;
    Process(Kernel &kernel, unsigned pid, unsigned asid, Addr proc_kva,
            Addr uarea_kva, std::unique_ptr<AddressSpace> as);

    Kernel &kernel_;
    unsigned pid_;
    unsigned asid_;
    Addr procKva_;
    Addr uareaKva_;
    std::unique_ptr<AddressSpace> as_;

    unsigned parentPid_ = 0;
    ProcState state_ = ProcState::Running;
    Word exitStatus_ = 0;
    bool waiting_ = false;
    Addr waitStatusVa_ = 0;  ///< wait()'s status pointer while blocked
    std::array<FileDesc, kMaxFds> fds_{};
};

/**
 * Analytic model of the shared kernel stack/trap lock.
 *
 * The stock kernel owns one exception stack and the scattered global
 * structures the Ultrix trap path touches; on a multithreaded machine
 * every kernel-mediated delivery serializes on that lock, which is
 * exactly the Tera-motivated scalability argument of the paper: user-
 * vectored delivery touches only per-hart state and never takes it.
 *
 * The model is a single busy-until timestamp. A hart acquiring at its
 * own cycle time @c now spins for max(0, busyUntil - now) cycles and
 * then holds the lock for @p hold cycles. Under the deterministic
 * round-robin scheduler all hart clocks advance near-lockstep, so the
 * shared timeline is a faithful stand-in for global time, and the
 * model stays bit-reproducible (no host randomness).
 */
class KernelStackLock
{
  public:
    /**
     * Acquire at local time @p now, holding for @p hold cycles.
     * Returns the spin cycles the caller must charge to itself.
     */
    Cycles acquire(Cycles now, Cycles hold)
    {
        Cycles spin = (busyUntil_ > now) ? busyUntil_ - now : 0;
        if (spin) {
            ++contendedAcquires_;
            spinCycles_ += spin;
        }
        ++acquires_;
        Cycles start = (busyUntil_ > now) ? busyUntil_ : now;
        busyUntil_ = start + hold;
        return spin;
    }

    std::uint64_t acquires() const { return acquires_; }
    std::uint64_t contendedAcquires() const { return contendedAcquires_; }
    Cycles spinCycles() const { return spinCycles_; }

    /** Snapshot access: the busy-until timestamp is model state. */
    Cycles busyUntil() const { return busyUntil_; }
    void restoreState(Cycles busy_until, std::uint64_t acquires,
                      std::uint64_t contended, Cycles spin)
    {
        busyUntil_ = busy_until;
        acquires_ = acquires;
        contendedAcquires_ = contended;
        spinCycles_ = spin;
    }

  private:
    Cycles busyUntil_ = 0;
    std::uint64_t acquires_ = 0;
    std::uint64_t contendedAcquires_ = 0;
    Cycles spinCycles_ = 0;
};

/**
 * The kernel. Construct over a Machine; boot() loads the guest image
 * and installs the host-call bridge.
 */
class Kernel
{
  public:
    explicit Kernel(sim::Machine &machine);

    /** Build and load the kernel image, hook hcall dispatch. */
    void boot();

    sim::Machine &machine() { return machine_; }

    /** Guest address of a kernel symbol. */
    Addr sym(const std::string &name) const;

    // -- processes -----------------------------------------------------

    /**
     * Create a process: address space, proc struct, u-area, and a
     * mapped user stack.
     */
    Process &createProcess();

    /**
     * Make @p p the current process (curproc, ASID, PTEBase) on the
     * currently bound hart. Each hart has its own current process;
     * curproc (the shared guest global) tracks the hart that
     * activated last, which under run-to-completion host operations
     * is always the hart about to execute guest code.
     */
    void activate(Process &p);

    /** Current process of the currently bound hart. */
    Process *current() { return currents_[machine_.currentHart()]; }

    /** The process the guest's shared curproc global points at — the
     *  last activate() on ANY hart. UserEnv::bind compares against
     *  this (not the per-hart view) to decide whether the guest
     *  kernel state must be re-activated for its process. */
    Process *guestCurrent() const { return guestCurrent_; }

    /**
     * Arrange for the CPU to be in user mode in @p p at @p entry.
     * Stack pointer and gp are initialized; status gains KUc (and UV
     * when @p user_vectoring).
     */
    void enterUser(Process &p, Addr entry, bool user_vectoring = false);

    /** Number of processes created. */
    unsigned numProcesses() const { return procs_.size(); }

    /**
     * Load a user program into @p p: maps the covered pages
     * read-write and copies the image through the page tables.
     * Equivalent to loadImage(p, GuestImage::fromProgram(...)) — the
     * assembled path and the ELF path share one loader.
     */
    void loadProgram(Process &p, const sim::Program &program);

    /**
     * Map a guest image into @p p: allocate each section read-write,
     * copy the initialized words, zero-fill is implicit (frames come
     * zeroed), then re-protect read-only sections. Sets the initial
     * program break to the page-rounded image end.
     */
    void loadImage(Process &p, const GuestImage &img);

    /**
     * Load @p img and arrange entry at its entry point with a
     * Unix-style initial stack: argument strings and the
     * NULL-terminated argv array above the stack pointer, a0 = argc,
     * a1 = argv. The image must carry a nonzero entry.
     */
    void execve(Process &p, const GuestImage &img,
                const std::vector<std::string> &argv,
                bool user_vectoring = false);

    // -- kernel services (also the hcall-bridged syscalls) ------------------

    /** mprotect(): page-granularity protection change. */
    void svcMprotect(Process &p, Addr addr, Word len, Word prot);

    /**
     * Enable fast user-level exceptions (the paper's new syscall):
     * @p mask is an ExcCode bitmask (Int and Sys are silently
     * cleared), @p handler the user handler entry, @p frame_va the
     * user page to pin as the exception frame page.
     */
    void svcUexcEnable(Process &p, Word mask, Addr handler,
                       Addr frame_va);

    /**
     * Protection change for fast-exception users: like mprotect, and
     * additionally marks the pages' TLB entries user-modifiable when
     * the machine has TLBMP hardware.
     */
    void svcUexcProtect(Process &p, Addr addr, Word len, Word prot);

    /** Subpage (1 KB) protection (section 3.2.4). */
    void svcSubpageProtect(Process &p, Addr addr, Word len, Word prot);

    /** Set proc flags (eager amplification). */
    void svcUexcSetFlags(Process &p, Word flags);

    // -- table-dispatched syscall handlers (see os/syscalls.h) --------------
    //
    // Uniform signature so the declarative table can point at them;
    // the legacy rows wrap the svc* services above (zero extra cost),
    // the file/process rows implement the Ultrix-flavored userland
    // ABI. Return nullopt to leave the caller's saved v0 untouched
    // (context switched away, or halt).

    std::optional<Word> sysMprotect(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysUexcEnable(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysUexcProtect(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysSubpageProtect(Process &p, Word a0, Word a1,
                                          Word a2);
    std::optional<Word> sysUexcSetFlags(Process &p, Word a0, Word a1,
                                        Word a2);
    std::optional<Word> sysExit(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysOpen(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysClose(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysRead(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysWrite(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysSbrk(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysFork(Process &p, Word a0, Word a1, Word a2);
    std::optional<Word> sysWait(Process &p, Word a0, Word a1, Word a2);

    // -- filesystem and console ---------------------------------------------

    Vfs &vfs() { return vfs_; }
    const Vfs &vfs() const { return vfs_; }

    /** Everything written to the console fds (1/2) so far. */
    const std::string &consoleOutput() const { return console_; }

    /** Process by pid, or nullptr. */
    Process *findProcess(unsigned pid);

    /**
     * Graceful degradation: demote @p p from user-vectored delivery
     * back to kernel-mediated (Unix signal) delivery. Clears the
     * process's fast-exception mask so the dispatcher's compatibility
     * check takes the stock path, and drops the UV/UX status bits on
     * the bound hart so hardware vectoring (when present) is off.
     * Used by the handler watchdog and the save-page canary check;
     * counted in deliveryDemotions().
     */
    void demoteDelivery(Process &p);

    // -- app upcall bridge -------------------------------------------------

    /**
     * Host callback invoked when guest code executes
     * hcall svc::Upcall; used by host-side applications to run their
     * handler logic at user level.
     */
    using UpcallFn = std::function<void(Kernel &)>;
    void setUpcallHandler(UpcallFn fn) { upcall_ = std::move(fn); }
    bool hasUpcallHandler() const { return static_cast<bool>(upcall_); }

    /**
     * Per-hart upcall routing: an upcall raised while @p hart is
     * bound goes to its handler when one is installed, else to the
     * machine-wide handler above. Lets each hart host its own
     * UserEnv on a shared kernel.
     */
    void setUpcallHandler(unsigned hart, UpcallFn fn);
    /** Whether @p hart has its own (per-hart) handler installed. */
    bool hasUpcallHandler(unsigned hart) const
    {
        return hart < hartUpcalls_.size() &&
               static_cast<bool>(hartUpcalls_[hart]);
    }

    // -- multi-hart support --------------------------------------------------

    /**
     * Guest (kseg0) address of hart @p hart's kernel save area
     * (os::hartsave layout). Allocated at boot on multi-hart
     * machines only; fatal on a single-hart machine.
     */
    Addr hartSaveKva(unsigned hart) const;

    /** The shared kernel-stack lock model (see KernelStackLock). */
    const KernelStackLock &stackLock() const { return stackLock_; }

    /**
     * Host-measured counters of the *real* kernel-stack lock: a
     * std::mutex taken around every bridged service, so the kernel's
     * host-side structures stay consistent when harts run on real
     * threads (the relaxed scheduler). The analytic model above keeps
     * producing the simulated-cycle numbers; these count actual host
     * lock acquisitions and contended ones. Deliberately NOT
     * serialized in snapshots — they are a host measurement, and
     * including them would make serial and parallel checkpoint images
     * diverge. Note that under the relaxed scheduler the Machine's
     * hcall lock serializes callers upstream, so cross-thread
     * contention surfaces in Machine::hcallLockStats() rather than
     * here.
     */
    struct StackLockRealStats
    {
        std::uint64_t acquires = 0;
        std::uint64_t contended = 0;
    };
    const StackLockRealStats &stackLockReal() const
    {
        return stackLockReal_;
    }

    /** Exit code recorded by sys::Exit (process exit halts the CPU). */
    Word exitCode() const { return exitCode_; }
    bool exited() const { return exited_; }

    // -- statistics ---------------------------------------------------------

    std::uint64_t subpageEmulations() const { return subpageEmuls_; }
    std::uint64_t riEmulations() const { return riEmuls_; }
    /** Processes demoted to kernel-mediated delivery. */
    std::uint64_t deliveryDemotions() const { return demotions_; }

    // -- snapshot ------------------------------------------------------------

    /**
     * Serialize/restore the kernel's mutable host-side bookkeeping
     * (allocation cursors, per-hart current-process bindings, the
     * stack-lock model, counters). boot() registers these with the
     * machine as the "KERN" snapshot section; everything else the
     * kernel owns lives in guest memory and CP0 and travels in the
     * machine's own sections. Restore targets a kernel rebuilt by the
     * same deterministic construction (same boot, same createProcess
     * sequence) — process identity is validated, not recreated.
     */
    void snapshotSave(sim::SnapshotWriter &w) const;
    void snapshotLoad(sim::SnapshotReader &r);

  private:
    void onHcall(sim::Cpu &cpu, Word service);
    void doComplexSyscall();
    void doSubpageEmulate();
    void doRiEmulate();
    [[noreturn]] void doBadTrap();

    /** User register value as the faulted instruction saw it, taking
     *  the fast path's frame-saved scratch registers into account. */
    Word faultedReg(Process &p, unsigned reg, Addr frame_kva) const;
    void setFaultedReg(Process &p, unsigned reg, Addr frame_kva,
                       Word value);

    Addr allocKernelData(Word bytes, Word align);

    /** Copy host bytes into @p p's mapped user memory at @p va. */
    void copyout(Process &p, Addr va, const void *src, Word len);
    /** Copy @p len bytes out of @p p's mapped user memory at @p va. */
    std::vector<Byte> copyin(Process &p, Addr va, Word len);
    /** NUL-terminated string at @p va, bounded by kMaxPathBytes. */
    std::string copyinString(Process &p, Addr va);

    /** Child side of fork: duplicate address space, proc fields,
     *  u-area, and descriptor table of @p parent into @p child. */
    void forkInto(Process &parent, Process &child);
    /** Deliver @p child's exit status to its blocked parent and
     *  switch execution back to the parent. */
    void reapInto(Process &parent, Process &child);

    sim::Machine &machine_;
    bool booted_ = false;
    std::vector<std::unique_ptr<Process>> procs_;
    /** Per-hart current process (index = hart id). */
    std::vector<Process *> currents_;
    Process *guestCurrent_ = nullptr;
    FrameAllocator frames_;
    Addr kdataBump_ = kKernelDataBase;
    unsigned nextAsid_ = 1;
    UpcallFn upcall_;
    std::vector<UpcallFn> hartUpcalls_;
    std::vector<Addr> hartSaves_;
    KernelStackLock stackLock_;
    std::mutex stackMutex_;
    StackLockRealStats stackLockReal_;
    bool exited_ = false;
    Word exitCode_ = 0;
    std::uint64_t subpageEmuls_ = 0;
    std::uint64_t riEmuls_ = 0;
    std::uint64_t demotions_ = 0;
    Vfs vfs_;
    std::string console_;
};

/**
 * Cycle charges for host-bridged kernel services. These stand in for
 * kernel C code we do not execute as guest instructions; values are
 * rough R3000 instruction-count estimates for the corresponding
 * Ultrix code paths and are documented in DESIGN.md.
 */
namespace charge {
constexpr Cycles MprotectBase = 60;      ///< vm_map lookup, validation
constexpr Cycles MprotectPerPage = 40;   ///< PTE rewrite + TLB probe
constexpr Cycles UexcEnable = 80;        ///< validate + pin frame page
constexpr Cycles SubpageBase = 40;
constexpr Cycles SubpagePerSub = 15;
constexpr Cycles SubpageEmulate = 30;    ///< decode + EA + access
constexpr Cycles RiEmulate = 40;         ///< decode + PTE/TLB update
constexpr Cycles SetFlags = 10;
/**
 * Hold time of the shared kernel-stack lock across one kernel-
 * mediated delivery: the serialized window covering stack claim,
 * trap bookkeeping in shared structures, and stack release. Rough
 * R3000 estimate for the Ultrix trap prologue/epilogue touching
 * globals; only charged on multi-hart machines.
 */
constexpr Cycles KernelStackHold = 20;
/** File/process syscalls (Ultrix namei/rdwr/fork rough estimates). */
constexpr Cycles OpenBase  = 150;   ///< namei walk + fd allocation
constexpr Cycles CloseBase = 40;
constexpr Cycles RdWrBase  = 100;   ///< fd validation + uio setup
constexpr Cycles CopyPerWord = 1;   ///< copyin/copyout inner loop
constexpr Cycles SbrkBase  = 60;    ///< vm_map extension
constexpr Cycles ForkBase  = 400;   ///< proc/u-area duplication
constexpr Cycles ForkPerPage = 120; ///< per copied page (no COW)
constexpr Cycles WaitBase  = 80;
constexpr Cycles ExitBase  = 120;   ///< only when a parent reaps
} // namespace charge

} // namespace uexc::os

#endif // UEXC_OS_KERNEL_H
