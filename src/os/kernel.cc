#include "os/kernel.h"

#include "common/bits.h"
#include "common/guesterror.h"
#include "common/logging.h"
#include "sim/cp0.h"
#include "sim/isa.h"

namespace uexc::os {

using namespace sim;

// -- Process ------------------------------------------------------------------

Process::Process(Kernel &kernel, unsigned pid, unsigned asid,
                 Addr proc_kva, Addr uarea_kva,
                 std::unique_ptr<AddressSpace> as)
    : kernel_(kernel), pid_(pid), asid_(asid), procKva_(proc_kva),
      uareaKva_(uarea_kva), as_(std::move(as))
{
}

Word
Process::field(Word offset) const
{
    return kernel_.machine().debugReadWord(procKva_ + offset);
}

void
Process::setField(Word offset, Word value)
{
    kernel_.machine().debugWriteWord(procKva_ + offset, value);
}

Word
Process::tfWord(unsigned word_index) const
{
    return kernel_.machine().debugReadWord(
        uareaKva_ + uarea::TrapFrame + 4 * word_index);
}

void
Process::setTfWord(unsigned word_index, Word value)
{
    kernel_.machine().debugWriteWord(
        uareaKva_ + uarea::TrapFrame + 4 * word_index, value);
}

// -- Kernel -------------------------------------------------------------------

Kernel::Kernel(Machine &machine)
    : machine_(machine),
      currents_(machine.numHarts(), nullptr),
      frames_(kUserFrameBase,
              static_cast<Addr>(machine.config().memBytes))
{
}

void
Kernel::boot()
{
    if (booted_)
        UEXC_FATAL("kernel: boot() called twice");
    machine_.load(buildKernelImage());
    machine_.cpu().setHcallHandler(
        [this](Cpu &cpu, Word service) { onHcall(cpu, service); });
    // Multi-hart only (keeps the single-hart kernel-data layout, and
    // so every derived guest address, bit-identical to the classic
    // machine): one save area per hart, contiguous so guest code can
    // index by PrId[31:24] << hartsave::SizeShift.
    if (machine_.numHarts() > 1) {
        Addr base = allocKernelData(
            machine_.numHarts() * hartsave::Bytes, hartsave::Bytes);
        for (unsigned i = 0; i < machine_.numHarts(); ++i)
            hartSaves_.push_back(base + i * hartsave::Bytes);
    }
    machine_.registerSnapshotSection(
        sim::snapshotTag('K', 'E', 'R', 'N'),
        [this](sim::SnapshotWriter &w) { snapshotSave(w); },
        [this](sim::SnapshotReader &r) { snapshotLoad(r); });
    booted_ = true;
}

void
Kernel::snapshotSave(sim::SnapshotWriter &w) const
{
    // Process identity (count, asids, guest addresses) is produced by
    // deterministic reconstruction; the image carries it only so
    // restore can refuse a kernel whose construction diverged.
    w.u32(std::uint32_t(procs_.size()));
    for (const auto &p : procs_) {
        w.u32(p->pid());
        w.u32(p->asid());
        w.u32(p->procKva());
        w.u32(p->uareaKva());
    }
    w.u32(std::uint32_t(currents_.size()));
    for (Process *p : currents_)
        w.u32(p ? p->pid() : 0);
    w.u32(guestCurrent_ ? guestCurrent_->pid() : 0);
    w.u32(frames_.cursor());
    w.u32(kdataBump_);
    w.u32(nextAsid_);
    w.u64(stackLock_.busyUntil());
    w.u64(stackLock_.acquires());
    w.u64(stackLock_.contendedAcquires());
    w.u64(stackLock_.spinCycles());
    w.boolean(exited_);
    w.u32(exitCode_);
    w.u64(subpageEmuls_);
    w.u64(riEmuls_);
    w.u64(demotions_);
}

void
Kernel::snapshotLoad(sim::SnapshotReader &r)
{
    std::uint32_t nprocs = r.u32();
    if (nprocs != procs_.size())
        r.fail("kernel has " + std::to_string(procs_.size()) +
               " processes, image has " + std::to_string(nprocs));
    for (const auto &p : procs_) {
        if (r.u32() != p->pid() || r.u32() != p->asid() ||
            r.u32() != p->procKva() || r.u32() != p->uareaKva())
            r.fail("process identity mismatch for pid " +
                   std::to_string(p->pid()));
    }
    std::uint32_t nharts = r.u32();
    if (nharts != currents_.size())
        r.fail("per-hart current-process vector size mismatch");
    auto byPid = [this, &r](std::uint32_t pid) -> Process * {
        if (pid == 0)
            return nullptr;
        if (pid > procs_.size())
            r.fail("current-process pid " + std::to_string(pid) +
                   " out of range");
        return procs_[pid - 1].get();
    };
    for (Process *&cur : currents_)
        cur = byPid(r.u32());
    guestCurrent_ = byPid(r.u32());
    Addr cursor = r.u32();
    if (cursor < kUserFrameBase || cursor > frames_.limit())
        r.fail("frame-allocator cursor out of range");
    frames_.restoreCursor(cursor);
    kdataBump_ = r.u32();
    nextAsid_ = r.u32();
    Cycles busy = r.u64();
    std::uint64_t acquires = r.u64();
    std::uint64_t contended = r.u64();
    Cycles spin = r.u64();
    stackLock_.restoreState(busy, acquires, contended, spin);
    exited_ = r.boolean();
    exitCode_ = r.u32();
    subpageEmuls_ = r.u64();
    riEmuls_ = r.u64();
    demotions_ = r.u64();
}

Addr
Kernel::hartSaveKva(unsigned hart) const
{
    if (hart >= hartSaves_.size())
        UEXC_FATAL("no save area for hart %u (multi-hart machines "
                   "only; this machine booted with %u)", hart,
                   machine_.numHarts());
    return hartSaves_[hart];
}

void
Kernel::setUpcallHandler(unsigned hart, UpcallFn fn)
{
    if (hart >= machine_.numHarts())
        UEXC_FATAL("upcall handler for hart %u on a %u-hart machine",
                   hart, machine_.numHarts());
    if (hartUpcalls_.size() < machine_.numHarts())
        hartUpcalls_.resize(machine_.numHarts());
    hartUpcalls_[hart] = std::move(fn);
}

Addr
Kernel::sym(const std::string &name) const
{
    return machine_.symbol(name);
}

Addr
Kernel::allocKernelData(Word bytes, Word align)
{
    kdataBump_ = roundUp(kdataBump_, align);
    Addr addr = kdataBump_;
    kdataBump_ += bytes;
    if (kdataBump_ >= kPageTableArena)
        UEXC_FATAL("kernel data region exhausted");
    return addr;
}

Process &
Kernel::createProcess()
{
    if (!booted_)
        UEXC_FATAL("kernel: createProcess before boot");
    unsigned asid = nextAsid_++;
    Addr pt_kva = kPageTableArena + (asid - 1) * kPageTableBytes;
    if (Machine::unmappedToPhys(pt_kva) + kPageTableBytes >
        machine_.config().memBytes) {
        UEXC_FATAL("out of room for page tables (asid %u); raise "
                   "MachineConfig::memBytes", asid);
    }
    auto as = std::make_unique<AddressSpace>(machine_, asid, pt_kva,
                                             frames_);

    Addr proc_kva = allocKernelData(proc::StructBytes, 64);
    Addr uarea_kva = allocKernelData(uarea::Bytes, 256);

    auto p = std::unique_ptr<Process>(
        new Process(*this, procs_.size() + 1, asid, proc_kva,
                    uarea_kva, std::move(as)));
    Process &proc_ref = *p;
    procs_.push_back(std::move(p));

    proc_ref.setField(proc::Asid, asid);
    proc_ref.setField(proc::PtBase, pt_kva);
    proc_ref.setField(proc::Pid, proc_ref.pid());
    proc_ref.setField(proc::UArea, uarea_kva);
    proc_ref.setField(proc::Flags, 0);
    proc_ref.setField(proc::FpUsed, 0);

    // map a user stack (8 pages)
    proc_ref.as().allocate(kUserStackTop - 8 * kPageBytes,
                           8 * kPageBytes, kProtRead | kProtWrite);
    return proc_ref;
}

void
Kernel::loadProgram(Process &p, const Program &program)
{
    Addr base = program.origin;
    Word len = static_cast<Word>(4 * program.words.size());
    if (base >= Cpu::Kseg0Base)
        UEXC_FATAL("user program loaded at kernel address 0x%08x", base);
    p.as().allocate(base, len, kProtRead | kProtWrite);
    for (Word i = 0; i < program.words.size(); i++) {
        Addr va = base + 4 * i;
        machine_.mem().writeWord(p.as().physOf(va), program.words[i]);
    }
    // The per-page write versions already force the fast interpreter
    // to re-decode these pages, but a fresh program image invalidates
    // any stale predecoded state wholesale, so drop it eagerly rather
    // than letting dead pages linger in the host-side cache.
    machine_.cpu().flushHostCaches();
}

void
Kernel::activate(Process &p)
{
    // No host-cache invalidation needed on context switch: the fast
    // interpreter's micro-TLB and fetch cache key on (VPN, ASID,
    // mode), so the EntryHi write below makes the old process's
    // entries unreachable rather than stale.
    machine_.debugWriteWord(sym(ksym::Curproc), p.procKva());
    Cp0 &cp0 = machine_.cpu().cp0();
    cp0.write(cp0reg::EntryHi,
              p.asid() << sim::entryhi::AsidShift);
    cp0.write(cp0reg::Context, p.as().ptKva() & 0xffe00000u);
    currents_[machine_.currentHart()] = &p;
    guestCurrent_ = &p;
}

void
Kernel::enterUser(Process &p, Addr entry, bool user_vectoring)
{
    activate(p);
    Cpu &cpu = machine_.cpu();
    Word st = status::KUc;
    if (user_vectoring)
        st |= status::UV;
    cpu.cp0().setStatusReg(st);
    cpu.setReg(SP, kUserStackTop - 64);
    cpu.setReg(FP, kUserStackTop - 64);
    cpu.setPc(entry);
}

// -- services ------------------------------------------------------------------

void
Kernel::svcMprotect(Process &p, Addr addr, Word len, Word prot)
{
    unsigned pages = p.as().protect(addr, len, prot);
    machine_.cpu().charge(charge::MprotectBase +
                          pages * charge::MprotectPerPage);
}

void
Kernel::svcUexcEnable(Process &p, Word mask, Addr handler, Addr frame_va)
{
    // The paper (section 3.2): "a user process can choose to handle
    // any synchronous exception ... with the exception of system
    // calls, co-processor unusable exceptions, and page faults."
    // Interrupts are asynchronous and likewise excluded; Reserved
    // Instruction stays with the kernel because it carries the
    // software emulation of TLBMP and other unused opcodes (section
    // 3.2.3), which user-level delivery would starve. True page
    // faults are filtered in the fast path's TLB-fault check (the
    // kPtePresent test), not here.
    mask &= ~((1u << static_cast<unsigned>(ExcCode::Int)) |
              (1u << static_cast<unsigned>(ExcCode::Sys)) |
              (1u << static_cast<unsigned>(ExcCode::CpU)) |
              (1u << static_cast<unsigned>(ExcCode::Ri)));
    if (!isAligned(frame_va, kPageBytes))
        UEXC_FATAL("uexc_enable: frame page 0x%08x not page aligned",
                   frame_va);
    p.as().allocate(frame_va, kPageBytes, kProtRead | kProtWrite);
    Addr frame_kva = Cpu::Kseg0Base + p.as().frameOf(frame_va);
    p.setField(proc::UexcMask, mask);
    p.setField(proc::UexcHandler, handler);
    p.setField(proc::UexcFrameK, frame_kva);
    p.setField(proc::UexcFrameU, frame_va);
    machine_.cpu().charge(charge::UexcEnable);
}

void
Kernel::svcUexcProtect(Process &p, Addr addr, Word len, Word prot)
{
    unsigned pages = p.as().protect(addr, len, prot);
    // Mark the pages user-protection-managed (the U bit): the TLBMP
    // hardware checks it in the TLB entry, and the kernel's software
    // emulation checks it in the PTE (section 3.2.3).
    for (Addr page = roundDown(addr, kPageBytes);
         page < roundUp(addr + len, kPageBytes); page += kPageBytes) {
        p.as().setUserModifiable(page, true);
    }
    machine_.cpu().charge(charge::MprotectBase +
                          pages * charge::MprotectPerPage);
}

void
Kernel::svcSubpageProtect(Process &p, Addr addr, Word len, Word prot)
{
    unsigned subs = p.as().subpageProtect(addr, len, prot);
    machine_.cpu().charge(charge::SubpageBase +
                          subs * charge::SubpagePerSub);
}

void
Kernel::svcUexcSetFlags(Process &p, Word flags)
{
    p.setField(proc::Flags, flags);
    machine_.cpu().charge(charge::SetFlags);
}

void
Kernel::demoteDelivery(Process &p)
{
    // Clearing the fast-exception mask makes the dispatcher's
    // phase-2 compatibility check fail for every code, so future
    // exceptions take the stock (signal) path; dropping UV/UX turns
    // off hardware vectoring on the bound hart.
    p.setField(proc::UexcMask, 0);
    Cp0 &cp0 = machine_.cpu().cp0();
    cp0.setStatusReg(cp0.statusReg() &
                     ~(sim::status::UV | sim::status::UX));
    demotions_++;
}

// -- hcall bridge ---------------------------------------------------------------

void
Kernel::onHcall(Cpu &cpu, Word service)
{
    // The real lock first: when harts execute on host threads the
    // kernel's host-side structures (procs_, frames_, counters) need
    // genuine mutual exclusion, not just the analytic timestamp
    // below. Serial and barrier runs acquire it uncontended, so cost
    // and behaviour are unchanged; the counters are host measurement
    // only (see StackLockRealStats).
    if (!stackMutex_.try_lock()) {
        stackMutex_.lock();
        stackLockReal_.contended++;
    }
    stackLockReal_.acquires++;
    std::lock_guard<std::mutex> stack_guard(stackMutex_,
                                            std::adopt_lock);

    // Every bridged service runs on the shared kernel stack; on a
    // multi-hart machine that means taking the stack lock first, so
    // a hart that traps while another one is inside the kernel spins
    // (charged to the spinner). Single-hart machines never contend
    // and are charged nothing, preserving bit-identical cycles.
    if (machine_.numHarts() > 1) {
        cpu.charge(stackLock_.acquire(cpu.cycles(),
                                      charge::KernelStackHold));
    }
    switch (service) {
      case svc::SyscallComplex:
        doComplexSyscall();
        break;
      case svc::SubpageEmulate:
        doSubpageEmulate();
        break;
      case svc::RiEmulate:
        doRiEmulate();
        break;
      case svc::Upcall: {
        unsigned hart = cpu.hartId();
        const UpcallFn &fn =
            (hart < hartUpcalls_.size() && hartUpcalls_[hart])
                ? hartUpcalls_[hart] : upcall_;
        if (!fn) {
            UEXC_GUEST_ERROR(hart, cpu.pc(), cpu.cp0().badVAddr(),
                             "guest upcall with no host handler "
                             "installed");
        }
        fn(*this);
        break;
      }
      case svc::PanicBadTrap:
        doBadTrap();
      default:
        UEXC_GUEST_ERROR(cpu.hartId(), cpu.pc(), 0,
                         "unknown hcall service %u", service);
    }
}

void
Kernel::doComplexSyscall()
{
    Process *p = current();
    if (!p) {
        Cpu &cpu = machine_.cpu();
        UEXC_GUEST_ERROR(cpu.hartId(), cpu.pc(), 0,
                         "complex syscall with no current process");
    }
    Word num = p->tfWord(tf::Regs + V0 - 1);
    Word a0 = p->tfWord(tf::Regs + A0 - 1);
    Word a1 = p->tfWord(tf::Regs + A1 - 1);
    Word a2 = p->tfWord(tf::Regs + A2 - 1);
    Word result = 0;

    switch (num) {
      case sys::Mprotect:
        svcMprotect(*p, a0, a1, a2);
        break;
      case sys::UexcEnable:
        svcUexcEnable(*p, a0, a1, a2);
        break;
      case sys::UexcProtect:
        svcUexcProtect(*p, a0, a1, a2);
        break;
      case sys::SubpageProtect:
        svcSubpageProtect(*p, a0, a1, a2);
        break;
      case sys::UexcSetFlags:
        svcUexcSetFlags(*p, a0);
        break;
      case sys::Exit:
        exited_ = true;
        exitCode_ = a0;
        machine_.cpu().requestHalt();
        break;
      default:
        result = static_cast<Word>(-1);
        break;
    }
    p->setTfWord(tf::Regs + V0 - 1, result);
}

Word
Kernel::faultedReg(Process &p, unsigned reg, Addr frame_kva) const
{
    // at and t0-t5 were stashed in the exception frame by the fast
    // path's save phase; everything else is still live in the CPU.
    switch (reg) {
      case AT: return machine_.debugReadWord(frame_kva + uframe::At);
      case T0: return machine_.debugReadWord(frame_kva + uframe::T0);
      case T1: return machine_.debugReadWord(frame_kva + uframe::T1);
      case T2: return machine_.debugReadWord(frame_kva + uframe::T2);
      case T3: return machine_.debugReadWord(frame_kva + uframe::T3);
      case T4: return machine_.debugReadWord(frame_kva + uframe::T4);
      case T5: return machine_.debugReadWord(frame_kva + uframe::T5);
      default: return machine_.cpu().reg(reg);
    }
    (void)p;
}

void
Kernel::setFaultedReg(Process &p, unsigned reg, Addr frame_kva,
                      Word value)
{
    (void)p;
    switch (reg) {
      case Zero: return;
      case AT: machine_.debugWriteWord(frame_kva + uframe::At, value);
               return;
      case T0: machine_.debugWriteWord(frame_kva + uframe::T0, value);
               return;
      case T1: machine_.debugWriteWord(frame_kva + uframe::T1, value);
               return;
      case T2: machine_.debugWriteWord(frame_kva + uframe::T2, value);
               return;
      case T3: machine_.debugWriteWord(frame_kva + uframe::T3, value);
               return;
      case T4: machine_.debugWriteWord(frame_kva + uframe::T4, value);
               return;
      case T5: machine_.debugWriteWord(frame_kva + uframe::T5, value);
               return;
      default: machine_.cpu().setReg(reg, value); return;
    }
}

void
Kernel::doSubpageEmulate()
{
    // Emulate the access that faulted into an *unprotected* logical
    // subpage (section 3.2.4): perform the load/store with kernel
    // rights, emulate the branch if the access sat in a delay slot,
    // and point EPC at the resume address.
    Process *p = current();
    Cpu &cpu = machine_.cpu();
    Cp0 &cp0 = cpu.cp0();
    if (!p) {
        UEXC_GUEST_ERROR(cpu.hartId(), cpu.pc(), 0,
                         "subpage emulation with no current process");
    }
    Addr epc = cp0.epc();
    bool bd = cp0.causeReg() & cause::BD;
    Word cause_code = (cp0.causeReg() & cause::ExcCodeMask) >>
                      cause::ExcCodeShift;
    Addr frame_kva = p->field(proc::UexcFrameK) +
                     (cause_code << uframe::FrameShift);

    Addr access_pc = bd ? epc + 4 : epc;
    if (!p->as().present(access_pc)) {
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, cp0.badVAddr(),
                         "subpage emulation with unmapped access pc");
    }
    Word raw = machine_.mem().readWord(p->as().physOf(access_pc));
    DecodedInst inst = decode(raw);
    if (!inst.isMemory()) {
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, cp0.badVAddr(),
                         "subpage emulation of non-memory instruction "
                         "'%s' at 0x%08x (jumps into protected pages "
                         "are not handled, as in the paper's "
                         "prototype)",
                         disassemble(inst).c_str(), access_pc);
    }

    Addr ea = faultedReg(*p, inst.rs, frame_kva) + inst.simm;
    if (!p->as().present(ea)) {
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, ea,
                         "subpage emulation of access to unmapped "
                         "address 0x%08x", ea);
    }
    Addr pa = p->as().physOf(ea);
    switch (inst.op) {
      case Op::Lw:
        setFaultedReg(*p, inst.rt, frame_kva, machine_.mem().readWord(pa));
        break;
      case Op::Lh:
        setFaultedReg(*p, inst.rt, frame_kva,
                      signExtend(machine_.mem().readHalf(pa), 16));
        break;
      case Op::Lhu:
        setFaultedReg(*p, inst.rt, frame_kva, machine_.mem().readHalf(pa));
        break;
      case Op::Lb:
        setFaultedReg(*p, inst.rt, frame_kva,
                      signExtend(machine_.mem().readByte(pa), 8));
        break;
      case Op::Lbu:
        setFaultedReg(*p, inst.rt, frame_kva, machine_.mem().readByte(pa));
        break;
      case Op::Sw:
        machine_.mem().writeWord(pa, faultedReg(*p, inst.rt, frame_kva));
        break;
      case Op::Sh:
        machine_.mem().writeHalf(
            pa, static_cast<Half>(faultedReg(*p, inst.rt, frame_kva)));
        break;
      case Op::Sb:
        machine_.mem().writeByte(
            pa, static_cast<Byte>(faultedReg(*p, inst.rt, frame_kva)));
        break;
      default:
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, ea,
                         "subpage emulation of unsupported memory op "
                         "'%s'", disassemble(inst).c_str());
    }

    // resume address: trivial unless the access was in a delay slot,
    // in which case the kernel must emulate the branch as well
    Addr resume;
    if (!bd) {
        resume = epc + 4;
    } else {
        Word braw = machine_.mem().readWord(p->as().physOf(epc));
        DecodedInst br = decode(braw);
        Word rs = faultedReg(*p, br.rs, frame_kva);
        Word rt = faultedReg(*p, br.rt, frame_kva);
        Addr taken = epc + 4 + (br.simm << 2);
        Addr fallthrough = epc + 8;
        switch (br.op) {
          case Op::Beq:  resume = (rs == rt) ? taken : fallthrough; break;
          case Op::Bne:  resume = (rs != rt) ? taken : fallthrough; break;
          case Op::Blez:
            resume = (static_cast<SWord>(rs) <= 0) ? taken : fallthrough;
            break;
          case Op::Bgtz:
            resume = (static_cast<SWord>(rs) > 0) ? taken : fallthrough;
            break;
          case Op::Bltz:
            resume = (static_cast<SWord>(rs) < 0) ? taken : fallthrough;
            break;
          case Op::Bgez:
            resume = (static_cast<SWord>(rs) >= 0) ? taken : fallthrough;
            break;
          case Op::J:
          case Op::Jal:
            resume = ((epc + 4) & 0xf0000000u) | (br.target << 2);
            if (br.op == Op::Jal)
                setFaultedReg(*p, RA, frame_kva, epc + 8);
            break;
          case Op::Jr:
            resume = rs;
            break;
          case Op::Jalr:
            resume = rs;
            setFaultedReg(*p, br.rd, frame_kva, epc + 8);
            break;
          default:
            UEXC_GUEST_ERROR(cpu.hartId(), epc, ea,
                             "subpage emulation: BD set but 0x%08x is "
                             "not a branch", epc);
        }
    }
    cp0.write(cp0reg::Epc, resume);
    cpu.charge(charge::SubpageEmulate);
    subpageEmuls_++;
}

void
Kernel::doRiEmulate()
{
    // The stock path asks whether this Reserved Instruction fault is
    // a TLBMP to emulate (section 3.2.3's software fallback). Sets
    // guest k1 = 1 when handled (saved EPC advanced), 0 otherwise.
    Process *p = current();
    Cpu &cpu = machine_.cpu();
    cpu.setReg(K1, 0);
    if (!p)
        return;
    Addr epc = p->tfWord(tf::Epc);
    if (!p->as().present(epc))
        return;
    Word raw = machine_.mem().readWord(p->as().physOf(epc));
    DecodedInst inst = decode(raw);
    if (inst.op != Op::Tlbmp)
        return;
    Addr va = p->tfWord(tf::Regs + inst.rs - 1);
    Word ctl = p->tfWord(tf::Regs + inst.rt - 1);
    if (!p->as().present(va))
        return;  // unmapped: let the signal path handle it
    Word pte = p->as().pte(va);
    if (!(pte & entrylo::U))
        return;  // policy: not user-modifiable -> SIGILL
    pte = (ctl & 1u) ? (pte | entrylo::D) : (pte & ~entrylo::D);
    pte = (ctl & 2u) ? (pte | entrylo::V) : (pte & ~entrylo::V);
    p->as().setPte(va, pte);
    machine_.invalidateTlbs(va, p->asid());
    // skip the TLBMP instruction on return
    p->setTfWord(tf::Epc, epc + 4);
    cpu.setReg(K1, 1);
    cpu.charge(charge::RiEmulate);
    riEmuls_++;
}

void
Kernel::doBadTrap()
{
    // The guest kernel diagnosed an inconsistency it cannot recover
    // from (TLB/pmap disagreement, fault from kernel mode, malformed
    // trap state). Surface it as a structured guest-visible error
    // instead of killing the host process.
    const Cp0 &cp0 = machine_.cpu().cp0();
    UEXC_GUEST_ERROR(
        machine_.currentHart(), cp0.epc(), cp0.badVAddr(),
        "bad trap: cause=0x%08x (%s) status=0x%08x",
        cp0.causeReg(),
        excName(static_cast<ExcCode>(
            (cp0.causeReg() & cause::ExcCodeMask) >>
            cause::ExcCodeShift)),
        cp0.statusReg());
}

} // namespace uexc::os
