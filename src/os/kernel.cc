#include "os/kernel.h"

#include "common/bits.h"
#include "common/guesterror.h"
#include "common/logging.h"
#include "os/syscalls.h"
#include "sim/cp0.h"
#include "sim/isa.h"

namespace uexc::os {

using namespace sim;

// -- Process ------------------------------------------------------------------

Process::Process(Kernel &kernel, unsigned pid, unsigned asid,
                 Addr proc_kva, Addr uarea_kva,
                 std::unique_ptr<AddressSpace> as)
    : kernel_(kernel), pid_(pid), asid_(asid), procKva_(proc_kva),
      uareaKva_(uarea_kva), as_(std::move(as))
{
}

Word
Process::field(Word offset) const
{
    return kernel_.machine().debugReadWord(procKva_ + offset);
}

void
Process::setField(Word offset, Word value)
{
    kernel_.machine().debugWriteWord(procKva_ + offset, value);
}

Word
Process::tfWord(unsigned word_index) const
{
    return kernel_.machine().debugReadWord(
        uareaKva_ + uarea::TrapFrame + 4 * word_index);
}

void
Process::setTfWord(unsigned word_index, Word value)
{
    kernel_.machine().debugWriteWord(
        uareaKva_ + uarea::TrapFrame + 4 * word_index, value);
}

const FileDesc &
Process::fd(unsigned fd_num) const
{
    if (fd_num >= kMaxFds)
        UEXC_FATAL("fd %u out of range", fd_num);
    return fds_[fd_num];
}

// -- Kernel -------------------------------------------------------------------

Kernel::Kernel(Machine &machine)
    : machine_(machine),
      currents_(machine.numHarts(), nullptr),
      frames_(kUserFrameBase,
              static_cast<Addr>(machine.config().memBytes))
{
}

void
Kernel::boot()
{
    if (booted_)
        UEXC_FATAL("kernel: boot() called twice");
    machine_.load(buildKernelGuestImage().textProgram());
    machine_.cpu().setHcallHandler(
        [this](Cpu &cpu, Word service) { onHcall(cpu, service); });
    // Multi-hart only (keeps the single-hart kernel-data layout, and
    // so every derived guest address, bit-identical to the classic
    // machine): one save area per hart, contiguous so guest code can
    // index by PrId[31:24] << hartsave::SizeShift.
    if (machine_.numHarts() > 1) {
        Addr base = allocKernelData(
            machine_.numHarts() * hartsave::Bytes, hartsave::Bytes);
        for (unsigned i = 0; i < machine_.numHarts(); ++i)
            hartSaves_.push_back(base + i * hartsave::Bytes);
    }
    machine_.registerSnapshotSection(
        sim::snapshotTag('K', 'E', 'R', 'N'),
        [this](sim::SnapshotWriter &w) { snapshotSave(w); },
        [this](sim::SnapshotReader &r) { snapshotLoad(r); });
    booted_ = true;
}

void
Kernel::snapshotSave(sim::SnapshotWriter &w) const
{
    // Process identity (count, asids, guest addresses) is produced by
    // deterministic reconstruction; the image carries it only so
    // restore can refuse a kernel whose construction diverged.
    w.u32(std::uint32_t(procs_.size()));
    for (const auto &p : procs_) {
        w.u32(p->pid());
        w.u32(p->asid());
        w.u32(p->procKva());
        w.u32(p->uareaKva());
    }
    w.u32(std::uint32_t(currents_.size()));
    for (Process *p : currents_)
        w.u32(p ? p->pid() : 0);
    w.u32(guestCurrent_ ? guestCurrent_->pid() : 0);
    w.u32(frames_.cursor());
    w.u32(kdataBump_);
    w.u32(nextAsid_);
    w.u64(stackLock_.busyUntil());
    w.u64(stackLock_.acquires());
    w.u64(stackLock_.contendedAcquires());
    w.u64(stackLock_.spinCycles());
    w.boolean(exited_);
    w.u32(exitCode_);
    w.u64(subpageEmuls_);
    w.u64(riEmuls_);
    w.u64(demotions_);
    // v2: filesystem, console, and per-process fork/fd state.
    vfs_.snapshotSave(w);
    w.str(console_);
    for (const auto &p : procs_) {
        w.u32(p->parentPid_);
        w.u8(static_cast<std::uint8_t>(p->state_));
        w.u32(p->exitStatus_);
        w.boolean(p->waiting_);
        w.u32(p->waitStatusVa_);
        for (const FileDesc &d : p->fds_) {
            w.boolean(d.used);
            w.boolean(d.console);
            w.u32(d.fileIndex);
            w.u32(d.offset);
            w.u32(d.flags);
        }
    }
}

void
Kernel::snapshotLoad(sim::SnapshotReader &r)
{
    std::uint32_t nprocs = r.u32();
    if (nprocs != procs_.size())
        r.fail("kernel has " + std::to_string(procs_.size()) +
               " processes, image has " + std::to_string(nprocs));
    for (const auto &p : procs_) {
        if (r.u32() != p->pid() || r.u32() != p->asid() ||
            r.u32() != p->procKva() || r.u32() != p->uareaKva())
            r.fail("process identity mismatch for pid " +
                   std::to_string(p->pid()));
    }
    std::uint32_t nharts = r.u32();
    if (nharts != currents_.size())
        r.fail("per-hart current-process vector size mismatch");
    auto byPid = [this, &r](std::uint32_t pid) -> Process * {
        if (pid == 0)
            return nullptr;
        if (pid > procs_.size())
            r.fail("current-process pid " + std::to_string(pid) +
                   " out of range");
        return procs_[pid - 1].get();
    };
    for (Process *&cur : currents_)
        cur = byPid(r.u32());
    guestCurrent_ = byPid(r.u32());
    Addr cursor = r.u32();
    if (cursor < kUserFrameBase || cursor > frames_.limit())
        r.fail("frame-allocator cursor out of range");
    frames_.restoreCursor(cursor);
    kdataBump_ = r.u32();
    nextAsid_ = r.u32();
    Cycles busy = r.u64();
    std::uint64_t acquires = r.u64();
    std::uint64_t contended = r.u64();
    Cycles spin = r.u64();
    stackLock_.restoreState(busy, acquires, contended, spin);
    exited_ = r.boolean();
    exitCode_ = r.u32();
    subpageEmuls_ = r.u64();
    riEmuls_ = r.u64();
    demotions_ = r.u64();
    // v2: filesystem, console, and per-process fork/fd state. The
    // VFS is restored first so descriptor file indices can be
    // validated against it.
    vfs_.snapshotLoad(r);
    console_ = r.str();
    for (const auto &p : procs_) {
        std::uint32_t parent_pid = r.u32();
        if (parent_pid > procs_.size())
            r.fail("parent pid " + std::to_string(parent_pid) +
                   " out of range");
        p->parentPid_ = parent_pid;
        std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(ProcState::Reaped))
            r.fail("bad process state " + std::to_string(state));
        p->state_ = static_cast<ProcState>(state);
        p->exitStatus_ = r.u32();
        p->waiting_ = r.boolean();
        p->waitStatusVa_ = r.u32();
        for (FileDesc &d : p->fds_) {
            d.used = r.boolean();
            d.console = r.boolean();
            d.fileIndex = r.u32();
            d.offset = r.u32();
            d.flags = r.u32();
            if (d.used && !d.console &&
                d.fileIndex >= vfs_.numFiles())
                r.fail("fd file index " +
                       std::to_string(d.fileIndex) +
                       " out of range");
        }
    }
}

Addr
Kernel::hartSaveKva(unsigned hart) const
{
    if (hart >= hartSaves_.size())
        UEXC_FATAL("no save area for hart %u (multi-hart machines "
                   "only; this machine booted with %u)", hart,
                   machine_.numHarts());
    return hartSaves_[hart];
}

void
Kernel::setUpcallHandler(unsigned hart, UpcallFn fn)
{
    if (hart >= machine_.numHarts())
        UEXC_FATAL("upcall handler for hart %u on a %u-hart machine",
                   hart, machine_.numHarts());
    if (hartUpcalls_.size() < machine_.numHarts())
        hartUpcalls_.resize(machine_.numHarts());
    hartUpcalls_[hart] = std::move(fn);
}

Addr
Kernel::sym(const std::string &name) const
{
    return machine_.symbol(name);
}

Addr
Kernel::allocKernelData(Word bytes, Word align)
{
    kdataBump_ = roundUp(kdataBump_, align);
    Addr addr = kdataBump_;
    kdataBump_ += bytes;
    if (kdataBump_ >= kPageTableArena)
        UEXC_FATAL("kernel data region exhausted");
    return addr;
}

Process &
Kernel::createProcess()
{
    if (!booted_)
        UEXC_FATAL("kernel: createProcess before boot");
    unsigned asid = nextAsid_++;
    Addr pt_kva = kPageTableArena + (asid - 1) * kPageTableBytes;
    if (Machine::unmappedToPhys(pt_kva) + kPageTableBytes >
        machine_.config().memBytes) {
        UEXC_FATAL("out of room for page tables (asid %u); raise "
                   "MachineConfig::memBytes", asid);
    }
    auto as = std::make_unique<AddressSpace>(machine_, asid, pt_kva,
                                             frames_);

    Addr proc_kva = allocKernelData(proc::StructBytes, 64);
    Addr uarea_kva = allocKernelData(uarea::Bytes, 256);

    auto p = std::unique_ptr<Process>(
        new Process(*this, procs_.size() + 1, asid, proc_kva,
                    uarea_kva, std::move(as)));
    Process &proc_ref = *p;
    procs_.push_back(std::move(p));

    proc_ref.setField(proc::Asid, asid);
    proc_ref.setField(proc::PtBase, pt_kva);
    proc_ref.setField(proc::Pid, proc_ref.pid());
    proc_ref.setField(proc::UArea, uarea_kva);
    proc_ref.setField(proc::Flags, 0);
    proc_ref.setField(proc::FpUsed, 0);

    // map a user stack (8 pages)
    proc_ref.as().allocate(kUserStackTop - 8 * kPageBytes,
                           8 * kPageBytes, kProtRead | kProtWrite);

    // pre-opened console descriptors: stdin (EOF on read), stdout,
    // stderr (both append to the kernel console buffer)
    for (unsigned fd_num = 0; fd_num < 3; fd_num++) {
        proc_ref.fds_[fd_num].used = true;
        proc_ref.fds_[fd_num].console = true;
        proc_ref.fds_[fd_num].flags =
            fd_num == 0 ? kOpenRead : kOpenWrite;
    }
    return proc_ref;
}

Process *
Kernel::findProcess(unsigned pid)
{
    if (pid == 0 || pid > procs_.size())
        return nullptr;
    return procs_[pid - 1].get();
}

void
Kernel::loadProgram(Process &p, const Program &program)
{
    loadImage(p, GuestImage::fromProgram(program, "program"));
}

void
Kernel::loadImage(Process &p, const GuestImage &img)
{
    img.validate();
    for (const GuestSection &s : img.sections) {
        if (s.vaddr >= Cpu::Kseg0Base || s.end() > Cpu::Kseg0Base)
            UEXC_FATAL("guest image '%s': section '%s' at kernel "
                       "address 0x%08x", img.name.c_str(),
                       s.name.c_str(), s.vaddr);
        p.as().allocate(s.vaddr, s.memBytes, kProtRead | kProtWrite);
        for (Word i = 0; i < s.words.size(); i++) {
            Addr va = s.vaddr + 4 * i;
            machine_.mem().writeWord(p.as().physOf(va), s.words[i]);
        }
        // BSS (memBytes past the words) needs no explicit fill: user
        // frames are handed out zeroed and never recycled.
    }
    // Re-protect after the copy so a read-only text section can still
    // be written by its own loader.
    for (const GuestSection &s : img.sections) {
        if (!s.writable)
            p.as().protect(s.vaddr, s.memBytes, kProtRead);
    }
    // The per-page write versions already force the fast interpreter
    // to re-decode these pages, but a fresh program image invalidates
    // any stale predecoded state wholesale, so drop it eagerly rather
    // than letting dead pages linger in the host-side cache.
    machine_.cpu().flushHostCaches();
    // Initial program break: first page past the loaded image. sbrk
    // grows the heap from here.
    p.setField(proc::Brk, roundUp(img.loadEnd(), kPageBytes));
}

void
Kernel::copyout(Process &p, Addr va, const void *src, Word len)
{
    const Byte *bytes = static_cast<const Byte *>(src);
    for (Word i = 0; i < len; i++) {
        if (!p.as().present(va + i))
            UEXC_FATAL("copyout to unmapped user address 0x%08x",
                       va + i);
        machine_.mem().writeByte(p.as().physOf(va + i), bytes[i]);
    }
}

std::vector<Byte>
Kernel::copyin(Process &p, Addr va, Word len)
{
    std::vector<Byte> out;
    out.reserve(len);
    for (Word i = 0; i < len; i++) {
        if (!p.as().present(va + i))
            UEXC_FATAL("copyin from unmapped user address 0x%08x",
                       va + i);
        out.push_back(machine_.mem().readByte(p.as().physOf(va + i)));
    }
    return out;
}

std::string
Kernel::copyinString(Process &p, Addr va)
{
    // Graceful on bad pointers (returns "", the caller fails the
    // syscall with -1): a guest passing garbage to open() should get
    // an error, not take the simulator down.
    std::string out;
    for (Word i = 0; i < kMaxPathBytes; i++) {
        if (!p.as().present(va + i))
            return "";
        Byte b = machine_.mem().readByte(p.as().physOf(va + i));
        if (b == 0)
            return out;
        out.push_back(static_cast<char>(b));
    }
    return ""; // unterminated within kMaxPathBytes
}

void
Kernel::execve(Process &p, const GuestImage &img,
               const std::vector<std::string> &argv,
               bool user_vectoring)
{
    if (img.entry == 0)
        UEXC_FATAL("execve of image '%s' with no entry point",
                   img.name.c_str());
    loadImage(p, img);

    // Unix-style initial stack, built downward from the stack top:
    // argument strings first, then the NULL-terminated pointer array,
    // then an O32-flavored argument-save area below the final sp.
    Addr sp = kUserStackTop;
    std::vector<Addr> ptrs;
    for (const std::string &arg : argv) {
        sp -= static_cast<Addr>(arg.size() + 1);
        copyout(p, sp, arg.c_str(), static_cast<Word>(arg.size() + 1));
        ptrs.push_back(sp);
    }
    sp = roundDown(sp, 8);
    sp -= static_cast<Addr>(4 * (ptrs.size() + 1));
    Addr argv_base = sp;
    for (size_t i = 0; i < ptrs.size(); i++) {
        machine_.mem().writeWord(
            p.as().physOf(argv_base + static_cast<Addr>(4 * i)),
            ptrs[i]);
    }
    machine_.mem().writeWord(
        p.as().physOf(argv_base + static_cast<Addr>(4 * ptrs.size())),
        0);
    sp = roundDown(sp - 16, 8);

    enterUser(p, img.entry, user_vectoring);
    Cpu &cpu = machine_.cpu();
    cpu.setReg(SP, sp);
    cpu.setReg(FP, sp);
    cpu.setReg(A0, static_cast<Word>(argv.size()));
    cpu.setReg(A1, argv_base);
}

void
Kernel::activate(Process &p)
{
    // No host-cache invalidation needed on context switch: the fast
    // interpreter's micro-TLB and fetch cache key on (VPN, ASID,
    // mode), so the EntryHi write below makes the old process's
    // entries unreachable rather than stale.
    machine_.debugWriteWord(sym(ksym::Curproc), p.procKva());
    Cp0 &cp0 = machine_.cpu().cp0();
    cp0.write(cp0reg::EntryHi,
              p.asid() << sim::entryhi::AsidShift);
    cp0.write(cp0reg::Context, p.as().ptKva() & 0xffe00000u);
    currents_[machine_.currentHart()] = &p;
    guestCurrent_ = &p;
}

void
Kernel::enterUser(Process &p, Addr entry, bool user_vectoring)
{
    activate(p);
    Cpu &cpu = machine_.cpu();
    Word st = status::KUc;
    if (user_vectoring)
        st |= status::UV;
    cpu.cp0().setStatusReg(st);
    cpu.setReg(SP, kUserStackTop - 64);
    cpu.setReg(FP, kUserStackTop - 64);
    cpu.setPc(entry);
}

// -- services ------------------------------------------------------------------

void
Kernel::svcMprotect(Process &p, Addr addr, Word len, Word prot)
{
    unsigned pages = p.as().protect(addr, len, prot);
    machine_.cpu().charge(charge::MprotectBase +
                          pages * charge::MprotectPerPage);
}

void
Kernel::svcUexcEnable(Process &p, Word mask, Addr handler, Addr frame_va)
{
    // The paper (section 3.2): "a user process can choose to handle
    // any synchronous exception ... with the exception of system
    // calls, co-processor unusable exceptions, and page faults."
    // Interrupts are asynchronous and likewise excluded; Reserved
    // Instruction stays with the kernel because it carries the
    // software emulation of TLBMP and other unused opcodes (section
    // 3.2.3), which user-level delivery would starve. True page
    // faults are filtered in the fast path's TLB-fault check (the
    // kPtePresent test), not here.
    mask &= ~((1u << static_cast<unsigned>(ExcCode::Int)) |
              (1u << static_cast<unsigned>(ExcCode::Sys)) |
              (1u << static_cast<unsigned>(ExcCode::CpU)) |
              (1u << static_cast<unsigned>(ExcCode::Ri)));
    if (!isAligned(frame_va, kPageBytes))
        UEXC_FATAL("uexc_enable: frame page 0x%08x not page aligned",
                   frame_va);
    p.as().allocate(frame_va, kPageBytes, kProtRead | kProtWrite);
    Addr frame_kva = Cpu::Kseg0Base + p.as().frameOf(frame_va);
    p.setField(proc::UexcMask, mask);
    p.setField(proc::UexcHandler, handler);
    p.setField(proc::UexcFrameK, frame_kva);
    p.setField(proc::UexcFrameU, frame_va);
    machine_.cpu().charge(charge::UexcEnable);
}

void
Kernel::svcUexcProtect(Process &p, Addr addr, Word len, Word prot)
{
    unsigned pages = p.as().protect(addr, len, prot);
    // Mark the pages user-protection-managed (the U bit): the TLBMP
    // hardware checks it in the TLB entry, and the kernel's software
    // emulation checks it in the PTE (section 3.2.3).
    for (Addr page = roundDown(addr, kPageBytes);
         page < roundUp(addr + len, kPageBytes); page += kPageBytes) {
        p.as().setUserModifiable(page, true);
    }
    machine_.cpu().charge(charge::MprotectBase +
                          pages * charge::MprotectPerPage);
}

void
Kernel::svcSubpageProtect(Process &p, Addr addr, Word len, Word prot)
{
    unsigned subs = p.as().subpageProtect(addr, len, prot);
    machine_.cpu().charge(charge::SubpageBase +
                          subs * charge::SubpagePerSub);
}

void
Kernel::svcUexcSetFlags(Process &p, Word flags)
{
    p.setField(proc::Flags, flags);
    machine_.cpu().charge(charge::SetFlags);
}

void
Kernel::demoteDelivery(Process &p)
{
    // Clearing the fast-exception mask makes the dispatcher's
    // phase-2 compatibility check fail for every code, so future
    // exceptions take the stock (signal) path; dropping UV/UX turns
    // off hardware vectoring on the bound hart.
    p.setField(proc::UexcMask, 0);
    Cp0 &cp0 = machine_.cpu().cp0();
    cp0.setStatusReg(cp0.statusReg() &
                     ~(sim::status::UV | sim::status::UX));
    demotions_++;
}

// -- hcall bridge ---------------------------------------------------------------

void
Kernel::onHcall(Cpu &cpu, Word service)
{
    // The real lock first: when harts execute on host threads the
    // kernel's host-side structures (procs_, frames_, counters) need
    // genuine mutual exclusion, not just the analytic timestamp
    // below. Serial and barrier runs acquire it uncontended, so cost
    // and behaviour are unchanged; the counters are host measurement
    // only (see StackLockRealStats).
    if (!stackMutex_.try_lock()) {
        stackMutex_.lock();
        stackLockReal_.contended++;
    }
    stackLockReal_.acquires++;
    std::lock_guard<std::mutex> stack_guard(stackMutex_,
                                            std::adopt_lock);

    // Every bridged service runs on the shared kernel stack; on a
    // multi-hart machine that means taking the stack lock first, so
    // a hart that traps while another one is inside the kernel spins
    // (charged to the spinner). Single-hart machines never contend
    // and are charged nothing, preserving bit-identical cycles.
    if (machine_.numHarts() > 1) {
        cpu.charge(stackLock_.acquire(cpu.cycles(),
                                      charge::KernelStackHold));
    }
    switch (service) {
      case svc::SyscallComplex:
        doComplexSyscall();
        break;
      case svc::SubpageEmulate:
        doSubpageEmulate();
        break;
      case svc::RiEmulate:
        doRiEmulate();
        break;
      case svc::Upcall: {
        unsigned hart = cpu.hartId();
        const UpcallFn &fn =
            (hart < hartUpcalls_.size() && hartUpcalls_[hart])
                ? hartUpcalls_[hart] : upcall_;
        if (!fn) {
            UEXC_GUEST_ERROR(hart, cpu.pc(), cpu.cp0().badVAddr(),
                             "guest upcall with no host handler "
                             "installed");
        }
        fn(*this);
        break;
      }
      case svc::PanicBadTrap:
        doBadTrap();
      default:
        UEXC_GUEST_ERROR(cpu.hartId(), cpu.pc(), 0,
                         "unknown hcall service %u", service);
    }
}

void
Kernel::doComplexSyscall()
{
    Process *p = current();
    if (!p) {
        Cpu &cpu = machine_.cpu();
        UEXC_GUEST_ERROR(cpu.hartId(), cpu.pc(), 0,
                         "complex syscall with no current process");
    }
    Word num = p->tfWord(tf::Regs + V0 - 1);
    Word a0 = p->tfWord(tf::Regs + A0 - 1);
    Word a1 = p->tfWord(tf::Regs + A1 - 1);
    Word a2 = p->tfWord(tf::Regs + A2 - 1);

    const SyscallDef *def = syscallByNum(num);
    if (!def) {
        p->setTfWord(tf::Regs + V0 - 1, static_cast<Word>(-1));
        return;
    }
    if (def->baseCharge != 0)
        machine_.cpu().charge(def->baseCharge);
    std::optional<Word> result = (this->*def->handler)(*p, a0, a1, a2);
    // nullopt: the handler switched contexts (fork/wait/exit) or
    // halted; the saved v0 it arranged must survive untouched.
    if (result)
        p->setTfWord(tf::Regs + V0 - 1, *result);
}

// -- table-dispatched syscall handlers ----------------------------------------

std::optional<Word>
Kernel::sysMprotect(Process &p, Word a0, Word a1, Word a2)
{
    svcMprotect(p, a0, a1, a2);
    return 0;
}

std::optional<Word>
Kernel::sysUexcEnable(Process &p, Word a0, Word a1, Word a2)
{
    svcUexcEnable(p, a0, a1, a2);
    return 0;
}

std::optional<Word>
Kernel::sysUexcProtect(Process &p, Word a0, Word a1, Word a2)
{
    svcUexcProtect(p, a0, a1, a2);
    return 0;
}

std::optional<Word>
Kernel::sysSubpageProtect(Process &p, Word a0, Word a1, Word a2)
{
    svcSubpageProtect(p, a0, a1, a2);
    return 0;
}

std::optional<Word>
Kernel::sysUexcSetFlags(Process &p, Word a0, Word a1, Word a2)
{
    (void)a1;
    (void)a2;
    svcUexcSetFlags(p, a0);
    return 0;
}

std::optional<Word>
Kernel::sysExit(Process &p, Word a0, Word a1, Word a2)
{
    (void)a1;
    (void)a2;
    Process *parent =
        p.parentPid_ != 0 ? findProcess(p.parentPid_) : nullptr;
    if (parent == nullptr) {
        // Root process: record the exit and halt the machine —
        // exactly the pre-fork behavior (v0 = 0 lands in the
        // trapframe via the dispatcher).
        exited_ = true;
        exitCode_ = a0;
        machine_.cpu().requestHalt();
        return 0;
    }
    p.state_ = ProcState::Zombie;
    p.exitStatus_ = a0;
    if (parent->waiting_) {
        machine_.cpu().charge(charge::ExitBase);
        reapInto(*parent, p);
        return std::nullopt;
    }
    // The cooperative scheduler only runs a child while its parent
    // waits, so a zombie with a non-waiting parent means nothing is
    // runnable: stop the clock and leave the status for wait().
    machine_.cpu().requestHalt();
    return 0;
}

std::optional<Word>
Kernel::sysOpen(Process &p, Word a0, Word a1, Word a2)
{
    (void)a2;
    std::string path = copyinString(p, a0);
    if (path.empty())
        return static_cast<Word>(-1);
    machine_.cpu().charge(
        static_cast<Cycles>((path.size() + 3) / 4) *
        charge::CopyPerWord);
    int idx = vfs_.lookup(path);
    if (idx < 0) {
        if ((a1 & kOpenCreate) == 0)
            return static_cast<Word>(-1);
        idx = vfs_.create(path);
    }
    Vfs::File &f = vfs_.file(static_cast<unsigned>(idx));
    if ((a1 & kOpenTrunc) != 0)
        f.data.clear();
    for (unsigned fd_num = 0; fd_num < kMaxFds; fd_num++) {
        FileDesc &d = p.fds_[fd_num];
        if (d.used)
            continue;
        d.used = true;
        d.console = false;
        d.fileIndex = static_cast<Word>(idx);
        d.offset = (a1 & kOpenAppend) != 0
                       ? static_cast<Word>(f.data.size())
                       : 0;
        d.flags = a1;
        return fd_num;
    }
    return static_cast<Word>(-1); // descriptor table full
}

std::optional<Word>
Kernel::sysClose(Process &p, Word a0, Word a1, Word a2)
{
    (void)a1;
    (void)a2;
    if (a0 >= kMaxFds || !p.fds_[a0].used)
        return static_cast<Word>(-1);
    p.fds_[a0] = FileDesc{};
    return 0;
}

std::optional<Word>
Kernel::sysRead(Process &p, Word a0, Word a1, Word a2)
{
    if (a0 >= kMaxFds || !p.fds_[a0].used)
        return static_cast<Word>(-1);
    FileDesc &d = p.fds_[a0];
    if ((d.flags & 3u) == kOpenWrite)
        return static_cast<Word>(-1);
    if (d.console)
        return 0; // stdin is permanently at EOF
    const Vfs::File &f = vfs_.file(d.fileIndex);
    if (d.offset >= f.data.size() || a2 == 0)
        return 0;
    Word n = std::min<Word>(
        a2, static_cast<Word>(f.data.size()) - d.offset);
    for (Word i = 0; i < n; i++) {
        if (!p.as().present(a1 + i))
            return static_cast<Word>(-1);
    }
    copyout(p, a1, f.data.data() + d.offset, n);
    machine_.cpu().charge(static_cast<Cycles>((n + 3) / 4) *
                          charge::CopyPerWord);
    d.offset += n;
    return n;
}

std::optional<Word>
Kernel::sysWrite(Process &p, Word a0, Word a1, Word a2)
{
    if (a0 >= kMaxFds || !p.fds_[a0].used)
        return static_cast<Word>(-1);
    FileDesc &d = p.fds_[a0];
    if (!d.console && (d.flags & 3u) == kOpenRead)
        return static_cast<Word>(-1);
    for (Word i = 0; i < a2; i++) {
        if (!p.as().present(a1 + i))
            return static_cast<Word>(-1);
    }
    std::vector<Byte> buf = copyin(p, a1, a2);
    machine_.cpu().charge(static_cast<Cycles>((a2 + 3) / 4) *
                          charge::CopyPerWord);
    if (d.console) {
        console_.append(reinterpret_cast<const char *>(buf.data()),
                        buf.size());
        return a2;
    }
    Vfs::File &f = vfs_.file(d.fileIndex);
    if (f.data.size() < d.offset + a2)
        f.data.resize(d.offset + a2, 0);
    std::copy(buf.begin(), buf.end(),
              f.data.begin() + static_cast<long>(d.offset));
    d.offset += a2;
    return a2;
}

std::optional<Word>
Kernel::sysSbrk(Process &p, Word a0, Word a1, Word a2)
{
    (void)a1;
    (void)a2;
    Word old_brk = p.field(proc::Brk);
    SWord incr = static_cast<SWord>(a0);
    Word new_brk = old_brk + a0;
    if (incr > 0) {
        // Keep the heap out of the stack region, with slack for
        // growth; overflow also lands here.
        if (new_brk < old_brk ||
            new_brk >= kUserStackTop - 64 * kPageBytes)
            return static_cast<Word>(-1);
        unsigned new_pages = 0;
        for (Addr pg = roundDown(old_brk, kPageBytes);
             pg < roundUp(new_brk, kPageBytes); pg += kPageBytes) {
            if (!p.as().present(pg))
                new_pages++;
        }
        p.as().allocate(old_brk, a0, kProtRead | kProtWrite);
        machine_.cpu().charge(new_pages * charge::MprotectPerPage);
    } else {
        // Negative increments just move the break; frames are not
        // reclaimed (the frame allocator never frees).
        if (new_brk > old_brk)
            return static_cast<Word>(-1); // underflow
    }
    p.setField(proc::Brk, new_brk);
    return old_brk;
}

std::optional<Word>
Kernel::sysFork(Process &p, Word a0, Word a1, Word a2)
{
    (void)a0;
    (void)a1;
    (void)a2;
    Process &child = createProcess();
    forkInto(p, child);
    // The parent keeps running; the child is scheduled when the
    // parent calls wait() (cooperative run-to-completion model).
    return child.pid();
}

std::optional<Word>
Kernel::sysWait(Process &p, Word a0, Word a1, Word a2)
{
    (void)a1;
    (void)a2;
    bool has_child = false;
    for (auto &c : procs_) {
        if (c->parentPid_ != p.pid() || c->state_ == ProcState::Reaped)
            continue;
        has_child = true;
        if (c->state_ == ProcState::Zombie) {
            c->state_ = ProcState::Reaped;
            if (a0 != 0 && p.as().present(a0) && a0 % 4 == 0) {
                machine_.mem().writeWord(p.as().physOf(a0),
                                         c->exitStatus_);
            }
            return c->pid();
        }
    }
    if (!has_child)
        return static_cast<Word>(-1);
    // Block: run the first runnable child; reapInto writes our v0
    // (and status word) when it exits. The guest's restore_all picks
    // up the child because activate() retargets curproc.
    p.waiting_ = true;
    p.waitStatusVa_ = a0;
    for (auto &c : procs_) {
        if (c->parentPid_ == p.pid() &&
            c->state_ == ProcState::Running) {
            activate(*c);
            return std::nullopt;
        }
    }
    p.waiting_ = false;
    return static_cast<Word>(-1); // children died unreaped elsewhere
}

void
Kernel::forkInto(Process &parent, Process &child)
{
    // Full-copy fork (no copy-on-write, as Ultrix on the R3000):
    // walk the parent's linear page table across the whole user
    // range and duplicate every present page, protection and soft
    // PTE bits included. createProcess already mapped the child's
    // stack pages; allocate() skips those and the copy overwrites
    // their (zeroed) contents with the parent's.
    unsigned pages = 0;
    for (Addr va = 0; va < Cpu::Kseg0Base; va += kPageBytes) {
        if (!parent.as().present(va))
            continue;
        child.as().allocate(va, kPageBytes, kProtRead | kProtWrite);
        Addr src = parent.as().frameOf(va);
        Addr dst = child.as().frameOf(va);
        for (Word off = 0; off < kPageBytes; off += 4) {
            machine_.mem().writeWord(
                dst + off, machine_.mem().readWord(src + off));
        }
        Word parent_pte = parent.as().pte(va);
        Word child_pte = child.as().pte(va);
        child.as().setPte(va,
                          (child_pte & sim::entrylo::PfnMask) |
                              (parent_pte & ~sim::entrylo::PfnMask));
        pages++;
    }
    machine_.cpu().charge(pages * charge::ForkPerPage);
    machine_.cpu().flushHostCaches();

    // proc-structure state the child inherits (identity fields —
    // asid, pt base, pid, u-area — were set by createProcess).
    static const Word kInherited[] = {
        proc::Flags,      proc::UexcMask, proc::UexcHandler,
        proc::UexcFrameU, proc::SigPending, proc::SigMask,
        proc::TrampolineU, proc::FpUsed,  proc::Brk,
    };
    for (Word f : kInherited)
        child.setField(f, parent.field(f));
    for (unsigned s = 0; s < kNumSignals; s++) {
        child.setField(proc::SigHandlers + 4 * s,
                       parent.field(proc::SigHandlers + 4 * s));
    }
    // The pinned frame page's kseg0 alias must name the CHILD's copy
    // of the frame page, not the parent's.
    Addr frame_u = parent.field(proc::UexcFrameU);
    if (frame_u != 0) {
        child.setField(proc::UexcFrameK,
                       Cpu::Kseg0Base + child.as().frameOf(frame_u));
    }

    // u-area (trapframe included): the parent's syscall path already
    // advanced the saved EPC past the fork, so the child resumes at
    // the instruction after it — with v0 = 0.
    for (Word off = 0; off < uarea::Bytes; off += 4) {
        machine_.debugWriteWord(
            child.uareaKva() + off,
            machine_.debugReadWord(parent.uareaKva() + off));
    }
    child.setTfWord(tf::Regs + V0 - 1, 0);

    child.parentPid_ = parent.pid();
    child.fds_ = parent.fds_;
}

void
Kernel::reapInto(Process &parent, Process &child)
{
    child.state_ = ProcState::Reaped;
    parent.waiting_ = false;
    Addr status_va = parent.waitStatusVa_;
    parent.waitStatusVa_ = 0;
    if (status_va != 0 && status_va % 4 == 0 &&
        parent.as().present(status_va)) {
        machine_.mem().writeWord(parent.as().physOf(status_va),
                                 child.exitStatus_);
    }
    parent.setTfWord(tf::Regs + V0 - 1, child.pid());
    // The guest is about to run restore_all, which reloads curproc:
    // retargeting it resumes the parent inside its wait().
    activate(parent);
}

Word
Kernel::faultedReg(Process &p, unsigned reg, Addr frame_kva) const
{
    // at and t0-t5 were stashed in the exception frame by the fast
    // path's save phase; everything else is still live in the CPU.
    switch (reg) {
      case AT: return machine_.debugReadWord(frame_kva + uframe::At);
      case T0: return machine_.debugReadWord(frame_kva + uframe::T0);
      case T1: return machine_.debugReadWord(frame_kva + uframe::T1);
      case T2: return machine_.debugReadWord(frame_kva + uframe::T2);
      case T3: return machine_.debugReadWord(frame_kva + uframe::T3);
      case T4: return machine_.debugReadWord(frame_kva + uframe::T4);
      case T5: return machine_.debugReadWord(frame_kva + uframe::T5);
      default: return machine_.cpu().reg(reg);
    }
    (void)p;
}

void
Kernel::setFaultedReg(Process &p, unsigned reg, Addr frame_kva,
                      Word value)
{
    (void)p;
    switch (reg) {
      case Zero: return;
      case AT: machine_.debugWriteWord(frame_kva + uframe::At, value);
               return;
      case T0: machine_.debugWriteWord(frame_kva + uframe::T0, value);
               return;
      case T1: machine_.debugWriteWord(frame_kva + uframe::T1, value);
               return;
      case T2: machine_.debugWriteWord(frame_kva + uframe::T2, value);
               return;
      case T3: machine_.debugWriteWord(frame_kva + uframe::T3, value);
               return;
      case T4: machine_.debugWriteWord(frame_kva + uframe::T4, value);
               return;
      case T5: machine_.debugWriteWord(frame_kva + uframe::T5, value);
               return;
      default: machine_.cpu().setReg(reg, value); return;
    }
}

void
Kernel::doSubpageEmulate()
{
    // Emulate the access that faulted into an *unprotected* logical
    // subpage (section 3.2.4): perform the load/store with kernel
    // rights, emulate the branch if the access sat in a delay slot,
    // and point EPC at the resume address.
    Process *p = current();
    Cpu &cpu = machine_.cpu();
    Cp0 &cp0 = cpu.cp0();
    if (!p) {
        UEXC_GUEST_ERROR(cpu.hartId(), cpu.pc(), 0,
                         "subpage emulation with no current process");
    }
    Addr epc = cp0.epc();
    bool bd = cp0.causeReg() & cause::BD;
    Word cause_code = (cp0.causeReg() & cause::ExcCodeMask) >>
                      cause::ExcCodeShift;
    Addr frame_kva = p->field(proc::UexcFrameK) +
                     (cause_code << uframe::FrameShift);

    Addr access_pc = bd ? epc + 4 : epc;
    if (!p->as().present(access_pc)) {
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, cp0.badVAddr(),
                         "subpage emulation with unmapped access pc");
    }
    Word raw = machine_.mem().readWord(p->as().physOf(access_pc));
    DecodedInst inst = decode(raw);
    if (!inst.isMemory()) {
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, cp0.badVAddr(),
                         "subpage emulation of non-memory instruction "
                         "'%s' at 0x%08x (jumps into protected pages "
                         "are not handled, as in the paper's "
                         "prototype)",
                         disassemble(inst).c_str(), access_pc);
    }

    Addr ea = faultedReg(*p, inst.rs, frame_kva) + inst.simm;
    if (!p->as().present(ea)) {
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, ea,
                         "subpage emulation of access to unmapped "
                         "address 0x%08x", ea);
    }
    Addr pa = p->as().physOf(ea);
    switch (inst.op) {
      case Op::Lw:
        setFaultedReg(*p, inst.rt, frame_kva, machine_.mem().readWord(pa));
        break;
      case Op::Lh:
        setFaultedReg(*p, inst.rt, frame_kva,
                      signExtend(machine_.mem().readHalf(pa), 16));
        break;
      case Op::Lhu:
        setFaultedReg(*p, inst.rt, frame_kva, machine_.mem().readHalf(pa));
        break;
      case Op::Lb:
        setFaultedReg(*p, inst.rt, frame_kva,
                      signExtend(machine_.mem().readByte(pa), 8));
        break;
      case Op::Lbu:
        setFaultedReg(*p, inst.rt, frame_kva, machine_.mem().readByte(pa));
        break;
      case Op::Sw:
        machine_.mem().writeWord(pa, faultedReg(*p, inst.rt, frame_kva));
        break;
      case Op::Sh:
        machine_.mem().writeHalf(
            pa, static_cast<Half>(faultedReg(*p, inst.rt, frame_kva)));
        break;
      case Op::Sb:
        machine_.mem().writeByte(
            pa, static_cast<Byte>(faultedReg(*p, inst.rt, frame_kva)));
        break;
      default:
        UEXC_GUEST_ERROR(cpu.hartId(), access_pc, ea,
                         "subpage emulation of unsupported memory op "
                         "'%s'", disassemble(inst).c_str());
    }

    // resume address: trivial unless the access was in a delay slot,
    // in which case the kernel must emulate the branch as well
    Addr resume;
    if (!bd) {
        resume = epc + 4;
    } else {
        Word braw = machine_.mem().readWord(p->as().physOf(epc));
        DecodedInst br = decode(braw);
        Word rs = faultedReg(*p, br.rs, frame_kva);
        Word rt = faultedReg(*p, br.rt, frame_kva);
        Addr taken = epc + 4 + (br.simm << 2);
        Addr fallthrough = epc + 8;
        switch (br.op) {
          case Op::Beq:  resume = (rs == rt) ? taken : fallthrough; break;
          case Op::Bne:  resume = (rs != rt) ? taken : fallthrough; break;
          case Op::Blez:
            resume = (static_cast<SWord>(rs) <= 0) ? taken : fallthrough;
            break;
          case Op::Bgtz:
            resume = (static_cast<SWord>(rs) > 0) ? taken : fallthrough;
            break;
          case Op::Bltz:
            resume = (static_cast<SWord>(rs) < 0) ? taken : fallthrough;
            break;
          case Op::Bgez:
            resume = (static_cast<SWord>(rs) >= 0) ? taken : fallthrough;
            break;
          case Op::J:
          case Op::Jal:
            resume = ((epc + 4) & 0xf0000000u) | (br.target << 2);
            if (br.op == Op::Jal)
                setFaultedReg(*p, RA, frame_kva, epc + 8);
            break;
          case Op::Jr:
            resume = rs;
            break;
          case Op::Jalr:
            resume = rs;
            setFaultedReg(*p, br.rd, frame_kva, epc + 8);
            break;
          default:
            UEXC_GUEST_ERROR(cpu.hartId(), epc, ea,
                             "subpage emulation: BD set but 0x%08x is "
                             "not a branch", epc);
        }
    }
    cp0.write(cp0reg::Epc, resume);
    cpu.charge(charge::SubpageEmulate);
    subpageEmuls_++;
}

void
Kernel::doRiEmulate()
{
    // The stock path asks whether this Reserved Instruction fault is
    // a TLBMP to emulate (section 3.2.3's software fallback). Sets
    // guest k1 = 1 when handled (saved EPC advanced), 0 otherwise.
    Process *p = current();
    Cpu &cpu = machine_.cpu();
    cpu.setReg(K1, 0);
    if (!p)
        return;
    Addr epc = p->tfWord(tf::Epc);
    if (!p->as().present(epc))
        return;
    Word raw = machine_.mem().readWord(p->as().physOf(epc));
    DecodedInst inst = decode(raw);
    if (inst.op != Op::Tlbmp)
        return;
    Addr va = p->tfWord(tf::Regs + inst.rs - 1);
    Word ctl = p->tfWord(tf::Regs + inst.rt - 1);
    if (!p->as().present(va))
        return;  // unmapped: let the signal path handle it
    Word pte = p->as().pte(va);
    if (!(pte & entrylo::U))
        return;  // policy: not user-modifiable -> SIGILL
    pte = (ctl & 1u) ? (pte | entrylo::D) : (pte & ~entrylo::D);
    pte = (ctl & 2u) ? (pte | entrylo::V) : (pte & ~entrylo::V);
    p->as().setPte(va, pte);
    machine_.invalidateTlbs(va, p->asid());
    // skip the TLBMP instruction on return
    p->setTfWord(tf::Epc, epc + 4);
    cpu.setReg(K1, 1);
    cpu.charge(charge::RiEmulate);
    riEmuls_++;
}

void
Kernel::doBadTrap()
{
    // The guest kernel diagnosed an inconsistency it cannot recover
    // from (TLB/pmap disagreement, fault from kernel mode, malformed
    // trap state). Surface it as a structured guest-visible error
    // instead of killing the host process.
    const Cp0 &cp0 = machine_.cpu().cp0();
    UEXC_GUEST_ERROR(
        machine_.currentHart(), cp0.epc(), cp0.badVAddr(),
        "bad trap: cause=0x%08x (%s) status=0x%08x",
        cp0.causeReg(),
        excName(static_cast<ExcCode>(
            (cp0.causeReg() & cause::ExcCodeMask) >>
            cause::ExcCodeShift)),
        cp0.statusReg());
}

} // namespace uexc::os
