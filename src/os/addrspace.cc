#include "os/addrspace.h"

#include "common/bits.h"
#include "common/logging.h"
#include "sim/cp0.h"
#include "sim/tlb.h"

namespace uexc::os {

using namespace sim;

Addr
FrameAllocator::alloc(PhysMemory &mem)
{
    if (next_ + kPageBytes > limit_)
        UEXC_FATAL("frame allocator exhausted (limit 0x%08x)", limit_);
    Addr frame = next_;
    next_ += kPageBytes;
    mem.clearRange(frame, kPageBytes);
    return frame;
}

AddressSpace::AddressSpace(Machine &machine, unsigned asid, Addr pt_kva,
                           FrameAllocator &frames)
    : machine_(machine), asid_(asid), ptKva_(pt_kva), frames_(frames)
{
    if (!isAligned(pt_kva, kPageTableBytes))
        UEXC_FATAL("page table base 0x%08x not 2MB aligned", pt_kva);
    if (asid >= 64)
        UEXC_FATAL("asid %u out of range", asid);
    // zero the whole linear table (covers all of kuseg)
    machine_.mem().clearRange(Machine::unmappedToPhys(pt_kva),
                              kPageTableBytes);
}

Word
AddressSpace::pte(Addr va) const
{
    if (va >= Cpu::Kseg0Base)
        UEXC_PANIC("pte lookup for kernel address 0x%08x", va);
    Addr slot = ptKva_ + ((va >> kPageShift) << 2);
    return machine_.debugReadWord(slot);
}

void
AddressSpace::setPte(Addr va, Word pte_value)
{
    if (va >= Cpu::Kseg0Base)
        UEXC_PANIC("pte store for kernel address 0x%08x", va);
    Addr slot = ptKva_ + ((va >> kPageShift) << 2);
    machine_.debugWriteWord(slot, pte_value);
}

bool
AddressSpace::present(Addr va) const
{
    return pte(va) & kPtePresent;
}

Addr
AddressSpace::frameOf(Addr va) const
{
    Word p = pte(va);
    if (!(p & kPtePresent))
        UEXC_FATAL("no frame mapped at 0x%08x", va);
    return p & entrylo::PfnMask;
}

Addr
AddressSpace::physOf(Addr va) const
{
    return frameOf(va) | (va & (kPageBytes - 1));
}

Word
AddressSpace::hwBitsForProt(Word prot) const
{
    Word bits = 0;
    if (prot & kProtRead)
        bits |= entrylo::V;
    if (prot & kProtWrite)
        bits |= entrylo::V | entrylo::D;
    return bits;
}

void
AddressSpace::syncTlbEntry(Addr va, Word pte_value)
{
    // Kernel TLB shootdown: drop any cached translation, on every
    // hart, so the next access refills from the updated PTE.
    (void)pte_value;
    machine_.invalidateTlbs(va, asid_);
}

void
AddressSpace::allocate(Addr va, Word len, Word prot)
{
    Addr first = roundDown(va, kPageBytes);
    Addr last = roundUp(va + len, kPageBytes);
    for (Addr page = first; page < last; page += kPageBytes) {
        if (present(page))
            continue;
        Addr frame = frames_.alloc(machine_.mem());
        mapFrame(page, frame, prot);
    }
}

void
AddressSpace::mapFrame(Addr va, Addr paddr, Word prot)
{
    if (!isAligned(va, kPageBytes) || !isAligned(paddr, kPageBytes))
        UEXC_FATAL("mapFrame: unaligned va 0x%08x or pa 0x%08x", va,
                   paddr);
    Word p = (paddr & entrylo::PfnMask) | hwBitsForProt(prot) |
             kPtePresent;
    setPte(va, p);
    syncTlbEntry(va, p);
}

unsigned
AddressSpace::protect(Addr va, Word len, Word prot)
{
    Addr first = roundDown(va, kPageBytes);
    Addr last = roundUp(va + len, kPageBytes);
    unsigned pages = 0;
    for (Addr page = first; page < last; page += kPageBytes) {
        Word p = pte(page);
        if (!(p & kPtePresent))
            UEXC_FATAL("protect of unmapped page 0x%08x", page);
        p &= ~(entrylo::V | entrylo::D | kPteSubpage | kPteSubMaskBits);
        p |= hwBitsForProt(prot);
        setPte(page, p);
        syncTlbEntry(page, p);
        pages++;
    }
    return pages;
}

unsigned
AddressSpace::subpageProtect(Addr va, Word len, Word prot)
{
    if (!isAligned(va, kSubpageBytes) || !isAligned(len, kSubpageBytes))
        UEXC_FATAL("subpage protect must be 1KB aligned: 0x%08x+0x%x",
                   va, len);
    unsigned subpages = 0;
    for (Addr sub = va; sub < va + len; sub += kSubpageBytes) {
        Addr page = roundDown(sub, kPageBytes);
        Word p = pte(page);
        if (!(p & kPtePresent))
            UEXC_FATAL("subpage protect of unmapped page 0x%08x", page);
        unsigned index = (sub >> kSubpageShift) & (kSubpagesPerPage - 1);
        Word mask_bit = Word(1) << (kPteSubMaskShift + index);
        bool protecting = (prot & kProtWrite) == 0;
        if (protecting)
            p |= mask_bit;
        else
            p &= ~mask_bit;
        // recompute page state
        if (p & kPteSubMaskBits) {
            p |= kPteSubpage;
            // hardware must trap protected-subpage writes: clear D.
            // reads remain allowed (V set): the paper's subpage
            // mechanism targets write detection.
            p |= entrylo::V;
            p &= ~entrylo::D;
        } else {
            p &= ~kPteSubpage;
            p |= entrylo::V | entrylo::D;
        }
        setPte(page, p);
        syncTlbEntry(page, p);
        subpages++;
    }
    return subpages;
}

unsigned
AddressSpace::subpageMask(Addr va) const
{
    return (pte(va) & kPteSubMaskBits) >> kPteSubMaskShift;
}

bool
AddressSpace::subpageActive(Addr va) const
{
    return pte(va) & kPteSubpage;
}

void
AddressSpace::amplify(Addr va)
{
    Word p = pte(va);
    if (!(p & kPtePresent))
        UEXC_FATAL("amplify of unmapped page 0x%08x", va);
    p |= entrylo::V | entrylo::D;
    setPte(va, p);
    syncTlbEntry(va, p);
}

void
AddressSpace::reprotectFromSubpages(Addr va)
{
    Word p = pte(va);
    if (p & kPteSubMaskBits) {
        p |= kPteSubpage | entrylo::V;
        p &= ~entrylo::D;
    }
    setPte(va, p);
    syncTlbEntry(va, p);
}

void
AddressSpace::setUserModifiable(Addr va, bool enable)
{
    Word p = pte(va);
    if (enable)
        p |= entrylo::U;
    else
        p &= ~entrylo::U;
    setPte(va, p);
    syncTlbEntry(va, p);
}

} // namespace uexc::os
