/**
 * @file
 * A deliberately tiny in-memory filesystem for the Ultrix-flavored
 * file syscalls (open/close/read/write). There is one flat namespace
 * of named byte vectors; per-process file descriptors (offset, mode)
 * live in the Process, not here. All state is host-side and travels
 * in the kernel's snapshot section — guest programs only ever see it
 * through the charged syscall path, so simulated-cycle costs are
 * unaffected by the host representation.
 */

#ifndef UEXC_OS_VFS_H
#define UEXC_OS_VFS_H

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/snapshot.h"

namespace uexc::os {

class Vfs
{
  public:
    struct File
    {
        std::string name;
        std::vector<Byte> data;
    };

    /** Index of @p name, or -1 when absent. */
    int lookup(const std::string &name) const;

    /** Index of @p name, creating an empty file when absent. */
    int create(const std::string &name);

    File &file(unsigned index);
    const File &file(unsigned index) const;
    unsigned numFiles() const
    {
        return static_cast<unsigned>(files_.size());
    }

    /** Host-side seeding: create-or-replace @p name with @p data. */
    void install(const std::string &name, std::vector<Byte> data);

    void snapshotSave(sim::SnapshotWriter &w) const;
    void snapshotLoad(sim::SnapshotReader &r);

  private:
    std::vector<File> files_;
};

} // namespace uexc::os

#endif // UEXC_OS_VFS_H
