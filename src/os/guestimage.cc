#include "os/guestimage.h"

#include <algorithm>

#include "common/logging.h"

namespace uexc::os {

Addr
GuestImage::symbol(const std::string &sym) const
{
    auto it = symbols.find(sym);
    if (it == symbols.end())
        UEXC_FATAL("guest image '%s' has no symbol '%s'", name.c_str(),
                   sym.c_str());
    return it->second;
}

bool
GuestImage::hasSymbol(const std::string &sym) const
{
    return symbols.count(sym) != 0;
}

const GuestSection *
GuestImage::sectionAt(Addr va) const
{
    for (const GuestSection &s : sections) {
        if (s.contains(va))
            return &s;
    }
    return nullptr;
}

const GuestSection *
GuestImage::findSection(const std::string &section_name) const
{
    for (const GuestSection &s : sections) {
        if (s.name == section_name)
            return &s;
    }
    return nullptr;
}

Addr
GuestImage::loadEnd() const
{
    Addr end = 0;
    for (const GuestSection &s : sections)
        end = std::max(end, s.end());
    return end;
}

void
GuestImage::validate() const
{
    if (sections.empty())
        UEXC_FATAL("guest image '%s' has no sections", name.c_str());
    for (const GuestSection &s : sections) {
        if (s.vaddr % 4 != 0)
            UEXC_FATAL("guest image '%s': section '%s' at unaligned "
                       "0x%08x", name.c_str(), s.name.c_str(), s.vaddr);
        if (s.memBytes < s.fileBytes())
            UEXC_FATAL("guest image '%s': section '%s' memBytes %u < "
                       "file bytes %u", name.c_str(), s.name.c_str(),
                       s.memBytes, s.fileBytes());
        if (s.end() < s.vaddr)
            UEXC_FATAL("guest image '%s': section '%s' wraps the "
                       "address space", name.c_str(), s.name.c_str());
        for (const GuestSection &t : sections) {
            if (&t == &s)
                continue;
            if (s.vaddr < t.end() && t.vaddr < s.end())
                UEXC_FATAL("guest image '%s': sections '%s' and '%s' "
                           "overlap", name.c_str(), s.name.c_str(),
                           t.name.c_str());
        }
    }
    if (entry != 0) {
        const GuestSection *s = sectionAt(entry);
        if (!s || !s->executable || entry % 4 != 0)
            UEXC_FATAL("guest image '%s': entry 0x%08x is not inside "
                       "an executable section", name.c_str(), entry);
    }
}

void
GuestImage::setLintConfig(analysis::LintConfig config)
{
    lint_ = std::move(config);
    hasLint_ = true;
}

const analysis::LintConfig &
GuestImage::lintConfig() const
{
    if (!hasLint_)
        UEXC_FATAL("guest image '%s' carries no lint configuration",
                   name.c_str());
    return lint_;
}

GuestImage
GuestImage::fromProgram(const sim::Program &prog,
                        std::string image_name)
{
    GuestImage img;
    img.name = std::move(image_name);
    GuestSection text;
    text.name = ".text";
    text.vaddr = prog.origin;
    text.words = prog.words;
    text.memBytes = text.fileBytes();
    text.writable = true;    // loadProgram's historical mapping
    text.executable = true;
    img.sections.push_back(std::move(text));
    img.symbols = prog.symbols;
    return img;
}

sim::Program
GuestImage::textProgram() const
{
    for (const GuestSection &s : sections) {
        if (!s.executable)
            continue;
        sim::Program prog;
        prog.origin = s.vaddr;
        prog.words = s.words;
        prog.symbols = symbols;
        return prog;
    }
    UEXC_FATAL("guest image '%s' has no executable section",
               name.c_str());
}

} // namespace uexc::os
