#include "os/vfs.h"

#include <utility>

#include "common/logging.h"

namespace uexc::os {

int
Vfs::lookup(const std::string &name) const
{
    for (unsigned i = 0; i < files_.size(); i++) {
        if (files_[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Vfs::create(const std::string &name)
{
    int idx = lookup(name);
    if (idx >= 0)
        return idx;
    files_.push_back(File{name, {}});
    return static_cast<int>(files_.size() - 1);
}

Vfs::File &
Vfs::file(unsigned index)
{
    if (index >= files_.size())
        UEXC_FATAL("vfs: file index %u out of range", index);
    return files_[index];
}

const Vfs::File &
Vfs::file(unsigned index) const
{
    if (index >= files_.size())
        UEXC_FATAL("vfs: file index %u out of range", index);
    return files_[index];
}

void
Vfs::install(const std::string &name, std::vector<Byte> data)
{
    files_[static_cast<unsigned>(create(name))].data = std::move(data);
}

void
Vfs::snapshotSave(sim::SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(files_.size()));
    for (const File &f : files_) {
        w.str(f.name);
        w.u32(static_cast<std::uint32_t>(f.data.size()));
        w.bytes(f.data.data(), f.data.size());
    }
}

void
Vfs::snapshotLoad(sim::SnapshotReader &r)
{
    std::uint32_t n = r.u32();
    std::vector<File> files;
    files.reserve(n);
    for (std::uint32_t i = 0; i < n; i++) {
        File f;
        f.name = r.str();
        std::uint32_t len = r.u32();
        if (len > r.remaining())
            r.fail("vfs file '" + f.name + "' longer than section");
        f.data.resize(len);
        if (len > 0)
            r.bytes(f.data.data(), len);
        files.push_back(std::move(f));
    }
    files_ = std::move(files);
}

} // namespace uexc::os
