/**
 * @file
 * The declarative syscall table for host-bridged ("complex")
 * syscalls.
 *
 * The guest kernel's dispatch table routes these numbers to
 * sys_complex, which crosses the HCALL bridge; the host-side
 * dispatcher (Kernel::doComplexSyscall) then consults this table
 * instead of an ad-hoc switch. Each row names the syscall, carries
 * the fixed simulated-cycle charge the dispatcher applies, and points
 * at the Kernel member that implements it. Variable costs (per page
 * mapped, per word copied) are charged inside the handlers, so every
 * cost stays in simulated cycles regardless of the host-side
 * representation.
 *
 * Rows for the pre-existing VM/uexc syscalls carry a zero base
 * charge: their handlers delegate to the original svc* services,
 * which charge internally — the refactor is bit-identical for them.
 */

#ifndef UEXC_OS_SYSCALLS_H
#define UEXC_OS_SYSCALLS_H

#include <optional>
#include <vector>

#include "common/types.h"
#include "os/kernel.h"

namespace uexc::os {

/** One row of the host-bridged syscall table. */
struct SyscallDef
{
    Word num;
    const char *name;
    /** Fixed charge applied by the dispatcher before the handler. */
    Cycles baseCharge;
    /**
     * The implementation. Returns the value to store into the
     * caller's saved v0, or nullopt when the handler took over
     * context management itself (exit, fork's switch to a waiting
     * parent, wait's block) and v0 must not be overwritten here.
     */
    std::optional<Word> (Kernel::*handler)(Process &, Word, Word, Word);
};

/** The table, ordered by syscall number. */
const std::vector<SyscallDef> &syscallTable();

/** Row for @p num, or nullptr for numbers the host does not bridge. */
const SyscallDef *syscallByNum(Word num);

} // namespace uexc::os

#endif // UEXC_OS_SYSCALLS_H
