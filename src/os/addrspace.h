/**
 * @file
 * Host-side management of a process address space: the linear page
 * table that lives *in guest memory* (walked by the guest TLB refill
 * handler), frame allocation, protection changes, and the subpage
 * protection state of section 3.2.4.
 *
 * PTE format: EntryLo-compatible hardware bits (PFN, N, D, V, G, U)
 * plus kernel software bits in [6:0]:
 *   bit 0      - kPteSubpage: subpage protection active
 *   bit 1      - kPtePresent: a frame is allocated
 *   bits [6:3] - subpage protection mask (bit per 1 KB subpage;
 *                set = user-protected)
 * The single-lw refill handler loads PTEs unmasked; the TLB ignores
 * the software bits.
 */

#ifndef UEXC_OS_ADDRSPACE_H
#define UEXC_OS_ADDRSPACE_H

#include "common/types.h"
#include "os/layout.h"
#include "sim/machine.h"

namespace uexc::os {

/** Subpage mask field position inside a PTE. */
constexpr unsigned kPteSubMaskShift = 3;
constexpr Word kPteSubMaskBits = 0xfu << kPteSubMaskShift;

/** Bump allocator for user physical frames. */
class FrameAllocator
{
  public:
    FrameAllocator(Addr base, Addr limit)
        : next_(base), limit_(limit) {}

    /** Allocate one zeroed 4 KB frame; returns its physical address. */
    Addr alloc(sim::PhysMemory &mem);

    Addr remainingBytes() const { return limit_ - next_; }

    /** Bump cursor (snapshot save/restore of the kernel section). */
    Addr cursor() const { return next_; }
    void restoreCursor(Addr next) { next_ = next; }
    Addr limit() const { return limit_; }

  private:
    Addr next_;
    Addr limit_;
};

/**
 * One process address space. All mutations write through to the page
 * table in guest memory and shoot down stale TLB entries, exactly as
 * the kernel's VM layer would.
 */
class AddressSpace
{
  public:
    /**
     * @param machine  the machine whose memory holds the page table
     * @param asid     hardware address space id
     * @param pt_kva   page table base, kseg0 virtual, 2 MB aligned
     * @param frames   allocator for user frames (shared, kernel-owned)
     */
    AddressSpace(sim::Machine &machine, unsigned asid, Addr pt_kva,
                 FrameAllocator &frames);

    unsigned asid() const { return asid_; }
    /** Page table base as a kseg0 virtual address. */
    Addr ptKva() const { return ptKva_; }

    // -- page table access --------------------------------------------

    /** Raw PTE for the page containing @p va. */
    Word pte(Addr va) const;
    void setPte(Addr va, Word pte_value);

    /** Whether a frame is allocated at @p va. */
    bool present(Addr va) const;
    /** Physical frame of @p va; fatal if not present. */
    Addr frameOf(Addr va) const;
    /** Physical address of @p va; fatal if not present. */
    Addr physOf(Addr va) const;

    // -- mapping -----------------------------------------------------------

    /**
     * Allocate frames and map [va, va+len) with protection @p prot
     * (kProtRead|kProtWrite). Pages already present are left alone.
     */
    void allocate(Addr va, Word len, Word prot);

    /** Map one page to an existing frame. */
    void mapFrame(Addr va, Addr paddr, Word prot);

    // -- protection ------------------------------------------------------------

    /**
     * Change page-level protection of [va, va+len); clears subpage
     * mode on those pages. Shoots down TLB entries.
     *
     * @return number of pages touched
     */
    unsigned protect(Addr va, Word len, Word prot);

    /**
     * Set subpage-level protection (section 3.2.4) over
     * [va, va+len), at 1 KB granularity: the named subpages become
     * user-protected; hardware page protection is recomputed as the
     * conjunction the MMU can express. @p prot applies to the touched
     * subpages (kProtRead|kProtWrite to clear their protection).
     *
     * @return number of subpages touched
     */
    unsigned subpageProtect(Addr va, Word len, Word prot);

    /** The 4-bit protected-subpage mask of a page. */
    unsigned subpageMask(Addr va) const;
    /** Whether subpage mode is active on the page. */
    bool subpageActive(Addr va) const;

    /**
     * Amplify the page to full user access in both the PTE and any
     * live TLB entry (eager amplification, section 3.2.3, and the
     * subpage upcall path). Subpage mask is preserved so a later
     * re-protect call can restore checks.
     */
    void amplify(Addr va);

    /** Restore hardware protection from the stored subpage mask. */
    void reprotectFromSubpages(Addr va);

    /** Mark the page's TLB entry user-modifiable (U bit). */
    void setUserModifiable(Addr va, bool enable);

  private:
    Word hwBitsForProt(Word prot) const;
    void syncTlbEntry(Addr va, Word pte_value);

    sim::Machine &machine_;
    unsigned asid_;
    Addr ptKva_;
    FrameAllocator &frames_;
};

} // namespace uexc::os

#endif // UEXC_OS_ADDRSPACE_H
