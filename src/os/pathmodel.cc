#include "os/pathmodel.h"

namespace uexc::os {

double
DispatchPathModel::roundTripUs() const
{
    double total = 0;
    for (const DispatchPhase &p : phases)
        total += p.us;
    return total;
}

std::vector<DispatchPathModel>
table1Models(double ultrix_deliver_us, double ultrix_return_us,
             double ultrix_write_prot_us)
{
    std::vector<DispatchPathModel> models;

    {
        DispatchPathModel m;
        m.system = "Ultrix 4.2A";
        m.hardware = "DECstation 5000/200 (25 MHz R3000)";
        m.clockMhz = 25;
        m.measured = true;
        m.phases = {
            {"trap, save, signal post + sendsig (measured)",
             ultrix_deliver_us},
            {"handler return via sigreturn (measured)",
             ultrix_return_us},
        };
        m.writeProtUs = ultrix_write_prot_us;
        models.push_back(m);
    }
    {
        // Mach with the Unix server: the exception travels
        // kernel -> exception port -> UX server -> application and
        // back (the paper: ~2 ms)
        DispatchPathModel m;
        m.system = "Mach/UX (MK83/UX41)";
        m.hardware = "DECstation 5000/200 (25 MHz R3000)";
        m.clockMhz = 25;
        m.phases = {
            {"trap + kernel state save", 18},
            {"exception IPC to UX server port", 230},
            {"UX server: signal emulation + u-area work", 760},
            {"signal IPC back to the application", 680},
            {"application handler + resume path", 312},
        };
        m.writeProtUs = 1850;
        models.push_back(m);
    }
    {
        // raw Mach exception handling, no Unix server (paper: 256 us)
        DispatchPathModel m;
        m.system = "Mach (raw kernel)";
        m.hardware = "DECstation 5000/200 (25 MHz R3000)";
        m.clockMhz = 25;
        m.phases = {
            {"trap + kernel state save", 18},
            {"exception IPC to task port", 112},
            {"reply IPC + state restore", 104},
            {"resume", 22},
        };
        m.writeProtUs = 210;
        models.push_back(m);
    }
    {
        // SunOS 4.1.3 (paper: 69 us, the best of the measured set)
        DispatchPathModel m;
        m.system = "SunOS 4.1.3";
        m.hardware = "SPARCstation 10 (36 MHz SuperSPARC)";
        m.clockMhz = 36;
        m.phases = {
            {"trap + register-window save", 21},
            {"signal translation + posting", 11},
            {"sendsig: sigcontext on user stack", 19},
            {"handler + sigreturn", 18},
        };
        m.writeProtUs = 52;
        models.push_back(m);
    }
    {
        // Windows NT on MIPS: most exceptions handled in the NT
        // kernel proper despite the micro-kernel structure
        DispatchPathModel m;
        m.system = "Windows NT (modeled)";
        m.hardware = "40 MHz MIPS R4000";
        m.clockMhz = 40;
        m.phases = {
            {"trap + trap frame build", 12},
            {"KiDispatchException", 34},
            {"user-mode dispatcher + SEH frame search", 41},
            {"NtContinue resume", 24},
        };
        m.writeProtUs = 92;
        models.push_back(m);
    }
    {
        // DEC OSF/1 V1.3 on Alpha: fast hardware, long path
        DispatchPathModel m;
        m.system = "OSF/1 V1.3 (modeled)";
        m.hardware = "DEC 3000/500X (200 MHz Alpha 21064)";
        m.clockMhz = 200;
        m.phases = {
            {"PALcode trap entry", 3},
            {"kernel trap() + signal post", 16},
            {"sendsig: sigcontext build", 13},
            {"handler + sigreturn", 14},
        };
        m.writeProtUs = 38;
        models.push_back(m);
    }
    return models;
}

} // namespace uexc::os
