#include "sim/tlb.h"

#include "common/logging.h"

namespace uexc::sim {

Tlb::Tlb()
{
    flush();
}

std::optional<unsigned>
Tlb::probe(Addr vaddr, unsigned asid)
{
    stats_.lookups++;
    auto hit = probeQuiet(vaddr, asid);
    if (!hit)
        stats_.misses++;
    return hit;
}

std::optional<unsigned>
Tlb::probeQuiet(Addr vaddr, unsigned asid) const
{
    Word vpn = vaddr & entryhi::VpnMask;
    for (unsigned i = 0; i < NumEntries; i++) {
        const TlbEntry &e = entries_[i];
        if (e.vpn() == vpn && (e.global() || e.asid() == asid))
            return i;
    }
    return std::nullopt;
}

const TlbEntry &
Tlb::entry(unsigned index) const
{
    if (index >= NumEntries)
        UEXC_PANIC("tlb: index %u out of range", index);
    return entries_[index];
}

void
Tlb::setEntry(unsigned index, Word hi, Word lo)
{
    if (index >= NumEntries)
        UEXC_PANIC("tlb: index %u out of range", index);
    entries_[index].hi = hi;
    entries_[index].lo = lo;
    generation_++;
}

void
Tlb::invalidate(Addr vaddr, unsigned asid)
{
    // Remove the entry entirely (park it on an impossible VPN) so the
    // next access takes the refill path and reloads the page table
    // entry, rather than hitting a stale valid/dirty combination.
    auto hit = probeQuiet(vaddr, asid);
    if (hit) {
        entries_[*hit].hi = 0x80000000u | (*hit << 12);
        entries_[*hit].lo = 0;
        generation_++;
    }
}

void
Tlb::invalidateAsid(unsigned asid)
{
    for (unsigned i = 0; i < NumEntries; i++) {
        TlbEntry &e = entries_[i];
        if (!e.global() && e.asid() == asid) {
            e.hi = 0x80000000u | (i << 12);
            e.lo = 0;
        }
    }
    generation_++;
}

void
Tlb::flush()
{
    unsigned i = 0;
    for (TlbEntry &e : entries_) {
        // Park each invalid entry on a distinct impossible VPN (in
        // kseg space) so flushed entries never alias a kuseg lookup.
        e.hi = 0x80000000u | (i++ << 12);
        e.lo = 0;
    }
    generation_++;
}

} // namespace uexc::sim
