#include "sim/isa.h"

#include <cstdio>

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::sim {

namespace {

const char *const kRegNames[NumRegs] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

// Shorthand for the metadata table below.
constexpr std::uint16_t kRRR = opf::ReadsRs | opf::ReadsRt | opf::WritesRd;
constexpr std::uint16_t kImm = opf::ReadsRs | opf::WritesRt;
constexpr std::uint16_t kLoad =
    opf::Memory | opf::Load | opf::ReadsRs | opf::WritesRt;
constexpr std::uint16_t kStore =
    opf::Memory | opf::Store | opf::ReadsRs | opf::ReadsRt;
constexpr std::uint16_t kBr2 = opf::Control | opf::Branch | opf::ReadsRs |
                               opf::ReadsRt;
constexpr std::uint16_t kBr1 = opf::Control | opf::Branch | opf::ReadsRs;
constexpr std::uint16_t kPriv = opf::Privileged | opf::Fence;

/**
 * The declarative per-operation metadata table, indexed by Op. This is
 * the single source of truth for instruction classification; the
 * DecodedInst predicates, decode()'s flag byte, and regReadSet() /
 * regWriteSet() are all views of it.
 */
constexpr std::uint16_t kOpFlags[NumOps] = {
    /* Invalid */ 0,
    /* Sll    */ opf::ReadsRt | opf::WritesRd,
    /* Srl    */ opf::ReadsRt | opf::WritesRd,
    /* Sra    */ opf::ReadsRt | opf::WritesRd,
    /* Sllv   */ kRRR,
    /* Srlv   */ kRRR,
    /* Srav   */ kRRR,
    /* Add    */ kRRR,
    /* Addu   */ kRRR,
    /* Sub    */ kRRR,
    /* Subu   */ kRRR,
    /* And    */ kRRR,
    /* Or     */ kRRR,
    /* Xor    */ kRRR,
    /* Nor    */ kRRR,
    /* Slt    */ kRRR,
    /* Sltu   */ kRRR,
    /* Mult   */ opf::ReadsRs | opf::ReadsRt,
    /* Multu  */ opf::ReadsRs | opf::ReadsRt,
    /* Div    */ opf::ReadsRs | opf::ReadsRt,
    /* Divu   */ opf::ReadsRs | opf::ReadsRt,
    /* Mfhi   */ opf::WritesRd,
    /* Mthi   */ opf::ReadsRs,
    /* Mflo   */ opf::WritesRd,
    /* Mtlo   */ opf::ReadsRs,
    /* Addi   */ kImm,
    /* Addiu  */ kImm,
    /* Slti   */ kImm,
    /* Sltiu  */ kImm,
    /* Andi   */ kImm,
    /* Ori    */ kImm,
    /* Xori   */ kImm,
    /* Lui    */ opf::WritesRt,
    /* J      */ opf::Control | opf::Jump,
    /* Jal    */ opf::Control | opf::Jump | opf::WritesRA,
    /* Jr     */ opf::Control | opf::Jump | opf::ReadsRs,
    /* Jalr   */ opf::Control | opf::Jump | opf::ReadsRs | opf::WritesRd,
    /* Beq    */ kBr2,
    /* Bne    */ kBr2,
    /* Blez   */ kBr1,
    /* Bgtz   */ kBr1,
    /* Bltz   */ kBr1,
    /* Bgez   */ kBr1,
    /* Bltzal */ kBr1 | opf::WritesRA,
    /* Bgezal */ kBr1 | opf::WritesRA,
    /* Lb     */ kLoad,
    /* Lbu    */ kLoad,
    /* Lh     */ kLoad,
    /* Lhu    */ kLoad,
    /* Lw     */ kLoad,
    /* Sb     */ kStore,
    /* Sh     */ kStore,
    /* Sw     */ kStore,
    /* Syscall*/ opf::Trap,
    /* Break  */ opf::Trap,
    /* Mfc0   */ kPriv | opf::WritesRt,
    /* Mtc0   */ kPriv | opf::ReadsRt,
    /* Tlbr   */ kPriv,
    /* Tlbwi  */ kPriv,
    /* Tlbwr  */ kPriv,
    /* Tlbp   */ kPriv,
    /* Rfe    */ kPriv | opf::Return,
    /* Mfux   */ opf::WritesRt,
    /* Mtux   */ opf::ReadsRt,
    /* Xret   */ opf::Return,
    /* Tlbmp  */ opf::Fence | opf::ReadsRs | opf::ReadsRt,
    /* Hcall  */ opf::Fence,
};

constexpr std::uint16_t
flagsOf(Op op)
{
    return kOpFlags[static_cast<unsigned>(op)];
}

// Spot-check the table ordering against the Op enum; a misaligned
// entry would silently misclassify instructions.
static_assert(flagsOf(Op::Invalid) == 0);
static_assert(flagsOf(Op::Sltu) == kRRR);
static_assert(flagsOf(Op::Lui) == opf::WritesRt);
static_assert(flagsOf(Op::Jal) & opf::WritesRA);
static_assert(flagsOf(Op::Bgezal) & opf::WritesRA);
static_assert(flagsOf(Op::Lw) & opf::Load);
static_assert(flagsOf(Op::Sw) & opf::Store);
static_assert(flagsOf(Op::Break) & opf::Trap);
static_assert(flagsOf(Op::Rfe) == (kPriv | opf::Return));
static_assert(flagsOf(Op::Hcall) == opf::Fence);

// Shorthand for the cost-class table below.
constexpr CostClass S_ = CostClass::Simple;
constexpr CostClass MU = CostClass::MultiplyUnit;
constexpr CostClass DU = CostClass::DivideUnit;
constexpr CostClass LD = CostClass::MemoryLoad;
constexpr CostClass ST = CostClass::MemoryStore;
constexpr CostClass CT = CostClass::ControlTransfer;

/**
 * The declarative per-operation cost-class table, indexed by Op. The
 * interpreter's charge sites (sim/cpu.cc) and the static WCET bound
 * (analysis/wcet.cc) both read instruction costs through this table,
 * so a cost-model change lands in both by construction.
 */
constexpr CostClass kOpCostClass[NumOps] = {
    /* Invalid */ S_,
    /* Sll    */ S_, /* Srl    */ S_, /* Sra    */ S_,
    /* Sllv   */ S_, /* Srlv   */ S_, /* Srav   */ S_,
    /* Add    */ S_, /* Addu   */ S_, /* Sub    */ S_, /* Subu   */ S_,
    /* And    */ S_, /* Or     */ S_, /* Xor    */ S_, /* Nor    */ S_,
    /* Slt    */ S_, /* Sltu   */ S_,
    /* Mult   */ MU, /* Multu  */ MU, /* Div    */ DU, /* Divu   */ DU,
    /* Mfhi   */ S_, /* Mthi   */ S_, /* Mflo   */ S_, /* Mtlo   */ S_,
    /* Addi   */ S_, /* Addiu  */ S_, /* Slti   */ S_, /* Sltiu  */ S_,
    /* Andi   */ S_, /* Ori    */ S_, /* Xori   */ S_, /* Lui    */ S_,
    /* J      */ CT, /* Jal    */ CT, /* Jr     */ CT, /* Jalr   */ CT,
    /* Beq    */ CT, /* Bne    */ CT, /* Blez   */ CT, /* Bgtz   */ CT,
    /* Bltz   */ CT, /* Bgez   */ CT, /* Bltzal */ CT, /* Bgezal */ CT,
    /* Lb     */ LD, /* Lbu    */ LD, /* Lh     */ LD, /* Lhu    */ LD,
    /* Lw     */ LD,
    /* Sb     */ ST, /* Sh     */ ST, /* Sw     */ ST,
    /* Syscall*/ S_, /* Break  */ S_,
    /* Mfc0   */ S_, /* Mtc0   */ S_,
    /* Tlbr   */ S_, /* Tlbwi  */ S_, /* Tlbwr  */ S_, /* Tlbp   */ S_,
    /* Rfe    */ S_,
    /* Mfux   */ S_, /* Mtux   */ S_, /* Xret   */ S_,
    /* Tlbmp  */ S_, /* Hcall  */ S_,
};

constexpr CostClass
costOf(Op op)
{
    return kOpCostClass[static_cast<unsigned>(op)];
}

// Spot-check ordering, and check the two tables agree about which
// operations touch memory or transfer control.
static_assert(costOf(Op::Invalid) == S_);
static_assert(costOf(Op::Mult) == MU && costOf(Op::Multu) == MU);
static_assert(costOf(Op::Div) == DU && costOf(Op::Divu) == DU);
static_assert(costOf(Op::Lw) == LD && costOf(Op::Lbu) == LD);
static_assert(costOf(Op::Sw) == ST && costOf(Op::Sb) == ST);
static_assert(costOf(Op::J) == CT && costOf(Op::Bgezal) == CT);
static_assert(costOf(Op::Hcall) == S_ && costOf(Op::Rfe) == S_);
static_assert((flagsOf(Op::Lw) & opf::Load) && costOf(Op::Lw) == LD);
static_assert((flagsOf(Op::Sw) & opf::Store) && costOf(Op::Sw) == ST);
static_assert((flagsOf(Op::Jr) & opf::Control) && costOf(Op::Jr) == CT);

Op
decodeSpecial(Word raw)
{
    switch (static_cast<Funct>(bits(raw, 5, 0))) {
      case Funct::Sll:     return Op::Sll;
      case Funct::Srl:     return Op::Srl;
      case Funct::Sra:     return Op::Sra;
      case Funct::Sllv:    return Op::Sllv;
      case Funct::Srlv:    return Op::Srlv;
      case Funct::Srav:    return Op::Srav;
      case Funct::Jr:      return Op::Jr;
      case Funct::Jalr:    return Op::Jalr;
      case Funct::Syscall: return Op::Syscall;
      case Funct::Break:   return Op::Break;
      case Funct::Mfhi:    return Op::Mfhi;
      case Funct::Mthi:    return Op::Mthi;
      case Funct::Mflo:    return Op::Mflo;
      case Funct::Mtlo:    return Op::Mtlo;
      case Funct::Mult:    return Op::Mult;
      case Funct::Multu:   return Op::Multu;
      case Funct::Div:     return Op::Div;
      case Funct::Divu:    return Op::Divu;
      case Funct::Add:     return Op::Add;
      case Funct::Addu:    return Op::Addu;
      case Funct::Sub:     return Op::Sub;
      case Funct::Subu:    return Op::Subu;
      case Funct::And:     return Op::And;
      case Funct::Or:      return Op::Or;
      case Funct::Xor:     return Op::Xor;
      case Funct::Nor:     return Op::Nor;
      case Funct::Slt:     return Op::Slt;
      case Funct::Sltu:    return Op::Sltu;
      default:             return Op::Invalid;
    }
}

Op
decodeRegImm(Word raw)
{
    switch (static_cast<RegImmOp>(bits(raw, 20, 16))) {
      case RegImmOp::Bltz:   return Op::Bltz;
      case RegImmOp::Bgez:   return Op::Bgez;
      case RegImmOp::Bltzal: return Op::Bltzal;
      case RegImmOp::Bgezal: return Op::Bgezal;
      default:               return Op::Invalid;
    }
}

Op
decodeCop0(Word raw)
{
    if (bit(raw, 25)) {
        switch (static_cast<Cop0Funct>(bits(raw, 5, 0))) {
          case Cop0Funct::Tlbr:  return Op::Tlbr;
          case Cop0Funct::Tlbwi: return Op::Tlbwi;
          case Cop0Funct::Tlbwr: return Op::Tlbwr;
          case Cop0Funct::Tlbp:  return Op::Tlbp;
          case Cop0Funct::Rfe:   return Op::Rfe;
          default:               return Op::Invalid;
        }
    }
    switch (static_cast<Cop0Rs>(bits(raw, 25, 21))) {
      case Cop0Rs::Mfc0: return Op::Mfc0;
      case Cop0Rs::Mtc0: return Op::Mtc0;
      default:           return Op::Invalid;
    }
}

Op
decodeCop3(Word raw)
{
    if (bit(raw, 25)) {
        switch (static_cast<Cop3Funct>(bits(raw, 5, 0))) {
          case Cop3Funct::Xret: return Op::Xret;
          default:              return Op::Invalid;
        }
    }
    switch (static_cast<Cop3Rs>(bits(raw, 25, 21))) {
      case Cop3Rs::Mfux: return Op::Mfux;
      case Cop3Rs::Mtux: return Op::Mtux;
      default:           return Op::Invalid;
    }
}

} // namespace

std::uint16_t
opFlags(Op op)
{
    return kOpFlags[static_cast<unsigned>(op)];
}

CostClass
opCostClass(Op op)
{
    return kOpCostClass[static_cast<unsigned>(op)];
}

Cycles
opExecuteExtraCycles(Op op, const CostModel &cost)
{
    switch (opCostClass(op)) {
      case CostClass::MultiplyUnit: return cost.multCost - cost.baseCost;
      case CostClass::DivideUnit:   return cost.divCost - cost.baseCost;
      default:                      return 0;
    }
}

Cycles
opMemoryExtraCycles(Op op, const CostModel &cost)
{
    switch (opCostClass(op)) {
      case CostClass::MemoryLoad:  return cost.loadExtra;
      case CostClass::MemoryStore: return cost.storeExtra;
      default:                     return 0;
    }
}

Cycles
opTakenControlExtraCycles(Op op, const CostModel &cost)
{
    return opCostClass(op) == CostClass::ControlTransfer
               ? cost.takenBranchExtra
               : 0;
}

Word
regReadSet(const DecodedInst &inst)
{
    std::uint16_t f = opFlags(inst.op);
    Word mask = 0;
    if (f & opf::ReadsRs)
        mask |= Word{1} << inst.rs;
    if (f & opf::ReadsRt)
        mask |= Word{1} << inst.rt;
    return mask & ~Word{1}; // $zero reads are vacuous
}

Word
regWriteSet(const DecodedInst &inst)
{
    std::uint16_t f = opFlags(inst.op);
    Word mask = 0;
    if (f & opf::WritesRd)
        mask |= Word{1} << inst.rd;
    if (f & opf::WritesRt)
        mask |= Word{1} << inst.rt;
    if (f & opf::WritesRA)
        mask |= Word{1} << RA;
    return mask & ~Word{1}; // writes to $zero are discarded
}

DecodedInst
decode(Word raw)
{
    DecodedInst inst;
    inst.raw = raw;
    inst.rs = bits(raw, 25, 21);
    inst.rt = bits(raw, 20, 16);
    inst.rd = bits(raw, 15, 11);
    inst.shamt = bits(raw, 10, 6);
    inst.imm = bits(raw, 15, 0);
    inst.simm = signExtend(inst.imm, 16);
    inst.target = bits(raw, 25, 0);

    switch (static_cast<Opcode>(bits(raw, 31, 26))) {
      case Opcode::Special: inst.op = decodeSpecial(raw); break;
      case Opcode::RegImm:  inst.op = decodeRegImm(raw); break;
      case Opcode::J:       inst.op = Op::J; break;
      case Opcode::Jal:     inst.op = Op::Jal; break;
      case Opcode::Beq:     inst.op = Op::Beq; break;
      case Opcode::Bne:     inst.op = Op::Bne; break;
      case Opcode::Blez:    inst.op = Op::Blez; break;
      case Opcode::Bgtz:    inst.op = Op::Bgtz; break;
      case Opcode::Addi:    inst.op = Op::Addi; break;
      case Opcode::Addiu:   inst.op = Op::Addiu; break;
      case Opcode::Slti:    inst.op = Op::Slti; break;
      case Opcode::Sltiu:   inst.op = Op::Sltiu; break;
      case Opcode::Andi:    inst.op = Op::Andi; break;
      case Opcode::Ori:     inst.op = Op::Ori; break;
      case Opcode::Xori:    inst.op = Op::Xori; break;
      case Opcode::Lui:     inst.op = Op::Lui; break;
      case Opcode::Cop0:    inst.op = decodeCop0(raw); break;
      case Opcode::Cop3:    inst.op = decodeCop3(raw); break;
      case Opcode::Lb:      inst.op = Op::Lb; break;
      case Opcode::Lh:      inst.op = Op::Lh; break;
      case Opcode::Lw:      inst.op = Op::Lw; break;
      case Opcode::Lbu:     inst.op = Op::Lbu; break;
      case Opcode::Lhu:     inst.op = Op::Lhu; break;
      case Opcode::Sb:      inst.op = Op::Sb; break;
      case Opcode::Sh:      inst.op = Op::Sh; break;
      case Opcode::Sw:      inst.op = Op::Sw; break;
      case Opcode::Tlbmp:   inst.op = Op::Tlbmp; break;
      case Opcode::Hcall:   inst.op = Op::Hcall; break;
      default:              inst.op = Op::Invalid; break;
    }
    // The low five opf:: bits coincide with DecodedInst::Flag.
    static_assert(unsigned{opf::Control} == DecodedInst::FlagControl);
    static_assert(unsigned{opf::Memory} == DecodedInst::FlagMemory);
    static_assert(unsigned{opf::Store} == DecodedInst::FlagStore);
    static_assert(unsigned{opf::Privileged} ==
                  DecodedInst::FlagPrivileged);
    static_assert(unsigned{opf::Fence} == DecodedInst::FlagFence);
    inst.flags = static_cast<std::uint8_t>(opFlags(inst.op) & 0x1fu);
    return inst;
}

const char *
regName(unsigned reg)
{
    if (reg >= NumRegs)
        UEXC_PANIC("register number %u out of range", reg);
    return kRegNames[reg];
}

std::string
disassemble(const DecodedInst &inst)
{
    return disassemble(inst, 0);
}

std::string
disassemble(const DecodedInst &inst, Addr pc)
{
    using detail::formatString;
    const char *rs = regName(inst.rs);
    const char *rt = regName(inst.rt);
    const char *rd = regName(inst.rd);
    SWord simm = static_cast<SWord>(inst.simm);
    Addr btarget = pc + 4 + (inst.simm << 2);
    Addr jtarget = ((pc + 4) & 0xf0000000u) | (inst.target << 2);

    switch (inst.op) {
      case Op::Sll:
        if (inst.raw == 0)
            return "nop";
        return formatString("sll %s, %s, %u", rd, rt, inst.shamt);
      case Op::Srl:  return formatString("srl %s, %s, %u", rd, rt,
                                         inst.shamt);
      case Op::Sra:  return formatString("sra %s, %s, %u", rd, rt,
                                         inst.shamt);
      case Op::Sllv: return formatString("sllv %s, %s, %s", rd, rt, rs);
      case Op::Srlv: return formatString("srlv %s, %s, %s", rd, rt, rs);
      case Op::Srav: return formatString("srav %s, %s, %s", rd, rt, rs);
      case Op::Add:  return formatString("add %s, %s, %s", rd, rs, rt);
      case Op::Addu: return formatString("addu %s, %s, %s", rd, rs, rt);
      case Op::Sub:  return formatString("sub %s, %s, %s", rd, rs, rt);
      case Op::Subu: return formatString("subu %s, %s, %s", rd, rs, rt);
      case Op::And:  return formatString("and %s, %s, %s", rd, rs, rt);
      case Op::Or:   return formatString("or %s, %s, %s", rd, rs, rt);
      case Op::Xor:  return formatString("xor %s, %s, %s", rd, rs, rt);
      case Op::Nor:  return formatString("nor %s, %s, %s", rd, rs, rt);
      case Op::Slt:  return formatString("slt %s, %s, %s", rd, rs, rt);
      case Op::Sltu: return formatString("sltu %s, %s, %s", rd, rs, rt);
      case Op::Mult: return formatString("mult %s, %s", rs, rt);
      case Op::Multu:return formatString("multu %s, %s", rs, rt);
      case Op::Div:  return formatString("div %s, %s", rs, rt);
      case Op::Divu: return formatString("divu %s, %s", rs, rt);
      case Op::Mfhi: return formatString("mfhi %s", rd);
      case Op::Mthi: return formatString("mthi %s", rs);
      case Op::Mflo: return formatString("mflo %s", rd);
      case Op::Mtlo: return formatString("mtlo %s", rs);
      case Op::Addi: return formatString("addi %s, %s, %d", rt, rs, simm);
      case Op::Addiu:return formatString("addiu %s, %s, %d", rt, rs, simm);
      case Op::Slti: return formatString("slti %s, %s, %d", rt, rs, simm);
      case Op::Sltiu:return formatString("sltiu %s, %s, %d", rt, rs, simm);
      case Op::Andi: return formatString("andi %s, %s, 0x%x", rt, rs,
                                         inst.imm);
      case Op::Ori:  return formatString("ori %s, %s, 0x%x", rt, rs,
                                         inst.imm);
      case Op::Xori: return formatString("xori %s, %s, 0x%x", rt, rs,
                                         inst.imm);
      case Op::Lui:  return formatString("lui %s, 0x%x", rt, inst.imm);
      case Op::J:    return formatString("j 0x%08x", jtarget);
      case Op::Jal:  return formatString("jal 0x%08x", jtarget);
      case Op::Jr:   return formatString("jr %s", rs);
      case Op::Jalr: return formatString("jalr %s, %s", rd, rs);
      case Op::Beq:  return formatString("beq %s, %s, 0x%08x", rs, rt,
                                         btarget);
      case Op::Bne:  return formatString("bne %s, %s, 0x%08x", rs, rt,
                                         btarget);
      case Op::Blez: return formatString("blez %s, 0x%08x", rs, btarget);
      case Op::Bgtz: return formatString("bgtz %s, 0x%08x", rs, btarget);
      case Op::Bltz: return formatString("bltz %s, 0x%08x", rs, btarget);
      case Op::Bgez: return formatString("bgez %s, 0x%08x", rs, btarget);
      case Op::Bltzal: return formatString("bltzal %s, 0x%08x", rs,
                                           btarget);
      case Op::Bgezal: return formatString("bgezal %s, 0x%08x", rs,
                                           btarget);
      case Op::Lb:   return formatString("lb %s, %d(%s)", rt, simm, rs);
      case Op::Lbu:  return formatString("lbu %s, %d(%s)", rt, simm, rs);
      case Op::Lh:   return formatString("lh %s, %d(%s)", rt, simm, rs);
      case Op::Lhu:  return formatString("lhu %s, %d(%s)", rt, simm, rs);
      case Op::Lw:   return formatString("lw %s, %d(%s)", rt, simm, rs);
      case Op::Sb:   return formatString("sb %s, %d(%s)", rt, simm, rs);
      case Op::Sh:   return formatString("sh %s, %d(%s)", rt, simm, rs);
      case Op::Sw:   return formatString("sw %s, %d(%s)", rt, simm, rs);
      case Op::Syscall: return "syscall";
      case Op::Break:
        return formatString("break 0x%x", bits(inst.raw, 25, 6));
      case Op::Mfc0: return formatString("mfc0 %s, $%u", rt, inst.rd);
      case Op::Mtc0: return formatString("mtc0 %s, $%u", rt, inst.rd);
      case Op::Tlbr:  return "tlbr";
      case Op::Tlbwi: return "tlbwi";
      case Op::Tlbwr: return "tlbwr";
      case Op::Tlbp:  return "tlbp";
      case Op::Rfe:   return "rfe";
      case Op::Mfux:  return formatString("mfux %s, $ux%u", rt, inst.rd);
      case Op::Mtux:  return formatString("mtux %s, $ux%u", rt, inst.rd);
      case Op::Xret:  return "xret";
      case Op::Tlbmp: return formatString("tlbmp %s, %s", rs, rt);
      case Op::Hcall:
        return formatString("hcall 0x%x", inst.target);
      case Op::Invalid:
        return formatString(".word 0x%08x", inst.raw);
    }
    return formatString(".word 0x%08x", inst.raw);
}

} // namespace uexc::sim
