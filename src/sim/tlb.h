/**
 * @file
 * The software-managed translation lookaside buffer.
 *
 * 64 fully-associative entries in R3000 EntryHi/EntryLo format, with
 * ASID tags and the extension U ("user protection modifiable") bit in
 * EntryLo. Entries 0-7 are wired (never chosen by tlbwr); the kernel
 * uses them for pinned mappings such as the user exception frame page
 * (paper section 3.2).
 */

#ifndef UEXC_SIM_TLB_H
#define UEXC_SIM_TLB_H

#include <array>
#include <optional>

#include "common/types.h"
#include "sim/cp0.h"

namespace uexc::sim {

/** One TLB entry, exactly the two architectural words. */
struct TlbEntry
{
    Word hi = 0;   ///< VPN | ASID
    Word lo = 0;   ///< PFN | N | D | V | G | U

    Word vpn() const { return hi & entryhi::VpnMask; }
    unsigned asid() const
    {
        return (hi & entryhi::AsidMask) >> entryhi::AsidShift;
    }
    Word pfn() const { return lo & entrylo::PfnMask; }
    bool valid() const { return lo & entrylo::V; }
    bool dirty() const { return lo & entrylo::D; }
    bool global() const { return lo & entrylo::G; }
    bool userModifiable() const { return lo & entrylo::U; }
    bool cacheable() const { return !(lo & entrylo::N); }
};

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t misses = 0;
};

/**
 * The TLB proper. The CPU drives it for translation and for the
 * tlbr/tlbwi/tlbwr/tlbp instructions; the kernel manipulates it only
 * through those instructions (plus invalidation helpers used by the
 * host-side kernel services, standing in for the handful of kernel
 * TLB loops we do not write in guest assembly).
 */
class Tlb
{
  public:
    /** Number of entries (R3000). */
    static constexpr unsigned NumEntries = 64;
    /** Entries below this index are never replaced by tlbwr. */
    static constexpr unsigned WiredEntries = 8;

    Tlb();

    /**
     * Find the entry matching @p vaddr under @p asid (VPN match and
     * ASID match-or-global).
     *
     * @return entry index, or nullopt on miss
     */
    std::optional<unsigned> probe(Addr vaddr, unsigned asid);

    /** probe() without statistics update (for tlbp and host peeks). */
    std::optional<unsigned> probeQuiet(Addr vaddr, unsigned asid) const;

    const TlbEntry &entry(unsigned index) const;
    void setEntry(unsigned index, Word hi, Word lo);

    /**
     * Clear the valid bit of any entry mapping @p vaddr under
     * @p asid (kernel shootdown after a protection change).
     */
    void invalidate(Addr vaddr, unsigned asid);

    /** Invalidate every non-global entry with the given ASID. */
    void invalidateAsid(unsigned asid);

    /** Invalidate everything. */
    void flush();

    const TlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TlbStats(); }
    /**
     * Snapshot restore only: entries go back through setEntry (which
     * bumps generation(), correctly dropping host translation caches),
     * then the counters are reinstated here.
     */
    void restoreStats(const TlbStats &stats) { stats_ = stats; }

    /**
     * Monotonic count of TLB content mutations (setEntry, invalidate,
     * invalidateAsid, flush). Host-side translation caches (the CPU's
     * micro-TLBs and predecoded-page map) compare this against the
     * value they captured at fill time and drop themselves when it
     * moved; it is not architectural state.
     */
    std::uint64_t generation() const { return generation_; }

    /**
     * Account a lookup that the CPU's host-side micro-TLB resolved
     * without probing: statistics must not depend on whether the fast
     * interpreter is enabled, so a micro-TLB hit records the lookup
     * the full probe would have performed (a micro-TLB entry is only
     * ever filled from a successful probe, so it cannot mask a miss).
     */
    void recordMicroHit() { stats_.lookups++; }

  private:
    std::array<TlbEntry, NumEntries> entries_;
    TlbStats stats_;
    std::uint64_t generation_ = 0;
};

} // namespace uexc::sim

#endif // UEXC_SIM_TLB_H
