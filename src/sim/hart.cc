#include "sim/hart.h"

#include <algorithm>

#include "sim/snapshot.h"

namespace uexc::sim {

Hart::Hart(unsigned id, const CpuConfig &config)
    : id_(id)
{
    regs_.fill(0);
    if (config.cachesEnabled) {
        icache_ = std::make_unique<Cache>(config.icacheBytes,
                                          config.icacheLineBytes);
        dcache_ = std::make_unique<Cache>(config.dcacheBytes,
                                          config.dcacheLineBytes);
    }
    // PrId carries the hart number in [31:24] so guest code can index
    // per-hart structures without any memory-based coordination. Hart
    // 0 keeps the historical value 0x220 exactly.
    cp0_.setPrId(0x00000220u | (Word(id) << 24));
}

void
Hart::clearStats()
{
    stats_ = CpuStats();
    tlb_.clearStats();
    if (icache_)
        icache_->clearStats();
    if (dcache_)
        dcache_->clearStats();
}

void
Hart::flushMicroTlb()
{
    dtlb_.fill(MicroTlbEntry{});
    fetchKey_ = kInvalidKey;
    fetchPage_ = nullptr;
    tlbGenSeen_ = tlb_.generation();
}

void
Hart::flushHostCaches()
{
    decodedPages_.clear();
    flushMicroTlb();
}

void
Hart::snapshotSave(SnapshotWriter &w) const
{
    w.u32(id_);

    for (Word r : regs_)
        w.u32(r);
    w.u32(pc_);
    w.u32(npc_);
    w.u32(hi_);
    w.u32(lo_);
    // The only inter-instruction latches: whether the next instruction
    // sits in a delay slot, and the store-run length the cost model
    // tracks. The other latches (excRaised_, stagedNpc_, branchTaken_,
    // redirect_) are written and consumed within one step and are dead
    // at the instruction boundaries where snapshots are taken.
    w.boolean(prevWasControl_);
    w.u32(consecutiveStores_);
    w.boolean(halted_);

    std::vector<Addr> bps(breakpoints_.begin(), breakpoints_.end());
    std::sort(bps.begin(), bps.end());
    w.u32(std::uint32_t(bps.size()));
    for (Addr a : bps)
        w.u32(a);

    w.u64(stats_.instructions);
    w.u64(stats_.cycles);
    w.u64(stats_.loads);
    w.u64(stats_.stores);
    w.u64(stats_.branches);
    w.u64(stats_.exceptionsTaken);
    w.u64(stats_.tlbRefillFaults);
    w.u64(stats_.userVectoredExceptions);
    for (std::uint64_t c : stats_.perExcCode)
        w.u64(c);

    for (unsigned r = 0; r < 32; r++)
        w.u32(cp0_.rawReg(r));
    for (unsigned r = 0; r < NumUxRegs; r++)
        w.u32(cp0_.uxReg(static_cast<UxReg>(r)));
    w.u32(cp0_.randomState());

    for (unsigned i = 0; i < Tlb::NumEntries; i++) {
        w.u32(tlb_.entry(i).hi);
        w.u32(tlb_.entry(i).lo);
    }
    w.u64(tlb_.stats().lookups);
    w.u64(tlb_.stats().misses);

    w.boolean(icache_ != nullptr);
    if (icache_)
        icache_->snapshotSave(w);
    w.boolean(dcache_ != nullptr);
    if (dcache_)
        dcache_->snapshotSave(w);
}

void
Hart::snapshotLoad(SnapshotReader &r)
{
    std::uint32_t id = r.u32();
    if (id != id_)
        r.fail("hart id mismatch: image hart " + std::to_string(id) +
               ", machine hart " + std::to_string(id_));

    for (Word &reg : regs_)
        reg = r.u32();
    regs_[0] = 0;
    pc_ = r.u32();
    npc_ = r.u32();
    hi_ = r.u32();
    lo_ = r.u32();
    prevWasControl_ = r.boolean();
    consecutiveStores_ = r.u32();
    halted_ = r.boolean();
    excRaised_ = false;
    stagedNpc_ = 0;
    branchTaken_ = false;
    redirect_ = false;

    breakpoints_.clear();
    std::uint32_t nbps = r.u32();
    for (std::uint32_t i = 0; i < nbps; i++)
        breakpoints_.insert(r.u32());

    stats_.instructions = r.u64();
    stats_.cycles = r.u64();
    stats_.loads = r.u64();
    stats_.stores = r.u64();
    stats_.branches = r.u64();
    stats_.exceptionsTaken = r.u64();
    stats_.tlbRefillFaults = r.u64();
    stats_.userVectoredExceptions = r.u64();
    for (std::uint64_t &c : stats_.perExcCode)
        c = r.u64();

    for (unsigned reg = 0; reg < 32; reg++)
        cp0_.setRawReg(reg, r.u32());
    for (unsigned reg = 0; reg < NumUxRegs; reg++)
        cp0_.setUxReg(static_cast<UxReg>(reg), r.u32());
    std::uint32_t random = r.u32();
    if (random > 63)
        r.fail("CP0 Random counter " + std::to_string(random) +
               " out of range");
    cp0_.setRandomState(random);

    // setEntry bumps Tlb::generation, so every micro-TLB filled under
    // the pre-restore contents self-invalidates.
    TlbStats tlb_stats;
    for (unsigned i = 0; i < Tlb::NumEntries; i++) {
        Word hi = r.u32();
        Word lo = r.u32();
        tlb_.setEntry(i, hi, lo);
    }
    tlb_stats.lookups = r.u64();
    tlb_stats.misses = r.u64();
    tlb_.restoreStats(tlb_stats);

    bool has_icache = r.boolean();
    if (has_icache != (icache_ != nullptr))
        r.fail("icache presence mismatch");
    if (icache_)
        icache_->snapshotLoad(r);
    bool has_dcache = r.boolean();
    if (has_dcache != (dcache_ != nullptr))
        r.fail("dcache presence mismatch");
    if (dcache_)
        dcache_->snapshotLoad(r);

    // Derived host state is rebuilt lazily from the restored memory,
    // TLB, and page versions.
    flushHostCaches();
}

void
Hart::saveRound(RoundContext &ctx) const
{
    ctx.regs = regs_;
    ctx.pc = pc_;
    ctx.npc = npc_;
    ctx.hi = hi_;
    ctx.lo = lo_;
    ctx.prevWasControl = prevWasControl_;
    ctx.consecutiveStores = consecutiveStores_;
    ctx.halted = halted_;
    ctx.stats = stats_;
    ctx.cp0 = cp0_;
    ctx.tlb = tlb_;
    if (icache_)
        ctx.icache = *icache_;
    else
        ctx.icache.reset();
    if (dcache_)
        ctx.dcache = *dcache_;
    else
        ctx.dcache.reset();
}

void
Hart::restoreRound(const RoundContext &ctx)
{
    regs_ = ctx.regs;
    pc_ = ctx.pc;
    npc_ = ctx.npc;
    hi_ = ctx.hi;
    lo_ = ctx.lo;
    prevWasControl_ = ctx.prevWasControl;
    consecutiveStores_ = ctx.consecutiveStores;
    halted_ = ctx.halted;
    // As with snapshotLoad: the intra-instruction latches are dead at
    // the quantum boundaries where rounds begin and end.
    excRaised_ = false;
    stagedNpc_ = 0;
    branchTaken_ = false;
    redirect_ = false;
    stats_ = ctx.stats;
    cp0_ = ctx.cp0;
    tlb_ = ctx.tlb;
    if (ctx.icache)
        *icache_ = *ctx.icache;
    if (ctx.dcache)
        *dcache_ = *ctx.dcache;
    // The copied-back Tlb carries the generation it had at save time,
    // which may equal a generation the aborted round also saw —
    // flushing resets tlbGenSeen_ alongside, so nothing stale can
    // revalidate.
    flushHostCaches();
}

} // namespace uexc::sim
