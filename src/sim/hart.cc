#include "sim/hart.h"

namespace uexc::sim {

Hart::Hart(unsigned id, const CpuConfig &config)
    : id_(id)
{
    regs_.fill(0);
    if (config.cachesEnabled) {
        icache_ = std::make_unique<Cache>(config.icacheBytes,
                                          config.icacheLineBytes);
        dcache_ = std::make_unique<Cache>(config.dcacheBytes,
                                          config.dcacheLineBytes);
    }
    // PrId carries the hart number in [31:24] so guest code can index
    // per-hart structures without any memory-based coordination. Hart
    // 0 keeps the historical value 0x220 exactly.
    cp0_.setPrId(0x00000220u | (Word(id) << 24));
}

void
Hart::clearStats()
{
    stats_ = CpuStats();
    tlb_.clearStats();
    if (icache_)
        icache_->clearStats();
    if (dcache_)
        dcache_->clearStats();
}

void
Hart::flushMicroTlb()
{
    dtlb_.fill(MicroTlbEntry{});
    fetchKey_ = kInvalidKey;
    fetchPage_ = nullptr;
    tlbGenSeen_ = tlb_.generation();
}

void
Hart::flushHostCaches()
{
    decodedPages_.clear();
    flushMicroTlb();
}

} // namespace uexc::sim
