#include "sim/profile.h"

#include "common/logging.h"

namespace uexc::sim {

void
PhaseProfiler::addPhase(const std::string &name, Addr begin, Addr end)
{
    if (end < begin)
        UEXC_FATAL("profiler: phase '%s' has end < begin", name.c_str());
    PhaseStats ps;
    ps.name = name;
    ps.begin = begin;
    ps.end = end;
    phases_.push_back(ps);
}

void
PhaseProfiler::onInst(Addr pc, const DecodedInst &inst, Cycles cost)
{
    (void)inst;
    for (PhaseStats &ps : phases_) {
        if (pc >= ps.begin && pc < ps.end) {
            ps.instructions++;
            ps.cycles += cost;
            return;
        }
    }
    unattributed_++;
}

void
PhaseProfiler::onException(ExcCode code, Addr epc, Addr vector)
{
    (void)code;
    (void)epc;
    (void)vector;
    exceptions_++;
}

void
PhaseProfiler::clearCounts()
{
    for (PhaseStats &ps : phases_) {
        ps.instructions = 0;
        ps.cycles = 0;
    }
    unattributed_ = 0;
    exceptions_ = 0;
}

} // namespace uexc::sim
