/**
 * @file
 * System coprocessor (CP0) state: R3000-style status/cause/EPC and TLB
 * index registers, plus this project's architectural extensions (the
 * user-vectoring status bits and the Tera-style user exception
 * register file of Thekkath & Levy section 2).
 */

#ifndef UEXC_SIM_CP0_H
#define UEXC_SIM_CP0_H

#include <array>

#include "common/types.h"
#include "sim/isa.h"

namespace uexc::sim {

/** CP0 register numbers (R3000 assignments). */
namespace cp0reg {
constexpr unsigned Index    = 0;
constexpr unsigned Random   = 1;
constexpr unsigned EntryLo  = 2;
constexpr unsigned Context  = 4;
constexpr unsigned BadVAddr = 8;
constexpr unsigned EntryHi  = 10;
constexpr unsigned Status   = 12;
constexpr unsigned Cause    = 13;
constexpr unsigned Epc      = 14;
constexpr unsigned PrId     = 15;
} // namespace cp0reg

/** Status register bits. */
namespace status {
constexpr Word IEc = 1u << 0;  ///< current interrupt enable
constexpr Word KUc = 1u << 1;  ///< current mode: 1 = user
constexpr Word IEp = 1u << 2;  ///< previous interrupt enable
constexpr Word KUp = 1u << 3;  ///< previous mode
constexpr Word IEo = 1u << 4;  ///< old interrupt enable
constexpr Word KUo = 1u << 5;  ///< old mode
/**
 * Extension (unused bits 6/7 of the R3000 status word): UX is set by
 * hardware while a user-vectored exception is being serviced, so a
 * recursive exception demotes to the kernel (paper section 2.2); UV
 * enables direct user-mode exception vectoring for this process.
 * Both bits are kernel-writable only, like the rest of the register;
 * UX is also set/cleared by the user-vectoring hardware itself.
 */
constexpr Word UX = 1u << 6;
constexpr Word UV = 1u << 7;
/** Mask of the six-bit KU/IE stack. */
constexpr Word KuIeMask = 0x3fu;
} // namespace status

/** Cause register fields. */
namespace cause {
constexpr unsigned ExcCodeShift = 2;
constexpr Word ExcCodeMask = 0x1fu << ExcCodeShift;
constexpr Word BD = 1u << 31;   ///< exception in branch delay slot
} // namespace cause

/** Exception codes (R3000 ExcCode values). */
enum class ExcCode : unsigned
{
    Int  = 0,   ///< interrupt (asynchronous; unchanged by this work)
    Mod  = 1,   ///< TLB modification (store to clean/write-protected)
    TlbL = 2,   ///< TLB miss or invalid on load/fetch
    TlbS = 3,   ///< TLB miss or invalid on store
    AdEL = 4,   ///< address error on load/fetch (incl. unaligned)
    AdES = 5,   ///< address error on store
    Ibe  = 6,   ///< bus error (instruction)
    Dbe  = 7,   ///< bus error (data)
    Sys  = 8,   ///< syscall instruction
    Bp   = 9,   ///< breakpoint instruction
    Ri   = 10,  ///< reserved instruction
    CpU  = 11,  ///< coprocessor unusable
    Ov   = 12,  ///< arithmetic overflow
};

/** Number of distinct exception codes. */
constexpr unsigned NumExcCodes = 16;

/** Human-readable name of an exception code. */
const char *excName(ExcCode code);

/** EntryHi fields: VPN [31:12], ASID [11:6]. */
namespace entryhi {
constexpr Word VpnMask = 0xfffff000u;
constexpr unsigned AsidShift = 6;
constexpr Word AsidMask = 0x3fu << AsidShift;
} // namespace entryhi

/** EntryLo fields: PFN [31:12], N, D, V, G, and the extension U bit. */
namespace entrylo {
constexpr Word PfnMask = 0xfffff000u;
constexpr Word N = 1u << 11;  ///< non-cacheable
constexpr Word D = 1u << 10;  ///< dirty = write-enabled
constexpr Word V = 1u << 9;   ///< valid
constexpr Word G = 1u << 8;   ///< global (ignore ASID)
/**
 * Extension (paper section 2.2): when set by the kernel, user-mode
 * code may amplify or restrict the V/D protection bits of this entry
 * with the TLBMP instruction. Translation (PFN) remains immutable
 * from user mode.
 */
constexpr Word U = 1u << 7;
} // namespace entrylo

/**
 * The CP0 register file plus the user exception register file.
 * Contains no behaviour beyond field packing; sequencing (status
 * stack push/pop, vectoring) lives in the Cpu.
 */
class Cp0
{
  public:
    Cp0();

    /** Raw register read (mfc0 semantics). */
    Word read(unsigned reg) const;
    /** Raw register write (mtc0 semantics; read-only regs masked). */
    void write(unsigned reg, Word value);

    // convenience accessors -------------------------------------------

    Word statusReg() const { return regs_[cp0reg::Status]; }
    void setStatusReg(Word v) { regs_[cp0reg::Status] = v; }
    Word causeReg() const { return regs_[cp0reg::Cause]; }
    Word epc() const { return regs_[cp0reg::Epc]; }
    Word badVAddr() const { return regs_[cp0reg::BadVAddr]; }
    Word entryHi() const { return regs_[cp0reg::EntryHi]; }
    Word entryLo() const { return regs_[cp0reg::EntryLo]; }
    Word index() const { return regs_[cp0reg::Index]; }

    /**
     * Set the Index register including the probe-failure bit 31,
     * which mtc0 cannot write (tlbp hardware path only).
     */
    void setIndexRaw(Word v) { regs_[cp0reg::Index] = v; }

    /**
     * Set the (guest-read-only) processor id register. Bits [31:24]
     * carry the hart number on a multi-hart machine; hart 0 keeps
     * the reset value 0x220.
     */
    void setPrId(Word v) { regs_[cp0reg::PrId] = v; }
    Word context() const { return regs_[cp0reg::Context]; }

    /** Whether the processor is currently in user mode. */
    bool userMode() const { return statusReg() & status::KUc; }

    /** Current address space id, from EntryHi. */
    unsigned asid() const
    {
        return (entryHi() & entryhi::AsidMask) >> entryhi::AsidShift;
    }

    /**
     * Push the KU/IE stack and record exception state (the hardware
     * side of exception entry).
     *
     * @param epc        PC to restart at (branch PC if in delay slot)
     * @param code       exception code for Cause
     * @param branch_delay whether the faulting instruction was in a
     *                   delay slot (sets Cause.BD)
     */
    void enterException(Addr epc, ExcCode code, bool branch_delay);

    /** Pop the KU/IE stack (rfe semantics). */
    void returnFromException();

    /** Record the faulting VA in BadVAddr, Context and EntryHi. */
    void setFaultAddress(Addr vaddr);

    /** Random register read-and-advance (for tlbwr). */
    unsigned randomIndex();
    /**
     * Advance the random register (called once per instruction).
     * R3000 Random cycles through [8, 63]; entries 0-7 are "wired"
     * and never victims of tlbwr. Inline: this is on the interpreter's
     * per-instruction path.
     */
    void tickRandom() { random_ = (random_ <= 8) ? 63 : random_ - 1; }

    // user exception register file --------------------------------------

    Word uxReg(UxReg reg) const;
    void setUxReg(UxReg reg, Word value);

    // snapshot access ----------------------------------------------------

    /**
     * Raw register cell, bypassing the mfc0/mtc0 masking (Random's
     * shifted read, the read-only set). Snapshot save/restore only:
     * restore must be able to reproduce the exact cell contents,
     * including registers mtc0 cannot write.
     */
    Word rawReg(unsigned reg) const { return regs_[reg]; }
    void setRawReg(unsigned reg, Word value) { regs_[reg] = value; }
    /** The Random register's internal counter (snapshot only). */
    unsigned randomState() const { return random_; }
    void setRandomState(unsigned v) { random_ = v; }

  private:
    std::array<Word, 32> regs_;
    std::array<Word, NumUxRegs> uxRegs_;
    unsigned random_ = 63;
};

} // namespace uexc::sim

#endif // UEXC_SIM_CP0_H
