/**
 * @file
 * Phase-attributed execution profiling.
 *
 * The paper's Table 3 reports the kernel fast-exception handler's
 * instruction count broken down by phase (decode, compatibility
 * check, save state, FP check, TLB check, vector to user). The
 * PhaseProfiler reproduces that measurement: it attributes each
 * retired instruction to the phase whose [begin, end) address range
 * contains its PC. Ranges come from kernel symbols, so the numbers
 * track the generated code, not a hand-maintained table.
 */

#ifndef UEXC_SIM_PROFILE_H
#define UEXC_SIM_PROFILE_H

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/cpu.h"

namespace uexc::sim {

/** Accumulated costs of one phase. */
struct PhaseStats
{
    std::string name;
    Addr begin = 0;
    Addr end = 0;
    InstCount instructions = 0;
    Cycles cycles = 0;
};

/**
 * Attributes retired instructions to named address ranges.
 */
class PhaseProfiler : public InstObserver
{
  public:
    /** Register a phase covering [begin, end). */
    void addPhase(const std::string &name, Addr begin, Addr end);

    void onInst(Addr pc, const DecodedInst &inst, Cycles cost) override;
    void onException(ExcCode code, Addr epc, Addr vector) override;

    const std::vector<PhaseStats> &phases() const { return phases_; }
    /** Instructions retired outside every registered phase. */
    InstCount unattributedInsts() const { return unattributed_; }
    /** Number of exceptions observed. */
    std::uint64_t exceptionsSeen() const { return exceptions_; }

    /** Zero all counters (phase definitions are kept). */
    void clearCounts();

  private:
    std::vector<PhaseStats> phases_;
    InstCount unattributed_ = 0;
    std::uint64_t exceptions_ = 0;
};

} // namespace uexc::sim

#endif // UEXC_SIM_PROFILE_H
