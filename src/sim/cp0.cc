#include "sim/cp0.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::sim {

const char *
excName(ExcCode code)
{
    switch (code) {
      case ExcCode::Int:  return "Int";
      case ExcCode::Mod:  return "Mod";
      case ExcCode::TlbL: return "TLBL";
      case ExcCode::TlbS: return "TLBS";
      case ExcCode::AdEL: return "AdEL";
      case ExcCode::AdES: return "AdES";
      case ExcCode::Ibe:  return "IBE";
      case ExcCode::Dbe:  return "DBE";
      case ExcCode::Sys:  return "Sys";
      case ExcCode::Bp:   return "Bp";
      case ExcCode::Ri:   return "RI";
      case ExcCode::CpU:  return "CpU";
      case ExcCode::Ov:   return "Ov";
    }
    return "?";
}

Cp0::Cp0()
{
    regs_.fill(0);
    uxRegs_.fill(0);
    // Processor revision id: arbitrary but stable value identifying
    // this simulated implementation.
    regs_[cp0reg::PrId] = 0x00000220;
}

Word
Cp0::read(unsigned reg) const
{
    if (reg >= regs_.size())
        UEXC_PANIC("cp0: read of register %u out of range", reg);
    if (reg == cp0reg::Random)
        return static_cast<Word>(random_) << 8;
    return regs_[reg];
}

void
Cp0::write(unsigned reg, Word value)
{
    if (reg >= regs_.size())
        UEXC_PANIC("cp0: write of register %u out of range", reg);
    switch (reg) {
      case cp0reg::Random:
      case cp0reg::BadVAddr:
      case cp0reg::PrId:
        // read-only registers; writes are ignored (R3000 behaviour)
        return;
      case cp0reg::Context:
        // BadVPN field [20:2] is hardware-written; only PTEBase sticks
        regs_[reg] = (value & 0xffe00000u) | (regs_[reg] & 0x001ffffcu);
        return;
      case cp0reg::Index:
        regs_[reg] = value & 0x00003f00u;
        return;
      default:
        regs_[reg] = value;
        return;
    }
}

void
Cp0::enterException(Addr epc, ExcCode code, bool branch_delay)
{
    Word st = regs_[cp0reg::Status];
    Word stack = st & status::KuIeMask;
    // push: old <- previous <- current <- (kernel mode, ints disabled)
    stack = ((stack << 2) & status::KuIeMask);
    regs_[cp0reg::Status] = (st & ~status::KuIeMask) | stack;

    Word cause = regs_[cp0reg::Cause] & ~(cause::ExcCodeMask | cause::BD);
    cause |= static_cast<Word>(code) << cause::ExcCodeShift;
    if (branch_delay)
        cause |= cause::BD;
    regs_[cp0reg::Cause] = cause;
    regs_[cp0reg::Epc] = epc;
}

void
Cp0::returnFromException()
{
    Word st = regs_[cp0reg::Status];
    Word stack = st & status::KuIeMask;
    // pop: current <- previous <- old (old is left in place)
    stack = (stack >> 2) | (stack & 0x30u);
    regs_[cp0reg::Status] = (st & ~status::KuIeMask) | stack;
}

void
Cp0::setFaultAddress(Addr vaddr)
{
    regs_[cp0reg::BadVAddr] = vaddr;
    // Context.BadVPN [20:2] = vaddr [30:12]
    Word ctx = regs_[cp0reg::Context] & 0xffe00000u;
    ctx |= (bits(vaddr, 30, 12) << 2);
    regs_[cp0reg::Context] = ctx;
    // EntryHi gets the faulting VPN, keeps the current ASID
    Word hi = regs_[cp0reg::EntryHi] & entryhi::AsidMask;
    hi |= (vaddr & entryhi::VpnMask);
    regs_[cp0reg::EntryHi] = hi;
}

unsigned
Cp0::randomIndex()
{
    unsigned idx = random_;
    tickRandom();
    return idx;
}

Word
Cp0::uxReg(UxReg reg) const
{
    return uxRegs_[static_cast<unsigned>(reg)];
}

void
Cp0::setUxReg(UxReg reg, Word value)
{
    uxRegs_[static_cast<unsigned>(reg)] = value;
}

} // namespace uexc::sim
