/**
 * @file
 * Physical memory of the simulated machine: a flat byte array with
 * word/half/byte accessors. All addresses here are *physical*; the CPU
 * performs virtual-to-physical translation (segment decoding and TLB
 * lookup) before touching this object.
 */

#ifndef UEXC_SIM_MEMORY_H
#define UEXC_SIM_MEMORY_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace uexc::sim {

/**
 * Flat physical memory. Accesses must be in range and naturally
 * aligned; violations are uexc bugs (the CPU checks alignment and
 * raises guest exceptions before calling in here).
 */
class PhysMemory
{
  public:
    /** Construct @p size bytes of zeroed memory (word multiple). */
    explicit PhysMemory(std::size_t size);

    std::size_t size() const { return data_.size(); }

    Word readWord(Addr paddr) const;
    Half readHalf(Addr paddr) const;
    Byte readByte(Addr paddr) const;

    void writeWord(Addr paddr, Word value);
    void writeHalf(Addr paddr, Half value);
    void writeByte(Addr paddr, Byte value);

    /** Bulk copy into memory (for program loading). */
    void writeBlock(Addr paddr, const void *src, std::size_t bytes);
    /** Bulk copy out of memory. */
    void readBlock(Addr paddr, void *dst, std::size_t bytes) const;

    /** Zero a range. */
    void clearRange(Addr paddr, std::size_t bytes);

  private:
    void check(Addr paddr, unsigned access_size) const;

    std::vector<Byte> data_;
};

} // namespace uexc::sim

#endif // UEXC_SIM_MEMORY_H
