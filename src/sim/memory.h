/**
 * @file
 * Physical memory of the simulated machine: a flat byte array with
 * word/half/byte accessors. All addresses here are *physical*; the CPU
 * performs virtual-to-physical translation (segment decoding and TLB
 * lookup) before touching this object.
 */

#ifndef UEXC_SIM_MEMORY_H
#define UEXC_SIM_MEMORY_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace uexc::sim {

/**
 * Flat physical memory. Accesses must be in range and naturally
 * aligned; violations are uexc bugs (the CPU checks alignment and
 * raises guest exceptions before calling in here).
 *
 * Concurrency: in the default (serial and barrier-parallel) modes the
 * memory is only ever written by one thread at a time — barrier-round
 * workers read a frozen image and buffer their stores (sim/storebuf.h)
 * — so the accessors use plain loads and stores. setConcurrent(true)
 * switches the word/half/byte accessors to relaxed host atomics and
 * the page-version bumps to atomic increments for the relaxed
 * free-running scheduler, where harts really do race on guest-shared
 * pages. Relaxed atomics compile to plain moves on x86, so the
 * discipline costs nothing but makes the races well-defined (and
 * visible to ThreadSanitizer as intentional).
 */
class PhysMemory
{
  public:
    /** Page granularity of write versioning (matches the VM page). */
    static constexpr unsigned PageShift = 12;
    static constexpr std::size_t PageBytes = std::size_t(1) << PageShift;

    /** Construct @p size bytes of zeroed memory (word multiple). */
    explicit PhysMemory(std::size_t size);

    std::size_t size() const { return data_.size(); }

    Word readWord(Addr paddr) const;
    Half readHalf(Addr paddr) const;
    Byte readByte(Addr paddr) const;

    void writeWord(Addr paddr, Word value);
    void writeHalf(Addr paddr, Half value);
    void writeByte(Addr paddr, Byte value);

    /** Bulk copy into memory (for program loading). */
    void writeBlock(Addr paddr, const void *src, std::size_t bytes);
    /** Bulk copy out of memory. */
    void readBlock(Addr paddr, void *dst, std::size_t bytes) const;

    /** Zero a range. */
    void clearRange(Addr paddr, std::size_t bytes);

    /** True iff every byte in the range is zero (snapshot elision). */
    bool blockIsZero(Addr paddr, std::size_t bytes) const;

    /**
     * Write version of the page containing @p paddr: bumped by every
     * store into the page, whichever side (guest store, host kernel
     * service, debug write) performed it. The CPU's predecoded-
     * instruction cache snapshots this at decode time and revalidates
     * on every fetch, which is what makes self-modifying code safe
     * under the fast interpreter. Not architectural state.
     */
    std::uint32_t pageVersion(Addr paddr) const
    {
        return pageVersions_[paddr >> PageShift];
    }

    /** Stable pointer to a page's version word (hot-path polling). */
    const std::uint32_t *pageVersionPtr(Addr paddr) const
    {
        return &pageVersions_[paddr >> PageShift];
    }

    /**
     * Read a page-version word through a stable pointer obtained from
     * pageVersionPtr(). Always a relaxed atomic load (a plain mov on
     * x86): in relaxed-scheduler runs another hart may be bumping the
     * version concurrently, and the polling sites must not constitute
     * a data race.
     */
    static std::uint32_t loadVersion(const std::uint32_t *p)
    {
        return __atomic_load_n(p, __ATOMIC_RELAXED);
    }

    /**
     * Switch between the plain (single-writer) and relaxed-atomic
     * (free-running harts) access disciplines. Only the Machine's
     * relaxed scheduler flips this, around a run; bulk operations
     * (writeBlock/readBlock/clearRange) stay plain and must not be
     * used while concurrent execution is in flight.
     */
    void setConcurrent(bool on) { concurrent_ = on; }
    bool concurrent() const { return concurrent_; }

  private:
    void check(Addr paddr, unsigned access_size) const;

    void bumpVersion(Addr paddr)
    {
        std::uint32_t *p = &pageVersions_[paddr >> PageShift];
        if (concurrent_)
            __atomic_fetch_add(p, 1, __ATOMIC_RELAXED);
        else
            ++*p;
    }

    void touchPages(Addr paddr, std::size_t bytes)
    {
        if (bytes == 0)
            return;
        for (Addr p = paddr >> PageShift;
             p <= (paddr + bytes - 1) >> PageShift; p++) {
            bumpVersion(Addr(p) << PageShift);
        }
    }

    std::vector<Byte> data_;
    std::vector<std::uint32_t> pageVersions_;
    bool concurrent_ = false;
};

} // namespace uexc::sim

#endif // UEXC_SIM_MEMORY_H
