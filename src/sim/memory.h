/**
 * @file
 * Physical memory of the simulated machine: a flat byte array with
 * word/half/byte accessors. All addresses here are *physical*; the CPU
 * performs virtual-to-physical translation (segment decoding and TLB
 * lookup) before touching this object.
 */

#ifndef UEXC_SIM_MEMORY_H
#define UEXC_SIM_MEMORY_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace uexc::sim {

/**
 * Flat physical memory. Accesses must be in range and naturally
 * aligned; violations are uexc bugs (the CPU checks alignment and
 * raises guest exceptions before calling in here).
 */
class PhysMemory
{
  public:
    /** Page granularity of write versioning (matches the VM page). */
    static constexpr unsigned PageShift = 12;
    static constexpr std::size_t PageBytes = std::size_t(1) << PageShift;

    /** Construct @p size bytes of zeroed memory (word multiple). */
    explicit PhysMemory(std::size_t size);

    std::size_t size() const { return data_.size(); }

    Word readWord(Addr paddr) const;
    Half readHalf(Addr paddr) const;
    Byte readByte(Addr paddr) const;

    void writeWord(Addr paddr, Word value);
    void writeHalf(Addr paddr, Half value);
    void writeByte(Addr paddr, Byte value);

    /** Bulk copy into memory (for program loading). */
    void writeBlock(Addr paddr, const void *src, std::size_t bytes);
    /** Bulk copy out of memory. */
    void readBlock(Addr paddr, void *dst, std::size_t bytes) const;

    /** Zero a range. */
    void clearRange(Addr paddr, std::size_t bytes);

    /** True iff every byte in the range is zero (snapshot elision). */
    bool blockIsZero(Addr paddr, std::size_t bytes) const;

    /**
     * Write version of the page containing @p paddr: bumped by every
     * store into the page, whichever side (guest store, host kernel
     * service, debug write) performed it. The CPU's predecoded-
     * instruction cache snapshots this at decode time and revalidates
     * on every fetch, which is what makes self-modifying code safe
     * under the fast interpreter. Not architectural state.
     */
    std::uint32_t pageVersion(Addr paddr) const
    {
        return pageVersions_[paddr >> PageShift];
    }

    /** Stable pointer to a page's version word (hot-path polling). */
    const std::uint32_t *pageVersionPtr(Addr paddr) const
    {
        return &pageVersions_[paddr >> PageShift];
    }

  private:
    void check(Addr paddr, unsigned access_size) const;

    void touchPages(Addr paddr, std::size_t bytes)
    {
        if (bytes == 0)
            return;
        for (Addr p = paddr >> PageShift;
             p <= (paddr + bytes - 1) >> PageShift; p++) {
            pageVersions_[p]++;
        }
    }

    std::vector<Byte> data_;
    std::vector<std::uint32_t> pageVersions_;
};

} // namespace uexc::sim

#endif // UEXC_SIM_MEMORY_H
