/**
 * @file
 * Versioned, CRC-checked machine snapshots.
 *
 * A snapshot is a little-endian byte image: a fixed header (magic,
 * format version, section count), a sequence of tagged sections (tag,
 * payload length, payload, payload CRC32), and a footer (magic, CRC32
 * of everything before it). The double CRC makes both truncation and
 * bit rot detectable: a torn write fails the footer check, a flipped
 * bit fails either a section CRC or the total CRC.
 *
 * The writer/reader pair below is deliberately dumb — fixed-width
 * little-endian integers only, no varints, no alignment, no pointers —
 * so an image is bit-reproducible for identical machine state and a
 * loader never has to trust anything it reads: every primitive is
 * bounds-checked and every structural inconsistency raises a
 * SnapshotError (never UB, never a partial mutation of the target
 * machine before validation is complete).
 *
 * Section producers are the machine core (config echo, physical
 * memory with zero-page elision, scheduler position, one section per
 * hart) plus whatever the embedding layers register through
 * Machine::registerSnapshotSection — the fault injector's event
 * queues, the kernel's allocation cursors, a UserEnv's delivery
 * state, a DSM node's directory. Restore is strict in both
 * directions: a registered consumer whose section is missing and a
 * section nobody consumes are both errors, because either one means
 * the image and the machine disagree about what state exists.
 */

#ifndef UEXC_SIM_SNAPSHOT_H
#define UEXC_SIM_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace uexc::sim {

/**
 * Structured rejection of an untrusted or inconsistent snapshot
 * image. Everything the loader can dislike — bad magic, version skew,
 * CRC mismatch, truncated payload, out-of-range field — lands here;
 * a SnapshotError from Machine::restore leaves the machine in an
 * unspecified but memory-safe state (callers restore into a freshly
 * constructed machine).
 */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what) {}
};

/** "UXSN" little-endian: first word of every snapshot image. */
constexpr std::uint32_t kSnapshotMagic = 0x4e535855u;
/** "UXEN" little-endian: first word of the footer. */
constexpr std::uint32_t kSnapshotFooterMagic = 0x4e455855u;
/** Format version; bumped on any incompatible layout change.
 *  v2: KERN section gained VFS contents, console output, and
 *  per-process fork/descriptor state.
 *  v3: DSTA (DSM stats) section gained the retransmit-timeout cap
 *  echo, the per-link retry counters, and the maximum charged
 *  timeout. */
constexpr std::uint32_t kSnapshotVersion = 3;

/** Section tag from four printable characters ("CFG " style). */
constexpr Word
snapshotTag(char a, char b, char c, char d)
{
    return Word(std::uint8_t(a)) | Word(std::uint8_t(b)) << 8 |
           Word(std::uint8_t(c)) << 16 | Word(std::uint8_t(d)) << 24;
}

/** Render a tag for error messages ("CFG " or hex if unprintable). */
std::string snapshotTagName(Word tag);

/** Tag of the machine core's physical-memory section ("MEM "). */
constexpr Word kSnapshotMemoryTag = snapshotTag('M', 'E', 'M', ' ');

/** Page granularity of the MEM section's zero-page elision. Must
 *  match PhysMemory::PageBytes (machine.cc asserts it) so page
 *  indices in an image and write-version indices in a live machine
 *  talk about the same pages — that identity is what lets the
 *  migration layer's dirty tracking reuse the snapshot format. */
constexpr std::size_t kSnapshotPageBytes = 4096;

/**
 * Byte layout of a serialized memory section, shared by
 * Machine::checkpoint and the pre-copy migration receiver:
 *
 *   u64 memBytes, u32 liveCount,
 *   liveCount x { u32 pageIndex, pageBytes payload }
 *
 * with zero pages elided, strictly increasing page indices, and the
 * last page tail-truncated to memBytes. Pulling the serializer out of
 * Machine::checkpoint means a receiver that reassembles memory from
 * individually transferred pages produces a payload *byte-identical*
 * to what the source's checkpoint would contain — the property the
 * pre-copy control image's CRC check rests on.
 *
 * @p readPage copies page @p page (exactly @p len bytes, tail page
 * may be short) into @p dst. @p pageIsZero, when provided, is a fast
 * elision predicate (PhysMemory::blockIsZero); when null the written
 * bytes are scanned instead.
 */
void writeMemorySection(
    class SnapshotWriter &w, Word tag, std::uint64_t memBytes,
    const std::function<void(std::uint32_t page, Byte *dst,
                             std::size_t len)> &readPage,
    const std::function<bool(std::uint32_t page, std::size_t len)>
        &pageIsZero = nullptr);

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) of a byte range. */
std::uint32_t snapshotCrc32(const Byte *data, std::size_t len);

/**
 * Serializer. Usage: beginSection / primitive writes / endSection,
 * repeated per section, then finish() to obtain the complete image.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter();

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    void bytes(const void *src, std::size_t len);
    /** Length-prefixed string (u32 length + raw bytes). */
    void str(const std::string &s);

    void beginSection(Word tag);
    void endSection();

    /** Patch the header and footer and return the finished image. */
    std::vector<Byte> finish();

  private:
    std::vector<Byte> buf_;
    std::size_t payloadStart_ = 0;
    std::uint32_t sectionCount_ = 0;
    bool inSection_ = false;
    bool finished_ = false;
};

/**
 * Bounds-checked cursor over one section payload. Every read that
 * would run past the end throws SnapshotError; expectEnd() lets a
 * consumer assert it drained its section exactly.
 */
class SnapshotReader
{
  public:
    SnapshotReader(const Byte *data, std::size_t len,
                   std::string context);

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    /** u8 that must be exactly 0 or 1. */
    bool boolean();
    void bytes(void *dst, std::size_t len);
    std::string str();

    std::size_t remaining() const { return len_ - pos_; }
    /** Throw unless the payload has been consumed exactly. */
    void expectEnd() const;

    /** Raise a SnapshotError annotated with this reader's context. */
    [[noreturn]] void fail(const std::string &what) const;

  private:
    void need(std::size_t n) const;

    const Byte *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    std::string context_;
};

/** Directory entry for one parsed section. */
struct SnapshotSection
{
    Word tag = 0;
    std::size_t offset = 0;   ///< payload offset within the image
    std::size_t length = 0;   ///< payload length in bytes
};

/**
 * A parsed, fully validated snapshot image. Construction verifies the
 * header, the version, every section CRC, the total CRC, and the
 * footer; after it succeeds the section payloads may be read without
 * re-validation. Borrows the byte buffer — the caller keeps it alive
 * for the lifetime of the image.
 */
class SnapshotImage
{
  public:
    explicit SnapshotImage(const std::vector<Byte> &bytes);

    bool has(Word tag) const;
    /** Reader over the payload of @p tag; throws if absent. */
    SnapshotReader section(Word tag) const;
    const std::vector<SnapshotSection> &sections() const
    {
        return sections_;
    }
    /** Raw payload bytes of a parsed section (for diffing). */
    const Byte *sectionData(const SnapshotSection &s) const
    {
        return data_ + s.offset;
    }

  private:
    const Byte *data_;
    std::vector<SnapshotSection> sections_;
};

/**
 * One divergence between two validated images, at section
 * granularity with the first differing payload byte located — the
 * unit of migration triage ("which section went wrong, and where"),
 * as opposed to the old binary same/different verdict.
 */
struct SnapshotSectionDiff
{
    Word tag = 0;
    bool inA = false;           ///< section present in image A
    bool inB = false;           ///< section present in image B
    std::size_t lengthA = 0;
    std::size_t lengthB = 0;
    /** Payload offset of the first differing byte when the section
     *  exists in both images (== min(lengthA, lengthB) when one
     *  payload is a strict prefix of the other). */
    std::size_t firstDiffOffset = 0;
};

/**
 * Section-by-section comparison of two *validated* images. Empty
 * result means byte-identical payloads in both directions (section
 * order is ignored: images are compared by tag). Both `uexc-snap
 * diff` and the migration convergence oracles report through this,
 * so a failed bit-identity check names the diverging section and
 * byte offset instead of "images differ".
 */
std::vector<SnapshotSectionDiff>
diffSnapshotImages(const SnapshotImage &a, const SnapshotImage &b);

/** Render one diff entry ("section \"HRT0\": first divergence at
 *  payload byte 132 (1024 vs 1024 bytes)" style). */
std::string snapshotDiffLine(const SnapshotSectionDiff &d);

/**
 * Crash-consistent file write: the image goes to "<path>.tmp", is
 * fsync'd, and is renamed over @p path, then the containing
 * directory is fsync'd so the rename itself is durable. A crash at
 * any point leaves either the old file or the complete new one —
 * never a torn image (and a torn tmp file fails the footer check
 * anyway), and never a rename that silently evaporates with the
 * directory's dirty metadata.
 */
void writeSnapshotFile(const std::string &path,
                       const std::vector<Byte> &image);

/** Read a whole snapshot file; throws SnapshotError on I/O failure. */
std::vector<Byte> readSnapshotFile(const std::string &path);

} // namespace uexc::sim

#endif // UEXC_SIM_SNAPSHOT_H
