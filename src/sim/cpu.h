/**
 * @file
 * The simulated CPU: a functional, cycle-costed interpreter for the
 * MIPS-I-like ISA with the R3000 trap architecture.
 *
 * Faithfully modeled:
 *  - precise exceptions with the R3000 status-word KU/IE stack,
 *    Cause/EPC/BadVAddr/Context updates, branch-delay (BD) attribution
 *    and branch re-execution semantics;
 *  - a software-managed 64-entry tagged TLB with separate refill
 *    (0x80000000) and general (0x80000080) vectors;
 *  - branch delay slots, including exceptions raised *in* delay slots;
 *  - kuseg/kseg0/kseg1 segmentation with user-mode access checks.
 *
 * Extensions (sections 2.1-2.2 of Thekkath & Levy '94), enabled by
 * configuration flags so every benchmark can compare with/without:
 *  - direct user-mode exception vectoring through the user exception
 *    register file (COP3), with recursive-exception demotion to the
 *    kernel via the Status.UX bit;
 *  - the TLBMP instruction for user-level TLB protection modification
 *    gated on the per-entry U bit.
 */

#ifndef UEXC_SIM_CPU_H
#define UEXC_SIM_CPU_H

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "sim/cache.h"
#include "sim/costmodel.h"
#include "sim/cp0.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/tlb.h"

namespace uexc::sim {

/** Memory access intent, for translation. */
enum class AccessType { Fetch, Load, Store };

/** Result of a virtual-to-physical translation attempt. */
struct TranslateResult
{
    bool ok = false;
    Addr paddr = 0;
    bool cacheable = true;
    /** When !ok: the exception to raise. */
    ExcCode exc = ExcCode::TlbL;
    /** When !ok: whether this is a TLB *miss* (refill vector). */
    bool refill = false;
};

/** Why run() returned. */
enum class StopReason
{
    Halted,      ///< guest executed hcall 0 or host called requestHalt
    Breakpoint,  ///< pc reached an address registered as a breakpoint
    InstLimit,   ///< the instruction budget was exhausted
};

/** Result of a run() call. */
struct RunResult
{
    StopReason reason = StopReason::InstLimit;
    InstCount instsExecuted = 0;
};

/** Machine configuration. */
struct CpuConfig
{
    CostModel cost;
    /**
     * Host-side fast interpreter: predecoded per-physical-page
     * instruction arrays plus micro i/d translation caches, so
     * straight-line code skips the full TLB probe and decode on every
     * instruction. Guest-visible behaviour — architectural state,
     * cycle and cost accounting, cache/TLB statistics, observer
     * callbacks — is bit-identical to the reference interpreter (the
     * differential suite in tests/test_differential.cc enforces
     * this); only host wall-clock speed changes. The caches
     * invalidate on stores to a decoded page (PhysMemory page
     * versions) and on any TLB mutation (Tlb::generation), and are
     * keyed by ASID and processor mode so context switches and
     * Status/EntryHi writes cannot alias.
     */
    bool fastInterpreter = false;
    /** COP3 user-mode exception vectoring implemented in hardware. */
    bool userVectorHw = false;
    /**
     * Vector-table variant of user vectoring (paper section 2.2's
     * alternative): the exception target register holds the base of
     * a process-local, pinned table of handler addresses indexed by
     * ExcCode; the hardware loads table[code] while vectoring. A
     * translation miss on the table entry demotes the exception to
     * the kernel (the table page must be pinned, like the frame
     * page). Requires userVectorHw.
     */
    bool userVectorTable = false;
    /** TLBMP executes in hardware (else it raises RI for emulation). */
    bool tlbmpHw = false;
    /** Model I/D cache miss cycles. */
    bool cachesEnabled = false;
    std::size_t icacheBytes = 64 * 1024;
    std::size_t icacheLineBytes = 16;
    std::size_t dcacheBytes = 64 * 1024;
    std::size_t dcacheLineBytes = 16;
};

/** Aggregate execution statistics. */
struct CpuStats
{
    InstCount instructions = 0;
    Cycles cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t exceptionsTaken = 0;
    std::uint64_t tlbRefillFaults = 0;
    std::uint64_t userVectoredExceptions = 0;
    std::array<std::uint64_t, NumExcCodes> perExcCode{};
};

class Cpu;

/**
 * Per-instruction observation hook, used by the phase profiler that
 * regenerates Table 3. Only consulted when installed.
 */
class InstObserver
{
  public:
    virtual ~InstObserver() = default;
    /** Called after each retired instruction. */
    virtual void onInst(Addr pc, const DecodedInst &inst,
                        Cycles cost) = 0;
    /** Called when an exception is taken. */
    virtual void onException(ExcCode code, Addr epc, Addr vector) = 0;
};

/** Host service callback for the HCALL extension. */
using HcallHandler = std::function<void(Cpu &, Word service)>;

/**
 * The CPU. See file comment.
 */
class Cpu
{
  public:
    /** Exception vector addresses (R3000). */
    static constexpr Addr RefillVector = 0x80000000u;
    static constexpr Addr GeneralVector = 0x80000080u;
    /** Segment bases. */
    static constexpr Addr Kseg0Base = 0x80000000u;
    static constexpr Addr Kseg1Base = 0xa0000000u;
    static constexpr Addr Kseg2Base = 0xc0000000u;

    Cpu(PhysMemory &mem, const CpuConfig &config);

    // -- architectural state ----------------------------------------------

    Word reg(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, Word v) { if (r != 0) regs_[r] = v; }

    /** Multiply/divide result registers (for state comparison). */
    Word hi() const { return hi_; }
    Word lo() const { return lo_; }

    Addr pc() const { return pc_; }
    /** The next-PC latch (delay-slot sequencing state). */
    Addr npc() const { return npc_; }
    /** Set the PC (clears any in-flight delay slot). */
    void setPc(Addr pc);

    Cp0 &cp0() { return cp0_; }
    const Cp0 &cp0() const { return cp0_; }
    Tlb &tlb() { return tlb_; }
    const Tlb &tlb() const { return tlb_; }
    PhysMemory &mem() { return mem_; }

    const CpuConfig &config() const { return config_; }

    // -- execution ---------------------------------------------------------

    /** Execute one instruction (or take one exception). */
    void step();

    /**
     * Run until halt, breakpoint, or @p max_insts instructions.
     */
    RunResult run(InstCount max_insts);

    /** Stop the next run()/step(). */
    void requestHalt() { halted_ = true; }
    bool halted() const { return halted_; }
    /** Allow execution again after a halt. */
    void clearHalt() { halted_ = false; }

    /** Stop run() when the PC reaches @p addr (before executing it). */
    void addBreakpoint(Addr addr) { breakpoints_.insert(addr); }
    void removeBreakpoint(Addr addr) { breakpoints_.erase(addr); }
    void clearBreakpoints() { breakpoints_.clear(); }

    // -- host integration ----------------------------------------------------

    void setHcallHandler(HcallHandler handler)
    {
        hcallHandler_ = std::move(handler);
    }

    /** Account extra simulated cycles (host-side kernel services). */
    void charge(Cycles cycles) { stats_.cycles += cycles; }

    /** Observer for profiling; may be null. */
    void setObserver(InstObserver *obs) { observer_ = obs; }

    // -- services for the OS / VM facade ------------------------------------

    /**
     * Translate @p vaddr for @p type in the *current* processor mode.
     * Performs a real TLB lookup (updates TLB stats) but raises no
     * exception; the caller decides.
     */
    TranslateResult translate(Addr vaddr, AccessType type);

    /** translate() without perturbing statistics. */
    TranslateResult translateQuiet(Addr vaddr, AccessType type) const;

    /**
     * Enter an exception exactly as the hardware would for a fault at
     * @p fault_pc (not in a delay slot) touching @p bad_vaddr. Used by
     * the VM facade to inject faults on behalf of host-side
     * application code. Returns the vector address now in the PC.
     */
    Addr injectException(ExcCode code, Addr fault_pc, Addr bad_vaddr,
                         bool refill);

    /** Model a data-cache access (for host-side app memory traffic). */
    Cycles chargeDataAccess(Addr paddr, bool cacheable);

    /**
     * Drop every host-side interpreter cache (predecoded pages and
     * micro-TLBs). Never required for correctness — the page-version
     * and TLB-generation checks already invalidate stale entries on
     * the next fetch — but kernel services that rewrite guest code or
     * page tables wholesale (program load, context switch) call it to
     * make the shootdown protocol explicit and to release the decoded
     * pages of the outgoing image. A no-op on the reference
     * interpreter.
     */
    void flushHostCaches();

    // -- statistics -------------------------------------------------------

    const CpuStats &stats() const { return stats_; }
    void clearStats();
    Cycles cycles() const { return stats_.cycles; }
    InstCount instret() const { return stats_.instructions; }

    Cache *icache() { return icache_.get(); }
    Cache *dcache() { return dcache_.get(); }

  private:
    /**
     * One physical page of predecoded instructions. Valid while
     * @c version still equals the PhysMemory page version captured at
     * decode time; any store into the page (guest or host side)
     * advances that version and forces a whole-page redecode on the
     * next fetch, which is what keeps self-modifying code correct.
     */
    struct DecodedPage
    {
        static constexpr unsigned NumInsts = PhysMemory::PageBytes / 4;
        std::uint32_t version = 0;
        std::array<DecodedInst, NumInsts> insts;
    };

    /**
     * Micro-TLB entry: one cached successful translation. The key
     * packs (virtual page | ASID << 1 | user-mode bit), so ASID and
     * processor-mode changes miss instead of aliasing; TLB content
     * changes are caught by comparing Tlb::generation before lookup.
     * Bits [11:7] of a real key are always zero (ASID is 6 bits),
     * so kInvalidKey can never match.
     */
    static constexpr Word kInvalidKey = 0x80u;
    static constexpr unsigned kMicroTlbSize = 16;  // direct-mapped

    struct MicroTlbEntry
    {
        Word key = kInvalidKey;
        Addr pbase = 0;
        bool mapped = false;     ///< reference path would probe the TLB
        bool cacheable = true;
        bool writable = false;   ///< filled from a store (or dirty page)
    };

    // execution helpers
    void execute(const DecodedInst &inst);
    void executeTail(const DecodedInst &inst, Cycles cycles_before);
    bool memAddress(const DecodedInst &inst, unsigned size,
                    AccessType type, Addr &paddr_out);
    // fast-interpreter helpers
    Word translationKey(Addr vaddr) const;
    TranslateResult translateSlow(Addr vaddr, AccessType type);
    bool microDtlbLookup(Addr vaddr, AccessType type,
                         TranslateResult &out);
    void microDtlbFill(Addr vaddr, AccessType type,
                       const TranslateResult &tr);
    const DecodedInst *fetchFast();
    const DecodedInst *refillFetchFast(const TranslateResult &tr);
    void flushMicroTlb();
    RunResult runFast(InstCount max_insts);
    void takeException(ExcCode code, Addr bad_vaddr, bool has_bad_vaddr,
                       bool refill);
    bool tryUserVector(ExcCode code, Addr epc, Addr bad_vaddr,
                       bool branch_delay);
    void doBranch(bool taken, Addr target);
    void doJump(Addr target);
    void raiseOnPrivileged(const DecodedInst &inst);

    PhysMemory &mem_;
    CpuConfig config_;
    Cp0 cp0_;
    Tlb tlb_;
    std::unique_ptr<Cache> icache_;
    std::unique_ptr<Cache> dcache_;

    std::array<Word, NumRegs> regs_{};
    Addr pc_ = 0;
    Addr npc_ = 4;
    Word hi_ = 0;
    Word lo_ = 0;

    /** Previous retired instruction was a branch/jump. */
    bool prevWasControl_ = false;
    /** Set by execute() when the instruction raised an exception. */
    bool excRaised_ = false;
    /** Next-NPC staged by the current instruction. */
    Addr stagedNpc_ = 0;
    bool branchTaken_ = false;
    /** xret (or an hcall) moved the PC directly, bypassing npc. */
    bool redirect_ = false;
    unsigned consecutiveStores_ = 0;

    bool halted_ = false;
    std::unordered_set<Addr> breakpoints_;
    HcallHandler hcallHandler_;
    InstObserver *observer_ = nullptr;

    CpuStats stats_;

    // -- fast-interpreter caches (host-side only, never architectural) --

    /** Predecoded pages, keyed by physical page number. */
    std::unordered_map<Word, std::unique_ptr<DecodedPage>> decodedPages_;
    /** One-entry fetch cache: the page the PC is streaming through. */
    Word fetchKey_ = kInvalidKey;
    const DecodedPage *fetchPage_ = nullptr;
    Addr fetchPaBase_ = 0;
    Addr fetchVbase_ = 0;
    const std::uint32_t *fetchMemVer_ = nullptr;
    std::uint32_t fetchVersion_ = 0;
    bool fetchMapped_ = false;
    bool fetchCacheable_ = true;
    /** Micro-dTLB for load/store translation. */
    std::array<MicroTlbEntry, kMicroTlbSize> dtlb_;
    /** Tlb::generation the caches were filled under. */
    std::uint64_t tlbGenSeen_ = 0;
};

} // namespace uexc::sim

#endif // UEXC_SIM_CPU_H
