/**
 * @file
 * The simulated CPU: a functional, cycle-costed interpreter for the
 * MIPS-I-like ISA with the R3000 trap architecture.
 *
 * Faithfully modeled:
 *  - precise exceptions with the R3000 status-word KU/IE stack,
 *    Cause/EPC/BadVAddr/Context updates, branch-delay (BD) attribution
 *    and branch re-execution semantics;
 *  - a software-managed 64-entry tagged TLB with separate refill
 *    (0x80000000) and general (0x80000080) vectors;
 *  - branch delay slots, including exceptions raised *in* delay slots;
 *  - kuseg/kseg0/kseg1 segmentation with user-mode access checks.
 *
 * Extensions (sections 2.1-2.2 of Thekkath & Levy '94), enabled by
 * configuration flags so every benchmark can compare with/without:
 *  - direct user-mode exception vectoring through the user exception
 *    register file (COP3), with recursive-exception demotion to the
 *    kernel via the Status.UX bit;
 *  - the TLBMP instruction for user-level TLB protection modification
 *    gated on the per-entry U bit.
 *
 * The Cpu is the machine's shared *execute engine*: all per-context
 * state (registers, CP0/COP3, TLB, caches, the fast-interpreter
 * caches) lives in a Hart (sim/hart.h), and the engine operates on
 * whichever hart is currently bound. Machine::run interleaves harts
 * by rebinding between quanta; every accessor below reads or writes
 * the bound hart, so single-hart code is unchanged.
 */

#ifndef UEXC_SIM_CPU_H
#define UEXC_SIM_CPU_H

#include <functional>

#include "common/types.h"
#include "sim/hart.h"
#include "sim/memory.h"

namespace uexc::sim {

class StoreBuffer;

/** Memory access intent, for translation. */
enum class AccessType { Fetch, Load, Store };

/** Result of a virtual-to-physical translation attempt. */
struct TranslateResult
{
    bool ok = false;
    Addr paddr = 0;
    bool cacheable = true;
    /** When !ok: the exception to raise. */
    ExcCode exc = ExcCode::TlbL;
    /** When !ok: whether this is a TLB *miss* (refill vector). */
    bool refill = false;
};

/** Why run() returned. */
enum class StopReason
{
    Halted,      ///< guest executed hcall 0 or host called requestHalt
    Breakpoint,  ///< pc reached an address registered as a breakpoint
    InstLimit,   ///< the instruction budget was exhausted
};

/** Result of a run() call. */
struct RunResult
{
    StopReason reason = StopReason::InstLimit;
    InstCount instsExecuted = 0;
};

class Cpu;

/**
 * Per-instruction observation hook, used by the phase profiler that
 * regenerates Table 3. Only consulted when installed.
 */
class InstObserver
{
  public:
    virtual ~InstObserver() = default;
    /** Called after each retired instruction. */
    virtual void onInst(Addr pc, const DecodedInst &inst,
                        Cycles cost) = 0;
    /** Called when an exception is taken. */
    virtual void onException(ExcCode code, Addr epc, Addr vector) = 0;
};

/** Host service callback for the HCALL extension. */
using HcallHandler = std::function<void(Cpu &, Word service)>;

/**
 * The CPU. See file comment.
 */
class Cpu
{
  public:
    /** Exception vector addresses (R3000). */
    static constexpr Addr RefillVector = 0x80000000u;
    static constexpr Addr GeneralVector = 0x80000080u;
    /** Segment bases. */
    static constexpr Addr Kseg0Base = 0x80000000u;
    static constexpr Addr Kseg1Base = 0xa0000000u;
    static constexpr Addr Kseg2Base = 0xc0000000u;

    Cpu(PhysMemory &mem, const CpuConfig &config);

    // -- hart binding -------------------------------------------------------

    /**
     * Bind the engine to @p hart. All subsequent execution and state
     * access goes through it. Binding carries no simulated cost and
     * invalidates nothing: each hart's host-side caches are its own.
     */
    void bindHart(Hart &hart) { h_ = &hart; }
    Hart &hart() { return *h_; }
    const Hart &hart() const { return *h_; }
    unsigned hartId() const { return h_->id(); }

    // -- architectural state (of the bound hart) ----------------------------

    Word reg(unsigned r) const { return h_->reg(r); }
    void setReg(unsigned r, Word v) { h_->setReg(r, v); }

    /** Multiply/divide result registers (for state comparison). */
    Word hi() const { return h_->hi(); }
    Word lo() const { return h_->lo(); }

    Addr pc() const { return h_->pc(); }
    /** The next-PC latch (delay-slot sequencing state). */
    Addr npc() const { return h_->npc(); }
    /** Set the PC (clears any in-flight delay slot). */
    void setPc(Addr pc) { h_->setPc(pc); }

    Cp0 &cp0() { return h_->cp0(); }
    const Cp0 &cp0() const { return h_->cp0(); }
    Tlb &tlb() { return h_->tlb(); }
    const Tlb &tlb() const { return h_->tlb(); }
    PhysMemory &mem() { return mem_; }

    const CpuConfig &config() const { return config_; }

    // -- execution ---------------------------------------------------------

    /** Execute one instruction (or take one exception). */
    void step();

    /**
     * Run until halt, breakpoint, or @p max_insts instructions.
     */
    RunResult run(InstCount max_insts);

    /** Stop the next run()/step(). */
    void requestHalt() { h_->requestHalt(); }
    bool halted() const { return h_->halted(); }
    /** Allow execution again after a halt. */
    void clearHalt() { h_->clearHalt(); }

    /** Stop run() when the PC reaches @p addr (before executing it). */
    void addBreakpoint(Addr addr) { h_->addBreakpoint(addr); }
    void removeBreakpoint(Addr addr) { h_->removeBreakpoint(addr); }
    void clearBreakpoints() { h_->clearBreakpoints(); }

    // -- host integration ----------------------------------------------------

    void setHcallHandler(HcallHandler handler)
    {
        hcallHandler_ = std::move(handler);
    }
    const HcallHandler &hcallHandler() const { return hcallHandler_; }

    /** Account extra simulated cycles (host-side kernel services). */
    void charge(Cycles cycles) { h_->stats_.cycles += cycles; }

    /** Observer for profiling; may be null. */
    void setObserver(InstObserver *obs) { observer_ = obs; }
    InstObserver *observer() const { return observer_; }

    /**
     * Attach (or detach, with null) a store buffer: all guest data
     * accesses and fetches then go through it, stores land in the
     * buffer instead of memory, and the touched-page sets are
     * recorded. Only the Machine's barrier scheduler uses this,
     * around one speculative quantum; the buffer must be committed
     * or discarded (with Hart::restoreRound) before serial execution
     * resumes.
     */
    void setStoreBuffer(StoreBuffer *sb) { sb_ = sb; }
    StoreBuffer *storeBuffer() const { return sb_; }

    // -- services for the OS / VM facade ------------------------------------

    /**
     * Translate @p vaddr for @p type in the *current* processor mode.
     * Performs a real TLB lookup (updates TLB stats) but raises no
     * exception; the caller decides.
     */
    TranslateResult translate(Addr vaddr, AccessType type);

    /** translate() without perturbing statistics. */
    TranslateResult translateQuiet(Addr vaddr, AccessType type) const;

    /**
     * Enter an exception exactly as the hardware would for a fault at
     * @p fault_pc (not in a delay slot) touching @p bad_vaddr. Used by
     * the VM facade to inject faults on behalf of host-side
     * application code. Returns the vector address now in the PC.
     */
    Addr injectException(ExcCode code, Addr fault_pc, Addr bad_vaddr,
                         bool refill);

    /** Model a data-cache access (for host-side app memory traffic). */
    Cycles chargeDataAccess(Addr paddr, bool cacheable);

    /**
     * Drop every host-side interpreter cache (predecoded pages and
     * micro-TLBs) of the bound hart. Never required for correctness —
     * the page-version and TLB-generation checks already invalidate
     * stale entries on the next fetch — but kernel services that
     * rewrite guest code or page tables wholesale (program load,
     * context switch) call it to make the shootdown protocol explicit
     * and to release the decoded pages of the outgoing image. A no-op
     * on the reference interpreter.
     */
    void flushHostCaches() { h_->flushHostCaches(); }

    // -- statistics (of the bound hart) -------------------------------------

    const CpuStats &stats() const { return h_->stats(); }
    void clearStats() { h_->clearStats(); }
    Cycles cycles() const { return h_->cycles(); }
    InstCount instret() const { return h_->instret(); }

    Cache *icache() { return h_->icache(); }
    Cache *dcache() { return h_->dcache(); }

  private:
    // execution helpers
    void execute(const DecodedInst &inst);
    void executeTail(const DecodedInst &inst, Cycles cycles_before);
    bool memAddress(const DecodedInst &inst, unsigned size,
                    AccessType type, Addr &paddr_out);
    // fast-interpreter helpers
    Word translationKey(Addr vaddr) const;
    TranslateResult translateSlow(Addr vaddr, AccessType type);
    bool microDtlbLookup(Addr vaddr, AccessType type,
                         TranslateResult &out);
    void microDtlbFill(Addr vaddr, AccessType type,
                       const TranslateResult &tr);
    const DecodedInst *fetchFast();
    const DecodedInst *refillFetchFast(const TranslateResult &tr);
    // guest data access, routed through the store buffer when attached
    Word loadWord(Addr paddr);
    Half loadHalf(Addr paddr);
    Byte loadByte(Addr paddr);
    void storeWord(Addr paddr, Word value);
    void storeHalf(Addr paddr, Half value);
    void storeByte(Addr paddr, Byte value);
    void noteFetchPage(Addr paddr);
    RunResult runFast(InstCount max_insts);
    void takeException(ExcCode code, Addr bad_vaddr, bool has_bad_vaddr,
                       bool refill);
    bool tryUserVector(ExcCode code, Addr epc, Addr bad_vaddr,
                       bool branch_delay);
    void doBranch(Op op, bool taken, Addr target);
    void doJump(Op op, Addr target);
    void raiseOnPrivileged(const DecodedInst &inst);

    PhysMemory &mem_;
    CpuConfig config_;
    HcallHandler hcallHandler_;
    InstObserver *observer_ = nullptr;
    /** Speculative-round store buffer; null outside parallel rounds. */
    StoreBuffer *sb_ = nullptr;

    /**
     * The bound execution context. Set by Machine before any
     * execution; never null once the machine is constructed.
     */
    Hart *h_ = nullptr;
};

} // namespace uexc::sim

#endif // UEXC_SIM_CPU_H
