/**
 * @file
 * Per-hart store buffer for optimistic barrier-parallel rounds.
 *
 * During a parallel round every hart executes its quantum against a
 * *frozen* PhysMemory image: loads read through the buffer (own
 * buffered bytes win over memory), stores land only in the buffer, and
 * the buffer records the physical pages each hart read, wrote and
 * fetched instructions from. After the round the Machine checks the
 * page sets pairwise — in serial round order, hart j would have
 * observed hart i's stores for i < j, so any Writes(i) ∩ (Reads(j) ∪
 * Fetches(j)) overlap means the parallel execution may have diverged
 * from the serial reference and the whole round is rolled back and
 * re-run serially. Write/write overlap alone is safe: buffers commit
 * in round order with byte-granular masks, reproducing the serial
 * final value. A hart also aborts itself (markAbort) when it attempts
 * something a buffered world cannot replay exactly: a store into a
 * page it already fetched code from (buffered stores are invisible to
 * the decoder), a fetch from a page it already wrote, or a host call
 * with real side effects.
 */

#ifndef UEXC_SIM_STOREBUF_H
#define UEXC_SIM_STOREBUF_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace uexc::sim {

class PhysMemory;

class StoreBuffer
{
  public:
    /** One buffered word: data bytes valid where mask bits are set.
     *  Byte i of the word (little-endian, matching the host layout
     *  PhysMemory relies on) is valid iff bit i of mask is set. */
    struct Entry
    {
        Word data = 0;
        std::uint8_t mask = 0;
    };

    // Loads merge the hart's own buffered bytes over the frozen
    // memory image, so a hart always sees its own stores in order.
    Word readWord(const PhysMemory &mem, Addr paddr) const;
    Half readHalf(const PhysMemory &mem, Addr paddr) const;
    Byte readByte(const PhysMemory &mem, Addr paddr) const;

    void writeWord(Addr paddr, Word value);
    void writeHalf(Addr paddr, Half value);
    void writeByte(Addr paddr, Byte value);

    /** Record a data load from the page containing @p paddr. */
    void noteLoad(Addr paddr);
    /** Record a data store; aborts on store-to-fetched-page. */
    void noteStore(Addr paddr);
    /** Record an instruction fetch; aborts on fetch-of-written-page. */
    void noteFetch(Addr paddr);

    /** Mark this hart's round as non-replayable (forces rollback). */
    void markAbort() { aborted_ = true; }
    bool aborted() const { return aborted_; }

    bool empty() const { return words_.empty(); }

    /** Apply the buffered stores to @p mem (called in round order). */
    void commit(PhysMemory &mem) const;

    void clear();

    const std::unordered_set<Addr> &readPages() const
    {
        return readPages_;
    }
    const std::unordered_set<Addr> &writePages() const
    {
        return writePages_;
    }
    const std::unordered_set<Addr> &fetchPages() const
    {
        return fetchPages_;
    }

  private:
    Word mergedWord(const PhysMemory &mem, Addr wordAddr) const;
    void mergeBytes(Addr paddr, Word value, unsigned bytes);

    static constexpr Addr kNoPage = ~Addr(0);

    std::unordered_map<Addr, Entry> words_; // keyed by paddr >> 2
    std::unordered_set<Addr> readPages_;
    std::unordered_set<Addr> writePages_;
    std::unordered_set<Addr> fetchPages_;
    // one-entry memos: the page sets are tiny but the note* calls are
    // per-instruction hot, and guest code overwhelmingly touches the
    // same page it touched last time
    Addr lastLoadPage_ = kNoPage;
    Addr lastStorePage_ = kNoPage;
    Addr lastFetchPage_ = kNoPage;
    bool aborted_ = false;
};

/** True iff the two page sets share an element (smaller set probes
 *  the larger one). */
bool pagesIntersect(const std::unordered_set<Addr> &a,
                    const std::unordered_set<Addr> &b);

} // namespace uexc::sim

#endif // UEXC_SIM_STOREBUF_H
