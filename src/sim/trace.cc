#include "sim/trace.h"

#include "common/logging.h"

namespace uexc::sim {

TraceObserver::TraceObserver(const Cpu &cpu, Sink sink)
    : cpu_(cpu), sink_(std::move(sink))
{
    if (!sink_)
        UEXC_FATAL("trace observer needs a sink");
}

void
TraceObserver::onInst(Addr pc, const DecodedInst &inst, Cycles cost)
{
    bool kernel_pc = pc >= Cpu::Kseg0Base;
    if (kernelOnly_ && !kernel_pc)
        return;
    if (userOnly_ && kernel_pc)
        return;
    if (limit_ && lines_ >= limit_)
        return;
    lines_++;
    sink_(detail::formatString("[%c] %08x  %-32s ; %llu cyc",
                               kernel_pc ? 'K' : 'U', pc,
                               disassemble(inst, pc).c_str(),
                               static_cast<unsigned long long>(cost)));
}

void
TraceObserver::onException(ExcCode code, Addr epc, Addr vector)
{
    if (limit_ && lines_ >= limit_)
        return;
    lines_++;
    sink_(detail::formatString("== exception %s epc=%08x -> "
                               "vector %08x", excName(code), epc,
                               vector));
}

} // namespace uexc::sim
