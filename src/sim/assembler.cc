#include "sim/assembler.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::sim {

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        UEXC_FATAL("program: unknown symbol '%s'", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

Assembler::Assembler(Addr origin)
    : origin_(origin)
{
    if (!isAligned(origin, 4))
        UEXC_FATAL("assembler: origin 0x%08x not word aligned", origin);
}

void
Assembler::label(const std::string &name)
{
    if (symbols_.count(name) != 0)
        UEXC_FATAL("assembler: duplicate label '%s'", name.c_str());
    symbols_[name] = here();
}

void
Assembler::bindExternal(const std::string &name, Addr addr)
{
    if (symbols_.count(name) != 0)
        UEXC_FATAL("assembler: duplicate external symbol '%s'",
                   name.c_str());
    symbols_[name] = addr;
}

Addr
Assembler::here() const
{
    return origin_ + 4 * static_cast<Addr>(words_.size());
}

void
Assembler::word(Word w)
{
    words_.push_back(w);
}

void
Assembler::words(const std::vector<Word> &ws)
{
    words_.insert(words_.end(), ws.begin(), ws.end());
}

void
Assembler::wordAddr(const std::string &label_name)
{
    addFixup(FixKind::Word32, label_name);
    words_.push_back(0);
}

void
Assembler::space(unsigned bytes)
{
    if (bytes % 4 != 0)
        UEXC_FATAL("assembler: space of %u bytes not a word multiple",
                   bytes);
    words_.insert(words_.end(), bytes / 4, 0);
}

void
Assembler::align(unsigned bytes)
{
    if (bytes == 0 || (bytes & (bytes - 1)) != 0)
        UEXC_FATAL("assembler: alignment %u not a power of two", bytes);
    while (!isAligned(here(), bytes))
        nop();
}

void
Assembler::emit(Word encoded)
{
    words_.push_back(encoded);
}

void
Assembler::addFixup(FixKind kind, const std::string &label_name)
{
    fixups_.push_back(Fixup{kind, words_.size(), label_name});
}

// arithmetic / logic -------------------------------------------------------

void Assembler::sll(unsigned rd, unsigned rt, unsigned shamt)
{ emit(enc::sll(rd, rt, shamt)); }
void Assembler::srl(unsigned rd, unsigned rt, unsigned shamt)
{ emit(enc::srl(rd, rt, shamt)); }
void Assembler::sra(unsigned rd, unsigned rt, unsigned shamt)
{ emit(enc::sra(rd, rt, shamt)); }
void Assembler::sllv(unsigned rd, unsigned rt, unsigned rs)
{ emit(enc::sllv(rd, rt, rs)); }
void Assembler::srlv(unsigned rd, unsigned rt, unsigned rs)
{ emit(enc::srlv(rd, rt, rs)); }
void Assembler::srav(unsigned rd, unsigned rt, unsigned rs)
{ emit(enc::srav(rd, rt, rs)); }
void Assembler::add(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::add(rd, rs, rt)); }
void Assembler::addu(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::addu(rd, rs, rt)); }
void Assembler::sub(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::sub(rd, rs, rt)); }
void Assembler::subu(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::subu(rd, rs, rt)); }
void Assembler::and_(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::and_(rd, rs, rt)); }
void Assembler::or_(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::or_(rd, rs, rt)); }
void Assembler::xor_(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::xor_(rd, rs, rt)); }
void Assembler::nor(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::nor(rd, rs, rt)); }
void Assembler::slt(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::slt(rd, rs, rt)); }
void Assembler::sltu(unsigned rd, unsigned rs, unsigned rt)
{ emit(enc::sltu(rd, rs, rt)); }
void Assembler::mult(unsigned rs, unsigned rt)
{ emit(enc::mult(rs, rt)); }
void Assembler::multu(unsigned rs, unsigned rt)
{ emit(enc::multu(rs, rt)); }
void Assembler::div(unsigned rs, unsigned rt)
{ emit(enc::div(rs, rt)); }
void Assembler::divu(unsigned rs, unsigned rt)
{ emit(enc::divu(rs, rt)); }
void Assembler::mfhi(unsigned rd) { emit(enc::mfhi(rd)); }
void Assembler::mthi(unsigned rs) { emit(enc::mthi(rs)); }
void Assembler::mflo(unsigned rd) { emit(enc::mflo(rd)); }
void Assembler::mtlo(unsigned rs) { emit(enc::mtlo(rs)); }
void Assembler::addi(unsigned rt, unsigned rs, SWord imm)
{ emit(enc::addi(rt, rs, imm)); }
void Assembler::addiu(unsigned rt, unsigned rs, SWord imm)
{ emit(enc::addiu(rt, rs, imm)); }
void Assembler::slti(unsigned rt, unsigned rs, SWord imm)
{ emit(enc::slti(rt, rs, imm)); }
void Assembler::sltiu(unsigned rt, unsigned rs, SWord imm)
{ emit(enc::sltiu(rt, rs, imm)); }
void Assembler::andi(unsigned rt, unsigned rs, Word imm)
{ emit(enc::andi(rt, rs, imm)); }
void Assembler::ori(unsigned rt, unsigned rs, Word imm)
{ emit(enc::ori(rt, rs, imm)); }
void Assembler::xori(unsigned rt, unsigned rs, Word imm)
{ emit(enc::xori(rt, rs, imm)); }
void Assembler::lui(unsigned rt, Word imm)
{ emit(enc::lui(rt, imm)); }

// control transfer ----------------------------------------------------------

void
Assembler::j(const std::string &label_name)
{
    addFixup(FixKind::Jump26, label_name);
    emit(enc::j(0));
}

void
Assembler::jal(const std::string &label_name)
{
    addFixup(FixKind::Jump26, label_name);
    emit(enc::jal(0));
}

void Assembler::jr(unsigned rs) { emit(enc::jr(rs)); }
void Assembler::jalr(unsigned rd, unsigned rs)
{ emit(enc::jalr(rd, rs)); }

void
Assembler::beq(unsigned rs, unsigned rt, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::beq(rs, rt, 0));
}

void
Assembler::bne(unsigned rs, unsigned rt, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::bne(rs, rt, 0));
}

void
Assembler::blez(unsigned rs, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::blez(rs, 0));
}

void
Assembler::bgtz(unsigned rs, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::bgtz(rs, 0));
}

void
Assembler::bltz(unsigned rs, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::bltz(rs, 0));
}

void
Assembler::bgez(unsigned rs, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::bgez(rs, 0));
}

void
Assembler::bltzal(unsigned rs, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::bltzal(rs, 0));
}

void
Assembler::bgezal(unsigned rs, const std::string &label_name)
{
    addFixup(FixKind::Branch16, label_name);
    emit(enc::bgezal(rs, 0));
}

// memory --------------------------------------------------------------------

void Assembler::lb(unsigned rt, SWord offset, unsigned base)
{ emit(enc::lb(rt, offset, base)); }
void Assembler::lbu(unsigned rt, SWord offset, unsigned base)
{ emit(enc::lbu(rt, offset, base)); }
void Assembler::lh(unsigned rt, SWord offset, unsigned base)
{ emit(enc::lh(rt, offset, base)); }
void Assembler::lhu(unsigned rt, SWord offset, unsigned base)
{ emit(enc::lhu(rt, offset, base)); }
void Assembler::lw(unsigned rt, SWord offset, unsigned base)
{ emit(enc::lw(rt, offset, base)); }
void Assembler::sb(unsigned rt, SWord offset, unsigned base)
{ emit(enc::sb(rt, offset, base)); }
void Assembler::sh(unsigned rt, SWord offset, unsigned base)
{ emit(enc::sh(rt, offset, base)); }
void Assembler::sw(unsigned rt, SWord offset, unsigned base)
{ emit(enc::sw(rt, offset, base)); }

// traps, CP0, extensions ------------------------------------------------------

void Assembler::syscall() { emit(enc::syscall()); }
void Assembler::break_(Word code) { emit(enc::break_(code)); }
void Assembler::mfc0(unsigned rt, unsigned cp0_reg)
{ emit(enc::mfc0(rt, cp0_reg)); }
void Assembler::mtc0(unsigned rt, unsigned cp0_reg)
{ emit(enc::mtc0(rt, cp0_reg)); }
void Assembler::tlbr() { emit(enc::tlbr()); }
void Assembler::tlbwi() { emit(enc::tlbwi()); }
void Assembler::tlbwr() { emit(enc::tlbwr()); }
void Assembler::tlbp() { emit(enc::tlbp()); }
void Assembler::rfe() { emit(enc::rfe()); }
void Assembler::mfux(unsigned rt, UxReg ux_reg)
{ emit(enc::mfux(rt, ux_reg)); }
void Assembler::mtux(unsigned rt, UxReg ux_reg)
{ emit(enc::mtux(rt, ux_reg)); }
void Assembler::xret() { emit(enc::xret()); }
void Assembler::tlbmp(unsigned rs, unsigned rt)
{ emit(enc::tlbmp(rs, rt)); }
void Assembler::hcall(Word service) { emit(enc::hcall(service)); }

// pseudo-instructions ----------------------------------------------------------

void Assembler::nop() { emit(enc::nop()); }
void Assembler::move(unsigned rd, unsigned rs)
{ emit(enc::move(rd, rs)); }

void
Assembler::li(unsigned rd, Word value)
{
    SWord sval = static_cast<SWord>(value);
    if (sval >= -32768 && sval <= 32767) {
        addiu(rd, Zero, sval);
    } else if ((value & 0xffffu) == 0) {
        lui(rd, value >> 16);
    } else {
        lui(rd, value >> 16);
        ori(rd, rd, value & 0xffffu);
    }
}

void
Assembler::li32(unsigned rd, Word value)
{
    lui(rd, value >> 16);
    ori(rd, rd, value & 0xffffu);
}

void
Assembler::la(unsigned rd, const std::string &label_name)
{
    addFixup(FixKind::Hi16, label_name);
    lui(rd, 0);
    addFixup(FixKind::Lo16, label_name);
    ori(rd, rd, 0);
}

void
Assembler::luiHi(unsigned rt, const std::string &label_name)
{
    addFixup(FixKind::HiAdj16, label_name);
    lui(rt, 0);
}

void
Assembler::lwLo(unsigned rt, const std::string &label_name, unsigned base)
{
    addFixup(FixKind::Lo16, label_name);
    lw(rt, 0, base);
}

void
Assembler::swLo(unsigned rt, const std::string &label_name, unsigned base)
{
    addFixup(FixKind::Lo16, label_name);
    sw(rt, 0, base);
}

void
Assembler::addiuLo(unsigned rt, unsigned base,
                   const std::string &label_name)
{
    addFixup(FixKind::Lo16, label_name);
    addiu(rt, base, 0);
}

// finalization -----------------------------------------------------------------

Program
Assembler::finalize()
{
    for (const Fixup &fix : fixups_) {
        auto it = symbols_.find(fix.labelName);
        if (it == symbols_.end())
            UEXC_FATAL("assembler: undefined label '%s'",
                       fix.labelName.c_str());
        Addr target = it->second;
        Addr site = origin_ + 4 * static_cast<Addr>(fix.index);
        Word &w = words_[fix.index];

        switch (fix.kind) {
          case FixKind::Branch16: {
            SWord off = (static_cast<SWord>(target) -
                         static_cast<SWord>(site + 4)) / 4;
            if (off < -32768 || off > 32767)
                UEXC_FATAL("assembler: branch to '%s' out of range",
                           fix.labelName.c_str());
            w = insertBits(w, 15, 0, static_cast<Word>(off));
            break;
          }
          case FixKind::Jump26: {
            if (((site + 4) & 0xf0000000u) != (target & 0xf0000000u))
                UEXC_FATAL("assembler: jump to '%s' crosses 256MB "
                           "segment", fix.labelName.c_str());
            w = insertBits(w, 25, 0, target >> 2);
            break;
          }
          case FixKind::Hi16:
            w = insertBits(w, 15, 0, target >> 16);
            break;
          case FixKind::HiAdj16:
            // carry-adjusted high half, pairing with a sign-extended
            // 16-bit %lo displacement in lw/sw/addiu
            w = insertBits(w, 15, 0, (target + 0x8000u) >> 16);
            break;
          case FixKind::Lo16:
            w = insertBits(w, 15, 0, target & 0xffffu);
            break;
          case FixKind::Word32:
            w = target;
            break;
        }
    }

    Program prog;
    prog.origin = origin_;
    prog.words = words_;
    prog.symbols = symbols_;
    return prog;
}

} // namespace uexc::sim
