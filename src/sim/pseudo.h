/**
 * @file
 * Shared pseudo-op emitter helpers: the address-materialization and
 * syscall idioms every guest-code producer uses.
 *
 * These used to be open-coded (and duplicated) in the kernel image,
 * the multi-hart study programs, the user-level stubs, and the
 * microbenchmark scenarios. Hoisting them here keeps every producer
 * emitting the *same* instruction pairs, which matters beyond
 * tidiness: the value-set analysis (analysis/vsa.cc) recognizes these
 * exact idioms — lui+ori constants, the carry-adjusted %hi/%lo pair —
 * when reconstructing the addresses guest code touches. One producer
 * means the analyzer and the emitters cannot drift apart.
 *
 * Every helper emits a fixed instruction count (no relaxation), so
 * the Table 3 instruction budgets stay auditable.
 */

#ifndef UEXC_SIM_PSEUDO_H
#define UEXC_SIM_PSEUDO_H

#include <string>

#include "sim/assembler.h"

namespace uexc::sim::pseudo {

/**
 * rd := &label, as the carry-adjusted pair
 *   lui   rd, %hi(label)
 *   addiu rd, rd, %lo(label)
 * (2 instructions). This is the form that composes with further
 * %lo-displacement accesses; Assembler::la is the lui+ori flavor.
 */
void loadAddress(Assembler &a, unsigned rd, const std::string &label);

/**
 * rt := *(Word *)&label, a word-sized global, as
 *   lui scratch, %hi(label)
 *   lw  rt, %lo(label)(scratch)
 * (2 instructions; @p scratch may equal @p rt). The caller owns the
 * load-delay slot, exactly as with a hand-emitted pair.
 */
void loadGlobal(Assembler &a, unsigned rt, const std::string &label,
                unsigned scratch);

/**
 * *(Word *)&label := rt, as
 *   lui scratch, %hi(label)
 *   sw  rt, %lo(label)(scratch)
 * (2 instructions; @p scratch must differ from @p rt).
 */
void storeGlobal(Assembler &a, unsigned rt, const std::string &label,
                 unsigned scratch);

/**
 * Emit a system call: li v0, num; syscall. Arguments (a0-a2) are
 * whatever the caller placed there. 2-3 instructions depending on
 * the li form of @p num.
 */
void emitSyscall(Assembler &a, Word num);

} // namespace uexc::sim::pseudo

#endif // UEXC_SIM_PSEUDO_H
