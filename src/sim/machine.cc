#include "sim/machine.h"

#include <algorithm>

#include "common/logging.h"

namespace uexc::sim {

Machine::Machine(const MachineConfig &config)
    : config_(config),
      mem_(std::make_unique<PhysMemory>(config.memBytes))
{
    unsigned n = std::max(1u, config.harts);
    harts_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        harts_.push_back(std::make_unique<Hart>(i, config.cpu));
    cpu_ = std::make_unique<Cpu>(*mem_, config.cpu);
    cpu_->bindHart(*harts_[0]);
}

void
Machine::setCurrentHart(unsigned i)
{
    if (i >= harts_.size())
        UEXC_FATAL("machine: no hart %u (machine has %zu)", i,
                   harts_.size());
    currentHart_ = i;
    cpu_->bindHart(*harts_[i]);
}

void
Machine::invalidateTlbs(Addr vaddr, unsigned asid)
{
    for (auto &h : harts_)
        h->tlb().invalidate(vaddr, asid);
}

MachineRunResult
Machine::run(InstCount max_insts)
{
    MachineRunResult result;

    // Single hart: one quantum is the whole budget, so this is the
    // old Cpu::run call exactly (the quantum never splits a run).
    if (harts_.size() == 1) {
        RunResult r = cpu_->run(max_insts);
        result.reason = r.reason;
        result.instsExecuted = r.instsExecuted;
        result.hart = 0;
        return result;
    }

    InstCount remaining = max_insts;
    while (true) {
        // Find the next runnable hart, starting with the current one;
        // if every hart is halted the machine is halted.
        unsigned tried = 0;
        while (harts_[currentHart_]->halted() &&
               tried < harts_.size()) {
            currentHart_ = (currentHart_ + 1) % harts_.size();
            ++tried;
        }
        if (harts_[currentHart_]->halted()) {
            result.reason = StopReason::Halted;
            result.hart = currentHart_;
            return result;
        }

        if (remaining == 0) {
            result.reason = StopReason::InstLimit;
            result.hart = currentHart_;
            return result;
        }

        cpu_->bindHart(*harts_[currentHart_]);
        InstCount quantum = std::min(config_.quantum, remaining);
        RunResult r = cpu_->run(quantum);
        result.instsExecuted += r.instsExecuted;
        remaining -= r.instsExecuted;

        if (r.reason == StopReason::Breakpoint) {
            // Leave currentHart_ in place: the next run() resumes on
            // this hart with a fresh quantum, keeping the schedule a
            // pure function of the instruction stream.
            result.reason = StopReason::Breakpoint;
            result.hart = currentHart_;
            return result;
        }
        // Halted: the rotation below skips this hart from now on.
        // InstLimit with remaining > 0: the quantum expired — rotate.
        currentHart_ = (currentHart_ + 1) % harts_.size();
    }
}

Addr
Machine::unmappedToPhys(Addr vaddr)
{
    if (vaddr >= Cpu::Kseg0Base && vaddr < Cpu::Kseg1Base)
        return vaddr - Cpu::Kseg0Base;
    if (vaddr >= Cpu::Kseg1Base && vaddr < Cpu::Kseg2Base)
        return vaddr - Cpu::Kseg1Base;
    return vaddr;
}

void
Machine::load(const Program &program)
{
    Addr paddr = unmappedToPhys(program.origin);
    if (paddr + 4 * program.words.size() > mem_->size())
        UEXC_FATAL("program at 0x%08x (%zu words) exceeds physical "
                   "memory", program.origin, program.words.size());
    // writeBlock bumps the page versions of every page it touches, so
    // a reload over already-executed code invalidates any hart's
    // predecoded pages (see tests/test_multihart.cc).
    mem_->writeBlock(paddr, program.words.data(),
                     4 * program.words.size());
    for (const auto &[name, addr] : program.symbols) {
        if (symbols_.count(name) && symbols_[name] != addr)
            UEXC_FATAL("machine: conflicting definitions of symbol "
                       "'%s'", name.c_str());
        symbols_[name] = addr;
    }
}

Addr
Machine::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        UEXC_FATAL("machine: unknown symbol '%s'", name.c_str());
    return it->second;
}

bool
Machine::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

Word
Machine::debugReadWord(Addr addr) const
{
    return mem_->readWord(unmappedToPhys(addr));
}

void
Machine::debugWriteWord(Addr addr, Word value)
{
    // writeWord bumps the page version: a predecoded copy of this
    // page in any hart is stale after this and re-decodes on the
    // next fetch.
    mem_->writeWord(unmappedToPhys(addr), value);
}

// -- checkpoint/restore --------------------------------------------------

namespace {

constexpr Word kTagConfig = snapshotTag('C', 'F', 'G', ' ');
constexpr Word kTagMemory = snapshotTag('M', 'E', 'M', ' ');
constexpr Word kTagSched = snapshotTag('S', 'C', 'H', 'D');

Word
hartTag(unsigned i)
{
    return snapshotTag('H', 'R', 'T', '\0') | (Word(i) << 24);
}

} // namespace

void
Machine::registerSnapshotSection(Word tag, SnapshotSaveFn save,
                                 SnapshotLoadFn load)
{
    for (const SnapshotHook &hook : snapshotHooks_)
        if (hook.tag == tag)
            UEXC_FATAL("machine: duplicate snapshot section %s",
                       snapshotTagName(tag).c_str());
    snapshotHooks_.push_back({tag, std::move(save), std::move(load)});
}

std::vector<Byte>
Machine::checkpoint() const
{
    SnapshotWriter w;

    // Config echo: restore refuses an image whose machine shape
    // differs from the target's, because hart/cache/interpreter
    // structure is constructed, not serialized.
    w.beginSection(kTagConfig);
    w.u64(config_.memBytes);
    w.u32(std::uint32_t(harts_.size()));
    w.u64(config_.quantum);
    w.boolean(config_.cpu.fastInterpreter);
    w.boolean(config_.cpu.userVectorHw);
    w.boolean(config_.cpu.userVectorTable);
    w.boolean(config_.cpu.tlbmpHw);
    w.boolean(config_.cpu.cachesEnabled);
    w.endSection();

    // Physical memory with zero-page elision: only pages with any
    // nonzero byte are stored (strictly increasing page indices).
    // PhysMemory starts zeroed and restore re-zeroes, so the sparse
    // set reproduces the full contents.
    std::size_t pages =
        (mem_->size() + PhysMemory::PageBytes - 1) /
        PhysMemory::PageBytes;
    std::vector<Byte> page(PhysMemory::PageBytes);
    std::vector<std::uint32_t> live;
    for (std::size_t p = 0; p < pages; p++) {
        std::size_t base = p * PhysMemory::PageBytes;
        std::size_t len =
            std::min(PhysMemory::PageBytes, mem_->size() - base);
        if (!mem_->blockIsZero(Addr(base), len))
            live.push_back(std::uint32_t(p));
    }
    w.beginSection(kTagMemory);
    w.u64(mem_->size());
    w.u32(std::uint32_t(live.size()));
    for (std::uint32_t p : live) {
        std::size_t base = std::size_t(p) * PhysMemory::PageBytes;
        std::size_t len =
            std::min(PhysMemory::PageBytes, mem_->size() - base);
        mem_->readBlock(Addr(base), page.data(), len);
        w.u32(p);
        w.bytes(page.data(), len);
    }
    w.endSection();

    // Scheduler position.
    w.beginSection(kTagSched);
    w.u32(currentHart_);
    w.endSection();

    for (unsigned i = 0; i < harts_.size(); i++) {
        w.beginSection(hartTag(i));
        harts_[i]->snapshotSave(w);
        w.endSection();
    }

    for (const SnapshotHook &hook : snapshotHooks_) {
        w.beginSection(hook.tag);
        hook.save(w);
        w.endSection();
    }

    return w.finish();
}

void
Machine::restore(const std::vector<Byte> &image)
{
    SnapshotImage img(image);

    SnapshotReader cfg = img.section(kTagConfig);
    auto check = [&cfg](bool ok, const char *what) {
        if (!ok)
            cfg.fail(std::string("config mismatch: ") + what);
    };
    check(cfg.u64() == config_.memBytes, "memBytes");
    check(cfg.u32() == harts_.size(), "harts");
    check(cfg.u64() == config_.quantum, "quantum");
    check(cfg.boolean() == config_.cpu.fastInterpreter,
          "fastInterpreter");
    check(cfg.boolean() == config_.cpu.userVectorHw, "userVectorHw");
    check(cfg.boolean() == config_.cpu.userVectorTable,
          "userVectorTable");
    check(cfg.boolean() == config_.cpu.tlbmpHw, "tlbmpHw");
    check(cfg.boolean() == config_.cpu.cachesEnabled, "cachesEnabled");
    cfg.expectEnd();

    SnapshotReader memr = img.section(kTagMemory);
    std::uint64_t mem_size = memr.u64();
    if (mem_size != mem_->size())
        memr.fail("memory size mismatch");
    std::uint32_t pages = memr.u32();
    std::size_t total_pages =
        (mem_->size() + PhysMemory::PageBytes - 1) /
        PhysMemory::PageBytes;
    // Zero everything, then lay down the stored pages. clearRange and
    // writeBlock both bump page versions, so any predecoded page in
    // any hart is invalidated by the restore itself.
    mem_->clearRange(0, mem_->size());
    std::vector<Byte> page(PhysMemory::PageBytes);
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < pages; i++) {
        std::uint32_t p = memr.u32();
        if (p >= total_pages)
            memr.fail("page index " + std::to_string(p) +
                      " out of range");
        if (i > 0 && p <= prev)
            memr.fail("page indices not strictly increasing");
        prev = p;
        std::size_t base = std::size_t(p) * PhysMemory::PageBytes;
        std::size_t len =
            std::min(PhysMemory::PageBytes, mem_->size() - base);
        memr.bytes(page.data(), len);
        mem_->writeBlock(Addr(base), page.data(), len);
    }
    memr.expectEnd();

    SnapshotReader sched = img.section(kTagSched);
    std::uint32_t cur = sched.u32();
    if (cur >= harts_.size())
        sched.fail("scheduler hart out of range");
    sched.expectEnd();

    for (unsigned i = 0; i < harts_.size(); i++) {
        SnapshotReader hr = img.section(hartTag(i));
        harts_[i]->snapshotLoad(hr);
        hr.expectEnd();
    }

    for (const SnapshotHook &hook : snapshotHooks_) {
        SnapshotReader sr = img.section(hook.tag);
        hook.load(sr);
        sr.expectEnd();
    }

    // Strictness in the other direction: every section in the image
    // must have been consumed by the core or by a registered hook.
    for (const SnapshotSection &s : img.sections()) {
        bool known = s.tag == kTagConfig || s.tag == kTagMemory ||
                     s.tag == kTagSched;
        for (unsigned i = 0; !known && i < harts_.size(); i++)
            known = s.tag == hartTag(i);
        for (const SnapshotHook &hook : snapshotHooks_)
            known = known || s.tag == hook.tag;
        if (!known)
            throw SnapshotError("snapshot image: section " +
                                snapshotTagName(s.tag) +
                                " has no registered consumer");
    }

    setCurrentHart(cur);
}

} // namespace uexc::sim
