#include "sim/machine.h"

#include <algorithm>

#include "common/logging.h"

namespace uexc::sim {

Machine::Machine(const MachineConfig &config)
    : config_(config),
      mem_(std::make_unique<PhysMemory>(config.memBytes))
{
    unsigned n = std::max(1u, config.harts);
    harts_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        harts_.push_back(std::make_unique<Hart>(i, config.cpu));
    cpu_ = std::make_unique<Cpu>(*mem_, config.cpu);
    cpu_->bindHart(*harts_[0]);
}

void
Machine::setCurrentHart(unsigned i)
{
    if (i >= harts_.size())
        UEXC_FATAL("machine: no hart %u (machine has %zu)", i,
                   harts_.size());
    currentHart_ = i;
    cpu_->bindHart(*harts_[i]);
}

void
Machine::invalidateTlbs(Addr vaddr, unsigned asid)
{
    for (auto &h : harts_)
        h->tlb().invalidate(vaddr, asid);
}

MachineRunResult
Machine::run(InstCount max_insts)
{
    MachineRunResult result;

    // Single hart: one quantum is the whole budget, so this is the
    // old Cpu::run call exactly (the quantum never splits a run).
    if (harts_.size() == 1) {
        RunResult r = cpu_->run(max_insts);
        result.reason = r.reason;
        result.instsExecuted = r.instsExecuted;
        result.hart = 0;
        return result;
    }

    InstCount remaining = max_insts;
    while (true) {
        // Find the next runnable hart, starting with the current one;
        // if every hart is halted the machine is halted.
        unsigned tried = 0;
        while (harts_[currentHart_]->halted() &&
               tried < harts_.size()) {
            currentHart_ = (currentHart_ + 1) % harts_.size();
            ++tried;
        }
        if (harts_[currentHart_]->halted()) {
            result.reason = StopReason::Halted;
            result.hart = currentHart_;
            return result;
        }

        if (remaining == 0) {
            result.reason = StopReason::InstLimit;
            result.hart = currentHart_;
            return result;
        }

        cpu_->bindHart(*harts_[currentHart_]);
        InstCount quantum = std::min(config_.quantum, remaining);
        RunResult r = cpu_->run(quantum);
        result.instsExecuted += r.instsExecuted;
        remaining -= r.instsExecuted;

        if (r.reason == StopReason::Breakpoint) {
            // Leave currentHart_ in place: the next run() resumes on
            // this hart with a fresh quantum, keeping the schedule a
            // pure function of the instruction stream.
            result.reason = StopReason::Breakpoint;
            result.hart = currentHart_;
            return result;
        }
        // Halted: the rotation below skips this hart from now on.
        // InstLimit with remaining > 0: the quantum expired — rotate.
        currentHart_ = (currentHart_ + 1) % harts_.size();
    }
}

Addr
Machine::unmappedToPhys(Addr vaddr)
{
    if (vaddr >= Cpu::Kseg0Base && vaddr < Cpu::Kseg1Base)
        return vaddr - Cpu::Kseg0Base;
    if (vaddr >= Cpu::Kseg1Base && vaddr < Cpu::Kseg2Base)
        return vaddr - Cpu::Kseg1Base;
    return vaddr;
}

void
Machine::load(const Program &program)
{
    Addr paddr = unmappedToPhys(program.origin);
    if (paddr + 4 * program.words.size() > mem_->size())
        UEXC_FATAL("program at 0x%08x (%zu words) exceeds physical "
                   "memory", program.origin, program.words.size());
    // writeBlock bumps the page versions of every page it touches, so
    // a reload over already-executed code invalidates any hart's
    // predecoded pages (see tests/test_multihart.cc).
    mem_->writeBlock(paddr, program.words.data(),
                     4 * program.words.size());
    for (const auto &[name, addr] : program.symbols) {
        if (symbols_.count(name) && symbols_[name] != addr)
            UEXC_FATAL("machine: conflicting definitions of symbol "
                       "'%s'", name.c_str());
        symbols_[name] = addr;
    }
}

Addr
Machine::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        UEXC_FATAL("machine: unknown symbol '%s'", name.c_str());
    return it->second;
}

bool
Machine::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

Word
Machine::debugReadWord(Addr addr) const
{
    return mem_->readWord(unmappedToPhys(addr));
}

void
Machine::debugWriteWord(Addr addr, Word value)
{
    // writeWord bumps the page version: a predecoded copy of this
    // page in any hart is stale after this and re-decodes on the
    // next fetch.
    mem_->writeWord(unmappedToPhys(addr), value);
}

} // namespace uexc::sim
