#include "sim/machine.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "sim/faultinject.h"
#include "sim/storebuf.h"

namespace uexc::sim {

namespace {

SchedulerMode
resolveScheduler(SchedulerMode mode)
{
    if (mode != SchedulerMode::Auto)
        return mode;
    // Read once, before any worker thread exists (Machine
    // construction), and nothing in this process calls setenv — the
    // data race mt-unsafe guards against cannot occur.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("UEXC_PARALLEL");
    if (!env)
        return SchedulerMode::Serial;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "barrier") == 0)
        return SchedulerMode::Barrier;
    if (std::strcmp(env, "2") == 0 || std::strcmp(env, "relaxed") == 0)
        return SchedulerMode::Relaxed;
    return SchedulerMode::Serial;
}

} // namespace

/**
 * Persistent worker pool: one host thread, one private execute
 * engine, and one store buffer per hart. Workers sleep between
 * dispatches; Machine::runBarrier / runRelaxed install one job per
 * live hart and block until all complete. The mutex hand-offs give
 * every dispatch release/acquire edges in both directions, so
 * whatever a worker wrote (hart state, its store buffer, RunResults)
 * is visible to the machine thread after run() returns — and
 * ThreadSanitizer sees a clean happens-before graph.
 */
struct Machine::ParallelPool
{
    ParallelPool(PhysMemory &mem, const CpuConfig &config, unsigned n)
        : slots_(n)
    {
        CpuConfig worker_cfg = config;
        // A fault injector forces the serial scheduler (eligibility
        // checks in runBarrier/runRelaxed), so worker engines never
        // consult one.
        worker_cfg.faultInjector = nullptr;
        for (Slot &s : slots_)
            s.engine = std::make_unique<Cpu>(mem, worker_cfg);
        threads_.reserve(n);
        for (unsigned i = 0; i < n; i++)
            threads_.emplace_back([this, i] { workerLoop(i); });
    }

    ~ParallelPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cvWork_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    unsigned size() const { return unsigned(slots_.size()); }
    Cpu &engine(unsigned i) { return *slots_[i].engine; }
    StoreBuffer &sb(unsigned i) { return slots_[i].sb; }

    /** Run jobs[i] (null entries skipped) on worker i; blocks until
     *  every non-null job has completed. */
    void run(std::vector<std::function<void()>> jobs)
    {
        unsigned armed = 0;
        {
            std::lock_guard<std::mutex> lk(mu_);
            for (unsigned i = 0; i < slots_.size(); i++) {
                slots_[i].job = std::move(jobs[i]);
                if (slots_[i].job)
                    armed++;
            }
            outstanding_ = armed;
            generation_++;
        }
        if (armed == 0)
            return;
        cvWork_.notify_all();
        std::unique_lock<std::mutex> lk(mu_);
        cvDone_.wait(lk, [this] { return outstanding_ == 0; });
    }

  private:
    struct Slot
    {
        std::unique_ptr<Cpu> engine;
        StoreBuffer sb;
        std::function<void()> job;
    };

    void workerLoop(unsigned i)
    {
        std::uint64_t seen = 0;
        while (true) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cvWork_.wait(lk, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                job = std::move(slots_[i].job);
                slots_[i].job = nullptr;
            }
            if (!job)
                continue;
            job();
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (--outstanding_ == 0)
                    cvDone_.notify_all();
            }
        }
    }

    std::vector<Slot> slots_;
    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    std::uint64_t generation_ = 0;
    unsigned outstanding_ = 0;
    bool stop_ = false;
};

Machine::Machine(const MachineConfig &config)
    : config_(config),
      mem_(std::make_unique<PhysMemory>(config.memBytes)),
      scheduler_(resolveScheduler(config.scheduler))
{
    unsigned n = std::max(1u, config.harts);
    harts_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        harts_.push_back(std::make_unique<Hart>(i, config.cpu));
    cpu_ = std::make_unique<Cpu>(*mem_, config.cpu);
    cpu_->bindHart(*harts_[0]);
    pendingShootdowns_.resize(n);
    shootdownSeen_.resize(n, 0);
}

Machine::~Machine() = default;

void
Machine::ensurePool()
{
    if (!pool_)
        pool_ = std::make_unique<ParallelPool>(
            *mem_, config_.cpu, unsigned(harts_.size()));
}

void
Machine::setCurrentHart(unsigned i)
{
    if (i >= harts_.size())
        UEXC_FATAL("machine: no hart %u (machine has %zu)", i,
                   harts_.size());
    currentHart_ = i;
    cpu_->bindHart(*harts_[i]);
}

void
Machine::invalidateTlbs(Addr vaddr, unsigned asid)
{
    if (relaxedActive_.load(std::memory_order_acquire)) {
        // Free-running harts: only the calling hart's TLB may be
        // touched from this thread (the caller is a worker inside a
        // serialized host call, or the machine thread between runs).
        // Everyone else gets a pending entry applied by their own
        // worker at its next chunk boundary — the epoch-counted
        // shootdown protocol.
        std::lock_guard<std::mutex> lk(shootdownMutex_);
        for (unsigned i = 0; i < harts_.size(); i++) {
            if (i == currentHart_)
                harts_[i]->tlb().invalidate(vaddr, asid);
            else
                pendingShootdowns_[i].emplace_back(vaddr, asid);
        }
        shootdownEpoch_.fetch_add(1, std::memory_order_release);
        return;
    }
    for (auto &h : harts_)
        h->tlb().invalidate(vaddr, asid);
}

void
Machine::applyShootdowns(unsigned hart)
{
    if (shootdownEpoch_.load(std::memory_order_acquire) ==
        shootdownSeen_[hart])
        return;
    std::lock_guard<std::mutex> lk(shootdownMutex_);
    for (const auto &[vaddr, asid] : pendingShootdowns_[hart])
        harts_[hart]->tlb().invalidate(vaddr, asid);
    pendingShootdowns_[hart].clear();
    shootdownSeen_[hart] =
        shootdownEpoch_.load(std::memory_order_relaxed);
}

void
Machine::drainShootdowns()
{
    std::lock_guard<std::mutex> lk(shootdownMutex_);
    for (unsigned i = 0; i < harts_.size(); i++) {
        for (const auto &[vaddr, asid] : pendingShootdowns_[i])
            harts_[i]->tlb().invalidate(vaddr, asid);
        pendingShootdowns_[i].clear();
        shootdownSeen_[i] =
            shootdownEpoch_.load(std::memory_order_relaxed);
    }
}

MachineRunResult
Machine::run(InstCount max_insts)
{
    if (harts_.size() > 1) {
        if (scheduler_ == SchedulerMode::Barrier)
            return runBarrier(max_insts);
        if (scheduler_ == SchedulerMode::Relaxed)
            return runRelaxed(max_insts);
    }
    return runSerialImpl(max_insts);
}

MachineRunResult
Machine::runSerialImpl(InstCount max_insts)
{
    MachineRunResult result;

    // Single hart: one quantum is the whole budget, so this is the
    // old Cpu::run call exactly (the quantum never splits a run).
    if (harts_.size() == 1) {
        RunResult r = cpu_->run(max_insts);
        result.reason = r.reason;
        result.instsExecuted = r.instsExecuted;
        result.hart = 0;
        return result;
    }

    InstCount remaining = max_insts;
    while (true) {
        // Find the next runnable hart, starting with the current one;
        // if every hart is halted the machine is halted.
        unsigned tried = 0;
        while (harts_[currentHart_]->halted() &&
               tried < harts_.size()) {
            currentHart_ = (currentHart_ + 1) % harts_.size();
            ++tried;
        }
        if (harts_[currentHart_]->halted()) {
            result.reason = StopReason::Halted;
            result.hart = currentHart_;
            return result;
        }

        if (remaining == 0) {
            result.reason = StopReason::InstLimit;
            result.hart = currentHart_;
            return result;
        }

        cpu_->bindHart(*harts_[currentHart_]);
        InstCount quantum = std::min(config_.quantum, remaining);
        RunResult r = cpu_->run(quantum);
        result.instsExecuted += r.instsExecuted;
        remaining -= r.instsExecuted;

        if (r.reason == StopReason::Breakpoint) {
            // Leave currentHart_ in place: the next run() resumes on
            // this hart with a fresh quantum, keeping the schedule a
            // pure function of the instruction stream.
            result.reason = StopReason::Breakpoint;
            result.hart = currentHart_;
            return result;
        }
        // Halted: the rotation below skips this hart from now on.
        // InstLimit with remaining > 0: the quantum expired — rotate.
        currentHart_ = (currentHart_ + 1) % harts_.size();
    }
}

/**
 * Barrier-parallel scheduler. Structure of one iteration:
 *
 *   1. The serial loop head, verbatim: scan for the next runnable
 *      hart, stop on all-halted / budget exhausted.
 *   2. Decide round eligibility. Ineligible (or backing off after an
 *      abort): run ONE serial quantum exactly as runSerialImpl does,
 *      and loop.
 *   3. Eligible: snapshot every live hart (RoundContext), run every
 *      live hart's quantum concurrently against the frozen memory
 *      with per-hart store buffers, rendezvous, then check the
 *      touched-page sets in serial round order. Writes(i) overlapping
 *      Reads(j)/Fetches(j) for i earlier than j means hart j may have
 *      missed a store it would have observed serially — roll every
 *      hart back and re-run the round through the serial branch (the
 *      restored state makes the serial quanta *be* the replay). No
 *      overlap: commit the buffers in round order and advance the
 *      cursor exactly as the serial rotation would have.
 *
 * Bit-identity argument: an ineligible iteration IS a serial
 * iteration; a committed round produced, per hart, the same quantum
 * the serial scheduler would have run (unclipped budget guaranteed by
 * eligibility, stable live set because halting is self-only, no
 * cross-hart observation by the no-conflict check, own stores merged
 * on load), and commits stores in serial order; an aborted round
 * changed nothing. Induction over iterations does the rest.
 */
MachineRunResult
Machine::runBarrier(InstCount max_insts)
{
    MachineRunResult result;
    const unsigned n = unsigned(harts_.size());
    InstCount remaining = max_insts;

    while (true) {
        unsigned tried = 0;
        while (harts_[currentHart_]->halted() && tried < n) {
            currentHart_ = (currentHart_ + 1) % n;
            ++tried;
        }
        if (harts_[currentHart_]->halted()) {
            result.reason = StopReason::Halted;
            result.hart = currentHart_;
            return result;
        }
        if (remaining == 0) {
            result.reason = StopReason::InstLimit;
            result.hart = currentHart_;
            return result;
        }

        // Live harts in serial rotation order from the cursor.
        std::vector<unsigned> order;
        order.reserve(n);
        for (unsigned k = 0; k < n; k++) {
            unsigned h = (currentHart_ + k) % n;
            if (!harts_[h]->halted())
                order.push_back(h);
        }

        // A round must reproduce the serial schedule exactly, so it
        // requires: at least two live harts (else it IS serial), a
        // budget that cannot clip any quantum, no abort backoff
        // pending, and none of the serial-only facilities (observer
        // callbacks, breakpoints, pending fault-injector events).
        bool eligible = order.size() >= 2 && serialStreak_ == 0 &&
                        remaining >=
                            InstCount(order.size()) * config_.quantum &&
                        cpu_->observer() == nullptr;
        for (unsigned k = 0; eligible && k < order.size(); k++) {
            if (harts_[order[k]]->hasBreakpoints())
                eligible = false;
            else if (config_.cpu.faultInjector &&
                     config_.cpu.faultInjector->wants(order[k]))
                eligible = false;
        }

        if (!eligible) {
            if (serialStreak_ > 0)
                --serialStreak_;
            barrierStats_.serialQuanta++;
            cpu_->bindHart(*harts_[currentHart_]);
            InstCount quantum = std::min(config_.quantum, remaining);
            RunResult r = cpu_->run(quantum);
            result.instsExecuted += r.instsExecuted;
            remaining -= r.instsExecuted;
            if (r.reason == StopReason::Breakpoint) {
                result.reason = StopReason::Breakpoint;
                result.hart = currentHart_;
                return result;
            }
            currentHart_ = (currentHart_ + 1) % n;
            continue;
        }

        // -- speculative round ----------------------------------------
        ensurePool();
        barrierStats_.parallelRounds++;

        std::vector<Hart::RoundContext> saved(order.size());
        for (std::size_t k = 0; k < order.size(); k++)
            harts_[order[k]]->saveRound(saved[k]);

        std::vector<RunResult> rr(order.size());
        std::vector<std::function<void()>> jobs(pool_->size());
        for (std::size_t k = 0; k < order.size(); k++) {
            unsigned h = order[k];
            Cpu &eng = pool_->engine(unsigned(k));
            StoreBuffer &sb = pool_->sb(unsigned(k));
            sb.clear();
            // Mirror the handler so a guest hcall aborts the round
            // (handler present, real side effects) or raises Ri
            // (absent) exactly as the serial engine would decide.
            eng.setHcallHandler(cpu_->hcallHandler());
            jobs[k] = [this, k, h, &eng, &sb, &rr] {
                eng.bindHart(*harts_[h]);
                eng.setStoreBuffer(&sb);
                rr[k] = eng.run(config_.quantum);
                eng.setStoreBuffer(nullptr);
            };
        }
        pool_->run(std::move(jobs));

        if (pageTouchLog_) {
            PageTouchLog::Round round;
            for (std::size_t k = 0; k < order.size(); k++) {
                const StoreBuffer &sb = pool_->sb(unsigned(k));
                PageTouchLog::HartTouches t;
                t.hart = order[k];
                t.readPages = sb.readPages();
                t.writePages = sb.writePages();
                t.fetchPages = sb.fetchPages();
                t.selfAborted = sb.aborted();
                round.harts.push_back(std::move(t));
            }
            pageTouchLog_->rounds.push_back(std::move(round));
        }

        bool abort = false;
        for (std::size_t k = 0; !abort && k < order.size(); k++)
            abort = pool_->sb(unsigned(k)).aborted();
        for (std::size_t i = 0; !abort && i < order.size(); i++) {
            const StoreBuffer &wi = pool_->sb(unsigned(i));
            if (wi.writePages().empty())
                continue;
            for (std::size_t j = i + 1; !abort && j < order.size();
                 j++) {
                const StoreBuffer &rj = pool_->sb(unsigned(j));
                abort =
                    pagesIntersect(wi.writePages(), rj.readPages()) ||
                    pagesIntersect(wi.writePages(), rj.fetchPages());
            }
        }

        if (pageTouchLog_)
            pageTouchLog_->rounds.back().aborted = abort;

        if (abort) {
            for (std::size_t k = 0; k < order.size(); k++)
                harts_[order[k]]->restoreRound(saved[k]);
            barrierStats_.abortedRounds++;
            // Back off: run at least one full serial pass over the
            // conflicting harts before speculating again, doubling on
            // consecutive aborts (conflict phases tend to persist).
            abortStreakLen_ =
                abortStreakLen_ == 0
                    ? unsigned(order.size())
                    : std::min(64u, abortStreakLen_ * 2);
            serialStreak_ = abortStreakLen_;
            continue;
        }

        abortStreakLen_ = 0;
        barrierStats_.committedRounds++;
        for (std::size_t k = 0; k < order.size(); k++) {
            pool_->sb(unsigned(k)).commit(*mem_);
            result.instsExecuted += rr[k].instsExecuted;
            remaining -= rr[k].instsExecuted;
        }
        // Leave the cursor and engine binding exactly where the
        // serial loop would: bound to the round's last hart, cursor
        // one past it.
        cpu_->bindHart(*harts_[order.back()]);
        currentHart_ = (order.back() + 1) % n;
    }
}

void
Machine::relaxedHcall(unsigned hart, Word service)
{
    // Host services mutate shared kernel/host state, so they are the
    // one serialization point of the relaxed scheduler; the real lock
    // stands in for the paper's kernel-stack lock, and the contention
    // counters are the measured analogue of the analytic model in
    // os/kernel.h.
    if (hcallMutex_.try_lock()) {
        hcallLockStats_.acquires++;
    } else {
        hcallMutex_.lock();
        hcallLockStats_.acquires++;
        hcallLockStats_.contended++;
    }
    unsigned prev = currentHart_;
    currentHart_ = hart;
    cpu_->bindHart(*harts_[hart]);
    cpu_->hcallHandler()(*cpu_, service);
    currentHart_ = prev;
    cpu_->bindHart(*harts_[prev]);
    hcallMutex_.unlock();
}

/**
 * Relaxed free-running scheduler: every live hart runs on its own
 * worker with no barrier, claiming chunks from a shared atomic
 * instruction budget until it halts or the budget drains. Guest
 * memory really is concurrently shared (PhysMemory switches to its
 * relaxed-atomic discipline); host calls serialize on a real mutex;
 * TLB shootdowns defer to each hart's own worker. The interleaving is
 * whatever the host gives — throughput mode, not the deterministic
 * reference.
 */
MachineRunResult
Machine::runRelaxed(InstCount max_insts)
{
    const unsigned n = unsigned(harts_.size());

    // The deterministic-schedule facilities cannot run free: fall
    // back to the reference scheduler when they are present.
    bool fallback =
        cpu_->observer() != nullptr || config_.cpu.faultInjector;
    for (unsigned i = 0; !fallback && i < n; i++)
        fallback = harts_[i]->hasBreakpoints();
    if (fallback)
        return runSerialImpl(max_insts);

    ensurePool();
    mem_->setConcurrent(true);
    relaxedActive_.store(true, std::memory_order_release);

    // Chunk size bounds how stale a hart's view of the shared budget
    // and pending shootdowns can get.
    const InstCount chunk = std::min<InstCount>(
        config_.quantum, std::max<InstCount>(1, max_insts / n));
    std::atomic<InstCount> budget{max_insts};
    std::vector<RunResult> rr(n);

    bool handler = static_cast<bool>(cpu_->hcallHandler());
    std::vector<std::function<void()>> jobs(pool_->size());
    for (unsigned i = 0; i < n; i++) {
        if (harts_[i]->halted())
            continue;
        jobs[i] = [this, i, chunk, handler, &budget, &rr] {
            Cpu &eng = pool_->engine(i);
            eng.bindHart(*harts_[i]);
            if (handler)
                eng.setHcallHandler([this, i](Cpu &, Word svc) {
                    relaxedHcall(i, svc);
                });
            else
                eng.setHcallHandler(nullptr);
            while (!harts_[i]->halted()) {
                applyShootdowns(i);
                InstCount cur =
                    budget.load(std::memory_order_relaxed);
                InstCount take = 0;
                while (cur > 0) {
                    take = std::min(chunk, cur);
                    if (budget.compare_exchange_weak(
                            cur, cur - take,
                            std::memory_order_relaxed))
                        break;
                    take = 0;
                }
                if (take == 0)
                    break;
                RunResult r = eng.run(take);
                rr[i].instsExecuted += r.instsExecuted;
                rr[i].reason = r.reason;
                if (r.instsExecuted < take)
                    budget.fetch_add(take - r.instsExecuted,
                                     std::memory_order_relaxed);
            }
            applyShootdowns(i);
        };
    }
    pool_->run(std::move(jobs));

    relaxedActive_.store(false, std::memory_order_release);
    mem_->setConcurrent(false);
    drainShootdowns();

    MachineRunResult result;
    bool all_halted = true;
    for (unsigned i = 0; i < n; i++) {
        result.instsExecuted += rr[i].instsExecuted;
        if (!harts_[i]->halted())
            all_halted = false;
    }
    result.reason =
        all_halted ? StopReason::Halted : StopReason::InstLimit;
    result.hart = currentHart_;
    return result;
}

Addr
Machine::unmappedToPhys(Addr vaddr)
{
    if (vaddr >= Cpu::Kseg0Base && vaddr < Cpu::Kseg1Base)
        return vaddr - Cpu::Kseg0Base;
    if (vaddr >= Cpu::Kseg1Base && vaddr < Cpu::Kseg2Base)
        return vaddr - Cpu::Kseg1Base;
    return vaddr;
}

void
Machine::load(const Program &program)
{
    Addr paddr = unmappedToPhys(program.origin);
    if (paddr + 4 * program.words.size() > mem_->size())
        UEXC_FATAL("program at 0x%08x (%zu words) exceeds physical "
                   "memory", program.origin, program.words.size());
    // writeBlock bumps the page versions of every page it touches, so
    // a reload over already-executed code invalidates any hart's
    // predecoded pages (see tests/test_multihart.cc).
    mem_->writeBlock(paddr, program.words.data(),
                     4 * program.words.size());
    for (const auto &[name, addr] : program.symbols) {
        if (symbols_.count(name) && symbols_[name] != addr)
            UEXC_FATAL("machine: conflicting definitions of symbol "
                       "'%s'", name.c_str());
        symbols_[name] = addr;
    }
}

Addr
Machine::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        UEXC_FATAL("machine: unknown symbol '%s'", name.c_str());
    return it->second;
}

bool
Machine::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

Word
Machine::debugReadWord(Addr addr) const
{
    return mem_->readWord(unmappedToPhys(addr));
}

void
Machine::debugWriteWord(Addr addr, Word value)
{
    // writeWord bumps the page version: a predecoded copy of this
    // page in any hart is stale after this and re-decodes on the
    // next fetch.
    mem_->writeWord(unmappedToPhys(addr), value);
}

// -- checkpoint/restore --------------------------------------------------

namespace {

constexpr Word kTagConfig = snapshotTag('C', 'F', 'G', ' ');
constexpr Word kTagMemory = kSnapshotMemoryTag;
constexpr Word kTagSched = snapshotTag('S', 'C', 'H', 'D');

// The snapshot layer's page constant is what migration dirty
// tracking indexes with; it must agree with the write-version
// granularity here.
static_assert(kSnapshotPageBytes == PhysMemory::PageBytes,
              "snapshot page size must match PhysMemory pages");

Word
hartTag(unsigned i)
{
    return snapshotTag('H', 'R', 'T', '\0') | (Word(i) << 24);
}

} // namespace

void
Machine::registerSnapshotSection(Word tag, SnapshotSaveFn save,
                                 SnapshotLoadFn load)
{
    for (const SnapshotHook &hook : snapshotHooks_)
        if (hook.tag == tag)
            UEXC_FATAL("machine: duplicate snapshot section %s",
                       snapshotTagName(tag).c_str());
    snapshotHooks_.push_back({tag, std::move(save), std::move(load)});
}

std::vector<Byte>
Machine::checkpoint() const
{
    SnapshotWriter w;

    // Config echo: restore refuses an image whose machine shape
    // differs from the target's, because hart/cache/interpreter
    // structure is constructed, not serialized.
    w.beginSection(kTagConfig);
    w.u64(config_.memBytes);
    w.u32(std::uint32_t(harts_.size()));
    w.u64(config_.quantum);
    w.boolean(config_.cpu.fastInterpreter);
    w.boolean(config_.cpu.userVectorHw);
    w.boolean(config_.cpu.userVectorTable);
    w.boolean(config_.cpu.tlbmpHw);
    w.boolean(config_.cpu.cachesEnabled);
    w.endSection();

    // Physical memory with zero-page elision: only pages with any
    // nonzero byte are stored (strictly increasing page indices).
    // PhysMemory starts zeroed and restore re-zeroes, so the sparse
    // set reproduces the full contents. The serializer is shared with
    // the pre-copy migration receiver so both sides produce
    // byte-identical MEM payloads for identical memory contents.
    writeMemorySection(
        w, kTagMemory, mem_->size(),
        [this](std::uint32_t p, Byte *dst, std::size_t len) {
            mem_->readBlock(Addr(std::size_t(p) *
                                 PhysMemory::PageBytes),
                            dst, len);
        },
        [this](std::uint32_t p, std::size_t len) {
            return mem_->blockIsZero(
                Addr(std::size_t(p) * PhysMemory::PageBytes), len);
        });

    // Scheduler position.
    w.beginSection(kTagSched);
    w.u32(currentHart_);
    w.endSection();

    for (unsigned i = 0; i < harts_.size(); i++) {
        w.beginSection(hartTag(i));
        harts_[i]->snapshotSave(w);
        w.endSection();
    }

    for (const SnapshotHook &hook : snapshotHooks_) {
        w.beginSection(hook.tag);
        hook.save(w);
        w.endSection();
    }

    return w.finish();
}

void
Machine::restore(const std::vector<Byte> &image)
{
    SnapshotImage img(image);

    SnapshotReader cfg = img.section(kTagConfig);
    auto check = [&cfg](bool ok, const char *what) {
        if (!ok)
            cfg.fail(std::string("config mismatch: ") + what);
    };
    check(cfg.u64() == config_.memBytes, "memBytes");
    check(cfg.u32() == harts_.size(), "harts");
    check(cfg.u64() == config_.quantum, "quantum");
    check(cfg.boolean() == config_.cpu.fastInterpreter,
          "fastInterpreter");
    check(cfg.boolean() == config_.cpu.userVectorHw, "userVectorHw");
    check(cfg.boolean() == config_.cpu.userVectorTable,
          "userVectorTable");
    check(cfg.boolean() == config_.cpu.tlbmpHw, "tlbmpHw");
    check(cfg.boolean() == config_.cpu.cachesEnabled, "cachesEnabled");
    cfg.expectEnd();

    SnapshotReader memr = img.section(kTagMemory);
    std::uint64_t mem_size = memr.u64();
    if (mem_size != mem_->size())
        memr.fail("memory size mismatch");
    std::uint32_t pages = memr.u32();
    std::size_t total_pages =
        (mem_->size() + PhysMemory::PageBytes - 1) /
        PhysMemory::PageBytes;
    // Zero everything, then lay down the stored pages. clearRange and
    // writeBlock both bump page versions, so any predecoded page in
    // any hart is invalidated by the restore itself.
    mem_->clearRange(0, mem_->size());
    std::vector<Byte> page(PhysMemory::PageBytes);
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i < pages; i++) {
        std::uint32_t p = memr.u32();
        if (p >= total_pages)
            memr.fail("page index " + std::to_string(p) +
                      " out of range");
        if (i > 0 && p <= prev)
            memr.fail("page indices not strictly increasing");
        prev = p;
        std::size_t base = std::size_t(p) * PhysMemory::PageBytes;
        std::size_t len =
            std::min(PhysMemory::PageBytes, mem_->size() - base);
        memr.bytes(page.data(), len);
        mem_->writeBlock(Addr(base), page.data(), len);
    }
    memr.expectEnd();

    SnapshotReader sched = img.section(kTagSched);
    std::uint32_t cur = sched.u32();
    if (cur >= harts_.size())
        sched.fail("scheduler hart out of range");
    sched.expectEnd();

    for (unsigned i = 0; i < harts_.size(); i++) {
        SnapshotReader hr = img.section(hartTag(i));
        harts_[i]->snapshotLoad(hr);
        hr.expectEnd();
    }

    for (const SnapshotHook &hook : snapshotHooks_) {
        SnapshotReader sr = img.section(hook.tag);
        hook.load(sr);
        sr.expectEnd();
    }

    // Strictness in the other direction: every section in the image
    // must have been consumed by the core or by a registered hook.
    for (const SnapshotSection &s : img.sections()) {
        bool known = s.tag == kTagConfig || s.tag == kTagMemory ||
                     s.tag == kTagSched;
        for (unsigned i = 0; !known && i < harts_.size(); i++)
            known = s.tag == hartTag(i);
        for (const SnapshotHook &hook : snapshotHooks_)
            known = known || s.tag == hook.tag;
        if (!known)
            throw SnapshotError("snapshot image: section " +
                                snapshotTagName(s.tag) +
                                " has no registered consumer");
    }

    setCurrentHart(cur);
}

} // namespace uexc::sim
