#include "sim/machine.h"

#include "common/logging.h"

namespace uexc::sim {

Machine::Machine(const MachineConfig &config)
    : config_(config),
      mem_(std::make_unique<PhysMemory>(config.memBytes)),
      cpu_(std::make_unique<Cpu>(*mem_, config.cpu))
{
}

Addr
Machine::unmappedToPhys(Addr vaddr)
{
    if (vaddr >= Cpu::Kseg0Base && vaddr < Cpu::Kseg1Base)
        return vaddr - Cpu::Kseg0Base;
    if (vaddr >= Cpu::Kseg1Base && vaddr < Cpu::Kseg2Base)
        return vaddr - Cpu::Kseg1Base;
    return vaddr;
}

void
Machine::load(const Program &program)
{
    Addr paddr = unmappedToPhys(program.origin);
    if (paddr + 4 * program.words.size() > mem_->size())
        UEXC_FATAL("program at 0x%08x (%zu words) exceeds physical "
                   "memory", program.origin, program.words.size());
    mem_->writeBlock(paddr, program.words.data(),
                     4 * program.words.size());
    for (const auto &[name, addr] : program.symbols) {
        if (symbols_.count(name) && symbols_[name] != addr)
            UEXC_FATAL("machine: conflicting definitions of symbol "
                       "'%s'", name.c_str());
        symbols_[name] = addr;
    }
}

Addr
Machine::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        UEXC_FATAL("machine: unknown symbol '%s'", name.c_str());
    return it->second;
}

bool
Machine::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

Word
Machine::debugReadWord(Addr addr) const
{
    return mem_->readWord(unmappedToPhys(addr));
}

void
Machine::debugWriteWord(Addr addr, Word value)
{
    mem_->writeWord(unmappedToPhys(addr), value);
}

} // namespace uexc::sim
