/**
 * @file
 * Hart: one hardware execution context of the simulated machine.
 *
 * The paper's hardware model (the Tera MTA) is a multithreaded
 * machine: the user-exception register file, the in-user-exception
 * bit, and the pinned frame page are all *per-thread* state, and the
 * scalability argument for user-level vectoring rests on exception
 * delivery touching no shared kernel structures. To express that, the
 * per-context state that used to live inside Cpu — the GPR file,
 * HI/LO, the PC latches, CP0 (including the COP3 user exception
 * register file), the TLB, the I/D caches, and the host-side
 * fast-interpreter caches (predecoded pages and micro-TLBs) — lives
 * here, and Cpu is the shared execute engine that binds to one Hart
 * at a time. A Machine hosts N Harts over one shared PhysMemory and
 * interleaves them deterministically (see Machine::run).
 *
 * Everything in a Hart travels with it across bind/unbind: binding a
 * different hart to the engine never invalidates another hart's
 * caches or statistics.
 */

#ifndef UEXC_SIM_HART_H
#define UEXC_SIM_HART_H

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "sim/cache.h"
#include "sim/costmodel.h"
#include "sim/cp0.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/tlb.h"

namespace uexc::sim {

class FaultInjector;
class SnapshotReader;
class SnapshotWriter;

/** Machine configuration. */
struct CpuConfig
{
    CostModel cost;
    /**
     * Host-side fast interpreter: predecoded per-physical-page
     * instruction arrays plus micro i/d translation caches, so
     * straight-line code skips the full TLB probe and decode on every
     * instruction. Guest-visible behaviour — architectural state,
     * cycle and cost accounting, cache/TLB statistics, observer
     * callbacks — is bit-identical to the reference interpreter (the
     * differential suite in tests/test_differential.cc enforces
     * this); only host wall-clock speed changes. The caches
     * invalidate on stores to a decoded page (PhysMemory page
     * versions) and on any TLB mutation (Tlb::generation), and are
     * keyed by ASID and processor mode so context switches and
     * Status/EntryHi writes cannot alias.
     */
    bool fastInterpreter = false;
    /** COP3 user-mode exception vectoring implemented in hardware. */
    bool userVectorHw = false;
    /**
     * Vector-table variant of user vectoring (paper section 2.2's
     * alternative): the exception target register holds the base of
     * a process-local, pinned table of handler addresses indexed by
     * ExcCode; the hardware loads table[code] while vectoring. A
     * translation miss on the table entry demotes the exception to
     * the kernel (the table page must be pinned, like the frame
     * page). Requires userVectorHw.
     */
    bool userVectorTable = false;
    /** TLBMP executes in hardware (else it raises RI for emulation). */
    bool tlbmpHw = false;
    /** Model I/D cache miss cycles. */
    bool cachesEnabled = false;
    std::size_t icacheBytes = 64 * 1024;
    std::size_t icacheLineBytes = 16;
    std::size_t dcacheBytes = 64 * 1024;
    std::size_t dcacheLineBytes = 16;
    /**
     * Optional deterministic fault injector (not owned; must outlive
     * the machine). A hart only leaves the predecoded fast path while
     * the injector has pending events for it, so a null or drained
     * injector is bit-identical to running without one.
     */
    FaultInjector *faultInjector = nullptr;
};

/** Aggregate execution statistics (per hart). */
struct CpuStats
{
    InstCount instructions = 0;
    Cycles cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t exceptionsTaken = 0;
    std::uint64_t tlbRefillFaults = 0;
    std::uint64_t userVectoredExceptions = 0;
    std::array<std::uint64_t, NumExcCodes> perExcCode{};
};

/**
 * One execution context. See file comment. The Cpu engine has friend
 * access to the raw state; host code inspects and seeds a hart
 * through the accessors below (the same surface Cpu re-exports for
 * its bound hart).
 */
class Hart
{
  public:
    Hart(unsigned id, const CpuConfig &config);

    /** Hart number; also exposed to the guest via CP0 PrId [31:24]. */
    unsigned id() const { return id_; }

    // -- architectural state ------------------------------------------

    Word reg(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, Word v) { if (r != 0) regs_[r] = v; }

    Word hi() const { return hi_; }
    Word lo() const { return lo_; }

    Addr pc() const { return pc_; }
    Addr npc() const { return npc_; }
    /** Set the PC (clears any in-flight delay slot). */
    void setPc(Addr pc)
    {
        pc_ = pc;
        npc_ = pc + 4;
        prevWasControl_ = false;
    }

    /**
     * Whether the next instruction to execute sits in a branch delay
     * slot (the previous instruction was a taken-or-not control
     * transfer). The fault injector must not raise a spurious
     * exception here: restarting a delay-slot instruction needs the
     * branch re-executed, so EPC would have to back up.
     */
    bool inDelaySlot() const { return prevWasControl_; }

    Cp0 &cp0() { return cp0_; }
    const Cp0 &cp0() const { return cp0_; }
    Tlb &tlb() { return tlb_; }
    const Tlb &tlb() const { return tlb_; }

    // -- run control ---------------------------------------------------

    void requestHalt() { halted_ = true; }
    bool halted() const { return halted_; }
    void clearHalt() { halted_ = false; }

    void addBreakpoint(Addr addr) { breakpoints_.insert(addr); }
    void removeBreakpoint(Addr addr) { breakpoints_.erase(addr); }
    void clearBreakpoints() { breakpoints_.clear(); }
    bool hasBreakpoints() const { return !breakpoints_.empty(); }

    // -- statistics -----------------------------------------------------

    const CpuStats &stats() const { return stats_; }
    void clearStats();
    Cycles cycles() const { return stats_.cycles; }
    InstCount instret() const { return stats_.instructions; }

    Cache *icache() { return icache_.get(); }
    Cache *dcache() { return dcache_.get(); }

    // -- host-side caches ----------------------------------------------

    /** Drop the micro-TLBs and the one-entry fetch cache. */
    void flushMicroTlb();
    /** Drop every host-side interpreter cache for this hart. */
    void flushHostCaches();

    // -- snapshot -------------------------------------------------------

    /**
     * Serialize the complete architectural context (GPRs, HI/LO, PC
     * latches, CP0 + COP3 user-exception file, TLB, I/D cache tag
     * stores, breakpoints, statistics). Host-side interpreter caches
     * are deliberately not serialized — they are derived state, and
     * snapshotLoad ends with flushHostCaches() so a restored hart
     * redecodes and re-translates from the restored memory/TLB.
     * Only meaningful between Machine::run calls (at an instruction
     * boundary, where the intra-instruction latches are dead).
     */
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotLoad(SnapshotReader &r);

    // -- parallel-round rollback ---------------------------------------

    /**
     * In-host copy of the full architectural context, cheap enough to
     * take per hart per parallel round. The barrier scheduler saves
     * one before speculatively running a round against store buffers;
     * on a conflict it restores every hart and re-runs the round
     * serially. Unlike the snapshot image this is host-side and
     * value-typed — no serialization, no format versioning.
     * Breakpoints are not included (they cannot change mid-round: the
     * scheduler never runs a round while any hart has breakpoints).
     */
    struct RoundContext
    {
        std::array<Word, NumRegs> regs;
        Addr pc;
        Addr npc;
        Word hi;
        Word lo;
        bool prevWasControl;
        unsigned consecutiveStores;
        bool halted;
        CpuStats stats;
        Cp0 cp0;
        Tlb tlb;
        std::optional<Cache> icache;
        std::optional<Cache> dcache;
    };

    void saveRound(RoundContext &ctx) const;
    /** Restore a saveRound() copy and drop the host-side caches. */
    void restoreRound(const RoundContext &ctx);

  private:
    friend class Cpu;

    /**
     * One physical page of predecoded instructions. Valid while
     * @c version still equals the PhysMemory page version captured at
     * decode time; any store into the page (guest or host side)
     * advances that version and forces a whole-page redecode on the
     * next fetch, which is what keeps self-modifying code correct.
     */
    struct DecodedPage
    {
        static constexpr unsigned NumInsts = PhysMemory::PageBytes / 4;
        std::uint32_t version = 0;
        std::array<DecodedInst, NumInsts> insts;
    };

    /**
     * Micro-TLB entry: one cached successful translation. The key
     * packs (virtual page | ASID << 1 | user-mode bit), so ASID and
     * processor-mode changes miss instead of aliasing; TLB content
     * changes are caught by comparing Tlb::generation before lookup.
     * Bits [11:7] of a real key are always zero (ASID is 6 bits),
     * so kInvalidKey can never match.
     */
    static constexpr Word kInvalidKey = 0x80u;
    static constexpr unsigned kMicroTlbSize = 16;  // direct-mapped

    struct MicroTlbEntry
    {
        Word key = kInvalidKey;
        Addr pbase = 0;
        bool mapped = false;     ///< reference path would probe the TLB
        bool cacheable = true;
        bool writable = false;   ///< filled from a store (or dirty page)
    };

    unsigned id_;
    Cp0 cp0_;
    Tlb tlb_;
    std::unique_ptr<Cache> icache_;
    std::unique_ptr<Cache> dcache_;

    std::array<Word, NumRegs> regs_{};
    Addr pc_ = 0;
    Addr npc_ = 4;
    Word hi_ = 0;
    Word lo_ = 0;

    /** Previous retired instruction was a branch/jump. */
    bool prevWasControl_ = false;
    /** Set by execute() when the instruction raised an exception. */
    bool excRaised_ = false;
    /** Next-NPC staged by the current instruction. */
    Addr stagedNpc_ = 0;
    bool branchTaken_ = false;
    /** xret (or an hcall) moved the PC directly, bypassing npc. */
    bool redirect_ = false;
    unsigned consecutiveStores_ = 0;

    bool halted_ = false;
    std::unordered_set<Addr> breakpoints_;

    CpuStats stats_;

    // -- fast-interpreter caches (host-side only, never architectural) --

    /** Predecoded pages, keyed by physical page number. */
    std::unordered_map<Word, std::unique_ptr<DecodedPage>> decodedPages_;
    /** One-entry fetch cache: the page the PC is streaming through. */
    Word fetchKey_ = kInvalidKey;
    const DecodedPage *fetchPage_ = nullptr;
    Addr fetchPaBase_ = 0;
    Addr fetchVbase_ = 0;
    const std::uint32_t *fetchMemVer_ = nullptr;
    std::uint32_t fetchVersion_ = 0;
    bool fetchMapped_ = false;
    bool fetchCacheable_ = true;
    /** Micro-dTLB for load/store translation. */
    std::array<MicroTlbEntry, kMicroTlbSize> dtlb_;
    /** Tlb::generation the caches were filled under. */
    std::uint64_t tlbGenSeen_ = 0;
};

} // namespace uexc::sim

#endif // UEXC_SIM_HART_H
