/**
 * @file
 * Machine composition: physical memory plus one shared execute engine
 * over N harts, with program-loading and symbol lookup conveniences.
 * Everything above the sim layer (the simulated OS, the runtime, the
 * applications) talks to a Machine.
 *
 * Scheduling determinism contract: Machine::run interleaves harts
 * with a cooperative round-robin quantum scheduler. Hart 0 always
 * runs first; each runnable hart executes up to `quantum`
 * instructions (exceptions and stalls included in its own cycle
 * accounting) before the next hart is bound; halted harts are
 * skipped. The schedule depends only on (program, config, quantum) —
 * no host threads, no clocks — so every multi-hart run is
 * bit-reproducible.
 */

#ifndef UEXC_SIM_MACHINE_H
#define UEXC_SIM_MACHINE_H

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/assembler.h"
#include "sim/cpu.h"
#include "sim/memory.h"
#include "sim/snapshot.h"

namespace uexc::sim {

/** Machine-wide configuration. */
struct MachineConfig
{
    /** Physical memory size in bytes. */
    std::size_t memBytes = 32 * 1024 * 1024;
    CpuConfig cpu;
    /** Number of hardware execution contexts sharing the memory. */
    unsigned harts = 1;
    /**
     * Round-robin scheduling quantum in instructions. Only consulted
     * when harts > 1: a single hart always runs to its caller-given
     * budget in one quantum, preserving bit-identical behaviour with
     * the pre-multihart machine.
     */
    InstCount quantum = 10000;
};

/** Result of a Machine::run call. */
struct MachineRunResult
{
    StopReason reason = StopReason::InstLimit;
    /** Total instructions executed across all harts this call. */
    InstCount instsExecuted = 0;
    /** The hart the stop condition occurred on. */
    unsigned hart = 0;
};

/**
 * A complete simulated machine.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig());

    /**
     * The execute engine, bound to the current hart. Single-hart
     * machines can treat this exactly like the old one-Cpu machine.
     */
    Cpu &cpu() { return *cpu_; }
    const Cpu &cpu() const { return *cpu_; }
    PhysMemory &mem() { return *mem_; }
    const MachineConfig &config() const { return config_; }

    // -- harts --------------------------------------------------------------

    unsigned numHarts() const { return unsigned(harts_.size()); }
    Hart &hart(unsigned i) { return *harts_[i]; }
    const Hart &hart(unsigned i) const { return *harts_[i]; }

    /** The hart the engine is currently bound to. */
    unsigned currentHart() const { return currentHart_; }
    /** Bind the engine to hart @p i (host-side context switch). */
    void setCurrentHart(unsigned i);

    /**
     * Invalidate the translation for (@p vaddr, @p asid) in every
     * hart's TLB — the software analogue of a TLB shootdown, used by
     * kernel unmap/protect paths so no hart retains a stale mapping.
     * On a single-hart machine this is exactly the old single-TLB
     * invalidate.
     */
    void invalidateTlbs(Addr vaddr, unsigned asid);

    /**
     * Run the machine for up to @p max_insts total instructions,
     * round-robin over runnable harts (see file comment). Returns
     * when a hart halts with all others halted (Halted), a hart hits
     * a breakpoint (Breakpoint, with that hart id), or the budget is
     * exhausted (InstLimit). A breakpoint leaves the schedule
     * position intact: the next run() resumes with the same hart so
     * the quantum accounting stays deterministic.
     */
    MachineRunResult run(InstCount max_insts);

    /**
     * Load a finalized program image. The program's origin may be a
     * kseg0/kseg1 virtual address (translated to physical directly)
     * or a physical address below the memory size.
     *
     * The program's symbols are merged into the machine symbol table.
     */
    void load(const Program &program);

    /** Look up a loaded symbol; fatal if absent. */
    Addr symbol(const std::string &name) const;
    bool hasSymbol(const std::string &name) const;

    /** Convert a kseg0/kseg1 virtual address to physical. */
    static Addr unmappedToPhys(Addr vaddr);

    /**
     * Direct (host) read/write of memory by kseg0/kseg1/physical
     * address, bypassing translation and cost modeling. For loaders
     * and test assertions only. Writes bump the PhysMemory page
     * version, so any hart's predecoded copy of the page is
     * invalidated before its next fetch.
     */
    Word debugReadWord(Addr addr) const;
    void debugWriteWord(Addr addr, Word value);

    // -- checkpoint/restore -------------------------------------------------

    using SnapshotSaveFn = std::function<void(SnapshotWriter &)>;
    using SnapshotLoadFn = std::function<void(SnapshotReader &)>;

    /**
     * Register an extra snapshot section. The os/apps layers use this
     * so a Machine checkpoint carries *their* host-side bookkeeping
     * (kernel allocation cursors, delivery state, injector queues,
     * DSM directories) alongside the architectural state. Sections
     * are saved in registration order; restore is strict — a
     * registered tag missing from the image, or an image section with
     * no registered consumer, raises SnapshotError. The callables
     * must stay valid for the machine's lifetime (in practice the
     * kernel/env/cluster own the machine's users and outlive every
     * checkpoint/restore call).
     */
    void registerSnapshotSection(Word tag, SnapshotSaveFn save,
                                 SnapshotLoadFn load);

    /**
     * Serialize the complete machine — every hart's architectural
     * context, physical memory (zero pages elided), the scheduler
     * position, and every registered section — into a validated,
     * CRC-protected image. Only meaningful between run() calls.
     */
    std::vector<Byte> checkpoint() const;

    /**
     * Restore a checkpoint() image into this machine. The machine
     * must be structurally identical to the one that produced the
     * image (same MachineConfig, same registered sections) — restore
     * targets a freshly constructed twin, it does not morph arbitrary
     * machines. Throws SnapshotError on any validation failure;
     * forward execution after a successful restore is bit-identical
     * to the checkpointed machine (host interpreter caches are
     * flushed and rebuilt lazily).
     */
    void restore(const std::vector<Byte> &image);

  private:
    struct SnapshotHook
    {
        Word tag;
        SnapshotSaveFn save;
        SnapshotLoadFn load;
    };

    MachineConfig config_;
    std::unique_ptr<PhysMemory> mem_;
    std::vector<std::unique_ptr<Hart>> harts_;
    std::unique_ptr<Cpu> cpu_;
    unsigned currentHart_ = 0;
    std::map<std::string, Addr> symbols_;
    std::vector<SnapshotHook> snapshotHooks_;
};

} // namespace uexc::sim

#endif // UEXC_SIM_MACHINE_H
