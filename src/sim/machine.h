/**
 * @file
 * Machine composition: physical memory plus one shared execute engine
 * over N harts, with program-loading and symbol lookup conveniences.
 * Everything above the sim layer (the simulated OS, the runtime, the
 * applications) talks to a Machine.
 *
 * Scheduling determinism contract: Machine::run interleaves harts
 * with a cooperative round-robin quantum scheduler. Hart 0 always
 * runs first; each runnable hart executes up to `quantum`
 * instructions (exceptions and stalls included in its own cycle
 * accounting) before the next hart is bound; halted harts are
 * skipped. The schedule depends only on (program, config, quantum) —
 * no clocks — so every multi-hart run is bit-reproducible. The
 * Barrier scheduler preserves this contract on real host threads
 * (speculative rounds that commit or roll back to the serial
 * schedule, see SchedulerMode); only the opt-in Relaxed scheduler
 * trades the contract away for wall-clock throughput.
 */

#ifndef UEXC_SIM_MACHINE_H
#define UEXC_SIM_MACHINE_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/assembler.h"
#include "sim/cpu.h"
#include "sim/memory.h"
#include "sim/snapshot.h"

namespace uexc::sim {

/**
 * How Machine::run drives multiple harts.
 *
 *  - Serial: the reference scheduler — one host thread, round-robin
 *    quanta, the exact contract in the file comment above.
 *  - Barrier: each hart's quantum runs on its own host thread against
 *    a frozen memory image with a per-hart store buffer; all harts
 *    rendezvous at a barrier, the round is checked for cross-hart
 *    page conflicts, and committed in serial round order — or rolled
 *    back and re-run serially. Observable behaviour (state, cycles,
 *    instret, delivery stats, checkpoint images) is bit-identical to
 *    Serial; tests/test_parallel.cc enforces this.
 *  - Relaxed: opt-in free-running harts with no barrier, an atomic
 *    shared instruction budget, serialized host calls, and epoch-
 *    counted deferred TLB shootdowns. Raw wall-clock throughput; NOT
 *    bit-identical to Serial (the interleaving is real). Falls back
 *    to Serial when an observer, breakpoints, or a fault injector
 *    need the deterministic schedule.
 *  - Auto: resolve from the UEXC_PARALLEL environment variable
 *    ("0"/"serial" → Serial, "1"/"barrier" → Barrier, "2"/"relaxed"
 *    → Relaxed, unset → Serial), so CI can force either scheduler
 *    into existing binaries without rebuilds.
 *
 * The mode is host policy, not machine state: it is deliberately
 * excluded from the checkpoint config echo, so serial and barrier
 * machines produce byte-identical images and can restore each
 * other's.
 */
enum class SchedulerMode { Auto, Serial, Barrier, Relaxed };

/** Barrier-scheduler outcome counters (host-side measurement). */
struct BarrierSchedStats
{
    std::uint64_t parallelRounds = 0;   ///< speculative rounds started
    std::uint64_t committedRounds = 0;  ///< ...that committed
    std::uint64_t abortedRounds = 0;    ///< ...rolled back to serial
    std::uint64_t serialQuanta = 0;     ///< quanta run on the caller
};

/** Relaxed-scheduler host-call lock contention (host-side). */
struct HcallLockStats
{
    std::uint64_t acquires = 0;
    std::uint64_t contended = 0;
};

/** Machine-wide configuration. */
struct MachineConfig
{
    /** Physical memory size in bytes. */
    std::size_t memBytes = 32 * 1024 * 1024;
    CpuConfig cpu;
    /** Number of hardware execution contexts sharing the memory. */
    unsigned harts = 1;
    /**
     * Round-robin scheduling quantum in instructions. Only consulted
     * when harts > 1: a single hart always runs to its caller-given
     * budget in one quantum, preserving bit-identical behaviour with
     * the pre-multihart machine.
     */
    InstCount quantum = 10000;
    /** Scheduler driving the harts; see SchedulerMode. */
    SchedulerMode scheduler = SchedulerMode::Auto;
};

/**
 * Observed page-touch sets of speculative barrier rounds, recorded
 * when a log is attached via Machine::setPageTouchLog. One Round per
 * speculative round (committed or aborted), one HartTouches per live
 * hart in serial rotation order, holding copies of that hart's
 * StoreBuffer page sets at the rendezvous. The static shared-page
 * analyzer's soundness oracle compares these against its may-sets.
 */
struct PageTouchLog
{
    struct HartTouches
    {
        unsigned hart = 0;
        std::unordered_set<Addr> readPages;
        std::unordered_set<Addr> writePages;
        std::unordered_set<Addr> fetchPages;
        /** The hart aborted its own quantum (SMC or hcall). */
        bool selfAborted = false;
    };
    struct Round
    {
        std::vector<HartTouches> harts;
        bool aborted = false;
    };
    std::vector<Round> rounds;
};

/** Result of a Machine::run call. */
struct MachineRunResult
{
    StopReason reason = StopReason::InstLimit;
    /** Total instructions executed across all harts this call. */
    InstCount instsExecuted = 0;
    /** The hart the stop condition occurred on. */
    unsigned hart = 0;
};

/**
 * A complete simulated machine.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig());
    ~Machine();

    /**
     * The execute engine, bound to the current hart. Single-hart
     * machines can treat this exactly like the old one-Cpu machine.
     */
    Cpu &cpu() { return *cpu_; }
    const Cpu &cpu() const { return *cpu_; }
    PhysMemory &mem() { return *mem_; }
    const MachineConfig &config() const { return config_; }

    // -- harts --------------------------------------------------------------

    unsigned numHarts() const { return unsigned(harts_.size()); }
    Hart &hart(unsigned i) { return *harts_[i]; }
    const Hart &hart(unsigned i) const { return *harts_[i]; }

    /** The resolved scheduler mode (never Auto). */
    SchedulerMode schedulerMode() const { return scheduler_; }
    const BarrierSchedStats &barrierStats() const
    {
        return barrierStats_;
    }
    const HcallLockStats &hcallLockStats() const
    {
        return hcallLockStats_;
    }

    /** Attach (or detach with nullptr) a recorder for the page sets
     *  of every speculative barrier round. Not snapshotted; host-side
     *  instrumentation only. */
    void setPageTouchLog(PageTouchLog *log) { pageTouchLog_ = log; }

    /** The hart the engine is currently bound to. */
    unsigned currentHart() const { return currentHart_; }
    /** Bind the engine to hart @p i (host-side context switch). */
    void setCurrentHart(unsigned i);

    /**
     * Invalidate the translation for (@p vaddr, @p asid) in every
     * hart's TLB — the software analogue of a TLB shootdown, used by
     * kernel unmap/protect paths so no hart retains a stale mapping.
     * On a single-hart machine this is exactly the old single-TLB
     * invalidate.
     */
    void invalidateTlbs(Addr vaddr, unsigned asid);

    /**
     * Run the machine for up to @p max_insts total instructions,
     * round-robin over runnable harts (see file comment). Returns
     * when a hart halts with all others halted (Halted), a hart hits
     * a breakpoint (Breakpoint, with that hart id), or the budget is
     * exhausted (InstLimit). A breakpoint leaves the schedule
     * position intact: the next run() resumes with the same hart so
     * the quantum accounting stays deterministic.
     */
    MachineRunResult run(InstCount max_insts);

    /**
     * Load a finalized program image. The program's origin may be a
     * kseg0/kseg1 virtual address (translated to physical directly)
     * or a physical address below the memory size.
     *
     * The program's symbols are merged into the machine symbol table.
     */
    void load(const Program &program);

    /** Look up a loaded symbol; fatal if absent. */
    Addr symbol(const std::string &name) const;
    bool hasSymbol(const std::string &name) const;

    /** Convert a kseg0/kseg1 virtual address to physical. */
    static Addr unmappedToPhys(Addr vaddr);

    /**
     * Direct (host) read/write of memory by kseg0/kseg1/physical
     * address, bypassing translation and cost modeling. For loaders
     * and test assertions only. Writes bump the PhysMemory page
     * version, so any hart's predecoded copy of the page is
     * invalidated before its next fetch.
     */
    Word debugReadWord(Addr addr) const;
    void debugWriteWord(Addr addr, Word value);

    // -- checkpoint/restore -------------------------------------------------

    using SnapshotSaveFn = std::function<void(SnapshotWriter &)>;
    using SnapshotLoadFn = std::function<void(SnapshotReader &)>;

    /**
     * Register an extra snapshot section. The os/apps layers use this
     * so a Machine checkpoint carries *their* host-side bookkeeping
     * (kernel allocation cursors, delivery state, injector queues,
     * DSM directories) alongside the architectural state. Sections
     * are saved in registration order; restore is strict — a
     * registered tag missing from the image, or an image section with
     * no registered consumer, raises SnapshotError. The callables
     * must stay valid for the machine's lifetime (in practice the
     * kernel/env/cluster own the machine's users and outlive every
     * checkpoint/restore call).
     */
    void registerSnapshotSection(Word tag, SnapshotSaveFn save,
                                 SnapshotLoadFn load);

    /**
     * Serialize the complete machine — every hart's architectural
     * context, physical memory (zero pages elided), the scheduler
     * position, and every registered section — into a validated,
     * CRC-protected image. Only meaningful between run() calls.
     */
    std::vector<Byte> checkpoint() const;

    /**
     * Restore a checkpoint() image into this machine. The machine
     * must be structurally identical to the one that produced the
     * image (same MachineConfig, same registered sections) — restore
     * targets a freshly constructed twin, it does not morph arbitrary
     * machines. Throws SnapshotError on any validation failure;
     * forward execution after a successful restore is bit-identical
     * to the checkpointed machine (host interpreter caches are
     * flushed and rebuilt lazily).
     */
    void restore(const std::vector<Byte> &image);

  private:
    struct SnapshotHook
    {
        Word tag;
        SnapshotSaveFn save;
        SnapshotLoadFn load;
    };
    struct ParallelPool;

    MachineRunResult runSerialImpl(InstCount max_insts);
    MachineRunResult runBarrier(InstCount max_insts);
    MachineRunResult runRelaxed(InstCount max_insts);
    void ensurePool();
    void relaxedHcall(unsigned hart, Word service);
    void applyShootdowns(unsigned hart);
    void drainShootdowns();

    MachineConfig config_;
    std::unique_ptr<PhysMemory> mem_;
    std::vector<std::unique_ptr<Hart>> harts_;
    std::unique_ptr<Cpu> cpu_;
    unsigned currentHart_ = 0;
    std::map<std::string, Addr> symbols_;
    std::vector<SnapshotHook> snapshotHooks_;

    // -- parallel scheduling (host-side only, never snapshotted) ------

    SchedulerMode scheduler_ = SchedulerMode::Serial;
    std::unique_ptr<ParallelPool> pool_;
    /** Serial quanta left before the next speculative round (abort
     *  backoff); doubled per consecutive abort, capped at 64. */
    unsigned serialStreak_ = 0;
    unsigned abortStreakLen_ = 0;
    BarrierSchedStats barrierStats_;
    PageTouchLog *pageTouchLog_ = nullptr;

    std::mutex hcallMutex_;
    HcallLockStats hcallLockStats_;

    /** Deferred TLB shootdowns for the relaxed scheduler: epoch bumps
     *  publish new pending entries; each hart's own worker applies its
     *  list at chunk boundaries (so no thread ever mutates another
     *  thread's TLB). */
    std::mutex shootdownMutex_;
    std::vector<std::vector<std::pair<Addr, unsigned>>>
        pendingShootdowns_;
    std::vector<std::uint64_t> shootdownSeen_;
    std::atomic<std::uint64_t> shootdownEpoch_{0};
    std::atomic<bool> relaxedActive_{false};
};

} // namespace uexc::sim

#endif // UEXC_SIM_MACHINE_H
