/**
 * @file
 * Machine composition: physical memory plus CPU, with program-loading
 * and symbol lookup conveniences. Everything above the sim layer (the
 * simulated OS, the runtime, the applications) talks to a Machine.
 */

#ifndef UEXC_SIM_MACHINE_H
#define UEXC_SIM_MACHINE_H

#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "common/types.h"
#include "sim/assembler.h"
#include "sim/cpu.h"
#include "sim/memory.h"

namespace uexc::sim {

/** Machine-wide configuration. */
struct MachineConfig
{
    /** Physical memory size in bytes. */
    std::size_t memBytes = 32 * 1024 * 1024;
    CpuConfig cpu;
};

/**
 * A complete simulated machine.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig());

    Cpu &cpu() { return *cpu_; }
    const Cpu &cpu() const { return *cpu_; }
    PhysMemory &mem() { return *mem_; }
    const MachineConfig &config() const { return config_; }

    /**
     * Load a finalized program image. The program's origin may be a
     * kseg0/kseg1 virtual address (translated to physical directly)
     * or a physical address below the memory size.
     *
     * The program's symbols are merged into the machine symbol table.
     */
    void load(const Program &program);

    /** Look up a loaded symbol; fatal if absent. */
    Addr symbol(const std::string &name) const;
    bool hasSymbol(const std::string &name) const;

    /** Convert a kseg0/kseg1 virtual address to physical. */
    static Addr unmappedToPhys(Addr vaddr);

    /**
     * Direct (host) read/write of memory by kseg0/kseg1/physical
     * address, bypassing translation and cost modeling. For loaders
     * and test assertions only.
     */
    Word debugReadWord(Addr addr) const;
    void debugWriteWord(Addr addr, Word value);

  private:
    MachineConfig config_;
    std::unique_ptr<PhysMemory> mem_;
    std::unique_ptr<Cpu> cpu_;
    std::map<std::string, Addr> symbols_;
};

} // namespace uexc::sim

#endif // UEXC_SIM_MACHINE_H
