#include "sim/pseudo.h"

#include "common/logging.h"
#include "sim/isa.h"

namespace uexc::sim::pseudo {

void
loadAddress(Assembler &a, unsigned rd, const std::string &label)
{
    a.luiHi(rd, label);
    a.addiuLo(rd, rd, label);
}

void
loadGlobal(Assembler &a, unsigned rt, const std::string &label,
           unsigned scratch)
{
    a.luiHi(scratch, label);
    a.lwLo(rt, label, scratch);
}

void
storeGlobal(Assembler &a, unsigned rt, const std::string &label,
            unsigned scratch)
{
    if (scratch == rt)
        UEXC_FATAL("storeGlobal: scratch register must not alias the "
                   "stored value (r%u)", rt);
    a.luiHi(scratch, label);
    a.swLo(rt, label, scratch);
}

void
emitSyscall(Assembler &a, Word num)
{
    a.li(V0, num);
    a.syscall();
}

} // namespace uexc::sim::pseudo
