/**
 * @file
 * A programmatic assembler for the simulated ISA.
 *
 * Guest programs — the simulated kernel's exception vectors, the
 * Ultrix-style signal path, the paper's 65-instruction fast handler,
 * and user-level benchmark loops — are written against this builder.
 * It supports named labels with forward references (branches, jumps,
 * lui/ori address materialization, and data words), data emission, and
 * alignment. finalize() resolves all fixups and returns the image.
 *
 * Instruction-emitting methods mirror the encoders in sim/encoding.h;
 * control-flow variants taking a label string are provided for
 * branches and jumps. Delay slots are NOT filled automatically: every
 * emitted instruction is exactly one machine word, so the generated
 * code has deterministic, auditable instruction counts (this matters
 * for reproducing Table 3 of the paper).
 */

#ifndef UEXC_SIM_ASSEMBLER_H
#define UEXC_SIM_ASSEMBLER_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/encoding.h"
#include "sim/isa.h"

namespace uexc::sim {

/** A finalized guest-code image: words to be placed at an origin. */
struct Program
{
    Addr origin = 0;                 ///< load address of words[0]
    std::vector<Word> words;         ///< the image
    std::map<std::string, Addr> symbols; ///< label name -> address

    /** Address of a label; fatal if absent. */
    Addr symbol(const std::string &name) const;
    /** Whether a label exists. */
    bool hasSymbol(const std::string &name) const;
    /** End address (origin + 4 * words.size()). */
    Addr end() const { return origin + 4 * static_cast<Addr>(words.size()); }
};

/**
 * The assembler / program builder. See file comment.
 */
class Assembler
{
  public:
    /** Start building a program at virtual address @p origin. */
    explicit Assembler(Addr origin);

    // -- labels and layout --------------------------------------------

    /** Bind @p name to the current location. Names must be unique. */
    void label(const std::string &name);
    /**
     * Bind @p name to a fixed address outside this program — a symbol
     * defined by a separately assembled section (e.g. a data section
     * a text-section assembler must reference). The symbol resolves
     * fixups exactly like a local label and is exported in the
     * finalized program's symbol table.
     */
    void bindExternal(const std::string &name, Addr addr);
    /** Current emission address. */
    Addr here() const;
    /** Emit raw data word(s). */
    void word(Word w);
    void words(const std::vector<Word> &ws);
    /** Emit a data word that will hold the address of @p label_name. */
    void wordAddr(const std::string &label_name);
    /** Reserve @p bytes of zeroed space (must be word multiple). */
    void space(unsigned bytes);
    /** Align to a power-of-two byte boundary, padding with nops. */
    void align(unsigned bytes);

    // -- raw emission ---------------------------------------------------

    /** Emit an already-encoded instruction word. */
    void emit(Word encoded);

    // -- arithmetic / logic ----------------------------------------------

    void sll(unsigned rd, unsigned rt, unsigned shamt);
    void srl(unsigned rd, unsigned rt, unsigned shamt);
    void sra(unsigned rd, unsigned rt, unsigned shamt);
    void sllv(unsigned rd, unsigned rt, unsigned rs);
    void srlv(unsigned rd, unsigned rt, unsigned rs);
    void srav(unsigned rd, unsigned rt, unsigned rs);
    void add(unsigned rd, unsigned rs, unsigned rt);
    void addu(unsigned rd, unsigned rs, unsigned rt);
    void sub(unsigned rd, unsigned rs, unsigned rt);
    void subu(unsigned rd, unsigned rs, unsigned rt);
    void and_(unsigned rd, unsigned rs, unsigned rt);
    void or_(unsigned rd, unsigned rs, unsigned rt);
    void xor_(unsigned rd, unsigned rs, unsigned rt);
    void nor(unsigned rd, unsigned rs, unsigned rt);
    void slt(unsigned rd, unsigned rs, unsigned rt);
    void sltu(unsigned rd, unsigned rs, unsigned rt);
    void mult(unsigned rs, unsigned rt);
    void multu(unsigned rs, unsigned rt);
    void div(unsigned rs, unsigned rt);
    void divu(unsigned rs, unsigned rt);
    void mfhi(unsigned rd);
    void mthi(unsigned rs);
    void mflo(unsigned rd);
    void mtlo(unsigned rs);
    void addi(unsigned rt, unsigned rs, SWord imm);
    void addiu(unsigned rt, unsigned rs, SWord imm);
    void slti(unsigned rt, unsigned rs, SWord imm);
    void sltiu(unsigned rt, unsigned rs, SWord imm);
    void andi(unsigned rt, unsigned rs, Word imm);
    void ori(unsigned rt, unsigned rs, Word imm);
    void xori(unsigned rt, unsigned rs, Word imm);
    void lui(unsigned rt, Word imm);

    // -- control transfer -------------------------------------------------

    void j(const std::string &label_name);
    void jal(const std::string &label_name);
    void jr(unsigned rs);
    void jalr(unsigned rd, unsigned rs);
    void beq(unsigned rs, unsigned rt, const std::string &label_name);
    void bne(unsigned rs, unsigned rt, const std::string &label_name);
    void blez(unsigned rs, const std::string &label_name);
    void bgtz(unsigned rs, const std::string &label_name);
    void bltz(unsigned rs, const std::string &label_name);
    void bgez(unsigned rs, const std::string &label_name);
    void bltzal(unsigned rs, const std::string &label_name);
    void bgezal(unsigned rs, const std::string &label_name);

    // -- memory ------------------------------------------------------------

    void lb(unsigned rt, SWord offset, unsigned base);
    void lbu(unsigned rt, SWord offset, unsigned base);
    void lh(unsigned rt, SWord offset, unsigned base);
    void lhu(unsigned rt, SWord offset, unsigned base);
    void lw(unsigned rt, SWord offset, unsigned base);
    void sb(unsigned rt, SWord offset, unsigned base);
    void sh(unsigned rt, SWord offset, unsigned base);
    void sw(unsigned rt, SWord offset, unsigned base);

    // -- traps, CP0, extensions --------------------------------------------

    void syscall();
    void break_(Word code = 0);
    void mfc0(unsigned rt, unsigned cp0_reg);
    void mtc0(unsigned rt, unsigned cp0_reg);
    void tlbr();
    void tlbwi();
    void tlbwr();
    void tlbp();
    void rfe();
    void mfux(unsigned rt, UxReg ux_reg);
    void mtux(unsigned rt, UxReg ux_reg);
    void xret();
    void tlbmp(unsigned rs, unsigned rt);
    void hcall(Word service);

    // -- pseudo-instructions -------------------------------------------------

    /** No-operation (sll zero, zero, 0). */
    void nop();
    /** rd := rs. */
    void move(unsigned rd, unsigned rs);
    /**
     * Load a 32-bit constant. Emits 1 instruction when the constant
     * fits addiu/lui/ori forms, else 2 (lui+ori).
     */
    void li(unsigned rd, Word value);
    /** Load a 32-bit constant, always as exactly lui+ori (2 words). */
    void li32(unsigned rd, Word value);
    /** Load a label's address, always as exactly lui+ori (2 words). */
    void la(unsigned rd, const std::string &label_name);
    /**
     * lui rt, %hi(label) — the carry-adjusted high half, for pairing
     * with the sign-extending %lo displacement of lwLo/swLo/addiuLo.
     */
    void luiHi(unsigned rt, const std::string &label_name);
    /** lw rt, %lo(label)(base). */
    void lwLo(unsigned rt, const std::string &label_name, unsigned base);
    /** sw rt, %lo(label)(base). */
    void swLo(unsigned rt, const std::string &label_name, unsigned base);
    /** addiu rt, base, %lo(label). */
    void addiuLo(unsigned rt, unsigned base,
                 const std::string &label_name);

    // -- finalization -----------------------------------------------------

    /**
     * Resolve all fixups and return the built program. Fatal if any
     * referenced label was never bound.
     */
    Program finalize();

    /** Number of instructions/words emitted so far. */
    size_t size() const { return words_.size(); }

  private:
    enum class FixKind { Branch16, Jump26, Hi16, HiAdj16, Lo16, Word32 };

    struct Fixup
    {
        FixKind kind;
        size_t index;       ///< index into words_
        std::string labelName;
    };

    void addFixup(FixKind kind, const std::string &label_name);

    Addr origin_;
    std::vector<Word> words_;
    std::map<std::string, Addr> symbols_;
    std::vector<Fixup> fixups_;
};

} // namespace uexc::sim

#endif // UEXC_SIM_ASSEMBLER_H
