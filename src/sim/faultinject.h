/**
 * @file
 * Seeded, deterministic fault injection.
 *
 * A FaultInjector holds a list of FaultEvents, each bound to a hart
 * and an instruction count. The interpreter's reference loop asks the
 * injector before every step whether an event is due and, if so, the
 * injector perturbs architectural or memory state in place:
 *
 *  - MemBitFlip: flip one bit of a physical-memory word,
 *  - TlbCorrupt: clear the valid bit of a TLB entry *in place* (the
 *    kernel's pmap consistency check then sees a TLB/PTE disagreement
 *    and diagnoses a bad trap -> GuestError),
 *  - TlbSpuriousMiss: evict a TLB entry entirely (park it on an
 *    impossible VPN, the same idiom Tlb::invalidate uses) so the next
 *    access takes a genuine, recoverable refill,
 *  - SpuriousException: raise a synchronous TLB-refill exception that
 *    the guest did not cause; the k0/k1-only refill handler repairs
 *    it transparently,
 *  - HandlerRunaway: overwrite the entry of the user-level exception
 *    stub with a branch-to-self, forcing the delivery watchdog to
 *    demote the process to kernel-mediated delivery.
 *
 * Determinism: events fire at fixed (hart, instret) points, all
 * randomness comes from the caller via splitmix64(), and a machine
 * whose injector has no pending events for a hart behaves
 * bit-identically (state, cycles, stats) to one with no injector at
 * all -- Cpu::run only leaves the predecoded fast path while events
 * are pending.
 */

#ifndef UEXC_SIM_FAULTINJECT_H
#define UEXC_SIM_FAULTINJECT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace uexc::sim {

class Cpu;
class SnapshotReader;
class SnapshotWriter;

/** The kinds of state perturbation the injector can apply. */
enum class FaultKind {
    MemBitFlip,        ///< flip one bit of a physical word
    TlbCorrupt,        ///< clear V of a TLB entry in place
    TlbSpuriousMiss,   ///< evict a TLB entry (recoverable refill)
    SpuriousException, ///< raise an uncaused refill exception
    HandlerRunaway,    ///< turn the user stub into an infinite loop
};

const char *faultKindName(FaultKind kind);

/** One scheduled injection. */
struct FaultEvent {
    FaultKind kind = FaultKind::MemBitFlip;
    unsigned hart = 0;     ///< hart whose instruction stream triggers it
    InstCount atInst = 0;  ///< fire once hart's instret() reaches this
    Addr addr = 0;         ///< MemBitFlip/HandlerRunaway: physical
                           ///< address; SpuriousException: bad vaddr
    unsigned bit = 0;      ///< MemBitFlip: bit index (mod 32)
    unsigned tlbIndex = 0; ///< Tlb*: entry index (mod NumEntries)
};

/** A delivered injection, for diagnosis. */
struct FiredEvent {
    FaultEvent event;
    InstCount firedAt = 0; ///< instret() at delivery
    Addr pc = 0;           ///< guest PC at delivery
};

class FaultInjector
{
  public:
    /** Schedule an injection. */
    void addEvent(const FaultEvent &event);

    /**
     * Whether any scheduled event for @p hart has not fired yet. The
     * interpreter stays on the (hookless) fast path whenever this is
     * false, which is what makes an idle injector zero-overhead.
     */
    bool wants(unsigned hart) const;

    /**
     * Fire every due event for the bound hart of @p cpu. Called by the
     * reference interpreter loop before each step. SpuriousException
     * events defer (stay pending) until the hart is in user mode, at a
     * kuseg PC, and not in a branch delay slot; the deferral is itself
     * deterministic.
     */
    void maybeFire(Cpu &cpu);

    /** Events delivered so far, in delivery order. */
    const std::vector<FiredEvent> &fired() const { return fired_; }

    /** Events still waiting (including deferred ones). */
    std::size_t pendingCount() const { return pending_.size(); }

    /** Drop all pending and fired events. */
    void clear();

    /**
     * Declare [begin, end) a no-injection PC window: a
     * SpuriousException whose hart is executing inside it defers
     * (deterministically) until the PC leaves. The runtime registers
     * the fast stub's register-restore window — after the stub loads
     * its resume target into k0, a spurious refill would let the
     * k0/k1-only refill handler clobber that target, turning a
     * transparent repair into a wild jump (the PR 4 "K0
     * resume-window" hazard). Masking the window makes the injected
     * fault land one instruction later, where it is recoverable.
     * Windows are part of the rig's construction, not of its mutable
     * state, so snapshots do not carry them.
     */
    void maskPcWindow(Addr begin, Addr end);
    const std::vector<std::pair<Addr, Addr>> &maskedPcWindows() const
    {
        return maskedWindows_;
    }

    /**
     * Serialize/restore the mutable stream state (pending and fired
     * events). A campaign rig registers these with
     * Machine::registerSnapshotSection so mid-campaign checkpoints
     * resume with exactly the not-yet-fired events outstanding.
     */
    void snapshotSave(SnapshotWriter &w) const;
    void snapshotLoad(SnapshotReader &r);

    /**
     * The shared PRNG step for everything seeded in this subsystem
     * (campaign placement, unreliable-network rolls): advances
     * @p state and returns 64 uniform bits. splitmix64 keeps every
     * consumer clock- and platform-independent.
     */
    static std::uint64_t splitmix64(std::uint64_t &state);

  private:
    bool fire(Cpu &cpu, const FaultEvent &event);
    bool pcMasked(Addr pc) const;

    std::vector<FaultEvent> pending_;
    std::vector<FiredEvent> fired_;
    std::vector<std::pair<Addr, Addr>> maskedWindows_;
};

} // namespace uexc::sim

#endif // UEXC_SIM_FAULTINJECT_H
