/**
 * @file
 * Instruction encoders: one free function per mnemonic, each returning
 * the 32-bit machine word. These are the inverse of sim::decode() and
 * are exercised by round-trip property tests.
 *
 * Branch encoders take the *signed word offset* (the value that goes
 * in the immediate field); the Assembler provides the label-based
 * interface on top of these.
 */

#ifndef UEXC_SIM_ENCODING_H
#define UEXC_SIM_ENCODING_H

#include "common/types.h"
#include "sim/isa.h"

namespace uexc::sim::enc {

// R-format helpers ---------------------------------------------------------

Word rType(Funct funct, unsigned rd, unsigned rs, unsigned rt,
           unsigned shamt = 0);
Word iType(Opcode op, unsigned rt, unsigned rs, Word imm16);
Word jType(Opcode op, Word target26);

// shifts
Word sll(unsigned rd, unsigned rt, unsigned shamt);
Word srl(unsigned rd, unsigned rt, unsigned shamt);
Word sra(unsigned rd, unsigned rt, unsigned shamt);
Word sllv(unsigned rd, unsigned rt, unsigned rs);
Word srlv(unsigned rd, unsigned rt, unsigned rs);
Word srav(unsigned rd, unsigned rt, unsigned rs);

// three-register arithmetic / logic
Word add(unsigned rd, unsigned rs, unsigned rt);
Word addu(unsigned rd, unsigned rs, unsigned rt);
Word sub(unsigned rd, unsigned rs, unsigned rt);
Word subu(unsigned rd, unsigned rs, unsigned rt);
Word and_(unsigned rd, unsigned rs, unsigned rt);
Word or_(unsigned rd, unsigned rs, unsigned rt);
Word xor_(unsigned rd, unsigned rs, unsigned rt);
Word nor(unsigned rd, unsigned rs, unsigned rt);
Word slt(unsigned rd, unsigned rs, unsigned rt);
Word sltu(unsigned rd, unsigned rs, unsigned rt);

// multiply / divide
Word mult(unsigned rs, unsigned rt);
Word multu(unsigned rs, unsigned rt);
Word div(unsigned rs, unsigned rt);
Word divu(unsigned rs, unsigned rt);
Word mfhi(unsigned rd);
Word mthi(unsigned rs);
Word mflo(unsigned rd);
Word mtlo(unsigned rs);

// immediate arithmetic / logic
Word addi(unsigned rt, unsigned rs, SWord imm);
Word addiu(unsigned rt, unsigned rs, SWord imm);
Word slti(unsigned rt, unsigned rs, SWord imm);
Word sltiu(unsigned rt, unsigned rs, SWord imm);
Word andi(unsigned rt, unsigned rs, Word imm);
Word ori(unsigned rt, unsigned rs, Word imm);
Word xori(unsigned rt, unsigned rs, Word imm);
Word lui(unsigned rt, Word imm);

// control transfer
Word j(Word target26);
Word jal(Word target26);
Word jr(unsigned rs);
Word jalr(unsigned rd, unsigned rs);
Word beq(unsigned rs, unsigned rt, SWord word_offset);
Word bne(unsigned rs, unsigned rt, SWord word_offset);
Word blez(unsigned rs, SWord word_offset);
Word bgtz(unsigned rs, SWord word_offset);
Word bltz(unsigned rs, SWord word_offset);
Word bgez(unsigned rs, SWord word_offset);
Word bltzal(unsigned rs, SWord word_offset);
Word bgezal(unsigned rs, SWord word_offset);

// memory
Word lb(unsigned rt, SWord offset, unsigned base);
Word lbu(unsigned rt, SWord offset, unsigned base);
Word lh(unsigned rt, SWord offset, unsigned base);
Word lhu(unsigned rt, SWord offset, unsigned base);
Word lw(unsigned rt, SWord offset, unsigned base);
Word sb(unsigned rt, SWord offset, unsigned base);
Word sh(unsigned rt, SWord offset, unsigned base);
Word sw(unsigned rt, SWord offset, unsigned base);

// traps
Word syscall();
Word break_(Word code = 0);

// CP0 / TLB
Word mfc0(unsigned rt, unsigned cp0_reg);
Word mtc0(unsigned rt, unsigned cp0_reg);
Word tlbr();
Word tlbwi();
Word tlbwr();
Word tlbp();
Word rfe();

// extensions
Word mfux(unsigned rt, UxReg ux_reg);
Word mtux(unsigned rt, UxReg ux_reg);
Word xret();
Word tlbmp(unsigned rs, unsigned rt);
Word hcall(Word service26);

// convenience pseudo-instructions
Word nop();
/** move rd := rs (encoded as addu rd, rs, zero). */
Word move(unsigned rd, unsigned rs);

} // namespace uexc::sim::enc

#endif // UEXC_SIM_ENCODING_H
