#include "sim/memory.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::sim {

PhysMemory::PhysMemory(std::size_t size)
    : data_(size, 0), pageVersions_((size + PageBytes - 1) / PageBytes, 0)
{
    if (size == 0 || size % 4 != 0)
        UEXC_FATAL("physical memory size %zu is not a positive word "
                   "multiple", size);
}

void
PhysMemory::check(Addr paddr, unsigned access_size) const
{
    if (paddr + access_size > data_.size() || paddr + access_size < paddr)
        UEXC_PANIC("physical access at 0x%08x size %u out of range "
                   "(memory is %zu bytes)", paddr, access_size,
                   data_.size());
    if (!isAligned(paddr, access_size))
        UEXC_PANIC("unaligned physical access at 0x%08x size %u "
                   "(CPU must raise AdEL/AdES before memory access)",
                   paddr, access_size);
}

// The accesses are naturally aligned (check() enforces it), so the
// concurrent-mode casts below are valid targets for the host's atomic
// loads and stores; relaxed ordering is all the guest memory model
// needs (the simulated ISA has no ordered or atomic accesses).

Word
PhysMemory::readWord(Addr paddr) const
{
    check(paddr, 4);
    if (concurrent_) {
        return __atomic_load_n(
            reinterpret_cast<const std::uint32_t *>(&data_[paddr]),
            __ATOMIC_RELAXED);
    }
    Word value;
    std::memcpy(&value, &data_[paddr], 4);
    return value;
}

Half
PhysMemory::readHalf(Addr paddr) const
{
    check(paddr, 2);
    if (concurrent_) {
        return __atomic_load_n(
            reinterpret_cast<const std::uint16_t *>(&data_[paddr]),
            __ATOMIC_RELAXED);
    }
    Half value;
    std::memcpy(&value, &data_[paddr], 2);
    return value;
}

Byte
PhysMemory::readByte(Addr paddr) const
{
    check(paddr, 1);
    if (concurrent_)
        return __atomic_load_n(&data_[paddr], __ATOMIC_RELAXED);
    return data_[paddr];
}

void
PhysMemory::writeWord(Addr paddr, Word value)
{
    check(paddr, 4);
    if (concurrent_) {
        __atomic_store_n(
            reinterpret_cast<std::uint32_t *>(&data_[paddr]), value,
            __ATOMIC_RELAXED);
    } else {
        std::memcpy(&data_[paddr], &value, 4);
    }
    bumpVersion(paddr);
}

void
PhysMemory::writeHalf(Addr paddr, Half value)
{
    check(paddr, 2);
    if (concurrent_) {
        __atomic_store_n(
            reinterpret_cast<std::uint16_t *>(&data_[paddr]), value,
            __ATOMIC_RELAXED);
    } else {
        std::memcpy(&data_[paddr], &value, 2);
    }
    bumpVersion(paddr);
}

void
PhysMemory::writeByte(Addr paddr, Byte value)
{
    check(paddr, 1);
    if (concurrent_)
        __atomic_store_n(&data_[paddr], value, __ATOMIC_RELAXED);
    else
        data_[paddr] = value;
    bumpVersion(paddr);
}

void
PhysMemory::writeBlock(Addr paddr, const void *src, std::size_t bytes)
{
    if (paddr + bytes > data_.size())
        UEXC_PANIC("block write at 0x%08x size %zu out of range",
                   paddr, bytes);
    std::memcpy(&data_[paddr], src, bytes);
    touchPages(paddr, bytes);
}

void
PhysMemory::readBlock(Addr paddr, void *dst, std::size_t bytes) const
{
    if (paddr + bytes > data_.size())
        UEXC_PANIC("block read at 0x%08x size %zu out of range",
                   paddr, bytes);
    std::memcpy(dst, &data_[paddr], bytes);
}

bool
PhysMemory::blockIsZero(Addr paddr, std::size_t bytes) const
{
    if (paddr + bytes > data_.size())
        UEXC_PANIC("zero scan at 0x%08x size %zu out of range",
                   paddr, bytes);
    // in-place memcmp against a zeroed page, one page at a time: the
    // snapshot writer scans all of physical memory with this, so no
    // copy and no per-byte loop
    static const std::vector<Byte> zeros(PageBytes, 0);
    while (bytes > 0) {
        std::size_t chunk = std::min(bytes, PageBytes);
        if (std::memcmp(&data_[paddr], zeros.data(), chunk) != 0)
            return false;
        paddr += Addr(chunk);
        bytes -= chunk;
    }
    return true;
}

void
PhysMemory::clearRange(Addr paddr, std::size_t bytes)
{
    if (paddr + bytes > data_.size())
        UEXC_PANIC("clear at 0x%08x size %zu out of range", paddr, bytes);
    std::memset(&data_[paddr], 0, bytes);
    touchPages(paddr, bytes);
}

} // namespace uexc::sim
