/**
 * @file
 * Instruction tracing: an InstObserver that renders every retired
 * instruction (and every exception) to a stream, with mode
 * annotation and optional kernel/user filtering. The debugging
 * companion to the PhaseProfiler — this is how the kernel dispatch
 * paths in this repository were brought up.
 */

#ifndef UEXC_SIM_TRACE_H
#define UEXC_SIM_TRACE_H

#include <functional>
#include <string>

#include "sim/cpu.h"

namespace uexc::sim {

/**
 * Streaming trace observer. Install with Cpu::setObserver(); every
 * retired instruction produces one line:
 *
 *     [K] 80000080  mfc0 k0, $13
 *     [U] 00400010  lw t7, 2(t6)
 *     == exception AdEL epc=00400010 -> vector 80000080
 */
class TraceObserver : public InstObserver
{
  public:
    /** Receives one formatted line per event (no newline). */
    using Sink = std::function<void(const std::string &line)>;

    /**
     * @param cpu   the CPU being observed (for mode annotation)
     * @param sink  line consumer
     */
    TraceObserver(const Cpu &cpu, Sink sink);

    /** Trace only kernel-space (kseg) instructions. */
    void setKernelOnly(bool enable) { kernelOnly_ = enable; }
    /** Trace only user-space instructions. */
    void setUserOnly(bool enable) { userOnly_ = enable; }
    /** Stop emitting after @p n lines (0 = unlimited). */
    void setLimit(std::uint64_t n) { limit_ = n; }

    std::uint64_t linesEmitted() const { return lines_; }

    void onInst(Addr pc, const DecodedInst &inst, Cycles cost) override;
    void onException(ExcCode code, Addr epc, Addr vector) override;

  private:
    const Cpu &cpu_;
    Sink sink_;
    bool kernelOnly_ = false;
    bool userOnly_ = false;
    std::uint64_t limit_ = 0;
    std::uint64_t lines_ = 0;
};

} // namespace uexc::sim

#endif // UEXC_SIM_TRACE_H
