#include "sim/cache.h"

#include "common/logging.h"
#include "sim/snapshot.h"

namespace uexc::sim {

namespace {

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(std::size_t size_bytes, std::size_t line_bytes)
    : lineBytes_(line_bytes)
{
    if (!isPow2(size_bytes) || !isPow2(line_bytes) ||
        line_bytes < 4 || size_bytes < line_bytes) {
        UEXC_FATAL("cache: invalid geometry %zu/%zu", size_bytes,
                   line_bytes);
    }
    std::size_t lines = size_bytes / line_bytes;
    valid_.assign(lines, false);
    tags_.assign(lines, 0);
}

std::size_t
Cache::lineFor(Addr paddr) const
{
    return (paddr / lineBytes_) % valid_.size();
}

Addr
Cache::tagFor(Addr paddr) const
{
    return static_cast<Addr>(paddr / lineBytes_ / valid_.size());
}

bool
Cache::access(Addr paddr)
{
    stats_.accesses++;
    std::size_t line = lineFor(paddr);
    Addr tag = tagFor(paddr);
    if (valid_[line] && tags_[line] == tag)
        return true;
    stats_.misses++;
    valid_[line] = true;
    tags_[line] = tag;
    return false;
}

bool
Cache::probe(Addr paddr) const
{
    std::size_t line = lineFor(paddr);
    return valid_[line] && tags_[line] == tagFor(paddr);
}

void
Cache::flush()
{
    valid_.assign(valid_.size(), false);
}

void
Cache::invalidate(Addr paddr)
{
    std::size_t line = lineFor(paddr);
    if (valid_[line] && tags_[line] == tagFor(paddr))
        valid_[line] = false;
}

void
Cache::snapshotSave(SnapshotWriter &w) const
{
    w.u64(lineBytes_);
    w.u64(valid_.size());
    for (std::size_t i = 0; i < valid_.size(); i++) {
        w.boolean(valid_[i]);
        w.u32(tags_[i]);
    }
    w.u64(stats_.accesses);
    w.u64(stats_.misses);
}

void
Cache::snapshotLoad(SnapshotReader &r)
{
    std::uint64_t line_bytes = r.u64();
    std::uint64_t lines = r.u64();
    if (line_bytes != lineBytes_ || lines != valid_.size())
        r.fail("cache geometry mismatch: image " +
               std::to_string(lines) + "x" +
               std::to_string(line_bytes) + ", machine " +
               std::to_string(valid_.size()) + "x" +
               std::to_string(lineBytes_));
    for (std::size_t i = 0; i < valid_.size(); i++) {
        valid_[i] = r.boolean();
        tags_[i] = r.u32();
    }
    stats_.accesses = r.u64();
    stats_.misses = r.u64();
}

} // namespace uexc::sim
