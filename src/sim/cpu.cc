#include "sim/cpu.h"

#include "common/bits.h"
#include "common/logging.h"
#include "sim/faultinject.h"
#include "sim/storebuf.h"

namespace uexc::sim {

Cpu::Cpu(PhysMemory &mem, const CpuConfig &config)
    : mem_(mem), config_(config)
{
}

// translation ----------------------------------------------------------------

namespace {

TranslateResult
faultResult(AccessType type, ExcCode load_code, ExcCode store_code,
            bool refill)
{
    TranslateResult r;
    r.ok = false;
    r.exc = (type == AccessType::Store) ? store_code : load_code;
    r.refill = refill;
    return r;
}

} // namespace

Word
Cpu::translationKey(Addr vaddr) const
{
    // Virtual page | ASID | mode: everything a translation outcome
    // depends on besides the TLB contents (covered by generation).
    return (vaddr & 0xfffff000u) |
           (h_->cp0_.asid() << 1) |
           (h_->cp0_.userMode() ? 1u : 0u);
}

bool
Cpu::microDtlbLookup(Addr vaddr, AccessType type, TranslateResult &out)
{
    if (h_->tlbGenSeen_ != h_->tlb_.generation()) {
        h_->flushMicroTlb();
        return false;
    }
    const Hart::MicroTlbEntry &e = h_->dtlb_[(vaddr >> 12) & (Hart::kMicroTlbSize - 1)];
    if (e.key != translationKey(vaddr))
        return false;
    if (type == AccessType::Store && !e.writable)
        return false;   // may be a clean page: let the full path decide
    if (e.mapped)
        h_->tlb_.recordMicroHit();
    out.ok = true;
    out.paddr = e.pbase | (vaddr & 0xfffu);
    out.cacheable = e.cacheable;
    return true;
}

void
Cpu::microDtlbFill(Addr vaddr, AccessType type, const TranslateResult &tr)
{
    Hart::MicroTlbEntry &e = h_->dtlb_[(vaddr >> 12) & (Hart::kMicroTlbSize - 1)];
    e.key = translationKey(vaddr);
    e.pbase = tr.paddr & ~0xfffu;
    e.mapped = vaddr < Kseg0Base || vaddr >= Kseg2Base;
    e.cacheable = tr.cacheable;
    // A store-filled entry proved the page writable; a load-filled one
    // leaves stores to the full path (which raises Mod on clean pages).
    e.writable = type == AccessType::Store;
}

TranslateResult
Cpu::translate(Addr vaddr, AccessType type)
{
    if (config_.fastInterpreter && type != AccessType::Fetch) {
        TranslateResult r;
        if (microDtlbLookup(vaddr, type, r))
            return r;
        r = translateSlow(vaddr, type);
        if (r.ok)
            microDtlbFill(vaddr, type, r);
        return r;
    }
    return translateSlow(vaddr, type);
}

TranslateResult
Cpu::translateSlow(Addr vaddr, AccessType type)
{
    bool user = h_->cp0_.userMode();
    if (vaddr >= Kseg0Base) {
        if (user)
            return faultResult(type, ExcCode::AdEL, ExcCode::AdES, false);
        TranslateResult r;
        if (vaddr < Kseg1Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg0Base;
            r.cacheable = true;
            return r;
        }
        if (vaddr < Kseg2Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg1Base;
            r.cacheable = false;
            return r;
        }
        // kseg2: mapped kernel space; misses use the general vector
        auto hit = h_->tlb_.probe(vaddr, h_->cp0_.asid());
        if (!hit)
            return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
        const TlbEntry &e = h_->tlb_.entry(*hit);
        if (!e.valid())
            return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
        if (type == AccessType::Store && !e.dirty())
            return faultResult(type, ExcCode::Mod, ExcCode::Mod, false);
        r.ok = true;
        r.paddr = e.pfn() | (vaddr & 0xfffu);
        r.cacheable = e.cacheable();
        return r;
    }

    // kuseg: mapped, refill misses use the dedicated UTLB vector
    auto hit = h_->tlb_.probe(vaddr, h_->cp0_.asid());
    if (!hit)
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, true);
    const TlbEntry &e = h_->tlb_.entry(*hit);
    if (!e.valid())
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
    if (type == AccessType::Store && !e.dirty())
        return faultResult(type, ExcCode::Mod, ExcCode::Mod, false);
    TranslateResult r;
    r.ok = true;
    r.paddr = e.pfn() | (vaddr & 0xfffu);
    r.cacheable = e.cacheable();
    return r;
}

TranslateResult
Cpu::translateQuiet(Addr vaddr, AccessType type) const
{
    // A const clone of translate() that neither updates TLB stats nor
    // can be observed by the guest. Used by host-side services.
    bool user = h_->cp0_.userMode();
    if (vaddr >= Kseg0Base) {
        if (user)
            return faultResult(type, ExcCode::AdEL, ExcCode::AdES, false);
        TranslateResult r;
        if (vaddr < Kseg1Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg0Base;
            return r;
        }
        if (vaddr < Kseg2Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg1Base;
            r.cacheable = false;
            return r;
        }
    }
    auto hit = h_->tlb_.probeQuiet(vaddr, h_->cp0_.asid());
    bool kuseg = vaddr < Kseg0Base;
    if (!hit)
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, kuseg);
    const TlbEntry &e = h_->tlb_.entry(*hit);
    if (!e.valid())
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
    if (type == AccessType::Store && !e.dirty())
        return faultResult(type, ExcCode::Mod, ExcCode::Mod, false);
    TranslateResult r;
    r.ok = true;
    r.paddr = e.pfn() | (vaddr & 0xfffu);
    r.cacheable = e.cacheable();
    return r;
}

// guest data access ----------------------------------------------------------
//
// Every guest-visible load, store, and fetch funnels through these so
// the barrier scheduler's speculative rounds see their own buffered
// stores and record touched pages. With no buffer attached (serial,
// relaxed, and all single-hart execution) they compile down to the
// direct PhysMemory access.

inline Word
Cpu::loadWord(Addr paddr)
{
    if (sb_) {
        sb_->noteLoad(paddr);
        return sb_->readWord(mem_, paddr);
    }
    return mem_.readWord(paddr);
}

inline Half
Cpu::loadHalf(Addr paddr)
{
    if (sb_) {
        sb_->noteLoad(paddr);
        return sb_->readHalf(mem_, paddr);
    }
    return mem_.readHalf(paddr);
}

inline Byte
Cpu::loadByte(Addr paddr)
{
    if (sb_) {
        sb_->noteLoad(paddr);
        return sb_->readByte(mem_, paddr);
    }
    return mem_.readByte(paddr);
}

inline void
Cpu::storeWord(Addr paddr, Word value)
{
    if (sb_) {
        sb_->noteStore(paddr);
        if (sb_->aborted())
            h_->halted_ = true;  // state is discarded on rollback
        sb_->writeWord(paddr, value);
        return;
    }
    mem_.writeWord(paddr, value);
}

inline void
Cpu::storeHalf(Addr paddr, Half value)
{
    if (sb_) {
        sb_->noteStore(paddr);
        if (sb_->aborted())
            h_->halted_ = true;
        sb_->writeHalf(paddr, value);
        return;
    }
    mem_.writeHalf(paddr, value);
}

inline void
Cpu::storeByte(Addr paddr, Byte value)
{
    if (sb_) {
        sb_->noteStore(paddr);
        if (sb_->aborted())
            h_->halted_ = true;
        sb_->writeByte(paddr, value);
        return;
    }
    mem_.writeByte(paddr, value);
}

inline void
Cpu::noteFetchPage(Addr paddr)
{
    if (sb_) {
        sb_->noteFetch(paddr);
        if (sb_->aborted())
            h_->halted_ = true;
    }
}

// exceptions ----------------------------------------------------------------

bool
Cpu::tryUserVector(ExcCode code, Addr epc, Addr bad_vaddr,
                   bool branch_delay)
{
    if (!config_.userVectorHw)
        return false;
    Word st = h_->cp0_.statusReg();
    if (!(st & status::UV) || !(st & status::KUc))
        return false;
    if (st & status::UX)
        return false;  // recursive: demote to the kernel
    switch (code) {
      case ExcCode::Mod:
      case ExcCode::TlbL:
      case ExcCode::TlbS:
      case ExcCode::AdEL:
      case ExcCode::AdES:
      case ExcCode::Bp:
      case ExcCode::Ov:
        break;
      default:
        return false;  // syscalls, interrupts, RI etc. go to the kernel
    }
    Addr target = h_->cp0_.uxReg(UxReg::Target);
    if (config_.userVectorTable) {
        // the per-process vector table: one memory access during
        // vectoring; an unmapped table entry demotes to the kernel
        Addr slot = target + 4 * static_cast<Word>(code);
        TranslateResult tr = translateQuiet(slot, AccessType::Load);
        if (!tr.ok)
            return false;
        if (static_cast<std::uint64_t>(tr.paddr) + 4 > mem_.size())
            return false;  // table maps past memory: demote to kernel
        target = loadWord(tr.paddr);
        charge(config_.cost.loadExtra + 1);
        if (config_.cachesEnabled && h_->dcache_ && tr.cacheable &&
            !h_->dcache_->access(tr.paddr)) {
            charge(config_.cost.dcacheMissPenalty);
        }
    }
    h_->cp0_.setUxReg(UxReg::Epc, epc);
    h_->cp0_.setUxReg(UxReg::Cond,
                  (static_cast<Word>(code) << 2) |
                  (branch_delay ? 1u : 0u));
    h_->cp0_.setUxReg(UxReg::BadAddr, bad_vaddr);
    h_->cp0_.setStatusReg(st | status::UX);
    if (observer_)
        observer_->onException(code, epc, target);
    h_->pc_ = target;
    h_->npc_ = target + 4;
    h_->prevWasControl_ = false;
    return true;
}

void
Cpu::takeException(ExcCode code, Addr bad_vaddr, bool has_bad_vaddr,
                   bool refill)
{
    h_->excRaised_ = true;
    h_->stats_.exceptionsTaken++;
    h_->stats_.perExcCode[static_cast<unsigned>(code)]++;
    if (refill)
        h_->stats_.tlbRefillFaults++;

    bool bd = h_->prevWasControl_;
    Addr epc = bd ? h_->pc_ - 4 : h_->pc_;

    if (has_bad_vaddr)
        h_->cp0_.setFaultAddress(bad_vaddr);

    // TLB refill misses always enter the kernel: there is nothing a
    // user handler could do without the page tables.
    if (!refill && tryUserVector(code, epc, bad_vaddr, bd)) {
        h_->stats_.userVectoredExceptions++;
        return;
    }

    h_->cp0_.enterException(epc, code, bd);
    Addr vector = refill ? RefillVector : GeneralVector;
    if (observer_)
        observer_->onException(code, epc, vector);
    h_->pc_ = vector;
    h_->npc_ = vector + 4;
    h_->prevWasControl_ = false;
}

Addr
Cpu::injectException(ExcCode code, Addr fault_pc, Addr bad_vaddr,
                     bool refill)
{
    h_->pc_ = fault_pc;
    h_->npc_ = fault_pc + 4;
    h_->prevWasControl_ = false;
    takeException(code, bad_vaddr, true, refill);
    h_->excRaised_ = false;
    return h_->pc_;
}

Cycles
Cpu::chargeDataAccess(Addr paddr, bool cacheable)
{
    Cycles before = h_->stats_.cycles;
    if (config_.cachesEnabled) {
        if (cacheable && h_->dcache_) {
            if (!h_->dcache_->access(paddr))
                charge(config_.cost.dcacheMissPenalty);
        } else if (!cacheable) {
            charge(config_.cost.dcacheMissPenalty);
        }
    }
    return h_->stats_.cycles - before;
}

// execution ------------------------------------------------------------------

void
Cpu::doBranch(Op op, bool taken, Addr target)
{
    h_->stats_.branches++;
    if (taken) {
        h_->stagedNpc_ = target;
        h_->branchTaken_ = true;
        charge(opTakenControlExtraCycles(op, config_.cost));
    }
}

void
Cpu::doJump(Op op, Addr target)
{
    h_->stats_.branches++;
    h_->stagedNpc_ = target;
    h_->branchTaken_ = true;
    charge(opTakenControlExtraCycles(op, config_.cost));
}

bool
Cpu::memAddress(const DecodedInst &inst, unsigned size, AccessType type,
                Addr &paddr_out)
{
    Addr ea = h_->regs_[inst.rs] + inst.simm;
    if (!isAligned(ea, size)) {
        takeException(type == AccessType::Store ? ExcCode::AdES
                                                : ExcCode::AdEL,
                      ea, true, false);
        return false;
    }
    TranslateResult tr = translate(ea, type);
    if (!tr.ok) {
        takeException(tr.exc, ea, true, tr.refill);
        return false;
    }
    if (static_cast<std::uint64_t>(tr.paddr) + size > mem_.size()) {
        // Beyond physical memory (kseg0/1 direct map past the end, or
        // a corrupt TLB frame number): data bus error, as on a real
        // R3000 when no device answers. BadVAddr is not written.
        takeException(ExcCode::Dbe, 0, false, false);
        return false;
    }
    charge(opMemoryExtraCycles(inst.op, config_.cost));
    if (config_.cachesEnabled) {
        if (tr.cacheable && h_->dcache_) {
            if (!h_->dcache_->access(tr.paddr))
                charge(config_.cost.dcacheMissPenalty);
        } else if (!tr.cacheable) {
            charge(config_.cost.dcacheMissPenalty);
        }
    }
    if (type == AccessType::Store) {
        h_->stats_.stores++;
        h_->consecutiveStores_++;
        if (h_->consecutiveStores_ >= 2 && config_.cost.writeBufferStall)
            charge(config_.cost.writeBufferStall);
    } else {
        h_->stats_.loads++;
        h_->consecutiveStores_ = 0;
    }
    paddr_out = tr.paddr;
    return true;
}

/**
 * Fetch through the one-entry predecoded-page cache. Returns null on
 * any miss (page change, write to the page, TLB mutation, ASID/mode
 * change, unaligned PC); the caller then runs the reference fetch
 * sequence, which both raises the right exception and refills the
 * cache. On a hit, replays exactly the statistics and cycle charges
 * the reference fetch would have produced.
 */
inline const DecodedInst *
Cpu::fetchFast()
{
    if (h_->tlbGenSeen_ != h_->tlb_.generation()) {
        h_->flushMicroTlb();
        return nullptr;
    }
    if (translationKey(h_->pc_) != h_->fetchKey_ ||
        PhysMemory::loadVersion(h_->fetchMemVer_) != h_->fetchVersion_ ||
        !isAligned(h_->pc_, 4)) {
        return nullptr;
    }
    noteFetchPage(h_->fetchPaBase_);
    if (h_->fetchMapped_)
        h_->tlb_.recordMicroHit();
    if (config_.cachesEnabled && h_->fetchCacheable_ && h_->icache_) {
        if (!h_->icache_->access(h_->fetchPaBase_ | (h_->pc_ & 0xfffu)))
            charge(config_.cost.icacheMissPenalty);
    }
    return &h_->fetchPage_->insts[(h_->pc_ & 0xfffu) >> 2];
}

/**
 * Install the fetch cache for the page a slow fetch just translated
 * to @p tr, (re)decoding the whole physical page if it has never been
 * seen or was written since. Returns null when the page does not lie
 * entirely inside physical memory (the reference path's word-at-a-
 * time bounds behaviour must be preserved for partial tail pages).
 */
const DecodedInst *
Cpu::refillFetchFast(const TranslateResult &tr)
{
    Addr base = tr.paddr & ~(PhysMemory::PageBytes - 1);
    if (base + PhysMemory::PageBytes > mem_.size())
        return nullptr;
    Word ppn = tr.paddr >> PhysMemory::PageShift;
    auto &slot = h_->decodedPages_[ppn];
    const std::uint32_t *ver = mem_.pageVersionPtr(tr.paddr);
    std::uint32_t ver_now = PhysMemory::loadVersion(ver);
    if (!slot || slot->version != ver_now) {
        if (!slot)
            slot = std::make_unique<Hart::DecodedPage>();
        for (unsigned i = 0; i < Hart::DecodedPage::NumInsts; i++)
            slot->insts[i] = decode(mem_.readWord(base + 4 * i));
        slot->version = ver_now;
    }
    h_->tlbGenSeen_ = h_->tlb_.generation();
    h_->fetchKey_ = translationKey(h_->pc_);
    h_->fetchPage_ = slot.get();
    h_->fetchPaBase_ = base;
    h_->fetchVbase_ = h_->pc_ & 0xfffff000u;
    h_->fetchMemVer_ = ver;
    h_->fetchVersion_ = slot->version;
    h_->fetchMapped_ = h_->pc_ < Kseg0Base || h_->pc_ >= Kseg2Base;
    h_->fetchCacheable_ = tr.cacheable;
    return &h_->fetchPage_->insts[(h_->pc_ & 0xfffu) >> 2];
}

/**
 * Everything after fetch: retire accounting, execution, observer
 * callback and PC sequencing. Shared verbatim by the reference and
 * fast paths so the two cannot drift.
 */
inline void
Cpu::executeTail(const DecodedInst &inst, Cycles cycles_before)
{
    h_->stats_.instructions++;
    charge(config_.cost.baseCost);

    Addr inst_pc = h_->pc_;
    execute(inst);

    if (h_->excRaised_)
        return;

    if (!(inst.flags & DecodedInst::FlagMemory))
        h_->consecutiveStores_ = 0;

    if (observer_)
        observer_->onInst(inst_pc, inst, h_->stats_.cycles - cycles_before);

    if (h_->redirect_) {
        h_->redirect_ = false;
        return;
    }

    h_->prevWasControl_ = (inst.flags & DecodedInst::FlagControl) != 0;
    h_->pc_ = h_->npc_;
    h_->npc_ = h_->stagedNpc_;
}

void
Cpu::step()
{
    if (h_->halted_)
        return;

    h_->cp0_.tickRandom();
    h_->excRaised_ = false;
    h_->branchTaken_ = false;
    h_->stagedNpc_ = h_->npc_ + 4;

    Cycles cycles_before = h_->stats_.cycles;

    if (config_.fastInterpreter) {
        if (const DecodedInst *inst = fetchFast()) {
            executeTail(*inst, cycles_before);
            return;
        }
        // miss: fall through to the reference fetch, which raises any
        // fetch exception and then refills the fast-path caches
    }

    // fetch
    if (!isAligned(h_->pc_, 4)) {
        takeException(ExcCode::AdEL, h_->pc_, true, false);
        return;
    }
    TranslateResult tr = translate(h_->pc_, AccessType::Fetch);
    if (!tr.ok) {
        takeException(tr.exc, h_->pc_, true, tr.refill);
        return;
    }
    if (static_cast<std::uint64_t>(tr.paddr) + 4 > mem_.size()) {
        // Fetch beyond physical memory: instruction bus error (no
        // BadVAddr), not a host crash.
        takeException(ExcCode::Ibe, 0, false, false);
        return;
    }
    noteFetchPage(tr.paddr);
    if (config_.cachesEnabled && tr.cacheable && h_->icache_) {
        if (!h_->icache_->access(tr.paddr))
            charge(config_.cost.icacheMissPenalty);
    }
    if (config_.fastInterpreter) {
        if (const DecodedInst *inst = refillFetchFast(tr)) {
            executeTail(*inst, cycles_before);
            return;
        }
    }
    Word raw = mem_.readWord(tr.paddr);
    DecodedInst inst = decode(raw);
    executeTail(inst, cycles_before);
}

/**
 * Block-execution run loop for the fast interpreter: while the fetch
 * cache stays valid, dispatch instructions straight off the decoded
 * page without going back through step()'s per-instruction call
 * chain. Any miss (page change, self-modifying store, TLB or mode
 * change, exception, redirect) drops to one reference step() that
 * raises the right exception and refills the caches, then the block
 * loop resumes. Every statistics update and cycle charge below is an
 * exact replay of what step() performs, in the same order, so the two
 * paths stay bit-identical.
 */
RunResult
Cpu::runFast(InstCount max_insts)
{
    RunResult result;
    while (result.instsExecuted < max_insts) {
        if (h_->halted_) {
            result.reason = StopReason::Halted;
            return result;
        }
        if (h_->tlbGenSeen_ != h_->tlb_.generation())
            h_->flushMicroTlb();
        if (translationKey(h_->pc_) != h_->fetchKey_ ||
            PhysMemory::loadVersion(h_->fetchMemVer_) != h_->fetchVersion_ ||
            (h_->pc_ & 3) != 0) {
            // miss: one reference step raises any fetch exception and
            // refills the fetch cache
            InstCount before = h_->stats_.instructions;
            step();
            result.instsExecuted += h_->stats_.instructions - before;
            continue;
        }
        // One note per block entry covers the whole inline run: the
        // block loop exits before the PC can leave the cached page.
        noteFetchPage(h_->fetchPaBase_);
        if (h_->halted_)
            continue;  // store-buffer abort: exit via the loop top
        InstCount limit = max_insts - result.instsExecuted;
        InstCount done = 0;
        // PC sequencing lives in host registers inside the block loop:
        // the member round trip (store h_->pc_, reload it next iteration)
        // is the interpreter's longest serial dependence chain. The
        // members are synced on every loop exit and before any
        // instruction that can observe them (exceptions, jump links,
        // CP0, memory - everything outside the inline subset below).
        Addr pc = h_->pc_;
        Addr npc = h_->npc_;
        bool sync = true;
        while (true) {
            const DecodedInst &inst = h_->fetchPage_->insts[(pc & 0xfffu) >> 2];
            h_->cp0_.tickRandom();
            Cycles cycles_before = h_->stats_.cycles;
            if (h_->fetchMapped_)
                h_->tlb_.recordMicroHit();
            if (config_.cachesEnabled && h_->fetchCacheable_ && h_->icache_ &&
                !h_->icache_->access(h_->fetchPaBase_ | (pc & 0xfffu)))
                charge(config_.cost.icacheMissPenalty);
            h_->stats_.instructions++;
            charge(config_.cost.baseCost);
            done++;
            Addr staged = npc + 4;
            const Word rs = h_->regs_[inst.rs];
            const Word rt = h_->regs_[inst.rt];
            const CostModel &cost = config_.cost;
            // Inline subset: instructions that cannot raise exceptions,
            // touch memory, or reach CP0/TLB state. Each case is a
            // transliteration of the corresponding execute() case with
            // h_->pc_/h_->stagedNpc_ replaced by the locals; doBranch()/doJump()
            // are expanded in place.
            switch (inst.op) {
              case Op::Sll:  setReg(inst.rd, rt << inst.shamt); break;
              case Op::Srl:  setReg(inst.rd, rt >> inst.shamt); break;
              case Op::Sra:
                setReg(inst.rd,
                       static_cast<Word>(static_cast<SWord>(rt) >>
                                         inst.shamt));
                break;
              case Op::Sllv: setReg(inst.rd, rt << (rs & 31)); break;
              case Op::Srlv: setReg(inst.rd, rt >> (rs & 31)); break;
              case Op::Srav:
                setReg(inst.rd,
                       static_cast<Word>(static_cast<SWord>(rt) >>
                                         (rs & 31)));
                break;
              case Op::Addu: setReg(inst.rd, rs + rt); break;
              case Op::Subu: setReg(inst.rd, rs - rt); break;
              case Op::And:  setReg(inst.rd, rs & rt); break;
              case Op::Or:   setReg(inst.rd, rs | rt); break;
              case Op::Xor:  setReg(inst.rd, rs ^ rt); break;
              case Op::Nor:  setReg(inst.rd, ~(rs | rt)); break;
              case Op::Slt:
                setReg(inst.rd,
                       static_cast<SWord>(rs) < static_cast<SWord>(rt));
                break;
              case Op::Sltu: setReg(inst.rd, rs < rt); break;
              case Op::Mult: {
                std::int64_t prod = static_cast<std::int64_t>(
                    static_cast<SWord>(rs)) * static_cast<SWord>(rt);
                h_->lo_ = static_cast<Word>(prod);
                h_->hi_ = static_cast<Word>(prod >> 32);
                charge(opExecuteExtraCycles(inst.op, cost));
                break;
              }
              case Op::Multu: {
                std::uint64_t prod = static_cast<std::uint64_t>(rs) * rt;
                h_->lo_ = static_cast<Word>(prod);
                h_->hi_ = static_cast<Word>(prod >> 32);
                charge(opExecuteExtraCycles(inst.op, cost));
                break;
              }
              case Op::Div:
                if (rt == 0) {
                    h_->lo_ = 0xffffffffu;
                    h_->hi_ = rs;
                } else if (rs == 0x80000000u && rt == 0xffffffffu) {
                    h_->lo_ = 0x80000000u;
                    h_->hi_ = 0;
                } else {
                    h_->lo_ = static_cast<Word>(static_cast<SWord>(rs) /
                                            static_cast<SWord>(rt));
                    h_->hi_ = static_cast<Word>(static_cast<SWord>(rs) %
                                            static_cast<SWord>(rt));
                }
                charge(opExecuteExtraCycles(inst.op, cost));
                break;
              case Op::Divu:
                if (rt == 0) {
                    h_->lo_ = 0xffffffffu;
                    h_->hi_ = rs;
                } else {
                    h_->lo_ = rs / rt;
                    h_->hi_ = rs % rt;
                }
                charge(opExecuteExtraCycles(inst.op, cost));
                break;
              case Op::Mfhi: setReg(inst.rd, h_->hi_); break;
              case Op::Mthi: h_->hi_ = rs; break;
              case Op::Mflo: setReg(inst.rd, h_->lo_); break;
              case Op::Mtlo: h_->lo_ = rs; break;
              case Op::Addiu: setReg(inst.rt, rs + inst.simm); break;
              case Op::Slti:
                setReg(inst.rt, static_cast<SWord>(rs) <
                                static_cast<SWord>(inst.simm));
                break;
              case Op::Sltiu: setReg(inst.rt, rs < inst.simm); break;
              case Op::Andi:  setReg(inst.rt, rs & inst.imm); break;
              case Op::Ori:   setReg(inst.rt, rs | inst.imm); break;
              case Op::Xori:  setReg(inst.rt, rs ^ inst.imm); break;
              case Op::Lui:   setReg(inst.rt, inst.imm << 16); break;
              case Op::J:
                h_->stats_.branches++;
                staged = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
                h_->branchTaken_ = true;
                charge(opTakenControlExtraCycles(inst.op, cost));
                break;
              case Op::Jal:
                setReg(RA, pc + 8);
                h_->stats_.branches++;
                staged = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
                h_->branchTaken_ = true;
                charge(opTakenControlExtraCycles(inst.op, cost));
                break;
              case Op::Jr:
                h_->stats_.branches++;
                staged = rs;
                h_->branchTaken_ = true;
                charge(opTakenControlExtraCycles(inst.op, cost));
                break;
              case Op::Jalr:
                setReg(inst.rd, pc + 8);
                h_->stats_.branches++;
                staged = rs;
                h_->branchTaken_ = true;
                charge(opTakenControlExtraCycles(inst.op, cost));
                break;
              case Op::Beq:
                h_->stats_.branches++;
                if (rs == rt) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              case Op::Bne:
                h_->stats_.branches++;
                if (rs != rt) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              case Op::Blez:
                h_->stats_.branches++;
                if (static_cast<SWord>(rs) <= 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              case Op::Bgtz:
                h_->stats_.branches++;
                if (static_cast<SWord>(rs) > 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              case Op::Bltz:
                h_->stats_.branches++;
                if (static_cast<SWord>(rs) < 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              case Op::Bgez:
                h_->stats_.branches++;
                if (static_cast<SWord>(rs) >= 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              case Op::Bltzal:
                setReg(RA, pc + 8);
                h_->stats_.branches++;
                if (static_cast<SWord>(rs) < 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              case Op::Bgezal:
                setReg(RA, pc + 8);
                h_->stats_.branches++;
                if (static_cast<SWord>(rs) >= 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    h_->branchTaken_ = true;
                    charge(opTakenControlExtraCycles(inst.op, cost));
                }
                break;
              default:
                goto general;
            }
            // tail for the inline subset: never memory, never an
            // exception, never a redirect, never invalidates the
            // fetch cache
            h_->consecutiveStores_ = 0;
            if (observer_)
                observer_->onInst(pc, inst, h_->stats_.cycles - cycles_before);
            h_->prevWasControl_ = (inst.flags & DecodedInst::FlagControl) != 0;
            pc = npc;
            npc = staged;
            if (done >= limit)
                break;
            // one compare covers "still in the cached page" and "still
            // word-aligned" (h_->fetchVbase_ has zero low bits)
            if ((pc ^ h_->fetchVbase_) & 0xfffff003u)
                break;
            continue;

          general:
            // everything else goes through the reference execute() on
            // synced member state, replaying executeTail() exactly
            h_->pc_ = pc;
            h_->npc_ = npc;
            h_->stagedNpc_ = staged;
            h_->excRaised_ = false;
            h_->branchTaken_ = false;
            execute(inst);
            if (h_->excRaised_) {
                // takeException already redirected h_->pc_/h_->npc_
                sync = false;
                break;
            }
            if (!(inst.flags & DecodedInst::FlagMemory))
                h_->consecutiveStores_ = 0;
            if (observer_)
                observer_->onInst(pc, inst, h_->stats_.cycles - cycles_before);
            if (h_->redirect_) {
                h_->redirect_ = false;
                sync = false;
                break;
            }
            h_->prevWasControl_ = (inst.flags & DecodedInst::FlagControl) != 0;
            h_->pc_ = h_->npc_;
            h_->npc_ = h_->stagedNpc_;
            pc = h_->pc_;
            npc = h_->npc_;
            if (h_->halted_ || done >= limit)
                break;
            if ((pc ^ h_->fetchVbase_) & 0xfffff003u)
                break;
            // the cached translation and decoded page can only go
            // stale behind our back via a store (page write version)
            // or a fence-class instruction (TLB/CP0 write, host call);
            // anything else leaves them valid by construction
            if (inst.flags &
                (DecodedInst::FlagStore | DecodedInst::FlagFence)) {
                if (inst.flags & DecodedInst::FlagFence)
                    break;
                if (PhysMemory::loadVersion(h_->fetchMemVer_) !=
                    h_->fetchVersion_)
                    break;
            }
        }
        if (sync) {
            h_->pc_ = pc;
            h_->npc_ = npc;
        }
        result.instsExecuted += done;
    }
    result.reason = StopReason::InstLimit;
    return result;
}

RunResult
Cpu::run(InstCount max_insts)
{
    // A fault injector only forces the reference loop while it has
    // pending events for this hart; otherwise (none scheduled, or all
    // delivered) execution is bit-identical to an injector-free run.
    FaultInjector *injector = config_.faultInjector;
    if (injector && !injector->wants(h_->id()))
        injector = nullptr;

    if (config_.fastInterpreter && h_->breakpoints_.empty() && !injector)
        return runFast(max_insts);

    RunResult result;
    bool first = true;
    while (result.instsExecuted < max_insts) {
        if (h_->halted_) {
            result.reason = StopReason::Halted;
            return result;
        }
        if (!first && !h_->breakpoints_.empty() &&
            h_->breakpoints_.count(h_->pc_) != 0) {
            result.reason = StopReason::Breakpoint;
            return result;
        }
        first = false;
        if (injector)
            injector->maybeFire(*this);
        InstCount before = h_->stats_.instructions;
        step();
        result.instsExecuted += h_->stats_.instructions - before;
        if (h_->halted_) {
            result.reason = StopReason::Halted;
            return result;
        }
    }
    result.reason = StopReason::InstLimit;
    return result;
}

void
Cpu::execute(const DecodedInst &inst)
{
    const Word rs = h_->regs_[inst.rs];
    const Word rt = h_->regs_[inst.rt];
    const CostModel &cost = config_.cost;
    bool user = h_->cp0_.userMode();

    switch (inst.op) {
      // -- shifts ------------------------------------------------------
      case Op::Sll:  setReg(inst.rd, rt << inst.shamt); break;
      case Op::Srl:  setReg(inst.rd, rt >> inst.shamt); break;
      case Op::Sra:
        setReg(inst.rd,
               static_cast<Word>(static_cast<SWord>(rt) >> inst.shamt));
        break;
      case Op::Sllv: setReg(inst.rd, rt << (rs & 31)); break;
      case Op::Srlv: setReg(inst.rd, rt >> (rs & 31)); break;
      case Op::Srav:
        setReg(inst.rd,
               static_cast<Word>(static_cast<SWord>(rt) >> (rs & 31)));
        break;

      // -- arithmetic ---------------------------------------------------
      case Op::Add: {
        Word sum = rs + rt;
        // signed overflow: operands same sign, result different
        if (~(rs ^ rt) & (rs ^ sum) & 0x80000000u) {
            takeException(ExcCode::Ov, 0, false, false);
            return;
        }
        setReg(inst.rd, sum);
        break;
      }
      case Op::Addu: setReg(inst.rd, rs + rt); break;
      case Op::Sub: {
        Word diff = rs - rt;
        if ((rs ^ rt) & (rs ^ diff) & 0x80000000u) {
            takeException(ExcCode::Ov, 0, false, false);
            return;
        }
        setReg(inst.rd, diff);
        break;
      }
      case Op::Subu: setReg(inst.rd, rs - rt); break;
      case Op::And:  setReg(inst.rd, rs & rt); break;
      case Op::Or:   setReg(inst.rd, rs | rt); break;
      case Op::Xor:  setReg(inst.rd, rs ^ rt); break;
      case Op::Nor:  setReg(inst.rd, ~(rs | rt)); break;
      case Op::Slt:
        setReg(inst.rd, static_cast<SWord>(rs) < static_cast<SWord>(rt));
        break;
      case Op::Sltu: setReg(inst.rd, rs < rt); break;

      case Op::Mult: {
        std::int64_t prod = static_cast<std::int64_t>(
            static_cast<SWord>(rs)) * static_cast<SWord>(rt);
        h_->lo_ = static_cast<Word>(prod);
        h_->hi_ = static_cast<Word>(prod >> 32);
        charge(opExecuteExtraCycles(inst.op, cost));
        break;
      }
      case Op::Multu: {
        std::uint64_t prod = static_cast<std::uint64_t>(rs) * rt;
        h_->lo_ = static_cast<Word>(prod);
        h_->hi_ = static_cast<Word>(prod >> 32);
        charge(opExecuteExtraCycles(inst.op, cost));
        break;
      }
      case Op::Div:
        if (rt == 0) {
            // architecturally UNPREDICTABLE; we define a stable result
            h_->lo_ = 0xffffffffu;
            h_->hi_ = rs;
        } else if (rs == 0x80000000u && rt == 0xffffffffu) {
            h_->lo_ = 0x80000000u;  // INT_MIN / -1 wraps
            h_->hi_ = 0;
        } else {
            h_->lo_ = static_cast<Word>(static_cast<SWord>(rs) /
                                    static_cast<SWord>(rt));
            h_->hi_ = static_cast<Word>(static_cast<SWord>(rs) %
                                    static_cast<SWord>(rt));
        }
        charge(opExecuteExtraCycles(inst.op, cost));
        break;
      case Op::Divu:
        if (rt == 0) {
            h_->lo_ = 0xffffffffu;
            h_->hi_ = rs;
        } else {
            h_->lo_ = rs / rt;
            h_->hi_ = rs % rt;
        }
        charge(opExecuteExtraCycles(inst.op, cost));
        break;
      case Op::Mfhi: setReg(inst.rd, h_->hi_); break;
      case Op::Mthi: h_->hi_ = rs; break;
      case Op::Mflo: setReg(inst.rd, h_->lo_); break;
      case Op::Mtlo: h_->lo_ = rs; break;

      // -- immediate arithmetic -------------------------------------------
      case Op::Addi: {
        Word sum = rs + inst.simm;
        if (~(rs ^ inst.simm) & (rs ^ sum) & 0x80000000u) {
            takeException(ExcCode::Ov, 0, false, false);
            return;
        }
        setReg(inst.rt, sum);
        break;
      }
      case Op::Addiu: setReg(inst.rt, rs + inst.simm); break;
      case Op::Slti:
        setReg(inst.rt, static_cast<SWord>(rs) <
                        static_cast<SWord>(inst.simm));
        break;
      case Op::Sltiu: setReg(inst.rt, rs < inst.simm); break;
      case Op::Andi:  setReg(inst.rt, rs & inst.imm); break;
      case Op::Ori:   setReg(inst.rt, rs | inst.imm); break;
      case Op::Xori:  setReg(inst.rt, rs ^ inst.imm); break;
      case Op::Lui:   setReg(inst.rt, inst.imm << 16); break;

      // -- control ----------------------------------------------------------
      case Op::J:
        doJump(inst.op, ((h_->pc_ + 4) & 0xf0000000u) | (inst.target << 2));
        break;
      case Op::Jal:
        setReg(RA, h_->pc_ + 8);
        doJump(inst.op, ((h_->pc_ + 4) & 0xf0000000u) | (inst.target << 2));
        break;
      case Op::Jr:
        doJump(inst.op, rs);
        break;
      case Op::Jalr:
        setReg(inst.rd, h_->pc_ + 8);
        doJump(inst.op, rs);
        break;
      case Op::Beq:
        doBranch(inst.op, rs == rt, h_->pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bne:
        doBranch(inst.op, rs != rt, h_->pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Blez:
        doBranch(inst.op, static_cast<SWord>(rs) <= 0, h_->pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bgtz:
        doBranch(inst.op, static_cast<SWord>(rs) > 0, h_->pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bltz:
        doBranch(inst.op, static_cast<SWord>(rs) < 0, h_->pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bgez:
        doBranch(inst.op, static_cast<SWord>(rs) >= 0, h_->pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bltzal:
        setReg(RA, h_->pc_ + 8);
        doBranch(inst.op, static_cast<SWord>(rs) < 0, h_->pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bgezal:
        setReg(RA, h_->pc_ + 8);
        doBranch(inst.op, static_cast<SWord>(rs) >= 0, h_->pc_ + 4 + (inst.simm << 2));
        break;

      // -- memory --------------------------------------------------------------
      case Op::Lb: {
        Addr pa;
        if (!memAddress(inst, 1, AccessType::Load, pa))
            return;
        setReg(inst.rt, signExtend(loadByte(pa), 8));
        break;
      }
      case Op::Lbu: {
        Addr pa;
        if (!memAddress(inst, 1, AccessType::Load, pa))
            return;
        setReg(inst.rt, loadByte(pa));
        break;
      }
      case Op::Lh: {
        Addr pa;
        if (!memAddress(inst, 2, AccessType::Load, pa))
            return;
        setReg(inst.rt, signExtend(loadHalf(pa), 16));
        break;
      }
      case Op::Lhu: {
        Addr pa;
        if (!memAddress(inst, 2, AccessType::Load, pa))
            return;
        setReg(inst.rt, loadHalf(pa));
        break;
      }
      case Op::Lw: {
        Addr pa;
        if (!memAddress(inst, 4, AccessType::Load, pa))
            return;
        setReg(inst.rt, loadWord(pa));
        break;
      }
      case Op::Sb: {
        Addr pa;
        if (!memAddress(inst, 1, AccessType::Store, pa))
            return;
        storeByte(pa, static_cast<Byte>(rt));
        break;
      }
      case Op::Sh: {
        Addr pa;
        if (!memAddress(inst, 2, AccessType::Store, pa))
            return;
        storeHalf(pa, static_cast<Half>(rt));
        break;
      }
      case Op::Sw: {
        Addr pa;
        if (!memAddress(inst, 4, AccessType::Store, pa))
            return;
        storeWord(pa, rt);
        break;
      }

      // -- traps ------------------------------------------------------------------
      case Op::Syscall:
        takeException(ExcCode::Sys, 0, false, false);
        return;
      case Op::Break:
        takeException(ExcCode::Bp, 0, false, false);
        return;

      // -- CP0 / TLB -----------------------------------------------------------------
      case Op::Mfc0:
      case Op::Mtc0:
      case Op::Tlbr:
      case Op::Tlbwi:
      case Op::Tlbwr:
      case Op::Tlbp:
      case Op::Rfe:
        if (user) {
            takeException(ExcCode::CpU, 0, false, false);
            return;
        }
        switch (inst.op) {
          case Op::Mfc0:
            setReg(inst.rt, h_->cp0_.read(inst.rd));
            break;
          case Op::Mtc0:
            h_->cp0_.write(inst.rd, rt);
            break;
          case Op::Tlbr: {
            unsigned idx = (h_->cp0_.index() >> 8) & 0x3f;
            const TlbEntry &e = h_->tlb_.entry(idx);
            h_->cp0_.write(cp0reg::EntryHi, e.hi);
            h_->cp0_.write(cp0reg::EntryLo, e.lo);
            break;
          }
          case Op::Tlbwi: {
            unsigned idx = (h_->cp0_.index() >> 8) & 0x3f;
            h_->tlb_.setEntry(idx, h_->cp0_.entryHi(), h_->cp0_.entryLo());
            break;
          }
          case Op::Tlbwr: {
            unsigned idx = h_->cp0_.randomIndex();
            h_->tlb_.setEntry(idx, h_->cp0_.entryHi(), h_->cp0_.entryLo());
            break;
          }
          case Op::Tlbp: {
            Word hi = h_->cp0_.entryHi();
            auto hit = h_->tlb_.probeQuiet(
                hi & entryhi::VpnMask,
                (hi & entryhi::AsidMask) >> entryhi::AsidShift);
            h_->cp0_.setIndexRaw(hit ? (*hit << 8) : 0x80000000u);
            break;
          }
          case Op::Rfe:
            h_->cp0_.returnFromException();
            break;
          default:
            break;
        }
        break;

      // -- extensions: user exception architecture ------------------------------------
      case Op::Mfux:
      case Op::Mtux:
      case Op::Xret:
        if (!config_.userVectorHw) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        if (inst.op == Op::Xret) {
            if (!(h_->cp0_.statusReg() & status::UX)) {
                takeException(ExcCode::Ri, 0, false, false);
                return;
            }
            h_->cp0_.setStatusReg(h_->cp0_.statusReg() & ~status::UX);
            // Tera-style return: control moves to the (possibly
            // updated) saved exception PC, with no delay slot.
            h_->pc_ = h_->cp0_.uxReg(UxReg::Epc);
            h_->npc_ = h_->pc_ + 4;
            h_->prevWasControl_ = false;
            h_->redirect_ = true;
            return;
        }
        if (inst.rd >= NumUxRegs) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        if (inst.op == Op::Mfux) {
            setReg(inst.rt, h_->cp0_.uxReg(static_cast<UxReg>(inst.rd)));
        } else {
            h_->cp0_.setUxReg(static_cast<UxReg>(inst.rd), rt);
        }
        break;

      // -- extensions: user TLB protection modification ----------------------------------
      case Op::Tlbmp: {
        if (!config_.tlbmpHw) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        auto hit = h_->tlb_.probeQuiet(rs, h_->cp0_.asid());
        if (!hit) {
            // No resident translation: the kernel must do it via the
            // page tables, so fall back to the emulation path.
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        const TlbEntry &e = h_->tlb_.entry(*hit);
        if (user && !e.userModifiable()) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        Word lo = e.lo;
        lo = (rt & 1u) ? (lo | entrylo::D) : (lo & ~entrylo::D);
        lo = (rt & 2u) ? (lo | entrylo::V) : (lo & ~entrylo::V);
        h_->tlb_.setEntry(*hit, e.hi, lo);
        break;
      }

      // -- extensions: host call ------------------------------------------------------------
      case Op::Hcall:
        if (inst.target == 0) {
            h_->halted_ = true;
            break;
        }
        if (!hcallHandler_) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        if (sb_) {
            // A host service has real side effects (kernel state,
            // host I/O) that a rolled-back round cannot replay: abort
            // before dispatching, so the serial fallback performs the
            // call exactly once. hcall 0 above is hart-local (halt)
            // and needs no abort; a missing handler raises Ri, which
            // is ordinary replayable architectural state.
            sb_->markAbort();
            h_->halted_ = true;
            return;
        }
        hcallHandler_(*this, inst.target);
        // the handler may have redirected or halted us
        if (h_->halted_)
            return;
        break;

      case Op::Invalid:
        takeException(ExcCode::Ri, 0, false, false);
        return;
    }
}

} // namespace uexc::sim
