#include "sim/cpu.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::sim {

Cpu::Cpu(PhysMemory &mem, const CpuConfig &config)
    : mem_(mem), config_(config)
{
    regs_.fill(0);
    if (config_.cachesEnabled) {
        icache_ = std::make_unique<Cache>(config_.icacheBytes,
                                          config_.icacheLineBytes);
        dcache_ = std::make_unique<Cache>(config_.dcacheBytes,
                                          config_.dcacheLineBytes);
    }
}

void
Cpu::setPc(Addr pc)
{
    pc_ = pc;
    npc_ = pc + 4;
    prevWasControl_ = false;
}

void
Cpu::clearStats()
{
    stats_ = CpuStats();
    tlb_.clearStats();
    if (icache_)
        icache_->clearStats();
    if (dcache_)
        dcache_->clearStats();
}

// translation ----------------------------------------------------------------

namespace {

TranslateResult
faultResult(AccessType type, ExcCode load_code, ExcCode store_code,
            bool refill)
{
    TranslateResult r;
    r.ok = false;
    r.exc = (type == AccessType::Store) ? store_code : load_code;
    r.refill = refill;
    return r;
}

} // namespace

Word
Cpu::translationKey(Addr vaddr) const
{
    // Virtual page | ASID | mode: everything a translation outcome
    // depends on besides the TLB contents (covered by generation).
    return (vaddr & 0xfffff000u) |
           (cp0_.asid() << 1) |
           (cp0_.userMode() ? 1u : 0u);
}

bool
Cpu::microDtlbLookup(Addr vaddr, AccessType type, TranslateResult &out)
{
    if (tlbGenSeen_ != tlb_.generation()) {
        flushMicroTlb();
        return false;
    }
    const MicroTlbEntry &e = dtlb_[(vaddr >> 12) & (kMicroTlbSize - 1)];
    if (e.key != translationKey(vaddr))
        return false;
    if (type == AccessType::Store && !e.writable)
        return false;   // may be a clean page: let the full path decide
    if (e.mapped)
        tlb_.recordMicroHit();
    out.ok = true;
    out.paddr = e.pbase | (vaddr & 0xfffu);
    out.cacheable = e.cacheable;
    return true;
}

void
Cpu::microDtlbFill(Addr vaddr, AccessType type, const TranslateResult &tr)
{
    MicroTlbEntry &e = dtlb_[(vaddr >> 12) & (kMicroTlbSize - 1)];
    e.key = translationKey(vaddr);
    e.pbase = tr.paddr & ~0xfffu;
    e.mapped = vaddr < Kseg0Base || vaddr >= Kseg2Base;
    e.cacheable = tr.cacheable;
    // A store-filled entry proved the page writable; a load-filled one
    // leaves stores to the full path (which raises Mod on clean pages).
    e.writable = type == AccessType::Store;
}

void
Cpu::flushMicroTlb()
{
    dtlb_.fill(MicroTlbEntry{});
    fetchKey_ = kInvalidKey;
    fetchPage_ = nullptr;
    tlbGenSeen_ = tlb_.generation();
}

void
Cpu::flushHostCaches()
{
    decodedPages_.clear();
    flushMicroTlb();
}

TranslateResult
Cpu::translate(Addr vaddr, AccessType type)
{
    if (config_.fastInterpreter && type != AccessType::Fetch) {
        TranslateResult r;
        if (microDtlbLookup(vaddr, type, r))
            return r;
        r = translateSlow(vaddr, type);
        if (r.ok)
            microDtlbFill(vaddr, type, r);
        return r;
    }
    return translateSlow(vaddr, type);
}

TranslateResult
Cpu::translateSlow(Addr vaddr, AccessType type)
{
    bool user = cp0_.userMode();
    if (vaddr >= Kseg0Base) {
        if (user)
            return faultResult(type, ExcCode::AdEL, ExcCode::AdES, false);
        TranslateResult r;
        if (vaddr < Kseg1Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg0Base;
            r.cacheable = true;
            return r;
        }
        if (vaddr < Kseg2Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg1Base;
            r.cacheable = false;
            return r;
        }
        // kseg2: mapped kernel space; misses use the general vector
        auto hit = tlb_.probe(vaddr, cp0_.asid());
        if (!hit)
            return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
        const TlbEntry &e = tlb_.entry(*hit);
        if (!e.valid())
            return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
        if (type == AccessType::Store && !e.dirty())
            return faultResult(type, ExcCode::Mod, ExcCode::Mod, false);
        r.ok = true;
        r.paddr = e.pfn() | (vaddr & 0xfffu);
        r.cacheable = e.cacheable();
        return r;
    }

    // kuseg: mapped, refill misses use the dedicated UTLB vector
    auto hit = tlb_.probe(vaddr, cp0_.asid());
    if (!hit)
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, true);
    const TlbEntry &e = tlb_.entry(*hit);
    if (!e.valid())
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
    if (type == AccessType::Store && !e.dirty())
        return faultResult(type, ExcCode::Mod, ExcCode::Mod, false);
    TranslateResult r;
    r.ok = true;
    r.paddr = e.pfn() | (vaddr & 0xfffu);
    r.cacheable = e.cacheable();
    return r;
}

TranslateResult
Cpu::translateQuiet(Addr vaddr, AccessType type) const
{
    // A const clone of translate() that neither updates TLB stats nor
    // can be observed by the guest. Used by host-side services.
    bool user = cp0_.userMode();
    if (vaddr >= Kseg0Base) {
        if (user)
            return faultResult(type, ExcCode::AdEL, ExcCode::AdES, false);
        TranslateResult r;
        if (vaddr < Kseg1Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg0Base;
            return r;
        }
        if (vaddr < Kseg2Base) {
            r.ok = true;
            r.paddr = vaddr - Kseg1Base;
            r.cacheable = false;
            return r;
        }
    }
    auto hit = tlb_.probeQuiet(vaddr, cp0_.asid());
    bool kuseg = vaddr < Kseg0Base;
    if (!hit)
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, kuseg);
    const TlbEntry &e = tlb_.entry(*hit);
    if (!e.valid())
        return faultResult(type, ExcCode::TlbL, ExcCode::TlbS, false);
    if (type == AccessType::Store && !e.dirty())
        return faultResult(type, ExcCode::Mod, ExcCode::Mod, false);
    TranslateResult r;
    r.ok = true;
    r.paddr = e.pfn() | (vaddr & 0xfffu);
    r.cacheable = e.cacheable();
    return r;
}

// exceptions ----------------------------------------------------------------

bool
Cpu::tryUserVector(ExcCode code, Addr epc, Addr bad_vaddr,
                   bool branch_delay)
{
    if (!config_.userVectorHw)
        return false;
    Word st = cp0_.statusReg();
    if (!(st & status::UV) || !(st & status::KUc))
        return false;
    if (st & status::UX)
        return false;  // recursive: demote to the kernel
    switch (code) {
      case ExcCode::Mod:
      case ExcCode::TlbL:
      case ExcCode::TlbS:
      case ExcCode::AdEL:
      case ExcCode::AdES:
      case ExcCode::Bp:
      case ExcCode::Ov:
        break;
      default:
        return false;  // syscalls, interrupts, RI etc. go to the kernel
    }
    Addr target = cp0_.uxReg(UxReg::Target);
    if (config_.userVectorTable) {
        // the per-process vector table: one memory access during
        // vectoring; an unmapped table entry demotes to the kernel
        Addr slot = target + 4 * static_cast<Word>(code);
        TranslateResult tr = translateQuiet(slot, AccessType::Load);
        if (!tr.ok)
            return false;
        target = mem_.readWord(tr.paddr);
        charge(config_.cost.loadExtra + 1);
        if (config_.cachesEnabled && dcache_ && tr.cacheable &&
            !dcache_->access(tr.paddr)) {
            charge(config_.cost.dcacheMissPenalty);
        }
    }
    cp0_.setUxReg(UxReg::Epc, epc);
    cp0_.setUxReg(UxReg::Cond,
                  (static_cast<Word>(code) << 2) |
                  (branch_delay ? 1u : 0u));
    cp0_.setUxReg(UxReg::BadAddr, bad_vaddr);
    cp0_.setStatusReg(st | status::UX);
    if (observer_)
        observer_->onException(code, epc, target);
    pc_ = target;
    npc_ = target + 4;
    prevWasControl_ = false;
    return true;
}

void
Cpu::takeException(ExcCode code, Addr bad_vaddr, bool has_bad_vaddr,
                   bool refill)
{
    excRaised_ = true;
    stats_.exceptionsTaken++;
    stats_.perExcCode[static_cast<unsigned>(code)]++;
    if (refill)
        stats_.tlbRefillFaults++;

    bool bd = prevWasControl_;
    Addr epc = bd ? pc_ - 4 : pc_;

    if (has_bad_vaddr)
        cp0_.setFaultAddress(bad_vaddr);

    // TLB refill misses always enter the kernel: there is nothing a
    // user handler could do without the page tables.
    if (!refill && tryUserVector(code, epc, bad_vaddr, bd)) {
        stats_.userVectoredExceptions++;
        return;
    }

    cp0_.enterException(epc, code, bd);
    Addr vector = refill ? RefillVector : GeneralVector;
    if (observer_)
        observer_->onException(code, epc, vector);
    pc_ = vector;
    npc_ = vector + 4;
    prevWasControl_ = false;
}

Addr
Cpu::injectException(ExcCode code, Addr fault_pc, Addr bad_vaddr,
                     bool refill)
{
    pc_ = fault_pc;
    npc_ = fault_pc + 4;
    prevWasControl_ = false;
    takeException(code, bad_vaddr, true, refill);
    excRaised_ = false;
    return pc_;
}

Cycles
Cpu::chargeDataAccess(Addr paddr, bool cacheable)
{
    Cycles before = stats_.cycles;
    if (config_.cachesEnabled) {
        if (cacheable && dcache_) {
            if (!dcache_->access(paddr))
                charge(config_.cost.dcacheMissPenalty);
        } else if (!cacheable) {
            charge(config_.cost.dcacheMissPenalty);
        }
    }
    return stats_.cycles - before;
}

// execution ------------------------------------------------------------------

void
Cpu::doBranch(bool taken, Addr target)
{
    stats_.branches++;
    if (taken) {
        stagedNpc_ = target;
        branchTaken_ = true;
        charge(config_.cost.takenBranchExtra);
    }
}

void
Cpu::doJump(Addr target)
{
    stats_.branches++;
    stagedNpc_ = target;
    branchTaken_ = true;
    charge(config_.cost.takenBranchExtra);
}

bool
Cpu::memAddress(const DecodedInst &inst, unsigned size, AccessType type,
                Addr &paddr_out)
{
    Addr ea = regs_[inst.rs] + inst.simm;
    if (!isAligned(ea, size)) {
        takeException(type == AccessType::Store ? ExcCode::AdES
                                                : ExcCode::AdEL,
                      ea, true, false);
        return false;
    }
    TranslateResult tr = translate(ea, type);
    if (!tr.ok) {
        takeException(tr.exc, ea, true, tr.refill);
        return false;
    }
    charge(type == AccessType::Store ? config_.cost.storeExtra
                                     : config_.cost.loadExtra);
    if (config_.cachesEnabled) {
        if (tr.cacheable && dcache_) {
            if (!dcache_->access(tr.paddr))
                charge(config_.cost.dcacheMissPenalty);
        } else if (!tr.cacheable) {
            charge(config_.cost.dcacheMissPenalty);
        }
    }
    if (type == AccessType::Store) {
        stats_.stores++;
        consecutiveStores_++;
        if (consecutiveStores_ >= 2 && config_.cost.writeBufferStall)
            charge(config_.cost.writeBufferStall);
    } else {
        stats_.loads++;
        consecutiveStores_ = 0;
    }
    paddr_out = tr.paddr;
    return true;
}

/**
 * Fetch through the one-entry predecoded-page cache. Returns null on
 * any miss (page change, write to the page, TLB mutation, ASID/mode
 * change, unaligned PC); the caller then runs the reference fetch
 * sequence, which both raises the right exception and refills the
 * cache. On a hit, replays exactly the statistics and cycle charges
 * the reference fetch would have produced.
 */
inline const DecodedInst *
Cpu::fetchFast()
{
    if (tlbGenSeen_ != tlb_.generation()) {
        flushMicroTlb();
        return nullptr;
    }
    if (translationKey(pc_) != fetchKey_ ||
        *fetchMemVer_ != fetchVersion_ || !isAligned(pc_, 4)) {
        return nullptr;
    }
    if (fetchMapped_)
        tlb_.recordMicroHit();
    if (config_.cachesEnabled && fetchCacheable_ && icache_) {
        if (!icache_->access(fetchPaBase_ | (pc_ & 0xfffu)))
            charge(config_.cost.icacheMissPenalty);
    }
    return &fetchPage_->insts[(pc_ & 0xfffu) >> 2];
}

/**
 * Install the fetch cache for the page a slow fetch just translated
 * to @p tr, (re)decoding the whole physical page if it has never been
 * seen or was written since. Returns null when the page does not lie
 * entirely inside physical memory (the reference path's word-at-a-
 * time bounds behaviour must be preserved for partial tail pages).
 */
const DecodedInst *
Cpu::refillFetchFast(const TranslateResult &tr)
{
    Addr base = tr.paddr & ~(PhysMemory::PageBytes - 1);
    if (base + PhysMemory::PageBytes > mem_.size())
        return nullptr;
    Word ppn = tr.paddr >> PhysMemory::PageShift;
    auto &slot = decodedPages_[ppn];
    const std::uint32_t *ver = mem_.pageVersionPtr(tr.paddr);
    if (!slot || slot->version != *ver) {
        if (!slot)
            slot = std::make_unique<DecodedPage>();
        for (unsigned i = 0; i < DecodedPage::NumInsts; i++)
            slot->insts[i] = decode(mem_.readWord(base + 4 * i));
        slot->version = *ver;
    }
    tlbGenSeen_ = tlb_.generation();
    fetchKey_ = translationKey(pc_);
    fetchPage_ = slot.get();
    fetchPaBase_ = base;
    fetchVbase_ = pc_ & 0xfffff000u;
    fetchMemVer_ = ver;
    fetchVersion_ = slot->version;
    fetchMapped_ = pc_ < Kseg0Base || pc_ >= Kseg2Base;
    fetchCacheable_ = tr.cacheable;
    return &fetchPage_->insts[(pc_ & 0xfffu) >> 2];
}

/**
 * Everything after fetch: retire accounting, execution, observer
 * callback and PC sequencing. Shared verbatim by the reference and
 * fast paths so the two cannot drift.
 */
inline void
Cpu::executeTail(const DecodedInst &inst, Cycles cycles_before)
{
    stats_.instructions++;
    charge(config_.cost.baseCost);

    Addr inst_pc = pc_;
    execute(inst);

    if (excRaised_)
        return;

    if (!(inst.flags & DecodedInst::FlagMemory))
        consecutiveStores_ = 0;

    if (observer_)
        observer_->onInst(inst_pc, inst, stats_.cycles - cycles_before);

    if (redirect_) {
        redirect_ = false;
        return;
    }

    prevWasControl_ = (inst.flags & DecodedInst::FlagControl) != 0;
    pc_ = npc_;
    npc_ = stagedNpc_;
}

void
Cpu::step()
{
    if (halted_)
        return;

    cp0_.tickRandom();
    excRaised_ = false;
    branchTaken_ = false;
    stagedNpc_ = npc_ + 4;

    Cycles cycles_before = stats_.cycles;

    if (config_.fastInterpreter) {
        if (const DecodedInst *inst = fetchFast()) {
            executeTail(*inst, cycles_before);
            return;
        }
        // miss: fall through to the reference fetch, which raises any
        // fetch exception and then refills the fast-path caches
    }

    // fetch
    if (!isAligned(pc_, 4)) {
        takeException(ExcCode::AdEL, pc_, true, false);
        return;
    }
    TranslateResult tr = translate(pc_, AccessType::Fetch);
    if (!tr.ok) {
        takeException(tr.exc, pc_, true, tr.refill);
        return;
    }
    if (config_.cachesEnabled && tr.cacheable && icache_) {
        if (!icache_->access(tr.paddr))
            charge(config_.cost.icacheMissPenalty);
    }
    if (config_.fastInterpreter) {
        if (const DecodedInst *inst = refillFetchFast(tr)) {
            executeTail(*inst, cycles_before);
            return;
        }
    }
    Word raw = mem_.readWord(tr.paddr);
    DecodedInst inst = decode(raw);
    executeTail(inst, cycles_before);
}

/**
 * Block-execution run loop for the fast interpreter: while the fetch
 * cache stays valid, dispatch instructions straight off the decoded
 * page without going back through step()'s per-instruction call
 * chain. Any miss (page change, self-modifying store, TLB or mode
 * change, exception, redirect) drops to one reference step() that
 * raises the right exception and refills the caches, then the block
 * loop resumes. Every statistics update and cycle charge below is an
 * exact replay of what step() performs, in the same order, so the two
 * paths stay bit-identical.
 */
RunResult
Cpu::runFast(InstCount max_insts)
{
    RunResult result;
    while (result.instsExecuted < max_insts) {
        if (halted_) {
            result.reason = StopReason::Halted;
            return result;
        }
        if (tlbGenSeen_ != tlb_.generation())
            flushMicroTlb();
        if (translationKey(pc_) != fetchKey_ ||
            *fetchMemVer_ != fetchVersion_ || (pc_ & 3) != 0) {
            // miss: one reference step raises any fetch exception and
            // refills the fetch cache
            InstCount before = stats_.instructions;
            step();
            result.instsExecuted += stats_.instructions - before;
            continue;
        }
        InstCount limit = max_insts - result.instsExecuted;
        InstCount done = 0;
        // PC sequencing lives in host registers inside the block loop:
        // the member round trip (store pc_, reload it next iteration)
        // is the interpreter's longest serial dependence chain. The
        // members are synced on every loop exit and before any
        // instruction that can observe them (exceptions, jump links,
        // CP0, memory - everything outside the inline subset below).
        Addr pc = pc_;
        Addr npc = npc_;
        bool sync = true;
        while (true) {
            const DecodedInst &inst = fetchPage_->insts[(pc & 0xfffu) >> 2];
            cp0_.tickRandom();
            Cycles cycles_before = stats_.cycles;
            if (fetchMapped_)
                tlb_.recordMicroHit();
            if (config_.cachesEnabled && fetchCacheable_ && icache_ &&
                !icache_->access(fetchPaBase_ | (pc & 0xfffu)))
                charge(config_.cost.icacheMissPenalty);
            stats_.instructions++;
            charge(config_.cost.baseCost);
            done++;
            Addr staged = npc + 4;
            const Word rs = regs_[inst.rs];
            const Word rt = regs_[inst.rt];
            const CostModel &cost = config_.cost;
            // Inline subset: instructions that cannot raise exceptions,
            // touch memory, or reach CP0/TLB state. Each case is a
            // transliteration of the corresponding execute() case with
            // pc_/stagedNpc_ replaced by the locals; doBranch()/doJump()
            // are expanded in place.
            switch (inst.op) {
              case Op::Sll:  setReg(inst.rd, rt << inst.shamt); break;
              case Op::Srl:  setReg(inst.rd, rt >> inst.shamt); break;
              case Op::Sra:
                setReg(inst.rd,
                       static_cast<Word>(static_cast<SWord>(rt) >>
                                         inst.shamt));
                break;
              case Op::Sllv: setReg(inst.rd, rt << (rs & 31)); break;
              case Op::Srlv: setReg(inst.rd, rt >> (rs & 31)); break;
              case Op::Srav:
                setReg(inst.rd,
                       static_cast<Word>(static_cast<SWord>(rt) >>
                                         (rs & 31)));
                break;
              case Op::Addu: setReg(inst.rd, rs + rt); break;
              case Op::Subu: setReg(inst.rd, rs - rt); break;
              case Op::And:  setReg(inst.rd, rs & rt); break;
              case Op::Or:   setReg(inst.rd, rs | rt); break;
              case Op::Xor:  setReg(inst.rd, rs ^ rt); break;
              case Op::Nor:  setReg(inst.rd, ~(rs | rt)); break;
              case Op::Slt:
                setReg(inst.rd,
                       static_cast<SWord>(rs) < static_cast<SWord>(rt));
                break;
              case Op::Sltu: setReg(inst.rd, rs < rt); break;
              case Op::Mult: {
                std::int64_t prod = static_cast<std::int64_t>(
                    static_cast<SWord>(rs)) * static_cast<SWord>(rt);
                lo_ = static_cast<Word>(prod);
                hi_ = static_cast<Word>(prod >> 32);
                charge(cost.multCost - cost.baseCost);
                break;
              }
              case Op::Multu: {
                std::uint64_t prod = static_cast<std::uint64_t>(rs) * rt;
                lo_ = static_cast<Word>(prod);
                hi_ = static_cast<Word>(prod >> 32);
                charge(cost.multCost - cost.baseCost);
                break;
              }
              case Op::Div:
                if (rt == 0) {
                    lo_ = 0xffffffffu;
                    hi_ = rs;
                } else if (rs == 0x80000000u && rt == 0xffffffffu) {
                    lo_ = 0x80000000u;
                    hi_ = 0;
                } else {
                    lo_ = static_cast<Word>(static_cast<SWord>(rs) /
                                            static_cast<SWord>(rt));
                    hi_ = static_cast<Word>(static_cast<SWord>(rs) %
                                            static_cast<SWord>(rt));
                }
                charge(cost.divCost - cost.baseCost);
                break;
              case Op::Divu:
                if (rt == 0) {
                    lo_ = 0xffffffffu;
                    hi_ = rs;
                } else {
                    lo_ = rs / rt;
                    hi_ = rs % rt;
                }
                charge(cost.divCost - cost.baseCost);
                break;
              case Op::Mfhi: setReg(inst.rd, hi_); break;
              case Op::Mthi: hi_ = rs; break;
              case Op::Mflo: setReg(inst.rd, lo_); break;
              case Op::Mtlo: lo_ = rs; break;
              case Op::Addiu: setReg(inst.rt, rs + inst.simm); break;
              case Op::Slti:
                setReg(inst.rt, static_cast<SWord>(rs) <
                                static_cast<SWord>(inst.simm));
                break;
              case Op::Sltiu: setReg(inst.rt, rs < inst.simm); break;
              case Op::Andi:  setReg(inst.rt, rs & inst.imm); break;
              case Op::Ori:   setReg(inst.rt, rs | inst.imm); break;
              case Op::Xori:  setReg(inst.rt, rs ^ inst.imm); break;
              case Op::Lui:   setReg(inst.rt, inst.imm << 16); break;
              case Op::J:
                stats_.branches++;
                staged = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
                branchTaken_ = true;
                charge(cost.takenBranchExtra);
                break;
              case Op::Jal:
                setReg(RA, pc + 8);
                stats_.branches++;
                staged = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
                branchTaken_ = true;
                charge(cost.takenBranchExtra);
                break;
              case Op::Jr:
                stats_.branches++;
                staged = rs;
                branchTaken_ = true;
                charge(cost.takenBranchExtra);
                break;
              case Op::Jalr:
                setReg(inst.rd, pc + 8);
                stats_.branches++;
                staged = rs;
                branchTaken_ = true;
                charge(cost.takenBranchExtra);
                break;
              case Op::Beq:
                stats_.branches++;
                if (rs == rt) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              case Op::Bne:
                stats_.branches++;
                if (rs != rt) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              case Op::Blez:
                stats_.branches++;
                if (static_cast<SWord>(rs) <= 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              case Op::Bgtz:
                stats_.branches++;
                if (static_cast<SWord>(rs) > 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              case Op::Bltz:
                stats_.branches++;
                if (static_cast<SWord>(rs) < 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              case Op::Bgez:
                stats_.branches++;
                if (static_cast<SWord>(rs) >= 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              case Op::Bltzal:
                setReg(RA, pc + 8);
                stats_.branches++;
                if (static_cast<SWord>(rs) < 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              case Op::Bgezal:
                setReg(RA, pc + 8);
                stats_.branches++;
                if (static_cast<SWord>(rs) >= 0) {
                    staged = pc + 4 + (inst.simm << 2);
                    branchTaken_ = true;
                    charge(cost.takenBranchExtra);
                }
                break;
              default:
                goto general;
            }
            // tail for the inline subset: never memory, never an
            // exception, never a redirect, never invalidates the
            // fetch cache
            consecutiveStores_ = 0;
            if (observer_)
                observer_->onInst(pc, inst, stats_.cycles - cycles_before);
            prevWasControl_ = (inst.flags & DecodedInst::FlagControl) != 0;
            pc = npc;
            npc = staged;
            if (done >= limit)
                break;
            // one compare covers "still in the cached page" and "still
            // word-aligned" (fetchVbase_ has zero low bits)
            if ((pc ^ fetchVbase_) & 0xfffff003u)
                break;
            continue;

          general:
            // everything else goes through the reference execute() on
            // synced member state, replaying executeTail() exactly
            pc_ = pc;
            npc_ = npc;
            stagedNpc_ = staged;
            excRaised_ = false;
            branchTaken_ = false;
            execute(inst);
            if (excRaised_) {
                // takeException already redirected pc_/npc_
                sync = false;
                break;
            }
            if (!(inst.flags & DecodedInst::FlagMemory))
                consecutiveStores_ = 0;
            if (observer_)
                observer_->onInst(pc, inst, stats_.cycles - cycles_before);
            if (redirect_) {
                redirect_ = false;
                sync = false;
                break;
            }
            prevWasControl_ = (inst.flags & DecodedInst::FlagControl) != 0;
            pc_ = npc_;
            npc_ = stagedNpc_;
            pc = pc_;
            npc = npc_;
            if (halted_ || done >= limit)
                break;
            if ((pc ^ fetchVbase_) & 0xfffff003u)
                break;
            // the cached translation and decoded page can only go
            // stale behind our back via a store (page write version)
            // or a fence-class instruction (TLB/CP0 write, host call);
            // anything else leaves them valid by construction
            if (inst.flags &
                (DecodedInst::FlagStore | DecodedInst::FlagFence)) {
                if (inst.flags & DecodedInst::FlagFence)
                    break;
                if (*fetchMemVer_ != fetchVersion_)
                    break;
            }
        }
        if (sync) {
            pc_ = pc;
            npc_ = npc;
        }
        result.instsExecuted += done;
    }
    result.reason = StopReason::InstLimit;
    return result;
}

RunResult
Cpu::run(InstCount max_insts)
{
    if (config_.fastInterpreter && breakpoints_.empty())
        return runFast(max_insts);

    RunResult result;
    bool first = true;
    while (result.instsExecuted < max_insts) {
        if (halted_) {
            result.reason = StopReason::Halted;
            return result;
        }
        if (!first && !breakpoints_.empty() &&
            breakpoints_.count(pc_) != 0) {
            result.reason = StopReason::Breakpoint;
            return result;
        }
        first = false;
        InstCount before = stats_.instructions;
        step();
        result.instsExecuted += stats_.instructions - before;
        if (halted_) {
            result.reason = StopReason::Halted;
            return result;
        }
    }
    result.reason = StopReason::InstLimit;
    return result;
}

void
Cpu::execute(const DecodedInst &inst)
{
    const Word rs = regs_[inst.rs];
    const Word rt = regs_[inst.rt];
    const CostModel &cost = config_.cost;
    bool user = cp0_.userMode();

    switch (inst.op) {
      // -- shifts ------------------------------------------------------
      case Op::Sll:  setReg(inst.rd, rt << inst.shamt); break;
      case Op::Srl:  setReg(inst.rd, rt >> inst.shamt); break;
      case Op::Sra:
        setReg(inst.rd,
               static_cast<Word>(static_cast<SWord>(rt) >> inst.shamt));
        break;
      case Op::Sllv: setReg(inst.rd, rt << (rs & 31)); break;
      case Op::Srlv: setReg(inst.rd, rt >> (rs & 31)); break;
      case Op::Srav:
        setReg(inst.rd,
               static_cast<Word>(static_cast<SWord>(rt) >> (rs & 31)));
        break;

      // -- arithmetic ---------------------------------------------------
      case Op::Add: {
        Word sum = rs + rt;
        // signed overflow: operands same sign, result different
        if (~(rs ^ rt) & (rs ^ sum) & 0x80000000u) {
            takeException(ExcCode::Ov, 0, false, false);
            return;
        }
        setReg(inst.rd, sum);
        break;
      }
      case Op::Addu: setReg(inst.rd, rs + rt); break;
      case Op::Sub: {
        Word diff = rs - rt;
        if ((rs ^ rt) & (rs ^ diff) & 0x80000000u) {
            takeException(ExcCode::Ov, 0, false, false);
            return;
        }
        setReg(inst.rd, diff);
        break;
      }
      case Op::Subu: setReg(inst.rd, rs - rt); break;
      case Op::And:  setReg(inst.rd, rs & rt); break;
      case Op::Or:   setReg(inst.rd, rs | rt); break;
      case Op::Xor:  setReg(inst.rd, rs ^ rt); break;
      case Op::Nor:  setReg(inst.rd, ~(rs | rt)); break;
      case Op::Slt:
        setReg(inst.rd, static_cast<SWord>(rs) < static_cast<SWord>(rt));
        break;
      case Op::Sltu: setReg(inst.rd, rs < rt); break;

      case Op::Mult: {
        std::int64_t prod = static_cast<std::int64_t>(
            static_cast<SWord>(rs)) * static_cast<SWord>(rt);
        lo_ = static_cast<Word>(prod);
        hi_ = static_cast<Word>(prod >> 32);
        charge(cost.multCost - cost.baseCost);
        break;
      }
      case Op::Multu: {
        std::uint64_t prod = static_cast<std::uint64_t>(rs) * rt;
        lo_ = static_cast<Word>(prod);
        hi_ = static_cast<Word>(prod >> 32);
        charge(cost.multCost - cost.baseCost);
        break;
      }
      case Op::Div:
        if (rt == 0) {
            // architecturally UNPREDICTABLE; we define a stable result
            lo_ = 0xffffffffu;
            hi_ = rs;
        } else if (rs == 0x80000000u && rt == 0xffffffffu) {
            lo_ = 0x80000000u;  // INT_MIN / -1 wraps
            hi_ = 0;
        } else {
            lo_ = static_cast<Word>(static_cast<SWord>(rs) /
                                    static_cast<SWord>(rt));
            hi_ = static_cast<Word>(static_cast<SWord>(rs) %
                                    static_cast<SWord>(rt));
        }
        charge(cost.divCost - cost.baseCost);
        break;
      case Op::Divu:
        if (rt == 0) {
            lo_ = 0xffffffffu;
            hi_ = rs;
        } else {
            lo_ = rs / rt;
            hi_ = rs % rt;
        }
        charge(cost.divCost - cost.baseCost);
        break;
      case Op::Mfhi: setReg(inst.rd, hi_); break;
      case Op::Mthi: hi_ = rs; break;
      case Op::Mflo: setReg(inst.rd, lo_); break;
      case Op::Mtlo: lo_ = rs; break;

      // -- immediate arithmetic -------------------------------------------
      case Op::Addi: {
        Word sum = rs + inst.simm;
        if (~(rs ^ inst.simm) & (rs ^ sum) & 0x80000000u) {
            takeException(ExcCode::Ov, 0, false, false);
            return;
        }
        setReg(inst.rt, sum);
        break;
      }
      case Op::Addiu: setReg(inst.rt, rs + inst.simm); break;
      case Op::Slti:
        setReg(inst.rt, static_cast<SWord>(rs) <
                        static_cast<SWord>(inst.simm));
        break;
      case Op::Sltiu: setReg(inst.rt, rs < inst.simm); break;
      case Op::Andi:  setReg(inst.rt, rs & inst.imm); break;
      case Op::Ori:   setReg(inst.rt, rs | inst.imm); break;
      case Op::Xori:  setReg(inst.rt, rs ^ inst.imm); break;
      case Op::Lui:   setReg(inst.rt, inst.imm << 16); break;

      // -- control ----------------------------------------------------------
      case Op::J:
        doJump(((pc_ + 4) & 0xf0000000u) | (inst.target << 2));
        break;
      case Op::Jal:
        setReg(RA, pc_ + 8);
        doJump(((pc_ + 4) & 0xf0000000u) | (inst.target << 2));
        break;
      case Op::Jr:
        doJump(rs);
        break;
      case Op::Jalr:
        setReg(inst.rd, pc_ + 8);
        doJump(rs);
        break;
      case Op::Beq:
        doBranch(rs == rt, pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bne:
        doBranch(rs != rt, pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Blez:
        doBranch(static_cast<SWord>(rs) <= 0, pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bgtz:
        doBranch(static_cast<SWord>(rs) > 0, pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bltz:
        doBranch(static_cast<SWord>(rs) < 0, pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bgez:
        doBranch(static_cast<SWord>(rs) >= 0, pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bltzal:
        setReg(RA, pc_ + 8);
        doBranch(static_cast<SWord>(rs) < 0, pc_ + 4 + (inst.simm << 2));
        break;
      case Op::Bgezal:
        setReg(RA, pc_ + 8);
        doBranch(static_cast<SWord>(rs) >= 0, pc_ + 4 + (inst.simm << 2));
        break;

      // -- memory --------------------------------------------------------------
      case Op::Lb: {
        Addr pa;
        if (!memAddress(inst, 1, AccessType::Load, pa))
            return;
        setReg(inst.rt, signExtend(mem_.readByte(pa), 8));
        break;
      }
      case Op::Lbu: {
        Addr pa;
        if (!memAddress(inst, 1, AccessType::Load, pa))
            return;
        setReg(inst.rt, mem_.readByte(pa));
        break;
      }
      case Op::Lh: {
        Addr pa;
        if (!memAddress(inst, 2, AccessType::Load, pa))
            return;
        setReg(inst.rt, signExtend(mem_.readHalf(pa), 16));
        break;
      }
      case Op::Lhu: {
        Addr pa;
        if (!memAddress(inst, 2, AccessType::Load, pa))
            return;
        setReg(inst.rt, mem_.readHalf(pa));
        break;
      }
      case Op::Lw: {
        Addr pa;
        if (!memAddress(inst, 4, AccessType::Load, pa))
            return;
        setReg(inst.rt, mem_.readWord(pa));
        break;
      }
      case Op::Sb: {
        Addr pa;
        if (!memAddress(inst, 1, AccessType::Store, pa))
            return;
        mem_.writeByte(pa, static_cast<Byte>(rt));
        break;
      }
      case Op::Sh: {
        Addr pa;
        if (!memAddress(inst, 2, AccessType::Store, pa))
            return;
        mem_.writeHalf(pa, static_cast<Half>(rt));
        break;
      }
      case Op::Sw: {
        Addr pa;
        if (!memAddress(inst, 4, AccessType::Store, pa))
            return;
        mem_.writeWord(pa, rt);
        break;
      }

      // -- traps ------------------------------------------------------------------
      case Op::Syscall:
        takeException(ExcCode::Sys, 0, false, false);
        return;
      case Op::Break:
        takeException(ExcCode::Bp, 0, false, false);
        return;

      // -- CP0 / TLB -----------------------------------------------------------------
      case Op::Mfc0:
      case Op::Mtc0:
      case Op::Tlbr:
      case Op::Tlbwi:
      case Op::Tlbwr:
      case Op::Tlbp:
      case Op::Rfe:
        if (user) {
            takeException(ExcCode::CpU, 0, false, false);
            return;
        }
        switch (inst.op) {
          case Op::Mfc0:
            setReg(inst.rt, cp0_.read(inst.rd));
            break;
          case Op::Mtc0:
            cp0_.write(inst.rd, rt);
            break;
          case Op::Tlbr: {
            unsigned idx = (cp0_.index() >> 8) & 0x3f;
            const TlbEntry &e = tlb_.entry(idx);
            cp0_.write(cp0reg::EntryHi, e.hi);
            cp0_.write(cp0reg::EntryLo, e.lo);
            break;
          }
          case Op::Tlbwi: {
            unsigned idx = (cp0_.index() >> 8) & 0x3f;
            tlb_.setEntry(idx, cp0_.entryHi(), cp0_.entryLo());
            break;
          }
          case Op::Tlbwr: {
            unsigned idx = cp0_.randomIndex();
            tlb_.setEntry(idx, cp0_.entryHi(), cp0_.entryLo());
            break;
          }
          case Op::Tlbp: {
            Word hi = cp0_.entryHi();
            auto hit = tlb_.probeQuiet(
                hi & entryhi::VpnMask,
                (hi & entryhi::AsidMask) >> entryhi::AsidShift);
            cp0_.setIndexRaw(hit ? (*hit << 8) : 0x80000000u);
            break;
          }
          case Op::Rfe:
            cp0_.returnFromException();
            break;
          default:
            break;
        }
        break;

      // -- extensions: user exception architecture ------------------------------------
      case Op::Mfux:
      case Op::Mtux:
      case Op::Xret:
        if (!config_.userVectorHw) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        if (inst.op == Op::Xret) {
            if (!(cp0_.statusReg() & status::UX)) {
                takeException(ExcCode::Ri, 0, false, false);
                return;
            }
            cp0_.setStatusReg(cp0_.statusReg() & ~status::UX);
            // Tera-style return: control moves to the (possibly
            // updated) saved exception PC, with no delay slot.
            pc_ = cp0_.uxReg(UxReg::Epc);
            npc_ = pc_ + 4;
            prevWasControl_ = false;
            redirect_ = true;
            return;
        }
        if (inst.rd >= NumUxRegs) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        if (inst.op == Op::Mfux) {
            setReg(inst.rt, cp0_.uxReg(static_cast<UxReg>(inst.rd)));
        } else {
            cp0_.setUxReg(static_cast<UxReg>(inst.rd), rt);
        }
        break;

      // -- extensions: user TLB protection modification ----------------------------------
      case Op::Tlbmp: {
        if (!config_.tlbmpHw) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        auto hit = tlb_.probeQuiet(rs, cp0_.asid());
        if (!hit) {
            // No resident translation: the kernel must do it via the
            // page tables, so fall back to the emulation path.
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        const TlbEntry &e = tlb_.entry(*hit);
        if (user && !e.userModifiable()) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        Word lo = e.lo;
        lo = (rt & 1u) ? (lo | entrylo::D) : (lo & ~entrylo::D);
        lo = (rt & 2u) ? (lo | entrylo::V) : (lo & ~entrylo::V);
        tlb_.setEntry(*hit, e.hi, lo);
        break;
      }

      // -- extensions: host call ------------------------------------------------------------
      case Op::Hcall:
        if (inst.target == 0) {
            halted_ = true;
            break;
        }
        if (!hcallHandler_) {
            takeException(ExcCode::Ri, 0, false, false);
            return;
        }
        hcallHandler_(*this, inst.target);
        // the handler may have redirected or halted us
        if (halted_)
            return;
        break;

      case Op::Invalid:
        takeException(ExcCode::Ri, 0, false, false);
        return;
    }
}

} // namespace uexc::sim
