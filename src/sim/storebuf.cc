#include "sim/storebuf.h"

#include "sim/memory.h"

namespace uexc::sim {

Word
StoreBuffer::mergedWord(const PhysMemory &mem, Addr wordAddr) const
{
    Word value = mem.readWord(wordAddr);
    auto it = words_.find(wordAddr >> 2);
    if (it == words_.end())
        return value;
    const Entry &e = it->second;
    if (e.mask == 0xf)
        return e.data;
    Word keep = 0;
    for (unsigned b = 0; b < 4; b++)
        if (e.mask & (1u << b))
            keep |= Word(0xff) << (8 * b);
    return (value & ~keep) | (e.data & keep);
}

Word
StoreBuffer::readWord(const PhysMemory &mem, Addr paddr) const
{
    return mergedWord(mem, paddr);
}

Half
StoreBuffer::readHalf(const PhysMemory &mem, Addr paddr) const
{
    Word w = mergedWord(mem, paddr & ~Addr(3));
    return Half(w >> (8 * (paddr & 2)));
}

Byte
StoreBuffer::readByte(const PhysMemory &mem, Addr paddr) const
{
    Word w = mergedWord(mem, paddr & ~Addr(3));
    return Byte(w >> (8 * (paddr & 3)));
}

void
StoreBuffer::mergeBytes(Addr paddr, Word value, unsigned bytes)
{
    unsigned offset = paddr & 3;
    Entry &e = words_[(paddr & ~Addr(3)) >> 2];
    std::uint8_t mask = std::uint8_t(((1u << bytes) - 1) << offset);
    Word keep = 0;
    for (unsigned b = 0; b < 4; b++)
        if (mask & (1u << b))
            keep |= Word(0xff) << (8 * b);
    e.data = (e.data & ~keep) | ((value << (8 * offset)) & keep);
    e.mask |= mask;
}

void
StoreBuffer::writeWord(Addr paddr, Word value)
{
    Entry &e = words_[paddr >> 2];
    e.data = value;
    e.mask = 0xf;
}

void
StoreBuffer::writeHalf(Addr paddr, Half value)
{
    mergeBytes(paddr, value, 2);
}

void
StoreBuffer::writeByte(Addr paddr, Byte value)
{
    mergeBytes(paddr, value, 1);
}

void
StoreBuffer::noteLoad(Addr paddr)
{
    Addr page = paddr >> PhysMemory::PageShift;
    if (page == lastLoadPage_)
        return;
    lastLoadPage_ = page;
    readPages_.insert(page);
}

void
StoreBuffer::noteStore(Addr paddr)
{
    Addr page = paddr >> PhysMemory::PageShift;
    if (page == lastStorePage_)
        return;
    lastStorePage_ = page;
    writePages_.insert(page);
    // A store into a page this hart already fetched code from would
    // be invisible to the (version-validated) decoder: the buffered
    // store does not bump the page version the way a real store
    // would, so a serial run could refetch patched code where we
    // would not. Bail out and let the serial fallback replay it.
    if (fetchPages_.count(page))
        aborted_ = true;
}

void
StoreBuffer::noteFetch(Addr paddr)
{
    Addr page = paddr >> PhysMemory::PageShift;
    if (page == lastFetchPage_)
        return;
    lastFetchPage_ = page;
    fetchPages_.insert(page);
    // Fetching from a page this hart already wrote: the fetch would
    // read the stale frozen image, not the buffered store.
    if (writePages_.count(page))
        aborted_ = true;
    // A later noteStore into this page must re-check against
    // fetchPages_ even if it hits the store memo from before this
    // fetch was recorded.
    lastStorePage_ = kNoPage;
}

void
StoreBuffer::commit(PhysMemory &mem) const
{
    // Iteration order is arbitrary, which is fine: entries cover
    // disjoint words, and page-version *values* are not architectural
    // (they are equality-compared by pollers, never snapshotted).
    for (const auto &[wordIdx, e] : words_) {
        Addr paddr = wordIdx << 2;
        if (e.mask == 0xf) {
            mem.writeWord(paddr, e.data);
            continue;
        }
        for (unsigned b = 0; b < 4; b++)
            if (e.mask & (1u << b))
                mem.writeByte(paddr + b, Byte(e.data >> (8 * b)));
    }
}

void
StoreBuffer::clear()
{
    words_.clear();
    readPages_.clear();
    writePages_.clear();
    fetchPages_.clear();
    lastLoadPage_ = kNoPage;
    lastStorePage_ = kNoPage;
    lastFetchPage_ = kNoPage;
    aborted_ = false;
}

bool
pagesIntersect(const std::unordered_set<Addr> &a,
               const std::unordered_set<Addr> &b)
{
    const auto &small = a.size() <= b.size() ? a : b;
    const auto &big = a.size() <= b.size() ? b : a;
    for (Addr p : small)
        if (big.count(p))
            return true;
    return false;
}

} // namespace uexc::sim
