#include "sim/faultinject.h"

#include "common/logging.h"
#include "sim/cp0.h"
#include "sim/cpu.h"
#include "sim/hart.h"
#include "sim/memory.h"
#include "sim/tlb.h"

namespace uexc::sim {

namespace {

/** beq zero, zero, -1: an address-independent branch-to-self. */
constexpr Word kSelfLoop = 0x1000ffffu;

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::MemBitFlip:        return "MemBitFlip";
      case FaultKind::TlbCorrupt:        return "TlbCorrupt";
      case FaultKind::TlbSpuriousMiss:   return "TlbSpuriousMiss";
      case FaultKind::SpuriousException: return "SpuriousException";
      case FaultKind::HandlerRunaway:    return "HandlerRunaway";
    }
    return "?";
}

void
FaultInjector::addEvent(const FaultEvent &event)
{
    pending_.push_back(event);
}

bool
FaultInjector::wants(unsigned hart) const
{
    for (const FaultEvent &e : pending_)
        if (e.hart == hart)
            return true;
    return false;
}

void
FaultInjector::maybeFire(Cpu &cpu)
{
    unsigned hart = cpu.hartId();
    InstCount now = cpu.instret();
    for (std::size_t i = 0; i < pending_.size();) {
        const FaultEvent &e = pending_[i];
        if (e.hart != hart || now < e.atInst || !fire(cpu, e)) {
            i++;
            continue;
        }
        fired_.push_back({e, now, cpu.pc()});
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(i));
    }
}

bool
FaultInjector::fire(Cpu &cpu, const FaultEvent &event)
{
    switch (event.kind) {
      case FaultKind::MemBitFlip: {
        Addr wa = event.addr & ~3u;
        PhysMemory &mem = cpu.mem();
        if (wa + 4 > mem.size())
            UEXC_FATAL("faultinject: bit-flip target 0x%08x beyond "
                       "physical memory", wa);
        mem.writeWord(wa, mem.readWord(wa) ^ (1u << (event.bit & 31)));
        return true;
      }
      case FaultKind::TlbCorrupt: {
        unsigned idx = event.tlbIndex % Tlb::NumEntries;
        const TlbEntry &e = cpu.tlb().entry(idx);
        cpu.tlb().setEntry(idx, e.hi, e.lo & ~entrylo::V);
        return true;
      }
      case FaultKind::TlbSpuriousMiss: {
        // Evict: park the entry on the same impossible per-index kseg
        // VPN Tlb::invalidate uses, so the next access to the old page
        // takes a genuine refill and reloads the PTE.
        unsigned idx = event.tlbIndex % Tlb::NumEntries;
        cpu.tlb().setEntry(idx, 0x80000000u | (idx << 12), 0);
        return true;
      }
      case FaultKind::SpuriousException: {
        // Only meaningful (and only safe) for user-mode kuseg
        // execution outside a branch delay slot: the refill handler is
        // k0/k1-only and EPC must name a restartable instruction.
        // Defer deterministically until the hart gets there.
        if (!cpu.cp0().userMode() || cpu.pc() >= Cpu::Kseg0Base ||
            cpu.hart().inDelaySlot())
            return false;
        cpu.injectException(ExcCode::TlbL, cpu.pc(), event.addr,
                            /*refill=*/true);
        return true;
      }
      case FaultKind::HandlerRunaway: {
        Addr wa = event.addr & ~3u;
        PhysMemory &mem = cpu.mem();
        if (wa + 8 > mem.size())
            UEXC_FATAL("faultinject: runaway target 0x%08x beyond "
                       "physical memory", wa);
        mem.writeWord(wa, kSelfLoop);
        mem.writeWord(wa + 4, 0); // delay slot: nop
        return true;
      }
    }
    return true;
}

void
FaultInjector::clear()
{
    pending_.clear();
    fired_.clear();
}

std::uint64_t
FaultInjector::splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace uexc::sim
