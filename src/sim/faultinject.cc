#include "sim/faultinject.h"

#include "common/logging.h"
#include "sim/cp0.h"
#include "sim/cpu.h"
#include "sim/hart.h"
#include "sim/memory.h"
#include "sim/snapshot.h"
#include "sim/tlb.h"

namespace uexc::sim {

namespace {

/** beq zero, zero, -1: an address-independent branch-to-self. */
constexpr Word kSelfLoop = 0x1000ffffu;

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::MemBitFlip:        return "MemBitFlip";
      case FaultKind::TlbCorrupt:        return "TlbCorrupt";
      case FaultKind::TlbSpuriousMiss:   return "TlbSpuriousMiss";
      case FaultKind::SpuriousException: return "SpuriousException";
      case FaultKind::HandlerRunaway:    return "HandlerRunaway";
    }
    return "?";
}

void
FaultInjector::addEvent(const FaultEvent &event)
{
    pending_.push_back(event);
}

bool
FaultInjector::wants(unsigned hart) const
{
    for (const FaultEvent &e : pending_)
        if (e.hart == hart)
            return true;
    return false;
}

void
FaultInjector::maybeFire(Cpu &cpu)
{
    unsigned hart = cpu.hartId();
    InstCount now = cpu.instret();
    for (std::size_t i = 0; i < pending_.size();) {
        const FaultEvent &e = pending_[i];
        if (e.hart != hart || now < e.atInst || !fire(cpu, e)) {
            i++;
            continue;
        }
        fired_.push_back({e, now, cpu.pc()});
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(i));
    }
}

bool
FaultInjector::fire(Cpu &cpu, const FaultEvent &event)
{
    switch (event.kind) {
      case FaultKind::MemBitFlip: {
        Addr wa = event.addr & ~3u;
        PhysMemory &mem = cpu.mem();
        if (wa + 4 > mem.size())
            UEXC_FATAL("faultinject: bit-flip target 0x%08x beyond "
                       "physical memory", wa);
        mem.writeWord(wa, mem.readWord(wa) ^ (1u << (event.bit & 31)));
        return true;
      }
      case FaultKind::TlbCorrupt: {
        unsigned idx = event.tlbIndex % Tlb::NumEntries;
        const TlbEntry &e = cpu.tlb().entry(idx);
        cpu.tlb().setEntry(idx, e.hi, e.lo & ~entrylo::V);
        return true;
      }
      case FaultKind::TlbSpuriousMiss: {
        // Evict: park the entry on the same impossible per-index kseg
        // VPN Tlb::invalidate uses, so the next access to the old page
        // takes a genuine refill and reloads the PTE.
        unsigned idx = event.tlbIndex % Tlb::NumEntries;
        cpu.tlb().setEntry(idx, 0x80000000u | (idx << 12), 0);
        return true;
      }
      case FaultKind::SpuriousException: {
        // Only meaningful (and only safe) for user-mode kuseg
        // execution outside a branch delay slot, and outside any
        // masked window (the stub's k0-live restore sequence): the
        // refill handler is k0/k1-only and EPC must name a
        // restartable instruction. Defer deterministically until the
        // hart gets there.
        if (!cpu.cp0().userMode() || cpu.pc() >= Cpu::Kseg0Base ||
            cpu.hart().inDelaySlot() || pcMasked(cpu.pc()))
            return false;
        cpu.injectException(ExcCode::TlbL, cpu.pc(), event.addr,
                            /*refill=*/true);
        return true;
      }
      case FaultKind::HandlerRunaway: {
        Addr wa = event.addr & ~3u;
        PhysMemory &mem = cpu.mem();
        if (wa + 8 > mem.size())
            UEXC_FATAL("faultinject: runaway target 0x%08x beyond "
                       "physical memory", wa);
        mem.writeWord(wa, kSelfLoop);
        mem.writeWord(wa + 4, 0); // delay slot: nop
        return true;
      }
    }
    return true;
}

void
FaultInjector::clear()
{
    pending_.clear();
    fired_.clear();
}

void
FaultInjector::maskPcWindow(Addr begin, Addr end)
{
    if (begin >= end)
        UEXC_FATAL("faultinject: empty mask window [0x%08x, 0x%08x)",
                   begin, end);
    maskedWindows_.emplace_back(begin, end);
}

bool
FaultInjector::pcMasked(Addr pc) const
{
    for (const auto &[begin, end] : maskedWindows_)
        if (pc >= begin && pc < end)
            return true;
    return false;
}

namespace {

void
saveEvent(SnapshotWriter &w, const FaultEvent &e)
{
    w.u32(static_cast<std::uint32_t>(e.kind));
    w.u32(e.hart);
    w.u64(e.atInst);
    w.u32(e.addr);
    w.u32(e.bit);
    w.u32(e.tlbIndex);
}

FaultEvent
loadEvent(SnapshotReader &r)
{
    FaultEvent e;
    std::uint32_t kind = r.u32();
    if (kind > static_cast<std::uint32_t>(FaultKind::HandlerRunaway))
        r.fail("fault kind " + std::to_string(kind) + " out of range");
    e.kind = static_cast<FaultKind>(kind);
    e.hart = r.u32();
    e.atInst = r.u64();
    e.addr = r.u32();
    e.bit = r.u32();
    e.tlbIndex = r.u32();
    return e;
}

} // namespace

void
FaultInjector::snapshotSave(SnapshotWriter &w) const
{
    w.u32(std::uint32_t(pending_.size()));
    for (const FaultEvent &e : pending_)
        saveEvent(w, e);
    w.u32(std::uint32_t(fired_.size()));
    for (const FiredEvent &f : fired_) {
        saveEvent(w, f.event);
        w.u64(f.firedAt);
        w.u32(f.pc);
    }
}

void
FaultInjector::snapshotLoad(SnapshotReader &r)
{
    pending_.clear();
    fired_.clear();
    std::uint32_t npending = r.u32();
    for (std::uint32_t i = 0; i < npending; i++)
        pending_.push_back(loadEvent(r));
    std::uint32_t nfired = r.u32();
    for (std::uint32_t i = 0; i < nfired; i++) {
        FiredEvent f;
        f.event = loadEvent(r);
        f.firedAt = r.u64();
        f.pc = r.u32();
        fired_.push_back(f);
    }
}

std::uint64_t
FaultInjector::splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace uexc::sim
