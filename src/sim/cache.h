/**
 * @file
 * A simple direct-mapped cache cost model.
 *
 * The DECstation 5000/200 of the paper has separate direct-mapped
 * 64 KB instruction and data caches with 4-byte (I) / 16-byte (D)
 * lines and a write-through, write-around data cache. We model tags
 * only — data always comes from PhysMemory — because the cache exists
 * purely to attribute miss cycles. This is what separates the paper's
 * 65-instruction fast handler from the data-heavy Ultrix signal path
 * organically rather than by fiat.
 */

#ifndef UEXC_SIM_CACHE_H
#define UEXC_SIM_CACHE_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace uexc::sim {

class SnapshotReader;
class SnapshotWriter;

/** Statistics for one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/**
 * Direct-mapped, physically-indexed tag store.
 */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity (power of two)
     * @param line_bytes line size (power of two)
     */
    Cache(std::size_t size_bytes, std::size_t line_bytes);

    /**
     * Access @p paddr; updates tags and stats.
     * @return true on hit, false on miss (line is filled)
     */
    bool access(Addr paddr);

    /** Probe without updating state. */
    bool probe(Addr paddr) const;

    /** Invalidate all lines (cold cache). */
    void flush();

    /** Invalidate any line holding @p paddr. */
    void invalidate(Addr paddr);

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats(); }

    std::size_t numLines() const { return valid_.size(); }
    std::size_t lineBytes() const { return lineBytes_; }

    /** Serialize geometry, tag store, and stats into a snapshot. */
    void snapshotSave(SnapshotWriter &w) const;
    /** Restore from a snapshot; rejects mismatched geometry. */
    void snapshotLoad(SnapshotReader &r);

  private:
    std::size_t lineFor(Addr paddr) const;
    Addr tagFor(Addr paddr) const;

    std::size_t lineBytes_;
    std::vector<bool> valid_;
    std::vector<Addr> tags_;
    CacheStats stats_;
};

} // namespace uexc::sim

#endif // UEXC_SIM_CACHE_H
