/**
 * @file
 * Instruction-set definition for the simulated CPU.
 *
 * The ISA is a faithful subset of MIPS-I (R3000): real 32-bit
 * encodings, the standard three formats (R/I/J), branch delay slots,
 * and the CP0/TLB management instructions (mfc0, mtc0, tlbr, tlbwi,
 * tlbwr, tlbp, rfe).
 *
 * Three extensions, all in opcode slots unused by MIPS-I, implement
 * the architectural proposals of Thekkath & Levy (ASPLOS '94):
 *
 *  - TLBMP (opcode 0x3a): user-level TLB protection modification.
 *    Modifies only the V/D protection bits of the matching TLB entry,
 *    and only if the kernel set that entry's U (user-modifiable) bit.
 *    When the machine is configured without this hardware feature the
 *    instruction raises Reserved Instruction and the kernel emulates
 *    it (the paper's software fallback, section 3.2.3).
 *
 *  - COP3 (opcode 0x13): the Tera-style user exception architecture
 *    (section 2.1/2.2): mfux/mtux move between general registers and
 *    the user exception register file (exception target, condition,
 *    saved PC, and six scratch registers), and xret returns from a
 *    user-vectored exception.
 *
 *  - HCALL (opcode 0x3b): a simulator pseudo-op (gem5 m5op style) that
 *    invokes a registered host service; used to bridge guest code to
 *    host-side kernel services and application handlers with an
 *    explicit simulated-cycle charge.
 */

#ifndef UEXC_SIM_ISA_H
#define UEXC_SIM_ISA_H

#include <string>

#include "common/types.h"
#include "sim/costmodel.h"

namespace uexc::sim {

/** Architectural general-purpose register numbers (MIPS ABI names). */
enum Reg : unsigned
{
    Zero = 0, AT = 1,
    V0 = 2, V1 = 3,
    A0 = 4, A1 = 5, A2 = 6, A3 = 7,
    T0 = 8, T1 = 9, T2 = 10, T3 = 11,
    T4 = 12, T5 = 13, T6 = 14, T7 = 15,
    S0 = 16, S1 = 17, S2 = 18, S3 = 19,
    S4 = 20, S5 = 21, S6 = 22, S7 = 23,
    T8 = 24, T9 = 25,
    K0 = 26, K1 = 27,
    GP = 28, SP = 29, FP = 30, RA = 31,
};

/** Number of general-purpose registers. */
constexpr unsigned NumRegs = 32;

/** Primary opcode field values (instruction bits [31:26]). */
enum class Opcode : unsigned
{
    Special = 0x00,
    RegImm  = 0x01,
    J       = 0x02,
    Jal     = 0x03,
    Beq     = 0x04,
    Bne     = 0x05,
    Blez    = 0x06,
    Bgtz    = 0x07,
    Addi    = 0x08,
    Addiu   = 0x09,
    Slti    = 0x0a,
    Sltiu   = 0x0b,
    Andi    = 0x0c,
    Ori     = 0x0d,
    Xori    = 0x0e,
    Lui     = 0x0f,
    Cop0    = 0x10,
    Cop3    = 0x13,   ///< extension: user exception architecture
    Lb      = 0x20,
    Lh      = 0x21,
    Lw      = 0x23,
    Lbu     = 0x24,
    Lhu     = 0x25,
    Sb      = 0x28,
    Sh      = 0x29,
    Sw      = 0x2b,
    Tlbmp   = 0x3a,   ///< extension: user TLB protection modify
    Hcall   = 0x3b,   ///< extension: host service call
};

/** SPECIAL-opcode function field values (bits [5:0]). */
enum class Funct : unsigned
{
    Sll     = 0x00,
    Srl     = 0x02,
    Sra     = 0x03,
    Sllv    = 0x04,
    Srlv    = 0x06,
    Srav    = 0x07,
    Jr      = 0x08,
    Jalr    = 0x09,
    Syscall = 0x0c,
    Break   = 0x0d,
    Mfhi    = 0x10,
    Mthi    = 0x11,
    Mflo    = 0x12,
    Mtlo    = 0x13,
    Mult    = 0x18,
    Multu   = 0x19,
    Div     = 0x1a,
    Divu    = 0x1b,
    Add     = 0x20,
    Addu    = 0x21,
    Sub     = 0x22,
    Subu    = 0x23,
    And     = 0x24,
    Or      = 0x25,
    Xor     = 0x26,
    Nor     = 0x27,
    Slt     = 0x2a,
    Sltu    = 0x2b,
};

/** REGIMM rt-field values. */
enum class RegImmOp : unsigned
{
    Bltz   = 0x00,
    Bgez   = 0x01,
    Bltzal = 0x10,
    Bgezal = 0x11,
};

/** COP0 rs-field values (when bit 25, CO, is clear). */
enum class Cop0Rs : unsigned
{
    Mfc0 = 0x00,
    Mtc0 = 0x04,
};

/** COP0 function field values (when the CO bit is set). */
enum class Cop0Funct : unsigned
{
    Tlbr  = 0x01,
    Tlbwi = 0x02,
    Tlbwr = 0x06,
    Tlbp  = 0x08,
    Rfe   = 0x10,
};

/** COP3 rs-field values (extension, CO clear): user-exception moves. */
enum class Cop3Rs : unsigned
{
    Mfux = 0x00,  ///< rt := user-exception register rd
    Mtux = 0x04,  ///< user-exception register rd := rt
};

/** COP3 function field values (CO set). */
enum class Cop3Funct : unsigned
{
    Xret = 0x01,  ///< return from user-vectored exception
};

/**
 * User exception register file indices (the Tera-style per-thread
 * exception state of section 2.1).
 */
enum class UxReg : unsigned
{
    Target  = 0,  ///< handler entry point, loaded by user software
    Cond    = 1,  ///< exception condition (cause code, BD flag)
    Epc     = 2,  ///< PC at the time of the exception
    BadAddr = 3,  ///< faulting address for memory exceptions
    Scratch0 = 4, ///< six scratch registers the handler may use
    Scratch1 = 5,
    Scratch2 = 6,
    Scratch3 = 7,
    Scratch4 = 8,
    Scratch5 = 9,
};

/** Number of user exception registers. */
constexpr unsigned NumUxRegs = 10;

/**
 * Symbolic operation kind, resolved from the opcode/funct fields by
 * decode(). One enumerator per executable operation.
 */
enum class Op : unsigned
{
    Invalid,
    // arithmetic / logical, register form
    Sll, Srl, Sra, Sllv, Srlv, Srav,
    Add, Addu, Sub, Subu,
    And, Or, Xor, Nor, Slt, Sltu,
    Mult, Multu, Div, Divu, Mfhi, Mthi, Mflo, Mtlo,
    // arithmetic / logical, immediate form
    Addi, Addiu, Slti, Sltiu, Andi, Ori, Xori, Lui,
    // control transfer
    J, Jal, Jr, Jalr,
    Beq, Bne, Blez, Bgtz, Bltz, Bgez, Bltzal, Bgezal,
    // memory
    Lb, Lbu, Lh, Lhu, Lw, Sb, Sh, Sw,
    // traps
    Syscall, Break,
    // CP0 / TLB
    Mfc0, Mtc0, Tlbr, Tlbwi, Tlbwr, Tlbp, Rfe,
    // extensions
    Mfux, Mtux, Xret, Tlbmp, Hcall,
};

/** Number of Op enumerators (size of per-operation metadata tables). */
constexpr unsigned NumOps = static_cast<unsigned>(Op::Hcall) + 1;

/**
 * Declarative per-operation metadata flags. One table entry per Op
 * (see opFlags()) is the single source of truth for instruction
 * classification: the DecodedInst predicate methods, the decode-time
 * flag bits consumed by the fast block interpreter, and the static
 * analyzer's register read/write sets are all derived from it.
 *
 * The low five bits deliberately coincide with DecodedInst::Flag so
 * decode() can copy them directly.
 */
namespace opf {
enum : std::uint16_t
{
    Control    = 1u << 0,  ///< branch or jump (has a delay slot)
    Memory     = 1u << 1,  ///< reads or writes memory
    Store      = 1u << 2,  ///< writes memory
    Privileged = 1u << 3,  ///< kernel-mode only (CP0/TLB ops, rfe)
    Fence      = 1u << 4,  ///< may invalidate host-side caches
    ReadsRs    = 1u << 5,  ///< reads GPR rs
    ReadsRt    = 1u << 6,  ///< reads GPR rt
    WritesRd   = 1u << 7,  ///< writes GPR rd
    WritesRt   = 1u << 8,  ///< writes GPR rt
    WritesRA   = 1u << 9,  ///< writes $ra implicitly (jal, b*al)
    Load       = 1u << 10, ///< memory read (lb/lbu/lh/lhu/lw)
    Branch     = 1u << 11, ///< conditional control transfer
    Jump       = 1u << 12, ///< unconditional control transfer
    Trap       = 1u << 13, ///< always raises an exception (syscall, break)
    Return     = 1u << 14, ///< exception return (rfe, xret)
};
} // namespace opf

/** The metadata flag word (opf:: bits) for an operation kind. */
std::uint16_t opFlags(Op op);

/**
 * Functional-unit cost class of an operation. One table entry per Op
 * (see opCostClass()) is the single source of truth for per-
 * instruction cycle charges: the interpreter's charge sites and the
 * static WCET analyzer both derive their costs from it, so the two
 * cannot disagree about what an instruction costs.
 *
 * Cache miss penalties and the write-buffer stall are properties of
 * the dynamic access stream, not of an opcode; they stay behavioral
 * (CostModel::icacheMissPenalty etc.) and the WCET analyzer models
 * them separately.
 */
enum class CostClass : std::uint8_t
{
    Simple,          ///< baseCost only
    MultiplyUnit,    ///< + (multCost - baseCost) at execute
    DivideUnit,      ///< + (divCost - baseCost) at execute
    MemoryLoad,      ///< + loadExtra at the memory stage
    MemoryStore,     ///< + storeExtra at the memory stage
    ControlTransfer, ///< + takenBranchExtra when taken
};

/** The cost class for an operation kind. */
CostClass opCostClass(Op op);

/** Extra execute-stage cycles beyond baseCost (multiply/divide). */
Cycles opExecuteExtraCycles(Op op, const CostModel &cost);

/** Extra memory-stage cycles (loadExtra/storeExtra); 0 for non-memory
 *  operations. */
Cycles opMemoryExtraCycles(Op op, const CostModel &cost);

/** Extra cycles charged when a control transfer is taken; 0 for
 *  non-control operations. */
Cycles opTakenControlExtraCycles(Op op, const CostModel &cost);

/**
 * A decoded instruction: the raw word plus all fields and the resolved
 * operation kind.
 */
struct DecodedInst
{
    /**
     * Decode-time classification bits mirroring the predicate methods
     * below, filled in by decode(). The block interpreter tests these
     * instead of re-running the switch per retired instruction.
     */
    enum Flag : std::uint8_t {
        FlagControl = 1u << 0,    ///< isControl()
        FlagMemory = 1u << 1,     ///< isMemory()
        FlagStore = 1u << 2,      ///< isStore()
        FlagPrivileged = 1u << 3, ///< isPrivileged()
        /**
         * May invalidate the fast interpreter's host-side caches
         * without being a store: TLB/CP0 writes (mode, ASID, mappings)
         * and host calls (kernel services may rewrite guest memory or
         * shoot down the TLB). The block loop revalidates after these.
         */
        FlagFence = 1u << 4,
    };

    Word raw = 0;       ///< original instruction word
    Op op = Op::Invalid;
    unsigned rs = 0;    ///< bits [25:21]
    unsigned rt = 0;    ///< bits [20:16]
    unsigned rd = 0;    ///< bits [15:11]
    unsigned shamt = 0; ///< bits [10:6]
    Word imm = 0;       ///< bits [15:0], zero-extended
    Word simm = 0;      ///< bits [15:0], sign-extended to 32 bits
    Word target = 0;    ///< bits [25:0] (J-format target field)
    std::uint8_t flags = 0; ///< Flag bits, valid only from decode()

    /** Whether this instruction is a branch or jump (has a delay slot). */
    bool isControl() const { return (opFlags(op) & opf::Control) != 0; }
    /** Whether this instruction reads or writes memory. */
    bool isMemory() const { return (opFlags(op) & opf::Memory) != 0; }
    /** Whether this instruction writes memory. */
    bool isStore() const { return (opFlags(op) & opf::Store) != 0; }
    /** Whether this instruction is privileged (kernel-mode only). */
    bool isPrivileged() const
    {
        return (opFlags(op) & opf::Privileged) != 0;
    }
};

/**
 * Bitmask (bit n = GPR n) of general-purpose registers the
 * instruction reads, derived from the opf:: metadata table. $zero is
 * never included.
 */
Word regReadSet(const DecodedInst &inst);

/**
 * Bitmask (bit n = GPR n) of general-purpose registers the
 * instruction writes. Writes to $zero are architectural no-ops and
 * are never included.
 */
Word regWriteSet(const DecodedInst &inst);

/**
 * Decode a raw instruction word.
 *
 * Unrecognized encodings decode to Op::Invalid; executing them raises
 * a Reserved Instruction exception, which is itself meaningful (the
 * kernel-emulated TLBMP path relies on it).
 */
DecodedInst decode(Word raw);

/** Render a decoded instruction as human-readable assembly text. */
std::string disassemble(const DecodedInst &inst);

/** Render the instruction at @p pc (for PC-relative branch targets). */
std::string disassemble(const DecodedInst &inst, Addr pc);

/** The canonical ABI name ("v0", "sp", ...) of a register. */
const char *regName(unsigned reg);

} // namespace uexc::sim

#endif // UEXC_SIM_ISA_H
