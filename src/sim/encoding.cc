#include "sim/encoding.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::sim::enc {

namespace {

constexpr Word
opField(Opcode op)
{
    return static_cast<Word>(op) << 26;
}

Word
checkReg(unsigned reg)
{
    if (reg >= NumRegs)
        UEXC_PANIC("encoder: register %u out of range", reg);
    return reg;
}

Word
imm16(Word imm)
{
    return imm & 0xffffu;
}

Word
branch(Opcode op, unsigned rs, unsigned rt, SWord word_offset)
{
    if (word_offset < -32768 || word_offset > 32767)
        UEXC_PANIC("encoder: branch offset %d out of range", word_offset);
    return iType(op, rt, rs, static_cast<Word>(word_offset));
}

Word
regImmBranch(RegImmOp rt_op, unsigned rs, SWord word_offset)
{
    if (word_offset < -32768 || word_offset > 32767)
        UEXC_PANIC("encoder: branch offset %d out of range", word_offset);
    return opField(Opcode::RegImm) | (checkReg(rs) << 21) |
           (static_cast<Word>(rt_op) << 16) |
           imm16(static_cast<Word>(word_offset));
}

} // namespace

Word
rType(Funct funct, unsigned rd, unsigned rs, unsigned rt, unsigned shamt)
{
    if (shamt >= 32)
        UEXC_PANIC("encoder: shamt %u out of range", shamt);
    return (checkReg(rs) << 21) | (checkReg(rt) << 16) |
           (checkReg(rd) << 11) | (shamt << 6) |
           static_cast<Word>(funct);
}

Word
iType(Opcode op, unsigned rt, unsigned rs, Word imm)
{
    return opField(op) | (checkReg(rs) << 21) | (checkReg(rt) << 16) |
           imm16(imm);
}

Word
jType(Opcode op, Word target26)
{
    return opField(op) | (target26 & 0x03ffffffu);
}

Word sll(unsigned rd, unsigned rt, unsigned shamt)
{ return rType(Funct::Sll, rd, 0, rt, shamt); }
Word srl(unsigned rd, unsigned rt, unsigned shamt)
{ return rType(Funct::Srl, rd, 0, rt, shamt); }
Word sra(unsigned rd, unsigned rt, unsigned shamt)
{ return rType(Funct::Sra, rd, 0, rt, shamt); }
Word sllv(unsigned rd, unsigned rt, unsigned rs)
{ return rType(Funct::Sllv, rd, rs, rt); }
Word srlv(unsigned rd, unsigned rt, unsigned rs)
{ return rType(Funct::Srlv, rd, rs, rt); }
Word srav(unsigned rd, unsigned rt, unsigned rs)
{ return rType(Funct::Srav, rd, rs, rt); }

Word add(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Add, rd, rs, rt); }
Word addu(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Addu, rd, rs, rt); }
Word sub(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Sub, rd, rs, rt); }
Word subu(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Subu, rd, rs, rt); }
Word and_(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::And, rd, rs, rt); }
Word or_(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Or, rd, rs, rt); }
Word xor_(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Xor, rd, rs, rt); }
Word nor(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Nor, rd, rs, rt); }
Word slt(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Slt, rd, rs, rt); }
Word sltu(unsigned rd, unsigned rs, unsigned rt)
{ return rType(Funct::Sltu, rd, rs, rt); }

Word mult(unsigned rs, unsigned rt)
{ return rType(Funct::Mult, 0, rs, rt); }
Word multu(unsigned rs, unsigned rt)
{ return rType(Funct::Multu, 0, rs, rt); }
Word div(unsigned rs, unsigned rt)
{ return rType(Funct::Div, 0, rs, rt); }
Word divu(unsigned rs, unsigned rt)
{ return rType(Funct::Divu, 0, rs, rt); }
Word mfhi(unsigned rd) { return rType(Funct::Mfhi, rd, 0, 0); }
Word mthi(unsigned rs) { return rType(Funct::Mthi, 0, rs, 0); }
Word mflo(unsigned rd) { return rType(Funct::Mflo, rd, 0, 0); }
Word mtlo(unsigned rs) { return rType(Funct::Mtlo, 0, rs, 0); }

Word addi(unsigned rt, unsigned rs, SWord imm)
{ return iType(Opcode::Addi, rt, rs, static_cast<Word>(imm)); }
Word addiu(unsigned rt, unsigned rs, SWord imm)
{ return iType(Opcode::Addiu, rt, rs, static_cast<Word>(imm)); }
Word slti(unsigned rt, unsigned rs, SWord imm)
{ return iType(Opcode::Slti, rt, rs, static_cast<Word>(imm)); }
Word sltiu(unsigned rt, unsigned rs, SWord imm)
{ return iType(Opcode::Sltiu, rt, rs, static_cast<Word>(imm)); }
Word andi(unsigned rt, unsigned rs, Word imm)
{ return iType(Opcode::Andi, rt, rs, imm); }
Word ori(unsigned rt, unsigned rs, Word imm)
{ return iType(Opcode::Ori, rt, rs, imm); }
Word xori(unsigned rt, unsigned rs, Word imm)
{ return iType(Opcode::Xori, rt, rs, imm); }
Word lui(unsigned rt, Word imm)
{ return iType(Opcode::Lui, rt, 0, imm); }

Word j(Word target26) { return jType(Opcode::J, target26); }
Word jal(Word target26) { return jType(Opcode::Jal, target26); }
Word jr(unsigned rs) { return rType(Funct::Jr, 0, rs, 0); }
Word jalr(unsigned rd, unsigned rs) { return rType(Funct::Jalr, rd, rs, 0); }

Word beq(unsigned rs, unsigned rt, SWord word_offset)
{ return branch(Opcode::Beq, rs, rt, word_offset); }
Word bne(unsigned rs, unsigned rt, SWord word_offset)
{ return branch(Opcode::Bne, rs, rt, word_offset); }
Word blez(unsigned rs, SWord word_offset)
{ return branch(Opcode::Blez, rs, 0, word_offset); }
Word bgtz(unsigned rs, SWord word_offset)
{ return branch(Opcode::Bgtz, rs, 0, word_offset); }
Word bltz(unsigned rs, SWord word_offset)
{ return regImmBranch(RegImmOp::Bltz, rs, word_offset); }
Word bgez(unsigned rs, SWord word_offset)
{ return regImmBranch(RegImmOp::Bgez, rs, word_offset); }
Word bltzal(unsigned rs, SWord word_offset)
{ return regImmBranch(RegImmOp::Bltzal, rs, word_offset); }
Word bgezal(unsigned rs, SWord word_offset)
{ return regImmBranch(RegImmOp::Bgezal, rs, word_offset); }

Word lb(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Lb, rt, base, static_cast<Word>(offset)); }
Word lbu(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Lbu, rt, base, static_cast<Word>(offset)); }
Word lh(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Lh, rt, base, static_cast<Word>(offset)); }
Word lhu(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Lhu, rt, base, static_cast<Word>(offset)); }
Word lw(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Lw, rt, base, static_cast<Word>(offset)); }
Word sb(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Sb, rt, base, static_cast<Word>(offset)); }
Word sh(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Sh, rt, base, static_cast<Word>(offset)); }
Word sw(unsigned rt, SWord offset, unsigned base)
{ return iType(Opcode::Sw, rt, base, static_cast<Word>(offset)); }

Word syscall() { return rType(Funct::Syscall, 0, 0, 0); }

Word
break_(Word code)
{
    return rType(Funct::Break, 0, 0, 0) | ((code & 0xfffffu) << 6);
}

Word
mfc0(unsigned rt, unsigned cp0_reg)
{
    return opField(Opcode::Cop0) |
           (static_cast<Word>(Cop0Rs::Mfc0) << 21) |
           (checkReg(rt) << 16) | (checkReg(cp0_reg) << 11);
}

Word
mtc0(unsigned rt, unsigned cp0_reg)
{
    return opField(Opcode::Cop0) |
           (static_cast<Word>(Cop0Rs::Mtc0) << 21) |
           (checkReg(rt) << 16) | (checkReg(cp0_reg) << 11);
}

namespace {
constexpr Word kCoBit = Word(1) << 25;
} // namespace

Word tlbr() { return opField(Opcode::Cop0) | kCoBit |
                     static_cast<Word>(Cop0Funct::Tlbr); }
Word tlbwi() { return opField(Opcode::Cop0) | kCoBit |
                      static_cast<Word>(Cop0Funct::Tlbwi); }
Word tlbwr() { return opField(Opcode::Cop0) | kCoBit |
                      static_cast<Word>(Cop0Funct::Tlbwr); }
Word tlbp() { return opField(Opcode::Cop0) | kCoBit |
                     static_cast<Word>(Cop0Funct::Tlbp); }
Word rfe() { return opField(Opcode::Cop0) | kCoBit |
                    static_cast<Word>(Cop0Funct::Rfe); }

Word
mfux(unsigned rt, UxReg ux_reg)
{
    return opField(Opcode::Cop3) |
           (static_cast<Word>(Cop3Rs::Mfux) << 21) |
           (checkReg(rt) << 16) |
           (static_cast<Word>(ux_reg) << 11);
}

Word
mtux(unsigned rt, UxReg ux_reg)
{
    return opField(Opcode::Cop3) |
           (static_cast<Word>(Cop3Rs::Mtux) << 21) |
           (checkReg(rt) << 16) |
           (static_cast<Word>(ux_reg) << 11);
}

Word
xret()
{
    return opField(Opcode::Cop3) | kCoBit |
           static_cast<Word>(Cop3Funct::Xret);
}

Word
tlbmp(unsigned rs, unsigned rt)
{
    return opField(Opcode::Tlbmp) | (checkReg(rs) << 21) |
           (checkReg(rt) << 16);
}

Word
hcall(Word service26)
{
    return jType(Opcode::Hcall, service26);
}

Word nop() { return 0; }
Word move(unsigned rd, unsigned rs) { return addu(rd, rs, Zero); }

} // namespace uexc::sim::enc
