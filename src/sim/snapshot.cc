#include "sim/snapshot.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace uexc::sim {

namespace {

/** Header: magic, version, section count. */
constexpr std::size_t kHeaderBytes = 12;
/** Footer: footer magic, total CRC. */
constexpr std::size_t kFooterBytes = 8;
/** Per-section framing: tag, length (before payload), CRC (after). */
constexpr std::size_t kSectionFrameBytes = 12;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
putLe32(std::vector<Byte> &buf, std::size_t at, std::uint32_t v)
{
    buf[at + 0] = Byte(v);
    buf[at + 1] = Byte(v >> 8);
    buf[at + 2] = Byte(v >> 16);
    buf[at + 3] = Byte(v >> 24);
}

std::uint32_t
getLe32(const Byte *p)
{
    return std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
           std::uint32_t(p[2]) << 16 | std::uint32_t(p[3]) << 24;
}

} // namespace

std::uint32_t
snapshotCrc32(const Byte *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; i++)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::string
snapshotTagName(Word tag)
{
    char text[5];
    bool printable = true;
    for (unsigned i = 0; i < 4; i++) {
        text[i] = char((tag >> (8 * i)) & 0xffu);
        if (!std::isprint(static_cast<unsigned char>(text[i])))
            printable = false;
    }
    text[4] = '\0';
    if (printable)
        return std::string("\"") + text + "\"";
    char hex[16];
    std::snprintf(hex, sizeof hex, "0x%08x", tag);
    return hex;
}

// -- memory-section serializer -------------------------------------------

void
writeMemorySection(
    SnapshotWriter &w, Word tag, std::uint64_t memBytes,
    const std::function<void(std::uint32_t page, Byte *dst,
                             std::size_t len)> &readPage,
    const std::function<bool(std::uint32_t page, std::size_t len)>
        &pageIsZero)
{
    std::size_t pages = (std::size_t(memBytes) + kSnapshotPageBytes - 1) /
                        kSnapshotPageBytes;
    std::vector<Byte> page(kSnapshotPageBytes);
    std::vector<std::uint32_t> live;
    for (std::size_t p = 0; p < pages; p++) {
        std::size_t base = p * kSnapshotPageBytes;
        std::size_t len = std::min(kSnapshotPageBytes,
                                   std::size_t(memBytes) - base);
        bool zero;
        if (pageIsZero) {
            zero = pageIsZero(std::uint32_t(p), len);
        } else {
            readPage(std::uint32_t(p), page.data(), len);
            zero = std::all_of(page.begin(), page.begin() + len,
                               [](Byte b) { return b == 0; });
        }
        if (!zero)
            live.push_back(std::uint32_t(p));
    }
    w.beginSection(tag);
    w.u64(memBytes);
    w.u32(std::uint32_t(live.size()));
    for (std::uint32_t p : live) {
        std::size_t base = std::size_t(p) * kSnapshotPageBytes;
        std::size_t len = std::min(kSnapshotPageBytes,
                                   std::size_t(memBytes) - base);
        readPage(p, page.data(), len);
        w.u32(p);
        w.bytes(page.data(), len);
    }
    w.endSection();
}

// -- SnapshotWriter ------------------------------------------------------

SnapshotWriter::SnapshotWriter()
{
    buf_.resize(kHeaderBytes, 0);
    putLe32(buf_, 0, kSnapshotMagic);
    putLe32(buf_, 4, kSnapshotVersion);
}

void
SnapshotWriter::u8(std::uint8_t v)
{
    buf_.push_back(v);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    buf_.push_back(Byte(v));
    buf_.push_back(Byte(v >> 8));
    buf_.push_back(Byte(v >> 16));
    buf_.push_back(Byte(v >> 24));
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    u32(std::uint32_t(v));
    u32(std::uint32_t(v >> 32));
}

void
SnapshotWriter::bytes(const void *src, std::size_t len)
{
    const Byte *p = static_cast<const Byte *>(src);
    buf_.insert(buf_.end(), p, p + len);
}

void
SnapshotWriter::str(const std::string &s)
{
    u32(std::uint32_t(s.size()));
    bytes(s.data(), s.size());
}

void
SnapshotWriter::beginSection(Word tag)
{
    if (inSection_ || finished_)
        UEXC_PANIC("snapshot writer: nested or post-finish section");
    inSection_ = true;
    u32(tag);
    u32(0);  // length, patched by endSection
    payloadStart_ = buf_.size();
}

void
SnapshotWriter::endSection()
{
    if (!inSection_)
        UEXC_PANIC("snapshot writer: endSection outside a section");
    inSection_ = false;
    std::size_t payload = buf_.size() - payloadStart_;
    putLe32(buf_, payloadStart_ - 4, std::uint32_t(payload));
    u32(snapshotCrc32(buf_.data() + payloadStart_, payload));
    sectionCount_++;
}

std::vector<Byte>
SnapshotWriter::finish()
{
    if (inSection_ || finished_)
        UEXC_PANIC("snapshot writer: finish inside a section");
    finished_ = true;
    putLe32(buf_, 8, sectionCount_);
    u32(kSnapshotFooterMagic);
    // the total CRC covers everything written so far, footer magic
    // included; only the CRC word itself is outside it
    std::uint32_t total = snapshotCrc32(buf_.data(), buf_.size());
    u32(total);
    return std::move(buf_);
}

// -- SnapshotReader ------------------------------------------------------

SnapshotReader::SnapshotReader(const Byte *data, std::size_t len,
                               std::string context)
    : data_(data), len_(len), context_(std::move(context))
{
}

void
SnapshotReader::fail(const std::string &what) const
{
    throw SnapshotError("snapshot " + context_ + ": " + what);
}

void
SnapshotReader::need(std::size_t n) const
{
    if (len_ - pos_ < n)
        fail("truncated payload (need " + std::to_string(n) +
             " bytes at offset " + std::to_string(pos_) + " of " +
             std::to_string(len_) + ")");
}

std::uint8_t
SnapshotReader::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint32_t
SnapshotReader::u32()
{
    need(4);
    std::uint32_t v = getLe32(data_ + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | hi << 32;
}

bool
SnapshotReader::boolean()
{
    std::uint8_t v = u8();
    if (v > 1)
        fail("boolean field holds " + std::to_string(v));
    return v != 0;
}

void
SnapshotReader::bytes(void *dst, std::size_t len)
{
    need(len);
    std::memcpy(dst, data_ + pos_, len);
    pos_ += len;
}

std::string
SnapshotReader::str()
{
    std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

void
SnapshotReader::expectEnd() const
{
    if (pos_ != len_)
        fail(std::to_string(len_ - pos_) +
             " unconsumed payload bytes");
}

// -- SnapshotImage -------------------------------------------------------

SnapshotImage::SnapshotImage(const std::vector<Byte> &bytes)
    : data_(bytes.data())
{
    std::size_t len = bytes.size();
    if (len < kHeaderBytes + kFooterBytes)
        throw SnapshotError("snapshot image: " + std::to_string(len) +
                            " bytes is shorter than header + footer");
    if (getLe32(data_) != kSnapshotMagic)
        throw SnapshotError("snapshot image: bad magic");
    std::uint32_t version = getLe32(data_ + 4);
    if (version != kSnapshotVersion)
        throw SnapshotError(
            "snapshot image: format version " + std::to_string(version) +
            ", this build reads version " +
            std::to_string(kSnapshotVersion));
    if (getLe32(data_ + len - 8) != kSnapshotFooterMagic)
        throw SnapshotError("snapshot image: bad footer magic "
                            "(truncated image?)");
    std::uint32_t total_crc = getLe32(data_ + len - 4);
    if (snapshotCrc32(data_, len - 4) != total_crc)
        throw SnapshotError("snapshot image: total CRC mismatch");

    std::uint32_t count = getLe32(data_ + 8);
    std::size_t pos = kHeaderBytes;
    std::size_t body_end = len - kFooterBytes;
    for (std::uint32_t i = 0; i < count; i++) {
        if (body_end - pos < kSectionFrameBytes)
            throw SnapshotError("snapshot image: section " +
                                std::to_string(i) + " frame truncated");
        Word tag = getLe32(data_ + pos);
        std::size_t payload = getLe32(data_ + pos + 4);
        if (payload > body_end - pos - kSectionFrameBytes)
            throw SnapshotError(
                "snapshot image: section " + snapshotTagName(tag) +
                " length " + std::to_string(payload) +
                " overruns the image");
        std::size_t offset = pos + 8;
        std::uint32_t crc = getLe32(data_ + offset + payload);
        if (snapshotCrc32(data_ + offset, payload) != crc)
            throw SnapshotError("snapshot image: section " +
                                snapshotTagName(tag) + " CRC mismatch");
        if (has(tag))
            throw SnapshotError("snapshot image: duplicate section " +
                                snapshotTagName(tag));
        sections_.push_back({tag, offset, payload});
        pos = offset + payload + 4;
    }
    if (pos != body_end)
        throw SnapshotError("snapshot image: " +
                            std::to_string(body_end - pos) +
                            " stray bytes after the last section");
}

bool
SnapshotImage::has(Word tag) const
{
    for (const SnapshotSection &s : sections_)
        if (s.tag == tag)
            return true;
    return false;
}

SnapshotReader
SnapshotImage::section(Word tag) const
{
    for (const SnapshotSection &s : sections_)
        if (s.tag == tag)
            return SnapshotReader(data_ + s.offset, s.length,
                                  "section " + snapshotTagName(tag));
    throw SnapshotError("snapshot image: required section " +
                        snapshotTagName(tag) + " is missing");
}

// -- diffing -------------------------------------------------------------

std::vector<SnapshotSectionDiff>
diffSnapshotImages(const SnapshotImage &a, const SnapshotImage &b)
{
    std::vector<SnapshotSectionDiff> out;
    for (const SnapshotSection &sa : a.sections()) {
        SnapshotSectionDiff d;
        d.tag = sa.tag;
        d.inA = true;
        d.lengthA = sa.length;
        if (!b.has(sa.tag)) {
            out.push_back(d);
            continue;
        }
        const SnapshotSection *sb = nullptr;
        for (const SnapshotSection &s : b.sections())
            if (s.tag == sa.tag)
                sb = &s;
        d.inB = true;
        d.lengthB = sb->length;
        const Byte *pa = a.sectionData(sa);
        const Byte *pb = b.sectionData(*sb);
        std::size_t common = std::min(sa.length, sb->length);
        std::size_t i = 0;
        while (i < common && pa[i] == pb[i])
            i++;
        if (i == common && sa.length == sb->length)
            continue; // identical payloads
        d.firstDiffOffset = i;
        out.push_back(d);
    }
    for (const SnapshotSection &sb : b.sections()) {
        if (a.has(sb.tag))
            continue;
        SnapshotSectionDiff d;
        d.tag = sb.tag;
        d.inB = true;
        d.lengthB = sb.length;
        out.push_back(d);
    }
    return out;
}

std::string
snapshotDiffLine(const SnapshotSectionDiff &d)
{
    std::string name = snapshotTagName(d.tag);
    if (!d.inA)
        return "section " + name + ": only in the second image (" +
               std::to_string(d.lengthB) + " bytes)";
    if (!d.inB)
        return "section " + name + ": only in the first image (" +
               std::to_string(d.lengthA) + " bytes)";
    return "section " + name + ": first divergence at payload byte " +
           std::to_string(d.firstDiffOffset) + " (" +
           std::to_string(d.lengthA) + " vs " +
           std::to_string(d.lengthB) + " bytes)";
}

// -- file I/O ------------------------------------------------------------

namespace {

/** fsync the directory holding @p path so a just-renamed entry is
 *  durable; a crash after rename but before the directory flush could
 *  otherwise resurrect the pre-rename state (a half-migrated target
 *  would reappear as its stale predecessor). Best effort on
 *  filesystems that refuse directory fsync. */
void
syncContainingDir(const std::string &path)
{
#ifndef _WIN32
    std::size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash == 0 ? 1 : slash);
    int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    (void)fsync(fd);
    (void)close(fd);
#else
    (void)path;
#endif
}

} // namespace

void
writeSnapshotFile(const std::string &path,
                  const std::vector<Byte> &image)
{
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw SnapshotError("snapshot write: cannot open " + tmp);
    bool ok = image.empty() ||
              std::fwrite(image.data(), 1, image.size(), f) ==
                  image.size();
    ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
    ok = fsync(fileno(f)) == 0 && ok;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw SnapshotError("snapshot write: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("snapshot write: rename to " + path +
                            " failed");
    }
    syncContainingDir(path);
}

std::vector<Byte>
readSnapshotFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SnapshotError("snapshot read: cannot open " + path);
    std::vector<Byte> image;
    Byte chunk[65536];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        image.insert(image.end(), chunk, chunk + got);
    bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err)
        throw SnapshotError("snapshot read: I/O error on " + path);
    return image;
}

} // namespace uexc::sim
