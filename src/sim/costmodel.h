/**
 * @file
 * The cycle cost model of the simulated machine.
 *
 * The interpreter is functional (no pipeline); time is charged per
 * dynamic instruction from this table, plus cache miss penalties when
 * the cache model is enabled, plus TLB-refill time (which is itself
 * guest code and therefore costed the same way).
 *
 * Defaults approximate a 25 MHz MIPS R3000 DECstation 5000/200: single
 * issue, one cycle per instruction, memory operations effectively one
 * cycle on a cache hit, multi-cycle multiply/divide, and miss
 * penalties in line with the 5000/200 memory system.
 */

#ifndef UEXC_SIM_COSTMODEL_H
#define UEXC_SIM_COSTMODEL_H

#include "common/types.h"

namespace uexc::sim {

/** Per-operation cycle costs. See file comment. */
struct CostModel
{
    /** Base cost of every instruction. */
    Cycles baseCost = 1;
    /** Additional cost of a load beyond baseCost (cache hit). */
    Cycles loadExtra = 0;
    /** Additional cost of a store beyond baseCost (cache hit). */
    Cycles storeExtra = 0;
    /** Additional cost of a taken branch/jump (refill bubble). */
    Cycles takenBranchExtra = 0;
    /** Total cost of integer multiply. */
    Cycles multCost = 12;
    /** Total cost of integer divide. */
    Cycles divCost = 35;
    /** Instruction cache miss penalty (cache model enabled only). */
    Cycles icacheMissPenalty = 14;
    /** Data cache miss penalty (cache model enabled only). */
    Cycles dcacheMissPenalty = 14;
    /**
     * Write-through cost: the R3000 DECstations used write-through
     * caches with a write buffer; a sustained store stream stalls.
     * Charged on every Nth consecutive store (0 disables).
     */
    Cycles writeBufferStall = 2;

    /** Machine clock in MHz, for converting cycles to microseconds. */
    double clockMhz = 25.0;

    /** Convert a cycle count to microseconds at this clock. */
    double toMicros(Cycles cycles) const
    {
        return static_cast<double>(cycles) / clockMhz;
    }
};

} // namespace uexc::sim

#endif // UEXC_SIM_COSTMODEL_H
