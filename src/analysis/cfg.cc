#include "analysis/cfg.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace uexc::analysis {

using sim::DecodedInst;
using sim::Op;

namespace {

/** Static successor addresses of the control instruction at @p pc.
 *  Indirect jumps (jr/jalr) have no static target; calls include the
 *  return continuation. The delay slot is already accounted for: all
 *  sequential successors are pc + 8. */
std::vector<Addr>
controlSuccessors(const DecodedInst &inst, Addr pc)
{
    Addr btarget = pc + 4 + (inst.simm << 2);
    Addr jtarget = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
    std::uint16_t f = sim::opFlags(inst.op);

    if (f & sim::opf::Branch)
        return {btarget, pc + 8};
    switch (inst.op) {
      case Op::J:    return {jtarget};
      case Op::Jal:  return {jtarget, pc + 8};
      case Op::Jalr: return {pc + 8};
      case Op::Jr:   return {};
      default:       break;
    }
    return {};
}

} // namespace

Cfg
Cfg::build(const sim::Program &prog, const CodeRegion &region)
{
    Cfg cfg;
    cfg.region_ = region;
    if (region.end < region.begin || (region.begin & 3) ||
        (region.end & 3)) {
        UEXC_PANIC("malformed code region [0x%08x, 0x%08x)",
                   region.begin, region.end);
    }

    unsigned nwords = (region.end - region.begin) / 4;
    cfg.insts_.resize(nwords);
    cfg.reached_.assign(nwords, false);
    cfg.delaySlot_.assign(nwords, false);
    cfg.blockIndex_.assign(nwords, -1);

    auto wordAt = [&](Addr a) -> Word {
        Addr off = a - prog.origin;
        if (a < prog.origin || off / 4 >= prog.words.size())
            return 0;
        return prog.words[off / 4];
    };
    for (unsigned i = 0; i < nwords; i++)
        cfg.insts_[i] = sim::decode(wordAt(region.begin + 4 * i));

    // Mine jump tables: data words holding in-region code addresses
    // are additional entry points.
    for (const AddrRange &dr : region.dataRanges) {
        for (Addr a = dr.begin; a < dr.end; a += 4) {
            Word w = wordAt(a);
            if (w >= region.begin && w < region.end && !(w & 3) &&
                !cfg.isData(w)) {
                cfg.mined_.push_back(w);
            }
        }
    }

    // Trace reachable instructions, collecting block leaders.
    std::set<Addr> leaders;
    std::vector<Addr> worklist;
    auto addEntry = [&](Addr a) {
        if (a >= region.begin && a < region.end && !(a & 3) &&
            !cfg.isData(a)) {
            leaders.insert(a);
            worklist.push_back(a);
        }
    };
    for (Addr a : region.entries)
        addEntry(a);
    for (Addr a : cfg.mined_)
        addEntry(a);

    while (!worklist.empty()) {
        Addr pc = worklist.back();
        worklist.pop_back();
        while (pc < region.end && !cfg.isData(pc)) {
            unsigned idx = cfg.indexOf(pc);
            if (cfg.reached_[idx])
                break;
            cfg.reached_[idx] = true;
            const DecodedInst &inst = cfg.insts_[idx];
            std::uint16_t f = sim::opFlags(inst.op);
            if (f & sim::opf::Control) {
                Addr delay = pc + 4;
                if (delay < region.end && !cfg.isData(delay)) {
                    cfg.reached_[cfg.indexOf(delay)] = true;
                    cfg.delaySlot_[cfg.indexOf(delay)] = true;
                }
                for (Addr t : controlSuccessors(inst, pc))
                    addEntry(t);
                break;
            }
            if ((f & sim::opf::Return) || inst.op == Op::Break)
                break; // terminator
            pc += 4;
        }
    }

    // Partition the reachable instructions into basic blocks.
    for (Addr leader : leaders) {
        unsigned lidx = cfg.indexOf(leader);
        if (!cfg.reached_[lidx] || cfg.delaySlot_[lidx])
            continue;
        BasicBlock b;
        b.begin = leader;
        Addr pc = leader;
        std::vector<Addr> succAddrs;
        while (true) {
            const DecodedInst &inst = cfg.insts_[cfg.indexOf(pc)];
            std::uint16_t f = sim::opFlags(inst.op);
            if (f & sim::opf::Control) {
                Addr delay = pc + 4;
                bool has_delay =
                    delay < region.end && !cfg.isData(delay);
                b.end = has_delay ? pc + 8 : pc + 4;
                b.fallsOff = !has_delay;
                succAddrs = controlSuccessors(inst, pc);
                break;
            }
            if ((f & sim::opf::Return) || inst.op == Op::Break) {
                b.end = pc + 4;
                break;
            }
            Addr next = pc + 4;
            if (next >= region.end || cfg.isData(next) ||
                !cfg.reached_[cfg.indexOf(next)]) {
                // Sequential flow into non-code: the block runs off.
                b.end = next;
                b.fallsOff = true;
                break;
            }
            if (leaders.count(next)) {
                b.end = next;
                succAddrs = {next};
                break;
            }
            pc = next;
        }
        for (Addr a = b.begin; a < b.end; a += 4)
            cfg.blockIndex_[cfg.indexOf(a)] =
                static_cast<int>(cfg.blocks_.size());
        // Temporarily stash successor addresses in succs; resolved to
        // block indices below once every block exists.
        cfg.blocks_.push_back(std::move(b));
        std::vector<std::vector<Addr>> &pending = cfg.pendingSuccs_;
        pending.push_back(std::move(succAddrs));
    }

    for (unsigned i = 0; i < cfg.blocks_.size(); i++) {
        for (Addr t : cfg.pendingSuccs_[i]) {
            int bi = cfg.blockIndexAt(t);
            if (bi >= 0 && cfg.blocks_[bi].begin == t)
                cfg.blocks_[i].succs.push_back(
                    static_cast<unsigned>(bi));
        }
    }
    cfg.pendingSuccs_.clear();
    return cfg;
}

bool
Cfg::reached(Addr a) const
{
    return inRegion(a) && reached_[indexOf(a)];
}

bool
Cfg::isData(Addr a) const
{
    return std::any_of(region_.dataRanges.begin(),
                       region_.dataRanges.end(),
                       [&](const AddrRange &r) { return r.contains(a); });
}

bool
Cfg::isDelaySlot(Addr a) const
{
    return inRegion(a) && delaySlot_[indexOf(a)];
}

const sim::DecodedInst &
Cfg::inst(Addr a) const
{
    if (!inRegion(a))
        UEXC_PANIC("address 0x%08x outside analyzed region", a);
    return insts_[indexOf(a)];
}

int
Cfg::blockIndexAt(Addr a) const
{
    if (!inRegion(a))
        return -1;
    return blockIndex_[indexOf(a)];
}

std::vector<Addr>
Cfg::nextExecuted(Addr a) const
{
    if (!reached(a))
        return {};
    if (isDelaySlot(a) && a >= region_.begin + 4) {
        Addr branch = a - 4;
        std::vector<Addr> out;
        for (Addr t : controlSuccessors(inst(branch), branch)) {
            if (reached(t))
                out.push_back(t);
        }
        return out;
    }
    Addr next = a + 4;
    if (reached(next))
        return {next};
    return {};
}

} // namespace uexc::analysis
