#include "analysis/wcet.h"

#include <algorithm>
#include <deque>

namespace uexc::analysis {

namespace {

using sim::DecodedInst;
using sim::Op;

/** Worst-case cycles of one retired instruction: every control
 *  transfer taken, every store stalled, every access a miss when the
 *  cache model is on. */
Cycles
worstInstCycles(const DecodedInst &inst, const WcetConfig &config)
{
    const sim::CostModel &cost = config.cost;
    Cycles c = cost.baseCost + sim::opExecuteExtraCycles(inst.op, cost) +
               sim::opMemoryExtraCycles(inst.op, cost) +
               sim::opTakenControlExtraCycles(inst.op, cost);
    if (inst.isStore() && cost.writeBufferStall)
        c += cost.writeBufferStall;
    if (config.cachesEnabled) {
        c += cost.icacheMissPenalty;
        if (inst.isMemory())
            c += cost.dcacheMissPenalty;
    }
    return c;
}

/** The control-transfer instruction a block ends with, or nullptr. */
const DecodedInst *
blockBranch(const Cfg &cfg, const BasicBlock &b, Addr *branch_pc)
{
    // A block ending in a control transfer always includes its delay
    // slot, so the branch word is the second-to-last instruction.
    if (b.numInsts() >= 2 && cfg.inst(b.end - 8).isControl()) {
        *branch_pc = b.end - 8;
        return &cfg.inst(b.end - 8);
    }
    return nullptr;
}

/** Natural-loop body of back edge @p u -> @p v: v plus everything
 *  that reaches u without passing through v (conservatively over all
 *  predecessor edges; an overapproximate body only inflates the
 *  bound). */
std::vector<unsigned>
loopBody(const std::vector<std::vector<unsigned>> &preds, unsigned u,
         unsigned v)
{
    std::vector<bool> in(preds.size(), false);
    in[v] = true;
    std::deque<unsigned> work;
    if (!in[u]) {
        in[u] = true;
        work.push_back(u);
    }
    while (!work.empty()) {
        unsigned b = work.front();
        work.pop_front();
        for (unsigned p : preds[b]) {
            if (!in[p]) {
                in[p] = true;
                work.push_back(p);
            }
        }
    }
    std::vector<unsigned> body;
    for (unsigned i = 0; i < in.size(); i++)
        if (in[i])
            body.push_back(i);
    return body;
}

/** The abstract register file on exit from block @p bi. */
RegState
blockOutState(const Vsa &vsa, unsigned bi)
{
    const BasicBlock &b = vsa.cfg().blocks()[bi];
    RegState state = vsa.blockInState(bi);
    for (Addr a = b.begin; a < b.end; a += 4)
        vsa.step(a, vsa.cfg().inst(a), state);
    return state;
}

/**
 * Infer the iteration count of the back edge @p u -> @p v: the
 * closing branch must be `bne reg, zero, head` or `bgtz reg, head`,
 * the body must decrement reg by a constant exactly once, and reg's
 * loop-entry value must be a positive VSA constant.
 */
LoopBound
inferLoop(const Vsa &vsa, const std::vector<std::vector<unsigned>> &preds,
          unsigned u, unsigned v,
          const std::vector<unsigned> &body)
{
    const Cfg &cfg = vsa.cfg();
    const std::vector<BasicBlock> &blocks = cfg.blocks();
    LoopBound loop;
    loop.head = blocks[v].begin;

    Addr branch_pc = 0;
    const DecodedInst *br = blockBranch(cfg, blocks[u], &branch_pc);
    if (!br)
        return loop;
    loop.backEdge = branch_pc;
    bool exit_on_zero = br->op == Op::Bne && br->rt == 0;
    bool exit_on_nonpos = br->op == Op::Bgtz;
    if ((!exit_on_zero && !exit_on_nonpos) || br->rs == 0)
        return loop;
    if (branch_pc + 4 + (br->simm << 2) != blocks[v].begin)
        return loop;
    unsigned reg = br->rs;

    // Exactly one write to the counter inside the loop, and it must
    // be a constant decrement.
    Word dec = 0;
    unsigned writes = 0;
    for (unsigned bi : body) {
        for (Addr a = blocks[bi].begin; a < blocks[bi].end; a += 4) {
            const DecodedInst &inst = cfg.inst(a);
            if (!(sim::regWriteSet(inst) & (Word{1} << reg)))
                continue;
            writes++;
            if (inst.op == Op::Addiu && inst.rt == reg &&
                inst.rs == reg && SWord(inst.simm) < 0)
                dec = Word(0) - inst.simm;
            else
                return loop;
        }
    }
    if (writes != 1 || dec == 0)
        return loop;

    // Counter value on loop entry: join over the non-loop
    // predecessors of the head.
    ValueSet init = ValueSet::bottom();
    for (unsigned p : preds[v]) {
        if (std::find(body.begin(), body.end(), p) != body.end())
            continue;
        init = join(init, blockOutState(vsa, p)[reg]);
    }
    if (!init.isConst())
        return loop;
    Word c = init.constValue();
    if (c == 0 || SWord(c) < 0)
        return loop;
    if (exit_on_zero && c % dec != 0)
        return loop; // decrement skips zero: the counter wraps
    loop.bounded = true;
    loop.iterations = std::uint32_t((c + dec - 1) / dec);
    return loop;
}

} // namespace

WcetResult
computeWcet(const Vsa &vsa, const WcetConfig &config)
{
    const Cfg &cfg = vsa.cfg();
    const std::vector<BasicBlock> &blocks = cfg.blocks();
    const unsigned n = unsigned(blocks.size());
    WcetResult result;
    if (n == 0) {
        result.bounded = true;
        return result;
    }

    std::vector<std::vector<unsigned>> preds(n);
    for (unsigned i = 0; i < n; i++)
        for (unsigned s : blocks[i].succs)
            preds[s].push_back(i);

    // Iterative DFS from every block (the CFG only materializes
    // reachable blocks); edges closing onto the DFS stack are back
    // edges, and removing them leaves a DAG.
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(n, White);
    std::vector<std::pair<unsigned, unsigned>> backEdges;
    for (unsigned root = 0; root < n; root++) {
        if (color[root] != White)
            continue;
        std::vector<std::pair<unsigned, unsigned>> stack{{root, 0}};
        color[root] = Grey;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < blocks[b].succs.size()) {
                unsigned s = blocks[b].succs[next++];
                if (color[s] == White) {
                    color[s] = Grey;
                    stack.push_back({s, 0});
                } else if (color[s] == Grey) {
                    backEdges.push_back({b, s});
                }
            } else {
                color[b] = Black;
                stack.pop_back();
            }
        }
    }

    // Per-block worst-case costs, then fold loops inner-first so a
    // nested loop's charge multiplies into its enclosing body.
    std::vector<Cycles> cycles(n, 0);
    std::vector<InstCount> insts(n, 0);
    for (unsigned i = 0; i < n; i++) {
        for (Addr a = blocks[i].begin; a < blocks[i].end; a += 4)
            cycles[i] += worstInstCycles(cfg.inst(a), config);
        insts[i] = blocks[i].numInsts();
    }

    struct LoopInfo
    {
        LoopBound bound;
        std::vector<unsigned> body;
        unsigned head = 0;
    };
    std::vector<LoopInfo> loops;
    bool all_bounded = true;
    for (auto [u, v] : backEdges) {
        LoopInfo li;
        li.body = loopBody(preds, u, v);
        li.bound = inferLoop(vsa, preds, u, v, li.body);
        li.head = v;
        all_bounded &= li.bound.bounded;
        loops.push_back(std::move(li));
    }
    std::sort(loops.begin(), loops.end(),
              [](const LoopInfo &a, const LoopInfo &b) {
                  return a.body.size() < b.body.size();
              });
    for (LoopInfo &li : loops)
        result.loops.push_back(li.bound);
    if (!all_bounded)
        return result;

    for (const LoopInfo &li : loops) {
        Cycles body_cycles = 0;
        InstCount body_insts = 0;
        for (unsigned b : li.body) {
            body_cycles += cycles[b];
            body_insts += insts[b];
        }
        cycles[li.head] += (li.bound.iterations - 1) * body_cycles;
        insts[li.head] += (li.bound.iterations - 1) * body_insts;
    }

    // Longest path over the DAG in topological order.
    std::vector<unsigned> indeg(n, 0);
    auto isBack = [&](unsigned a, unsigned b) {
        return std::find(backEdges.begin(), backEdges.end(),
                         std::make_pair(a, b)) != backEdges.end();
    };
    for (unsigned i = 0; i < n; i++)
        for (unsigned s : blocks[i].succs)
            if (!isBack(i, s))
                indeg[s]++;
    std::deque<unsigned> topo;
    for (unsigned i = 0; i < n; i++)
        if (indeg[i] == 0)
            topo.push_back(i);
    std::vector<Cycles> longest(n, 0);
    std::vector<InstCount> longestI(n, 0);
    while (!topo.empty()) {
        unsigned b = topo.front();
        topo.pop_front();
        Cycles total = longest[b] + cycles[b];
        InstCount totalI = longestI[b] + insts[b];
        result.worstCycles = std::max(result.worstCycles, total);
        result.worstInsts = std::max(result.worstInsts, totalI);
        for (unsigned s : blocks[b].succs) {
            if (isBack(b, s))
                continue;
            longest[s] = std::max(longest[s], total);
            longestI[s] = std::max(longestI[s], totalI);
            if (--indeg[s] == 0)
                topo.push_back(s);
        }
    }
    result.bounded = true;
    return result;
}

} // namespace uexc::analysis
