/**
 * @file
 * The guest-code static analyzer (`uexc-lint`): a check engine over
 * the CFG (analysis/cfg.h) and register dataflow (analysis/dataflow.h)
 * of assembled guest programs.
 *
 * Checks (see DESIGN.md for the catalog rationale):
 *
 *  - LoadDelayHazard: a load's target register is consumed by the
 *    dynamically next instruction. The simulated CPU completes loads
 *    immediately (MIPS-II semantics), so this is a Warning — an
 *    R3000-portability hazard, not a simulator-correctness bug.
 *  - ControlInDelaySlot: branch/jump in a delay slot (architecturally
 *    undefined).
 *  - PrivilegedInUserCode: a privileged instruction (CP0/TLB ops,
 *    rfe) is reachable in a user-mode region; it would raise CpU.
 *  - ClobberedRegister: a user exception handler writes a register
 *    that is neither in its scratch set nor saved on every path first
 *    (the paper's handler register discipline, sections 2.1/3.2).
 *  - UnreachableCode: non-nop words no entry point reaches.
 *  - FallOffEnd: reachable code flows sequentially past the region
 *    end or into embedded data (e.g. a truncated handler).
 *  - InvalidOpcode: a reachable word does not decode.
 *  - FastPathStructure: the kernel fast path's shape deviates from
 *    the paper's Table 3 — phase word counts (6/11/31/6/8/3 = 65),
 *    memory ops through unexpected base registers (everything must go
 *    through the pinned frame or the proc structure), or a vector
 *    phase that does not end in jr/rfe.
 *  - SharedPageConflict (multihart analysis): a page one hart's
 *    may-write set shares with another hart's may-read/may-fetch set
 *    (or the hart's own fetch set). The barrier scheduler aborts and
 *    serializes rounds touching such pages, so this is a Note — a
 *    static scalability explanation, not an error.
 *  - UnsyncSharedWrite (multihart analysis): a reachable store whose
 *    effective-address set is unbounded — the analysis cannot bound
 *    which shared pages it may hit, so no conflict prediction covers
 *    it.
 *  - HandlerWcetExceedsBudget: a handler region's static worst-case
 *    cycle bound (analysis/wcet.h) exceeds its declared budget.
 *  - UnboundedHandlerLoop: a handler region contains a loop whose
 *    iteration count the bounded-loop inference cannot establish, so
 *    no worst-case latency bound exists.
 */

#ifndef UEXC_ANALYSIS_LINT_H
#define UEXC_ANALYSIS_LINT_H

#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/conflict.h"

namespace uexc::analysis {

enum class Severity
{
    Note,
    Warning,
    Error,
};

enum class Check
{
    LoadDelayHazard,
    ControlInDelaySlot,
    PrivilegedInUserCode,
    ClobberedRegister,
    UnreachableCode,
    FallOffEnd,
    InvalidOpcode,
    FastPathStructure,
    SharedPageConflict,
    UnsyncSharedWrite,
    HandlerWcetExceedsBudget,
    UnboundedHandlerLoop,
};

const char *severityName(Severity s);
const char *checkName(Check c);

/** One diagnostic, anchored to a program address. */
struct Finding
{
    Check check = Check::LoadDelayHazard;
    Severity severity = Severity::Warning;
    Addr addr = 0;           ///< program address the finding is about
    std::string region;      ///< region name from the RegionSpec
    std::string disasm;      ///< disassembly of the offending word
    std::string message;     ///< human-readable explanation
    /** Machine-readable key/value attachments (page numbers, cycle
     *  bounds, hart ids) — carried verbatim into the JSON output. */
    std::vector<std::pair<std::string, std::uint64_t>> payload;
};

/** One named code region to analyze, plus which checks apply. */
struct RegionSpec
{
    std::string name;
    Addr begin = 0;
    Addr end = 0;
    /** Privileged instructions are diagnosed when true. */
    bool userMode = false;
    /**
     * The region is a user exception handler: run the register
     * discipline check against scratchMask, and treat falling off the
     * end as truncation. Handler regions skip the whole-program
     * checks (their enclosing region already runs them).
     */
    bool handler = false;
    /** Registers a handler may clobber without saving (bit n = GPR n). */
    Word scratchMask = 0;
    /** Worst-case cycle budget for a handler region (0 = no budget);
     *  checked only when LintConfig::analyzeWcet is set. */
    Cycles wcetBudget = 0;
    std::vector<Addr> entries;
    std::vector<AddrRange> dataRanges;
};

struct LintConfig
{
    std::vector<RegionSpec> regions;

    /** Run the WCET analyzer over every handler region, using the
     *  declarative cost table below. */
    bool analyzeWcet = false;
    sim::CostModel cost;
    /** Charge worst-case miss penalties in the WCET bound. */
    bool cachesEnabled = false;

    /** >0: run the shared-page conflict analysis over every
     *  non-handler region, modeling this many harts. */
    unsigned multihart = 0;
    /** Per-hart entry points (outer index = hart id). When empty each
     *  hart is analyzed from the region's own entry set. */
    std::vector<std::vector<Addr>> perHartEntries;
    /** VA-to-page mapping for the conflict analysis (see conflict.h). */
    PageMapper pageOf;
};

/** The paper's Table 3 shape, for the structural fast-path check. */
struct FastPathSpec
{
    struct Phase
    {
        std::string name;
        Addr begin = 0;
        Addr end = 0;
        unsigned expectedWords = 0;
    };
    std::vector<Phase> phases;
    Word storeBaseMask = 0; ///< allowed base regs for sw in the path
    Word loadBaseMask = 0;  ///< allowed base regs for lw in the path
};

/** Run every applicable check over every region of @p config. */
std::vector<Finding> lint(const sim::Program &prog,
                          const LintConfig &config);

/** Run the structural fast-path verifier. */
std::vector<Finding> verifyFastPath(const sim::Program &prog,
                                    const FastPathSpec &spec);

/** Whether findings gate a build: any Error (or, in strict mode, any
 *  Warning) fails. */
bool hasErrors(const std::vector<Finding> &findings,
               bool strict = false);

std::string formatFinding(const Finding &f);
std::string formatFindings(const std::vector<Finding> &findings);

/** The findings as a JSON array (one object per finding: check,
 *  severity, pc, region, disasm, message, plus the payload keys). */
std::string formatFindingsJson(const std::vector<Finding> &findings);

} // namespace uexc::analysis

#endif // UEXC_ANALYSIS_LINT_H
