#include "analysis/vsa.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "sim/cp0.h"

namespace uexc::analysis {

namespace {

using sim::DecodedInst;
using sim::Op;

/** Blocks whose in-state is joined more often than this have the
 *  changed registers widened straight to Top (loop counters etc.),
 *  which bounds the fixpoint. */
constexpr unsigned kWidenVisits = 12;

/** A computed jump with more candidate targets than this stays
 *  unresolved (a real jump table is a handful of entries). */
constexpr std::uint32_t kMaxJumpTargets = 64;

std::uint64_t
absDiff(Word a, Word b)
{
    return a > b ? std::uint64_t(a) - b : std::uint64_t(b) - a;
}

RegState
allTop()
{
    RegState s;
    s.fill(ValueSet::top());
    s[0] = ValueSet::constant(0);
    return s;
}

} // namespace

ValueSet
ValueSet::strided(Word base, Word stride, std::uint32_t count)
{
    if (count == 0)
        return bottom();
    if (count == 1 || stride == 0)
        return constant(base);
    if (count > kMaxCount)
        return top();
    // Reject sets that wrap past 2^32 so last() stays meaningful.
    std::uint64_t last =
        std::uint64_t(base) + std::uint64_t(stride) * (count - 1);
    if (last > 0xffffffffull)
        return top();
    ValueSet v;
    v.kind = Kind::Strided;
    v.base = base;
    v.stride = stride;
    v.count = count;
    return v;
}

ValueSet
join(const ValueSet &a, const ValueSet &b)
{
    if (a.isBottom())
        return b;
    if (b.isBottom())
        return a;
    if (a.isTop() || b.isTop())
        return ValueSet::top();
    if (a == b)
        return a;
    Word lo = std::min(a.base, b.base);
    Word hi = std::max(a.last(), b.last());
    std::uint64_t g = std::gcd(std::uint64_t(a.stride),
                               std::uint64_t(b.stride));
    g = std::gcd(g, absDiff(a.base, b.base));
    if (g == 0 || g > 0xffffffffull)
        return ValueSet::top();
    std::uint64_t count = (std::uint64_t(hi) - lo) / g + 1;
    if (count > ValueSet::kMaxCount)
        return ValueSet::top();
    return ValueSet::strided(lo, Word(g), std::uint32_t(count));
}

ValueSet
addConst(const ValueSet &a, Word k)
{
    if (a.kind != ValueSet::Kind::Strided)
        return a;
    Word nb = a.base + k; // mod 2^32: negative offsets are common
    return ValueSet::strided(nb, a.stride, a.count);
}

void
Vsa::step(Addr pc, const DecodedInst &inst, RegState &state) const
{
    const ValueSet &rs = state[inst.rs];
    const ValueSet &rt = state[inst.rt];
    auto set = [&state](unsigned reg, const ValueSet &v) {
        if (reg != 0)
            state[reg] = v;
    };
    auto binConst = [&](unsigned dst, const ValueSet &x,
                        const ValueSet &y, auto fn) {
        if (x.isConst() && y.isConst())
            set(dst, ValueSet::constant(fn(x.constValue(),
                                           y.constValue())));
        else
            set(dst, ValueSet::top());
    };

    switch (inst.op) {
      case Op::Sll:
        if (rt.kind == ValueSet::Kind::Strided) {
            std::uint64_t nb = std::uint64_t(rt.base) << inst.shamt;
            std::uint64_t ns = std::uint64_t(rt.stride) << inst.shamt;
            if (nb <= 0xffffffffull && ns <= 0xffffffffull)
                set(inst.rd, ValueSet::strided(Word(nb), Word(ns),
                                               rt.count));
            else
                set(inst.rd, ValueSet::top());
        } else {
            set(inst.rd, rt);
        }
        break;
      case Op::Srl:
        if (rt.isConst())
            set(inst.rd,
                ValueSet::constant(rt.constValue() >> inst.shamt));
        else
            set(inst.rd, ValueSet::top());
        break;
      case Op::Sra:
        if (rt.isConst())
            set(inst.rd, ValueSet::constant(Word(
                             SWord(rt.constValue()) >> inst.shamt)));
        else
            set(inst.rd, ValueSet::top());
        break;
      case Op::Sllv:
        binConst(inst.rd, rt, rs,
                 [](Word a, Word b) { return a << (b & 31); });
        break;
      case Op::Srlv:
        binConst(inst.rd, rt, rs,
                 [](Word a, Word b) { return a >> (b & 31); });
        break;
      case Op::Srav:
        binConst(inst.rd, rt, rs, [](Word a, Word b) {
            return Word(SWord(a) >> (b & 31));
        });
        break;
      case Op::Add:
      case Op::Addu:
        if (rt.isConst())
            set(inst.rd, addConst(rs, rt.constValue()));
        else if (rs.isConst())
            set(inst.rd, addConst(rt, rs.constValue()));
        else
            set(inst.rd, ValueSet::top());
        break;
      case Op::Sub:
      case Op::Subu:
        if (rt.isConst())
            set(inst.rd, addConst(rs, Word(0) - rt.constValue()));
        else
            set(inst.rd, ValueSet::top());
        break;
      case Op::And:
        binConst(inst.rd, rs, rt, [](Word a, Word b) { return a & b; });
        break;
      case Op::Or:
        binConst(inst.rd, rs, rt, [](Word a, Word b) { return a | b; });
        break;
      case Op::Xor:
        binConst(inst.rd, rs, rt, [](Word a, Word b) { return a ^ b; });
        break;
      case Op::Nor:
        binConst(inst.rd, rs, rt,
                 [](Word a, Word b) { return ~(a | b); });
        break;
      case Op::Slt:
        binConst(inst.rd, rs, rt, [](Word a, Word b) {
            return Word(SWord(a) < SWord(b));
        });
        break;
      case Op::Sltu:
        binConst(inst.rd, rs, rt,
                 [](Word a, Word b) { return Word(a < b); });
        break;
      case Op::Mfhi:
      case Op::Mflo:
        set(inst.rd, ValueSet::top());
        break;
      case Op::Mthi:
      case Op::Mtlo:
      case Op::Mult:
      case Op::Multu:
      case Op::Div:
      case Op::Divu:
        break; // hi/lo only; not tracked
      case Op::Addi:
      case Op::Addiu:
        set(inst.rt, addConst(rs, inst.simm));
        break;
      case Op::Slti:
        if (rs.isConst())
            set(inst.rt, ValueSet::constant(Word(
                             SWord(rs.constValue()) < SWord(inst.simm))));
        else
            set(inst.rt, ValueSet::top());
        break;
      case Op::Sltiu:
        if (rs.isConst())
            set(inst.rt,
                ValueSet::constant(Word(rs.constValue() < inst.simm)));
        else
            set(inst.rt, ValueSet::top());
        break;
      case Op::Andi:
        if (rs.isConst())
            set(inst.rt,
                ValueSet::constant(rs.constValue() & inst.imm));
        else
            set(inst.rt, ValueSet::top());
        break;
      case Op::Ori:
        if (rs.isConst())
            set(inst.rt,
                ValueSet::constant(rs.constValue() | inst.imm));
        else if (inst.imm == 0)
            set(inst.rt, rs); // move
        else
            set(inst.rt, ValueSet::top());
        break;
      case Op::Xori:
        if (rs.isConst())
            set(inst.rt,
                ValueSet::constant(rs.constValue() ^ inst.imm));
        else
            set(inst.rt, ValueSet::top());
        break;
      case Op::Lui:
        // Together with the Ori/Addiu/load-store cases above this
        // tracks the lui+ori (li32/la) and carry-adjusted %hi/%lo
        // materialization idioms; all guest producers emit them
        // through sim/pseudo.h, so this matcher has one producer to
        // stay in sync with.
        set(inst.rt, ValueSet::constant(inst.imm << 16));
        break;
      case Op::Jal:
      case Op::Bltzal:
      case Op::Bgezal:
        set(sim::RA, ValueSet::constant(pc + 8));
        break;
      case Op::Jalr:
        set(inst.rd, ValueSet::constant(pc + 8));
        break;
      case Op::J:
      case Op::Jr:
      case Op::Beq:
      case Op::Bne:
      case Op::Blez:
      case Op::Bgtz:
      case Op::Bltz:
      case Op::Bgez:
        break;
      case Op::Lw:
        set(inst.rt, mineWordLoad(addConst(rs, inst.simm)));
        break;
      case Op::Lb:
      case Op::Lbu:
      case Op::Lh:
      case Op::Lhu:
        set(inst.rt, ValueSet::top());
        break;
      case Op::Sb:
      case Op::Sh:
      case Op::Sw:
        break;
      case Op::Mfc0:
        // Per-hart analysis models the PrId read as the concrete hart
        // id; every other CP0 read is unknown.
        if (opts_.modelPrId && inst.rd == sim::cp0reg::PrId)
            set(inst.rt, ValueSet::constant(opts_.prIdValue));
        else
            set(inst.rt, ValueSet::top());
        break;
      case Op::Mfux:
        set(inst.rt, ValueSet::top());
        break;
      case Op::Mtc0:
      case Op::Mtux:
      case Op::Tlbr:
      case Op::Tlbwi:
      case Op::Tlbwr:
      case Op::Tlbp:
      case Op::Tlbmp:
      case Op::Rfe:
      case Op::Xret:
      case Op::Invalid:
        break;
      case Op::Syscall:
      case Op::Break:
      case Op::Hcall:
        // A trap to the kernel or a host service call may rewrite any
        // register before execution resumes here: havoc everything.
        for (unsigned r = 1; r < sim::NumRegs; r++)
            state[r] = ValueSet::top();
        break;
    }
}

ValueSet
Vsa::mineWordLoad(const ValueSet &addrs) const
{
    // A word load whose address set is bounded and entirely inside a
    // declared data range reads program constants: fold them. This is
    // what resolves `lw rd, table(index)` jump tables.
    if (addrs.kind != ValueSet::Kind::Strided || addrs.count > 256)
        return ValueSet::top();
    ValueSet value = ValueSet::bottom();
    for (std::uint32_t k = 0; k < addrs.count; k++) {
        Addr a = addrs.base + k * addrs.stride;
        if ((a & 3) != 0 || a < cfg_.begin() || a >= cfg_.end() ||
            !cfg_.isData(a))
            return ValueSet::top();
        value = join(value, ValueSet::constant(cfg_.word(a)));
        if (value.isTop())
            return value;
    }
    return value;
}

void
Vsa::fixpoint()
{
    const std::vector<BasicBlock> &blocks = cfg_.blocks();
    inStates_.assign(blocks.size(), RegState{});
    std::vector<unsigned> visits(blocks.size(), 0);
    std::deque<unsigned> work;
    std::vector<bool> queued(blocks.size(), false);

    // Entry blocks (declared entries + mined jump-table targets) start
    // with every register unknown.
    auto seed = [&](Addr a) {
        int bi = cfg_.blockIndexAt(a);
        if (bi >= 0 && blocks[bi].begin == a) {
            inStates_[bi] = allTop();
            if (!queued[bi]) {
                queued[bi] = true;
                work.push_back(unsigned(bi));
            }
        }
    };
    for (Addr a : cfg_.region().entries)
        seed(a);
    for (Addr a : cfg_.minedEntries())
        seed(a);

    while (!work.empty()) {
        unsigned bi = work.front();
        work.pop_front();
        queued[bi] = false;
        visits[bi]++;

        RegState state = inStates_[bi];
        for (Addr a = blocks[bi].begin; a < blocks[bi].end; a += 4)
            step(a, cfg_.inst(a), state);

        for (unsigned si : blocks[bi].succs) {
            RegState merged;
            bool changed = false;
            for (unsigned r = 0; r < sim::NumRegs; r++) {
                merged[r] = join(inStates_[si][r], state[r]);
                // Widen still-changing registers (loop counters) once
                // the block has been revisited enough.
                if (merged[r] != inStates_[si][r] &&
                    visits[si] > kWidenVisits)
                    merged[r] = ValueSet::top();
                changed |= merged[r] != inStates_[si][r];
            }
            if (changed) {
                inStates_[si] = merged;
                if (!queued[si]) {
                    queued[si] = true;
                    work.push_back(si);
                }
            }
        }
    }
}

Vsa
Vsa::run(const sim::Program &prog, const CodeRegion &region,
         const VsaOptions &opts)
{
    Vsa vsa;
    vsa.opts_ = opts;
    CodeRegion r = region;

    for (unsigned iter = 0;; iter++) {
        vsa.cfg_ = Cfg::build(prog, r);
        vsa.fixpoint();
        if (iter >= opts.maxJrIterations)
            break;

        // Resolve bounded computed jumps: every candidate target that
        // is code in the region becomes a CFG entry, then re-analyze.
        vsa.resolvedJumps_.clear();
        bool grew = false;
        for (const BasicBlock &b : vsa.cfg_.blocks()) {
            for (Addr a = b.begin; a < b.end; a += 4) {
                const DecodedInst &inst = vsa.cfg_.inst(a);
                if (inst.op != Op::Jr)
                    continue;
                ValueSet targets = vsa.regIn(a, inst.rs);
                if (targets.kind != ValueSet::Kind::Strided ||
                    targets.count > kMaxJumpTargets)
                    continue;
                std::vector<Addr> resolved;
                for (std::uint32_t k = 0; k < targets.count; k++) {
                    Addr t = targets.base + k * targets.stride;
                    if ((t & 3) != 0 || t < r.begin || t >= r.end ||
                        vsa.cfg_.isData(t))
                        continue;
                    resolved.push_back(t);
                    if (std::find(r.entries.begin(), r.entries.end(),
                                  t) == r.entries.end()) {
                        r.entries.push_back(t);
                        grew = true;
                    }
                }
                if (!resolved.empty())
                    vsa.resolvedJumps_[a] = std::move(resolved);
            }
        }
        if (!grew)
            break;
    }
    return vsa;
}

ValueSet
Vsa::regIn(Addr a, unsigned reg) const
{
    int bi = cfg_.blockIndexAt(a);
    if (bi < 0)
        return ValueSet::top();
    RegState state = inStates_[bi];
    for (Addr p = cfg_.blocks()[bi].begin; p < a; p += 4)
        step(p, cfg_.inst(p), state);
    return state[reg];
}

ValueSet
Vsa::effectiveAddress(Addr a) const
{
    const DecodedInst &inst = cfg_.inst(a);
    return addConst(regIn(a, inst.rs), inst.simm);
}

} // namespace uexc::analysis
