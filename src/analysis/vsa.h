/**
 * @file
 * Value-set analysis (VSA) over assembled guest code.
 *
 * A whole-program abstract interpreter on the delay-slot-aware CFG
 * (analysis/cfg.h): every general-purpose register is tracked as a
 * strided-interval value set {base + k*stride | 0 <= k < count}, the
 * classic abstraction for address arithmetic (Balakrishnan & Reps).
 * Constants, lui/ori address materialization, constant shifts and
 * adds, and word loads from declared data ranges (jump tables) stay
 * precise; everything else widens to Top.
 *
 * Two clients sit on top:
 *
 *  - the shared-page conflict analyzer (analysis/conflict.h) reads
 *    effective-address sets of every reachable memory instruction to
 *    form per-hart may-read/may-write/may-fetch page sets;
 *  - the WCET analyzer (analysis/wcet.h) and the CFG itself benefit
 *    from computed-jump resolution: a `jr` whose target set is bounded
 *    (a mined jump table) has its targets promoted to CFG entry
 *    points, closing the indirect-jump reachability gap.
 *
 * Per-hart analysis can model `mfc0 rt, PrId` as the concrete hart id
 * (VsaOptions::modelPrId), which is what lets the multihart kernel's
 * PrId-indexed save slots resolve to per-hart constant addresses.
 */

#ifndef UEXC_ANALYSIS_VSA_H
#define UEXC_ANALYSIS_VSA_H

#include <array>
#include <map>
#include <vector>

#include "analysis/cfg.h"

namespace uexc::analysis {

/**
 * A strided-interval value set: {base + k*stride | 0 <= k < count},
 * with Bottom (no value yet) and Top (any value) bounds. Sets never
 * wrap past 2^32: constructors widen to Top instead, so last() is
 * always representable.
 */
struct ValueSet
{
    enum class Kind : std::uint8_t
    {
        Bottom,
        Strided,
        Top,
    };

    Kind kind = Kind::Bottom;
    Word base = 0;
    Word stride = 0;
    std::uint32_t count = 1;

    /** Sets wider than this widen to Top at construction. */
    static constexpr std::uint32_t kMaxCount = 4096;

    static ValueSet bottom() { return {}; }
    static ValueSet top()
    {
        ValueSet v;
        v.kind = Kind::Top;
        return v;
    }
    static ValueSet constant(Word value)
    {
        ValueSet v;
        v.kind = Kind::Strided;
        v.base = value;
        return v;
    }
    /** {base + k*stride}; Top if it wraps 2^32 or exceeds kMaxCount. */
    static ValueSet strided(Word base, Word stride, std::uint32_t count);

    bool isBottom() const { return kind == Kind::Bottom; }
    bool isTop() const { return kind == Kind::Top; }
    bool isConst() const { return kind == Kind::Strided && count == 1; }
    Word constValue() const { return base; }
    /** Largest element (Strided only). */
    Word last() const { return base + stride * (count - 1); }

    bool operator==(const ValueSet &o) const
    {
        if (kind != o.kind)
            return false;
        if (kind != Kind::Strided)
            return true;
        return base == o.base && stride == o.stride && count == o.count;
    }
    bool operator!=(const ValueSet &o) const { return !(*this == o); }
};

/** Least upper bound of two value sets (Top on blowup). */
ValueSet join(const ValueSet &a, const ValueSet &b);

/** a + k (mod 2^32 on the base; Top if the set would wrap). */
ValueSet addConst(const ValueSet &a, Word k);

/** Abstract register file: one value set per GPR ($zero pinned to 0). */
using RegState = std::array<ValueSet, sim::NumRegs>;

struct VsaOptions
{
    /** Model `mfc0 rt, PrId` as the constant prIdValue (per-hart
     *  analysis: pass hartId << 24). Otherwise PrId reads are Top. */
    bool modelPrId = false;
    Word prIdValue = 0;
    /** Rounds of jr-target resolution + CFG rebuild. */
    unsigned maxJrIterations = 8;
};

/**
 * The analysis result: a fixpoint over the region's CFG, rebuilt
 * until computed-jump resolution converges.
 */
class Vsa
{
  public:
    /** Run the analysis over @p region of @p prog. */
    static Vsa run(const sim::Program &prog, const CodeRegion &region,
                   const VsaOptions &opts = {});

    /** The final CFG (entries extended with resolved jr targets). */
    const Cfg &cfg() const { return cfg_; }

    /** Abstract register file on entry to block @p block. */
    const RegState &blockInState(unsigned block) const
    {
        return inStates_[block];
    }

    /** Abstract value of @p reg just before the instruction at @p a
     *  executes (Top for unreachable addresses). */
    ValueSet regIn(Addr a, unsigned reg) const;

    /** May-set of effective addresses of the memory instruction at
     *  @p a (Top if the base register is unknown). */
    ValueSet effectiveAddress(Addr a) const;

    /** Apply the abstract transfer of one instruction to @p state. */
    void step(Addr pc, const sim::DecodedInst &inst,
              RegState &state) const;

    /** Resolved targets of bounded computed jumps, keyed by the jr
     *  address. Unresolvable (Top) jumps are absent. */
    const std::map<Addr, std::vector<Addr>> &resolvedJumps() const
    {
        return resolvedJumps_;
    }

  private:
    Vsa() = default;

    void fixpoint();
    ValueSet mineWordLoad(const ValueSet &addrs) const;

    Cfg cfg_;
    VsaOptions opts_;
    std::vector<RegState> inStates_; ///< one per CFG block
    std::map<Addr, std::vector<Addr>> resolvedJumps_;
};

} // namespace uexc::analysis

#endif // UEXC_ANALYSIS_VSA_H
