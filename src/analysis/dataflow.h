/**
 * @file
 * Bit-vector register dataflow over the guest-code CFG.
 *
 * Both analyses use 32-bit masks (bit n = GPR n) as the lattice
 * elements, with transfer functions derived from the declarative
 * read/write sets in sim/isa (regReadSet / regWriteSet):
 *
 *  - liveInMasks: backward may-analysis (union meet). A register is
 *    live-in to a block if some path from the block entry reads it
 *    before writing it. This is classic liveness over the delay-slot
 *    aware CFG.
 *
 *  - savedInMasks: forward must-analysis (intersection meet) used by
 *    the handler register-discipline check. A register counts as
 *    "saved" once the handler stores it (sw/sh/sb) or stashes it in a
 *    user-exception scratch register (mtux); savedIn is the set of
 *    registers saved on EVERY path from the region entries. A handler
 *    may freely clobber its scratch set plus whatever is saved; any
 *    other write destroys interrupted-context state.
 */

#ifndef UEXC_ANALYSIS_DATAFLOW_H
#define UEXC_ANALYSIS_DATAFLOW_H

#include <vector>

#include "analysis/cfg.h"

namespace uexc::analysis {

/** Live-in register mask per basic block (parallel to cfg.blocks()). */
std::vector<Word> liveInMasks(const Cfg &cfg);

/** Must-be-saved register mask at entry of each basic block. */
std::vector<Word> savedInMasks(const Cfg &cfg);

/**
 * One instruction's effect on the saved-register set: stores and mtux
 * add their source register. Walk a block from its savedInMasks value
 * with this to know the saved set at each instruction.
 */
Word savedTransfer(const sim::DecodedInst &inst, Word saved);

} // namespace uexc::analysis

#endif // UEXC_ANALYSIS_DATAFLOW_H
