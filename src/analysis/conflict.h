/**
 * @file
 * Static shared-page conflict analysis for multi-hart guest programs.
 *
 * For each hart, a VSA pass (analysis/vsa.h) over that hart's
 * reachable CFG produces may-read / may-write / may-fetch page sets:
 * every page any execution of the hart can load from, store to, or
 * fetch code from. Pages are computed from effective-address value
 * sets, so the result is sound whenever the value sets are (stores
 * with unbounded address sets are reported separately instead of
 * poisoning every page).
 *
 * Cross-hart intersection of the sets predicts exactly what the
 * barrier scheduler (sim/machine.cc runBarrier) aborts speculative
 * rounds on: hart i's may-write set against hart j's may-read or
 * may-fetch set (i != j), plus a hart's own write/fetch overlap (the
 * StoreBuffer's self-modifying-code abort). A page in the predicted
 * set is not an error — the scheduler replays such rounds serially —
 * but it is the static explanation of why a workload does not scale,
 * and the dynamic soundness oracle in tests/test_parallel.cc holds
 * every observed StoreBuffer page set inside these may-sets.
 */

#ifndef UEXC_ANALYSIS_CONFLICT_H
#define UEXC_ANALYSIS_CONFLICT_H

#include <functional>
#include <set>

#include "analysis/vsa.h"

namespace uexc::analysis {

/** Maps a guest virtual address to a page id. The default is the
 *  identity 4 KiB page number (va >> 12); callers comparing against
 *  physical observations (StoreBuffer page sets) pass their address-
 *  space translation here so the analysis emits physical pages. */
using PageMapper = std::function<Word(Addr)>;

struct PageAccessOptions
{
    VsaOptions vsa;
    PageMapper pageOf; ///< default: va >> 12
};

/** May-sets of one hart's reachable code. */
struct PageAccessSummary
{
    std::set<Word> readPages;
    std::set<Word> writePages;
    std::set<Word> fetchPages;
    /** Loads/stores whose effective-address set is unbounded (Top):
     *  excluded from the page sets, reported as findings instead. */
    std::vector<Addr> unboundedLoads;
    std::vector<Addr> unboundedStores;
};

/** Compute the may-read/may-write/may-fetch page sets of @p region. */
PageAccessSummary analyzePageAccesses(const sim::Program &prog,
                                      const CodeRegion &region,
                                      const PageAccessOptions &opts);

/** Union @p from into @p into (a program made of several analyzed
 *  regions, e.g. user text plus exception handlers). */
void mergeSummaries(PageAccessSummary &into,
                    const PageAccessSummary &from);

/** One predicted barrier-round conflict. */
struct PageConflict
{
    enum class Kind : std::uint8_t
    {
        WriteRead,  ///< writer's store page in other's may-read set
        WriteFetch, ///< writer's store page in other's may-fetch set
    };
    unsigned writer = 0;
    unsigned other = 0; ///< == writer for the self (SMC) case
    Word page = 0;
    Kind kind = Kind::WriteRead;
};

struct ConflictResult
{
    std::vector<PageAccessSummary> harts; ///< one per analyzed hart
    std::vector<PageConflict> conflicts;
    std::set<Word> conflictPages; ///< all pages any conflict names
};

/**
 * Analyze one program under @p numHarts harts. Each hart is analyzed
 * with its own entry set (@p perHartEntries, outer index = hart) over
 * the same region shape, with `mfc0 rt, PrId` modeled as that hart's
 * id (hart << 24), then the summaries are intersected pairwise.
 */
ConflictResult
analyzeSharedPageConflicts(const sim::Program &prog,
                           const CodeRegion &region,
                           const std::vector<std::vector<Addr>> &perHartEntries,
                           const PageAccessOptions &opts = {});

/** Pairwise intersection of precomputed per-hart summaries. */
ConflictResult
intersectSummaries(std::vector<PageAccessSummary> harts);

} // namespace uexc::analysis

#endif // UEXC_ANALYSIS_CONFLICT_H
