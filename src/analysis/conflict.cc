#include "analysis/conflict.h"

#include <utility>

namespace uexc::analysis {

namespace {

using sim::Op;

unsigned
accessSize(Op op)
{
    switch (op) {
      case Op::Lb:
      case Op::Lbu:
      case Op::Sb:
        return 1;
      case Op::Lh:
      case Op::Lhu:
      case Op::Sh:
        return 2;
      default:
        return 4;
    }
}

Word
defaultPageOf(Addr va)
{
    return va >> 12;
}

/** Insert the pages of every address in @p addrs (plus the page the
 *  last byte of each access lands on) into @p pages. */
void
insertPages(std::set<Word> &pages, const ValueSet &addrs, unsigned size,
            const PageMapper &pageOf)
{
    for (std::uint32_t k = 0; k < addrs.count; k++) {
        Addr a = addrs.base + addrs.stride * k;
        pages.insert(pageOf(a));
        pages.insert(pageOf(a + size - 1));
    }
}

void
addConflicts(ConflictResult &result, unsigned writer, unsigned other,
             const std::set<Word> &writes, const std::set<Word> &pages,
             PageConflict::Kind kind)
{
    for (Word page : writes) {
        if (!pages.count(page))
            continue;
        result.conflicts.push_back({writer, other, page, kind});
        result.conflictPages.insert(page);
    }
}

} // namespace

PageAccessSummary
analyzePageAccesses(const sim::Program &prog, const CodeRegion &region,
                    const PageAccessOptions &opts)
{
    const PageMapper pageOf = opts.pageOf ? opts.pageOf : defaultPageOf;
    Vsa vsa = Vsa::run(prog, region, opts.vsa);
    const Cfg &cfg = vsa.cfg();

    PageAccessSummary summary;
    for (const BasicBlock &b : cfg.blocks()) {
        RegState state = vsa.blockInState(unsigned(cfg.blockIndexAt(b.begin)));
        for (Addr a = b.begin; a < b.end; a += 4) {
            const sim::DecodedInst &inst = cfg.inst(a);
            summary.fetchPages.insert(pageOf(a));
            if (inst.isMemory()) {
                ValueSet ea = addConst(state[inst.rs], inst.simm);
                if (ea.kind != ValueSet::Kind::Strided) {
                    // Bottom only occurs in unreachable states; treat
                    // it like Top so the result is trivially sound.
                    if (inst.isStore())
                        summary.unboundedStores.push_back(a);
                    else
                        summary.unboundedLoads.push_back(a);
                } else if (inst.isStore()) {
                    insertPages(summary.writePages, ea,
                                accessSize(inst.op), pageOf);
                } else {
                    insertPages(summary.readPages, ea,
                                accessSize(inst.op), pageOf);
                }
            }
            vsa.step(a, inst, state);
        }
    }
    return summary;
}

void
mergeSummaries(PageAccessSummary &into, const PageAccessSummary &from)
{
    into.readPages.insert(from.readPages.begin(), from.readPages.end());
    into.writePages.insert(from.writePages.begin(), from.writePages.end());
    into.fetchPages.insert(from.fetchPages.begin(), from.fetchPages.end());
    into.unboundedLoads.insert(into.unboundedLoads.end(),
                               from.unboundedLoads.begin(),
                               from.unboundedLoads.end());
    into.unboundedStores.insert(into.unboundedStores.end(),
                                from.unboundedStores.begin(),
                                from.unboundedStores.end());
}

ConflictResult
intersectSummaries(std::vector<PageAccessSummary> harts)
{
    ConflictResult result;
    result.harts = std::move(harts);
    const unsigned n = unsigned(result.harts.size());
    for (unsigned i = 0; i < n; i++) {
        const PageAccessSummary &wi = result.harts[i];
        // The StoreBuffer's own SMC abort: a hart storing to a page it
        // also fetches from aborts its round even with no other hart
        // involved.
        addConflicts(result, i, i, wi.writePages, wi.fetchPages,
                     PageConflict::Kind::WriteFetch);
        for (unsigned j = 0; j < n; j++) {
            if (j == i)
                continue;
            const PageAccessSummary &rj = result.harts[j];
            addConflicts(result, i, j, wi.writePages, rj.readPages,
                         PageConflict::Kind::WriteRead);
            addConflicts(result, i, j, wi.writePages, rj.fetchPages,
                         PageConflict::Kind::WriteFetch);
        }
    }
    return result;
}

ConflictResult
analyzeSharedPageConflicts(const sim::Program &prog, const CodeRegion &region,
                           const std::vector<std::vector<Addr>> &perHartEntries,
                           const PageAccessOptions &opts)
{
    std::vector<PageAccessSummary> harts;
    for (unsigned hart = 0; hart < perHartEntries.size(); hart++) {
        PageAccessOptions hartOpts = opts;
        hartOpts.vsa.modelPrId = true;
        hartOpts.vsa.prIdValue = Word(hart) << 24;
        CodeRegion hartRegion = region;
        hartRegion.entries = perHartEntries[hart];
        harts.push_back(analyzePageAccesses(prog, hartRegion, hartOpts));
    }
    return intersectSummaries(std::move(harts));
}

} // namespace uexc::analysis
