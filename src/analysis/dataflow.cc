#include "analysis/dataflow.h"

namespace uexc::analysis {

using sim::DecodedInst;
using sim::Op;

std::vector<Word>
liveInMasks(const Cfg &cfg)
{
    const auto &blocks = cfg.blocks();
    std::vector<Word> live_in(blocks.size(), 0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned i = blocks.size(); i-- > 0;) {
            const BasicBlock &b = blocks[i];
            Word live = 0;
            for (unsigned s : b.succs)
                live |= live_in[s];
            for (Addr a = b.end; a > b.begin;) {
                a -= 4;
                const DecodedInst &inst = cfg.inst(a);
                live &= ~sim::regWriteSet(inst);
                live |= sim::regReadSet(inst);
            }
            if (live != live_in[i]) {
                live_in[i] = live;
                changed = true;
            }
        }
    }
    return live_in;
}

Word
savedTransfer(const DecodedInst &inst, Word saved)
{
    if ((sim::opFlags(inst.op) & sim::opf::Store) ||
        inst.op == Op::Mtux) {
        saved |= (Word{1} << inst.rt) & ~Word{1};
    }
    return saved;
}

std::vector<Word>
savedInMasks(const Cfg &cfg)
{
    const auto &blocks = cfg.blocks();
    constexpr Word kTop = ~Word{0};
    std::vector<Word> saved_in(blocks.size(), kTop);

    std::vector<std::vector<unsigned>> preds(blocks.size());
    for (unsigned i = 0; i < blocks.size(); i++) {
        for (unsigned s : blocks[i].succs)
            preds[s].push_back(i);
    }
    for (Addr e : cfg.region().entries) {
        int bi = cfg.blockIndexAt(e);
        if (bi >= 0)
            saved_in[bi] = 0;
    }
    for (Addr e : cfg.minedEntries()) {
        int bi = cfg.blockIndexAt(e);
        if (bi >= 0)
            saved_in[bi] = 0;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned i = 0; i < blocks.size(); i++) {
            Word in = saved_in[i];
            for (unsigned p : preds[i]) {
                Word out = saved_in[p];
                if (out != kTop) {
                    const BasicBlock &pb = blocks[p];
                    for (Addr a = pb.begin; a < pb.end; a += 4)
                        out = savedTransfer(cfg.inst(a), out);
                }
                in &= out;
            }
            if (in != saved_in[i]) {
                saved_in[i] = in;
                changed = true;
            }
        }
    }
    return saved_in;
}

} // namespace uexc::analysis
