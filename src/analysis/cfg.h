/**
 * @file
 * Control-flow graph construction over assembled guest code.
 *
 * The builder works on a sim::Program region: it decodes every word
 * through the sim predecoder, traces reachable instructions from a
 * set of entry points, and partitions them into basic blocks with
 * delay-slot-aware successor edges. MIPS specifics handled here:
 *
 *  - a branch/jump and its delay slot always travel together: the
 *    block ends after the delay slot, and successor edges leave from
 *    the pair, not from the branch word;
 *  - jr/xret/rfe are region exits (no static successors); break is a
 *    terminator (it raises); syscall falls through (execution resumes
 *    after the kernel returns);
 *  - jal/jalr are calls: the static callee (when resolvable and
 *    inside the region) and the return continuation are both
 *    successors, which gives the reachability and dataflow passes a
 *    conservative summary-free view of calls;
 *  - declared data ranges (e.g. an embedded jump table) are excluded
 *    from tracing, and any word in them that looks like an in-region
 *    code address is mined as an additional entry point — this is how
 *    the kernel's sys_table targets become reachable.
 */

#ifndef UEXC_ANALYSIS_CFG_H
#define UEXC_ANALYSIS_CFG_H

#include <vector>

#include "common/types.h"
#include "sim/assembler.h"
#include "sim/isa.h"

namespace uexc::analysis {

/** A half-open address interval [begin, end). */
struct AddrRange
{
    Addr begin = 0;
    Addr end = 0;

    bool contains(Addr a) const { return a >= begin && a < end; }
};

/** The slice of a program handed to Cfg::build. */
struct CodeRegion
{
    Addr begin = 0;                  ///< first address, inclusive
    Addr end = 0;                    ///< last address, exclusive
    std::vector<Addr> entries;       ///< trace roots (vectors, handlers)
    std::vector<AddrRange> dataRanges; ///< data embedded in the text
};

/** One basic block: a maximal single-entry straight-line run. */
struct BasicBlock
{
    Addr begin = 0;              ///< first instruction
    Addr end = 0;                ///< one past the last instruction
    std::vector<unsigned> succs; ///< successor block indices
    /**
     * Control flow leaves the block's last instruction sequentially
     * but the next address is not executable code (region end, or a
     * declared data range): the code can run off its end.
     */
    bool fallsOff = false;

    unsigned numInsts() const { return (end - begin) / 4; }
};

/** The control-flow graph of one code region. See file comment. */
class Cfg
{
  public:
    /** Build the CFG of @p region over @p prog's words. */
    static Cfg build(const sim::Program &prog, const CodeRegion &region);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const CodeRegion &region() const { return region_; }
    Addr begin() const { return region_.begin; }
    Addr end() const { return region_.end; }

    /** Whether @p a holds an instruction reachable from the entries. */
    bool reached(Addr a) const;

    /** Whether @p a is inside one of the declared data ranges. */
    bool isData(Addr a) const;

    /** Whether the reachable instruction at @p a sits in a delay slot. */
    bool isDelaySlot(Addr a) const;

    /** The decoded instruction at @p a (any in-region address). */
    const sim::DecodedInst &inst(Addr a) const;

    /** Raw word at @p a. */
    Word word(Addr a) const { return inst(a).raw; }

    /** Index of the block containing @p a, or -1. */
    int blockIndexAt(Addr a) const;

    /**
     * Addresses of the instruction(s) that execute immediately after
     * the one at @p a: the sequential successor for straight-line
     * code, or — when @p a is a delay slot — the first instruction of
     * each successor block of the branch owning it. This is the
     * relation the load-delay hazard check walks.
     */
    std::vector<Addr> nextExecuted(Addr a) const;

    /** Entry points mined from jump-table words in the data ranges. */
    const std::vector<Addr> &minedEntries() const { return mined_; }

  private:
    bool inRegion(Addr a) const
    {
        return a >= region_.begin && a < region_.end;
    }
    unsigned indexOf(Addr a) const { return (a - region_.begin) / 4; }

    CodeRegion region_;
    std::vector<sim::DecodedInst> insts_; ///< one per region word
    std::vector<bool> reached_;
    std::vector<bool> delaySlot_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockIndex_;  ///< per region word, -1 if none
    std::vector<Addr> mined_;
    /** Successor addresses per block, build()-local; empty after. */
    std::vector<std::vector<Addr>> pendingSuccs_;
};

} // namespace uexc::analysis

#endif // UEXC_ANALYSIS_CFG_H
