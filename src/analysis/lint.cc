#include "analysis/lint.h"

#include <algorithm>

#include "analysis/dataflow.h"
#include "analysis/wcet.h"
#include "common/logging.h"

namespace uexc::analysis {

using detail::formatString;
using sim::DecodedInst;
using sim::Op;

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note:    return "note";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "?";
}

const char *
checkName(Check c)
{
    switch (c) {
      case Check::LoadDelayHazard:      return "load-delay-hazard";
      case Check::ControlInDelaySlot:   return "control-in-delay-slot";
      case Check::PrivilegedInUserCode: return "privileged-in-user-code";
      case Check::ClobberedRegister:    return "clobbered-register";
      case Check::UnreachableCode:      return "unreachable-code";
      case Check::FallOffEnd:           return "fall-off-end";
      case Check::InvalidOpcode:        return "invalid-opcode";
      case Check::FastPathStructure:    return "fast-path-structure";
      case Check::SharedPageConflict:   return "shared-page-conflict";
      case Check::UnsyncSharedWrite:    return "unsync-shared-write";
      case Check::HandlerWcetExceedsBudget:
        return "handler-wcet-exceeds-budget";
      case Check::UnboundedHandlerLoop: return "unbounded-handler-loop";
    }
    return "?";
}

namespace {

Finding
makeFinding(Check check, Severity sev, Addr addr,
            const std::string &region, const DecodedInst &inst,
            std::string message)
{
    Finding f;
    f.check = check;
    f.severity = sev;
    f.addr = addr;
    f.region = region;
    f.disasm = sim::disassemble(inst, addr);
    f.message = std::move(message);
    return f;
}

/** Names of the registers in @p mask, comma-separated. */
std::string
regMaskNames(Word mask)
{
    std::string out;
    for (unsigned r = 0; r < sim::NumRegs; r++) {
        if (!(mask & (Word{1} << r)))
            continue;
        if (!out.empty())
            out += ",";
        out += sim::regName(r);
    }
    return out;
}

void
checkLoadDelayHazards(const Cfg &cfg, const RegionSpec &spec,
                      std::vector<Finding> &out)
{
    for (Addr a = cfg.begin(); a < cfg.end(); a += 4) {
        if (!cfg.reached(a))
            continue;
        const DecodedInst &inst = cfg.inst(a);
        if (!(sim::opFlags(inst.op) & sim::opf::Load))
            continue;
        Word written = sim::regWriteSet(inst);
        if (!written)
            continue;
        for (Addr n : cfg.nextExecuted(a)) {
            if (!(sim::regReadSet(cfg.inst(n)) & written))
                continue;
            out.push_back(makeFinding(
                Check::LoadDelayHazard, Severity::Warning, a,
                spec.name, inst,
                formatString(
                    "%s is read by the next executed instruction at "
                    "0x%08x (%s); an R3000 load delay slot would "
                    "deliver the stale value",
                    regMaskNames(written).c_str(), n,
                    sim::disassemble(cfg.inst(n), n).c_str())));
            break;
        }
    }
}

void
checkDelaySlots(const Cfg &cfg, const RegionSpec &spec,
                std::vector<Finding> &out)
{
    for (Addr a = cfg.begin(); a < cfg.end(); a += 4) {
        if (!cfg.reached(a) || !cfg.isDelaySlot(a))
            continue;
        const DecodedInst &inst = cfg.inst(a);
        if (sim::opFlags(inst.op) & sim::opf::Control) {
            out.push_back(makeFinding(
                Check::ControlInDelaySlot, Severity::Error, a,
                spec.name, inst,
                "branch or jump in a delay slot: behavior is "
                "architecturally undefined"));
        }
    }
}

void
checkPrivileged(const Cfg &cfg, const RegionSpec &spec,
                std::vector<Finding> &out)
{
    for (Addr a = cfg.begin(); a < cfg.end(); a += 4) {
        if (!cfg.reached(a))
            continue;
        const DecodedInst &inst = cfg.inst(a);
        if (sim::opFlags(inst.op) & sim::opf::Privileged) {
            out.push_back(makeFinding(
                Check::PrivilegedInUserCode, Severity::Error, a,
                spec.name, inst,
                "privileged instruction reachable in user-mode code "
                "(would raise Coprocessor Unusable)"));
        }
    }
}

void
checkInvalidOpcodes(const Cfg &cfg, const RegionSpec &spec,
                    std::vector<Finding> &out)
{
    for (Addr a = cfg.begin(); a < cfg.end(); a += 4) {
        if (!cfg.reached(a))
            continue;
        const DecodedInst &inst = cfg.inst(a);
        if (inst.op == Op::Invalid) {
            out.push_back(makeFinding(
                Check::InvalidOpcode, Severity::Error, a, spec.name,
                inst,
                formatString("reachable word 0x%08x does not decode "
                             "(would raise Reserved Instruction)",
                             inst.raw)));
        }
    }
}

void
checkUnreachable(const Cfg &cfg, const RegionSpec &spec,
                 std::vector<Finding> &out)
{
    // Nop padding (raw zero, from align()) is expected to be
    // unreachable; only real instructions are worth flagging.
    Addr run_begin = 0;
    unsigned run_len = 0;
    auto flush = [&]() {
        if (!run_len)
            return;
        out.push_back(makeFinding(
            Check::UnreachableCode, Severity::Warning, run_begin,
            spec.name, cfg.inst(run_begin),
            formatString("%u instruction word%s not reachable from "
                         "any entry point",
                         run_len, run_len == 1 ? "" : "s")));
        run_len = 0;
    };
    for (Addr a = cfg.begin(); a < cfg.end(); a += 4) {
        if (!cfg.reached(a) && !cfg.isData(a) && cfg.word(a) != 0) {
            if (!run_len)
                run_begin = a;
            run_len++;
        } else {
            flush();
        }
    }
    flush();
}

void
checkFallOff(const Cfg &cfg, const RegionSpec &spec,
             std::vector<Finding> &out)
{
    for (const BasicBlock &b : cfg.blocks()) {
        if (!b.fallsOff)
            continue;
        Addr last = b.end - 4;
        out.push_back(makeFinding(
            Check::FallOffEnd, Severity::Error, last, spec.name,
            cfg.inst(last),
            spec.handler
                ? "handler is truncated: control flow runs past its "
                  "last instruction without a return"
                : "control flow runs off the end of the code region "
                  "into data or unmapped words"));
    }
}

void
checkRegisterDiscipline(const Cfg &cfg, const RegionSpec &spec,
                        std::vector<Finding> &out)
{
    std::vector<Word> saved_in = savedInMasks(cfg);
    const auto &blocks = cfg.blocks();
    for (unsigned i = 0; i < blocks.size(); i++) {
        if (saved_in[i] == ~Word{0})
            continue; // not reachable from the handler entries
        Word saved = saved_in[i];
        for (Addr a = blocks[i].begin; a < blocks[i].end; a += 4) {
            const DecodedInst &inst = cfg.inst(a);
            Word bad =
                sim::regWriteSet(inst) & ~spec.scratchMask & ~saved;
            if (bad) {
                out.push_back(makeFinding(
                    Check::ClobberedRegister, Severity::Error, a,
                    spec.name, inst,
                    formatString(
                        "handler clobbers %s without saving it on "
                        "every path first (scratch set: %s)",
                        regMaskNames(bad).c_str(),
                        regMaskNames(spec.scratchMask).c_str())));
            }
            saved = savedTransfer(inst, saved);
        }
    }
}

void
checkHandlerWcet(const sim::Program &prog, const RegionSpec &spec,
                 const LintConfig &config, std::vector<Finding> &out)
{
    CodeRegion region;
    region.begin = spec.begin;
    region.end = spec.end;
    region.entries = spec.entries;
    region.dataRanges = spec.dataRanges;
    Vsa vsa = Vsa::run(prog, region);
    WcetResult wcet =
        computeWcet(vsa, {config.cost, config.cachesEnabled});

    if (!wcet.bounded) {
        for (const LoopBound &loop : wcet.loops) {
            if (loop.bounded)
                continue;
            Finding f = makeFinding(
                Check::UnboundedHandlerLoop, Severity::Error,
                loop.backEdge, spec.name, vsa.cfg().inst(loop.backEdge),
                formatString(
                    "loop closing at 0x%08x has no inferable "
                    "iteration bound: the handler's worst-case "
                    "latency is unbounded",
                    loop.head));
            f.payload.emplace_back("loop_head", loop.head);
            out.push_back(std::move(f));
        }
        return;
    }
    if (spec.wcetBudget && wcet.worstCycles > spec.wcetBudget) {
        Finding f = makeFinding(
            Check::HandlerWcetExceedsBudget, Severity::Error,
            spec.begin, spec.name, vsa.cfg().inst(spec.begin),
            formatString("handler worst-case bound is %llu cycles, "
                         "over its budget of %llu",
                         (unsigned long long)wcet.worstCycles,
                         (unsigned long long)spec.wcetBudget));
        f.payload.emplace_back("wcet_cycles", wcet.worstCycles);
        f.payload.emplace_back("budget_cycles", spec.wcetBudget);
        f.payload.emplace_back("wcet_insts", wcet.worstInsts);
        out.push_back(std::move(f));
    }
}

void
checkSharedPages(const sim::Program &prog, const RegionSpec &spec,
                 const LintConfig &config, std::vector<Finding> &out)
{
    CodeRegion region;
    region.begin = spec.begin;
    region.end = spec.end;
    region.entries = spec.entries;
    region.dataRanges = spec.dataRanges;

    std::vector<std::vector<Addr>> entries = config.perHartEntries;
    if (entries.empty())
        entries.assign(config.multihart, spec.entries);

    PageAccessOptions opts;
    opts.pageOf = config.pageOf;
    ConflictResult result =
        analyzeSharedPageConflicts(prog, region, entries, opts);

    for (unsigned hart = 0; hart < result.harts.size(); hart++) {
        for (Addr a : result.harts[hart].unboundedStores) {
            Finding f = makeFinding(
                Check::UnsyncSharedWrite, Severity::Error, a,
                spec.name, sim::decode(prog.words[(a - prog.origin) / 4]),
                formatString(
                    "hart %u store has an unbounded effective-address "
                    "set: its shared-page footprint cannot be "
                    "predicted",
                    hart));
            f.payload.emplace_back("hart", hart);
            out.push_back(std::move(f));
        }
    }
    // One note per conflicting page; the pair detail goes into the
    // payload (an 8-hart program would otherwise repeat each page up
    // to harts^2 times).
    for (Word page : result.conflictPages) {
        unsigned pairs = 0, writers = 0, fetch_side = 0;
        Word writer_mask = 0;
        for (const PageConflict &c : result.conflicts) {
            if (c.page != page)
                continue;
            pairs++;
            if (c.kind == PageConflict::Kind::WriteFetch)
                fetch_side++;
            if (!(writer_mask & (Word{1} << c.writer))) {
                writer_mask |= Word{1} << c.writer;
                writers++;
            }
        }
        Finding f = makeFinding(
            Check::SharedPageConflict, Severity::Note, spec.begin,
            spec.name,
            sim::decode(prog.words.empty() ? 0 : prog.words[0]),
            formatString(
                "page 0x%x: %u hart%s may-write it while other harts "
                "may %s it (%u hart pairing%s); barrier rounds "
                "touching it abort and serialize",
                page, writers, writers == 1 ? "" : "s",
                fetch_side ? "fetch or read" : "read", pairs,
                pairs == 1 ? "" : "s"));
        f.payload.emplace_back("page", page);
        f.payload.emplace_back("writer_harts", writers);
        f.payload.emplace_back("hart_pairings", pairs);
        out.push_back(std::move(f));
    }
}

} // namespace

std::vector<Finding>
lint(const sim::Program &prog, const LintConfig &config)
{
    std::vector<Finding> out;
    for (const RegionSpec &spec : config.regions) {
        CodeRegion region;
        region.begin = spec.begin;
        region.end = spec.end;
        region.entries = spec.entries;
        region.dataRanges = spec.dataRanges;
        Cfg cfg = Cfg::build(prog, region);

        if (spec.handler) {
            // The enclosing whole-program region already runs the
            // generic checks; a handler region adds the discipline
            // and truncation diagnostics.
            checkRegisterDiscipline(cfg, spec, out);
            checkFallOff(cfg, spec, out);
            checkInvalidOpcodes(cfg, spec, out);
            if (config.analyzeWcet)
                checkHandlerWcet(prog, spec, config, out);
        } else {
            checkLoadDelayHazards(cfg, spec, out);
            checkDelaySlots(cfg, spec, out);
            if (spec.userMode)
                checkPrivileged(cfg, spec, out);
            checkUnreachable(cfg, spec, out);
            checkFallOff(cfg, spec, out);
            checkInvalidOpcodes(cfg, spec, out);
            if (config.multihart > 0)
                checkSharedPages(prog, spec, config, out);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.addr < b.addr;
                     });
    return out;
}

std::vector<Finding>
verifyFastPath(const sim::Program &prog, const FastPathSpec &spec)
{
    std::vector<Finding> out;
    if (spec.phases.empty())
        return out;

    auto instAt = [&](Addr a) {
        Addr off = a - prog.origin;
        Word w = (a >= prog.origin && off / 4 < prog.words.size())
                     ? prog.words[off / 4]
                     : 0;
        return sim::decode(w);
    };
    auto report = [&](Addr addr, std::string msg) {
        out.push_back(makeFinding(Check::FastPathStructure,
                                  Severity::Error, addr, "fast-path",
                                  instAt(addr), std::move(msg)));
    };

    for (unsigned i = 0; i < spec.phases.size(); i++) {
        const FastPathSpec::Phase &p = spec.phases[i];
        unsigned words = (p.end - p.begin) / 4;
        if (words != p.expectedWords) {
            report(p.begin,
                   formatString("phase \"%s\" holds %u instructions, "
                                "the paper's Table 3 requires %u",
                                p.name.c_str(), words,
                                p.expectedWords));
        }
        if (i + 1 < spec.phases.size() &&
            p.end != spec.phases[i + 1].begin) {
            report(p.end, formatString(
                              "phase \"%s\" is not contiguous with "
                              "phase \"%s\"",
                              p.name.c_str(),
                              spec.phases[i + 1].name.c_str()));
        }
    }

    Addr begin = spec.phases.front().begin;
    Addr end = spec.phases.back().end;
    for (Addr a = begin; a < end; a += 4) {
        DecodedInst inst = instAt(a);
        std::uint16_t f = sim::opFlags(inst.op);
        if (!(f & sim::opf::Memory))
            continue;
        Word base_bit = Word{1} << inst.rs;
        if ((f & sim::opf::Store) && !(spec.storeBaseMask & base_bit)) {
            report(a, formatString(
                          "store through base %s: fast-path stores "
                          "must stay inside the pinned save area "
                          "(allowed bases: %s)",
                          sim::regName(inst.rs),
                          regMaskNames(spec.storeBaseMask).c_str()));
        } else if ((f & sim::opf::Load) &&
                   !(spec.loadBaseMask & base_bit)) {
            report(a, formatString(
                          "load through base %s: fast-path loads must "
                          "use the pinned frame or proc structure "
                          "(allowed bases: %s)",
                          sim::regName(inst.rs),
                          regMaskNames(spec.loadBaseMask).c_str()));
        }
    }

    if (end - begin >= 8) {
        if (instAt(end - 8).op != Op::Jr || instAt(end - 4).op != Op::Rfe) {
            report(end - 8,
                   "the vector phase must end in jr/rfe (dispatch to "
                   "the user handler with the delay-slot mode "
                   "restore)");
        }
    }
    return out;
}

bool
hasErrors(const std::vector<Finding> &findings, bool strict)
{
    return std::any_of(findings.begin(), findings.end(),
                       [strict](const Finding &f) {
                           return f.severity == Severity::Error ||
                                  (strict && f.severity ==
                                                 Severity::Warning);
                       });
}

std::string
formatFinding(const Finding &f)
{
    return formatString("%s[%s] 0x%08x in %s: %s  [%s]",
                        severityName(f.severity), checkName(f.check),
                        f.addr, f.region.c_str(), f.message.c_str(),
                        f.disasm.c_str());
}

std::string
formatFindings(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += formatFinding(f);
        out += '\n';
    }
    return out;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += formatString("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
formatFindingsJson(const std::vector<Finding> &findings)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < findings.size(); i++) {
        const Finding &f = findings[i];
        out += formatString(
            "  {\"check\": \"%s\", \"severity\": \"%s\", "
            "\"pc\": \"0x%08x\", \"region\": \"%s\", "
            "\"disasm\": \"%s\", \"message\": \"%s\"",
            checkName(f.check), severityName(f.severity), f.addr,
            jsonEscape(f.region).c_str(), jsonEscape(f.disasm).c_str(),
            jsonEscape(f.message).c_str());
        for (const auto &[key, value] : f.payload)
            out += formatString(", \"%s\": %llu",
                                jsonEscape(key).c_str(),
                                (unsigned long long)value);
        out += i + 1 < findings.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
}

} // namespace uexc::analysis
