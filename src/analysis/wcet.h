/**
 * @file
 * Worst-case handler-latency analysis over the CFG.
 *
 * Computes a static upper bound on the cycles a handler region can
 * spend before returning, from the same declarative per-operation
 * cost table the interpreter charges from (sim/isa.h CostClass) — the
 * bound and the simulation cannot disagree about what an instruction
 * costs.
 *
 * The bound is a longest path over the DAG of basic blocks, with
 * natural loops folded in via bounded-loop inference: a loop whose
 * back edge is `bne reg, zero, head` (or `bgtz reg, head`), whose
 * body decrements reg by a constant exactly once, and whose entry
 * value of reg is a VSA-resolved positive constant, executes a known
 * number of iterations. Any other cycle makes the region unbounded.
 *
 * Worst-case assumptions per instruction: every control transfer is
 * taken, every store pays the write-buffer stall, and (when the cache
 * model is enabled) every fetch and memory access misses.
 *
 * StraightLineCoster is the exact companion: for straight-line code
 * with a known incoming store-run length and the cache model off, the
 * sequential cost it computes equals the cycles the interpreter
 * charges, which is what the golden Table-3 cross-check asserts.
 */

#ifndef UEXC_ANALYSIS_WCET_H
#define UEXC_ANALYSIS_WCET_H

#include <vector>

#include "analysis/vsa.h"

namespace uexc::analysis {

struct WcetConfig
{
    sim::CostModel cost;
    /** Charge worst-case cache-miss penalties on every access. */
    bool cachesEnabled = false;
};

/** One natural loop found in the region. */
struct LoopBound
{
    Addr head = 0;     ///< loop-head block address
    Addr backEdge = 0; ///< address of the branch closing the loop
    bool bounded = false;
    std::uint32_t iterations = 0; ///< body executions when bounded
};

struct WcetResult
{
    /** Every cycle in the CFG has an inferred iteration bound. */
    bool bounded = false;
    /** Worst-case cycles entry-to-exit (valid when bounded). */
    Cycles worstCycles = 0;
    /** Worst-case retired instructions (valid when bounded). */
    InstCount worstInsts = 0;
    std::vector<LoopBound> loops;
};

/** Bound the worst-case latency of @p vsa's region. */
WcetResult computeWcet(const Vsa &vsa, const WcetConfig &config);

/**
 * Exact sequential cycle cost of straight-line code, mirroring the
 * interpreter's charge sites for the cache-hit / cache-off path:
 * baseCost + execute extra (mult/div) + memory extra + the
 * write-buffer stall on the second-and-later store of a run. Branch
 * charges are excluded (a straight-line phase retires its branches
 * untaken, and taken-branch extras belong to the target phase).
 */
class StraightLineCoster
{
  public:
    explicit StraightLineCoster(const sim::CostModel &cost)
        : cost_(cost)
    {
    }

    /** Cost of retiring @p inst; updates the store-run length. */
    Cycles step(const sim::DecodedInst &inst)
    {
        Cycles c = cost_.baseCost +
                   sim::opExecuteExtraCycles(inst.op, cost_) +
                   sim::opMemoryExtraCycles(inst.op, cost_);
        if (inst.isStore()) {
            consecutiveStores_++;
            if (consecutiveStores_ >= 2 && cost_.writeBufferStall)
                c += cost_.writeBufferStall;
        } else {
            consecutiveStores_ = 0;
        }
        return c;
    }

    unsigned consecutiveStores() const { return consecutiveStores_; }
    void reset() { consecutiveStores_ = 0; }

  private:
    sim::CostModel cost_;
    unsigned consecutiveStores_ = 0;
};

} // namespace uexc::analysis

#endif // UEXC_ANALYSIS_WCET_H
