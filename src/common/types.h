/**
 * @file
 * Fundamental integer types shared by the simulator, the simulated
 * operating system, and the runtime library.
 */

#ifndef UEXC_COMMON_TYPES_H
#define UEXC_COMMON_TYPES_H

#include <cstdint>

namespace uexc {

/** A 32-bit virtual or physical address in the simulated machine. */
using Addr = std::uint32_t;

/** A 32-bit machine word (register width of the simulated CPU). */
using Word = std::uint32_t;

/** Signed view of a machine word, used for arithmetic semantics. */
using SWord = std::int32_t;

/** A half word (16 bits). */
using Half = std::uint16_t;

/** A byte. */
using Byte = std::uint8_t;

/** Simulated time, measured in CPU cycles. */
using Cycles = std::uint64_t;

/** Count of dynamic instructions executed. */
using InstCount = std::uint64_t;

} // namespace uexc

#endif // UEXC_COMMON_TYPES_H
