/**
 * @file
 * Bit-manipulation helpers used throughout the ISA encoder/decoder and
 * the TLB/CP0 implementations.
 */

#ifndef UEXC_COMMON_BITS_H
#define UEXC_COMMON_BITS_H

#include <cassert>

#include "common/types.h"

namespace uexc {

/**
 * Extract bits [hi:lo] (inclusive, hi >= lo) from a word.
 *
 * @param value word to extract from
 * @param hi    most significant bit of the field
 * @param lo    least significant bit of the field
 * @return the field, right justified
 */
constexpr Word
bits(Word value, unsigned hi, unsigned lo)
{
    unsigned width = hi - lo + 1;
    Word mask = (width >= 32) ? ~Word(0) : ((Word(1) << width) - 1);
    return (value >> lo) & mask;
}

/** Extract a single bit from a word. */
constexpr Word
bit(Word value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/**
 * Insert a field into bits [hi:lo] of a word, returning the new word.
 */
constexpr Word
insertBits(Word value, unsigned hi, unsigned lo, Word field)
{
    unsigned width = hi - lo + 1;
    Word mask = (width >= 32) ? ~Word(0) : ((Word(1) << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign extend the low @p width bits of @p value to 32 bits. */
constexpr Word
signExtend(Word value, unsigned width)
{
    unsigned shift = 32 - width;
    return static_cast<Word>(
        static_cast<SWord>(value << shift) >> shift);
}

/** Whether @p addr is aligned to a power-of-two @p size. */
constexpr bool
isAligned(Addr addr, unsigned size)
{
    return (addr & (size - 1)) == 0;
}

/** Round @p addr down to a power-of-two @p size boundary. */
constexpr Addr
roundDown(Addr addr, unsigned size)
{
    return addr & ~static_cast<Addr>(size - 1);
}

/** Round @p addr up to a power-of-two @p size boundary. */
constexpr Addr
roundUp(Addr addr, unsigned size)
{
    return (addr + size - 1) & ~static_cast<Addr>(size - 1);
}

} // namespace uexc

#endif // UEXC_COMMON_BITS_H
