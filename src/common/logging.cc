#include "common/logging.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace uexc {

namespace {
bool g_logging_enabled = true;
} // namespace

void
setLoggingEnabled(bool enabled)
{
    g_logging_enabled = enabled;
}

bool
loggingEnabled()
{
    return g_logging_enabled;
}

namespace detail {

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = formatString("panic: %s (%s:%d)", msg.c_str(),
                                    file, line);
    if (g_logging_enabled)
        std::fprintf(stderr, "%s\n", full.c_str());
    throw PanicError(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = formatString("fatal: %s (%s:%d)", msg.c_str(),
                                    file, line);
    if (g_logging_enabled)
        std::fprintf(stderr, "%s\n", full.c_str());
    throw FatalError(full);
}

void
warnImpl(const std::string &msg)
{
    if (g_logging_enabled)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_logging_enabled)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace uexc
