/**
 * @file
 * Error and status reporting, in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated; a bug in uexc itself.
 *            Throws PanicError (so tests can assert on it) carrying the
 *            formatted message.
 * fatal()  - the user asked for something the system cannot do (bad
 *            configuration, invalid arguments). Throws FatalError.
 * warn()   - something is off but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef UEXC_COMMON_LOGGING_H
#define UEXC_COMMON_LOGGING_H

#include <cstdio>
#include <stdexcept>
#include <string>

namespace uexc {

/** Thrown by panic(): an internal uexc bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

namespace detail {

/** printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Whether warn()/inform() write to stderr/stdout (on by default). */
void setLoggingEnabled(bool enabled);
bool loggingEnabled();

} // namespace uexc

/** Report an internal bug and throw PanicError. */
#define UEXC_PANIC(...)                                                     \
    ::uexc::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::uexc::detail::formatString(__VA_ARGS__))

/** Report a user error and throw FatalError. */
#define UEXC_FATAL(...)                                                     \
    ::uexc::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::uexc::detail::formatString(__VA_ARGS__))

/** Emit a warning; execution continues. */
#define UEXC_WARN(...)                                                      \
    ::uexc::detail::warnImpl(::uexc::detail::formatString(__VA_ARGS__))

/** Emit an informational message. */
#define UEXC_INFORM(...)                                                    \
    ::uexc::detail::informImpl(::uexc::detail::formatString(__VA_ARGS__))

#endif // UEXC_COMMON_LOGGING_H
