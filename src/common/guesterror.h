/**
 * @file
 * Structured guest-visible errors.
 *
 * A GuestError means the *guest* reached a state the simulated system
 * diagnoses as unrecoverable (a bad trap, a malformed syscall, an
 * exhausted retry budget). It is the graceful-degradation terminus:
 * instead of crashing the host process with panic()/fatal(), the
 * machine surfaces a structured diagnosis carrying the hart, the guest
 * PC, and the faulting address so a harness (or a chaos campaign) can
 * record it and move on.
 *
 * Contrast with PanicError (a bug in uexc itself) and FatalError (a
 * host-side configuration error): those remain fatal on purpose.
 */

#ifndef UEXC_COMMON_GUESTERROR_H
#define UEXC_COMMON_GUESTERROR_H

#include <stdexcept>
#include <string>

#include "common/logging.h"
#include "common/types.h"

namespace uexc {

/** The guest reached a diagnosed-unrecoverable state. */
class GuestError : public std::runtime_error
{
  public:
    GuestError(unsigned hart, Addr pc, Addr bad_vaddr,
               const std::string &cause)
        : std::runtime_error(detail::formatString(
              "guest error [hart %u pc=0x%08x badva=0x%08x]: %s", hart,
              pc, bad_vaddr, cause.c_str())),
          hart_(hart), pc_(pc), badVaddr_(bad_vaddr), cause_(cause)
    {
    }

    unsigned hart() const { return hart_; }
    Addr pc() const { return pc_; }
    Addr badVaddr() const { return badVaddr_; }
    const std::string &cause() const { return cause_; }

  private:
    unsigned hart_;
    Addr pc_;
    Addr badVaddr_;
    std::string cause_;
};

} // namespace uexc

/** Throw a GuestError with a printf-formatted cause string. */
#define UEXC_GUEST_ERROR(hart, pc, badva, ...)                              \
    throw ::uexc::GuestError((hart), (pc), (badva),                         \
                             ::uexc::detail::formatString(__VA_ARGS__))

#endif // UEXC_COMMON_GUESTERROR_H
