#include "apps/analysis/breakeven.h"

#include "common/logging.h"

namespace uexc::apps {

double
barrierBreakEvenUs(const BarrierAppProfile &app, double check_cycles,
                   double clock_mhz)
{
    if (app.exceptions == 0 || clock_mhz <= 0)
        UEXC_FATAL("barrier break-even needs exceptions > 0 and a "
                   "positive clock");
    // y < c*x / (f*t)
    return static_cast<double>(app.softwareChecks) * check_cycles /
           (clock_mhz * static_cast<double>(app.exceptions));
}

std::vector<BarrierAppProfile>
hoskingMossProfiles()
{
    return {
        // "Tree": synthetic tree creation/destruction; heavy
        // allocation, moderate old-to-young store traffic
        BarrierAppProfile{"Tree", 310'000, 2'700},
        // "Interactive": the standard Smalltalk macro-benchmark
        // suite; more checks relative to traps
        BarrierAppProfile{"Interactive", 520'000, 2'100},
    };
}

double
swizzleBreakEvenUses(double check_cycles, double exception_us,
                     double clock_mhz)
{
    if (check_cycles <= 0)
        UEXC_FATAL("swizzle break-even needs positive check cost");
    // c*u > f*y  =>  u* = f*y / c
    return clock_mhz * exception_us / check_cycles;
}

double
eagerLazyBreakEvenUsed(double exception_us, double swizzle_us,
                       double pointers_per_page)
{
    if (exception_us + swizzle_us <= 0)
        UEXC_FATAL("eager/lazy break-even needs positive costs");
    // t + pn*s < pu*(t + s)  =>  pu* = (t + pn*s) / (t + s)
    return (exception_us + pointers_per_page * swizzle_us) /
           (exception_us + swizzle_us);
}

} // namespace uexc::apps
