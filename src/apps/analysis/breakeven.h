/**
 * @file
 * The paper's analytical break-even models (section 4):
 *
 *  - Table 5: software write-barrier checks vs. protection
 *    exceptions for generational collection. Exceptions win when the
 *    per-exception cost y (us) satisfies  y < c*x / (f*t), with c
 *    checks of x cycles, t exceptions, clock f MHz.
 *
 *  - Figure 3: software residency checks vs. exception-based
 *    swizzling. Exceptions win when  c*u > f*y  (c cycles per check,
 *    u uses per pointer, y us per exception).
 *
 *  - Figure 4: eager vs. lazy swizzling. Eager wins when
 *    t + pn*s < pu*(t + s), with t the per-exception time, s the
 *    per-pointer swizzle time, pn pointers per page, pu pointers
 *    actually used.
 *
 * All functions are pure; the benches feed them exception costs
 * *measured* on the simulator (core/microbench).
 */

#ifndef UEXC_APPS_ANALYSIS_BREAKEVEN_H
#define UEXC_APPS_ANALYSIS_BREAKEVEN_H

#include <string>
#include <vector>

#include "common/types.h"

namespace uexc::apps {

// -- Table 5 --------------------------------------------------------------

/** Application characterization for the Table 5 model. */
struct BarrierAppProfile
{
    std::string name;
    std::uint64_t softwareChecks;   ///< c: checks the app would execute
    std::uint64_t exceptions;       ///< t: page-protection exceptions
};

/**
 * Break-even exception cost y (us): page protection beats software
 * checks when the measured per-exception cost is below this.
 *
 * @param app           application profile (c and t)
 * @param check_cycles  x: cycles per software check
 * @param clock_mhz     f
 */
double barrierBreakEvenUs(const BarrierAppProfile &app,
                          double check_cycles, double clock_mhz);

/**
 * The Hosking & Moss application profiles used by the paper's
 * Table 5. The published table in the source text is not machine
 * readable; these counts are reconstructed from the study's regime
 * (hundreds of thousands of barrier stores, a few thousand
 * protection traps) so that the paper's conclusion — an 18 us
 * exception+reprotect is competitive with 5-cycle inline checks —
 * is preserved. EXPERIMENTS.md discusses the substitution.
 */
std::vector<BarrierAppProfile> hoskingMossProfiles();

// -- Figure 3 -----------------------------------------------------------------

/**
 * Break-even uses-per-pointer u* for exception-based swizzling:
 * exceptions win when a pointer is dereferenced more than u* times.
 *
 * @param check_cycles      c: cycles per software check
 * @param exception_us      y: cost of one unaligned exception (us)
 * @param clock_mhz         f
 */
double swizzleBreakEvenUses(double check_cycles, double exception_us,
                            double clock_mhz);

// -- Figure 4 -----------------------------------------------------------------

/**
 * Break-even used-pointer count pu*: eager swizzling wins when more
 * than pu* of the pn pointers on a page are eventually used.
 *
 * @param exception_us   t: cost of one exception (us)
 * @param swizzle_us     s: cost of swizzling one pointer (us)
 * @param pointers_per_page  pn
 */
double eagerLazyBreakEvenUsed(double exception_us, double swizzle_us,
                              double pointers_per_page);

} // namespace uexc::apps

#endif // UEXC_APPS_ANALYSIS_BREAKEVEN_H
