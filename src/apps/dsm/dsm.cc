#include "apps/dsm/dsm.h"

#include <algorithm>

#include "common/bits.h"
#include "common/guesterror.h"
#include "common/logging.h"
#include "core/microbench.h"
#include "sim/faultinject.h"
#include "sim/snapshot.h"

namespace uexc::apps {

using namespace os;

namespace {

// Cluster-image section tags (the nested machine blobs carry the
// machine-level tags inside their own images).
constexpr Word kTagDsmConfig = sim::snapshotTag('D', 'C', 'F', 'G');
constexpr Word kTagDsmPages = sim::snapshotTag('D', 'P', 'G', 'S');
constexpr Word kTagDsmStats = sim::snapshotTag('D', 'S', 'T', 'A');
constexpr Word kTagDsmNet = sim::snapshotTag('D', 'N', 'E', 'T');

Word
dsmMachineTag(unsigned node)
{
    return sim::snapshotTag('M', 'C', 'H', '\0') | (Word(node) << 24);
}

} // namespace

DsmCluster::DsmCluster(const Config &config)
    : config_(config)
{
    if (!isAligned(config.base, kPageBytes) ||
        !isAligned(config.bytes, kPageBytes) || config.nodes < 2) {
        UEXC_FATAL("dsm: bad cluster configuration");
    }

    unsigned npages = config.bytes / kPageBytes;
    pages_.resize(npages);
    sendSeq_.assign(std::size_t(config.nodes) * config.nodes, 0);
    recvSeq_.assign(std::size_t(config.nodes) * config.nodes, 0);
    stats_.perLinkRetries.assign(
        std::size_t(config.nodes) * config.nodes, 0);
    stats_.timeoutCapCycles = config.timeoutCapCycles;
    rng_ = config.networkSeed;
    for (PageInfo &p : pages_)
        p.states.assign(config.nodes, DsmPageState::Invalid);

    sim::MachineConfig mcfg = rt::micro::paperMachineConfig();
    if (config.memBytes != 0)
        mcfg.memBytes = config.memBytes;
    mcfg.cpu.userVectorHw = config.hardwareExtensions;
    mcfg.cpu.tlbmpHw = config.hardwareExtensions;
    mcfg.cpu.fastInterpreter = config.fastInterpreter;

    if (config.sharedMachine) {
        // One machine with a hart per node over one kernel. Each node
        // gets its own process (own ASID, own frames) on its own hart.
        mcfg.harts = config.nodes;
        mcfg.scheduler = config.scheduler;
        sharedMachine_ = std::make_unique<sim::Machine>(mcfg);
        sharedKernel_ = std::make_unique<os::Kernel>(*sharedMachine_);
        sharedKernel_->boot();
        for (unsigned n = 0; n < config.nodes; n++) {
            Node node;
            node.env = std::make_unique<rt::UserEnv>(
                *sharedKernel_, config.mode,
                rt::SavePolicy::UltrixEquivalent, n);
            node.env->install(0xffff);
            node.env->allocate(config.base, config.bytes);
            nodes_.push_back(std::move(node));
        }
    } else {
        for (unsigned n = 0; n < config.nodes; n++) {
            Node node;
            node.machine = std::make_unique<sim::Machine>(mcfg);
            node.kernel = std::make_unique<os::Kernel>(*node.machine);
            node.kernel->boot();
            node.env = std::make_unique<rt::UserEnv>(*node.kernel,
                                                     config.mode);
            node.env->install(0xffff);
            node.env->allocate(config.base, config.bytes);
            nodes_.push_back(std::move(node));
        }
    }

    // initial ownership: node 0 holds every page writable; all other
    // nodes start Invalid
    for (unsigned i = 0; i < npages; i++) {
        Addr page = config.base + i * kPageBytes;
        pages_[i].owner = 0;
        pages_[i].states[0] = DsmPageState::Writable;
        for (unsigned n = 1; n < config.nodes; n++)
            setProtection(n, page, DsmPageState::Invalid, false);
    }

    for (unsigned n = 0; n < config.nodes; n++) {
        nodes_[n].env->setHandler(
            [this, n](rt::Fault &f) { onFault(n, f); });
    }
}

DsmCluster::~DsmCluster() = default;

sim::Machine &
DsmCluster::machineOf(unsigned node)
{
    return sharedMachine_ ? *sharedMachine_ : *nodes_[node].machine;
}

unsigned
DsmCluster::pageIndex(Addr va) const
{
    if (va < config_.base || va >= config_.base + config_.bytes)
        UEXC_FATAL("dsm: address 0x%08x outside the shared region", va);
    return (va - config_.base) / kPageBytes;
}

void
DsmCluster::setProtection(unsigned node, Addr page, DsmPageState state,
                          bool in_handler)
{
    rt::UserEnv &env = *nodes_[node].env;
    Word prot = 0;
    switch (state) {
      case DsmPageState::Invalid: prot = 0; break;
      case DsmPageState::ReadShared: prot = kProtRead; break;
      case DsmPageState::Writable: prot = kProtRead | kProtWrite; break;
    }
    // Protection changes on remote nodes are performed by their
    // kernels on message receipt; the message cost is accounted by
    // the caller, the VM work is applied directly here.
    (void)in_handler;
    env.process().as().protect(page, kPageBytes, prot);
    pages_[pageIndex(page)].states[node] = state;
}

void
DsmCluster::chargeMessage(unsigned node)
{
    nodes_[node].env->cpu().charge(config_.networkLatencyCycles);
    stats_.messages++;
}

unsigned
DsmCluster::pairIndex(unsigned from, unsigned to) const
{
    return from * config_.nodes + to;
}

bool
DsmCluster::roll(unsigned pct)
{
    return sim::FaultInjector::splitmix64(rng_) % 100 < pct;
}

void
DsmCluster::sendMessage(unsigned node, unsigned from, unsigned to)
{
    if (!config_.unreliableNetwork) {
        chargeMessage(node);
        return;
    }

    unsigned link = pairIndex(from, to);
    std::uint64_t seq = sendSeq_[link]++;
    Cycles timeout = config_.timeoutCycles;
    rt::UserEnv &env = *nodes_[node].env;

    for (unsigned attempt = 0;; attempt++) {
        stats_.messages++;
        if (roll(config_.lossPercent)) {
            // Lost in flight: wait out the retransmit timer, back off,
            // and try again. Protocol state has not been touched yet.
            if (attempt >= config_.maxRetries) {
                UEXC_GUEST_ERROR(env.hartId(), env.cpu().pc(), 0,
                                 "dsm: message %u->%u lost %u times "
                                 "(network partition?)",
                                 from, to, attempt + 1);
            }
            env.cpu().charge(timeout);
            stats_.timeouts++;
            stats_.retries++;
            stats_.perLinkRetries[link]++;
            if (timeout > stats_.maxTimeoutCharged)
                stats_.maxTimeoutCharged = timeout;
            timeout = std::min<Cycles>(timeout * 2,
                                       config_.timeoutCapCycles);
            continue;
        }
        Cycles latency = config_.networkLatencyCycles;
        if (roll(config_.delayPercent))
            latency += config_.delayCycles;
        env.cpu().charge(latency);
        // Delivered: the receiver accepts the first copy with this
        // sequence number and drops any duplicate that follows.
        if (seq >= recvSeq_[link])
            recvSeq_[link] = seq + 1;
        if (roll(config_.dupPercent)) {
            stats_.messages++;
            stats_.duplicatesSuppressed++;
        }
        return;
    }
}

void
DsmCluster::fetchPage(unsigned to_node, Addr page)
{
    unsigned from_node = pages_[pageIndex(page)].owner;
    // In shared-machine mode src and dst are the same physical
    // memory; the nodes' frames are still disjoint, so the copy is
    // the same operation.
    sim::Machine &src = machineOf(from_node);
    sim::Machine &dst = machineOf(to_node);
    Addr src_pa = nodes_[from_node].env->process().as().physOf(page);
    Addr dst_pa = nodes_[to_node].env->process().as().physOf(page);
    std::vector<Byte> buf(kPageBytes);
    src.mem().readBlock(src_pa, buf.data(), kPageBytes);
    dst.mem().writeBlock(dst_pa, buf.data(), kPageBytes);
    nodes_[to_node].env->cpu().charge(
        config_.copyPerWordCycles * (kPageBytes / 4));
    stats_.pageTransfers++;
}

void
DsmCluster::onFault(unsigned node, rt::Fault &fault)
{
    Addr page = roundDown(fault.badVaddr(), kPageBytes);
    PageInfo &info = pages_[pageIndex(page)];
    bool is_write = fault.code() == sim::ExcCode::TlbS ||
                    fault.code() == sim::ExcCode::Mod;

    if (!is_write) {
        // read miss: request the page from the owner
        stats_.readFaults++;
        sendMessage(node, node, info.owner);    // request
        sendMessage(node, info.owner, node);    // reply header
        fetchPage(node, page);
        // the owner drops to read-shared
        if (info.states[info.owner] == DsmPageState::Writable) {
            setProtection(info.owner, page, DsmPageState::ReadShared,
                          true);
        }
        setProtection(node, page, DsmPageState::ReadShared, true);
        return;
    }

    // write miss: invalidate every other copy, take ownership
    stats_.writeFaults++;
    sendMessage(node, node, info.owner);    // ownership request
    if (info.states[node] == DsmPageState::Invalid)
        fetchPage(node, page);
    for (unsigned n = 0; n < nodes(); n++) {
        if (n == node)
            continue;
        if (info.states[n] != DsmPageState::Invalid) {
            sendMessage(node, node, n); // invalidation message
            setProtection(n, page, DsmPageState::Invalid, true);
            stats_.invalidations++;
        }
    }
    info.owner = node;
    setProtection(node, page, DsmPageState::Writable, true);
}

Word
DsmCluster::read(unsigned node, Addr va)
{
    return nodes_[node].env->load(va);
}

void
DsmCluster::write(unsigned node, Addr va, Word value)
{
    nodes_[node].env->store(va, value);
}

DsmPageState
DsmCluster::state(unsigned node, Addr va) const
{
    return pages_[pageIndex(va)].states[node];
}

unsigned
DsmCluster::ownerOf(Addr va) const
{
    return pages_[pageIndex(va)].owner;
}

std::vector<Byte>
DsmCluster::checkpoint() const
{
    sim::SnapshotWriter w;

    w.beginSection(kTagDsmConfig);
    w.u32(config_.nodes);
    w.u32(config_.base);
    w.u32(config_.bytes);
    w.u32(static_cast<Word>(config_.mode));
    w.boolean(config_.sharedMachine);
    w.boolean(config_.fastInterpreter);
    w.boolean(config_.hardwareExtensions);
    w.boolean(config_.unreliableNetwork);
    w.u64(config_.memBytes);
    w.endSection();

    w.beginSection(kTagDsmPages);
    w.u32(static_cast<Word>(pages_.size()));
    for (const PageInfo &p : pages_) {
        w.u32(p.owner);
        for (DsmPageState s : p.states)
            w.u8(static_cast<std::uint8_t>(s));
    }
    w.endSection();

    w.beginSection(kTagDsmStats);
    w.u64(stats_.readFaults);
    w.u64(stats_.writeFaults);
    w.u64(stats_.pageTransfers);
    w.u64(stats_.invalidations);
    w.u64(stats_.messages);
    w.u64(stats_.retries);
    w.u64(stats_.timeouts);
    w.u64(stats_.duplicatesSuppressed);
    w.u64(stats_.timeoutCapCycles);
    w.u64(stats_.maxTimeoutCharged);
    w.u32(static_cast<Word>(stats_.perLinkRetries.size()));
    for (std::uint64_t r : stats_.perLinkRetries)
        w.u64(r);
    w.endSection();

    w.beginSection(kTagDsmNet);
    w.u32(static_cast<Word>(sendSeq_.size()));
    for (std::uint64_t s : sendSeq_)
        w.u64(s);
    for (std::uint64_t s : recvSeq_)
        w.u64(s);
    w.u64(rng_);
    w.endSection();

    unsigned machines = sharedMachine_ ? 1 : nodes();
    for (unsigned m = 0; m < machines; m++) {
        const sim::Machine &mach =
            sharedMachine_ ? *sharedMachine_ : *nodes_[m].machine;
        std::vector<Byte> blob = mach.checkpoint();
        w.beginSection(dsmMachineTag(m));
        w.u64(blob.size());
        w.bytes(blob.data(), blob.size());
        w.endSection();
    }

    return w.finish();
}

void
DsmCluster::restore(const std::vector<Byte> &image)
{
    sim::SnapshotImage img(image);

    sim::SnapshotReader cfg = img.section(kTagDsmConfig);
    auto check = [&cfg](const char *field, std::uint64_t image_v,
                        std::uint64_t live_v) {
        if (image_v != live_v) {
            cfg.fail(std::string("dsm config mismatch: ") + field +
                     " is " + std::to_string(image_v) +
                     " in the image but " + std::to_string(live_v) +
                     " in this cluster");
        }
    };
    check("nodes", cfg.u32(), config_.nodes);
    check("base", cfg.u32(), config_.base);
    check("bytes", cfg.u32(), config_.bytes);
    check("mode", cfg.u32(), static_cast<Word>(config_.mode));
    check("sharedMachine", cfg.boolean(), config_.sharedMachine);
    check("fastInterpreter", cfg.boolean(), config_.fastInterpreter);
    check("hardwareExtensions", cfg.boolean(),
          config_.hardwareExtensions);
    check("unreliableNetwork", cfg.boolean(),
          config_.unreliableNetwork);
    check("memBytes", cfg.u64(), config_.memBytes);
    cfg.expectEnd();

    // Parse and validate every cluster-level payload into locals
    // before mutating anything.
    sim::SnapshotReader pr = img.section(kTagDsmPages);
    Word npages = pr.u32();
    if (npages != pages_.size())
        pr.fail("page count mismatch");
    std::vector<PageInfo> pages(npages);
    for (PageInfo &p : pages) {
        p.owner = pr.u32();
        if (p.owner >= config_.nodes)
            pr.fail("page owner out of range");
        p.states.resize(config_.nodes);
        for (DsmPageState &s : p.states) {
            std::uint8_t raw = pr.u8();
            if (raw > static_cast<std::uint8_t>(DsmPageState::Writable))
                pr.fail("bad page state");
            s = static_cast<DsmPageState>(raw);
        }
    }
    pr.expectEnd();

    sim::SnapshotReader sr = img.section(kTagDsmStats);
    DsmStats stats;
    stats.readFaults = sr.u64();
    stats.writeFaults = sr.u64();
    stats.pageTransfers = sr.u64();
    stats.invalidations = sr.u64();
    stats.messages = sr.u64();
    stats.retries = sr.u64();
    stats.timeouts = sr.u64();
    stats.duplicatesSuppressed = sr.u64();
    stats.timeoutCapCycles = sr.u64();
    stats.maxTimeoutCharged = sr.u64();
    Word nlinkstats = sr.u32();
    if (nlinkstats != stats_.perLinkRetries.size())
        sr.fail("per-link retry counter count mismatch");
    stats.perLinkRetries.resize(nlinkstats);
    for (std::uint64_t &r : stats.perLinkRetries)
        r = sr.u64();
    sr.expectEnd();

    sim::SnapshotReader nr = img.section(kTagDsmNet);
    Word nlinks = nr.u32();
    if (nlinks != sendSeq_.size())
        nr.fail("link count mismatch");
    std::vector<std::uint64_t> send(nlinks), recv(nlinks);
    for (std::uint64_t &s : send)
        s = nr.u64();
    for (std::uint64_t &s : recv)
        s = nr.u64();
    std::uint64_t rng = nr.u64();
    nr.expectEnd();

    unsigned machines = sharedMachine_ ? 1u : nodes();
    for (const sim::SnapshotSection &sec : img.sections()) {
        if (sec.tag == kTagDsmConfig || sec.tag == kTagDsmPages ||
            sec.tag == kTagDsmStats || sec.tag == kTagDsmNet) {
            continue;
        }
        bool known = false;
        for (unsigned m = 0; m < machines && !known; m++)
            known = sec.tag == dsmMachineTag(m);
        if (!known) {
            throw sim::SnapshotError(
                "dsm image carries section '" +
                sim::snapshotTagName(sec.tag) +
                "' this cluster has no consumer for");
        }
    }

    // Machine restores validate their own images in full before
    // mutating; the directory/state commit below happens only after
    // every machine accepted its blob.
    for (unsigned m = 0; m < machines; m++) {
        sim::SnapshotReader mr = img.section(dsmMachineTag(m));
        std::uint64_t len = mr.u64();
        if (len != mr.remaining())
            mr.fail("machine blob length mismatch");
        std::vector<Byte> blob(len);
        mr.bytes(blob.data(), blob.size());
        mr.expectEnd();
        sim::Machine &mach =
            sharedMachine_ ? *sharedMachine_ : *nodes_[m].machine;
        mach.restore(blob);
    }

    pages_ = std::move(pages);
    stats_ = stats;
    sendSeq_ = std::move(send);
    recvSeq_ = std::move(recv);
    rng_ = rng;
}

Cycles
DsmCluster::totalCycles() const
{
    Cycles total = 0;
    if (sharedMachine_) {
        for (unsigned i = 0; i < sharedMachine_->numHarts(); i++)
            total += sharedMachine_->hart(i).cycles();
    } else {
        for (const Node &n : nodes_)
            total += n.machine->cpu().cycles();
    }
    return total;
}

} // namespace uexc::apps
