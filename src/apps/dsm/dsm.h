/**
 * @file
 * Page-based distributed shared memory in the style of Li & Hudak's
 * IVY — the "distributed virtual memory" use of exceptions the paper
 * cites. Each node is a complete simulated machine (its own CPU,
 * TLB, kernel, and exception runtime); a shared region is kept
 * coherent with a single-manager write-invalidate protocol driven
 * entirely by memory-protection faults:
 *
 *   - a read of an Invalid page faults; the handler fetches the page
 *     from its owner (network latency + per-word copy charged), maps
 *     it read-only, and joins the copyset;
 *   - a write to a non-exclusive page faults; the handler invalidates
 *     every other copy, takes ownership, and maps read-write.
 *
 * The DSM fault handler is where exception-delivery cost matters: on
 * a slow 1994 network it is noise, but the faster the interconnect,
 * the larger the fraction of a page miss the dispatch path becomes —
 * bench_dsm sweeps exactly that.
 */

#ifndef UEXC_APPS_DSM_DSM_H
#define UEXC_APPS_DSM_DSM_H

#include <memory>
#include <vector>

#include "core/env.h"
#include "os/kernel.h"

namespace uexc::apps {

/** Per-node page state. */
enum class DsmPageState
{
    Invalid,
    ReadShared,
    Writable,
};

/** Cluster statistics. */
struct DsmStats
{
    std::uint64_t readFaults = 0;
    std::uint64_t writeFaults = 0;
    std::uint64_t pageTransfers = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t messages = 0;
    // unreliable-network mode only:
    std::uint64_t retries = 0;              ///< retransmissions sent
    std::uint64_t timeouts = 0;             ///< timeouts awaited
    std::uint64_t duplicatesSuppressed = 0; ///< dups dropped by seqno
    /** The effective retransmit-timeout ceiling (config echo), so a
     *  harness asserting tail-latency bounds reads the bound and the
     *  observations from one place. */
    Cycles timeoutCapCycles = 0;
    /** Largest single timeout actually charged; never exceeds
     *  timeoutCapCycles. */
    Cycles maxTimeoutCharged = 0;
    /** Retransmissions per ordered (from,to) link, indexed
     *  from * nodes + to — the per-link retry histogram a fleet soak
     *  uses to spot one systematically lossy path. */
    std::vector<std::uint64_t> perLinkRetries;
};

/**
 * A cluster of simulated nodes sharing one coherent region.
 */
class DsmCluster
{
  public:
    struct Config
    {
        unsigned nodes = 2;
        Addr base = 0x40000000;
        Word bytes = 16 * os::kPageBytes;
        rt::DeliveryMode mode = rt::DeliveryMode::FastSoftware;
        /** One-way message latency in cycles (1994 Ethernet at
         *  25 MHz: ~25k cycles / 1 ms; modern fabrics far less). */
        Cycles networkLatencyCycles = 25000;
        /** Per-word page copy cost (DMA/wire time). */
        Cycles copyPerWordCycles = 1;
        bool hardwareExtensions = true;
        /** Run every node on the predecoded fast interpreter. */
        bool fastInterpreter = false;
        /** Per-machine physical memory; 0 = the paper-machine
         *  default. The fleet harness shrinks this so several
         *  clusters fit in host RAM alongside dozens of guests. */
        std::size_t memBytes = 0;
        /**
         * Place all nodes on the harts of ONE machine (one kernel,
         * one physical memory) instead of a machine per node. Page
         * transfers then copy between the nodes' frames within the
         * same physical memory, and each node's dispatch runs in its
         * own hart's per-context state over the shared kernel.
         */
        bool sharedMachine = false;
        /** Host scheduler for the shared machine (sharedMachine mode
         *  only; per-node machines are single-hart and always serial).
         *  Barrier keeps the cluster bit-identical to Serial. */
        sim::SchedulerMode scheduler = sim::SchedulerMode::Auto;
        /**
         * Unreliable-network mode: messages may be lost, duplicated,
         * or delayed, seeded-deterministically. Lost messages cost a
         * timeout (doubling per retry) and a retransmission; duplicates
         * are suppressed by per-link sequence numbers. Protocol state
         * only ever changes after a send succeeds, so a lossy run
         * converges to the same memory contents as a lossless one.
         */
        bool unreliableNetwork = false;
        std::uint64_t networkSeed = 1;
        unsigned lossPercent = 0;   ///< per-transmission loss chance
        unsigned dupPercent = 0;    ///< delivered-twice chance
        unsigned delayPercent = 0;  ///< extra-delay chance
        Cycles delayCycles = 5000;  ///< extra latency when delayed
        Cycles timeoutCycles = 50000;  ///< initial retransmit timeout
        /** Ceiling for the doubling retransmit timeout. Unbounded
         *  doubling up to maxRetries made the worst-case wait grow
         *  2^16 beyond the initial timeout; the cap bounds the tail
         *  so a partition is declared after a bounded (and
         *  assertable) number of cycles. */
        Cycles timeoutCapCycles = 8 * 50000;
        unsigned maxRetries = 16;   ///< then GuestError (partition)
    };

    explicit DsmCluster(const Config &config);
    ~DsmCluster();

    unsigned nodes() const { return static_cast<unsigned>(
        nodes_.size()); }

    /** Coherent word read on a node. */
    Word read(unsigned node, Addr va);
    /** Coherent word write on a node. */
    void write(unsigned node, Addr va, Word value);

    /** Page state as seen by a node (for tests). */
    DsmPageState state(unsigned node, Addr va) const;
    /** Current owner of the page containing @p va. */
    unsigned ownerOf(Addr va) const;

    const DsmStats &stats() const { return stats_; }
    /** Total simulated cycles across all nodes. */
    Cycles totalCycles() const;

    /**
     * Serialize the whole cluster: directory (owner + per-node page
     * states), protocol statistics, per-link sequence numbers, the
     * network RNG, and a nested machine snapshot per simulated
     * machine (each carrying its kernel and UserEnv sections, which
     * boot()/install() registered during construction). restore()
     * targets a cluster built with an identical Config — the config
     * echo in the image is validated field by field, and any mismatch
     * or corruption raises sim::SnapshotError before cluster state is
     * touched. Only meaningful between read()/write() operations
     * (never from inside a fault handler).
     */
    std::vector<Byte> checkpoint() const;
    void restore(const std::vector<Byte> &image);

  private:
    struct Node
    {
        /** Null on every node in shared-machine mode (see shared_). */
        std::unique_ptr<sim::Machine> machine;
        std::unique_ptr<os::Kernel> kernel;
        std::unique_ptr<rt::UserEnv> env;
    };

    struct PageInfo
    {
        unsigned owner = 0;
        std::vector<DsmPageState> states;   // per node
    };

    unsigned pageIndex(Addr va) const;
    void onFault(unsigned node, rt::Fault &fault);
    void fetchPage(unsigned to_node, Addr page);
    void setProtection(unsigned node, Addr page, DsmPageState state,
                       bool in_handler);
    void chargeMessage(unsigned node);
    /**
     * One protocol message from @p from to @p to, charged to
     * @p node's clock. On a reliable network this is exactly
     * chargeMessage(node); in unreliable mode it runs the
     * loss/timeout/retry/duplicate machinery.
     */
    void sendMessage(unsigned node, unsigned from, unsigned to);
    bool roll(unsigned pct);
    unsigned pairIndex(unsigned from, unsigned to) const;
    sim::Machine &machineOf(unsigned node);

    Config config_;
    /** The one machine/kernel in shared-machine mode. */
    std::unique_ptr<sim::Machine> sharedMachine_;
    std::unique_ptr<os::Kernel> sharedKernel_;
    std::vector<Node> nodes_;
    std::vector<PageInfo> pages_;
    DsmStats stats_;
    /** Per ordered (from,to) link: next seqno to send / expect. */
    std::vector<std::uint64_t> sendSeq_, recvSeq_;
    std::uint64_t rng_ = 0;
};

} // namespace uexc::apps

#endif // UEXC_APPS_DSM_DSM_H
