#include "apps/lazy/lazy.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::apps {

using sim::ExcCode;

namespace {
constexpr Word kTag = 2;
} // namespace

// -- LazyArena -----------------------------------------------------------------

LazyArena::LazyArena(rt::UserEnv &env, Addr base, Word bytes)
    : env_(env), bump_(base), limit_(base + bytes), mapped_(base)
{
    if (!isAligned(base, os::kPageBytes))
        UEXC_FATAL("lazy arena base not page aligned");
}

Addr
LazyArena::alloc(unsigned words)
{
    Addr addr = bump_;
    bump_ += 4 * words;
    if (bump_ > limit_)
        UEXC_FATAL("lazy arena exhausted");
    while (mapped_ < bump_) {
        env_.allocate(mapped_, os::kPageBytes);
        mapped_ += os::kPageBytes;
    }
    return addr;
}

// -- UnboundedList --------------------------------------------------------------

UnboundedList::UnboundedList(LazyArena &arena, Generator generator)
    : arena_(arena), generator_(std::move(generator))
{
    arena_.env().setHandler([this](rt::Fault &f) { onFault(f); });
    head_ = makeCell(0);
}

Addr
UnboundedList::makeCell(unsigned index)
{
    Addr cell = arena_.alloc(2);
    arena_.env().store(cell, generator_(index));
    // the tail is unevaluated: store the tagged continuation index
    arena_.env().store(cell + 4, ((index + 1) << 2) | kTag);
    count_++;
    return cell;
}

Word
UnboundedList::datum(Addr cell)
{
    return arena_.env().load(cell);
}

Addr
UnboundedList::next(Addr cell)
{
    lastNextCell_ = cell + 4;
    Word w = arena_.env().load(cell + 4);
    // touch through the pointer: an unevaluated tail faults here and
    // the handler extends the list
    arena_.env().load(w);
    return arena_.env().load(cell + 4);
}

void
UnboundedList::onFault(rt::Fault &fault)
{
    if (fault.code() != ExcCode::AdEL || (fault.badVaddr() & 3) != kTag)
        UEXC_FATAL("unbounded list: unexpected fault %s at 0x%08x",
                   sim::excName(fault.code()), fault.badVaddr());
    faults_++;
    unsigned index = fault.badVaddr() >> 2;
    Addr cell = makeCell(index);
    arena_.env().store(lastNextCell_, cell);
    fault.setReg(sim::T6, cell);
}

// -- FutureCell ------------------------------------------------------------------

FutureCell::FutureCell(LazyArena &arena, Producer producer)
    : arena_(arena), producer_(std::move(producer))
{
    arena_.env().setHandler([this](rt::Fault &f) { onFault(f); });
    valueBox_ = arena_.alloc(1);
    cell_ = arena_.alloc(1);
    // unresolved: the cell points at the value box, tagged unaligned
    arena_.env().store(cell_, valueBox_ | kTag);
}

void
FutureCell::resolve()
{
    if (resolved_)
        return;
    arena_.env().store(valueBox_, producer_());
    arena_.env().store(cell_, valueBox_);   // aligned: resolved
    resolved_ = true;
}

Word
FutureCell::value()
{
    Word w = arena_.env().load(cell_);
    // touching through an unresolved (tagged) pointer faults; the
    // handler runs the producer and repairs the pointer
    return arena_.env().load(w);
}

void
FutureCell::onFault(rt::Fault &fault)
{
    if (fault.code() != ExcCode::AdEL || (fault.badVaddr() & 3) != kTag)
        UEXC_FATAL("future: unexpected fault %s at 0x%08x",
                   sim::excName(fault.code()), fault.badVaddr());
    faults_++;
    // in a threaded system the consumer would block here; in this
    // single-threaded reproduction the producer runs in the handler
    arena_.env().store(valueBox_, producer_());
    arena_.env().store(cell_, valueBox_);
    resolved_ = true;
    fault.setReg(sim::T6, valueBox_);
}

// -- FullEmptyCell ----------------------------------------------------------------

FullEmptyCell::FullEmptyCell(LazyArena &arena, Filler on_empty_read)
    : arena_(arena), filler_(std::move(on_empty_read))
{
    arena_.env().setHandler([this](rt::Fault &f) { onFault(f); });
    valueBox_ = arena_.alloc(1);
    cell_ = arena_.alloc(1);
    arena_.env().store(cell_, valueBox_ | kTag);   // empty
}

Word
FullEmptyCell::read()
{
    Word w = arena_.env().load(cell_);
    return arena_.env().load(w);
}

void
FullEmptyCell::write(Word value)
{
    arena_.env().store(valueBox_, value);
    arena_.env().store(cell_, valueBox_);
    full_ = true;
}

Word
FullEmptyCell::take()
{
    Word v = read();
    arena_.env().store(cell_, valueBox_ | kTag);
    full_ = false;
    return v;
}

void
FullEmptyCell::onFault(rt::Fault &fault)
{
    if (fault.code() != ExcCode::AdEL || (fault.badVaddr() & 3) != kTag)
        UEXC_FATAL("full/empty: unexpected fault %s at 0x%08x",
                   sim::excName(fault.code()), fault.badVaddr());
    faults_++;
    // an empty read: the registered filler stands in for the blocked
    // producer hand-off
    arena_.env().store(valueBox_, filler_());
    arena_.env().store(cell_, valueBox_);
    full_ = true;
    fault.setReg(sim::T6, valueBox_);
}

} // namespace uexc::apps
