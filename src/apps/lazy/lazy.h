/**
 * @file
 * Unaligned-pointer language-runtime techniques (section 4.2.1):
 *
 *  - UnboundedList: an incrementally materialized (potentially
 *    infinite) linked list. The unevaluated tail is denoted by an
 *    unaligned pointer in the last cell; walking into it faults, and
 *    the handler extends the list with the next element — no explicit
 *    "force" calls in the consumer.
 *
 *  - FutureCell: a future represented as an unaligned pointer while
 *    unresolved (the APRIL/Alewife representation the paper cites).
 *    Touching an unresolved future faults; the handler runs the
 *    producer, aligns the pointer, and the consumer proceeds.
 *
 *  - FullEmptyCell: full/empty-bit synchronization through a
 *    potentially-unaligned indirection word, emulating Tera-style
 *    tagged memory on conventional hardware.
 *
 * All structures live in simulated memory behind a rt::UserEnv; the
 * faults run the configured delivery path, so the techniques'
 * viability can be compared across Ultrix signals, the fast software
 * scheme, and hardware vectoring.
 */

#ifndef UEXC_APPS_LAZY_LAZY_H
#define UEXC_APPS_LAZY_LAZY_H

#include <functional>

#include "core/env.h"

namespace uexc::apps {

/**
 * Arena allocator inside the simulated heap, shared by the lazy
 * structures (plain bump allocation; no collection).
 */
class LazyArena
{
  public:
    LazyArena(rt::UserEnv &env, Addr base, Word bytes);

    /** Allocate @p words words (word-aligned, zeroed by mapping). */
    Addr alloc(unsigned words);

    rt::UserEnv &env() { return env_; }

  private:
    rt::UserEnv &env_;
    Addr bump_;
    Addr limit_;
    Addr mapped_;
};

/**
 * The unbounded list. Cell layout: [datum, next]; "next" is either an
 * aligned cell address (evaluated) or (index << 2) | 2 (unevaluated
 * continuation of the generator at that index).
 */
class UnboundedList
{
  public:
    /** Produces the datum for element @p index. */
    using Generator = std::function<Word(unsigned index)>;

    /**
     * The list's fault handler is installed on the environment;
     * exactly one lazy structure can own the handler at a time.
     */
    UnboundedList(LazyArena &arena, Generator generator);

    /** Head cell (element 0 is materialized on construction). */
    Addr head() const { return head_; }

    /** Element datum. */
    Word datum(Addr cell);
    /**
     * Next cell; materializes it through the unaligned-access fault
     * if it has not been evaluated yet.
     */
    Addr next(Addr cell);

    /** Number of cells materialized so far. */
    unsigned materialized() const { return count_; }
    std::uint64_t faults() const { return faults_; }

  private:
    Addr makeCell(unsigned index);
    void onFault(rt::Fault &fault);

    LazyArena &arena_;
    Generator generator_;
    Addr head_ = 0;
    unsigned count_ = 0;
    std::uint64_t faults_ = 0;
    Addr lastNextCell_ = 0;
};

/**
 * A future: one word that is (addr | 2) while unresolved and a plain
 * aligned address once resolved. Consumers call value(); if the
 * producer has not run, the unaligned fault triggers it.
 */
class FutureCell
{
  public:
    /** Producer computes the future's value. */
    using Producer = std::function<Word()>;

    FutureCell(LazyArena &arena, Producer producer);

    /** Explicitly resolve (the producer side). */
    void resolve();

    /**
     * Consume: returns the value, forcing resolution through the
     * fault path if needed.
     */
    Word value();

    bool resolved() const { return resolved_; }
    std::uint64_t faults() const { return faults_; }

  private:
    void onFault(rt::Fault &fault);

    LazyArena &arena_;
    Producer producer_;
    Addr cell_;       ///< holds the (possibly tagged) value pointer
    Addr valueBox_;   ///< holds the value itself
    bool resolved_ = false;
    std::uint64_t faults_ = 0;
};

/**
 * Full/empty-bit synchronization: read blocks (here: triggers the
 * registered filler) when empty; write fills. The cell is an
 * indirection word that is unaligned while empty.
 */
class FullEmptyCell
{
  public:
    using Filler = std::function<Word()>;

    FullEmptyCell(LazyArena &arena, Filler on_empty_read);

    /** Synchronizing read: faults and fills if empty. */
    Word read();
    /** Write and mark full. */
    void write(Word value);
    /** Consume and mark empty again. */
    Word take();

    bool full() const { return full_; }
    std::uint64_t faults() const { return faults_; }

  private:
    void onFault(rt::Fault &fault);

    LazyArena &arena_;
    Filler filler_;
    Addr cell_;
    Addr valueBox_;
    bool full_ = false;
    std::uint64_t faults_ = 0;
};

} // namespace uexc::apps

#endif // UEXC_APPS_LAZY_LAZY_H
