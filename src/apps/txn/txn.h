/**
 * @file
 * Transaction support via memory protection — the use of exceptions
 * for "transaction support [Chang & Mergen 88]" in the paper's
 * opening list of runtime techniques.
 *
 * A transactional region is write-protected when a transaction
 * begins. The first store into each page faults; the handler logs the
 * page's before-image (undo log) and re-enables access — under the
 * fast scheme with eager amplification the kernel has already
 * re-enabled it, so the handler only copies. Commit discards the
 * undo log and re-arms protection for the next transaction; abort
 * restores every logged page.
 *
 * This is exactly the write-detection pattern of the GC barrier, but
 * with page-granularity *data* capture, so the per-fault work is
 * heavier (a 4 KB copy through the simulated memory system) and the
 * exception dispatch is a correspondingly smaller fraction — the
 * bench quantifies both.
 */

#ifndef UEXC_APPS_TXN_TXN_H
#define UEXC_APPS_TXN_TXN_H

#include <unordered_map>
#include <vector>

#include "core/env.h"

namespace uexc::apps {

/** Transaction statistics. */
struct TxnStats
{
    std::uint64_t begun = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t pageFaults = 0;     ///< first-touch logging faults
    std::uint64_t pagesLogged = 0;
    std::uint64_t pagesRestored = 0;
};

/**
 * A transactional memory region. One transaction at a time (the
 * 1988-style recoverable-storage model, not concurrency control).
 */
class TxnRegion
{
  public:
    /**
     * @param env    installed environment (region pages allocated
     *               here)
     * @param base   page-aligned region base
     * @param bytes  page-multiple region size
     */
    TxnRegion(rt::UserEnv &env, Addr base, Word bytes);

    /** Begin a transaction: the whole region becomes write-detected. */
    void begin();
    /** Commit: keep all changes, drop the undo log. */
    void commit();
    /** Abort: restore every modified page's before-image. */
    void abort();

    bool active() const { return active_; }

    /** Transactional accesses. */
    void store(Addr addr, Word value);
    Word load(Addr addr);

    /** Pages dirtied by the current transaction. */
    unsigned dirtyPages() const
    {
        return static_cast<unsigned>(undoLog_.size());
    }
    const TxnStats &stats() const { return stats_; }

  private:
    void onFault(rt::Fault &fault);
    void checkInRegion(Addr addr) const;

    rt::UserEnv &env_;
    Addr base_;
    Word bytes_;
    bool active_ = false;
    TxnStats stats_;
    /** page va -> before-image */
    std::unordered_map<Addr, std::vector<Word>> undoLog_;
};

} // namespace uexc::apps

#endif // UEXC_APPS_TXN_TXN_H
