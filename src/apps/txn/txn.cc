#include "apps/txn/txn.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::apps {

using namespace os;

TxnRegion::TxnRegion(rt::UserEnv &env, Addr base, Word bytes)
    : env_(env), base_(base), bytes_(bytes)
{
    if (!isAligned(base, kPageBytes) || !isAligned(bytes, kPageBytes) ||
        bytes == 0) {
        UEXC_FATAL("txn: region must be page aligned and non-empty");
    }
    env_.allocate(base, bytes);
    env_.setHandler([this](rt::Fault &f) { onFault(f); });
    if (env_.mode() == rt::DeliveryMode::FastSoftware)
        env_.setEagerAmplify(true);
}

void
TxnRegion::checkInRegion(Addr addr) const
{
    if (addr < base_ || addr + 4 > base_ + bytes_)
        UEXC_FATAL("txn: access at 0x%08x outside the region", addr);
}

void
TxnRegion::begin()
{
    if (active_)
        UEXC_FATAL("txn: begin with a transaction already active");
    active_ = true;
    stats_.begun++;
    undoLog_.clear();
    // arm write detection over the whole region
    env_.protect(base_, bytes_, kProtRead);
}

void
TxnRegion::commit()
{
    if (!active_)
        UEXC_FATAL("txn: commit with no active transaction");
    active_ = false;
    stats_.committed++;
    undoLog_.clear();
    // leave the region writable until the next begin()
    env_.protect(base_, bytes_, kProtRead | kProtWrite);
}

void
TxnRegion::abort()
{
    if (!active_)
        UEXC_FATAL("txn: abort with no active transaction");
    active_ = false;
    stats_.aborted++;
    // restore before-images through the simulated memory system
    for (const auto &[page, image] : undoLog_) {
        for (unsigned i = 0; i < image.size(); i++)
            env_.store(page + 4 * i, image[i]);
        stats_.pagesRestored++;
    }
    undoLog_.clear();
    env_.protect(base_, bytes_, kProtRead | kProtWrite);
}

void
TxnRegion::store(Addr addr, Word value)
{
    checkInRegion(addr);
    env_.store(addr, value);
}

Word
TxnRegion::load(Addr addr)
{
    checkInRegion(addr);
    return env_.load(addr);
}

void
TxnRegion::onFault(rt::Fault &fault)
{
    Addr page = roundDown(fault.badVaddr(), kPageBytes);
    if (!active_ || page < base_ || page >= base_ + bytes_)
        UEXC_FATAL("txn: unexpected fault at 0x%08x (%s)",
                   fault.badVaddr(), sim::excName(fault.code()));
    stats_.pageFaults++;

    // capture the before-image (4 KB of reads through the simulated
    // memory system: this is the part exception dispatch does NOT
    // dominate, unlike the GC barrier)
    std::vector<Word> image(kPageBytes / 4);
    for (unsigned i = 0; i < image.size(); i++)
        image[i] = env_.load(page + 4 * i);
    undoLog_.emplace(page, std::move(image));
    stats_.pagesLogged++;

    // re-enable write access for the rest of the transaction
    switch (env_.mode()) {
      case rt::DeliveryMode::UltrixSignal:
        env_.protect(page, kPageBytes, kProtRead | kProtWrite);
        break;
      case rt::DeliveryMode::FastHardwareVector:
        env_.userTlbModify(page, true, true);
        break;
      case rt::DeliveryMode::FastSoftware:
        // eager amplification did it in-kernel; align the page table
        // so later TLB refills do not re-arm detection mid-txn
        env_.process().as().amplify(page);
        break;
    }
}

} // namespace uexc::apps
