#include "apps/fleet/fleet.h"

#include <algorithm>
#include <map>

#include "apps/dsm/dsm.h"
#include "common/guesterror.h"
#include "common/logging.h"
#include "sim/faultinject.h"
#include "sim/snapshot.h"

namespace uexc::apps::fleet {

using rt::chaos::Rig;
using rt::migrate::MigrateErrorKind;

namespace {

constexpr std::size_t kMaxFailureNotes = 32;

std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a * 0x9E3779B97F4A7C15ull + b;
    return sim::FaultInjector::splitmix64(s);
}

} // namespace

/** One guest slot: a chaos rig mid-campaign, or a DSM pair. */
struct Fleet::Guest
{
    unsigned id = 0;
    unsigned host = 0;
    bool isDsm = false;
    bool fastInterpreter = false;

    // chaos guests
    unsigned campaignIndex = 0;
    bool mayDiagnose = false;
    std::unique_ptr<sim::FaultInjector> injector;
    std::unique_ptr<Rig> rig;

    // DSM guests
    DsmCluster::Config dsmConfig;
    std::unique_ptr<DsmCluster> dsm;
    /** Host-side oracle: last value written to each shared word. */
    std::map<Addr, Word> expected;
};

Cycles
FleetStats::downtimePercentile(double p) const
{
    if (downtimeCycles.empty())
        return 0;
    std::vector<Cycles> sorted = downtimeCycles;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * double(sorted.size() - 1);
    return sorted[std::size_t(rank + 0.5)];
}

Fleet::Fleet(const FleetConfig &config)
    : config_(config)
{
    rng_ = mix(config.seed, 0x666C6565746E6Full /* "fleetn" */);
    stats_.perHostArrivals.assign(std::max(config.hosts, 1u), 0);

    unsigned dsm_count = std::min(config.dsmGuests, config.guests);
    for (unsigned i = 0; i < config.guests; i++) {
        auto g = std::make_unique<Guest>();
        g->id = i;
        g->host = config.hosts != 0 ? i % config.hosts : 0;
        // DSM pairs are spread through the id space, not clustered
        // at the front, so migrations hit both kinds early.
        g->isDsm = dsm_count != 0 &&
                   (std::uint64_t(i) * dsm_count) % config.guests <
                       dsm_count;
        g->fastInterpreter = i % 2 == 1;
        if (g->isDsm) {
            DsmCluster::Config dc;
            dc.nodes = 2;
            dc.bytes = 4 * os::kPageBytes;
            dc.memBytes = config.guestMemBytes;
            dc.fastInterpreter = g->fastInterpreter;
            dc.unreliableNetwork = true;
            dc.networkSeed = mix(config.seed, 0xD500 + i);
            dc.lossPercent = 5;
            dc.dupPercent = 5;
            dc.delayPercent = 10;
            g->dsmConfig = dc;
            g->dsm = std::make_unique<DsmCluster>(dc);
        }
        guests_.push_back(std::move(g));
    }
}

Fleet::~Fleet() = default;

std::uint64_t
Fleet::rng()
{
    return sim::FaultInjector::splitmix64(rng_);
}

chaos::RigConfig
Fleet::rigConfigFor(const Guest &guest) const
{
    chaos::RigConfig rc;
    rc.fastInterpreter = guest.fastInterpreter;
    rc.scheduler = config_.scheduler;
    rc.memBytes = config_.guestMemBytes;
    return rc;
}

const chaos::Reference &
Fleet::referenceFor(bool fast_interpreter)
{
    unsigned i = fast_interpreter ? 1 : 0;
    if (!references_[i]) {
        chaos::RigConfig rc;
        rc.fastInterpreter = fast_interpreter;
        rc.scheduler = config_.scheduler;
        rc.memBytes = config_.guestMemBytes;
        references_[i] = std::make_unique<chaos::Reference>(
            chaos::makeReference(rc));
    }
    return *references_[i];
}

void
Fleet::recordFailure(Guest &guest, const std::string &what)
{
    stats_.hostFailures++;
    if (stats_.failureNotes.size() < kMaxFailureNotes) {
        stats_.failureNotes.push_back(
            "guest " + std::to_string(guest.id) + " (host " +
            std::to_string(guest.host) + "): " + what);
    }
    if (config_.reproDir.empty() ||
        stats_.reprosWritten.size() >= config_.maxRepros) {
        return;
    }
    try {
        std::vector<Byte> image = guest.isDsm
                                      ? guest.dsm->checkpoint()
                                      : guest.rig->checkpoint();
        std::string path = config_.reproDir + "/fleet-guest" +
                           std::to_string(guest.id) + "-f" +
                           std::to_string(stats_.hostFailures) +
                           ".uxsn";
        sim::writeSnapshotFile(path, image);
        stats_.reprosWritten.push_back(path);
    } catch (const std::exception &e) {
        UEXC_WARN("fleet: repro dump failed: %s", e.what());
    }
}

void
Fleet::startCampaign(Guest &guest)
{
    guest.injector = std::make_unique<sim::FaultInjector>();
    guest.rig = std::make_unique<Rig>(guest.injector.get(),
                                      rigConfigFor(guest));
    const chaos::Reference &ref = referenceFor(guest.fastInterpreter);
    std::uint64_t seed =
        mix(mix(config_.seed, guest.id), guest.campaignIndex);
    bool may = false;
    for (const sim::FaultEvent &e :
         chaos::planEvents(seed, ref.window, *guest.rig, &may)) {
        guest.injector->addEvent(e);
    }
    guest.mayDiagnose = may;
    stats_.campaignsStarted++;
}

void
Fleet::finishCampaign(Guest &guest)
{
    const chaos::Reference &ref = referenceFor(guest.fastInterpreter);
    if (guest.rig->words() == ref.words) {
        stats_.campaignsConverged++;
    } else {
        recordFailure(guest,
                      "campaign " +
                          std::to_string(guest.campaignIndex) +
                          " diverged from the fault-free reference");
    }
    guest.campaignIndex++;
    guest.rig.reset();
    guest.injector.reset();
}

void
Fleet::stepChaosGuest(Guest &guest, unsigned ops)
{
    if (!guest.rig)
        startCampaign(guest);
    unsigned before = guest.rig->cursor();
    unsigned target =
        std::min(before + ops, unsigned(chaos::kTotalOps));
    try {
        guest.rig->runTo(target);
        stats_.chaosOpsRun += guest.rig->cursor() - before;
    } catch (const GuestError &e) {
        stats_.chaosOpsRun += guest.rig->cursor() - before;
        if (guest.mayDiagnose) {
            stats_.campaignsDiagnosed++;
        } else {
            recordFailure(guest,
                          std::string("unplanned diagnosis: ") +
                              e.what());
        }
        guest.campaignIndex++;
        guest.rig.reset();
        guest.injector.reset();
        return;
    }
    if (guest.rig->done())
        finishCampaign(guest);
}

void
Fleet::stepDsmGuest(Guest &guest, unsigned ops)
{
    const DsmCluster::Config &dc = guest.dsmConfig;
    Word words = dc.bytes / 4;
    for (unsigned i = 0; i < ops; i++) {
        unsigned node = unsigned(rng() % dc.nodes);
        Addr va = dc.base + Addr(rng() % words) * 4;
        if (rng() % 2 == 0) {
            Word value = Word(rng());
            guest.dsm->write(node, va, value);
            guest.expected[va] = value;
        } else {
            Word got = guest.dsm->read(node, va);
            auto it = guest.expected.find(va);
            if (it != guest.expected.end()) {
                if (got != it->second) {
                    recordFailure(
                        guest,
                        "dsm oracle mismatch at " +
                            std::to_string(va) + ": read " +
                            std::to_string(got) + ", expected " +
                            std::to_string(it->second));
                    return;
                }
                stats_.dsmReadsVerified++;
            }
        }
        stats_.dsmOpsRun++;
    }
}

void
Fleet::verifyDsmGuest(Guest &guest)
{
    for (const auto &[va, expect] : guest.expected) {
        for (unsigned node = 0; node < guest.dsmConfig.nodes;
             node++) {
            Word got = guest.dsm->read(node, va);
            if (got != expect) {
                recordFailure(guest,
                              "end-of-soak dsm mismatch at " +
                                  std::to_string(va) + " on node " +
                                  std::to_string(node));
                return;
            }
            stats_.dsmReadsVerified++;
        }
    }
}

void
Fleet::migrateGuest(Guest &guest, unsigned migration_index)
{
    rt::migrate::MigrationConfig mc;
    mc.transport = config_.transport;
    mc.transport.seed = rng();
    bool partition = config_.partitionEvery != 0 &&
                     (migration_index + 1) % config_.partitionEvery ==
                         0;
    if (partition) {
        // deliberate partition: graceful-degradation drill
        mc.transport.lossPercent = 100;
        mc.transport.maxRetries =
            std::min(mc.transport.maxRetries, 4u);
        stats_.partitionsInjected++;
    } else {
        mc.transport.lossPercent = unsigned(rng() % 12);
        mc.transport.corruptPercent = unsigned(rng() % 10);
        mc.transport.dupPercent = unsigned(rng() % 8);
        mc.transport.delayPercent = unsigned(rng() % 15);
    }

    unsigned dst_host = config_.hosts != 0
                            ? unsigned(rng() % config_.hosts)
                            : 0;
    if (dst_host == guest.host && config_.hosts > 1)
        dst_host = (dst_host + 1) % config_.hosts;

    rt::migrate::MigrationResult result;
    std::unique_ptr<sim::FaultInjector> dst_injector;
    std::unique_ptr<Rig> dst_rig;
    std::unique_ptr<DsmCluster> dst_dsm;
    if (guest.isDsm) {
        dst_dsm = std::make_unique<DsmCluster>(guest.dsmConfig);
        result = rt::migrate::migrateImage(
            guest.dsm->checkpoint(),
            [&dst_dsm](const std::vector<Byte> &image) {
                dst_dsm->restore(image);
            },
            mc);
    } else {
        if (!guest.rig)
            startCampaign(guest);
        dst_injector = std::make_unique<sim::FaultInjector>();
        dst_rig = std::make_unique<Rig>(dst_injector.get(),
                                        rigConfigFor(guest));
        result = rt::migrate::migrateRig(*guest.rig, *dst_rig, mc);
    }

    stats_.migrationsAttempted++;
    stats_.framesSent += result.transport.framesSent;
    stats_.transportRetries += result.transport.retries;
    stats_.corruptDropped += result.transport.corruptDropped;
    stats_.duplicatesSuppressed +=
        result.transport.duplicatesSuppressed;
    stats_.maxTimeoutCharged = std::max(
        stats_.maxTimeoutCharged, result.transport.maxTimeoutCharged);

    if (result.succeeded) {
        stats_.migrationsSucceeded++;
        stats_.downtimeCycles.push_back(result.downtimeCycles);
        stats_.perHostArrivals[dst_host]++;
        guest.host = dst_host;
        if (guest.isDsm) {
            guest.dsm = std::move(dst_dsm);
        } else {
            guest.rig = std::move(dst_rig);
            guest.injector = std::move(dst_injector);
        }
    } else {
        // Graceful degradation: the source copy never stopped being
        // authoritative; the twin is discarded and the guest runs on.
        stats_.migrationsFailedByKind[unsigned(result.errorKind)]++;
    }
}

const FleetStats &
Fleet::run()
{
    unsigned ticks = config_.targetMigrations + config_.cooldownTicks;
    for (unsigned tick = 0; tick < ticks; tick++) {
        for (std::unique_ptr<Guest> &g : guests_) {
            if (g->isDsm)
                stepDsmGuest(*g, config_.opsPerTick);
            else
                stepChaosGuest(*g, config_.opsPerTick);
        }
        if (tick < config_.targetMigrations && !guests_.empty()) {
            Guest &victim = *guests_[rng() % guests_.size()];
            migrateGuest(victim, tick);
        }
        stats_.ticks++;
    }

    // End-of-soak convergence sweep: every chaos guest finishes its
    // campaign and is judged; every DSM word is read back everywhere.
    for (std::unique_ptr<Guest> &g : guests_) {
        if (g->isDsm) {
            verifyDsmGuest(*g);
        } else if (g->rig) {
            while (g->rig && !g->rig->done())
                stepChaosGuest(*g, chaos::kTotalOps);
        }
    }
    return stats_;
}

} // namespace uexc::apps::fleet
