#include "apps/fleet/fleet.h"

#include <algorithm>
#include <map>

#include "apps/dsm/dsm.h"
#include "common/guesterror.h"
#include "common/logging.h"
#include "sim/faultinject.h"
#include "sim/snapshot.h"

namespace uexc::apps::fleet {

using rt::chaos::Rig;
using rt::migrate::MigrateErrorKind;

namespace {

constexpr std::size_t kMaxFailureNotes = 32;

std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a * 0x9E3779B97F4A7C15ull + b;
    return sim::FaultInjector::splitmix64(s);
}

} // namespace

/** One generation of a guest's last-good checkpoint: the image plus
 *  the fleet-side state that does not travel inside it (campaign
 *  bookkeeping, the DSM expected-contents oracle). An empty image for
 *  a chaos guest means "between campaigns": restart boots a fresh
 *  campaign at the saved index. */
struct CheckpointGen
{
    bool valid = false;
    std::vector<Byte> image;
    unsigned campaignIndex = 0;
    bool mayDiagnose = false;
    std::map<Addr, Word> expected;
};

/** One guest slot: a chaos rig mid-campaign, or a DSM pair. */
struct Fleet::Guest
{
    unsigned id = 0;
    unsigned host = 0;
    bool isDsm = false;
    bool fastInterpreter = false;

    // chaos guests
    unsigned campaignIndex = 0;
    bool mayDiagnose = false;
    std::unique_ptr<sim::FaultInjector> injector;
    std::unique_ptr<Rig> rig;

    // DSM guests
    DsmCluster::Config dsmConfig;
    std::unique_ptr<DsmCluster> dsm;
    /** Host-side oracle: last value written to each shared word. */
    std::map<Addr, Word> expected;

    // supervision state
    bool wedged = false;  ///< drill: stops executing until restarted
    bool down = false;    ///< failed, awaiting a recovery decision
    rt::supervise::Action pendingAction =
        rt::supervise::Action::Restart;
    std::uint64_t opsRun = 0; ///< monotone heartbeat progress
    /** Newest checkpoint at [0], previous at [1]. */
    CheckpointGen good[2];
};

Cycles
FleetStats::downtimePercentile(double p) const
{
    if (downtimeCycles.empty())
        return 0;
    std::vector<Cycles> sorted = downtimeCycles;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * double(sorted.size() - 1);
    return sorted[std::size_t(rank + 0.5)];
}

Fleet::Fleet(const FleetConfig &config)
    : config_(config)
{
    rng_ = mix(config.seed, 0x666C6565746E6Full /* "fleetn" */);
    stats_.perHostArrivals.assign(std::max(config.hosts, 1u), 0);
    if (config.supervise) {
        rt::supervise::SupervisorConfig sc = config.supervisor;
        if (sc.seed == 1)
            sc.seed = mix(config.seed, 0x73757076ull /* "supv" */);
        supervisor_ =
            std::make_unique<rt::supervise::Supervisor>(sc);
        for (unsigned i = 0; i < config.guests; i++)
            supervisor_->track(i);
    }

    unsigned dsm_count = std::min(config.dsmGuests, config.guests);
    for (unsigned i = 0; i < config.guests; i++) {
        auto g = std::make_unique<Guest>();
        g->id = i;
        g->host = config.hosts != 0 ? i % config.hosts : 0;
        // DSM pairs are spread through the id space, not clustered
        // at the front, so migrations hit both kinds early.
        g->isDsm = dsm_count != 0 &&
                   (std::uint64_t(i) * dsm_count) % config.guests <
                       dsm_count;
        g->fastInterpreter = i % 2 == 1;
        if (g->isDsm) {
            DsmCluster::Config dc;
            dc.nodes = 2;
            dc.bytes = 4 * os::kPageBytes;
            dc.memBytes = config.guestMemBytes;
            dc.fastInterpreter = g->fastInterpreter;
            dc.unreliableNetwork = true;
            dc.networkSeed = mix(config.seed, 0xD500 + i);
            dc.lossPercent = 5;
            dc.dupPercent = 5;
            dc.delayPercent = 10;
            g->dsmConfig = dc;
            g->dsm = std::make_unique<DsmCluster>(dc);
        }
        guests_.push_back(std::move(g));
    }
}

Fleet::~Fleet() = default;

std::uint64_t
Fleet::rng()
{
    return sim::FaultInjector::splitmix64(rng_);
}

chaos::RigConfig
Fleet::rigConfigFor(const Guest &guest) const
{
    chaos::RigConfig rc;
    rc.fastInterpreter = guest.fastInterpreter;
    rc.scheduler = config_.scheduler;
    rc.memBytes = config_.guestMemBytes;
    return rc;
}

const chaos::Reference &
Fleet::referenceFor(bool fast_interpreter)
{
    unsigned i = fast_interpreter ? 1 : 0;
    if (!references_[i]) {
        chaos::RigConfig rc;
        rc.fastInterpreter = fast_interpreter;
        rc.scheduler = config_.scheduler;
        rc.memBytes = config_.guestMemBytes;
        references_[i] = std::make_unique<chaos::Reference>(
            chaos::makeReference(rc));
    }
    return *references_[i];
}

void
Fleet::recordFailure(Guest &guest, const std::string &what)
{
    stats_.hostFailures++;
    if (stats_.failureNotes.size() < kMaxFailureNotes) {
        stats_.failureNotes.push_back(
            "guest " + std::to_string(guest.id) + " (host " +
            std::to_string(guest.host) + "): " + what);
    }
    if (config_.reproDir.empty() ||
        stats_.reprosWritten.size() >= config_.maxRepros) {
        return;
    }
    if (guest.isDsm ? !guest.dsm : !guest.rig)
        return; // no live state to dump (crashed/lost guest)
    try {
        std::vector<Byte> image = guest.isDsm
                                      ? guest.dsm->checkpoint()
                                      : guest.rig->checkpoint();
        std::string path = config_.reproDir + "/fleet-guest" +
                           std::to_string(guest.id) + "-f" +
                           std::to_string(stats_.hostFailures) +
                           ".uxsn";
        sim::writeSnapshotFile(path, image);
        stats_.reprosWritten.push_back(path);
    } catch (const std::exception &e) {
        UEXC_WARN("fleet: repro dump failed: %s", e.what());
    }
}

void
Fleet::startCampaign(Guest &guest)
{
    guest.injector = std::make_unique<sim::FaultInjector>();
    guest.rig = std::make_unique<Rig>(guest.injector.get(),
                                      rigConfigFor(guest));
    const chaos::Reference &ref = referenceFor(guest.fastInterpreter);
    std::uint64_t seed =
        mix(mix(config_.seed, guest.id), guest.campaignIndex);
    bool may = false;
    for (const sim::FaultEvent &e :
         chaos::planEvents(seed, ref.window, *guest.rig, &may)) {
        guest.injector->addEvent(e);
    }
    guest.mayDiagnose = may;
    stats_.campaignsStarted++;
}

void
Fleet::finishCampaign(Guest &guest)
{
    const chaos::Reference &ref = referenceFor(guest.fastInterpreter);
    if (guest.rig->words() == ref.words) {
        stats_.campaignsConverged++;
    } else {
        recordFailure(guest,
                      "campaign " +
                          std::to_string(guest.campaignIndex) +
                          " diverged from the fault-free reference");
    }
    guest.campaignIndex++;
    guest.rig.reset();
    guest.injector.reset();
}

void
Fleet::stepChaosGuest(Guest &guest, unsigned ops)
{
    if (!guest.rig)
        startCampaign(guest);
    unsigned before = guest.rig->cursor();
    unsigned target =
        std::min(before + ops, unsigned(chaos::kTotalOps));
    try {
        guest.rig->runTo(target);
        stats_.chaosOpsRun += guest.rig->cursor() - before;
        guest.opsRun += guest.rig->cursor() - before;
    } catch (const GuestError &e) {
        stats_.chaosOpsRun += guest.rig->cursor() - before;
        guest.opsRun += guest.rig->cursor() - before;
        if (guest.mayDiagnose) {
            stats_.campaignsDiagnosed++;
        } else {
            recordFailure(guest,
                          std::string("unplanned diagnosis: ") +
                              e.what());
        }
        guest.campaignIndex++;
        guest.rig.reset();
        guest.injector.reset();
        return;
    }
    if (guest.rig->done())
        finishCampaign(guest);
}

void
Fleet::stepDsmGuest(Guest &guest, unsigned ops)
{
    const DsmCluster::Config &dc = guest.dsmConfig;
    Word words = dc.bytes / 4;
    for (unsigned i = 0; i < ops; i++) {
        unsigned node = unsigned(rng() % dc.nodes);
        Addr va = dc.base + Addr(rng() % words) * 4;
        if (rng() % 2 == 0) {
            Word value = Word(rng());
            guest.dsm->write(node, va, value);
            guest.expected[va] = value;
        } else {
            Word got = guest.dsm->read(node, va);
            auto it = guest.expected.find(va);
            if (it != guest.expected.end()) {
                if (got != it->second) {
                    recordFailure(
                        guest,
                        "dsm oracle mismatch at " +
                            std::to_string(va) + ": read " +
                            std::to_string(got) + ", expected " +
                            std::to_string(it->second));
                    return;
                }
                stats_.dsmReadsVerified++;
            }
        }
        stats_.dsmOpsRun++;
        guest.opsRun++;
    }
}

void
Fleet::verifyDsmGuest(Guest &guest)
{
    for (const auto &[va, expect] : guest.expected) {
        for (unsigned node = 0; node < guest.dsmConfig.nodes;
             node++) {
            Word got = guest.dsm->read(node, va);
            if (got != expect) {
                recordFailure(guest,
                              "end-of-soak dsm mismatch at " +
                                  std::to_string(va) + " on node " +
                                  std::to_string(node));
                return;
            }
            stats_.dsmReadsVerified++;
        }
    }
}

void
Fleet::migrateGuest(Guest &guest, unsigned migration_index)
{
    rt::migrate::MigrationConfig mc;
    mc.transport = config_.transport;
    mc.transport.seed = rng();
    bool partition = config_.partitionEvery != 0 &&
                     (migration_index + 1) % config_.partitionEvery ==
                         0;
    if (partition) {
        // deliberate partition: graceful-degradation drill
        mc.transport.lossPercent = 100;
        mc.transport.maxRetries =
            std::min(mc.transport.maxRetries, 4u);
        stats_.partitionsInjected++;
    } else {
        mc.transport.lossPercent = unsigned(rng() % 12);
        mc.transport.corruptPercent = unsigned(rng() % 10);
        mc.transport.dupPercent = unsigned(rng() % 8);
        mc.transport.delayPercent = unsigned(rng() % 15);
    }

    unsigned dst_host = config_.hosts != 0
                            ? unsigned(rng() % config_.hosts)
                            : 0;
    if (dst_host == guest.host && config_.hosts > 1)
        dst_host = (dst_host + 1) % config_.hosts;

    rt::migrate::MigrationResult result;
    std::unique_ptr<sim::FaultInjector> dst_injector;
    std::unique_ptr<Rig> dst_rig;
    std::unique_ptr<DsmCluster> dst_dsm;
    if (guest.isDsm) {
        dst_dsm = std::make_unique<DsmCluster>(guest.dsmConfig);
        result = rt::migrate::migrateImage(
            guest.dsm->checkpoint(),
            [&dst_dsm](const std::vector<Byte> &image) {
                dst_dsm->restore(image);
            },
            mc);
    } else {
        if (!guest.rig)
            startCampaign(guest);
        dst_injector = std::make_unique<sim::FaultInjector>();
        dst_rig = std::make_unique<Rig>(dst_injector.get(),
                                        rigConfigFor(guest));
        if (config_.precopyRounds != 0 && !partition) {
            // Iterative pre-copy: the source keeps running its
            // campaign while dirty pages ship; only the residual set
            // moves during the pause. A GuestError thrown by a
            // pre-copy slice is the campaign's outcome, not the
            // migration's — handle it exactly like stepChaosGuest.
            rt::migrate::PreCopyConfig pc;
            pc.maxRounds = config_.precopyRounds;
            pc.convergePages = config_.precopyConvergePages;
            unsigned before = guest.rig->cursor();
            try {
                result = rt::migrate::migrateRigPreCopy(
                    *guest.rig, *dst_rig, mc, pc,
                    config_.precopyOpsPerSlice);
            } catch (const GuestError &e) {
                stats_.chaosOpsRun += guest.rig->cursor() - before;
                guest.opsRun += guest.rig->cursor() - before;
                if (guest.mayDiagnose) {
                    stats_.campaignsDiagnosed++;
                } else {
                    recordFailure(
                        guest,
                        std::string(
                            "unplanned diagnosis in pre-copy slice: ") +
                            e.what());
                }
                guest.campaignIndex++;
                guest.rig.reset();
                guest.injector.reset();
                return;
            }
            stats_.chaosOpsRun += guest.rig->cursor() - before;
            guest.opsRun += guest.rig->cursor() - before;
            stats_.precopyMigrations++;
            if (result.precopy.converged)
                stats_.precopyConverged++;
            stats_.precopyPagesSent += result.precopy.pagesSentPreCopy;
            stats_.precopyResidualPages += result.precopy.residualPages;
            stats_.precopyBytesMoved +=
                result.precopy.bytesMovedPreCopy;
            stats_.precopyStopCopyBytes +=
                result.precopy.bytesMovedStopCopy;
        } else {
            result = rt::migrate::migrateRig(*guest.rig, *dst_rig, mc);
        }
    }

    stats_.migrationsAttempted++;
    stats_.framesSent += result.transport.framesSent;
    stats_.transportRetries += result.transport.retries;
    stats_.corruptDropped += result.transport.corruptDropped;
    stats_.duplicatesSuppressed +=
        result.transport.duplicatesSuppressed;
    stats_.maxTimeoutCharged = std::max(
        stats_.maxTimeoutCharged, result.transport.maxTimeoutCharged);

    if (result.succeeded) {
        stats_.migrationsSucceeded++;
        stats_.downtimeCycles.push_back(result.downtimeCycles);
        stats_.perHostArrivals[dst_host]++;
        guest.host = dst_host;
        if (guest.isDsm) {
            guest.dsm = std::move(dst_dsm);
        } else {
            guest.rig = std::move(dst_rig);
            guest.injector = std::move(dst_injector);
        }
    } else {
        // Graceful degradation: the source copy never stopped being
        // authoritative; the twin is discarded and the guest runs on.
        stats_.migrationsFailedByKind[unsigned(result.errorKind)]++;
        std::string detail = result.error;
        if (result.errorChunk != ~0u) {
            detail += " (chunk " + std::to_string(result.errorChunk) +
                      ", " + std::to_string(result.errorRetries) +
                      " retries, last timeout " +
                      std::to_string(result.errorTimeoutCharged) +
                      " cycles)";
        }
        stats_.lastMigrateErrorDetail[unsigned(result.errorKind)] =
            detail;
    }
}

// -- supervision machinery -------------------------------------------------

bool
Fleet::guestHealthy(const Guest &guest) const
{
    return !guest.down && !guest.wedged &&
           !(supervisor_ && supervisor_->quarantined(guest.id));
}

Fleet::Guest *
Fleet::pickHealthyGuest(bool chaos_only, bool need_checkpoint)
{
    if (guests_.empty())
        return nullptr;
    for (unsigned attempt = 0; attempt < 16; attempt++) {
        Guest &g = *guests_[rng() % guests_.size()];
        if (!guestHealthy(g))
            continue;
        if (chaos_only && g.isDsm)
            continue;
        if (need_checkpoint &&
            !(g.good[0].valid && !g.good[0].image.empty()))
            continue;
        return &g;
    }
    return nullptr;
}

void
Fleet::takeCheckpoint(Guest &guest)
{
    CheckpointGen gen;
    gen.valid = true;
    gen.campaignIndex = guest.campaignIndex;
    gen.mayDiagnose = guest.mayDiagnose;
    if (guest.isDsm) {
        gen.image = guest.dsm->checkpoint();
        gen.expected = guest.expected;
    } else if (guest.rig) {
        gen.image = guest.rig->checkpoint();
    } // else: between campaigns; an empty image restarts one fresh
    guest.good[1] = std::move(guest.good[0]);
    guest.good[0] = std::move(gen);
}

void
Fleet::heartbeatGuest(Guest &guest, std::uint64_t tick)
{
    // Progress is monotone simulated work; the echo proves the
    // exception path still responds (a guest can spin retiring
    // instructions while its handlers are dead).
    std::uint64_t echo = 0;
    if (!guest.isDsm && guest.rig) {
        const sim::CpuStats &cs =
            guest.rig->machine().hart(0).stats();
        echo = cs.exceptionsTaken + cs.userVectoredExceptions;
    }
    if (supervisor_->heartbeat(guest.id, tick, guest.opsRun, echo)) {
        failGuest(guest, tick, rt::supervise::FailureKind::Wedged,
                  "no progress and no handler-budget echo");
    }
}

void
Fleet::failGuest(Guest &guest, std::uint64_t tick,
                 rt::supervise::FailureKind kind,
                 const std::string &note)
{
    rt::supervise::Decision d =
        supervisor_->onFailure(guest.id, tick, simNow_, kind, note);
    guest.down = true;
    guest.pendingAction = d.action;
    if (d.action == rt::supervise::Action::Quarantine)
        stats_.guestsQuarantined++;
}

void
Fleet::runDrill(std::uint64_t tick)
{
    switch (rng() % 5) {
      case 0: { // host crash: every guest on the host dies
        Guest *seed_guest = pickHealthyGuest(false, false);
        if (!seed_guest)
            return;
        unsigned host = seed_guest->host;
        stats_.drillsHostCrash++;
        for (std::unique_ptr<Guest> &g : guests_) {
            if (g->host != host || !guestHealthy(*g))
                continue;
            g->rig.reset();
            g->injector.reset();
            g->dsm.reset();
            failGuest(*g, tick, rt::supervise::FailureKind::HostDown,
                      "host " + std::to_string(host) + " crashed");
        }
        break;
      }
      case 1: { // wedge: the guest stops making progress
        Guest *g = pickHealthyGuest(true, false);
        if (!g)
            return;
        stats_.drillsWedge++;
        g->wedged = true;
        break;
      }
      case 2: { // guest crash: its live state is gone mid-run
        Guest *g = pickHealthyGuest(true, false);
        if (!g)
            return;
        stats_.drillsGuestCrash++;
        g->rig.reset();
        g->injector.reset();
        failGuest(*g, tick, rt::supervise::FailureKind::Crashed,
                  "guest process crashed mid-campaign");
        break;
      }
      case 3: { // corrupt the newest checkpoint, then crash: the
                // recovery path must reject the torn image and fall
                // back to the previous generation
        Guest *g = pickHealthyGuest(true, true);
        if (!g)
            return;
        stats_.drillsCorruptImage++;
        std::vector<Byte> &image = g->good[0].image;
        for (std::size_t off = image.size() / 3; off < image.size();
             off += image.size() / 3 + 1) {
            image[off] ^= 0x5A;
        }
        g->rig.reset();
        g->injector.reset();
        failGuest(*g, tick, rt::supervise::FailureKind::Crashed,
                  "guest crashed (newest checkpoint silently torn)");
        break;
      }
      case 4: { // source host dies mid-transfer: the destination
                // holds a partial image (never restored), the guest
                // is lost with it
        Guest *g = pickHealthyGuest(false, false);
        if (!g)
            return;
        stats_.drillsSourceCrash++;
        std::vector<Byte> image = g->isDsm
                                      ? g->dsm->checkpoint()
                                      : (g->rig ? g->rig->checkpoint()
                                                : std::vector<Byte>());
        unsigned delivered = 0, total = 0;
        if (!image.empty()) {
            rt::migrate::TransportConfig weather = config_.transport;
            weather.seed = rng();
            rt::migrate::TransferSession session(std::move(image),
                                                 weather);
            total = session.chunksTotal();
            try {
                delivered = session.runSome(
                    total * (10 + unsigned(rng() % 81)) / 100);
            } catch (const rt::migrate::MigrateError &) {
                delivered = session.chunksDelivered();
            }
            // the half-staged image is dropped with the session
        }
        g->rig.reset();
        g->injector.reset();
        g->dsm.reset();
        failGuest(*g, tick, rt::supervise::FailureKind::HostDown,
                  "source host crashed mid-migration (" +
                      std::to_string(delivered) + "/" +
                      std::to_string(total) + " chunks delivered)");
        break;
      }
    }
}

bool
Fleet::restoreFromCheckpoint(Guest &guest, std::uint64_t tick,
                             bool remigrate)
{
    CheckpointGen &gen = guest.good[0].valid ? guest.good[0]
                                             : guest.good[1];
    if (!gen.valid) {
        // Never checkpointed: reboot from scratch (campaign 0 for
        // chaos; a DSM guest additionally clears its oracle).
        gen.valid = true;
        gen.campaignIndex = 0;
        gen.mayDiagnose = false;
    }

    std::vector<Byte> image = gen.image;
    if (remigrate && !image.empty()) {
        // Re-homing ships the checkpoint to the new host over the
        // same lossy transport migrations use; a partition here is
        // itself a failure the supervisor escalates on.
        rt::migrate::TransportConfig weather = config_.transport;
        weather.seed = rng();
        weather.lossPercent = unsigned(rng() % 20);
        weather.corruptPercent = unsigned(rng() % 10);
        try {
            image = rt::migrate::transferImage(image, weather);
        } catch (const rt::migrate::MigrateError &e) {
            failGuest(guest, tick,
                      rt::supervise::FailureKind::Partitioned,
                      std::string("re-migration transfer failed: ") +
                          e.what());
            return false;
        }
    }

    try {
        if (guest.isDsm) {
            auto dsm = std::make_unique<DsmCluster>(guest.dsmConfig);
            if (!image.empty())
                dsm->restore(image);
            guest.dsm = std::move(dsm);
            guest.expected =
                image.empty() ? std::map<Addr, Word>() : gen.expected;
        } else {
            guest.campaignIndex = gen.campaignIndex;
            guest.mayDiagnose = gen.mayDiagnose;
            if (image.empty()) {
                // between campaigns at the checkpoint: boot fresh
                guest.rig.reset();
                guest.injector.reset();
            } else {
                auto injector = std::make_unique<sim::FaultInjector>();
                auto rig = std::make_unique<Rig>(injector.get(),
                                                 rigConfigFor(guest));
                rig->restore(image);
                guest.injector = std::move(injector);
                guest.rig = std::move(rig);
            }
        }
    } catch (const sim::SnapshotError &e) {
        // Torn image refused before touching any state: drop the bad
        // generation so the next attempt uses the previous one.
        stats_.corruptImagesRejected++;
        if (&gen == &guest.good[0]) {
            guest.good[0] = std::move(guest.good[1]);
            guest.good[1] = CheckpointGen();
        } else {
            gen = CheckpointGen();
        }
        failGuest(guest, tick,
                  rt::supervise::FailureKind::CorruptedImage,
                  std::string("checkpoint failed validation: ") +
                      e.what());
        return false;
    }

    if (remigrate) {
        unsigned dst = config_.hosts > 1
                           ? unsigned(rng() % config_.hosts)
                           : guest.host;
        if (dst == guest.host && config_.hosts > 1)
            dst = (dst + 1) % config_.hosts;
        guest.host = dst;
        stats_.recoveriesRemigrate++;
    } else {
        stats_.recoveriesRestart++;
    }
    return true;
}

void
Fleet::attemptRecovery(Guest &guest, std::uint64_t tick)
{
    if (supervisor_->quarantined(guest.id))
        return;
    if (tick < supervisor_->retryAtTick(guest.id))
        return; // still backing off
    bool remigrate =
        guest.pendingAction == rt::supervise::Action::Remigrate;
    if (!restoreFromCheckpoint(guest, tick, remigrate))
        return; // escalated inside
    guest.down = false;
    guest.wedged = false;
    supervisor_->onRecovered(guest.id, tick, simNow_);
}

const FleetStats &
Fleet::run()
{
    std::uint64_t ticks =
        config_.maxTicks != 0
            ? config_.maxTicks
            : config_.targetMigrations + config_.cooldownTicks;
    std::uint64_t tick = 0;
    for (; tick < ticks; tick++) {
        if (config_.stopRequested && config_.stopRequested()) {
            stats_.stoppedEarly = true;
            break;
        }
        if (supervisor_) {
            for (std::unique_ptr<Guest> &g : guests_) {
                if (g->down)
                    attemptRecovery(*g, tick);
            }
        }
        for (std::unique_ptr<Guest> &g : guests_) {
            if (!guestHealthy(*g))
                continue;
            if (g->isDsm)
                stepDsmGuest(*g, config_.opsPerTick);
            else
                stepChaosGuest(*g, config_.opsPerTick);
        }
        if (supervisor_) {
            for (std::unique_ptr<Guest> &g : guests_) {
                if (!g->down &&
                    !supervisor_->quarantined(g->id)) {
                    heartbeatGuest(*g, tick);
                }
            }
            if (config_.failEvery != 0 &&
                tick % config_.failEvery == config_.failEvery - 1) {
                runDrill(tick);
            }
        }
        bool migrate_tick =
            config_.maxTicks != 0 || tick < config_.targetMigrations;
        if (migrate_tick) {
            Guest *victim = pickHealthyGuest(false, false);
            if (victim)
                migrateGuest(*victim, unsigned(tick));
        }
        if (supervisor_ && config_.checkpointEveryTicks != 0 &&
            tick % config_.checkpointEveryTicks ==
                config_.checkpointEveryTicks - 1) {
            for (std::unique_ptr<Guest> &g : guests_) {
                if (guestHealthy(*g))
                    takeCheckpoint(*g);
            }
        }
        stats_.ticks++;
        simNow_ += config_.tickCycles;
    }

    // Recovery drain: no new drills or migrations; every recoverable
    // guest must be back up (or quarantined) before the sweep.
    if (supervisor_) {
        for (unsigned drain = 0; drain < config_.maxDrainTicks;
             drain++, tick++) {
            bool any_down = false;
            for (std::unique_ptr<Guest> &g : guests_) {
                if (g->down && !supervisor_->quarantined(g->id)) {
                    attemptRecovery(*g, tick);
                    any_down |= g->down;
                }
            }
            if (!any_down)
                break;
            stats_.drainTicks++;
            simNow_ += config_.tickCycles;
        }
    }

    // End-of-soak convergence sweep: every chaos guest finishes its
    // campaign and is judged; every DSM word is read back everywhere.
    // Quarantined guests are excluded (that is what quarantine means);
    // a still-down guest after the drain is a contract violation.
    for (std::unique_ptr<Guest> &g : guests_) {
        if (supervisor_ && supervisor_->quarantined(g->id))
            continue;
        if (g->down) {
            recordFailure(*g, "still down after the recovery drain");
            continue;
        }
        g->wedged = false;
        if (g->isDsm) {
            verifyDsmGuest(*g);
        } else if (g->rig) {
            while (g->rig && !g->rig->done())
                stepChaosGuest(*g, chaos::kTotalOps);
        }
    }
    return stats_;
}

} // namespace uexc::apps::fleet
