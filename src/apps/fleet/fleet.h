/**
 * @file
 * Fleet soak harness: N simulated hosts running M guests under
 * sustained exception load, with periodic live migrations over the
 * seeded-lossy transport and convergence oracles at the end.
 *
 * Guests come in two kinds:
 *
 *  - chaos guests: one chaos::Rig each, running back-to-back seeded
 *    injection campaigns (protection-fault churn with a live fault
 *    injector). A finished campaign is checked against the cached
 *    fault-free reference; anything other than convergence or a
 *    legitimately-diagnosed planned fault is a contract violation.
 *  - DSM guests: a 2-node DsmCluster on an unreliable network,
 *    driven by seeded coherent reads/writes. The harness keeps a
 *    host-side expected-contents map; every read is an oracle.
 *
 * Hosts are placement bookkeeping: a migration checkpoints a guest,
 * pushes the image through a migrate::TransferSession whose weather
 * (loss/corrupt/dup/delay) is drawn per-migration from the fleet
 * seed — including deliberately partitioned transfers — and restores
 * into a freshly built twin on the destination host. A failed
 * migration must degrade gracefully: the source guest keeps running,
 * the failure lands in the per-kind MigrateError ledger, and nothing
 * else in the fleet notices.
 *
 * The whole soak is seeded-deterministic: same FleetConfig, same
 * ledger, bit for bit. There is no wall-clock anywhere; downtime
 * percentiles are simulated cycles from MigrationResult.
 */

#ifndef UEXC_APPS_FLEET_FLEET_H
#define UEXC_APPS_FLEET_FLEET_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/migrate.h"
#include "core/supervise.h"

namespace uexc::apps::fleet {

namespace chaos = rt::chaos;

/** Soak shape and weather. */
struct FleetConfig
{
    std::uint64_t seed = 1;
    unsigned hosts = 8;
    unsigned guests = 32;      ///< total, including dsmGuests
    unsigned dsmGuests = 4;    ///< of which: 2-node DSM clusters
    unsigned targetMigrations = 50;
    /** Ops each guest runs per tick (chaos ops / DSM accesses).
     *  CI time-bounds the soak through this knob (UEXC_SOAK_OPS). */
    unsigned opsPerTick = 8;
    /** Extra ticks after the migration budget is spent, so guests
     *  keep soaking under load; 0 = stop once migrations are done. */
    unsigned cooldownTicks = 8;
    /** Every Nth migration is launched into a fully partitioned
     *  link (loss=100) to exercise graceful degradation; 0 = never. */
    unsigned partitionEvery = 5;
    /** Host scheduler for multi-hart guests (chaos rigs are
     *  single-hart; kept for config parity with CI's barrier runs). */
    sim::SchedulerMode scheduler = sim::SchedulerMode::Auto;
    /** Per-guest physical memory. Small, because dozens of machines
     *  are live at once — but it must clear os::kUserFrameBase
     *  (10 MB) with room for user frames above it. */
    std::size_t guestMemBytes = 12 * 1024 * 1024;
    /** Baseline transport; per-migration weather perturbs the loss /
     *  corrupt / dup / delay percentages around this. */
    rt::migrate::TransportConfig transport;
    /** When non-empty, contract violations dump the guest's .uxsn
     *  checkpoint here for offline uexc-snap triage (bounded). */
    std::string reproDir;
    unsigned maxRepros = 8;

    // -- self-healing supervision --------------------------------------

    /** Run the supervisor: per-guest heartbeats, seeded failure
     *  drills, and checkpoint-based recovery with backoff. */
    bool supervise = false;
    rt::supervise::SupervisorConfig supervisor;
    /** Every Nth tick one seeded failure drill fires: a host crash
     *  (killing every guest on it), a wedge, a guest crash, a
     *  corrupted newest checkpoint, or a source-host crash
     *  mid-transfer. 0 = supervise without injecting failures. */
    unsigned failEvery = 7;
    /** Snapshot every healthy guest's last-good checkpoint every N
     *  ticks; the newest two generations are kept, so a corrupted
     *  newest image falls back to the older one. */
    unsigned checkpointEveryTicks = 4;
    /** Simulated cycles one scheduler tick represents; the MTTR
     *  cycle samples are multiples of this (no wall clock). */
    Cycles tickCycles = 100000;
    /** Extra recovery-only ticks appended after the soak so every
     *  recoverable guest is back up before the convergence sweep. */
    unsigned maxDrainTicks = 64;

    // -- iterative pre-copy migration ----------------------------------

    /** Pre-copy rounds for chaos-guest migrations (dirty pages ship
     *  while the guest runs); 0 = classic stop-and-copy. */
    unsigned precopyRounds = 0;
    unsigned precopyConvergePages = 8;
    /** Campaign ops the source runs per pre-copy round. */
    unsigned precopyOpsPerSlice = 4;

    /** Overrides the tick count when nonzero (wall-clock-bounded
     *  soaks); migrations then keep firing on every tick instead of
     *  stopping at targetMigrations. */
    std::uint64_t maxTicks = 0;
    /** Polled once per tick; returning true ends the soak after the
     *  current tick. Wall-clock bounds (UEXC_SOAK_SECONDS) live in
     *  this caller-supplied hook — never in guest semantics, so a
     *  soak's ledger depends on the clock only through its length. */
    std::function<bool()> stopRequested;
};

/** End-of-soak ledger. Everything a CI gate needs is in here. */
struct FleetStats
{
    std::uint64_t ticks = 0;
    std::uint64_t chaosOpsRun = 0;
    std::uint64_t dsmOpsRun = 0;

    std::uint64_t campaignsStarted = 0;
    std::uint64_t campaignsConverged = 0;
    /** Campaigns that ended in a planned, legitimate diagnosis. */
    std::uint64_t campaignsDiagnosed = 0;
    std::uint64_t dsmReadsVerified = 0;

    std::uint64_t migrationsAttempted = 0;
    std::uint64_t migrationsSucceeded = 0;
    /** Failed migrations by MigrateErrorKind (Partition,
     *  ImageRejected, RestoreRefused) — every failure is diagnosed
     *  into exactly one bucket, so the sum equals
     *  migrationsAttempted - migrationsSucceeded. */
    std::array<std::uint64_t, 3> migrationsFailedByKind{};
    /** Deliberately partitioned transfers (expected failures). */
    std::uint64_t partitionsInjected = 0;

    /** Per successful migration: simulated stop-and-copy downtime. */
    std::vector<Cycles> downtimeCycles;
    /** Aggregated transport counters across every attempt. */
    std::uint64_t framesSent = 0;
    std::uint64_t transportRetries = 0;
    std::uint64_t corruptDropped = 0;
    std::uint64_t duplicatesSuppressed = 0;
    Cycles maxTimeoutCharged = 0;

    /** Migrations landed per host (in-bound). */
    std::vector<std::uint64_t> perHostArrivals;

    /** Convergence / contract failures: divergence from reference,
     *  unplanned diagnosis, DSM oracle mismatch, or a non-GuestError
     *  escape. MUST be zero for a healthy soak. */
    std::uint64_t hostFailures = 0;
    std::vector<std::string> failureNotes; ///< bounded detail
    std::vector<std::string> reprosWritten;

    /** Most recent failed-migration diagnostics per MigrateErrorKind
     *  (chunk index, retries, charged timeout) for the ledger. */
    std::array<std::string, 3> lastMigrateErrorDetail{};

    // -- supervision (populated when FleetConfig::supervise) -----------
    std::uint64_t drillsHostCrash = 0;
    std::uint64_t drillsWedge = 0;
    std::uint64_t drillsGuestCrash = 0;
    std::uint64_t drillsCorruptImage = 0;
    std::uint64_t drillsSourceCrash = 0;
    std::uint64_t recoveriesRestart = 0;
    std::uint64_t recoveriesRemigrate = 0;
    /** Corrupted/torn checkpoint images refused by restore-side
     *  validation before touching any guest state. */
    std::uint64_t corruptImagesRejected = 0;
    std::uint64_t guestsQuarantined = 0;
    /** Ticks spent in the post-soak recovery drain. */
    std::uint64_t drainTicks = 0;
    bool stoppedEarly = false; ///< the stopRequested hook fired

    // -- pre-copy ------------------------------------------------------
    std::uint64_t precopyMigrations = 0;
    std::uint64_t precopyConverged = 0;
    std::uint64_t precopyPagesSent = 0;
    std::uint64_t precopyResidualPages = 0;
    std::uint64_t precopyBytesMoved = 0;
    /** Bytes moved while paused under pre-copy (residual+control). */
    std::uint64_t precopyStopCopyBytes = 0;

    std::uint64_t migrationsFailed() const
    {
        return migrationsFailedByKind[0] + migrationsFailedByKind[1] +
               migrationsFailedByKind[2];
    }
    Cycles downtimePercentile(double p) const;
    Cycles downtimeP50() const { return downtimePercentile(0.50); }
    Cycles downtimeP99() const { return downtimePercentile(0.99); }
};

/**
 * One soak run. Construction boots every guest; run() executes the
 * tick loop (guest ops + seeded migrations), then the end-of-soak
 * convergence sweep: every chaos guest finishes its campaign and is
 * checked against the reference, every DSM guest's expected-contents
 * map is read back on every node.
 */
class Fleet
{
  public:
    explicit Fleet(const FleetConfig &config);
    ~Fleet();

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    /** Run the whole soak; returns the final ledger. */
    const FleetStats &run();

    const FleetStats &stats() const { return stats_; }
    const FleetConfig &config() const { return config_; }
    /** Non-null when FleetConfig::supervise was set. */
    const rt::supervise::Supervisor *supervisor() const
    {
        return supervisor_.get();
    }

  private:
    struct Guest;

    std::uint64_t rng();
    const chaos::Reference &referenceFor(bool fast_interpreter);
    chaos::RigConfig rigConfigFor(const Guest &guest) const;
    void startCampaign(Guest &guest);
    void stepChaosGuest(Guest &guest, unsigned ops);
    void finishCampaign(Guest &guest);
    void stepDsmGuest(Guest &guest, unsigned ops);
    void verifyDsmGuest(Guest &guest);
    void migrateGuest(Guest &guest, unsigned migration_index);
    void recordFailure(Guest &guest, const std::string &what);

    // -- supervision machinery --
    bool guestHealthy(const Guest &guest) const;
    Guest *pickHealthyGuest(bool chaos_only, bool need_checkpoint);
    void takeCheckpoint(Guest &guest);
    void heartbeatGuest(Guest &guest, std::uint64_t tick);
    void failGuest(Guest &guest, std::uint64_t tick,
                   rt::supervise::FailureKind kind,
                   const std::string &note);
    void runDrill(std::uint64_t tick);
    bool restoreFromCheckpoint(Guest &guest, std::uint64_t tick,
                               bool remigrate);
    void attemptRecovery(Guest &guest, std::uint64_t tick);

    FleetConfig config_;
    FleetStats stats_;
    std::vector<std::unique_ptr<Guest>> guests_;
    /** Fault-free chaos references, one per interpreter flavour. */
    std::unique_ptr<chaos::Reference> references_[2];
    std::uint64_t rng_ = 0;
    std::unique_ptr<rt::supervise::Supervisor> supervisor_;
    Cycles simNow_ = 0; ///< fleet-level simulated clock (MTTR)
};

} // namespace uexc::apps::fleet

#endif // UEXC_APPS_FLEET_FLEET_H
