/**
 * @file
 * A persistent object store with pointer swizzling (section 4.2.2).
 *
 * Objects live on a simulated disk keyed by object identifier (OID);
 * resident copies live in the simulated address space, accessed
 * through a rt::UserEnv. Pointers on disk are OIDs; in memory they
 * are either real virtual addresses (swizzled) or tagged OIDs
 * (unswizzled). The tag is a byte offset of 2: a tagged value is not
 * word-aligned, so dereferencing one raises the unaligned-access
 * exception the paper's lazy scheme rides on.
 *
 * Three configurations reproduce the paper's comparisons:
 *
 *  - SwizzleMode::LazyExceptions
 *      Pointers are swizzled on first use. Dereferencing an
 *      unswizzled pointer faults (AdEL); the handler loads the target
 *      if needed, repairs the register and the containing cell, and
 *      resumes. Subsequent uses are free. (Figure 3's "exceptions"
 *      curve, and the lazy side of Figure 4.)
 *
 *  - SwizzleMode::LazyChecks
 *      Every dereference pays an inline residency check (the
 *      compiler-inserted test of White & DeWitt); first use also pays
 *      the swizzle. (Figure 3's "software checks" curve.)
 *
 *  - SwizzleMode::Eager
 *      When an object is loaded, all pointers in it are immediately
 *      swizzled to virtual addresses; non-resident targets get
 *      reserved, access-protected address space (Wilson & Kakkad
 *      style), and the first touch of one faults the object in.
 *      (The eager side of Figure 4.)
 */

#ifndef UEXC_APPS_SWIZZLE_OSTORE_H
#define UEXC_APPS_SWIZZLE_OSTORE_H

#include <map>
#include <unordered_map>
#include <vector>

#include "core/env.h"

namespace uexc::apps {

/** Object identifier on the simulated disk. */
using Oid = std::uint32_t;

/** Null target for pointer fields; loads as a literal 0 pointer. */
constexpr Oid kNullOid = 0xffffffffu;

/** Swizzling strategy. */
enum class SwizzleMode
{
    LazyExceptions,
    LazyChecks,
    Eager,
};

/** One field of a persistent object. */
struct PField
{
    bool isPointer = false;
    Word value = 0;   ///< raw datum, or target Oid when isPointer
};

/** Store statistics. */
struct StoreStats
{
    std::uint64_t objectsLoaded = 0;
    std::uint64_t diskReads = 0;
    std::uint64_t pointersSwizzled = 0;
    std::uint64_t swizzleFaults = 0;      ///< unaligned-pointer faults
    std::uint64_t residencyFaults = 0;    ///< eager-mode page faults
    std::uint64_t residencyChecks = 0;    ///< software checks executed
};

/**
 * The store. See file comment.
 */
class ObjectStore
{
  public:
    struct Config
    {
        SwizzleMode mode = SwizzleMode::LazyExceptions;
        /** Cycles per inline residency check (Figure 3's c). */
        Cycles checkCycles = 3;
        /** Cycles to swizzle one pointer (Figure 4's s). */
        Cycles swizzleCycles = 20;
        /** Cycles for a disk read of one object (cache-resident
         *  store assumed by the paper's analysis: small). */
        Cycles diskReadCycles = 400;
        /** Base of the in-memory object heap. */
        Addr heapBase = 0x20000000;
    };

    ObjectStore(rt::UserEnv &env, const Config &config);

    // -- populating the disk (host-side setup, uncosted) ----------------

    /** Create a persistent object with the given fields. */
    Oid createObject(const std::vector<PField> &fields);

    // -- the application interface -----------------------------------------

    /** Make the root object resident; returns its memory address. */
    Addr pin(Oid root);

    /** Read a data field of a resident object. */
    Word readData(Addr obj, unsigned field);

    /**
     * Dereference a pointer field: returns the target object's
     * memory address, swizzling/loading per the configured mode.
     */
    Addr deref(Addr obj, unsigned field);

    const StoreStats &stats() const { return stats_; }
    SwizzleMode mode() const { return config_.mode; }
    /** Whether an OID currently has a resident, loaded copy. */
    bool isResident(Oid oid) const;

  private:
    static constexpr Word kTag = 2;   ///< unswizzled-pointer byte tag

    struct DiskObject
    {
        std::vector<PField> fields;
    };

    struct MemObject
    {
        Oid oid = 0;
        Addr addr = 0;
        bool loaded = false;   ///< contents present (vs reserved only)
        unsigned words = 0;
    };

    Word tagged(Oid oid) const { return (oid << 2) | kTag; }
    bool isTagged(Word w) const { return (w & 3) == kTag; }
    Oid oidOf(Word w) const { return w >> 2; }

    /** Address for an OID, reserving (eager) or loading as asked. */
    Addr ensureAddress(Oid oid);
    void loadObject(Oid oid);
    void swizzleCell(Addr cell, Word tagged_value);
    void onFault(rt::Fault &fault);
    MemObject *byAddress(Addr addr);

    rt::UserEnv &env_;
    Config config_;
    StoreStats stats_;

    std::vector<DiskObject> disk_;
    std::unordered_map<Oid, MemObject> resident_;
    std::map<Addr, Oid> byAddr_;     ///< object base -> oid (ordered)
    Addr heapBump_;
    /** Cell being dereferenced (for fault-time pointer repair). */
    Addr lastDerefCell_ = 0;
};

} // namespace uexc::apps

#endif // UEXC_APPS_SWIZZLE_OSTORE_H
