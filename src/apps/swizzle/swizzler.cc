#include "apps/swizzle/swizzler.h"

#include <deque>
#include <random>
#include <unordered_set>

namespace uexc::apps {

TraversalResult
runTraversal(rt::UserEnv &env, SwizzleMode mode,
             const TraversalParams &params)
{
    ObjectStore::Config cfg = params.store;
    cfg.mode = mode;
    ObjectStore store(env, cfg);

    // build the graph on disk: each object points at
    // pointersPerObject random successors (skewed toward nearby ids,
    // as real object graphs cluster)
    std::mt19937 rng(params.rngSeed);
    std::vector<Oid> oids;
    for (unsigned i = 0; i < params.numObjects; i++) {
        std::vector<PField> fields;
        for (unsigned d = 0; d < params.dataWordsPerObject; d++)
            fields.push_back(PField{false, (i << 8) | d});
        for (unsigned p = 0; p < params.pointersPerObject; p++) {
            unsigned target =
                (i + 1 + rng() % (params.numObjects / 4 + 1)) %
                params.numObjects;
            fields.push_back(PField{true, target});
        }
        oids.push_back(store.createObject(fields));
    }

    TraversalResult result;
    Cycles start = env.cycles();

    Addr root = store.pin(oids[0]);
    unsigned used_per_obj = static_cast<unsigned>(
        params.useFraction * params.pointersPerObject + 0.5);

    std::deque<Addr> frontier{root};
    std::unordered_set<Addr> visited{root};
    while (!frontier.empty()) {
        Addr obj = frontier.front();
        frontier.pop_front();
        // touch the data fields
        for (unsigned d = 0; d < params.dataWordsPerObject; d++)
            store.readData(obj, d);
        // dereference a subset of the pointers, u times each
        for (unsigned p = 0; p < used_per_obj; p++) {
            unsigned field = params.dataWordsPerObject + p;
            Addr target = 0;
            for (unsigned u = 0; u < params.usesPerPointer; u++) {
                target = store.deref(obj, field);
                result.derefs++;
            }
            if (visited.insert(target).second)
                frontier.push_back(target);
        }
    }

    result.cycles = env.cycles() - start;
    result.millis =
        env.cpu().config().cost.toMicros(result.cycles) / 1e3;
    result.store = store.stats();
    return result;
}

} // namespace uexc::apps
