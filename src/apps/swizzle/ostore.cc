#include "apps/swizzle/ostore.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::apps {

using namespace os;
using sim::ExcCode;

ObjectStore::ObjectStore(rt::UserEnv &env, const Config &config)
    : env_(env), config_(config), heapBump_(config.heapBase)
{
    if (!isAligned(config_.heapBase, kPageBytes))
        UEXC_FATAL("object store heap base not page aligned");
    env_.setHandler([this](rt::Fault &f) { onFault(f); });
}

Oid
ObjectStore::createObject(const std::vector<PField> &fields)
{
    disk_.push_back(DiskObject{fields});
    return static_cast<Oid>(disk_.size() - 1);
}

ObjectStore::MemObject *
ObjectStore::byAddress(Addr addr)
{
    auto it = byAddr_.upper_bound(addr);
    if (it == byAddr_.begin())
        return nullptr;
    --it;
    MemObject &mo = resident_.at(it->second);
    if (addr >= mo.addr + 4 * mo.words)
        return nullptr;
    return &mo;
}

Addr
ObjectStore::ensureAddress(Oid oid)
{
    auto it = resident_.find(oid);
    if (it != resident_.end())
        return it->second.addr;
    if (oid >= disk_.size())
        UEXC_FATAL("object store: unknown oid %u", oid);

    MemObject mo;
    mo.oid = oid;
    mo.words = static_cast<unsigned>(disk_[oid].fields.size());
    Word bytes = roundUp(4 * std::max(mo.words, 1u), 8);
    if (config_.mode == SwizzleMode::Eager) {
        // eager reservations are page-granular: each object owns its
        // page(s) so that access-protecting a reserved object cannot
        // protect an already-loaded neighbour (the address-space cost
        // of eager swizzling the literature notes)
        heapBump_ = roundUp(heapBump_, kPageBytes);
        bytes = roundUp(bytes, kPageBytes);
    }
    mo.addr = heapBump_;
    heapBump_ += bytes;
    // allocate backing pages on demand
    Addr first = roundDown(mo.addr, kPageBytes);
    Addr last = roundUp(mo.addr + bytes, kPageBytes);
    for (Addr page = first; page < last; page += kPageBytes) {
        if (!env_.process().as().present(page))
            env_.allocate(page, kPageBytes);
    }
    mo.loaded = false;
    resident_[oid] = mo;
    byAddr_[mo.addr] = oid;

    Addr assigned = mo.addr;
    if (config_.mode == SwizzleMode::Eager) {
        // Wilson & Kakkad: reserve the address space but protect it so
        // the first touch faults the object in
        env_.process().as().protect(assigned, bytes, 0);
    } else {
        loadObject(oid);
    }
    return assigned;
}

void
ObjectStore::loadObject(Oid oid)
{
    // note: ensureAddress() below can rehash resident_, so work from
    // local copies rather than holding a reference across it
    {
        MemObject &mo = resident_.at(oid);
        if (mo.loaded)
            return;
        mo.loaded = true;
    }
    Addr base = resident_.at(oid).addr;
    const DiskObject &d = disk_[oid];
    env_.cpu().charge(config_.diskReadCycles);
    stats_.diskReads++;
    stats_.objectsLoaded++;

    for (unsigned i = 0; i < d.fields.size(); i++) {
        const PField &f = d.fields[i];
        Word value;
        if (!f.isPointer) {
            value = f.value;
        } else if (f.value == kNullOid) {
            value = 0;   // null pointers stay null in every mode
        } else if (config_.mode == SwizzleMode::Eager) {
            // swizzle immediately: the target gets (reserved) address
            // space now; cost s per pointer
            value = ensureAddress(static_cast<Oid>(f.value));
            env_.cpu().charge(config_.swizzleCycles);
            stats_.pointersSwizzled++;
        } else {
            value = tagged(static_cast<Oid>(f.value));
        }
        env_.store(base + 4 * i, value);
    }
}

Addr
ObjectStore::pin(Oid root)
{
    Addr addr = ensureAddress(root);
    if (!resident_.at(root).loaded) {
        // eager mode reserves without loading; pin forces content
        Addr page = roundDown(addr, kPageBytes);
        env_.process().as().protect(page, kPageBytes,
                                    kProtRead | kProtWrite);
        loadObject(root);
    }
    return addr;
}

Word
ObjectStore::readData(Addr obj, unsigned field)
{
    return env_.load(obj + 4 * field);
}

Addr
ObjectStore::deref(Addr obj, unsigned field)
{
    Addr cell = obj + 4 * field;
    switch (config_.mode) {
      case SwizzleMode::LazyChecks: {
        // inline residency check on every dereference
        stats_.residencyChecks++;
        env_.cpu().charge(config_.checkCycles);
        Word w = env_.load(cell);
        if (w == 0)
            return 0;
        if (isTagged(w)) {
            Addr target = ensureAddress(oidOf(w));
            env_.cpu().charge(config_.swizzleCycles);
            stats_.pointersSwizzled++;
            env_.store(cell, target);
            w = target;
        }
        env_.load(w);          // the dereference itself
        return w;
      }
      case SwizzleMode::LazyExceptions: {
        // no check: read the pointer and touch through it; a tagged
        // pointer faults and the handler repairs cell + register
        Word w = env_.load(cell);
        if (w == 0)
            return 0;
        lastDerefCell_ = cell;
        std::uint64_t faults_before = stats_.swizzleFaults;
        env_.load(w);          // faults iff unswizzled
        if (stats_.swizzleFaults != faults_before)
            w = env_.load(cell);   // cell was repaired by the handler
        return w;
      }
      case SwizzleMode::Eager:
      default: {
        // pointers are always real addresses; touching a reserved,
        // not-yet-loaded target faults it in
        Word w = env_.load(cell);
        if (w == 0)
            return 0;
        env_.load(w);
        return w;
      }
    }
}

bool
ObjectStore::isResident(Oid oid) const
{
    auto it = resident_.find(oid);
    return it != resident_.end() && it->second.loaded;
}

void
ObjectStore::onFault(rt::Fault &fault)
{
    if (fault.code() == ExcCode::AdEL &&
        isTagged(fault.badVaddr())) {
        // lazy-exceptions: an unswizzled pointer was dereferenced.
        // Load the target, swizzle the containing cell, repair the
        // pointer register, resume (re-executes the load, which now
        // succeeds): the paper's "repair the address" (section 4.2.2).
        stats_.swizzleFaults++;
        Oid oid = oidOf(fault.badVaddr());
        Addr target = ensureAddress(oid);
        env_.cpu().charge(config_.swizzleCycles);
        stats_.pointersSwizzled++;
        env_.store(lastDerefCell_, target);
        fault.setReg(sim::T6, target);
        return;
    }

    if (fault.code() == ExcCode::TlbL || fault.code() == ExcCode::TlbS) {
        // eager mode: first touch of a reserved object's page
        MemObject *mo = byAddress(fault.badVaddr());
        if (!mo)
            UEXC_FATAL("object store: fault at 0x%08x outside any "
                       "object", fault.badVaddr());
        stats_.residencyFaults++;
        Oid oid = mo->oid;
        Addr page = roundDown(fault.badVaddr(), kPageBytes);
        // grant access, then fill from disk (the handler runs with
        // the page accessible; under Ultrix this is the mprotect the
        // paper's eager scheme must pay)
        env_.protect(page, kPageBytes, kProtRead | kProtWrite);
        loadObject(oid);
        return;
    }

    UEXC_FATAL("object store: unexpected fault %s at 0x%08x",
               sim::excName(fault.code()), fault.badVaddr());
}

} // namespace uexc::apps
