/**
 * @file
 * Swizzling workloads: synthetic persistent-object graphs and the
 * traversals used to measure the Figure 3 / Figure 4 tradeoffs
 * end-to-end (not just analytically).
 */

#ifndef UEXC_APPS_SWIZZLE_SWIZZLER_H
#define UEXC_APPS_SWIZZLE_SWIZZLER_H

#include "apps/swizzle/ostore.h"

namespace uexc::apps {

/** Parameters of a traversal experiment. */
struct TraversalParams
{
    unsigned numObjects = 400;
    /** Pointer fields per object (Figure 4 assumes ~50 per page). */
    unsigned pointersPerObject = 10;
    unsigned dataWordsPerObject = 6;
    /** Fraction of each object's pointers actually dereferenced
     *  (Figure 4's x axis: pointers used per object). */
    double useFraction = 0.5;
    /** Dereferences per used pointer (Figure 3's u). */
    unsigned usesPerPointer = 3;
    unsigned rngSeed = 99;
    ObjectStore::Config store;
};

/** Result of one traversal. */
struct TraversalResult
{
    Cycles cycles = 0;
    double millis = 0;         ///< at the machine clock
    std::uint64_t derefs = 0;
    StoreStats store;
};

/**
 * Build a random object graph on disk and traverse it breadth-first
 * from the root, dereferencing a configurable fraction of each
 * object's pointers a configurable number of times.
 */
TraversalResult runTraversal(rt::UserEnv &env, SwizzleMode mode,
                             const TraversalParams &params);

} // namespace uexc::apps

#endif // UEXC_APPS_SWIZZLE_SWIZZLER_H
