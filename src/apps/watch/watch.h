/**
 * @file
 * Data watchpoints via memory protection — the debugging use the
 * paper's introduction cites (conditional watchpoints, Wahbe '92).
 *
 * The engine write-protects the memory holding watched words; a store
 * into protected memory faults, the handler compares the watched
 * word's old value with the incoming one, evaluates the watchpoint's
 * predicate, and invokes the callback on a hit. The store then
 * completes and the protection is re-armed.
 *
 * Granularity is configurable between hardware pages (4 KB) and the
 * kernel's logical subpages (1 KB, section 3.2.4). With page
 * granularity every store to the page pays a full user-level fault;
 * with subpage granularity, stores to unrelated subpages are emulated
 * invisibly by the kernel — the trade the paper's subpage mechanism
 * exists to offer.
 */

#ifndef UEXC_APPS_WATCH_WATCH_H
#define UEXC_APPS_WATCH_WATCH_H

#include <functional>
#include <map>

#include "core/env.h"

namespace uexc::apps {

/** Statistics of a watchpoint engine. */
struct WatchStats
{
    std::uint64_t faults = 0;        ///< protection faults taken
    std::uint64_t hits = 0;          ///< watched word actually written
    std::uint64_t triggers = 0;      ///< predicate true -> callback
    std::uint64_t falseFaults = 0;   ///< same-region, unwatched write
};

/**
 * The engine. Applications route stores through store() so the
 * protection can be re-armed after each write to a watched region;
 * loads may use the environment directly.
 */
class WatchpointEngine
{
  public:
    /** Invoked on a triggering write. */
    using Callback =
        std::function<void(Addr addr, Word old_value, Word new_value)>;
    /** Predicate over the incoming value (conditional watchpoints). */
    using Predicate = std::function<bool(Word new_value)>;

    struct Config
    {
        /** Protect 1 KB logical subpages instead of 4 KB pages. */
        bool useSubpages = false;
    };

    explicit WatchpointEngine(rt::UserEnv &env);
    WatchpointEngine(rt::UserEnv &env, const Config &config);

    /**
     * Watch the word at @p addr; @p predicate gates the callback
     * (nullptr = unconditional). Returns a watchpoint id.
     */
    int watch(Addr addr, Callback callback,
              Predicate predicate = nullptr);

    /** Remove a watchpoint. */
    void unwatch(int id);

    /** Store through the engine (re-arms protection as needed). */
    void store(Addr addr, Word value);
    /** Plain load. */
    Word load(Addr addr);

    const WatchStats &stats() const { return stats_; }
    unsigned active() const { return static_cast<unsigned>(
        watchpoints_.size()); }

  private:
    struct Watchpoint
    {
        Addr addr;
        Callback callback;
        Predicate predicate;
    };

    Addr regionOf(Addr addr) const;
    Word regionBytes() const;
    void armRegion(Addr region);
    void disarmRegion(Addr region);
    void onFault(rt::Fault &fault);

    rt::UserEnv &env_;
    Config config_;
    WatchStats stats_;
    int nextId_ = 1;
    std::map<int, Watchpoint> watchpoints_;
    /** protected regions -> number of watchpoints inside */
    std::map<Addr, unsigned> regions_;
    /** set when a fault disarmed a region that must be re-armed */
    Addr pendingRearm_ = 0;
};

} // namespace uexc::apps

#endif // UEXC_APPS_WATCH_WATCH_H
