#include "apps/watch/watch.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::apps {

using namespace os;

WatchpointEngine::WatchpointEngine(rt::UserEnv &env)
    : WatchpointEngine(env, Config())
{
}

WatchpointEngine::WatchpointEngine(rt::UserEnv &env, const Config &config)
    : env_(env), config_(config)
{
    env_.setHandler([this](rt::Fault &f) { onFault(f); });
    if (env_.mode() == rt::DeliveryMode::FastSoftware)
        env_.setEagerAmplify(true);
}

Word
WatchpointEngine::regionBytes() const
{
    return config_.useSubpages ? kSubpageBytes : kPageBytes;
}

Addr
WatchpointEngine::regionOf(Addr addr) const
{
    return roundDown(addr, regionBytes());
}

void
WatchpointEngine::armRegion(Addr region)
{
    if (config_.useSubpages)
        env_.subpageProtect(region, kSubpageBytes, kProtRead);
    else
        env_.protect(region, kPageBytes, kProtRead);
}

void
WatchpointEngine::disarmRegion(Addr region)
{
    if (config_.useSubpages)
        env_.subpageProtect(region, kSubpageBytes,
                            kProtRead | kProtWrite);
    else
        env_.protect(region, kPageBytes, kProtRead | kProtWrite);
}

int
WatchpointEngine::watch(Addr addr, Callback callback,
                        Predicate predicate)
{
    if (!isAligned(addr, 4))
        UEXC_FATAL("watchpoint address 0x%08x not word aligned", addr);
    int id = nextId_++;
    watchpoints_[id] = Watchpoint{addr, std::move(callback),
                                  std::move(predicate)};
    Addr region = regionOf(addr);
    if (regions_[region]++ == 0)
        armRegion(region);
    return id;
}

void
WatchpointEngine::unwatch(int id)
{
    auto it = watchpoints_.find(id);
    if (it == watchpoints_.end())
        UEXC_FATAL("unwatch of unknown watchpoint %d", id);
    Addr region = regionOf(it->second.addr);
    watchpoints_.erase(it);
    auto rit = regions_.find(region);
    if (rit == regions_.end() || rit->second == 0)
        UEXC_PANIC("watch region bookkeeping out of sync");
    if (--rit->second == 0) {
        regions_.erase(rit);
        disarmRegion(region);
    }
}

void
WatchpointEngine::store(Addr addr, Word value)
{
    env_.store(addr, value);
    if (pendingRearm_) {
        Addr region = pendingRearm_;
        pendingRearm_ = 0;
        if (regions_.count(region))
            armRegion(region);
    }
}

Word
WatchpointEngine::load(Addr addr)
{
    return env_.load(addr);
}

void
WatchpointEngine::onFault(rt::Fault &fault)
{
    stats_.faults++;
    Addr word_addr = fault.badVaddr() & ~Addr(3);
    Addr region = regionOf(fault.badVaddr());

    // old value straight from the (readable) memory; incoming value
    // from the faulting store's value register (the engine's store()
    // shim contract)
    Word old_value =
        env_.kernel().machine().mem().readWord(
            env_.process().as().physOf(word_addr));
    Word new_value = fault.reg(sim::T7);

    bool any_hit = false;
    for (const auto &[id, wp] : watchpoints_) {
        (void)id;
        if (wp.addr != word_addr)
            continue;
        any_hit = true;
        stats_.hits++;
        if (!wp.predicate || wp.predicate(new_value)) {
            stats_.triggers++;
            if (wp.callback)
                wp.callback(word_addr, old_value, new_value);
        }
    }
    if (!any_hit)
        stats_.falseFaults++;

    // let the store complete; store() re-arms afterwards
    switch (env_.mode()) {
      case rt::DeliveryMode::UltrixSignal:
        disarmRegion(region);
        break;
      case rt::DeliveryMode::FastHardwareVector:
        env_.userTlbModify(roundDown(fault.badVaddr(), kPageBytes),
                           /*writable=*/true, /*valid=*/true);
        break;
      case rt::DeliveryMode::FastSoftware:
        // eager amplification already re-enabled access in-kernel
        break;
    }
    pendingRearm_ = region;
}

} // namespace uexc::apps
