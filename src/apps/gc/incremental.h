/**
 * @file
 * Incremental marking on top of the generational collector — the
 * "incremental collection support" the paper enables in the Xerox
 * collector (section 4.1).
 *
 * The incremental collector bounds each collection pause: marking
 * proceeds in slices of a configurable number of object visits,
 * interleaved with the mutator. Consistency between the marker and a
 * running mutator uses the same page-protection machinery as the
 * generational barrier: when an incremental mark phase begins, the
 * *already-scanned* portion of the heap is write-protected; a mutator
 * store into a scanned object faults, and the handler grays the
 * object again (a retrace set), exactly the virtual-memory-based
 * incremental scheme of Appel, Ellis & Li that the paper's
 * bibliography anchors this use case to.
 *
 * Like the underlying collector, all heap traffic flows through the
 * simulated machine, so the *pause times* and the *barrier overhead*
 * reported by the stats are simulated-cycle quantities that respond
 * to the configured exception-delivery mechanism.
 */

#ifndef UEXC_APPS_GC_INCREMENTAL_H
#define UEXC_APPS_GC_INCREMENTAL_H

#include <deque>
#include <unordered_set>

#include "core/env.h"

namespace uexc::apps {

/** Statistics of the incremental collector. */
struct IncStats
{
    std::uint64_t cycles = 0;           ///< collection slices run
    std::uint64_t slices = 0;
    std::uint64_t objectsMarked = 0;
    std::uint64_t objectsSwept = 0;
    std::uint64_t retraceFaults = 0;    ///< mutator dirtied scanned data
    std::uint64_t retracedObjects = 0;
    Cycles maxPauseCycles = 0;          ///< longest single slice
    Cycles totalPauseCycles = 0;
};

/**
 * A simple non-generational, incremental mark-sweep collector over
 * the simulated heap. (The generational collector in gc.h answers
 * Table 4; this class isolates the paper's *incremental* use of
 * protection faults so pause behaviour can be measured on its own.)
 */
class IncrementalCollector
{
  public:
    struct Config
    {
        Addr heapBase = 0x18000000;
        Word heapBytes = 4 * 1024 * 1024;
        /** Object visits per marking slice (the pause bound). */
        unsigned sliceBudget = 64;
        /** Allocated bytes that trigger a new collection cycle. */
        Word allocTrigger = 128 * 1024;
        unsigned numRoots = 16;
    };

    IncrementalCollector(rt::UserEnv &env, const Config &config);

    /** Allocate @p payload_words; runs at most one marking slice. */
    Addr alloc(unsigned payload_words);

    /** Mutator store through the incremental barrier. */
    void writeWord(Addr payload, unsigned index, Word value);
    Word readWord(Addr payload, unsigned index);

    void setRoot(unsigned slot, Addr payload);
    Addr root(unsigned slot) const;

    /** Whether a collection cycle is in progress. */
    bool collecting() const { return phase_ != Phase::Idle; }
    /** Force-start a collection cycle (marks roots gray). */
    void startCycle();
    /** Run one bounded marking/sweep slice. */
    void step();
    /** Run slices until the cycle completes. */
    void finishCycle();

    bool isObject(Addr payload) const
    {
        return objects_.count(payload) != 0;
    }
    std::size_t liveObjects() const { return objects_.size(); }
    const IncStats &stats() const { return stats_; }

  private:
    enum class Phase { Idle, Marking, Sweeping };

    struct Object
    {
        unsigned words = 0;
        bool marked = false;
        bool scanned = false;
    };

    Addr pageOf(Addr addr) const;
    void protectScannedPage(Addr page);
    void unprotectAll();
    void onFault(rt::Fault &fault);
    void scan(Addr payload, Object &obj);

    rt::UserEnv &env_;
    Config config_;
    IncStats stats_;

    Addr bump_;
    Addr mapped_;
    std::unordered_map<Addr, Object> objects_;
    std::vector<Addr> roots_;
    Word allocatedSinceCycle_ = 0;

    Phase phase_ = Phase::Idle;
    std::deque<Addr> gray_;
    std::vector<Addr> sweepList_;
    std::size_t sweepCursor_ = 0;
    /** pages fully scanned and therefore write-protected */
    std::unordered_set<Addr> protectedPages_;
};

} // namespace uexc::apps

#endif // UEXC_APPS_GC_INCREMENTAL_H
