#include "apps/gc/incremental.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::apps {

using namespace os;

namespace {
constexpr Cycles kVisitCycles = 8;
constexpr Cycles kSweepCycles = 4;
constexpr Cycles kAllocCycles = 12;
} // namespace

IncrementalCollector::IncrementalCollector(rt::UserEnv &env,
                                           const Config &config)
    : env_(env), config_(config), bump_(config.heapBase),
      mapped_(config.heapBase)
{
    if (!isAligned(config.heapBase, kPageBytes))
        UEXC_FATAL("incremental gc: heap base not page aligned");
    roots_.assign(config.numRoots, 0);
    env_.setHandler([this](rt::Fault &f) { onFault(f); });
    if (env_.mode() == rt::DeliveryMode::FastSoftware)
        env_.setEagerAmplify(true);
}

Addr
IncrementalCollector::pageOf(Addr addr) const
{
    return roundDown(addr, kPageBytes);
}

Addr
IncrementalCollector::alloc(unsigned payload_words)
{
    Word need = 4 * (payload_words + 1);
    if (need > kPageBytes)
        UEXC_FATAL("incremental gc: object of %u words too large",
                   payload_words);

    if (phase_ == Phase::Idle &&
        allocatedSinceCycle_ >= config_.allocTrigger) {
        startCycle();
    }
    if (phase_ != Phase::Idle)
        step();   // the incremental work tax on every allocation

    // objects never straddle pages (keeps the retrace sets and the
    // protection granularity aligned)
    if (pageOf(bump_) != pageOf(bump_ + need - 1))
        bump_ = roundUp(bump_, kPageBytes);
    if (bump_ + need > config_.heapBase + config_.heapBytes)
        UEXC_FATAL("incremental gc: heap exhausted");
    Addr header = bump_;
    bump_ += need;
    while (mapped_ < bump_) {
        env_.allocate(mapped_, kPageBytes);
        mapped_ += kPageBytes;
    }

    Addr payload = header + 4;
    env_.store(header, payload_words);
    for (unsigned i = 0; i < payload_words; i++)
        env_.store(payload + 4 * i, 0);

    Object obj;
    obj.words = payload_words;
    // objects born during a mark phase are allocated black
    obj.marked = (phase_ == Phase::Marking);
    obj.scanned = obj.marked;
    objects_[payload] = obj;
    allocatedSinceCycle_ += need;
    env_.cpu().charge(kAllocCycles);
    return payload;
}

void
IncrementalCollector::writeWord(Addr payload, unsigned index, Word value)
{
    env_.store(payload + 4 * index, value);
}

Word
IncrementalCollector::readWord(Addr payload, unsigned index)
{
    return env_.load(payload + 4 * index);
}

void
IncrementalCollector::setRoot(unsigned slot, Addr payload)
{
    if (slot >= roots_.size())
        UEXC_FATAL("incremental gc: root slot %u out of range", slot);
    roots_[slot] = payload;
    if (phase_ == Phase::Marking && objects_.count(payload)) {
        // a new root during marking must be grayed or it may be
        // swept under the mutator
        Object &obj = objects_.at(payload);
        if (!obj.marked) {
            obj.marked = true;
            gray_.push_back(payload);
        }
    }
}

Addr
IncrementalCollector::root(unsigned slot) const
{
    return roots_.at(slot);
}

void
IncrementalCollector::startCycle()
{
    if (phase_ != Phase::Idle)
        return;
    stats_.cycles++;
    phase_ = Phase::Marking;
    for (auto &entry : objects_) {
        entry.second.marked = false;
        entry.second.scanned = false;
    }
    env_.cpu().charge(objects_.size());   // mark-bit clear pass
    gray_.clear();
    for (Addr r : roots_) {
        auto it = objects_.find(r);
        if (it != objects_.end() && !it->second.marked) {
            it->second.marked = true;
            gray_.push_back(r);
        }
    }
}

void
IncrementalCollector::protectScannedPage(Addr page)
{
    if (protectedPages_.insert(page).second)
        env_.protect(page, kPageBytes, kProtRead);
}

void
IncrementalCollector::unprotectAll()
{
    for (Addr page : protectedPages_)
        env_.protect(page, kPageBytes, kProtRead | kProtWrite);
    protectedPages_.clear();
}

void
IncrementalCollector::scan(Addr payload, Object &obj)
{
    Addr end = payload + 4 * obj.words;
    for (Addr addr = payload; addr < end; addr += 4) {
        Word w = env_.load(addr);
        auto it = objects_.find(w);
        if (it != objects_.end() && !it->second.marked) {
            it->second.marked = true;
            gray_.push_back(w);
        }
    }
    obj.scanned = true;
    // the consistency barrier: once scanned, writes must be caught
    protectScannedPage(pageOf(payload));
}

void
IncrementalCollector::step()
{
    if (phase_ == Phase::Idle)
        return;
    stats_.slices++;
    Cycles before = env_.cycles();

    if (phase_ == Phase::Marking) {
        unsigned budget = config_.sliceBudget;
        while (budget-- && !gray_.empty()) {
            Addr p = gray_.front();
            gray_.pop_front();
            auto it = objects_.find(p);
            if (it == objects_.end() || it->second.scanned)
                continue;
            stats_.objectsMarked++;
            env_.cpu().charge(kVisitCycles);
            scan(p, it->second);
        }
        if (gray_.empty()) {
            // marking complete: drop the barrier, start sweeping
            unprotectAll();
            phase_ = Phase::Sweeping;
            sweepList_.clear();
            for (const auto &entry : objects_)
                sweepList_.push_back(entry.first);
            sweepCursor_ = 0;
        }
    } else if (phase_ == Phase::Sweeping) {
        unsigned budget = config_.sliceBudget;
        while (budget-- && sweepCursor_ < sweepList_.size()) {
            Addr p = sweepList_[sweepCursor_++];
            auto it = objects_.find(p);
            if (it == objects_.end())
                continue;
            env_.cpu().charge(kSweepCycles);
            if (!it->second.marked) {
                objects_.erase(it);
                stats_.objectsSwept++;
            }
        }
        if (sweepCursor_ >= sweepList_.size()) {
            phase_ = Phase::Idle;
            allocatedSinceCycle_ = 0;
        }
    }

    Cycles pause = env_.cycles() - before;
    stats_.totalPauseCycles += pause;
    stats_.maxPauseCycles = std::max(stats_.maxPauseCycles, pause);
}

void
IncrementalCollector::finishCycle()
{
    while (phase_ != Phase::Idle)
        step();
}

void
IncrementalCollector::onFault(rt::Fault &fault)
{
    Addr page = pageOf(fault.badVaddr());
    if (!protectedPages_.count(page))
        UEXC_FATAL("incremental gc: unexpected fault at 0x%08x (%s)",
                   fault.badVaddr(), sim::excName(fault.code()));
    stats_.retraceFaults++;

    // the mutator wrote into scanned territory: retrace every
    // scanned object on this page (push them gray again) and drop
    // the page's protection until they are re-scanned
    protectedPages_.erase(page);
    switch (env_.mode()) {
      case rt::DeliveryMode::UltrixSignal:
        env_.protect(page, kPageBytes, kProtRead | kProtWrite);
        break;
      case rt::DeliveryMode::FastHardwareVector:
        env_.userTlbModify(page, true, true);
        break;
      case rt::DeliveryMode::FastSoftware:
        // eager amplification re-enabled access in-kernel; align the
        // page table with the dropped protection for later refills
        env_.process().as().amplify(page);
        break;
    }
    for (auto &entry : objects_) {
        if (pageOf(entry.first) != page)
            continue;
        if (entry.second.scanned) {
            entry.second.scanned = false;
            gray_.push_back(entry.first);
            stats_.retracedObjects++;
        }
    }
}

} // namespace uexc::apps
