#include "apps/gc/gc.h"

#include "common/bits.h"
#include "common/logging.h"

namespace uexc::apps {

using namespace os;

namespace {

/** Host-side cycle charges for collector bookkeeping that has no
 *  per-word heap traffic of its own (the traffic is charged by the
 *  UserEnv accessors). Rough R3000 instruction estimates. */
constexpr Cycles kAllocCycles = 12;       // size lookup, bump, header
constexpr Cycles kMarkVisitCycles = 8;    // stack pop, header test, set
constexpr Cycles kSweepCycles = 4;        // per young object at sweep
constexpr Cycles kRootScanCycles = 3;     // per root slot

} // namespace

Collector::Collector(rt::UserEnv &env, const Config &config)
    : env_(env), config_(config), heapBump_(config.heapBase)
{
    if (!isAligned(config.heapBase, kBlockBytes))
        UEXC_FATAL("gc: heap base 0x%08x not block aligned",
                   config.heapBase);
    roots_.assign(config.numRoots, 0);

    if (config_.barrier == BarrierKind::PageProtection) {
        env_.setHandler([this](rt::Fault &f) { onFault(f); });
        if (env_.mode() != rt::DeliveryMode::UltrixSignal)
            env_.setEagerAmplify(config_.eagerAmplify);
    }
}

Collector::Block &
Collector::newBlock(bool old_gen)
{
    Block *block;
    if (!old_gen && !freeBlocks_.empty()) {
        block = freeBlocks_.back();
        freeBlocks_.pop_back();
        block->onFreeList = false;
    } else {
        if (heapBump_ + kBlockBytes > config_.heapBase + config_.heapBytes)
            UEXC_FATAL("gc: heap exhausted (%u bytes)",
                       config_.heapBytes);
        blocks_.push_back(std::make_unique<Block>());
        block = blocks_.back().get();
        block->base = heapBump_;
        heapBump_ += kBlockBytes;
        env_.allocate(block->base, kBlockBytes);
    }
    block->old = old_gen;
    block->bumpOffset = 0;
    block->objects.clear();
    return *block;
}

Addr
Collector::allocInBlock(Block &block, unsigned payload_words)
{
    Word need = 4 * (payload_words + 1);
    Addr header = block.base + block.bumpOffset;
    block.bumpOffset += need;
    Addr payload = header + 4;
    // object header: size in words (realism: the sweep phase of a real
    // collector walks these)
    env_.store(header, payload_words);
    // objects are returned zeroed (recycled blocks hold old bits)
    for (unsigned i = 0; i < payload_words; i++)
        env_.store(payload + 4 * i, 0);
    Object obj;
    obj.words = payload_words;
    obj.block = &block;
    objects_[payload] = obj;
    block.objects.push_back(payload);
    env_.cpu().charge(kAllocCycles);
    stats_.allocations++;
    stats_.allocatedBytes += need;
    return payload;
}

Addr
Collector::alloc(unsigned payload_words)
{
    Word need = 4 * (payload_words + 1);
    if (need > kBlockBytes)
        return allocOld(payload_words);

    if (youngAllocated_ + need > config_.youngBudgetBytes) {
        bool full = config_.fullCollectEvery != 0 &&
                    youngCollectsSinceFull_ + 1 >=
                        config_.fullCollectEvery;
        collectImpl(full);
    }

    if (!allocBlock_ ||
        allocBlock_->bumpOffset + need > kBlockBytes) {
        allocBlock_ = &newBlock(false);
    }
    youngAllocated_ += need;
    return allocInBlock(*allocBlock_, payload_words);
}

Addr
Collector::allocOld(unsigned payload_words)
{
    Word need = 4 * (payload_words + 1);
    unsigned nblocks = (need + kBlockBytes - 1) / kBlockBytes;
    // old large objects take fresh contiguous blocks
    Block *first = nullptr;
    for (unsigned i = 0; i < nblocks; i++) {
        Block &b = newBlock(true);
        if (!first) {
            first = &b;
        } else if (b.base != first->base + i * kBlockBytes) {
            UEXC_FATAL("gc: large object blocks not contiguous");
        }
    }
    Addr header = first->base;
    Addr payload = header + 4;
    env_.store(header, payload_words);
    Object obj;
    obj.words = payload_words;
    obj.block = first;
    objects_[payload] = obj;
    // register in every covered block so dirty-page scans find it
    Addr end = payload + 4 * payload_words;
    for (auto &bp : blocks_) {
        if (bp->base >= first->base && bp->base < end)
            if (bp.get() != first)
                bp->objects.push_back(payload);
    }
    first->objects.push_back(payload);
    env_.cpu().charge(kAllocCycles + nblocks);
    stats_.allocations++;
    stats_.allocatedBytes += need;
    if (config_.barrier == BarrierKind::PageProtection)
        reprotectOldBlocks();
    return payload;
}

bool
Collector::isOld(Addr payload) const
{
    auto it = objects_.find(payload);
    return it != objects_.end() && it->second.block->old;
}

void
Collector::writeWord(Addr payload, unsigned index, Word value)
{
    Addr addr = payload + 4 * index;
    if (config_.barrier == BarrierKind::SoftwareCheck) {
        // the inline check: is the stored-into object old and the
        // stored value a young pointer? (exact remembered set)
        stats_.barrierChecks++;
        env_.cpu().charge(config_.softwareCheckCycles);
        auto dst = objects_.find(payload);
        if (dst != objects_.end() && dst->second.block->old) {
            auto src = objects_.find(value);
            if (src != objects_.end() && !src->second.block->old) {
                if (remembered_.insert(payload).second)
                    stats_.rememberedObjects++;
            }
        }
    }
    env_.store(addr, value);
}

Word
Collector::readWord(Addr payload, unsigned index)
{
    return env_.load(payload + 4 * index);
}

void
Collector::setRoot(unsigned slot, Addr payload)
{
    if (slot >= roots_.size())
        UEXC_FATAL("gc: root slot %u out of range", slot);
    roots_[slot] = payload;
}

Addr
Collector::root(unsigned slot) const
{
    if (slot >= roots_.size())
        UEXC_FATAL("gc: root slot %u out of range", slot);
    return roots_[slot];
}

void
Collector::onFault(rt::Fault &fault)
{
    Addr page = roundDown(fault.badVaddr(), kBlockBytes);
    if (page < config_.heapBase || page >= heapBump_)
        UEXC_FATAL("gc: unexpected fault at 0x%08x (%s)",
                   fault.badVaddr(), sim::excName(fault.code()));
    stats_.barrierFaults++;
    dirtyPages_.insert(page);
    if (env_.mode() == rt::DeliveryMode::FastHardwareVector) {
        // no kernel ran: the handler re-enables access itself with
        // the TLBMP instruction (sections 2.2/3.2.3 pair user-level
        // delivery with user-level TLB protection modification)
        env_.userTlbModify(page, /*writable=*/true, /*valid=*/true);
    } else if (env_.mode() == rt::DeliveryMode::UltrixSignal ||
               !config_.eagerAmplify) {
        // Under Unix signals the handler must re-enable access with
        // mprotect (a second kernel crossing); the fast software
        // scheme with eager amplification already did it in-kernel.
        env_.protect(page, kBlockBytes, kProtRead | kProtWrite);
    }
}

void
Collector::scanObject(Addr payload, const Object &obj, bool full)
{
    Addr end = payload + 4 * obj.words;
    for (Addr addr = payload; addr < end; addr += 4) {
        Word w = env_.load(addr);
        auto it = objects_.find(w);
        if (it != objects_.end() && !it->second.marked &&
            (full || !it->second.block->old)) {
            markStack_.push_back(w);
        }
    }
}

void
Collector::collect()
{
    collectImpl(false);
}

void
Collector::fullCollect()
{
    collectImpl(true);
}

void
Collector::collectImpl(bool full)
{
    stats_.collections++;
    if (full) {
        stats_.fullCollections++;
        youngCollectsSinceFull_ = 0;
    } else {
        youngCollectsSinceFull_++;
    }
    markStack_.clear();

    // roots
    for (Addr r : roots_) {
        env_.cpu().charge(kRootScanCycles);
        auto it = objects_.find(r);
        if (it != objects_.end() &&
            (full || !it->second.block->old)) {
            markStack_.push_back(r);
        }
    }

    // barrier sources: dirty old pages or the remembered set (a full
    // collection traces through old objects and needs neither)
    if (!full && config_.barrier == BarrierKind::PageProtection) {
        for (Addr page : dirtyPages_) {
            for (auto &bp : blocks_) {
                if (bp->base != page || !bp->old)
                    continue;
                for (Addr obj_addr : bp->objects) {
                    const Object &obj = objects_.at(obj_addr);
                    // scan only the dirty-page window of the object
                    Addr lo = std::max(obj_addr, page);
                    Addr hi = std::min(obj_addr + 4 * obj.words,
                                       page + kBlockBytes);
                    for (Addr a = lo; a < hi; a += 4) {
                        Word w = env_.load(a);
                        auto it = objects_.find(w);
                        if (it != objects_.end() &&
                            !it->second.block->old &&
                            !it->second.marked) {
                            markStack_.push_back(w);
                        }
                    }
                }
            }
        }
    } else if (!full) {
        for (Addr obj_addr : remembered_) {
            auto it = objects_.find(obj_addr);
            if (it != objects_.end())
                scanObject(obj_addr, it->second, false);
        }
    }

    // mark
    while (!markStack_.empty()) {
        Addr p = markStack_.back();
        markStack_.pop_back();
        Object &obj = objects_.at(p);
        if (obj.marked || (!full && obj.block->old))
            continue;
        obj.marked = true;
        stats_.objectsMarked++;
        env_.cpu().charge(kMarkVisitCycles);
        scanObject(p, obj, full);
    }

    // sweep; promote young blocks with survivors, recycle empty ones
    for (auto &bp : blocks_) {
        Block &b = *bp;
        if (!full && b.old)
            continue;
        std::vector<Addr> survivors;
        for (Addr obj_addr : b.objects) {
            env_.cpu().charge(kSweepCycles);
            auto it = objects_.find(obj_addr);
            if (it == objects_.end())
                continue;   // multi-block object already erased
            Object &obj = it->second;
            if (obj.marked) {
                survivors.push_back(obj_addr);
            } else {
                objects_.erase(it);
                stats_.objectsSwept++;
            }
        }
        b.objects = std::move(survivors);
        if (!b.objects.empty()) {
            if (!b.old) {
                b.old = true;
                stats_.blocksPromoted++;
            }
        } else if (!b.onFreeList) {
            b.old = false;
            b.bumpOffset = 0;
            b.onFreeList = true;
            freeBlocks_.push_back(&b);
        }
    }
    // clear mark bits on every survivor (old survivors of a full
    // collection keep their entries)
    for (auto &entry : objects_)
        entry.second.marked = false;

    allocBlock_ = nullptr;
    youngAllocated_ = 0;
    dirtyPages_.clear();
    remembered_.clear();

    if (config_.barrier == BarrierKind::PageProtection)
        reprotectOldBlocks();
}

void
Collector::reprotectOldBlocks()
{
    // write-protect the old generation in maximal contiguous runs
    // (each run is one mprotect-style call, with its real cost)
    std::vector<Addr> old_bases;
    for (auto &bp : blocks_) {
        if (bp->old)
            old_bases.push_back(bp->base);
    }
    std::sort(old_bases.begin(), old_bases.end());
    std::size_t i = 0;
    while (i < old_bases.size()) {
        std::size_t j = i + 1;
        while (j < old_bases.size() &&
               old_bases[j] == old_bases[j - 1] + kBlockBytes) {
            j++;
        }
        Word len = static_cast<Word>((j - i) * kBlockBytes);
        env_.protect(old_bases[i], len, kProtRead);
        stats_.pagesReprotected += (j - i);
        i = j;
    }
}

} // namespace uexc::apps
