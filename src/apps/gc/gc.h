/**
 * @file
 * A conservative, non-moving, generational mark-sweep collector in
 * the style of the Xerox/Boehm-Weiser collector the paper measures
 * (section 4.1, Table 4).
 *
 * The heap lives in the simulated address space and is accessed
 * through a rt::UserEnv, so every heap word read or written costs
 * simulated cycles and every protection fault runs the full simulated
 * delivery path of whichever mechanism is configured.
 *
 * Old-to-young pointer tracking — the generational write barrier — is
 * pluggable with the paper's three competing strategies:
 *
 *  - BarrierKind::PageProtection
 *      Pages holding old-generation blocks are write-protected after
 *      each collection. A store into one faults; the handler records
 *      the page as dirty. Under UltrixSignal delivery the handler
 *      must also mprotect() the page writable (a second kernel
 *      crossing); under FastSoftware delivery with eager
 *      amplification the kernel already re-enabled access before the
 *      upcall (section 3.2.3), so the handler only records.
 *
 *  - BarrierKind::SoftwareCheck
 *      Every pointer store through the mutator API pays an inline
 *      check of a configurable cycle cost (Hosking & Moss's 5
 *      instructions by default) and maintains an exact remembered
 *      set. No protection faults occur.
 *
 * Blocks are 4 KB and promotion is block-granular: a block with any
 * survivor becomes old wholesale, which is what makes page-level
 * protection line up with generation boundaries (as in the Xerox
 * collector's block structure).
 */

#ifndef UEXC_APPS_GC_GC_H
#define UEXC_APPS_GC_GC_H

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/env.h"

namespace uexc::apps {

/** Write-barrier strategy. */
enum class BarrierKind
{
    PageProtection,
    SoftwareCheck,
};

/** Collector statistics. */
struct GcStats
{
    std::uint64_t allocations = 0;
    std::uint64_t allocatedBytes = 0;
    std::uint64_t collections = 0;
    std::uint64_t fullCollections = 0;
    std::uint64_t objectsMarked = 0;
    std::uint64_t objectsSwept = 0;
    std::uint64_t blocksPromoted = 0;
    std::uint64_t barrierFaults = 0;     ///< protection-fault barrier hits
    std::uint64_t barrierChecks = 0;     ///< software-check barrier hits
    std::uint64_t rememberedObjects = 0;
    std::uint64_t pagesReprotected = 0;
};

/**
 * The collector. See file comment.
 */
class Collector
{
  public:
    struct Config
    {
        Addr heapBase = 0x10000000;
        /** Maximum heap size (block-aligned). */
        Word heapBytes = 8 * 1024 * 1024;
        BarrierKind barrier = BarrierKind::PageProtection;
        /** Young-generation allocation budget between collections. */
        Word youngBudgetBytes = 256 * 1024;
        /** Cycles per inline software check (Hosking & Moss: 5). */
        Cycles softwareCheckCycles = 5;
        /** Use eager amplification (fast delivery modes only). */
        bool eagerAmplify = true;
        /** Number of root slots. */
        unsigned numRoots = 64;
        /** Run a full (all-generations) collection every N young
         *  collections; 0 disables full collections. */
        unsigned fullCollectEvery = 8;
    };

    Collector(rt::UserEnv &env, const Config &config);

    // -- mutator interface ---------------------------------------------

    /**
     * Allocate an object of @p payload_words words; returns the
     * payload address (header is one word before). Triggers a young
     * collection when the allocation budget is exhausted. Returns
     * objects zeroed.
     */
    Addr alloc(unsigned payload_words);

    /**
     * Allocate directly into the old generation (for long-lived
     * structures like the array test's 1 MB array). May span blocks.
     */
    Addr allocOld(unsigned payload_words);

    /** Pointer store through the write barrier. */
    void writeWord(Addr payload, unsigned index, Word value);
    /** Heap read (costed through the simulated memory system). */
    Word readWord(Addr payload, unsigned index);

    /** Root slots: the mutator's named references into the heap. */
    void setRoot(unsigned slot, Addr payload);
    Addr root(unsigned slot) const;

    // -- collection -----------------------------------------------------------

    /** Force a young-generation collection. */
    void collect();
    /** Force a full (young + old) collection. */
    void fullCollect();

    const GcStats &stats() const { return stats_; }
    /** Live young+old object count (for tests). */
    std::size_t liveObjects() const { return objects_.size(); }
    /** Whether @p payload is a live object payload address. */
    bool isObject(Addr payload) const
    {
        return objects_.count(payload) != 0;
    }
    bool isOld(Addr payload) const;

  private:
    static constexpr Word kBlockBytes = os::kPageBytes;

    struct Block
    {
        Addr base = 0;
        bool old = false;
        bool onFreeList = false;
        Word bumpOffset = 0;
        std::vector<Addr> objects;  ///< payload addresses
    };

    struct Object
    {
        unsigned words = 0;
        bool marked = false;
        Block *block = nullptr;
    };

    Block &newBlock(bool old_gen);
    Addr allocInBlock(Block &block, unsigned payload_words);
    void onFault(rt::Fault &fault);
    void collectImpl(bool full);
    void scanObject(Addr payload, const Object &obj, bool full);
    void reprotectOldBlocks();

    rt::UserEnv &env_;
    Config config_;
    GcStats stats_;

    Addr heapBump_;                       ///< next fresh block address
    std::vector<std::unique_ptr<Block>> blocks_;
    std::vector<Block *> freeBlocks_;
    Block *allocBlock_ = nullptr;         ///< current young alloc block
    std::unordered_map<Addr, Object> objects_;
    std::vector<Addr> roots_;
    Word youngAllocated_ = 0;

    // barrier state
    std::unordered_set<Addr> dirtyPages_;
    std::unordered_set<Addr> remembered_;  ///< software-check barrier
    std::vector<Addr> markStack_;
    unsigned youngCollectsSinceFull_ = 0;
};

} // namespace uexc::apps

#endif // UEXC_APPS_GC_GC_H
