#include "apps/gc/workloads.h"

#include <random>

namespace uexc::apps {

namespace {

/** Root slot assignments. */
constexpr unsigned kRootTree = 0;
constexpr unsigned kRootPersistent = 1;
constexpr unsigned kRootArray = 2;

/** cons: a fresh 2-word cell (car, cdr) through the write barrier. */
Addr
cons(Collector &gc, Addr car, Addr cdr)
{
    Addr cell = gc.alloc(2);
    gc.writeWord(cell, 0, car);
    gc.writeWord(cell, 1, cdr);
    return cell;
}

/** Build a binary tree of cons cells, depth @p depth. */
Addr
buildTree(Collector &gc, unsigned depth)
{
    if (depth == 0)
        return 0;
    // keep partial trees reachable through the tree root slot so a
    // collection in the middle of construction does not reclaim them
    Addr left = buildTree(gc, depth - 1);
    gc.setRoot(kRootTree, left);
    Addr right = buildTree(gc, depth - 1);
    Addr node = gc.alloc(2);
    gc.writeWord(node, 0, left);
    gc.writeWord(node, 1, right);
    gc.setRoot(kRootTree, node);
    return node;
}

GcRunResult
finish(rt::UserEnv &env, Collector &gc, Cycles start_cycles,
       std::uint64_t start_faults)
{
    GcRunResult r;
    r.cycles = env.cycles() - start_cycles;
    r.cpuSeconds = env.cpu().config().cost.toMicros(r.cycles) / 1e6;
    r.gc = gc.stats();
    r.faultsDelivered = env.stats().faultsDelivered - start_faults;
    return r;
}

} // namespace

GcRunResult
runLispOps(rt::UserEnv &env, BarrierKind barrier,
           const GcWorkloadParams &params)
{
    Collector::Config cfg;
    cfg.barrier = barrier;
    if (params.youngBudgetBytes)
        cfg.youngBudgetBytes = params.youngBudgetBytes;
    Collector gc(env, cfg);

    Cycles start = env.cycles();
    std::uint64_t faults0 = env.stats().faultsDelivered;

    // A persistent list accumulates one cell per round (it tenures
    // quickly), and each round stores fresh pointers into reachable
    // *old* cells — the older-to-younger stores of section 4.1.
    Addr persistent = 0;
    std::mt19937 rng(params.rngSeed);

    for (unsigned round = 0; round < params.lispIterations; round++) {
        // car/cdr-style traffic: build a tree, walk parts of it
        Addr tree = buildTree(gc, params.lispTreeDepth);
        gc.setRoot(kRootTree, tree);

        // walk: car-chain to a leaf a few times (read traffic)
        for (int walk = 0; walk < 8; walk++) {
            Addr p = tree;
            while (p != 0)
                p = gc.readWord(p, rng() & 1);
        }

        // grow the persistent structure and mutate old cells: store
        // freshly allocated cells into randomly chosen persistent
        // (old) cells, creating old-to-young pointers
        persistent = cons(gc, tree, persistent);
        gc.setRoot(kRootPersistent, persistent);

        for (unsigned m = 0; m < params.lispMutationsPerRound; m++) {
            Addr p = persistent;
            unsigned hops = rng() % 28;
            for (unsigned i = 0; i < hops && p != 0; i++) {
                Addr next = gc.readWord(p, 1);
                if (next == 0)
                    break;
                p = next;
            }
            if (p != 0 && gc.isOld(p)) {
                Addr fresh = cons(gc, 0, 0);
                gc.writeWord(p, 0, fresh);
            }
        }
        // drop the tree: next round's collection reclaims it
        gc.setRoot(kRootTree, 0);
    }
    return finish(env, gc, start, faults0);
}

GcRunResult
runArrayTest(rt::UserEnv &env, BarrierKind barrier,
             const GcWorkloadParams &params)
{
    Collector::Config cfg;
    cfg.barrier = barrier;
    cfg.heapBytes = 12 * 1024 * 1024;
    if (params.arrayYoungBudgetBytes)
        cfg.youngBudgetBytes = params.arrayYoungBudgetBytes;
    else if (params.youngBudgetBytes)
        cfg.youngBudgetBytes = params.youngBudgetBytes;
    Collector gc(env, cfg);

    Cycles start = env.cycles();
    std::uint64_t faults0 = env.stats().faultsDelivered;

    Addr array = gc.allocOld(params.arrayWords);
    gc.setRoot(kRootArray, array);

    std::mt19937 rng(params.rngSeed);
    for (unsigned i = 0; i < params.arrayReplacements; i++) {
        unsigned index = rng() % params.arrayWords;
        // each replacement creates garbage: the old element becomes
        // unreachable, the new cell is young
        Addr cell = cons(gc, i, 0);
        gc.writeWord(array, index, cell);
        // mutator read traffic
        if ((i & 7) == 0) {
            Addr v = gc.readWord(array, rng() % params.arrayWords);
            if (gc.isObject(v))
                gc.readWord(v, 0);
        }
    }
    return finish(env, gc, start, faults0);
}

} // namespace uexc::apps
