/**
 * @file
 * The two synthetic applications of Table 4 (section 4.1):
 *
 *  - "Lisp Operations": repeatedly builds large cons-cell structures
 *    (trees and lists) without explicit deallocation, while an
 *    accumulating long-lived structure receives pointers to fresh
 *    cells — the old-to-young stores that exercise the generational
 *    write barrier. The paper's run performs ~80 collections and
 *    generates over 2000 protection faults.
 *
 *  - "Array Test": a large (1 MB) old-generation array whose elements
 *    are randomly replaced with freshly allocated cells; relative to
 *    total running time this creates many more old-to-young stores
 *    than the Lisp workload (and so benefits more from cheap
 *    exceptions).
 *
 * Workload sizes are scaled down from the paper's absolute seconds
 * (the success criterion is the relative improvement, Table 4's
 * rightmost column); the fault and collection counts are kept in the
 * paper's regime.
 */

#ifndef UEXC_APPS_GC_WORKLOADS_H
#define UEXC_APPS_GC_WORKLOADS_H

#include "apps/gc/gc.h"

namespace uexc::apps {

/** Result of one workload run. */
struct GcRunResult
{
    Cycles cycles = 0;        ///< total simulated CPU cycles
    double cpuSeconds = 0;    ///< at the machine's clock
    GcStats gc;
    std::uint64_t faultsDelivered = 0;
};

/** Tuning knobs (defaults reproduce the paper's regime, scaled). */
struct GcWorkloadParams
{
    unsigned lispIterations = 1200;  ///< tree build/drop rounds
    unsigned lispTreeDepth = 10;     ///< 2^d - 1 cons cells per tree
    unsigned lispMutationsPerRound = 2;  ///< old-cell stores per round
    unsigned arrayWords = 256 * 1024;   ///< 1 MB array
    unsigned arrayReplacements = 340000;
    /** Young-generation budget; 0 keeps the collector default. */
    Word youngBudgetBytes = 128 * 1024;
    /** Array-test young budget; 0 falls back to youngBudgetBytes. */
    Word arrayYoungBudgetBytes = 600 * 1024;
    unsigned rngSeed = 12345;
};

/** Run the Lisp-operations workload on an installed environment. */
GcRunResult runLispOps(rt::UserEnv &env, BarrierKind barrier,
                       const GcWorkloadParams &params = {});

/** Run the array-replacement workload. */
GcRunResult runArrayTest(rt::UserEnv &env, BarrierKind barrier,
                         const GcWorkloadParams &params = {});

} // namespace uexc::apps

#endif // UEXC_APPS_GC_WORKLOADS_H
