#include "core/supervise.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/faultinject.h"

namespace uexc::rt::supervise {

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Wedged: return "wedged";
      case FailureKind::Crashed: return "crashed";
      case FailureKind::CorruptedImage: return "corrupted-image";
      case FailureKind::Partitioned: return "partitioned";
      case FailureKind::HostDown: return "host-down";
    }
    return "?";
}

const char *
actionName(Action action)
{
    switch (action) {
      case Action::Restart: return "restart";
      case Action::Remigrate: return "remigrate";
      case Action::Quarantine: return "quarantine";
    }
    return "?";
}

std::string
decisionLine(const Decision &d)
{
    std::string line = "tick " + std::to_string(d.tick) + " guest " +
                       std::to_string(d.guest) + ": " +
                       failureKindName(d.failure) + " -> " +
                       actionName(d.action) + " (failure #" +
                       std::to_string(d.consecutiveFailures) +
                       ", backoff " + std::to_string(d.backoffTicks) +
                       " ticks)";
    if (!d.note.empty())
        line += " — " + d.note;
    return line;
}

static std::uint64_t
percentileOf(std::vector<std::uint64_t> samples, double p)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    double rank = p / 100.0 * double(samples.size() - 1);
    std::size_t idx = std::size_t(rank + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

std::uint64_t
SupervisorStats::mttrTicksPercentile(double p) const
{
    return percentileOf(mttrTicks, p);
}

Cycles
SupervisorStats::mttrCyclesPercentile(double p) const
{
    return percentileOf(mttrCycles, p);
}

Supervisor::Supervisor(const SupervisorConfig &config)
    : config_(config), rng_(config.seed ^ 0x73757056ull) // "supV"
{
    if (config_.quarantineAfter == 0)
        UEXC_FATAL("supervisor: quarantineAfter must be at least 1");
}

Supervisor::GuestHealth &
Supervisor::health(unsigned guest)
{
    if (guest >= guests_.size())
        guests_.resize(guest + 1);
    return guests_[guest];
}

void
Supervisor::track(unsigned guest)
{
    (void)health(guest);
}

bool
Supervisor::heartbeat(unsigned guest, std::uint64_t tick,
                      std::uint64_t progress, std::uint64_t budget_echo)
{
    (void)tick;
    GuestHealth &h = health(guest);
    stats_.heartbeats++;
    if (h.quarantined || h.down)
        return false;
    bool alive = !h.everBeat || progress != h.lastProgress ||
                 budget_echo != h.lastEcho;
    h.everBeat = true;
    h.lastProgress = progress;
    h.lastEcho = budget_echo;
    if (alive) {
        h.stalledBeats = 0;
        return false;
    }
    h.stalledBeats++;
    if (h.stalledBeats >= config_.wedgedAfterBeats) {
        stats_.wedgeDetections++;
        return true;
    }
    return false;
}

Decision
Supervisor::onFailure(unsigned guest, std::uint64_t tick,
                      Cycles sim_cycles, FailureKind kind,
                      const std::string &note)
{
    GuestHealth &h = health(guest);
    stats_.failuresByKind[unsigned(kind)]++;
    if (!h.down) {
        h.down = true;
        h.downSinceTick = tick;
        h.downSinceCycles = sim_cycles;
    }
    h.consecutiveFailures++;
    h.stalledBeats = 0;

    Decision d;
    d.tick = tick;
    d.guest = guest;
    d.failure = kind;
    d.consecutiveFailures = h.consecutiveFailures;
    d.note = note;

    if (h.consecutiveFailures >= config_.quarantineAfter) {
        d.action = Action::Quarantine;
        h.quarantined = true;
        stats_.quarantines++;
    } else {
        switch (kind) {
          case FailureKind::HostDown:
          case FailureKind::Partitioned:
            d.action = Action::Remigrate;
            stats_.remigrations++;
            break;
          case FailureKind::Wedged:
          case FailureKind::Crashed:
          case FailureKind::CorruptedImage:
            d.action = Action::Restart;
            stats_.restarts++;
            break;
        }
        if (h.consecutiveFailures > 1) {
            std::uint64_t shift = h.consecutiveFailures - 2;
            std::uint64_t backoff =
                shift >= 63 ? config_.backoffCapTicks
                            : std::min(config_.backoffCapTicks,
                                       config_.backoffBaseTicks
                                           << shift);
            // Seeded jitter decorrelates retry storms across guests
            // without breaking determinism.
            backoff += sim::FaultInjector::splitmix64(rng_) % 2;
            d.backoffTicks = backoff;
            stats_.backoffTicksCharged += backoff;
        }
    }
    h.retryAtTick = tick + d.backoffTicks;
    log_.push_back(d);
    return log_.back();
}

void
Supervisor::onRecovered(unsigned guest, std::uint64_t tick,
                        Cycles sim_cycles)
{
    GuestHealth &h = health(guest);
    if (!h.down)
        return;
    h.down = false;
    h.consecutiveFailures = 0;
    h.stalledBeats = 0;
    // Recovery resets the liveness baseline: the next beat re-seeds
    // the progress counters instead of comparing across the outage.
    h.everBeat = false;
    stats_.recoveries++;
    stats_.mttrTicks.push_back(tick - h.downSinceTick);
    stats_.mttrCycles.push_back(sim_cycles >= h.downSinceCycles
                                    ? sim_cycles - h.downSinceCycles
                                    : 0);
}

bool
Supervisor::quarantined(unsigned guest) const
{
    return guest < guests_.size() && guests_[guest].quarantined;
}

bool
Supervisor::down(unsigned guest) const
{
    return guest < guests_.size() && guests_[guest].down;
}

std::uint64_t
Supervisor::retryAtTick(unsigned guest) const
{
    return guest < guests_.size() ? guests_[guest].retryAtTick : 0;
}

unsigned
Supervisor::consecutiveFailures(unsigned guest) const
{
    return guest < guests_.size() ? guests_[guest].consecutiveFailures
                                  : 0;
}

std::string
Supervisor::decisionLogText() const
{
    std::string text;
    for (const Decision &d : log_) {
        text += decisionLine(d);
        text += '\n';
    }
    return text;
}

} // namespace uexc::rt::supervise
