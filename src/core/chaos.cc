#include "core/chaos.h"

#include <algorithm>

#include "common/guesterror.h"
#include "common/logging.h"
#include "core/migrate.h"
#include "sim/snapshot.h"

namespace uexc::rt::chaos {

namespace {

/** Repro-file sections: metadata plus the nested rig snapshot. */
constexpr Word kTagRepro = sim::snapshotTag('R', 'P', 'R', 'O');
constexpr Word kTagReproSnap = sim::snapshotTag('R', 'S', 'N', 'P');

/**
 * Execute one planned migration/host-crash op against the running
 * campaign. On a successful migration @p rig is swapped onto the
 * destination twin (its injector joins @p injectors so event streams
 * outlive every machine that references them); graceful failures
 * leave the source running; guest-lost outcomes throw a
 * deterministic GuestError whose message the shrinker matches on.
 */
void
performMigrateOp(const MigrateOp &op, std::unique_ptr<Rig> &rig,
                 std::vector<std::unique_ptr<sim::FaultInjector>>
                     &injectors,
                 const RigConfig &config)
{
    if (op.kind == MigrateOp::Kind::HostCrash) {
        throw GuestError(0, 0, 0,
                         "guest lost: host crashed under the campaign "
                         "at op " + std::to_string(op.atOp));
    }

    auto inj = std::make_unique<sim::FaultInjector>();
    auto dst = std::make_unique<Rig>(inj.get(), config);

    if (op.crash == MigrateOp::Crash::None) {
        migrate::MigrationConfig mc;
        mc.transport = op.weather;
        migrate::MigrationResult res =
            migrate::migrateRig(*rig, *dst, mc);
        if (res.succeeded) {
            injectors.push_back(std::move(inj));
            rig = std::move(dst);
        }
        // Typed failure: the source never stopped; the campaign
        // continues where it is.
        return;
    }

    // Endpoint crash mid-transfer: deliver a deterministic fraction
    // of the chunks, then the planned host dies.
    migrate::TransferSession session(rig->checkpoint(), op.weather);
    unsigned target = unsigned(
        std::uint64_t(session.chunksTotal()) *
        std::min(op.crashAfterPercent, 100u) / 100);
    try {
        session.runSome(target);
    } catch (const migrate::MigrateError &) {
        // The network partitioned before the crash point; the crash
        // below still happens (it was never contingent on progress).
    }
    if (op.crash == MigrateOp::Crash::Dest) {
        // The destination died holding a partial image: nothing was
        // ever restored, the source never stopped. Graceful.
        return;
    }
    const char *who = op.crash == MigrateOp::Crash::Both
                          ? "both hosts"
                          : "source host";
    throw GuestError(
        0, 0, 0,
        std::string("guest lost: ") + who +
            " crashed mid-migration at op " + std::to_string(op.atOp) +
            " (" + std::to_string(session.chunksDelivered()) + "/" +
            std::to_string(session.chunksTotal()) +
            " chunks delivered)");
}

/** Pointers to the plan's ops, stably sorted by atOp. */
std::vector<const MigrateOp *>
sortedPlan(const MigrationPlan *migrations)
{
    std::vector<const MigrateOp *> plan;
    if (migrations != nullptr)
        for (const MigrateOp &op : *migrations)
            plan.push_back(&op);
    std::stable_sort(plan.begin(), plan.end(),
                     [](const MigrateOp *a, const MigrateOp *b) {
                         return a->atOp < b->atOp;
                     });
    return plan;
}

} // namespace

MigrationPlan
planMigrationOps(std::uint64_t seed, unsigned count)
{
    using sim::FaultInjector;
    MigrationPlan plan;
    std::uint64_t rng = seed ^ 0x6d69677261746500ull; // "migrate\0"
    for (unsigned i = 0; i < count; i++) {
        MigrateOp op;
        op.atOp = 1 + unsigned(FaultInjector::splitmix64(rng) %
                               (kTotalOps - 1));
        op.weather.seed = FaultInjector::splitmix64(rng);
        op.weather.lossPercent =
            unsigned(FaultInjector::splitmix64(rng) % 10);
        op.weather.corruptPercent =
            unsigned(FaultInjector::splitmix64(rng) % 8);
        op.weather.dupPercent =
            unsigned(FaultInjector::splitmix64(rng) % 6);
        op.weather.delayPercent =
            unsigned(FaultInjector::splitmix64(rng) % 10);
        unsigned kind = unsigned(FaultInjector::splitmix64(rng) % 10);
        if (kind == 8) {
            op.kind = MigrateOp::Kind::HostCrash;
        } else if (kind == 9) {
            unsigned crash =
                unsigned(FaultInjector::splitmix64(rng) % 3);
            op.crash = crash == 0   ? MigrateOp::Crash::Source
                       : crash == 1 ? MigrateOp::Crash::Dest
                                    : MigrateOp::Crash::Both;
            op.crashAfterPercent =
                10 + unsigned(FaultInjector::splitmix64(rng) % 81);
        }
        plan.push_back(op);
    }
    std::stable_sort(plan.begin(), plan.end(),
                     [](const MigrateOp &a, const MigrateOp &b) {
                         return a.atOp < b.atOp;
                     });
    return plan;
}

// -- Rig --------------------------------------------------------------------

Rig::Rig(sim::FaultInjector *injector, const RigConfig &config)
    : config_(config), injector_(injector)
{
    sim::MachineConfig mcfg;
    if (config.memBytes != 0)
        mcfg.memBytes = config.memBytes;
    mcfg.cpu.userVectorHw = config.hardwareExtensions;
    mcfg.cpu.tlbmpHw = config.hardwareExtensions;
    mcfg.cpu.fastInterpreter = config.fastInterpreter;
    mcfg.cpu.faultInjector = injector;
    mcfg.scheduler = config.scheduler;
    machine_ = std::make_unique<sim::Machine>(mcfg);
    kernel_ = std::make_unique<os::Kernel>(*machine_);
    kernel_->boot();
    env_ = std::make_unique<UserEnv>(*kernel_,
                                     DeliveryMode::FastSoftware);
    env_->install(0xffff);
    env_->allocate(kRegion, kRegionBytes);
    env_->allocate(kScratch, os::kPageBytes);
    env_->setHandler([this](Fault &) {
        // Idempotent recovery: make the whole region writable.
        env_->protect(kRegion, kRegionBytes,
                      os::kProtRead | os::kProtWrite);
    });
    env_->store(kScratch, 0x5c5c5c5cu); // map it for good
    env_->setHandlerBudget(config.handlerBudget);

    if (injector_) {
        machine_->registerSnapshotSection(
            sim::snapshotTag('F', 'I', 'N', 'J'),
            [this](sim::SnapshotWriter &w) {
                injector_->snapshotSave(w);
            },
            [this](sim::SnapshotReader &r) {
                injector_->snapshotLoad(r);
            });
    }
    machine_->registerSnapshotSection(
        sim::snapshotTag('C', 'R', 'I', 'G'),
        [this](sim::SnapshotWriter &w) {
            w.u32(cursor_);
            w.u32(static_cast<Word>(words_.size()));
            for (Word word : words_)
                w.u32(word);
        },
        [this](sim::SnapshotReader &r) {
            Word cursor = r.u32();
            if (cursor > kTotalOps)
                r.fail("rig op cursor out of range");
            Word nwords = r.u32();
            unsigned reads_done =
                cursor > kChaosOps + kFinalWords
                    ? cursor - (kChaosOps + kFinalWords)
                    : 0;
            if (nwords != reads_done)
                r.fail("rig word count inconsistent with op cursor");
            std::vector<Word> words(nwords);
            for (Word &word : words)
                word = r.u32();
            cursor_ = cursor;
            words_ = std::move(words);
        });
}

void
Rig::restore(const std::vector<Byte> &image)
{
    machine_->restore(image);
}

void
Rig::runTo(unsigned op)
{
    if (op > kTotalOps)
        UEXC_FATAL("chaos: op %u past the end of the campaign", op);
    while (cursor_ < op) {
        runOp(cursor_);
        cursor_++;
    }
}

void
Rig::runOp(unsigned op)
{
    if (op < kChaosOps) {
        // Protection-fault churn: the window injections land in.
        unsigned round = op / kOpsPerRound;
        unsigned step = op % kOpsPerRound;
        if (step == 0) {
            env_->protect(kRegion, kRegionBytes, os::kProtRead);
        } else if (step <= 8) {
            unsigned i = step - 1;
            Addr va = kRegion + ((round * 8 + i) * 132u) % kRegionBytes;
            env_->store(va & ~3u, round * 100 + i);
        } else if (step <= 12) {
            unsigned i = step - 9;
            (void)env_->load(kRegion + (i * 292u) % kRegionBytes);
        } else {
            (void)env_->load(kScratch);
        }
        return;
    }

    unsigned f = op - kChaosOps;
    if (f == 0 && injector_ != nullptr) {
        // Close the injection window before recovery rewrites the
        // region; still-pending events never fired.
        injector_->clear();
    }
    if (f < kFinalWords) {
        Word off = f * kCheckStride;
        env_->store(kRegion + off, 0xabcd0000u + off);
    } else {
        Word off = (f - kFinalWords) * kCheckStride;
        words_.push_back(env_->load(kRegion + off));
    }
}

// -- campaigns --------------------------------------------------------------

std::vector<sim::FaultEvent>
planEvents(std::uint64_t seed, InstCount window, Rig &rig,
           bool *may_diagnose)
{
    using sim::FaultInjector;
    using sim::FaultKind;

    std::vector<sim::FaultEvent> events;
    bool may = false;
    std::uint64_t rng = seed;
    unsigned nevents = 1 + FaultInjector::splitmix64(rng) % 3;
    for (unsigned i = 0; i < nevents; i++) {
        sim::FaultEvent e;
        e.kind =
            static_cast<FaultKind>(FaultInjector::splitmix64(rng) % 5);
        e.hart = 0;
        e.atInst = rig.env().cpu().instret() +
                   FaultInjector::splitmix64(rng) % window;
        switch (e.kind) {
          case FaultKind::MemBitFlip: {
            // Confined to the workload region: the recovery contract
            // (final rewrite) covers exactly this memory.
            Word off = static_cast<Word>(FaultInjector::splitmix64(rng) %
                                         kRegionBytes) &
                       ~3u;
            e.addr =
                rig.physOf(kRegion + (off & ~(os::kPageBytes - 1))) +
                (off & (os::kPageBytes - 1));
            e.bit = FaultInjector::splitmix64(rng) % 32;
            break;
          }
          case FaultKind::TlbCorrupt:
          case FaultKind::TlbSpuriousMiss:
            e.tlbIndex =
                static_cast<unsigned>(FaultInjector::splitmix64(rng));
            // Only in-place corruption may end in a diagnosis (the
            // pmap consistency check); an eviction always recovers.
            may |= e.kind == FaultKind::TlbCorrupt;
            break;
          case FaultKind::SpuriousException:
            // Always transparent since the injector masks the stub's
            // K0 resume window (the PR 4 hazard): the refill lands
            // one instruction later, where k0 is dead.
            e.addr = kScratch;
            break;
          case FaultKind::HandlerRunaway: {
            Addr page = rig.env().stubAddr() & ~(os::kPageBytes - 1);
            e.addr = rig.physOf(page) +
                     (rig.env().stubAddr() & (os::kPageBytes - 1));
            break;
          }
        }
        events.push_back(e);
    }
    if (may_diagnose != nullptr)
        *may_diagnose = may;
    return events;
}

Reference
makeReference(const RigConfig &config)
{
    Reference ref;
    Rig rig(nullptr, config);
    rig.runTo(kChaosOps);
    ref.window = rig.env().cpu().instret();
    rig.run();
    ref.words = rig.words();
    return ref;
}

CampaignOutcome
runCampaign(std::uint64_t seed, InstCount window,
            const std::vector<Word> &reference, const RigConfig &config,
            unsigned checkpoint_every_ops,
            std::vector<CampaignCheckpoint> *checkpoints,
            const MigrationPlan *migrations)
{
    CampaignOutcome out;
    // Injectors must outlive every rig whose machine references them,
    // and a migration op swaps the campaign onto a fresh rig with its
    // own injector — hence the vector, declared first.
    std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
    std::unique_ptr<Rig> rig;
    try {
        injectors.push_back(std::make_unique<sim::FaultInjector>());
        rig = std::make_unique<Rig>(injectors.front().get(), config);
        bool may = false;
        for (const sim::FaultEvent &e :
             planEvents(seed, window, *rig, &may)) {
            injectors.front()->addEvent(e);
        }
        out.mayDiagnose = may;

        std::vector<const MigrateOp *> plan = sortedPlan(migrations);
        std::size_t next_op = 0;
        unsigned last_checkpoint_op = ~0u;
        while (!rig->done()) {
            unsigned cursor = rig->cursor();
            // Checkpoint before any migration planned at the same op,
            // so a replay from this checkpoint re-performs it.
            if (checkpoint_every_ops != 0 && checkpoints != nullptr &&
                cursor % checkpoint_every_ops == 0 &&
                last_checkpoint_op != cursor) {
                checkpoints->push_back({cursor,
                                        rig->env().cpu().instret(),
                                        rig->checkpoint()});
                last_checkpoint_op = cursor;
            }
            while (next_op < plan.size() &&
                   plan[next_op]->atOp <= cursor) {
                if (plan[next_op]->atOp == cursor)
                    performMigrateOp(*plan[next_op], rig, injectors,
                                     config);
                next_op++;
            }
            unsigned next = kTotalOps;
            if (checkpoint_every_ops != 0)
                next = std::min(next,
                                cursor + checkpoint_every_ops -
                                    cursor % checkpoint_every_ops);
            if (next_op < plan.size())
                next = std::min(next, plan[next_op]->atOp);
            rig->runTo(next);
        }
        out.words = rig->words();
        if (out.words != reference) {
            out.hostFailure = true;
            out.failOp = kTotalOps;
            out.what = "final contents diverged from reference";
        }
    } catch (const GuestError &e) {
        out.diagnosed = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (const std::exception &e) {
        out.hostFailure = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (...) {
        out.hostFailure = true;
        out.what = "unknown exception";
        out.failOp = rig ? rig->cursor() + 1 : 0;
    }
    return out;
}

// -- minimal repro windows ---------------------------------------------------

CampaignOutcome
replayRepro(const ReproWindow &repro,
            const std::vector<Word> &reference)
{
    CampaignOutcome out;
    std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
    std::unique_ptr<Rig> rig;
    try {
        injectors.push_back(std::make_unique<sim::FaultInjector>());
        rig = std::make_unique<Rig>(injectors.front().get(),
                                    repro.config);
        rig->restore(repro.snapshot);
        if (rig->cursor() != repro.startOp) {
            throw sim::SnapshotError(
                "repro snapshot op cursor does not match startOp");
        }
        // Ops before the window need no replay: a completed migration
        // left the guest bit-identical and a graceful failure touched
        // nothing — their effect (or lack of it) is already inside
        // the snapshot.
        std::vector<const MigrateOp *> plan =
            sortedPlan(&repro.migrations);
        std::size_t next_op = 0;
        while (rig->cursor() < repro.endOp) {
            unsigned cursor = rig->cursor();
            while (next_op < plan.size() &&
                   plan[next_op]->atOp <= cursor) {
                if (plan[next_op]->atOp == cursor &&
                    plan[next_op]->atOp >= repro.startOp)
                    performMigrateOp(*plan[next_op], rig, injectors,
                                     repro.config);
                next_op++;
            }
            unsigned next = repro.endOp;
            if (next_op < plan.size())
                next = std::min(next, plan[next_op]->atOp);
            rig->runTo(next);
        }
        if (repro.endOp == kTotalOps) {
            out.words = rig->words();
            if (out.words != reference) {
                out.hostFailure = true;
                out.failOp = kTotalOps;
                out.what = "final contents diverged from reference";
            }
        }
    } catch (const GuestError &e) {
        out.diagnosed = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (const std::exception &e) {
        out.hostFailure = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (...) {
        out.hostFailure = true;
        out.what = "unknown exception";
        out.failOp = rig ? rig->cursor() + 1 : 0;
    }
    return out;
}

ReproWindow
shrinkCampaign(std::uint64_t seed, InstCount window,
               const std::vector<Word> &reference,
               const RigConfig &config, unsigned checkpoint_every_ops,
               const MigrationPlan *migrations)
{
    ReproWindow repro;
    repro.seed = seed;
    repro.window = window;
    repro.config = config;
    repro.campaignOps = kTotalOps;
    if (migrations != nullptr)
        repro.migrations = *migrations;

    std::vector<CampaignCheckpoint> cps;
    CampaignOutcome full = runCampaign(seed, window, reference, config,
                                       checkpoint_every_ops, &cps,
                                       migrations);
    if (!outcomeFailed(full))
        return repro;
    unsigned end_op = full.failOp != 0 ? full.failOp : kTotalOps;
    while (!cps.empty() && cps.back().op >= end_op)
        cps.pop_back();
    if (cps.empty())
        return repro;

    auto reproduces = [&](const CampaignCheckpoint &cp) {
        ReproWindow cand;
        cand.config = config;
        cand.startOp = cp.op;
        cand.endOp = end_op;
        cand.snapshot = cp.image;
        cand.migrations = repro.migrations;
        CampaignOutcome out = replayRepro(cand, reference);
        return out.diagnosed == full.diagnosed &&
               out.hostFailure == full.hostFailure &&
               out.what == full.what;
    };

    // Binary-search the latest checkpoint that still reproduces. The
    // op-0 checkpoint always does (the campaign is deterministic), so
    // the search is anchored; the final verification guards against a
    // non-monotone surprise.
    std::size_t lo = 0, hi = cps.size() - 1;
    while (lo < hi) {
        std::size_t mid = lo + (hi - lo + 1) / 2;
        if (reproduces(cps[mid]))
            lo = mid;
        else
            hi = mid - 1;
    }
    if (!reproduces(cps[lo]))
        return repro;

    repro.found = true;
    repro.startOp = cps[lo].op;
    repro.endOp = end_op;
    repro.startInst = cps[lo].instret;
    repro.snapshot = std::move(cps[lo].image);
    repro.failure = full.what;
    return repro;
}

void
writeReproFile(const ReproWindow &repro, const std::string &path)
{
    sim::SnapshotWriter w;
    w.beginSection(kTagRepro);
    w.u64(repro.seed);
    w.u64(repro.window);
    w.boolean(repro.config.hardwareExtensions);
    w.boolean(repro.config.fastInterpreter);
    w.u64(repro.config.handlerBudget);
    w.u64(repro.config.memBytes);
    w.u32(repro.startOp);
    w.u32(repro.endOp);
    w.u64(repro.startInst);
    w.u32(repro.campaignOps);
    w.str(repro.failure);
    // Migration plan (appended in PR 10; absent in older files, which
    // readReproFile still accepts as a plan-free repro).
    w.u32(std::uint32_t(repro.migrations.size()));
    for (const MigrateOp &op : repro.migrations) {
        w.u8(std::uint8_t(op.kind));
        w.u32(op.atOp);
        w.u8(std::uint8_t(op.crash));
        w.u32(op.crashAfterPercent);
        w.u64(op.weather.seed);
        w.u64(op.weather.chunkBytes);
        w.u32(op.weather.lossPercent);
        w.u32(op.weather.corruptPercent);
        w.u32(op.weather.dupPercent);
        w.u32(op.weather.delayPercent);
        w.u64(op.weather.latencyCycles);
        w.u64(op.weather.delayCycles);
        w.u64(op.weather.perWordCycles);
        w.u64(op.weather.timeoutCycles);
        w.u64(op.weather.timeoutCapCycles);
        w.u32(op.weather.maxRetries);
    }
    w.endSection();
    w.beginSection(kTagReproSnap);
    w.u64(repro.snapshot.size());
    w.bytes(repro.snapshot.data(), repro.snapshot.size());
    w.endSection();
    sim::writeSnapshotFile(path, w.finish());
}

ReproWindow
readReproFile(const std::string &path)
{
    std::vector<Byte> bytes = sim::readSnapshotFile(path);
    sim::SnapshotImage img(bytes);

    ReproWindow repro;
    sim::SnapshotReader r = img.section(kTagRepro);
    repro.seed = r.u64();
    repro.window = r.u64();
    repro.config.hardwareExtensions = r.boolean();
    repro.config.fastInterpreter = r.boolean();
    repro.config.handlerBudget = r.u64();
    repro.config.memBytes = std::size_t(r.u64());
    repro.startOp = r.u32();
    repro.endOp = r.u32();
    repro.startInst = r.u64();
    repro.campaignOps = r.u32();
    repro.failure = r.str();
    if (repro.campaignOps != kTotalOps)
        r.fail("repro was recorded against a different campaign shape");
    if (repro.startOp >= repro.endOp || repro.endOp > kTotalOps)
        r.fail("repro op range out of bounds");
    if (r.remaining() != 0) {
        std::uint32_t nops = r.u32();
        for (std::uint32_t i = 0; i < nops; i++) {
            MigrateOp op;
            std::uint8_t kind = r.u8();
            if (kind > std::uint8_t(MigrateOp::Kind::HostCrash))
                r.fail("repro migration op kind out of range");
            op.kind = MigrateOp::Kind(kind);
            op.atOp = r.u32();
            std::uint8_t crash = r.u8();
            if (crash > std::uint8_t(MigrateOp::Crash::Both))
                r.fail("repro migration crash kind out of range");
            op.crash = MigrateOp::Crash(crash);
            op.crashAfterPercent = r.u32();
            op.weather.seed = r.u64();
            op.weather.chunkBytes = std::size_t(r.u64());
            if (op.weather.chunkBytes == 0)
                r.fail("repro migration chunk size is zero");
            op.weather.lossPercent = r.u32();
            op.weather.corruptPercent = r.u32();
            op.weather.dupPercent = r.u32();
            op.weather.delayPercent = r.u32();
            op.weather.latencyCycles = r.u64();
            op.weather.delayCycles = r.u64();
            op.weather.perWordCycles = r.u64();
            op.weather.timeoutCycles = r.u64();
            op.weather.timeoutCapCycles = r.u64();
            op.weather.maxRetries = r.u32();
            if (op.atOp >= kTotalOps)
                r.fail("repro migration op index out of range");
            repro.migrations.push_back(op);
        }
    }
    r.expectEnd();

    sim::SnapshotReader s = img.section(kTagReproSnap);
    std::uint64_t len = s.u64();
    if (len != s.remaining())
        s.fail("nested snapshot length mismatch");
    repro.snapshot.resize(len);
    s.bytes(repro.snapshot.data(), repro.snapshot.size());
    s.expectEnd();

    repro.found = true;
    return repro;
}

std::string
reproCommandLine(const std::string &path)
{
    return "uexc-snap replay " + path;
}

} // namespace uexc::rt::chaos
